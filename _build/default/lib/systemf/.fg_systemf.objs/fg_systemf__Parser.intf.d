lib/systemf/parser.mli: Ast
