lib/syntax/lexer.ml: Array Diag Fg_util List Loc String Token
