lib/fg/resolution.ml:
