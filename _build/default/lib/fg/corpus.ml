(** The paper's example programs, as a named corpus.

    Every figure and inline example from the paper that contains a
    program is reproduced here in our concrete syntax, together with its
    expected observable value.  The corpus is shared by the test suite
    (which checks values, translations, and the theorem statements), the
    examples, EXPERIMENTS.md, and the benchmark harness.

    Negative programs — ill-typed or unresolvable on purpose — document
    the checker's error behaviour, one per interesting failure mode. *)

type expectation =
  | Value of Interp.flat  (** pipeline succeeds with this value *)
  | Fails of Fg_util.Diag.phase  (** checking fails in this phase *)

type entry = {
  name : string;
  paper : string;  (** which figure/section of the paper this comes from *)
  description : string;
  source : string;
  expected : expectation;
}

let v_int n = Value (Interp.FlInt n)
let v_pair a b = Value (Interp.FlTuple [ a; b ])
let v_list ns = Value (Interp.FlList (List.map (fun n -> Interp.FlInt n) ns))

(* ------------------------------------------------------------------ *)
(* Shared building blocks (concrete syntax fragments)                  *)

(** Semigroup and Monoid, exactly as in Section 3.1. *)
let monoid_prelude =
  {|concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
|}

(** Models of Semigroup/Monoid for int with + and 0 (Section 3.1). *)
let monoid_int_add =
  {|model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
|}

(** The accumulate function of Figure 5. *)
let accumulate_def =
  {|let accumulate =
  tfun t where Monoid<t> =>
    fix (accum : fn(list t) -> t) =>
      fun (ls : list t) =>
        let binary_op = Monoid<t>.binary_op in
        let identity_elt = Monoid<t>.identity_elt in
        if null[t](ls) then identity_elt
        else binary_op(car[t](ls), accum(cdr[t](ls)))
in
|}

(** The Iterator concept of Section 5, with its associated type. *)
let iterator_concept =
  {|concept Iterator<i> {
  types elt;
  next : fn(i) -> i;
  curr : fn(i) -> elt;
  at_end : fn(i) -> bool;
} in
|}

(** The model Iterator<list int> of Section 5. *)
let iterator_list_int_model =
  {|model Iterator<list int> {
  types elt = int;
  next = fun (ls : list int) => cdr[int](ls);
  curr = fun (ls : list int) => car[int](ls);
  at_end = fun (ls : list int) => null[int](ls);
} in
|}

let output_iterator_concept =
  {|concept OutputIterator<o, e> { put : fn(o, e) -> o; } in
|}

let output_iterator_list_int_model =
  {|model OutputIterator<list int, int> {
  put = fun (out : list int, x : int) => append[int](out, cons[int](x, nil[int]));
} in
|}

let less_than_comparable =
  {|concept LessThanComparable<t> { less : fn(t, t) -> bool; } in
|}

(* ------------------------------------------------------------------ *)
(* Figure 1: the square example                                        *)

(** Figure 1 shows `square` in Java/Haskell/CLU/Cforall; this is the
    same program in FG with concepts — the paper's own answer to the
    four approaches. *)
let fig1_square =
  {
    name = "fig1_square";
    paper = "Figure 1";
    description = "square(4) via a Number concept with a mult operation";
    source =
      {|concept Number<u> { mult : fn(u, u) -> u; } in
let square = tfun t where Number<t> => fun (x : t) => Number<t>.mult(x, x) in
model Number<int> { mult = imult; } in
square[int](4)|};
    expected = v_int 16;
  }

(** The same computation in plain System F style (explicit operation
    passing) — the Figure 3 idiom applied to Figure 1's example. *)
let fig1_square_higher_order =
  {
    name = "fig1_square_higher_order";
    paper = "Figure 1 / Figure 3";
    description = "square(4) with the multiply passed explicitly";
    source =
      {|let square = tfun t => fun (mult : fn(t, t) -> t, x : t) => mult(x, x) in
square[int](imult, 4)|};
    expected = v_int 16;
  }

(* ------------------------------------------------------------------ *)
(* Figure 3: higher-order sum (this one is a System F program, but it
   is also a valid FG program — FG conservatively extends F)           *)

let fig3_sum =
  {
    name = "fig3_sum";
    paper = "Figure 3";
    description =
      "polymorphic sum with add/zero passed explicitly (System F style)";
    source =
      {|let sum =
  tfun t =>
    fix (sum : fn(list t, fn(t, t) -> t, t) -> t) =>
      fun (ls : list t, add : fn(t, t) -> t, zero : t) =>
        if null[t](ls) then zero
        else add(car[t](ls), sum(cdr[t](ls), add, zero))
in
let ls = cons[int](1, cons[int](2, nil[int])) in
sum[int](ls, iadd, 0)|};
    expected = v_int 3;
  }

(* ------------------------------------------------------------------ *)
(* Figure 5: generic accumulate                                        *)

let fig5_accumulate =
  {
    name = "fig5_accumulate";
    paper = "Figure 5";
    description = "generic accumulate over a Monoid; sums [1; 2]";
    source =
      monoid_prelude ^ accumulate_def ^ monoid_int_add
      ^ {|let ls = cons[int](1, cons[int](2, nil[int])) in
accumulate[int](ls)|};
    expected = v_int 3;
  }

(* ------------------------------------------------------------------ *)
(* Figure 6: intentionally overlapping models                          *)

let fig6_overlap =
  {
    name = "fig6_overlap";
    paper = "Figure 6";
    description =
      "sum and product from the same accumulate via scoped overlapping \
       models";
    source =
      monoid_prelude ^ accumulate_def
      ^ {|let sum =
  model Semigroup<int> { binary_op = iadd; } in
  model Monoid<int> { identity_elt = 0; } in
  accumulate[int]
in
let product =
  model Semigroup<int> { binary_op = imult; } in
  model Monoid<int> { identity_elt = 1; } in
  accumulate[int]
in
let ls = cons[int](1, cons[int](2, nil[int])) in
(sum(ls), product(ls))|};
    expected = v_pair (Interp.FlInt 3) (Interp.FlInt 2);
  }

(** Model shadowing: an inner model takes precedence over an outer one
    for the same concept and type (Section 3.2's lexical scoping). *)
let model_shadowing =
  {
    name = "model_shadowing";
    paper = "Section 3.2";
    description = "inner Monoid<int> model shadows the outer one";
    source =
      monoid_prelude ^ accumulate_def ^ monoid_int_add
      ^ {|model Semigroup<int> { binary_op = imult; } in
model Monoid<int> { identity_elt = 1; } in
let ls = cons[int](2, cons[int](3, nil[int])) in
accumulate[int](ls)|};
    expected = v_int 6 (* product, not sum: the inner models win *);
  }

(* ------------------------------------------------------------------ *)
(* Section 5: associated types                                         *)

let iterator_accumulate =
  {
    name = "iterator_accumulate";
    paper = "Section 5";
    description =
      "accumulate over an Iterator; the element type is the Iterator's \
       associated type";
    source =
      monoid_prelude ^ iterator_concept
      ^ {|let accumulate =
  tfun i where Iterator<i>, Monoid<Iterator<i>.elt> =>
    fix (accum : fn(i) -> Iterator<i>.elt) =>
      fun (it : i) =>
        if Iterator<i>.at_end(it) then Monoid<Iterator<i>.elt>.identity_elt
        else Monoid<Iterator<i>.elt>.binary_op(Iterator<i>.curr(it),
                                               accum(Iterator<i>.next(it)))
in
|}
      ^ monoid_int_add ^ iterator_list_int_model
      ^ {|accumulate[list int](cons[int](1, cons[int](2, cons[int](4, nil[int]))))|};
    expected = v_int 7;
  }

let copy_example =
  {
    name = "copy_example";
    paper = "Section 5.2";
    description =
      "copy from an Iterator to an OutputIterator (the paper's copy \
       translation example)";
    source =
      iterator_concept ^ output_iterator_concept
      ^ {|let copy =
  tfun i o where Iterator<i>, OutputIterator<o, Iterator<i>.elt> =>
    fix (go : fn(i, o) -> o) =>
      fun (it : i, out : o) =>
        if Iterator<i>.at_end(it) then out
        else go(Iterator<i>.next(it),
                OutputIterator<o, Iterator<i>.elt>.put(out, Iterator<i>.curr(it)))
in
|}
      ^ iterator_list_int_model ^ output_iterator_list_int_model
      ^ {|copy[list int, list int](cons[int](7, cons[int](8, nil[int])), nil[int])|};
    expected = v_list [ 7; 8 ];
  }

let merge_example =
  {
    name = "merge_example";
    paper = "Section 5 / 5.2";
    description =
      "merge of two sorted ranges; needs the same-type constraint \
       Iterator<i1>.elt == Iterator<i2>.elt";
    source =
      less_than_comparable ^ iterator_concept ^ output_iterator_concept
      ^ {|let merge =
  tfun i1 i2 o where
      Iterator<i1>, Iterator<i2>,
      OutputIterator<o, Iterator<i1>.elt>,
      LessThanComparable<Iterator<i1>.elt>,
      Iterator<i1>.elt == Iterator<i2>.elt =>
    fix (go : fn(i1, i2, o) -> o) =>
      fun (xs : i1, ys : i2, out : o) =>
        if Iterator<i1>.at_end(xs) then
          (fix (drain : fn(i2, o) -> o) =>
            fun (rest : i2, acc : o) =>
              if Iterator<i2>.at_end(rest) then acc
              else drain(Iterator<i2>.next(rest),
                         OutputIterator<o, Iterator<i1>.elt>.put(acc, Iterator<i2>.curr(rest))))(ys, out)
        else if Iterator<i2>.at_end(ys) then
          (fix (drain : fn(i1, o) -> o) =>
            fun (rest : i1, acc : o) =>
              if Iterator<i1>.at_end(rest) then acc
              else drain(Iterator<i1>.next(rest),
                         OutputIterator<o, Iterator<i1>.elt>.put(acc, Iterator<i1>.curr(rest))))(xs, out)
        else if LessThanComparable<Iterator<i1>.elt>.less(Iterator<i1>.curr(xs), Iterator<i2>.curr(ys))
        then go(Iterator<i1>.next(xs), ys,
                OutputIterator<o, Iterator<i1>.elt>.put(out, Iterator<i1>.curr(xs)))
        else go(xs, Iterator<i2>.next(ys),
                OutputIterator<o, Iterator<i1>.elt>.put(out, Iterator<i2>.curr(ys)))
in
model LessThanComparable<int> { less = ilt; } in
|}
      ^ iterator_list_int_model ^ output_iterator_list_int_model
      ^ {|let xs = cons[int](1, cons[int](4, cons[int](6, nil[int]))) in
let ys = cons[int](2, cons[int](3, cons[int](5, nil[int]))) in
merge[list int, list int, list int](xs, ys, nil[int])|};
    expected = v_list [ 1; 2; 3; 4; 5; 6 ];
  }

(** The Section 5.2 refinement-through-associated-type example: concept
    B has an associated type z and refines A at z; bar's result is fed
    to A's foo through the projection B<r>.z. *)
let refine_at_assoc =
  {
    name = "refine_at_assoc";
    paper = "Section 5.2";
    description = "refinement at an associated type (concepts A and B)";
    source =
      {|concept A<u> { foo : fn(u) -> u; } in
concept B<t> { types z; refines A<z>; bar : fn(t) -> z; } in
let h = tfun r where B<r> => fun (x : r) => A<B<r>.z>.foo(B<r>.bar(x)) in
model A<int> { foo = fun (n : int) => n + 1; } in
model B<bool> { types z = int; bar = fun (b : bool) => if b then 1 else 0; } in
h[bool](true)|};
    expected = v_int 2;
  }

(** Type aliases (rule ALS): the alias participates in type equality. *)
let type_alias =
  {
    name = "type_alias";
    paper = "Section 5.1 (ALS)";
    description = "a type alias is equal to its definition";
    source =
      {|type t = int in
let f = fun (x : t) => x + 1 in
f(41)|};
    expected = v_int 42;
  }

let type_alias_list =
  {
    name = "type_alias_list";
    paper = "Section 5.1 (ALS)";
    description = "aliasing a compound type; alias used inside fn types";
    source =
      {|type ints = list int in
let head = fun (ls : ints) => car[int](ls) in
head(cons[int](9, nil[int]))|};
    expected = v_int 9;
  }

(** Refinement diamond: Ring refines both AddMonoid and MulMonoid, which
    both refine Eqable — the diamond of Section 5.2's dedup discussion. *)
let diamond_refinement =
  {
    name = "diamond_refinement";
    paper = "Section 5.2 (diamonds)";
    description =
      "diamond refinement: Ring -> AddMonoid, MulMonoid -> Eqable; \
       members reachable along both paths";
    source =
      {|concept Eqable<t> { eq : fn(t, t) -> bool; } in
concept AddMonoid<t> { refines Eqable<t>; add : fn(t, t) -> t; zero : t; } in
concept MulMonoid<t> { refines Eqable<t>; mul : fn(t, t) -> t; one : t; } in
concept Ring<t> { refines AddMonoid<t>, MulMonoid<t>; } in
let dot =
  tfun t where Ring<t> =>
    fun (a : t, b : t, c : t, d : t) =>
      Ring<t>.add(Ring<t>.mul(a, b), Ring<t>.mul(c, d))
in
model Eqable<int> { eq = ieq; } in
model AddMonoid<int> { add = iadd; zero = 0; } in
model MulMonoid<int> { mul = imult; one = 1; } in
model Ring<int> { } in
dot[int](2, 3, 4, 5)|};
    expected = v_int 26;
  }

(** A generic function calling another generic function: the inner
    requirement is satisfied by the caller's proxy model. *)
let generic_calls_generic =
  {
    name = "generic_calls_generic";
    paper = "Section 4 (TABS/TAPP interplay)";
    description = "double = twice applied through a proxy model";
    source =
      monoid_prelude
      ^ {|let twice = tfun t where Semigroup<t> => fun (x : t) => Semigroup<t>.binary_op(x, x) in
let quad = tfun u where Semigroup<u> => fun (y : u) => twice[u](twice[u](y)) in
model Semigroup<int> { binary_op = iadd; } in
quad[int](3)|};
    expected = v_int 12;
  }

(** Same-type constraints used to cast between type variables. *)
let same_type_vars =
  {
    name = "same_type_vars";
    paper = "Section 5.1";
    description = "a same-type constraint makes two type parameters equal";
    source =
      {|let cast = tfun a b where a == b => fun (x : a) => x in
let use = (cast[int, int])(5) in
use + 1|};
    expected = v_int 6;
  }

(** Multi-parameter concept with members at mixed types. *)
let multi_param_concept =
  {
    name = "multi_param_concept";
    paper = "Section 5 (OutputIterator is multi-parameter)";
    description = "a two-parameter Convert concept";
    source =
      {|concept Convert<a, b> { convert : fn(a) -> b; } in
let apply_convert = tfun a b where Convert<a, b> => fun (x : a) => Convert<a, b>.convert(x) in
model Convert<bool, int> { convert = fun (b : bool) => if b then 1 else 0; } in
model Convert<int, bool> { convert = fun (n : int) => n != 0; } in
(apply_convert[bool, int](true), apply_convert[int, bool](3))|};
    expected = v_pair (Interp.FlInt 1) (Interp.FlBool true);
  }

(** A concept whose same-type requirement pins its associated type. *)
let concept_same_requirement =
  {
    name = "concept_same_requirement";
    paper = "Figure 11 (same-type requirements in concepts)";
    description =
      "IntIterator requires elt == int via a same-type requirement; \
       generic code may use the element as an int";
    source =
      iterator_concept
      ^ {|concept IntIterator<i> {
  refines Iterator<i>;
  same Iterator<i>.elt == int;
} in
let sum_it =
  tfun i where IntIterator<i> =>
    fix (go : fn(i) -> int) =>
      fun (it : i) =>
        if Iterator<i>.at_end(it) then 0
        else Iterator<i>.curr(it) + go(Iterator<i>.next(it))
in
|}
      ^ iterator_list_int_model
      ^ {|model IntIterator<list int> { } in
sum_it[list int](cons[int](10, cons[int](20, nil[int])))|};
    expected = v_int 30;
  }

(* ------------------------------------------------------------------ *)
(* Parameterized models (Section 6 extension)                          *)

(** Equality at [list t] for any [t] with equality — the canonical
    parameterized instance, used at three depths of nesting. *)
let param_eq_list =
  {
    name = "param_eq_list";
    paper = "Section 6 (parameterized models)";
    description = "Eq<list t> given Eq<t>; nested instantiation";
    source =
      {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model Eq<int> { eq = ieq; } in
model <t> where Eq<t> => Eq<list t> {
  eq = fix (go : fn(list t, list t) -> bool) =>
    fun (a : list t, b : list t) =>
      if null[t](a) then null[t](b)
      else if null[t](b) then false
      else Eq<t>.eq(car[t](a), car[t](b)) && go(cdr[t](a), cdr[t](b));
} in
let l1 = cons[int](1, cons[int](2, nil[int])) in
let l2 = cons[int](1, cons[int](2, nil[int])) in
let l3 = cons[int](1, cons[int](3, nil[int])) in
(Eq<list int>.eq(l1, l2),
 Eq<list int>.eq(l1, l3),
 Eq<list (list int)>.eq(cons[list int](l1, nil[list int]),
                        cons[list int](l2, nil[list int])))|};
    expected =
      Value
        (Interp.FlTuple
           [ Interp.FlBool true; Interp.FlBool false; Interp.FlBool true ]);
  }

(** A parameterized model used from inside a generic function: the
    instance's context is discharged by the caller's proxy model. *)
let param_model_in_generic =
  {
    name = "param_model_in_generic";
    paper = "Section 6 (parameterized models)";
    description = "Eq<list t> resolved against a where-clause proxy";
    source =
      {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model <t> where Eq<t> => Eq<list t> {
  eq = fix (go : fn(list t, list t) -> bool) =>
    fun (a : list t, b : list t) =>
      if null[t](a) then null[t](b)
      else if null[t](b) then false
      else Eq<t>.eq(car[t](a), car[t](b)) && go(cdr[t](a), cdr[t](b));
} in
let singleton_eq =
  tfun t where Eq<t> =>
    fun (x : t, y : t) =>
      Eq<list t>.eq(cons[t](x, nil[t]), cons[t](y, nil[t]))
in
model Eq<int> { eq = ieq; } in
(singleton_eq[int](4, 4), singleton_eq[int](4, 5))|};
    expected = v_pair (Interp.FlBool true) (Interp.FlBool false);
  }

(** Lists form a monoid under append: accumulate concatenates. *)
let param_monoid_list =
  {
    name = "param_monoid_list";
    paper = "Section 6 (parameterized models)";
    description = "accumulate at list int via the parameterized monoid";
    source =
      monoid_prelude ^ accumulate_def
      ^ {|model <t> Semigroup<list t> {
  binary_op = fun (a : list t, b : list t) => append[t](a, b);
} in
model <t> Monoid<list t> { identity_elt = nil[t]; } in
let xss = cons[list int](cons[int](1, cons[int](2, nil[int])),
          cons[list int](cons[int](3, nil[int]),
          cons[list int](nil[int],
          cons[list int](cons[int](4, nil[int]), nil[list int])))) in
accumulate[list int](xss)|};
    expected = v_list [ 1; 2; 3; 4 ];
  }

(** Named models (Section 6, after Kahl & Scheffczyk): overlap managed
    by explicit selection instead of scope nesting. *)
let named_models =
  {
    name = "named_models";
    paper = "Section 6 (named models)";
    description = "sum and product selected by `using` from named models";
    source =
      monoid_prelude ^ accumulate_def
      ^ {|model addm = Semigroup<int> { binary_op = iadd; } in
model multm = Semigroup<int> { binary_op = imult; } in
let sum =
  using addm in
  model Monoid<int> { identity_elt = 0; } in
  accumulate[int]
in
let product =
  using multm in
  model Monoid<int> { identity_elt = 1; } in
  accumulate[int]
in
let ls = cons[int](2, cons[int](3, cons[int](4, nil[int]))) in
(sum(ls), product(ls))|};
    expected = v_pair (Interp.FlInt 9) (Interp.FlInt 24);
  }

(** Nested requirements (Section 6 first item): Container's iterator
    must model Iterator; algorithms state only Container. *)
let nested_requirement =
  {
    name = "nested_requirement";
    paper = "Section 6 (nested requirements)";
    description =
      "Container requires Iterator<iter>; length needs only Container<c>";
    source =
      iterator_concept
      ^ {|concept Container<c> {
  types iter;
  require Iterator<iter>;
  begin : fn(c) -> iter;
} in
let len =
  tfun c where Container<c> =>
    fun (xs : c) =>
      (fix (go : fn(Container<c>.iter) -> int) =>
        fun (it : Container<c>.iter) =>
          if Iterator<Container<c>.iter>.at_end(it) then 0
          else 1 + go(Iterator<Container<c>.iter>.next(it)))
      (Container<c>.begin(xs))
in
|}
      ^ iterator_list_int_model
      ^ {|model Container<list int> {
  types iter = list int;
  begin = fun (ls : list int) => ls;
} in
len[list int](cons[int](4, cons[int](5, cons[int](6, nil[int]))))|};
    expected = v_int 3;
  }

let neg_param_unused_parameter =
  {
    name = "neg_param_unused_parameter";
    paper = "Section 6 (parameterized models)";
    description = "a model parameter must occur in the modeled type";
    source =
      {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model <t> Eq<int> { eq = ieq; } in 0|};
    expected = Fails Wf;
  }

let neg_param_missing_context =
  {
    name = "neg_param_missing_context";
    paper = "Section 6 (parameterized models)";
    description =
      "using Eq<list bool> requires Eq<bool>, which is not in scope";
    source =
      {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model <t> where Eq<t> => Eq<list t> {
  eq = fun (a : list t, b : list t) => true;
} in
Eq<list bool>.eq(nil[bool], nil[bool])|};
    expected = Fails Resolve;
  }

let neg_param_diverging =
  {
    name = "neg_param_diverging";
    paper = "Section 6 (parameterized models)";
    description =
      "a model whose context requires a larger instance of itself \
       diverges; resolution reports the depth fuse";
    source =
      {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model <t> where Eq<list t> => Eq<t> {
  eq = fun (a : t, b : t) => true;
} in
Eq<int>.eq(1, 2)|};
    expected = Fails Resolve;
  }

(* ------------------------------------------------------------------ *)
(* Negative programs: one per failure mode                             *)

open Fg_util.Diag

let neg_no_model =
  {
    name = "neg_no_model";
    paper = "Section 3.1";
    description = "instantiation without a model in scope is rejected";
    source =
      {|concept Number<u> { mult : fn(u, u) -> u; } in
let square = tfun t where Number<t> => fun (x : t) => Number<t>.mult(x, x) in
square[int](4)|};
    expected = Fails Resolve;
  }

let neg_model_out_of_scope =
  {
    name = "neg_model_out_of_scope";
    paper = "Section 3.2";
    description = "a model does not escape its lexical scope";
    source =
      {|concept Number<u> { mult : fn(u, u) -> u; } in
let square = tfun t where Number<t> => fun (x : t) => Number<t>.mult(x, x) in
let inner =
  model Number<int> { mult = imult; } in
  square[int](2)
in
square[int](4)|};
    expected = Fails Resolve;
  }

let neg_missing_member =
  {
    name = "neg_missing_member";
    paper = "Section 3.1 (MDL)";
    description = "a model must define every concept member";
    source =
      {|concept Number<u> { mult : fn(u, u) -> u; add : fn(u, u) -> u; } in
model Number<int> { mult = imult; } in
0|};
    expected = Fails Wf;
  }

let neg_extra_member =
  {
    name = "neg_extra_member";
    paper = "Section 3.1 (MDL)";
    description = "a model may not define members the concept lacks";
    source =
      {|concept Number<u> { mult : fn(u, u) -> u; } in
model Number<int> { mult = imult; extra = iadd; } in
0|};
    expected = Fails Wf;
  }

let neg_member_type_mismatch =
  {
    name = "neg_member_type_mismatch";
    paper = "Section 3.1 (MDL)";
    description = "member definitions are checked against the concept";
    source =
      {|concept Number<u> { mult : fn(u, u) -> u; } in
model Number<int> { mult = fun (x : int, y : int) => x < y; } in
0|};
    expected = Fails Typecheck;
  }

let neg_missing_refinement_model =
  {
    name = "neg_missing_refinement_model";
    paper = "Section 3.1 (MDL refines)";
    description =
      "declaring a Monoid model requires a Semigroup model in scope";
    source =
      monoid_prelude ^ {|model Monoid<int> { identity_elt = 0; } in 0|};
    expected = Fails Resolve;
  }

let neg_missing_assoc =
  {
    name = "neg_missing_assoc";
    paper = "Section 5 (MDL types)";
    description = "a model must assign every associated type";
    source =
      iterator_concept
      ^ {|model Iterator<list int> {
  next = fun (ls : list int) => cdr[int](ls);
  curr = fun (ls : list int) => car[int](ls);
  at_end = fun (ls : list int) => null[int](ls);
} in 0|};
    expected = Fails Wf;
  }

let neg_same_type_violation =
  {
    name = "neg_same_type_violation";
    paper = "Section 5.1 (TAPP)";
    description =
      "instantiating merge with iterators of different element types \
       violates the same-type constraint";
    source =
      {|concept Iterator<i> { types elt; curr : fn(i) -> elt; } in
let both =
  tfun i1 i2 where Iterator<i1>, Iterator<i2>, Iterator<i1>.elt == Iterator<i2>.elt =>
    fun (x : i1, y : i2) => (Iterator<i1>.curr(x), Iterator<i2>.curr(y))
in
model Iterator<list int> { types elt = int; curr = fun (ls : list int) => car[int](ls); } in
model Iterator<list bool> { types elt = bool; curr = fun (ls : list bool) => car[bool](ls); } in
both[list int, list bool](cons[int](1, nil[int]), cons[bool](true, nil[bool]))|};
    expected = Fails Typecheck;
  }

let neg_concept_escape =
  {
    name = "neg_concept_escape";
    paper = "Section 4 (CPT side condition)";
    description = "a concept name may not escape its scope in the type";
    source =
      {|let f =
  concept Number<u> { mult : fn(u, u) -> u; } in
  tfun t where Number<t> => fun (x : t) => Number<t>.mult(x, x)
in
0|};
    expected = Fails Typecheck;
  }

let neg_unbound_tyvar =
  {
    name = "neg_unbound_tyvar";
    paper = "Figure 8 (TYVAR)";
    description = "types are checked for unbound type variables";
    source = {|fun (x : t) => x|};
    expected = Fails Wf;
  }

let neg_assoc_without_model =
  {
    name = "neg_assoc_without_model";
    paper = "Figure 12 (TYASC)";
    description =
      "an associated-type projection needs a model in scope to be \
       well-formed";
    source =
      iterator_concept ^ {|fun (x : Iterator<list int>.elt) => x|};
    expected = Fails Wf;
  }

let neg_arity_mismatch =
  {
    name = "neg_arity_mismatch";
    paper = "basic typing";
    description = "wrong number of type arguments";
    source =
      {|let id = tfun t => fun (x : t) => x in
id[int, bool](1)|};
    expected = Fails Typecheck;
  }

let neg_nonexistent_member =
  {
    name = "neg_nonexistent_member";
    paper = "MEM";
    description = "accessing a member the concept does not have";
    source =
      {|concept Number<u> { mult : fn(u, u) -> u; } in
model Number<int> { mult = imult; } in
Number<int>.div(4, 2)|};
    expected = Fails Typecheck;
  }

let neg_duplicate_binder =
  {
    name = "neg_duplicate_binder";
    paper = "TABS side condition (distinct)";
    description = "duplicate type parameters are rejected";
    source = {|tfun t t => fun (x : t) => x|};
    expected = Fails Wf;
  }

let neg_self_refinement =
  {
    name = "neg_self_refinement";
    paper = "CPT";
    description = "a concept cannot refine itself";
    source = {|concept C<t> { refines C<t>; x : t; } in 0|};
    expected = Fails Wf;
  }

(* ------------------------------------------------------------------ *)
(* The corpus                                                          *)

let positive : entry list =
  [
    fig1_square;
    fig1_square_higher_order;
    fig3_sum;
    fig5_accumulate;
    fig6_overlap;
    model_shadowing;
    iterator_accumulate;
    copy_example;
    merge_example;
    refine_at_assoc;
    type_alias;
    type_alias_list;
    diamond_refinement;
    generic_calls_generic;
    same_type_vars;
    multi_param_concept;
    concept_same_requirement;
    param_eq_list;
    param_model_in_generic;
    param_monoid_list;
    named_models;
    nested_requirement;
  ]

let negative : entry list =
  [
    neg_no_model;
    neg_model_out_of_scope;
    neg_missing_member;
    neg_extra_member;
    neg_member_type_mismatch;
    neg_missing_refinement_model;
    neg_missing_assoc;
    neg_same_type_violation;
    neg_concept_escape;
    neg_unbound_tyvar;
    neg_assoc_without_model;
    neg_arity_mismatch;
    neg_nonexistent_member;
    neg_duplicate_binder;
    neg_self_refinement;
    neg_param_unused_parameter;
    neg_param_missing_context;
    neg_param_diverging;
  ]

let all = positive @ negative

let find name =
  match List.find_opt (fun e -> String.equal e.name name) all with
  | Some e -> e
  | None -> Fg_util.Diag.ice "corpus: no entry named %s" name
