#!/bin/sh
# CI entry point: build everything, run the full test battery, then a
# quick benchmark smoke (tiny quota — checks the harness runs and the
# deterministic tables print, not the numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== error corpus: diagnostic codes are stable"
# Each program under programs/errors/ pins the FG0xxx codes one
# recovering `fgc run` reports for it (warnings included); any drift
# from expected_codes.txt fails the build.
actual=$(mktemp)
trap 'rm -f "$actual"' EXIT
for f in programs/errors/*.fg; do
  codes=$(./_build/default/bin/fgc.exe run --format=json "$f" 2>/dev/null \
    | grep -o '"code": "FG[0-9]*"' \
    | sed 's/.*"\(FG[0-9]*\)"$/\1/' | tr '\n' ' ' | sed 's/ $//' || true)
  echo "$(basename "$f"): $codes" >> "$actual"
done
diff -u programs/errors/expected_codes.txt "$actual"

echo "== fuzz smoke (seed 42, 200 programs)"
# Deterministic: the same seed generates the same programs on every
# machine, so a clean run here means a clean run everywhere.
./_build/default/bin/fgc.exe fuzz --seed 42 --count 200

echo "== stencil-diff: backend byte-identity (corpus + 1k fuzz)"
# The specializing backends must be observationally invisible: every
# program in the tree prints the same bytes under dict, stencil and
# hybrid (the session's internal oracle additionally asserts the
# specialized term typechecks and evaluates identically — FG0502 /
# FG0503 would surface here as diverging output).  Then a 1k seeded
# fuzz batch per specializing backend, where every generated program
# runs the same differential oracle.
for f in programs/*.fg programs/errors/*.fg programs/fuzz_regressions/*.fg; do
  d=$(./_build/default/bin/fgc.exe run "$f" 2>&1 || true)
  s=$(./_build/default/bin/fgc.exe run --backend=stencil "$f" 2>&1 || true)
  h=$(./_build/default/bin/fgc.exe run --backend=hybrid "$f" 2>&1 || true)
  [ "$d" = "$s" ] || { echo "stencil-diff: stencil diverges on $f"; exit 1; }
  [ "$d" = "$h" ] || { echo "stencil-diff: hybrid diverges on $f"; exit 1; }
done
./_build/default/bin/fgc.exe fuzz --seed 7 --count 1000 --backend=stencil
./_build/default/bin/fgc.exe fuzz --seed 7 --count 1000 --backend=hybrid

echo "== bench smoke (BENCH_QUOTA=0.02, incremental re-check >= 3x)"
bench_out=$(mktemp)
BENCH_QUOTA=0.02 dune exec bench/main.exe | tee "$bench_out"
# The incremental group re-checks a program family sharing a long
# declaration prefix; the unit cache must make warm re-checking at
# least 3x faster than cold checking.
speedup=$(grep 'incremental re-check speedup' "$bench_out" \
  | grep -o '[0-9.]*x' | tr -d 'x')
rm -f "$bench_out"
awk -v s="$speedup" 'BEGIN { exit (s >= 3.0) ? 0 : 1 }' \
  || { echo "bench smoke: incremental speedup ${speedup}x < 3x"; exit 1; }

echo "== server smoke"
# A real daemon on a unix socket: 200+ requests through one batch
# connection, the protocol-violation probe (garbage JSON frame,
# version mismatch, oversized length prefix), a deliberate deadline
# miss, live stats, then SIGTERM and a clean drain.  Any unexpected
# status exits nonzero (the client maps statuses to exit codes).
fgc=./_build/default/bin/fgc.exe
sock=$(mktemp -u /tmp/fgc_ci_XXXXXX.sock)
"$fgc" serve --socket "$sock" 2>/dev/null &
serve_pid=$!
trap 'rm -f "$actual"; kill "$serve_pid" 2>/dev/null || true; rm -f "$sock"' EXIT
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "server smoke: daemon never bound $sock"; exit 1; }

echo "-- batch: 10 x programs/ through one connection"
for _ in $(seq 1 10); do
  "$fgc" client batch programs -p --socket "$sock" > /dev/null
done

echo "-- probe: malformed frame, version mismatch, oversized prefix"
"$fgc" client probe --socket "$sock"

echo "-- deliberate timeout (exit 4 expected)"
rc=0
"$fgc" client run -e '1 + 1' --timeout-ms 0 --socket "$sock" > /dev/null || rc=$?
[ "$rc" -eq 4 ] || { echo "server smoke: timeout exit was $rc, want 4"; exit 1; }

echo "-- stats"
"$fgc" client stats --socket "$sock" | grep -q '"latency"' \
  || { echo "server smoke: stats payload missing latency"; exit 1; }

echo "-- SIGTERM: clean drain"
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "server smoke: daemon exited nonzero"; exit 1; }
[ ! -S "$sock" ] || { echo "server smoke: socket not unlinked"; exit 1; }

echo "== incremental smoke (shared unit cache vs one-shot, byte-identity)"
# Sweep every corpus program through one warm single-worker daemon —
# twice, so the second pass replays cached compilation units — and
# require each served response to be byte-identical to a one-shot
# `fgc run --format=json` of the same file.
sock=$(mktemp -u /tmp/fgc_inc_XXXXXX.sock)
"$fgc" serve --socket "$sock" --workers 1 2>/dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$sock"' EXIT
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "incremental smoke: daemon never bound $sock"; exit 1; }
oneshot=$(mktemp) && cold=$(mktemp) && warm=$(mktemp)
for f in programs/*.fg programs/errors/*.fg programs/fuzz_regressions/*.fg; do
  "$fgc" run --format=json "$f" > "$oneshot" 2>/dev/null || true
  "$fgc" client run "$f" --socket "$sock" > "$cold" 2>/dev/null || true
  "$fgc" client run "$f" --socket "$sock" > "$warm" 2>/dev/null || true
  cmp -s "$oneshot" "$cold" \
    || { echo "incremental smoke: served differs from one-shot: $f"; exit 1; }
  cmp -s "$cold" "$warm" \
    || { echo "incremental smoke: warm replay differs from cold: $f"; exit 1; }
done
rm -f "$oneshot" "$cold" "$warm"
"$fgc" client stats --socket "$sock" | grep -q '"unit_cache"' \
  || { echo "incremental smoke: stats payload missing unit_cache"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "incremental smoke: daemon exited nonzero"; exit 1; }

echo "== cache smoke (persistent unit store: cold/warm byte-identity)"
# Run the whole program tree against a fresh --cache-dir twice.  Both
# passes must print exactly what a cache-less run prints, and the warm
# pass must re-check nothing for the well-typed corpus: its --stats
# report shows zero unit-cache misses.  (Error programs re-check by
# design — failed declarations are never cached.)
cache_dir=$(mktemp -d /tmp/fgc_cache_XXXXXX)
trap 'rm -rf "$cache_dir"; kill "$serve_pid" 2>/dev/null || true' EXIT
plain=$(mktemp) && cold=$(mktemp) && warm=$(mktemp) && wstats=$(mktemp)
for f in programs/*.fg programs/errors/*.fg programs/fuzz_regressions/*.fg; do
  "$fgc" run --format=json "$f" > "$plain" 2>/dev/null || true
  "$fgc" run --format=json --cache-dir "$cache_dir" "$f" > "$cold" 2>/dev/null || true
  "$fgc" run --format=json --cache-dir "$cache_dir" --stats "$f" > "$warm" 2>"$wstats" || true
  cmp -s "$plain" "$cold" \
    || { echo "cache smoke: cold cached run differs from uncached: $f"; exit 1; }
  cmp -s "$plain" "$warm" \
    || { echo "cache smoke: warm cached run differs from uncached: $f"; exit 1; }
  case "$f" in
  programs/errors/* | programs/fuzz_regressions/*) ;;
  *)
    grep -A4 'unit cache:' "$wstats" | grep -q 'misses         :          0' \
      || { echo "cache smoke: warm run re-checked units: $f"; exit 1; }
    ;;
  esac
done
rm -f "$plain" "$cold" "$warm" "$wstats"

echo "== farm smoke (peer cache tier: cold daemon fed by a warm peer)"
# Daemon A owns the warm store; daemon B has no disk of its own and
# lists A as its only cache peer.  B's served output must be
# byte-identical to one-shot runs, and B's stats must show peer hits
# (its units came over the wire, not from re-checking).
sock_a=$(mktemp -u /tmp/fgc_farm_a_XXXXXX.sock)
sock_b=$(mktemp -u /tmp/fgc_farm_b_XXXXXX.sock)
"$fgc" serve --socket "$sock_a" --workers 1 --cache-dir "$cache_dir" 2>/dev/null &
pid_a=$!
trap 'rm -rf "$cache_dir"; kill "$pid_a" 2>/dev/null || true; rm -f "$sock_a" "$sock_b"' EXIT
for _ in $(seq 1 50); do [ -S "$sock_a" ] && break; sleep 0.1; done
[ -S "$sock_a" ] || { echo "farm smoke: daemon A never bound"; exit 1; }
"$fgc" client batch programs -p --socket "$sock_a" > /dev/null   # warm A's store
"$fgc" serve --socket "$sock_b" --workers 1 --cache-peer "unix:$sock_a" 2>/dev/null &
pid_b=$!
trap 'rm -rf "$cache_dir"; kill "$pid_a" "$pid_b" 2>/dev/null || true; rm -f "$sock_a" "$sock_b"' EXIT
for _ in $(seq 1 50); do [ -S "$sock_b" ] && break; sleep 0.1; done
[ -S "$sock_b" ] || { echo "farm smoke: daemon B never bound"; exit 1; }
oneshot=$(mktemp) && served=$(mktemp)
for f in programs/*.fg; do
  "$fgc" run --format=json -p "$f" > "$oneshot" 2>/dev/null || true
  "$fgc" client run -p "$f" --socket "$sock_b" > "$served" 2>/dev/null || true
  cmp -s "$oneshot" "$served" \
    || { echo "farm smoke: peer-fed output differs from one-shot: $f"; exit 1; }
done
rm -f "$oneshot" "$served"
# stats keys are canonically sorted, so pull the peer_cache object out
# first and read its hits field wherever it landed
"$fgc" client stats --socket "$sock_b" \
  | grep -o '"peer_cache": {[^}]*}' | grep -o '"hits": [0-9]*' \
  | grep -qv '"hits": 0$' \
  || { echo "farm smoke: cold daemon reported no peer hits"; exit 1; }
"$fgc" client shutdown --socket "$sock_a" > /dev/null
"$fgc" client shutdown --socket "$sock_b" > /dev/null
wait "$pid_a" || { echo "farm smoke: daemon A exited nonzero"; exit 1; }
wait "$pid_b" || { echo "farm smoke: daemon B exited nonzero"; exit 1; }
rm -rf "$cache_dir"

echo "== fuzz-coverage: guided beats blind at the same seed (1k programs)"
# The coverage-guided mutator must earn its keep: at the same seed and
# budget (mutants off, so both modes measure the same work), the guided
# run must reach strictly more distinct checker/resolution decision
# points than blind generation.  Both runs print a deterministic
# "coverage: N decision points" line.
fuzz_corpus=$(mktemp -d /tmp/fgc_fuzzcov_XXXXXX)
trap 'rm -rf "$fuzz_corpus"' EXIT
blind_cov=$("$fgc" fuzz --seed 5 --count 1000 --mutants 0 \
  | sed -n 's/^coverage: \([0-9]*\) decision points.*/\1/p')
guided_cov=$("$fgc" fuzz --seed 5 --count 1000 --mutants 0 \
  --corpus-dir "$fuzz_corpus" \
  | sed -n 's/^coverage: \([0-9]*\) decision points.*/\1/p')
echo "-- blind: $blind_cov decision points, guided: $guided_cov"
[ -n "$blind_cov" ] && [ -n "$guided_cov" ] \
  || { echo "fuzz-coverage: missing coverage line"; exit 1; }
[ "$guided_cov" -gt "$blind_cov" ] \
  || { echo "fuzz-coverage: guided ($guided_cov) not above blind ($blind_cov)"; exit 1; }
[ -n "$(ls "$fuzz_corpus")" ] \
  || { echo "fuzz-coverage: guided run admitted no corpus entries"; exit 1; }

echo "-- corpus merge: two workers converge through one daemon"
# Two fuzz workers with disjoint seeds and separate corpus dirs sync
# through a shared daemon (fuzz_batch); after a second round each
# holds the union corpus, and the daemon's stats expose the soak.
w1=$(mktemp -d /tmp/fgc_fuzzw1_XXXXXX)
w2=$(mktemp -d /tmp/fgc_fuzzw2_XXXXXX)
sock=$(mktemp -u /tmp/fgc_fuzz_XXXXXX.sock)
"$fgc" serve --socket "$sock" --workers 1 2>/dev/null &
serve_pid=$!
trap 'rm -rf "$fuzz_corpus" "$w1" "$w2"; kill "$serve_pid" 2>/dev/null || true; rm -f "$sock"' EXIT
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "fuzz-coverage: daemon never bound $sock"; exit 1; }
"$fgc" client fuzz-worker --socket "$sock" --seed 11 --count 150 --corpus-dir "$w1"
"$fgc" client fuzz-worker --socket "$sock" --seed 99 --count 150 --corpus-dir "$w2"
# second round: both adopt whatever the other contributed
"$fgc" client fuzz-worker --socket "$sock" --seed 12 --count 50 --corpus-dir "$w1"
"$fgc" client fuzz-worker --socket "$sock" --seed 98 --count 50 --corpus-dir "$w2"
"$fgc" client stats --socket "$sock" | grep -q '"fuzz_soak"' \
  || { echo "fuzz-coverage: stats payload missing fuzz_soak"; exit 1; }
common=$({ ls "$w1"; ls "$w2"; } | sort | uniq -d | wc -l)
[ "$common" -gt 0 ] \
  || { echo "fuzz-coverage: workers share no corpus entries after sync"; exit 1; }
"$fgc" client shutdown --socket "$sock" > /dev/null
wait "$serve_pid" || { echo "fuzz-coverage: daemon exited nonzero"; exit 1; }

echo "== workspace smoke (v5 document lifecycle, edit/revert byte-identity)"
# Open every corpus program as a workspace document over the wire, run
# a scripted single-digit edit and revert it, and require the final
# doc_diagnostics payload to be byte-identical to a one-shot
# `fgc run --format=json -p` of the same file.  The warm incremental
# path must be observationally invisible.
sock=$(mktemp -u /tmp/fgc_ws_XXXXXX.sock)
"$fgc" serve --socket "$sock" --workers 1 2>/dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$sock"' EXIT
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "workspace smoke: daemon never bound $sock"; exit 1; }
oneshot=$(mktemp) && served=$(mktemp)
for f in programs/*.fg; do
  "$fgc" client open "$f" -p --socket "$sock" > /dev/null
  hit=$(grep -obE '[0-9]' "$f" | head -n 1 || true)
  if [ -n "$hit" ]; then
    off=${hit%%:*}
    orig=${hit##*:}
    rep=7; [ "$orig" = "7" ] && rep=8
    "$fgc" client edit "$f" --doc-version 2 --at "$off" --del 1 \
      --insert "$rep" --socket "$sock" > /dev/null
    "$fgc" client edit "$f" --doc-version 3 --at "$off" --del 1 \
      --insert "$orig" --socket "$sock" > /dev/null
  fi
  "$fgc" run --format=json -p "$f" > "$oneshot" 2>/dev/null || true
  "$fgc" client diag "$f" --socket "$sock" > "$served" 2>/dev/null || true
  cmp -s "$oneshot" "$served" \
    || { echo "workspace smoke: edited+reverted diagnostics differ: $f"; exit 1; }
  "$fgc" client close "$f" --socket "$sock" > /dev/null
done
rm -f "$oneshot" "$served"
"$fgc" client stats --socket "$sock" | grep -q '"workspace"' \
  || { echo "workspace smoke: stats payload missing workspace block"; exit 1; }
"$fgc" client stats --pretty --socket "$sock" | grep -q 'workspace' \
  || { echo "workspace smoke: pretty stats missing workspace block"; exit 1; }
"$fgc" client shutdown --socket "$sock" > /dev/null
wait "$serve_pid" || { echo "workspace smoke: daemon exited nonzero"; exit 1; }

echo "-- editgen: edit-to-diagnostics p95 under the bar"
EDITGEN_EDITS=6 EDITGEN_P95_MS=200 dune exec bench/editgen.exe

echo "== loadgen smoke (300 requests, byte-identity + 5x bar)"
LOADGEN_REQUESTS=300 LOADGEN_ONESHOT_SAMPLE=10 dune exec bench/loadgen.exe

echo "== pgo smoke (profile record/replay: guided byte-identity + zipf bar)"
# Record a workload profile over the whole corpus — twice, because the
# canonical sorted-key encoding promises byte-identical recordings.
# Replaying the corpus on the guided backend under that profile must
# print exactly the dictionary backend's bytes (the session's internal
# oracle additionally re-checks every stencil in System F).  Then the
# same differential over 1k seeded fuzz programs with a profile
# recorded from the same generator, and finally the Zipf bar: a daemon
# auto-sized from a recorded profile must beat the default
# configuration on the same skewed request stream.
prof=$(mktemp /tmp/fgc_pgo_XXXXXX.json)
prof2=$(mktemp /tmp/fgc_pgo2_XXXXXX.json)
merged=$(mktemp /tmp/fgc_pgo_merged_XXXXXX.json)
fuzzprof=$(mktemp /tmp/fgc_pgo_fuzz_XXXXXX.json)
dict_out=$(mktemp) && guided_out=$(mktemp)
trap 'rm -f "$prof" "$prof2" "$merged" "$fuzzprof" "$dict_out" "$guided_out"' EXIT
"$fgc" corpus --all --profile-out "$prof" > /dev/null
"$fgc" corpus --all --profile-out "$prof2" > /dev/null
cmp -s "$prof" "$prof2" \
  || { echo "pgo smoke: profile recording is not deterministic"; exit 1; }
"$fgc" profile merge "$prof" "$prof2" -o "$merged"
"$fgc" profile show "$merged" > /dev/null
"$fgc" corpus --all > "$dict_out"
"$fgc" corpus --all --backend=guided --profile "$prof" > "$guided_out"
cmp -s "$dict_out" "$guided_out" \
  || { echo "pgo smoke: guided diverges from dict over the corpus"; exit 1; }
"$fgc" fuzz --seed 7 --count 1000 --profile-out "$fuzzprof" > /dev/null
"$fgc" fuzz --seed 7 --count 1000 --backend=guided --profile "$fuzzprof"
echo "-- zipf loadgen: profile-guided serve must beat the default config"
LOADGEN_MODE=zipf LOADGEN_ZIPF_REQUESTS=2400 dune exec bench/loadgen.exe
