examples/monoid_scoping.mli:
