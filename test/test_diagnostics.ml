(* Golden tests for diagnostics: the exact rendered message — including
   the source location — for a fixed set of ill-formed programs.  These
   pin the user-facing error quality; update deliberately if wording
   changes. *)

open Fg_core

let diag_of src =
  match Pipeline.run_result ~file:"golden" src with
  | Ok _ -> Alcotest.failf "%s: expected failure" src
  | Error d -> Fg_util.Diag.to_string d

let check src expected = Alcotest.(check string) src expected (diag_of src)

let test_unbound_variable () =
  check "1 + missing" "golden:1:5-12: type error[FG0302]: unbound variable 'missing'"

let test_unbound_tyvar () =
  check "fun (x : t) => x"
    "golden:1:1-17: ill-formed[FG0207]: unbound type variable 't'"

let test_unknown_concept () =
  check "Nope<int>.x" "golden:1:1-12: ill-formed[FG0202]: unknown concept 'Nope'"

let test_no_model () =
  check
    {|concept N<t> { m : t; } in
N<int>.m|}
    "golden:2:1-9: resolution error[FG0402]: no model of N<int> in scope for \
     member access\n  note: no models of N are in scope"

let test_argument_mismatch () =
  check "(fun (x : int) => x)(true)"
    "golden:1:22-26: type error[FG0303]: argument: expected int but got bool"

let test_arity () =
  check "(fun (x : int) => x)(1, 2)"
    "golden:1:2-27: type error[FG0304]: function expects 1 argument(s) but \
     is applied to 2"

let test_same_type_unsatisfied () =
  check "(tfun a b where a == b => fun (x : a) => x)[int, bool](1)"
    "golden:1:2-55: type error[FG0307]: same-type constraint not satisfied: \
     int is not equal to bool"

let test_member_missing () =
  check
    {|concept N<t> { m : t; } in
model N<int> { } in 0|}
    "golden:2:1-20: ill-formed[FG0206]: model of N<int> does not define \
     member 'm'"

let test_member_wrong_type () =
  check
    {|concept N<t> { m : t; } in
model N<int> { m = true; } in 0|}
    "golden:2:20-24: type error[FG0303]: member 'm' of model of N<int>: \
     expected int but got bool"

let test_overlap_global () =
  let src =
    {|concept N<t> { m : t; } in
model N<int> { m = 1; } in
model N<int> { m = 2; } in 0|}
  in
  match Pipeline.run_result ~resolution:Resolution.Global ~file:"golden" src with
  | Ok _ -> Alcotest.fail "expected overlap rejection"
  | Error d ->
      Alcotest.(check string) "overlap message"
        "golden:3:1-27: resolution error[FG0404]: overlapping model of N<int> \
         (global-resolution mode rejects overlapping models anywhere in the \
         program)"
        (Fg_util.Diag.to_string d)

let test_inference_failure () =
  check
    {|let f = tfun t => fun (n : int) => n in
f(1)|}
    "golden:2:1-5: type error[FG0306]: cannot infer type argument 't'; \
     instantiate explicitly with [...]"

let test_runtime_error_location () =
  check "car[int](nil[int])"
    "golden:1:1-19: runtime error[FG0601]: car of empty list"

let test_division_by_zero () =
  check "1 / 0" "golden:1:1-6: runtime error[FG0601]: division by zero"

let test_parse_error () =
  check "let x = in 0"
    "golden:1:9-11: parse error[FG0101]: expected an expression (found \
     keyword 'in')"

let test_concept_escape_message () =
  check
    {|let f = concept N<t> { m : t; } in tfun t where N<t> => 1 in 0|}
    "golden:1:9-35: type error[FG0308]: concept N escapes its scope in the \
     type forall t where N<t>. int of the body"

let suite =
  [
    Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
    Alcotest.test_case "unbound type variable" `Quick test_unbound_tyvar;
    Alcotest.test_case "unknown concept" `Quick test_unknown_concept;
    Alcotest.test_case "no model in scope" `Quick test_no_model;
    Alcotest.test_case "argument mismatch" `Quick test_argument_mismatch;
    Alcotest.test_case "arity mismatch" `Quick test_arity;
    Alcotest.test_case "same-type unsatisfied" `Quick
      test_same_type_unsatisfied;
    Alcotest.test_case "missing member" `Quick test_member_missing;
    Alcotest.test_case "member type mismatch" `Quick test_member_wrong_type;
    Alcotest.test_case "global overlap" `Quick test_overlap_global;
    Alcotest.test_case "inference failure" `Quick test_inference_failure;
    Alcotest.test_case "runtime location" `Quick test_runtime_error_location;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "parse error" `Quick test_parse_error;
    Alcotest.test_case "concept escape" `Quick test_concept_escape_message;
  ]
