(** Fresh-name generation: an explicit, deterministic supply.

    The translation introduces dictionary variables ([Monoid_18]) and
    associated-type parameters ([elt_4]); an explicit supply keeps
    independent pipeline runs reproducible. *)

type t

val create : unit -> t
val reset : t -> unit

(** [mark]/[restore]: capture the supply position and later rewind to
    it, so independent programs checked against a shared, already-
    built environment each see the same supply state (deterministic
    output regardless of checking order). *)
val mark : t -> int

val restore : t -> int -> unit

(** [fresh g base] returns ["base_N"] for the next counter value. *)
val fresh : t -> string -> string

(** [fresh_many g base k] returns [k] distinct names sharing [base]. *)
val fresh_many : t -> string -> int -> string list
