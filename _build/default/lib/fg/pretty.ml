(** Pretty printer for System FG.

    As with the System F printer, output is valid concrete syntax and
    round-trips through the parser.  Same-type constraints are printed
    with [==] to keep [=] unambiguous in model bodies. *)

open Ast
open Fg_util

(* Type precedence: 0 forall/fn, 1 tuple, 2 list, 3 atoms *)
let rec pp_ty_prec prec ppf t =
  match t with
  | TBase TInt -> Fmt.string ppf "int"
  | TBase TBool -> Fmt.string ppf "bool"
  | TBase TUnit -> Fmt.string ppf "unit"
  | TVar a -> Fmt.string ppf a
  | TAssoc (c, args, s) -> Fmt.pf ppf "%s%a.%s" c pp_ty_args args s
  | TArrow (args, ret) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[fn(%a) ->@ %a@]"
            (Pp_util.comma_sep (pp_ty_prec 0))
            args (pp_ty_prec 0) ret)
        ppf ()
  (* 0/1-tuples have no infix syntax; the explicit form keeps them
     round-trippable. *)
  | TTuple ([] | [ _ ]) ->
      let ts = (match t with TTuple ts -> ts | _ -> assert false) in
      Fmt.pf ppf "tuple(%a)" (Pp_util.comma_sep (pp_ty_prec 0)) ts
  | TTuple ts ->
      Pp_util.parens_if (prec > 1)
        (fun ppf () ->
          Fmt.pf ppf "@[%a@]" (Fmt.list ~sep:(Fmt.any " *@ ") (pp_ty_prec 2)) ts)
        ppf ()
  | TList t ->
      Pp_util.parens_if (prec > 2)
        (fun ppf () -> Fmt.pf ppf "list %a" (pp_ty_prec 3) t)
        ppf ()
  | TForall (tvs, constrs, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[forall %a%a.@ %a@]"
            (Fmt.list ~sep:Fmt.sp Fmt.string)
            tvs pp_where constrs (pp_ty_prec 0) body)
        ppf ()

and pp_ty_args ppf = function
  | [] -> ()
  | args -> Fmt.pf ppf "<@[%a@]>" (Pp_util.comma_sep (pp_ty_prec 0)) args

and pp_where ppf = function
  | [] -> ()
  | constrs ->
      Fmt.pf ppf " where @[%a@]" (Pp_util.comma_sep pp_constr) constrs

and pp_constr ppf = function
  | CModel (c, args) -> Fmt.pf ppf "%s%a" c pp_ty_args args
  | CSame (a, b) -> Fmt.pf ppf "%a == %a" (pp_ty_prec 1) a (pp_ty_prec 1) b

let pp_ty ppf t = pp_ty_prec 0 ppf t

let pp_lit ppf = function
  | LInt n -> Fmt.int ppf n
  | LBool b -> Fmt.bool ppf b
  | LUnit -> Fmt.string ppf "()"

(* Expression precedence: 0 open forms, 1 application-like, 2 atoms *)
let rec pp_exp_prec prec ppf e =
  match e.desc with
  | Var x -> Fmt.string ppf x
  | Prim p -> Fmt.string ppf p
  | Lit l -> pp_lit ppf l
  | Member (c, args, x) -> Fmt.pf ppf "%s%a.%s" c pp_ty_args args x
  | Tuple ([] | [ _ ]) ->
      let es = (match e.desc with Tuple es -> es | _ -> assert false) in
      Fmt.pf ppf "tuple(@[%a@])" (Pp_util.comma_sep (pp_exp_prec 0)) es
  | Tuple es -> Fmt.pf ppf "(@[%a@])" (Pp_util.comma_sep (pp_exp_prec 0)) es
  | App (f, args) ->
      Pp_util.parens_if (prec > 1)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>%a(%a)@]" (pp_exp_prec 1) f
            (Pp_util.comma_sep (pp_exp_prec 0))
            args)
        ppf ()
  | TyApp (f, tys) ->
      Pp_util.parens_if (prec > 1)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>%a[%a]@]" (pp_exp_prec 1) f
            (Pp_util.comma_sep pp_ty) tys)
        ppf ()
  | Nth (e0, k) ->
      Pp_util.parens_if (prec > 1)
        (fun ppf () -> Fmt.pf ppf "nth %a %d" (pp_exp_prec 2) e0 k)
        ppf ()
  | Abs (params, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>fun (@[%a@]) =>@ %a@]"
            (Pp_util.comma_sep pp_param) params (pp_exp_prec 0) body)
        ppf ()
  | TyAbs (tvs, constrs, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>tfun %a%a =>@ %a@]"
            (Fmt.list ~sep:Fmt.sp Fmt.string)
            tvs pp_where constrs (pp_exp_prec 0) body)
        ppf ()
  | Let (x, rhs, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<v>@[<hov 2>let %s =@ %a in@]@ %a@]" x (pp_exp_prec 0)
            rhs (pp_exp_prec 0) body)
        ppf ()
  | Fix (x, ty, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>fix (%s : %a) =>@ %a@]" x pp_ty ty
            (pp_exp_prec 0) body)
        ppf ()
  | If (c, t, f) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<hv>if %a@ then %a@ else %a@]" (pp_exp_prec 0) c
            (pp_exp_prec 0) t (pp_exp_prec 0) f)
        ppf ()
  | ConceptDecl (d, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<v>%a in@ %a@]" pp_concept_decl d (pp_exp_prec 0) body)
        ppf ()
  | ModelDecl (d, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<v>%a in@ %a@]" pp_model_decl d (pp_exp_prec 0) body)
        ppf ()
  | Using (m, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<v>using %s in@ %a@]" m (pp_exp_prec 0) body)
        ppf ()
  | TypeAlias (t, ty, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<v>type %s = %a in@ %a@]" t pp_ty ty (pp_exp_prec 0)
            body)
        ppf ()

and pp_param ppf (x, t) = Fmt.pf ppf "%s : %a" x pp_ty t

and pp_concept_decl ppf d =
  let pp_item_assoc ppf = function
    | [] -> ()
    | names ->
        Fmt.pf ppf "types @[%a@];@ " (Pp_util.comma_sep Fmt.string) names
  in
  let pp_item_refines ppf = function
    | [] -> ()
    | rs ->
        Fmt.pf ppf "refines @[%a@];@ "
          (Pp_util.comma_sep (fun ppf (c, args) ->
               Fmt.pf ppf "%s%a" c pp_ty_args args))
          rs
  in
  let pp_item_requires ppf = function
    | [] -> ()
    | rs ->
        Fmt.pf ppf "require @[%a@];@ "
          (Pp_util.comma_sep (fun ppf (c, args) ->
               Fmt.pf ppf "%s%a" c pp_ty_args args))
          rs
  in
  let pp_item_same ppf = function
    | [] -> ()
    | same ->
        List.iter
          (fun (a, b) ->
            Fmt.pf ppf "same %a == %a;@ " (pp_ty_prec 1) a (pp_ty_prec 1) b)
          same
  in
  let pp_member ppf (x, t) =
    match List.assoc_opt x d.c_defaults with
    | None -> Fmt.pf ppf "%s : %a;" x pp_ty t
    | Some e ->
        Fmt.pf ppf "@[<hov 2>%s : %a =@ %a;@]" x pp_ty t (pp_exp_prec 0) e
  in
  Fmt.pf ppf "@[<v 2>concept %s<%a> {@ %a%a%a%a%a@]@ }" d.c_name
    (Pp_util.comma_sep Fmt.string)
    d.c_params pp_item_assoc d.c_assoc pp_item_refines d.c_refines
    pp_item_requires d.c_requires pp_item_same d.c_same
    (Fmt.list ~sep:(Fmt.any "@ ") pp_member)
    d.c_members

and pp_model_decl ppf d =
  let pp_assoc ppf (s, t) = Fmt.pf ppf "types %s = %a;" s pp_ty t in
  let pp_member ppf (x, e) =
    Fmt.pf ppf "@[<hov 2>%s =@ %a;@]" x (pp_exp_prec 0) e
  in
  let pp_model_name ppf d =
    match d.m_name with None -> () | Some m -> Fmt.pf ppf "%s = " m
  in
  let pp_model_params ppf d =
    if d.m_params <> [] then begin
      Fmt.pf ppf "<%a> " (Pp_util.comma_sep Fmt.string) d.m_params;
      if d.m_constrs <> [] then
        Fmt.pf ppf "where @[%a@] => " (Pp_util.comma_sep pp_constr) d.m_constrs
    end
  in
  Fmt.pf ppf "@[<v 2>model %a%a%s%a {@ %a%a@]@ }" pp_model_name d
    pp_model_params d d.m_concept pp_ty_args d.m_args
    (Fmt.list ~sep:(Fmt.any "@ ") pp_assoc)
    d.m_assoc
    (fun ppf members ->
      if d.m_assoc <> [] && members <> [] then Fmt.pf ppf "@ ";
      Fmt.list ~sep:(Fmt.any "@ ") pp_member ppf members)
    d.m_members

let pp_exp ppf e = pp_exp_prec 0 ppf e

let ty_to_string t = Pp_util.to_string pp_ty t
let constr_to_string c = Pp_util.to_string pp_constr c
let exp_to_string e = Pp_util.to_string pp_exp e
let exp_to_flat_string e = Pp_util.to_flat_string pp_exp e
