(** Model resolution modes — the Section 3.2 ablation.

    FG's distinguishing design choice is that model declarations are
    lexically scoped expressions: overlapping models of the same concept
    at the same type may coexist in separate scopes (paper Figure 6), and
    an inner declaration shadows an outer one.

    Haskell instances, by contrast, are global: instance declarations
    "implicitly leak out of a module when anything in the module is used
    by another module", so the two Monoid-of-int instances of Figure 6
    would be rejected wherever they are placed.

    {!Global} mode reproduces that behaviour inside our checker: every
    model declaration is checked for overlap against all models declared
    anywhere in the program so far, and overlap is an error.  The test
    suite and the [fig6/overlap] experiment run the same program under
    both modes to reproduce the paper's contrast. *)

type mode =
  | Lexical  (** the paper's FG semantics: scoped, shadowable models *)
  | Global  (** Haskell-style: program-wide instances, overlap rejected *)

let mode_name = function Lexical -> "lexical" | Global -> "global"
