(** Abstract syntax of System FG.

    This is the full language of paper Figure 11: System F extended with
    concepts, models, where clauses (Figure 4), plus associated types,
    same-type constraints and type aliases (Figure 11, gray additions).
    As in the System F substrate, we add base types, lists, tuples,
    [fix], [if] and primitive constants so the paper's example programs
    can be written directly.

    Conventions:
    - Concept names are capitalized ([Monoid]); type variables, term
      variables, member names and associated type names are lowercase.
    - Inside a concept declaration, the concept's type parameters, its
      own associated types, and the associated types of the concepts it
      refines are all in scope as plain type variables ([TVar]); they are
      resolved against the declaration during checking.
    - [TAssoc (c, tys, s)] is the qualified associated-type projection
      written [C<τ̄>.s] in the paper. *)

open Fg_util
module F = Fg_systemf.Ast

type base = F.base = TInt | TBool | TUnit

type ty =
  | TBase of base
  | TVar of string
  | TArrow of ty list * ty  (** [fn(τ1, ..., τn) -> τ] *)
  | TTuple of ty list
  | TList of ty
  | TAssoc of string * ty list * string  (** [C<τ̄>.s] *)
  | TForall of string list * constr list * ty
      (** [forall t̄ where constrs. τ]; the where clause may be empty *)

and constr =
  | CModel of string * ty list  (** [C<σ̄>] — a model requirement *)
  | CSame of ty * ty  (** [σ == τ] — a same-type constraint *)

type lit = F.lit = LInt of int | LBool of bool | LUnit

type exp = { desc : desc; loc : Loc.t }

and desc =
  | Var of string
  | Lit of lit
  | Prim of string
  | App of exp * exp list
  | Abs of (string * ty) list * exp
  | TyAbs of string list * constr list * exp
      (** [tfun t̄ where constrs => e] *)
  | TyApp of exp * ty list
  | Let of string * exp * exp
  | Tuple of exp list
  | Nth of exp * int
  | Fix of string * ty * exp
  | If of exp * exp * exp
  | Member of string * ty list * string  (** [C<τ̄>.x] — model member *)
  | ConceptDecl of concept_decl * exp  (** [concept C<t̄> {...} in e] *)
  | ModelDecl of model_decl * exp  (** [model C<τ̄> {...} in e] *)
  | Using of string * exp
      (** [using m in e] — activate the named model [m] for [e] *)
  | TypeAlias of string * ty * exp  (** [type t = τ in e] *)

and concept_decl = {
  c_name : string;
  c_params : string list;  (** [<t̄>] *)
  c_assoc : string list;  (** [types s̄;] — required associated types *)
  c_refines : (string * ty list) list;  (** [refines C'<σ̄>, ...;] *)
  c_requires : (string * ty list) list;
      (** nested requirements [require C'<σ̄>;] — constraints on the
          concept's associated types (Section 6 "nested requirements"),
          e.g. a Container's iterator must model Iterator.  Like
          refinement they contribute a nested dictionary and a proxy
          model, but not member names. *)
  c_members : (string * ty) list;  (** required operations [x : σ;] *)
  c_defaults : (string * exp) list;
      (** default member bodies [x : σ = e;] — the Section 6 "defaults
          for concept members" extension; a model lacking an explicit
          definition for [x] receives the default, instantiated at its
          types *)
  c_same : (ty * ty) list;  (** [same σ == τ;] requirements *)
  c_loc : Loc.t;
}

and model_decl = {
  m_name : string option;
      (** a NAMED model ([model m = C<τ̄> {...}], the Section 6 "named
          models" extension after Kahl and Scheffczyk): declared but not
          activated; brought into scope with [using m in e] *)
  m_params : string list;
      (** type parameters of a parameterized model, e.g. [<t>] in
          [model <t> where Eq<t> => Eq<list t> {...}] — the
          parameterized-instance extension the paper lists as future
          work (Section 6); empty for ordinary ground models *)
  m_constrs : constr list;
      (** the parameterized model's own requirements (its context) *)
  m_concept : string;
  m_args : ty list;  (** may mention [m_params] *)
  m_assoc : (string * ty) list;  (** [types s = τ;] assignments *)
  m_members : (string * exp) list;  (** member definitions [x = e;] *)
  m_loc : Loc.t;
}

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)

let mk ?(loc = Loc.dummy) desc = { desc; loc }
let var ?loc x = mk ?loc (Var x)
let lit ?loc l = mk ?loc (Lit l)
let int ?loc n = lit ?loc (LInt n)
let bool ?loc b = lit ?loc (LBool b)
let unit ?loc () = lit ?loc LUnit
let prim ?loc p = mk ?loc (Prim p)
let app ?loc f args = mk ?loc (App (f, args))
let abs ?loc params body = mk ?loc (Abs (params, body))
let tyabs ?loc tvs constrs body = mk ?loc (TyAbs (tvs, constrs, body))
let tyapp ?loc f tys = mk ?loc (TyApp (f, tys))
let let_ ?loc x rhs body = mk ?loc (Let (x, rhs, body))
let tuple ?loc es = mk ?loc (Tuple es)
let nth ?loc e k = mk ?loc (Nth (e, k))
let fix ?loc x ty body = mk ?loc (Fix (x, ty, body))
let if_ ?loc c t e = mk ?loc (If (c, t, e))
let member ?loc c tys x = mk ?loc (Member (c, tys, x))
let concept_decl ?loc d e = mk ?loc (ConceptDecl (d, e))
let model_decl ?loc d e = mk ?loc (ModelDecl (d, e))
let using ?loc m e = mk ?loc (Using (m, e))
let type_alias ?loc t ty e = mk ?loc (TypeAlias (t, ty, e))

(* ------------------------------------------------------------------ *)
(* Free type variables and substitution                                *)

module Smap = Names.Smap
module Sset = Names.Sset

let rec ftv = function
  | TBase _ -> Sset.empty
  | TVar a -> Sset.singleton a
  | TArrow (args, ret) ->
      List.fold_left (fun acc t -> Sset.union acc (ftv t)) (ftv ret) args
  | TTuple ts ->
      List.fold_left (fun acc t -> Sset.union acc (ftv t)) Sset.empty ts
  | TList t -> ftv t
  | TAssoc (_, args, _) ->
      List.fold_left (fun acc t -> Sset.union acc (ftv t)) Sset.empty args
  | TForall (tvs, constrs, body) ->
      let inner =
        List.fold_left
          (fun acc c -> Sset.union acc (ftv_constr c))
          (ftv body) constrs
      in
      Sset.diff inner (Sset.of_list tvs)

and ftv_constr = function
  | CModel (_, args) ->
      List.fold_left (fun acc t -> Sset.union acc (ftv t)) Sset.empty args
  | CSame (a, b) -> Sset.union (ftv a) (ftv b)

(** Concept names appearing in a type — in where clauses and in
    associated-type projections.  This is the paper's [CV], used by the
    CPT rule's side condition [c ∉ CV(τ)] preventing a concept from
    escaping its lexical scope. *)
let rec concept_names = function
  | TBase _ | TVar _ -> Sset.empty
  | TArrow (args, ret) ->
      List.fold_left
        (fun acc t -> Sset.union acc (concept_names t))
        (concept_names ret) args
  | TTuple ts ->
      List.fold_left
        (fun acc t -> Sset.union acc (concept_names t))
        Sset.empty ts
  | TList t -> concept_names t
  | TAssoc (c, args, _) ->
      List.fold_left
        (fun acc t -> Sset.union acc (concept_names t))
        (Sset.singleton c) args
  | TForall (_, constrs, body) ->
      List.fold_left
        (fun acc cn -> Sset.union acc (constr_concept_names cn))
        (concept_names body) constrs

and constr_concept_names = function
  | CModel (c, args) ->
      List.fold_left
        (fun acc t -> Sset.union acc (concept_names t))
        (Sset.singleton c) args
  | CSame (a, b) -> Sset.union (concept_names a) (concept_names b)

let rec freshen avoid x =
  if Sset.mem x avoid then freshen avoid (x ^ "'") else x

(** Capture-avoiding simultaneous type substitution. *)
let rec subst_ty (s : ty Smap.t) (t : ty) : ty =
  match t with
  | TBase _ -> t
  | TVar a -> ( match Smap.find_opt a s with Some u -> u | None -> t)
  | TArrow (args, ret) -> TArrow (List.map (subst_ty s) args, subst_ty s ret)
  | TTuple ts -> TTuple (List.map (subst_ty s) ts)
  | TList t -> TList (subst_ty s t)
  | TAssoc (c, args, x) -> TAssoc (c, List.map (subst_ty s) args, x)
  | TForall (tvs, constrs, body) ->
      let s = Smap.filter (fun a _ -> not (List.mem a tvs)) s in
      if Smap.is_empty s then t
      else
        let range_ftv =
          Smap.fold (fun _ u acc -> Sset.union acc (ftv u)) s Sset.empty
        in
        let inner_ftv =
          List.fold_left
            (fun acc c -> Sset.union acc (ftv_constr c))
            (ftv body) constrs
        in
        let avoid = ref (Sset.union range_ftv inner_ftv) in
        let renaming, tvs' =
          List.fold_left_map
            (fun ren a ->
              if Sset.mem a range_ftv then begin
                let a' = freshen !avoid a in
                avoid := Sset.add a' !avoid;
                (Smap.add a (TVar a') ren, a')
              end
              else (ren, a))
            Smap.empty tvs
        in
        let body, constrs =
          if Smap.is_empty renaming then (body, constrs)
          else
            ( subst_ty renaming body,
              List.map (subst_constr renaming) constrs )
        in
        TForall (tvs', List.map (subst_constr s) constrs, subst_ty s body)

and subst_constr s = function
  | CModel (c, args) -> CModel (c, List.map (subst_ty s) args)
  | CSame (a, b) -> CSame (subst_ty s a, subst_ty s b)

let subst_of_list pairs =
  List.fold_left (fun m (a, u) -> Smap.add a u m) Smap.empty pairs

let subst_ty_list pairs t = subst_ty (subst_of_list pairs) t
let subst_constr_list pairs c = subst_constr (subst_of_list pairs) c

(* ------------------------------------------------------------------ *)
(* Syntactic equality (alpha for foralls; no same-type reasoning)      *)

let ty_equal (a : ty) (b : ty) : bool =
  let rec go la lb depth a b =
    (* Pointer fast path: physically equal subtrees are structurally
       identical, so they are alpha-equal whenever both sides resolve
       bound variables through the same (physical) renaming — hash-
       consed types (see {!Hashcons}) hit this constantly. *)
    if a == b && la == lb then true
    else
      match (a, b) with
    | TBase x, TBase y -> x = y
    | TVar x, TVar y -> (
        match (Smap.find_opt x la, Smap.find_opt y lb) with
        | Some i, Some j -> i = j
        | None, None -> String.equal x y
        | _ -> false)
    | TArrow (xs, x), TArrow (ys, y) ->
        List.length xs = List.length ys
        && List.for_all2 (go la lb depth) xs ys
        && go la lb depth x y
    | TTuple xs, TTuple ys ->
        List.length xs = List.length ys && List.for_all2 (go la lb depth) xs ys
    | TList x, TList y -> go la lb depth x y
    | TAssoc (c, xs, sx), TAssoc (d, ys, sy) ->
        String.equal c d && String.equal sx sy
        && List.length xs = List.length ys
        && List.for_all2 (go la lb depth) xs ys
    | TForall (xs, cs, x), TForall (ys, ds, y) ->
        List.length xs = List.length ys
        && List.length cs = List.length ds
        &&
        let la, lb, depth =
          List.fold_left2
            (fun (la, lb, d) xv yv ->
              (Smap.add xv d la, Smap.add yv d lb, d + 1))
            (la, lb, depth) xs ys
        in
        List.for_all2 (go_constr la lb depth) cs ds && go la lb depth x y
    | _ -> false
  and go_constr la lb depth c d =
    match (c, d) with
    | CModel (cn, xs), CModel (dn, ys) ->
        String.equal cn dn
        && List.length xs = List.length ys
        && List.for_all2 (go la lb depth) xs ys
    | CSame (x1, x2), CSame (y1, y2) ->
        go la lb depth x1 y1 && go la lb depth x2 y2
    | _ -> false
  in
  go Smap.empty Smap.empty 0 a b

let constr_equal a b =
  match (a, b) with
  | CModel (c, xs), CModel (d, ys) ->
      String.equal c d && List.length xs = List.length ys
      && List.for_all2 ty_equal xs ys
  | CSame (x1, x2), CSame (y1, y2) -> ty_equal x1 y1 && ty_equal x2 y2
  | _ -> false

let rec ty_size = function
  | TBase _ | TVar _ -> 1
  | TArrow (args, ret) ->
      1 + List.fold_left (fun acc t -> acc + ty_size t) (ty_size ret) args
  | TTuple ts | TAssoc (_, ts, _) ->
      1 + List.fold_left (fun acc t -> acc + ty_size t) 0 ts
  | TList t -> 1 + ty_size t
  | TForall (tvs, constrs, body) ->
      1 + List.length tvs + ty_size body
      + List.fold_left (fun acc c -> acc + constr_size c) 0 constrs

and constr_size = function
  | CModel (_, args) ->
      1 + List.fold_left (fun acc t -> acc + ty_size t) 0 args
  | CSame (a, b) -> 1 + ty_size a + ty_size b

(* ------------------------------------------------------------------ *)
(* Type substitution through expressions (used by the interpreter's
   type application and by the random-program shrinker)                *)

let rec subst_ty_exp (s : ty Smap.t) (e : exp) : exp =
  let sub = subst_ty s in
  let desc =
    match e.desc with
    | (Var _ | Lit _ | Prim _) as d -> d
    | App (f, args) -> App (subst_ty_exp s f, List.map (subst_ty_exp s) args)
    | Abs (params, body) ->
        Abs (List.map (fun (x, t) -> (x, sub t)) params, subst_ty_exp s body)
    | TyAbs (tvs, constrs, body) ->
        let s = Smap.filter (fun a _ -> not (List.mem a tvs)) s in
        TyAbs (tvs, List.map (subst_constr s) constrs, subst_ty_exp s body)
    | TyApp (f, tys) -> TyApp (subst_ty_exp s f, List.map sub tys)
    | Let (x, rhs, body) -> Let (x, subst_ty_exp s rhs, subst_ty_exp s body)
    | Tuple es -> Tuple (List.map (subst_ty_exp s) es)
    | Nth (e0, k) -> Nth (subst_ty_exp s e0, k)
    | Fix (x, t, body) -> Fix (x, sub t, subst_ty_exp s body)
    | If (c, t, f) -> If (subst_ty_exp s c, subst_ty_exp s t, subst_ty_exp s f)
    | Member (c, tys, x) -> Member (c, List.map sub tys, x)
    | ConceptDecl (d, body) ->
        (* The concept's parameters and associated-type names shadow. *)
        let bound = d.c_params @ c_assoc_transitive_names d in
        let s' = Smap.filter (fun a _ -> not (List.mem a bound)) s in
        let d' =
          {
            d with
            c_refines = List.map (fun (c, ts) -> (c, List.map (subst_ty s') ts)) d.c_refines;
            c_requires = List.map (fun (c, ts) -> (c, List.map (subst_ty s') ts)) d.c_requires;
            c_members = List.map (fun (x, t) -> (x, subst_ty s' t)) d.c_members;
            c_defaults =
              List.map (fun (x, e) -> (x, subst_ty_exp s' e)) d.c_defaults;
            c_same = List.map (fun (a, b) -> (subst_ty s' a, subst_ty s' b)) d.c_same;
          }
        in
        ConceptDecl (d', subst_ty_exp s body)
    | ModelDecl (d, body) ->
        (* the model's own parameters shadow *)
        let s' = Smap.filter (fun a _ -> not (List.mem a d.m_params)) s in
        let sub' = subst_ty s' in
        let d' =
          {
            d with
            m_constrs = List.map (subst_constr s') d.m_constrs;
            m_args = List.map sub' d.m_args;
            m_assoc = List.map (fun (x, t) -> (x, sub' t)) d.m_assoc;
            m_members =
              List.map (fun (x, e) -> (x, subst_ty_exp s' e)) d.m_members;
          }
        in
        ModelDecl (d', subst_ty_exp s body)
    | Using (m, body) -> Using (m, subst_ty_exp s body)
    | TypeAlias (t, ty, body) ->
        let s' = Smap.remove t s in
        TypeAlias (t, sub ty, subst_ty_exp s' body)
  in
  { e with desc }

(* Names bound inside a concept body: its own associated types.  (The
   associated types of refined concepts are resolved during checking,
   not bound here; refinement argument types are in the *outer* scope
   extended with params and own assoc names.) *)
and c_assoc_transitive_names d = d.c_assoc

let rec exp_size e =
  match e.desc with
  | Var _ | Lit _ | Prim _ -> 1
  | App (f, args) ->
      1 + List.fold_left (fun acc a -> acc + exp_size a) (exp_size f) args
  | Abs (_, body) | TyAbs (_, _, body) | Fix (_, _, body) -> 1 + exp_size body
  | TyApp (f, _) -> 1 + exp_size f
  | Let (_, rhs, body) -> 1 + exp_size rhs + exp_size body
  | Tuple es -> 1 + List.fold_left (fun acc a -> acc + exp_size a) 0 es
  | Nth (e0, _) -> 1 + exp_size e0
  | If (c, t, f) -> 1 + exp_size c + exp_size t + exp_size f
  | Member _ -> 1
  | ConceptDecl (_, body) | Using (_, body) -> 1 + exp_size body
  | ModelDecl (d, body) ->
      1
      + List.fold_left (fun acc (_, e) -> acc + exp_size e) 0 d.m_members
      + exp_size body
  | TypeAlias (_, _, body) -> 1 + exp_size body

(* Structural equality of expressions ignoring locations (alpha only
   through [ty_equal] on embedded foralls; binders are compared by
   name, which is what a pretty→parse round trip preserves). *)
let rec exp_equal (a : exp) (b : exp) : bool =
  let list_eq eq xs ys =
    List.length xs = List.length ys && List.for_all2 eq xs ys
  in
  let pair_eq eqa eqb (x1, y1) (x2, y2) = eqa x1 x2 && eqb y1 y2 in
  let capp_eq = pair_eq String.equal (list_eq ty_equal) in
  match (a.desc, b.desc) with
  | Var x, Var y -> String.equal x y
  | Lit x, Lit y -> x = y
  | Prim x, Prim y -> String.equal x y
  | App (f1, a1), App (f2, a2) -> exp_equal f1 f2 && list_eq exp_equal a1 a2
  | Abs (p1, b1), Abs (p2, b2) ->
      list_eq (pair_eq String.equal ty_equal) p1 p2 && exp_equal b1 b2
  | TyAbs (v1, c1, b1), TyAbs (v2, c2, b2) ->
      list_eq String.equal v1 v2 && list_eq constr_equal c1 c2
      && exp_equal b1 b2
  | TyApp (f1, t1), TyApp (f2, t2) -> exp_equal f1 f2 && list_eq ty_equal t1 t2
  | Let (x1, r1, b1), Let (x2, r2, b2) ->
      String.equal x1 x2 && exp_equal r1 r2 && exp_equal b1 b2
  | Tuple e1, Tuple e2 -> list_eq exp_equal e1 e2
  | Nth (e1, k1), Nth (e2, k2) -> exp_equal e1 e2 && k1 = k2
  | Fix (x1, t1, b1), Fix (x2, t2, b2) ->
      String.equal x1 x2 && ty_equal t1 t2 && exp_equal b1 b2
  | If (c1, t1, f1), If (c2, t2, f2) ->
      exp_equal c1 c2 && exp_equal t1 t2 && exp_equal f1 f2
  | Member (c1, a1, x1), Member (c2, a2, x2) ->
      String.equal c1 c2 && list_eq ty_equal a1 a2 && String.equal x1 x2
  | ConceptDecl (d1, b1), ConceptDecl (d2, b2) ->
      String.equal d1.c_name d2.c_name
      && list_eq String.equal d1.c_params d2.c_params
      && list_eq String.equal d1.c_assoc d2.c_assoc
      && list_eq capp_eq d1.c_refines d2.c_refines
      && list_eq capp_eq d1.c_requires d2.c_requires
      && list_eq (pair_eq String.equal ty_equal) d1.c_members d2.c_members
      && list_eq (pair_eq String.equal exp_equal) d1.c_defaults d2.c_defaults
      && list_eq (pair_eq ty_equal ty_equal) d1.c_same d2.c_same
      && exp_equal b1 b2
  | ModelDecl (d1, b1), ModelDecl (d2, b2) ->
      Option.equal String.equal d1.m_name d2.m_name
      && list_eq String.equal d1.m_params d2.m_params
      && list_eq constr_equal d1.m_constrs d2.m_constrs
      && String.equal d1.m_concept d2.m_concept
      && list_eq ty_equal d1.m_args d2.m_args
      && list_eq (pair_eq String.equal ty_equal) d1.m_assoc d2.m_assoc
      && list_eq (pair_eq String.equal exp_equal) d1.m_members d2.m_members
      && exp_equal b1 b2
  | Using (m1, b1), Using (m2, b2) -> String.equal m1 m2 && exp_equal b1 b2
  | TypeAlias (t1, ty1, b1), TypeAlias (t2, ty2, b2) ->
      String.equal t1 t2 && ty_equal ty1 ty2 && exp_equal b1 b2
  | _ -> false
