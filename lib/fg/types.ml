(** Type-level machinery of System FG: well-formedness, where-clause
    processing, member/dictionary layout, and translation of FG types to
    System F types.

    This module implements the paper's auxiliary functions:

    - {!assoc_scope} is [ba(c, τ̄)]: the associated types of a concept
      and of everything it (transitively) refines, mapped to their
      concept-qualified projections [C<τ̄>.s].
    - {!member_lookup} is [b(c, τ̄, n̄, Γ)]: the members reachable from a
      concept through refinement, each with its type (under the
      parameter and associated-type substitution) and the projection
      path to it inside the dictionary.
    - {!process_where} is [bw]/[bm]: processing a where clause in order,
      introducing proxy model entries for each requirement and for
      everything it refines (with diamond deduplication), generating a
      fresh type parameter per associated type together with the
      equation [s' = C<τ̄>.s], recording the concept's own same-type
      requirements, and computing each requirement's dictionary type.
    - {!translate_ty} is [Γ ⊢ τ ⇒ τ'] (Figures 8 and 12): every type is
      first replaced by its equivalence-class representative, and
      [forall] types gain one extra type parameter per associated type
      plus one dictionary parameter per requirement.

    The where-clause {!plan} is deliberately a {e syntactic} function of
    the binder list and constraint list (plus the concept table): type
    abstraction and type application must agree on the number and order
    of the extra type and dictionary parameters, and the application
    site's richer equality context must not change the layout.  Diamond
    deduplication therefore compares requirement arguments syntactically
    (up to alpha), not up to the equality relation. *)

open Ast
open Fg_util
module F = Fg_systemf.Ast
module Smap = Names.Smap

type plan = {
  p_slots : (string * (string * ty list * string)) list;
      (** fresh type-parameter name -> the projection [C<τ̄>.s] it
          stands for, in binder order; τ̄ written in terms of the
          abstraction's own binders *)
  p_dicts : (string * (string * ty list) * F.ty) list;
      (** dictionary variable -> top-level requirement and its
          dictionary type, in where-clause order *)
}

let no_requirements plan = plan.p_dicts = []

let arity_check ?loc what name ~expected ~got =
  if expected <> got then
    Diag.wf_error ~code:"FG0203" ?loc "%s %s expects %d type argument(s) but got %d" what
      name expected got

(* ------------------------------------------------------------------ *)
(* ba: associated types in scope for a concept instantiation           *)

(** [assoc_scope env (c, args)] maps every associated-type name visible
    in concept [c] — its own and those of the concepts it transitively
    refines — to its qualified projection.  On a name collision the
    first binding wins: the concept's own associated types shadow
    refined ones, and earlier refinements shadow later ones. *)
let rec assoc_scope ?loc env (c, args) : (string * ty) list =
  let decl = Env.lookup_concept_exn ?loc env c in
  arity_check ?loc "concept" c
    ~expected:(List.length decl.c_params)
    ~got:(List.length args);
  let own = List.map (fun s -> (s, TAssoc (c, args, s))) decl.c_assoc in
  let params = List.combine decl.c_params args in
  List.fold_left
    (fun acc (c', rargs) ->
      let rargs' = List.map (subst_ty_list (params @ acc)) rargs in
      let inherited = assoc_scope ?loc env (c', rargs') in
      acc
      @ List.filter (fun (s, _) -> not (List.mem_assoc s acc)) inherited)
    own decl.c_refines

(** Substitution applied to a concept's member types and same-type
    requirements when the concept is instantiated at [args]: parameters
    to arguments, associated-type names to qualified projections. *)
let instantiation_subst ?loc env (c, args) =
  let decl = Env.lookup_concept_exn ?loc env c in
  List.combine decl.c_params args @ assoc_scope ?loc env (c, args)

(** Direct refinements of [c<args>], instantiated. *)
let refinements ?loc env (c, args) : (string * ty list) list =
  let decl = Env.lookup_concept_exn ?loc env c in
  let s = instantiation_subst ?loc env (c, args) in
  List.map
    (fun (c', rargs) -> (c', List.map (subst_ty_list s) rargs))
    decl.c_refines

(** Nested requirements [require C'<σ̄>;] of [c<args>], instantiated
    (Section 6 extension): like refinements they contribute proxies and
    nested dictionaries, but no member names. *)
let requires ?loc env (c, args) : (string * ty list) list =
  let decl = Env.lookup_concept_exn ?loc env c in
  let s = instantiation_subst ?loc env (c, args) in
  List.map
    (fun (c', rargs) -> (c', List.map (subst_ty_list s) rargs))
    decl.c_requires

(** The concept's same-type requirements, instantiated. *)
let same_requirements ?loc env (c, args) : (ty * ty) list =
  let decl = Env.lookup_concept_exn ?loc env c in
  let s = instantiation_subst ?loc env (c, args) in
  List.map
    (fun (a, b) -> (subst_ty_list s a, subst_ty_list s b))
    decl.c_same

(* ------------------------------------------------------------------ *)
(* b: member lookup with dictionary paths                              *)

(** [member_lookup env (c, args) x] finds member [x] in concept [c] or
    in a concept it refines (depth-first, the concept's own members
    first), returning its instantiated type and the projection path into
    the dictionary for [c<args>].  The layout matches Figure 7: a
    dictionary is a tuple whose first [|refines|] components are the
    refined concepts' dictionaries and whose remaining components are
    the concept's own members in declaration order. *)
let rec member_lookup ?loc env (c, args) x : (ty * int list) option =
  let decl = Env.lookup_concept_exn ?loc env c in
  let s = instantiation_subst ?loc env (c, args) in
  let n_refines = List.length decl.c_refines + List.length decl.c_requires in
  match
    List.find_index (fun (y, _) -> String.equal x y) decl.c_members
  with
  | Some i ->
      let ty = subst_ty_list s (snd (List.nth decl.c_members i)) in
      Some (ty, [ n_refines + i ])
  | None ->
      let rec try_refines j = function
        | [] -> None
        | (c', rargs) :: rest -> (
            let rargs' = List.map (subst_ty_list s) rargs in
            match member_lookup ?loc env (c', rargs') x with
            | Some (ty, path) -> Some (ty, j :: path)
            | None -> try_refines (j + 1) rest)
      in
      try_refines 0 decl.c_refines

(** All members reachable from [c<args>], with types and paths; own
    members shadow refined ones of the same name (tests, docs, REPL). *)
let rec all_members ?loc env (c, args) : (string * ty * int list) list =
  let decl = Env.lookup_concept_exn ?loc env c in
  let s = instantiation_subst ?loc env (c, args) in
  let n_refines = List.length decl.c_refines + List.length decl.c_requires in
  let own =
    List.mapi
      (fun i (x, ty) -> (x, subst_ty_list s ty, [ n_refines + i ]))
      decl.c_members
  in
  let inherited =
    List.concat
      (List.mapi
         (fun j (c', rargs) ->
           let rargs' = List.map (subst_ty_list s) rargs in
           List.map
             (fun (x, ty, path) -> (x, ty, j :: path))
             (all_members ?loc env (c', rargs')))
         decl.c_refines)
  in
  own
  @ List.filter
      (fun (x, _, _) -> not (List.exists (fun (y, _, _) -> x = y) own))
      inherited

(* ------------------------------------------------------------------ *)
(* Well-formedness and translation of types (mutually recursive with
   where-clause processing)                                            *)

let rec wf_ty ?loc env (t : ty) : unit =
  match t with
  | TBase _ -> ()
  | TVar a ->
      if not (Env.tyvar_in_scope env a) then
        Diag.wf_error ~code:"FG0207" ?loc "unbound type variable '%s'" a
  | TArrow (args, ret) ->
      List.iter (wf_ty ?loc env) args;
      wf_ty ?loc env ret
  | TTuple ts -> List.iter (wf_ty ?loc env) ts
  | TList t -> wf_ty ?loc env t
  | TAssoc (c, args, s) -> (
      let decl = Env.lookup_concept_exn ?loc env c in
      arity_check ?loc "concept" c
        ~expected:(List.length decl.c_params)
        ~got:(List.length args);
      List.iter (wf_ty ?loc env) args;
      if not (List.mem s decl.c_assoc) then
        Diag.wf_error ~code:"FG0206" ?loc "concept %s has no associated type '%s'" c s;
      (* TYASC: the projection is only meaningful under a model. *)
      match Env.lookup_model env c args with
      | Some _ -> ()
      | None ->
          Diag.wf_error ?loc
            "associated type %s requires a model of %s in scope"
            (Pretty.ty_to_string t)
            (Pretty.constr_to_string (CModel (c, args))))
  | TForall (tvs, constrs, body) ->
      (match Names.find_duplicate tvs with
      | Some d ->
          Diag.wf_error ~code:"FG0204" ?loc "duplicate type parameter '%s' in forall" d
      | None -> ());
      List.iter
        (fun a ->
          if Env.tyvar_in_scope env a then
            Diag.wf_error ~code:"FG0205" ?loc
              "type parameter '%s' shadows a type variable in scope" a)
        tvs;
      let env', _plan = process_where ?loc env tvs constrs in
      wf_ty ?loc env' body

(* bw / bm: process a where clause in order.  Checks well-formedness of
   each constraint against the environment extended so far (so later
   requirements may mention earlier requirements' associated types),
   introduces proxy models and their equations, and computes the plan. *)
and process_where ?loc env (binders : string list) (constrs : constr list) :
    Env.t * plan =
  (match Names.find_duplicate binders with
  | Some d -> Diag.wf_error ~code:"FG0204" ?loc "duplicate type parameter '%s'" d
  | None -> ());
  List.iter
    (fun a ->
      if Env.tyvar_in_scope env a then
        Diag.wf_error ~code:"FG0205" ?loc
          "type parameter '%s' shadows a type variable in scope" a)
    binders;
  let env = Env.bind_tyvars env binders in
  let seen : (string * ty list) list ref = ref [] in
  let slots = ref [] in
  let dicts = ref [] in
  (* Visit one requirement and everything it refines, pre-order. *)
  let rec visit env dict_var path (c, args) : Env.t =
    if
      List.exists
        (fun (c', args') ->
          String.equal c c'
          && List.length args = List.length args'
          && List.for_all2 ty_equal args args')
        !seen
    then env (* diamond: already processed with the same arguments *)
    else begin
      seen := (c, args) :: !seen;
      let decl = Env.lookup_concept_exn ?loc env c in
      (* Fresh type parameter per associated type, with its defining
         equation s' = C<τ̄>.s. *)
      let env, assoc_map =
        List.fold_left_map
          (fun env s ->
            let v = Env.fresh env s in
            slots := (v, (c, args, s)) :: !slots;
            let env = Env.assume env (TVar v) (TAssoc (c, args, s)) in
            (env, (s, TVar v)))
          env decl.c_assoc
      in
      let env =
        Env.bind_model env
          {
            me_concept = c;
            me_params = [];
            me_constrs = [];
            me_args = args;
            me_dict = dict_var;
            me_path = path;
            me_assoc =
              List.fold_left
                (fun m (s, v) -> Smap.add s v m)
                Smap.empty assoc_map;
            me_proxy = true;
          }
      in
      (* Assume the concept's same-type requirements. *)
      let env =
        Env.assume_all env (same_requirements ?loc env (c, args))
      in
      (* Recurse into refinements, then nested requirements; their
         dictionaries occupy the leading tuple slots in that order. *)
      let refs = refinements ?loc env (c, args) in
      let reqs = requires ?loc env (c, args) in
      let n_refs = List.length refs in
      let env =
        List.fold_left
          (fun env (j, r) -> visit env dict_var (path @ [ j ]) r)
          env
          (List.mapi (fun j r -> (j, r)) refs)
      in
      List.fold_left
        (fun env (j, r) -> visit env dict_var (path @ [ n_refs + j ]) r)
        env
        (List.mapi (fun j r -> (j, r)) reqs)
    end
  in
  let env =
    List.fold_left
      (fun env constr ->
        match constr with
        | CModel (c, args) ->
            let decl = Env.lookup_concept_exn ?loc env c in
            arity_check ?loc "concept" c
              ~expected:(List.length decl.c_params)
              ~got:(List.length args);
            List.iter (wf_ty ?loc env) args;
            let d = Env.fresh env c in
            let env = visit env d [] (c, args) in
            dicts := (d, (c, args)) :: !dicts;
            env
        | CSame (a, b) ->
            wf_ty ?loc env a;
            wf_ty ?loc env b;
            Env.assume env a b)
      env constrs
  in
  (* Dictionary types are computed once the whole clause is in scope, so
     a requirement's type may mention any requirement's associated
     types via their representatives. *)
  let p_dicts =
    List.rev_map
      (fun (d, (c, args)) -> (d, (c, args), dict_type ?loc env (c, args)))
      !dicts
  in
  (env, { p_slots = List.rev !slots; p_dicts })

(* The dictionary type δ for a model of [c<args>] (Figure 7 layout):
   nested dictionaries for refined concepts first, then the translated
   member types. *)
and dict_type ?loc env (c, args) : F.ty =
  let decl = Env.lookup_concept_exn ?loc env c in
  let s = instantiation_subst ?loc env (c, args) in
  let refine_dicts =
    List.map (fun r -> dict_type ?loc env r)
      (refinements ?loc env (c, args) @ requires ?loc env (c, args))
  in
  let member_tys =
    List.map
      (fun (_, ty) -> translate_ty ?loc env (subst_ty_list s ty))
      decl.c_members
  in
  F.TTuple (refine_dicts @ member_tys)

(* Γ ⊢ τ ⇒ τ': replace by the class representative, then translate
   structurally; foralls get assoc-type parameters and dictionary
   parameters per their where clause. *)
and translate_ty ?loc env (t : ty) : F.ty =
  match Env.ty_repr ?loc env t with
  | TBase b -> F.TBase b
  | TVar a -> F.TVar a
  | TArrow (args, ret) ->
      F.TArrow (List.map (translate_ty ?loc env) args, translate_ty ?loc env ret)
  | TTuple ts -> F.TTuple (List.map (translate_ty ?loc env) ts)
  | TList t -> F.TList (translate_ty ?loc env t)
  | TAssoc (c, args, s) ->
      Diag.translate_error ?loc
        "associated type %s has no known binding (no model of %s in scope?)"
        (Pretty.ty_to_string (TAssoc (c, args, s)))
        (Pretty.constr_to_string (CModel (c, args)))
  | TForall (tvs, constrs, body) ->
      let env', plan = process_where ?loc env tvs constrs in
      let body' = translate_ty ?loc env' body in
      if no_requirements plan then F.TForall (tvs, body')
      else
        F.TForall
          ( tvs @ List.map fst plan.p_slots,
            F.TArrow (List.map (fun (_, _, d) -> d) plan.p_dicts, body') )

(* ------------------------------------------------------------------ *)
(* Instantiating a plan at a type-application site                     *)

(** The extra System F type arguments for a type application: the
    representative of each associated-type slot's projection, after
    substituting actual type arguments for the binders. *)
let plan_slot_actuals ?loc env ~subst:(s : (string * ty) list) (plan : plan) :
    F.ty list =
  List.map
    (fun (_, (c, args, assoc)) ->
      let args' = List.map (subst_ty_list s) args in
      translate_ty ?loc env (TAssoc (c, args', assoc)))
    plan.p_slots

(** The System F dictionary expression for a resolved model.  A ground
    model's dictionary is its (possibly projected) dictionary variable;
    a parameterized model's dictionary function is instantiated at the
    matched types and applied to the (recursively built) dictionaries of
    its own requirements — exactly a type application of the polymorphic
    dictionary. *)
let rec model_dict_exp ?loc env (fm : Env.found_model) : F.exp =
  let me = fm.Env.fm_entry in
  let base = F.nth_path ?loc (F.var ?loc me.Env.me_dict) me.Env.me_path in
  if me.Env.me_params = [] then base
  else begin
    let actual p =
      match List.assoc_opt p fm.Env.fm_subst with
      | Some t -> t
      | None ->
          Diag.resolve_error ?loc
            "parameterized model of %s: parameter '%s' not determined by \
             the matched arguments"
            me.Env.me_concept p
    in
    (* Rename the binders so the plan can be recomputed here, then
       instantiate it — mirroring the TAPP rule. *)
    let fresh_params = List.map (fun a -> Env.fresh env a) me.Env.me_params in
    let rename =
      List.map2 (fun a b -> (a, TVar b)) me.Env.me_params fresh_params
    in
    let constrs_r = List.map (subst_constr_list rename) me.Env.me_constrs in
    let _, plan = process_where ?loc env fresh_params constrs_r in
    let subst =
      List.map2 (fun fp p -> (fp, actual p)) fresh_params me.Env.me_params
    in
    let ty_args =
      List.map (fun p -> translate_ty ?loc env (actual p)) me.Env.me_params
    in
    if no_requirements plan then F.tyapp ?loc base ty_args
    else
      let slot_actuals = plan_slot_actuals ?loc env ~subst plan in
      let dict_actuals = plan_dict_actuals ?loc env ~subst plan in
      F.app ?loc (F.tyapp ?loc base (ty_args @ slot_actuals)) dict_actuals
  end

(** The dictionary arguments for a type application: for each top-level
    requirement, the dictionary expression of the resolved model. *)
and plan_dict_actuals ?loc env ~subst:(s : (string * ty) list) (plan : plan) :
    F.exp list =
  List.map
    (fun (_, (c, args), _) ->
      let args' = List.map (subst_ty_list s) args in
      match Env.lookup_model ?loc env c args' with
      | Some fm -> model_dict_exp ?loc env fm
      | None ->
          Diag.resolve_error ~code:"FG0402" ?loc "no model of %s in scope"
            (Pretty.constr_to_string (CModel (c, args'))))
    plan.p_dicts
