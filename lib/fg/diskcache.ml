(** On-disk content-addressed unit store (see the interface). *)

open Fg_util

let format_version = 1

type t = {
  root : string;
  max_bytes : int option;
  total_bytes : int Atomic.t;
      (** this process's running estimate; re-synced by every {!gc} *)
  entries : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  corrupt : int Atomic.t;
}

let root t = t.root

(* ---------------------------------------------------------------- *)
(* Blob framing                                                      *)

(* Unit keys hash marshalled ASTs and the bodies marshal closures, so
   neither survives a compiler rebuild: the stamp pins format, OCaml
   version and the exact binary, and the digest pins the bytes.
   Anything that fails to match is a miss. *)
let build_id =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unknown")

let stamp () =
  Printf.sprintf "fgcache %d %s %s" format_version Sys.ocaml_version
    (Lazy.force build_id)

let encode_blob body =
  String.concat "\n"
    [ stamp (); Digest.to_hex (Digest.string body); body ]

let decode_blob s =
  match String.index_opt s '\n' with
  | None -> None
  | Some i when String.sub s 0 i <> stamp () -> None
  | Some i -> (
      match String.index_from_opt s (i + 1) '\n' with
      | None -> None
      | Some j ->
          let dhex = String.sub s (i + 1) (j - i - 1) in
          let body = String.sub s (j + 1) (String.length s - j - 1) in
          if Digest.to_hex (Digest.string body) = dhex then Some body
          else None)

(* ---------------------------------------------------------------- *)
(* Paths                                                             *)

let shard_of hex = if String.length hex >= 2 then String.sub hex 0 2 else hex

let entry_path t key =
  let hex = Strutil.hex_encode key in
  Filename.concat (Filename.concat t.root (shard_of hex)) hex

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Every (shard, file, size, last-access) currently on disk.  mtime
   stands in for access time — [touch] refreshes it on every hit —
   because atime is unreliable under relatime mounts. *)
let scan t =
  let acc = ref [] in
  (match Sys.readdir t.root with
  | exception Sys_error _ -> ()
  | shards ->
      Array.iter
        (fun shard ->
          let dir = Filename.concat t.root shard in
          match Sys.readdir dir with
          | exception Sys_error _ -> ()
          | files ->
              Array.iter
                (fun f ->
                  let path = Filename.concat dir f in
                  match Unix.stat path with
                  | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                      acc := (path, st_mtime, st_size) :: !acc
                  | _ | (exception Unix.Unix_error _) -> ())
                files)
        shards);
  !acc

let resync t found =
  Atomic.set t.total_bytes
    (List.fold_left (fun a (_, _, sz) -> a + sz) 0 found);
  Atomic.set t.entries (List.length found)

let gc t =
  let found = scan t in
  match t.max_bytes with
  | None -> resync t found
  | Some bound ->
      let total = List.fold_left (fun a (_, _, sz) -> a + sz) 0 found in
      if total <= bound then resync t found
      else begin
        (* Oldest access first; path as tiebreak keeps the order
           deterministic when timestamps collide. *)
        let by_age =
          List.sort
            (fun (p1, m1, _) (p2, m2, _) ->
              match compare (m1 : float) m2 with
              | 0 -> String.compare p1 p2
              | c -> c)
            found
        in
        let remaining = ref total in
        let kept = ref [] in
        List.iter
          (fun ((path, _, sz) as e) ->
            if !remaining > bound then begin
              (try Sys.remove path with Sys_error _ -> ());
              remaining := !remaining - sz;
              Atomic.incr t.evictions;
              Telemetry.record_disk_eviction ()
            end
            else kept := e :: !kept)
          by_age;
        resync t !kept
      end

let open_store ?max_bytes root =
  (try mkdir_p root
   with Unix.Unix_error (e, _, _) ->
     Diag.config_error ~code:"FG1002" "cannot create cache directory %s: %s"
       root (Unix.error_message e));
  if not (try Sys.is_directory root with Sys_error _ -> false) then
    Diag.config_error ~code:"FG1002"
      "cache directory %s is not a directory" root;
  let t =
    {
      root;
      max_bytes = Option.map (max 0) max_bytes;
      total_bytes = Atomic.make 0;
      entries = Atomic.make 0;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
      corrupt = Atomic.make 0;
    }
  in
  resync t (scan t);
  t

(* ---------------------------------------------------------------- *)
(* Get / put                                                         *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try Some (really_input_string ic (in_channel_length ic))
          with End_of_file | Sys_error _ -> None)

let miss t =
  Atomic.incr t.misses;
  Telemetry.record_disk_miss ();
  None

(* A validation failure is *removed* (it can never validate again in
   this build) and read as a miss. *)
let drop_corrupt t path =
  Atomic.incr t.corrupt;
  Telemetry.record_corrupt_entry ();
  (try Sys.remove path with Sys_error _ -> ());
  miss t

let get t key =
  let path = entry_path t key in
  match read_file path with
  | None -> miss t
  | Some raw -> (
      match decode_blob raw with
      | None -> drop_corrupt t path
      | Some body ->
          Atomic.incr t.hits;
          Telemetry.record_disk_hit ();
          (* Refresh the access stamp for oldest-first GC; both times
             to "now" is exactly what utimes 0 0 means. *)
          (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
          Some body)

let put t key body =
  let path = entry_path t key in
  if not (Sys.file_exists path) then begin
    match
      mkdir_p (Filename.dirname path);
      let tmp, oc =
        Filename.open_temp_file ~temp_dir:t.root ~mode:[ Open_binary ]
          "put" ".tmp"
      in
      (tmp, oc)
    with
    | exception _ -> () (* unwritable store: degrade to uncached *)
    | tmp, oc -> (
        match
          output_string oc (encode_blob body);
          close_out oc;
          Unix.rename tmp path
        with
        | () ->
            ignore
              (Atomic.fetch_and_add t.total_bytes
                 (String.length body + 64));
            ignore (Atomic.fetch_and_add t.entries 1);
            (match t.max_bytes with
            | Some bound when Atomic.get t.total_bytes > bound -> gc t
            | _ -> ())
        | exception _ ->
            close_out_noerr oc;
            (try Sys.remove tmp with Sys_error _ -> ()))
  end

(* ---------------------------------------------------------------- *)
(* Stats                                                             *)

type stats = {
  d_hits : int;
  d_misses : int;
  d_evictions : int;
  d_corrupt : int;
  d_entries : int;
  d_bytes : int;
}

let stats t =
  {
    d_hits = Atomic.get t.hits;
    d_misses = Atomic.get t.misses;
    d_evictions = Atomic.get t.evictions;
    d_corrupt = Atomic.get t.corrupt;
    d_entries = Atomic.get t.entries;
    d_bytes = Atomic.get t.total_bytes;
  }
