(* Dedicated tests for the FG pretty printer: exact renderings,
   precedence-driven parenthesization, and full-corpus round-trips in
   both languages. *)

open Fg_core

let flat src = Pretty.exp_to_flat_string (Parser.exp_of_string src)
let flat_ty src =
  Fg_util.Pp_util.to_flat_string Pretty.pp_ty (Parser.ty_of_string src)

let check_exp src expected = Alcotest.(check string) src expected (flat src)
let check_ty src expected = Alcotest.(check string) src expected (flat_ty src)

let test_exact_expressions () =
  check_exp "let x = 1 in x + x" "let x = 1 in iadd(x, x)";
  check_exp "fun (x : int, y : bool) => (y, x)"
    "fun (x : int, y : bool) => (y, x)";
  check_exp "tfun t where Monoid<t> => Monoid<t>.identity_elt"
    "tfun t where Monoid<t> => Monoid<t>.identity_elt";
  check_exp "tfun a b where a == b => 1" "tfun a b where a == b => 1";
  check_exp "using m in C<int>.v" "using m in C<int>.v";
  check_exp "type t = list int in 0" "type t = list int in 0";
  check_exp "fix (f : fn(int) -> int) => fun (n : int) => f(n)"
    "fix (f : fn(int) -> int) => fun (n : int) => f(n)"

let test_precedence_parens () =
  (* application binds tighter than the open forms *)
  check_exp "(fun (x : int) => x)(1)" "(fun (x : int) => x)(1)";
  check_exp "(if true then car[int] else cdr2)(nil[int])"
    "(if true then car[int] else cdr2)(nil[int])";
  (* nth keeps its operand atomic *)
  check_exp "nth (1, 2) 0" "nth (1, 2) 0";
  check_exp "nth (f(x)) 0" "nth (f(x)) 0";
  (* nested let prints without spurious parens *)
  check_exp "let x = let y = 1 in y in x" "let x = let y = 1 in y in x"

let test_exact_types () =
  check_ty "fn(int, bool) -> list int" "fn(int, bool) -> list int";
  check_ty "forall t where Monoid<t>. fn(t) -> t"
    "forall t where Monoid<t>. fn(t) -> t";
  check_ty "forall i1 i2 where Iterator<i1>, Iterator<i1>.elt == Iterator<i2>.elt. bool"
    "forall i1 i2 where Iterator<i1>, Iterator<i1>.elt == Iterator<i2>.elt. bool";
  check_ty "int * list bool * unit" "int * list bool * unit";
  check_ty "fn(fn(int) -> int) -> int" "fn(fn(int) -> int) -> int";
  check_ty "(int * bool) * int" "(int * bool) * int";
  check_ty "list (int * bool)" "list (int * bool)";
  check_ty "tuple(int) * tuple()" "tuple(int) * tuple()"

let test_concept_rendering () =
  let src =
    {|concept Container<c> {
  types iter;
  refines Sized<c>;
  require Iterator<iter>;
  same Iterator<iter>.elt == int;
  begin : fn(c) -> iter;
  empty : fn(c) -> bool = fun (x : c) => true;
} in 0|}
  in
  let d =
    match (Parser.exp_of_string src).Ast.desc with
    | Ast.ConceptDecl (d, _) -> d
    | _ -> Alcotest.fail "shape"
  in
  let rendered = Fg_util.Pp_util.to_flat_string Pretty.pp_concept_decl d in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_contains.contains ~needle rendered))
    [
      "types iter;"; "refines Sized<c>;"; "require Iterator<iter>;";
      "same Iterator<iter>.elt == int;"; "begin : fn(c) -> iter;";
      "empty : fn(c) -> bool = fun (x : c) => true;";
    ]

let test_model_rendering () =
  let render src =
    match (Parser.exp_of_string src).Ast.desc with
    | Ast.ModelDecl (d, _) ->
        Fg_util.Pp_util.to_flat_string Pretty.pp_model_decl d
    | _ -> Alcotest.fail "shape"
  in
  Alcotest.(check string) "ground"
    "model Eq<int> { eq = ieq; }"
    (render "model Eq<int> { eq = ieq; } in 0");
  Alcotest.(check bool) "named" true
    (Astring_contains.contains ~needle:"model m = Eq<int>"
       (render "model m = Eq<int> { eq = ieq; } in 0"));
  Alcotest.(check bool) "parameterized with context" true
    (Astring_contains.contains ~needle:"model <t> where Eq<t> => Eq<list t>"
       (render
          "model <t> where Eq<t> => Eq<list t> { eq = fun (a : list t, b : list t) => true; } in 0"))

let test_corpus_roundtrip_both_languages () =
  List.iter
    (fun (e : Corpus.entry) ->
      (* FG round-trip *)
      let ast = Parser.exp_of_string e.source in
      let re = Parser.exp_of_string (Pretty.exp_to_string ast) in
      Alcotest.(check string) (e.name ^ " fg-roundtrip")
        (Pretty.exp_to_flat_string ast)
        (Pretty.exp_to_flat_string re);
      (* translated F round-trip *)
      match e.expected with
      | Corpus.Value _ ->
          let f = Check.translate ast in
          let rf = Fg_systemf.Parser.exp_of_string
              (Fg_systemf.Pretty.exp_to_string f)
          in
          Alcotest.(check bool) (e.name ^ " f-roundtrip") true
            (Fg_systemf.Ast.exp_equal f rf)
      | Corpus.Fails _ -> ())
    Corpus.all

let suite =
  [
    Alcotest.test_case "exact expression renderings" `Quick
      test_exact_expressions;
    Alcotest.test_case "precedence parenthesization" `Quick
      test_precedence_parens;
    Alcotest.test_case "exact type renderings" `Quick test_exact_types;
    Alcotest.test_case "concept rendering" `Quick test_concept_rendering;
    Alcotest.test_case "model rendering" `Quick test_model_rendering;
    Alcotest.test_case "corpus round-trips (both languages)" `Quick
      test_corpus_roundtrip_both_languages;
  ]
