test/test_util.ml: Alcotest Diag Fg_util Fmt Gensym List Loc Names Pp_util String
