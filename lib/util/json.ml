(** Minimal JSON emission and parsing (see the interface).  Writing our
    own keeps fg_util dependency-free; the emitter serves the driver's
    [--format=json] output and the parser serves the server wire
    protocol, whose frames must survive a byte-exact round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      (* JSON has no NaN/Infinity; clamp to null like most emitters *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | Str s -> escape_string b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          escape_string b k;
          Buffer.add_string b ": ";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  write b t;
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)

let rec sort_keys = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> v
  | List items -> List (List.map sort_keys items)
  | Obj fields ->
      (* Stable sort, so among duplicate keys the original order is
         kept and the later one wins when read back left-to-right. *)
      Obj
        (List.stable_sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.map (fun (k, v) -> (k, sort_keys v)) fields))

(* ---------------------------------------------------------------- *)
(* Parsing                                                           *)

(* A recursive-descent reader over the input string.  Depth is bounded
   so a frame of ten thousand '[' characters cannot blow the stack:
   the wire protocol nests a handful of levels, so the cap is generous
   without being exploitable. *)

exception Parse_fail of int * string

let max_depth = 255

type reader = { s : string; mutable pos : int }

let fail r msg = raise (Parse_fail (r.pos, msg))
let peek r = if r.pos < String.length r.s then Some r.s.[r.pos] else None

let next r =
  match peek r with
  | Some c ->
      r.pos <- r.pos + 1;
      c
  | None -> fail r "unexpected end of input"

let skip_ws r =
  while
    match peek r with
    | Some (' ' | '\t' | '\n' | '\r') ->
        r.pos <- r.pos + 1;
        true
    | _ -> false
  do
    ()
  done

let expect r c =
  let got = next r in
  if got <> c then fail r (Printf.sprintf "expected '%c', found '%c'" c got)

let expect_lit r lit v =
  String.iter (fun c -> expect r c) lit;
  v

(* UTF-8-encode a code point into the buffer; \uXXXX escapes (including
   surrogate pairs) decode through here. *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 r =
  let digit () =
    match next r with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | c -> fail r (Printf.sprintf "invalid hex digit '%c'" c)
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string r =
  expect r '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match next r with
    | '"' -> Buffer.contents b
    | '\\' ->
        (match next r with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            let cp = hex4 r in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* high surrogate: must be followed by \uDC00-\uDFFF *)
              expect r '\\';
              expect r 'u';
              let lo = hex4 r in
              if lo < 0xDC00 || lo > 0xDFFF then
                fail r "unpaired surrogate in \\u escape";
              add_utf8 b
                (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then
              fail r "unpaired low surrogate in \\u escape"
            else add_utf8 b cp
        | c -> fail r (Printf.sprintf "invalid escape '\\%c'" c));
        loop ()
    | c when Char.code c < 0x20 ->
        fail r "unescaped control character in string"
    | c ->
        Buffer.add_char b c;
        loop ()
  in
  loop ()

let parse_number r =
  let start = r.pos in
  let is_float = ref false in
  if peek r = Some '-' then r.pos <- r.pos + 1;
  let digits () =
    let seen = ref false in
    while
      match peek r with
      | Some '0' .. '9' ->
          seen := true;
          r.pos <- r.pos + 1;
          true
      | _ -> false
    do
      ()
    done;
    if not !seen then fail r "malformed number"
  in
  digits ();
  (match peek r with
  | Some '.' ->
      is_float := true;
      r.pos <- r.pos + 1;
      digits ()
  | _ -> ());
  (match peek r with
  | Some ('e' | 'E') ->
      is_float := true;
      r.pos <- r.pos + 1;
      (match peek r with
      | Some ('+' | '-') -> r.pos <- r.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub r.s start (r.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)

let rec parse_value r depth =
  if depth > max_depth then fail r "nesting too deep";
  skip_ws r;
  match peek r with
  | None -> fail r "unexpected end of input"
  | Some '"' -> Str (parse_string r)
  | Some 'n' -> expect_lit r "null" Null
  | Some 't' -> expect_lit r "true" (Bool true)
  | Some 'f' -> expect_lit r "false" (Bool false)
  | Some ('-' | '0' .. '9') -> parse_number r
  | Some '[' ->
      r.pos <- r.pos + 1;
      skip_ws r;
      if peek r = Some ']' then begin
        r.pos <- r.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value r (depth + 1) in
          skip_ws r;
          match next r with
          | ',' -> items (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | c -> fail r (Printf.sprintf "expected ',' or ']', found '%c'" c)
        in
        items []
  | Some '{' ->
      r.pos <- r.pos + 1;
      skip_ws r;
      if peek r = Some '}' then begin
        r.pos <- r.pos + 1;
        Obj []
      end
      else
        let field () =
          skip_ws r;
          let k = parse_string r in
          skip_ws r;
          expect r ':';
          let v = parse_value r (depth + 1) in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws r;
          match next r with
          | ',' -> fields (kv :: acc)
          | '}' -> Obj (List.rev (kv :: acc))
          | c -> fail r (Printf.sprintf "expected ',' or '}', found '%c'" c)
        in
        fields []
  | Some c -> fail r (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let r = { s; pos = 0 } in
  match parse_value r 0 with
  | v -> (
      skip_ws r;
      match peek r with
      | None -> Ok v
      | Some c ->
          Error
            (Printf.sprintf "byte %d: trailing content starting with '%c'"
               r.pos c))
  | exception Parse_fail (pos, msg) ->
      Error (Printf.sprintf "byte %d: %s" pos msg)

(* ---------------------------------------------------------------- *)
(* Accessors                                                         *)

let mem k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str_field k j =
  match mem k j with Some (Str s) -> Some s | _ -> None

let int_field k j =
  match mem k j with
  | Some (Int n) -> Some n
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_field k j =
  match mem k j with Some (Bool b) -> Some b | _ -> None
