(* Quickstart: the library's public API in one tour.

   Run with:  dune exec examples/quickstart.exe

   We write the paper's Figure 5 program (generic [accumulate] over any
   Monoid), type check it, translate it to System F with dictionary
   passing, verify the translation-preserves-typing theorem, and run it
   both with the direct FG interpreter and by evaluating the
   translation. *)

module C = Fg_core
module F = Fg_systemf

let program =
  {|
// A Semigroup is a type with an associative binary operation;
// a Monoid is a Semigroup with an identity element (Section 3.1).
concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
concept Monoid<t>    { refines Semigroup<t>; identity_elt : t; } in

// Figure 5: accumulate works for ANY Monoid.
let accumulate =
  tfun t where Monoid<t> =>
    fix (accum : fn(list t) -> t) =>
      fun (ls : list t) =>
        if null[t](ls) then Monoid<t>.identity_elt
        else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))
in

// int models Monoid with + and 0.
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int>    { identity_elt = 0; } in

accumulate[int](cons[int](1, cons[int](2, cons[int](3, nil[int]))))
|}

let () =
  Fmt.pr "=== Quickstart: generic accumulate (paper Figure 5) ===@.@.";

  (* 1. Parse. *)
  let ast = C.Parser.exp_of_string ~file:"quickstart" program in
  Fmt.pr "parsed %d AST nodes@.@." (C.Ast.exp_size ast);

  (* 2. Type check: the program is well-typed FG. *)
  let fg_ty = C.Check.typecheck ast in
  Fmt.pr "FG type: %a@.@." C.Pretty.pp_ty fg_ty;

  (* 3. Translate to System F: models become dictionary tuples, the
     where clause becomes a dictionary parameter (paper Section 4). *)
  let f = C.Check.translate ast in
  Fmt.pr "System F translation:@.%a@.@." F.Pretty.pp_exp f;

  (* 4. Verify Theorem 1: the translation type checks in System F at
     (the translation of) the same type. *)
  let report = C.Theorems.check_translation ast in
  Fmt.pr "Theorem 1 (translation preserves typing): HOLDS@.";
  Fmt.pr "  System F assigns: %a@.@." F.Pretty.pp_ty report.f_ty;

  (* 5. Run it — twice. *)
  let direct = C.Interp.run_value ast in
  let via_translation = F.Eval.run_value f in
  Fmt.pr "direct FG interpreter : %a@." C.Interp.pp_value direct;
  Fmt.pr "via the translation   : %a@." F.Eval.pp_value via_translation;

  (* 6. Or do all of the above in one call, via a session. *)
  let out = C.Session.run ~file:"quickstart" (C.Session.create ()) program in
  Fmt.pr "@.pipeline says: %a : %a (theorem %s)@." C.Interp.pp_flat out.value
    C.Pretty.pp_ty out.fg_ty
    (if out.theorem_holds then "holds" else "VIOLATED")
