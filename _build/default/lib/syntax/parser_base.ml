(** Token-stream cursor shared by the two recursive-descent parsers.

    Wraps the array produced by {!Lexer.tokenize} with peeking,
    expectation and error-reporting helpers.  The parsers themselves live
    with their languages ([fg_systemf] and [fg_core]). *)

open Fg_util

type t = { toks : (Token.t * Loc.t) array; mutable cursor : int }

let of_tokens toks =
  if Array.length toks = 0 then Diag.ice "parser: empty token stream";
  { toks; cursor = 0 }

let of_string ?file src = of_tokens (Lexer.tokenize ?file src)

let peek p = fst p.toks.(p.cursor)

let peek2 p =
  if p.cursor + 1 < Array.length p.toks then fst p.toks.(p.cursor + 1)
  else Token.EOF

(** [peek_nth p 0 = peek p]. *)
let peek_nth p k =
  if p.cursor + k < Array.length p.toks then fst p.toks.(p.cursor + k)
  else Token.EOF

let loc p = snd p.toks.(p.cursor)

(** Span of the most recently consumed token. *)
let prev_loc p = if p.cursor = 0 then loc p else snd p.toks.(p.cursor - 1)

let advance p =
  let tok, l = p.toks.(p.cursor) in
  if tok <> Token.EOF then p.cursor <- p.cursor + 1;
  (tok, l)

let skip p = ignore (advance p)

let error p fmt =
  Fmt.kstr
    (fun msg ->
      Diag.parse_error ~loc:(loc p) "%s (found %s)" msg
        (Token.to_string (peek p)))
    fmt

let expect p tok =
  if Token.equal (peek p) tok then snd (advance p)
  else error p "expected %s" (Token.to_string tok)

(** Consume [tok] if present; report whether it was. *)
let eat p tok =
  if Token.equal (peek p) tok then begin
    skip p;
    true
  end
  else false

let expect_kw p kw = ignore (expect p (Token.KW kw))

let at_kw p kw = Token.equal (peek p) (Token.KW kw)

let expect_lident p =
  match peek p with
  | Token.LIDENT s ->
      skip p;
      s
  | _ -> error p "expected a lowercase identifier"

let expect_uident p =
  match peek p with
  | Token.UIDENT s ->
      skip p;
      s
  | _ -> error p "expected a capitalized identifier"

let expect_int p =
  match peek p with
  | Token.INT n ->
      skip p;
      n
  | _ -> error p "expected an integer literal"

(** [sep_list p ~sep ~elem] parses [elem (sep elem)*]. *)
let sep_list p ~sep ~elem =
  let rec more acc = if eat p sep then more (elem p :: acc) else List.rev acc in
  let first = elem p in
  more [ first ]

(** Fail unless the whole input was consumed. *)
let expect_eof p =
  match peek p with
  | Token.EOF -> ()
  | _ -> error p "expected end of input"
