(* Tests for the resolution-mode ablation (DESIGN.md S6 / experiment
   E4+E9): lexical (FG) vs global (Haskell-style) model resolution. *)

open Fg_core

let lexical = Resolution.Lexical
let global = Resolution.Global

let run ?resolution src = Pipeline.run_result ?resolution src

let test_fig6_lexical_ok_global_rejected () =
  (* the paper's Figure 6 program *)
  let src = Corpus.fig6_overlap.source in
  (match run ~resolution:lexical src with
  | Ok out ->
      Alcotest.(check string) "lexical value" "(3, 2)"
        (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "lexical: %s" (Fg_util.Diag.to_string d));
  match run ~resolution:global src with
  | Ok _ -> Alcotest.fail "global mode must reject Figure 6"
  | Error d ->
      Alcotest.(check bool) "resolve phase" true
        (d.phase = Fg_util.Diag.Resolve);
      Alcotest.(check bool) "overlap message" true
        (Astring_contains.contains ~needle:"overlapping model" d.message)

let test_shadowing_rejected_globally () =
  (* even nested shadowing counts as overlap under global resolution *)
  let src = Corpus.model_shadowing.source in
  (match run ~resolution:lexical src with
  | Ok out ->
      Alcotest.(check string) "lexical shadowing" "6"
        (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "lexical: %s" (Fg_util.Diag.to_string d));
  match run ~resolution:global src with
  | Ok _ -> Alcotest.fail "global mode must reject shadowing"
  | Error _ -> ()

let test_no_overlap_agrees () =
  (* without overlap, both modes accept and agree *)
  List.iter
    (fun (e : Corpus.entry) ->
      match (run ~resolution:lexical e.source, run ~resolution:global e.source) with
      | Ok a, Ok b ->
          Alcotest.(check string) (e.name ^ " values agree")
            (Interp.flat_to_string a.value)
            (Interp.flat_to_string b.value)
      | Error d, _ ->
          Alcotest.failf "%s lexical: %s" e.name (Fg_util.Diag.to_string d)
      | _, Error d ->
          Alcotest.failf "%s global: %s" e.name (Fg_util.Diag.to_string d))
    [
      Corpus.fig1_square;
      Corpus.fig5_accumulate;
      Corpus.iterator_accumulate;
      Corpus.merge_example;
      Corpus.diamond_refinement;
    ]

let test_distinct_types_not_overlap () =
  (* models at different types never overlap, even globally *)
  let src =
    {|concept Show<t> { render : fn(t) -> int; } in
model Show<int> { render = fun (x : int) => x; } in
model Show<bool> { render = fun (b : bool) => if b then 1 else 0; } in
(Show<int>.render(3), Show<bool>.render(true))|}
  in
  match run ~resolution:global src with
  | Ok out ->
      Alcotest.(check string) "accepted" "(3, 1)"
        (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "global: %s" (Fg_util.Diag.to_string d)

let test_distinct_concepts_not_overlap () =
  let src =
    {|concept A<t> { a : t; } in
concept B<t> { b : t; } in
model A<int> { a = 1; } in
model B<int> { b = 2; } in
A<int>.a + B<int>.b|}
  in
  match run ~resolution:global src with
  | Ok out ->
      Alcotest.(check string) "accepted" "3" (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "global: %s" (Fg_util.Diag.to_string d)

let test_overlap_detected_across_scopes () =
  (* the two models are in sibling scopes that never coexist — global
     mode still rejects (Haskell instances leak across modules), which
     is exactly the paper's Section 3.2 point *)
  let src =
    {|concept A<t> { a : t; } in
let x = model A<int> { a = 1; } in A<int>.a in
let y = model A<int> { a = 2; } in A<int>.a in
x + y|}
  in
  (match run ~resolution:lexical src with
  | Ok out ->
      Alcotest.(check string) "lexical" "3" (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "lexical: %s" (Fg_util.Diag.to_string d));
  match run ~resolution:global src with
  | Ok _ -> Alcotest.fail "global must reject sibling overlap"
  | Error _ -> ()

let test_mode_names () =
  Alcotest.(check string) "lexical" "lexical" (Resolution.mode_name lexical);
  Alcotest.(check string) "global" "global" (Resolution.mode_name global)

let suite =
  [
    Alcotest.test_case "Figure 6: lexical accepts, global rejects" `Quick
      test_fig6_lexical_ok_global_rejected;
    Alcotest.test_case "shadowing rejected globally" `Quick
      test_shadowing_rejected_globally;
    Alcotest.test_case "no overlap: modes agree" `Quick test_no_overlap_agrees;
    Alcotest.test_case "distinct types ok globally" `Quick
      test_distinct_types_not_overlap;
    Alcotest.test_case "distinct concepts ok globally" `Quick
      test_distinct_concepts_not_overlap;
    Alcotest.test_case "sibling scopes overlap globally" `Quick
      test_overlap_detected_across_scopes;
    Alcotest.test_case "mode names" `Quick test_mode_names;
  ]
