(** Catalogue of primitive constants shared by System F and System FG.

    The paper assumes ambient constants such as [iadd], [imult], [cons],
    [car], [cdr], [null] and [nil] (Figures 3, 5, 6).  Each primitive has
    a (possibly polymorphic) System F type scheme; FG reuses the same
    catalogue by embedding these types (FG types are a superset).

    A primitive is fully applied as [prim[tys](args)]; partial
    application is permitted operationally (a primitive value simply
    accumulates arguments until its arity is reached). *)

open Ast

type info = {
  name : string;
  ty : ty;  (** closed type scheme *)
  arity : int;  (** term arity after full type instantiation; 0 for [nil] *)
}

let a = "a"

let arrow args ret = TArrow (args, ret)
let int_ = TBase TInt
let bool_ = TBase TBool

let table : info list =
  [
    (* Integer arithmetic *)
    { name = "iadd"; ty = arrow [ int_; int_ ] int_; arity = 2 };
    { name = "isub"; ty = arrow [ int_; int_ ] int_; arity = 2 };
    { name = "imult"; ty = arrow [ int_; int_ ] int_; arity = 2 };
    { name = "idiv"; ty = arrow [ int_; int_ ] int_; arity = 2 };
    { name = "imod"; ty = arrow [ int_; int_ ] int_; arity = 2 };
    { name = "ineg"; ty = arrow [ int_ ] int_; arity = 1 };
    { name = "imin"; ty = arrow [ int_; int_ ] int_; arity = 2 };
    { name = "imax"; ty = arrow [ int_; int_ ] int_; arity = 2 };
    (* Integer comparison *)
    { name = "ilt"; ty = arrow [ int_; int_ ] bool_; arity = 2 };
    { name = "ile"; ty = arrow [ int_; int_ ] bool_; arity = 2 };
    { name = "igt"; ty = arrow [ int_; int_ ] bool_; arity = 2 };
    { name = "ige"; ty = arrow [ int_; int_ ] bool_; arity = 2 };
    { name = "ieq"; ty = arrow [ int_; int_ ] bool_; arity = 2 };
    { name = "ineq"; ty = arrow [ int_; int_ ] bool_; arity = 2 };
    (* Booleans *)
    { name = "band"; ty = arrow [ bool_; bool_ ] bool_; arity = 2 };
    { name = "bor"; ty = arrow [ bool_; bool_ ] bool_; arity = 2 };
    { name = "bnot"; ty = arrow [ bool_ ] bool_; arity = 1 };
    { name = "beq"; ty = arrow [ bool_; bool_ ] bool_; arity = 2 };
    (* Lists *)
    { name = "nil"; ty = TForall ([ a ], TList (TVar a)); arity = 0 };
    {
      name = "cons";
      ty = TForall ([ a ], arrow [ TVar a; TList (TVar a) ] (TList (TVar a)));
      arity = 2;
    };
    { name = "car"; ty = TForall ([ a ], arrow [ TList (TVar a) ] (TVar a)); arity = 1 };
    {
      name = "cdr";
      ty = TForall ([ a ], arrow [ TList (TVar a) ] (TList (TVar a)));
      arity = 1;
    };
    {
      name = "null";
      ty = TForall ([ a ], arrow [ TList (TVar a) ] bool_);
      arity = 1;
    };
    {
      name = "length";
      ty = TForall ([ a ], arrow [ TList (TVar a) ] int_);
      arity = 1;
    };
    {
      name = "append";
      ty =
        TForall
          ([ a ], arrow [ TList (TVar a); TList (TVar a) ] (TList (TVar a)));
      arity = 2;
    };
  ]

let by_name = Hashtbl.create 32

let () = List.iter (fun i -> Hashtbl.replace by_name i.name i) table

let lookup name = Hashtbl.find_opt by_name name

let lookup_exn ?loc name =
  match lookup name with
  | Some i -> i
  | None -> Fg_util.Diag.type_error ?loc "unknown primitive '%s'" name

let is_prim name = Hashtbl.mem by_name name
