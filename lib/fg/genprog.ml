(** Deterministic synthetic program families for the benchmark harness.

    Each family scales one dimension of the language implementation that
    DESIGN.md's experiment index calls out (rows B1–B5): refinement
    depth (dictionary nesting), number of models in scope (lookup),
    where-clause width (plan size), same-type constraint chains
    (congruence closure), and overall program size.  All functions
    return complete programs in concrete syntax. *)

let buf_program build =
  let b = Buffer.create 4096 in
  build b;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

(** A refinement chain of depth [n]: [C0 <- C1 <- ... <- C(n-1)], one
    member each; the generic function requires the deepest concept and
    accesses the {e shallowest} member, exercising the longest
    dictionary path. *)
let refinement_chain n =
  assert (n >= 1);
  buf_program (fun b ->
      for i = 0 to n - 1 do
        if i = 0 then
          Buffer.add_string b
            "concept C0<t> { op0 : fn(t, t) -> t; base : t; } in\n"
        else
          Printf.bprintf b "concept C%d<t> { refines C%d<t>; op%d : t; } in\n"
            i (i - 1) i
      done;
      Buffer.add_string b "model C0<int> { op0 = iadd; base = 1; } in\n";
      for i = 1 to n - 1 do
        Printf.bprintf b "model C%d<int> { op%d = %d; } in\n" i i i
      done;
      Printf.bprintf b
        "let f = tfun t where C%d<t> => fun (x : t) => C%d<t>.op0(x, \
         C%d<t>.base) in\nf[int](41)"
        (n - 1) (n - 1) (n - 1))

(** A diamond lattice of depth [n]: level [i] has two concepts, each
    refining both concepts of the previous level — the dedup stress from
    Section 5.2.  Every concept carries an associated type, so the slot
    deduplication is exercised too. *)
let refinement_diamond n =
  assert (n >= 1);
  buf_program (fun b ->
      Buffer.add_string b
        "concept D0a<t> { types s0a; v0a : t; } in\n\
         concept D0b<t> { types s0b; v0b : t; } in\n";
      for i = 1 to n - 1 do
        Printf.bprintf b
          "concept D%da<t> { types s%da; refines D%da<t>, D%db<t>; v%da : t; \
           } in\n"
          i i (i - 1) (i - 1) i;
        Printf.bprintf b
          "concept D%db<t> { types s%db; refines D%da<t>, D%db<t>; v%db : t; \
           } in\n"
          i i (i - 1) (i - 1) i
      done;
      Buffer.add_string b
        "model D0a<int> { types s0a = int; v0a = 1; } in\n\
         model D0b<int> { types s0b = int; v0b = 2; } in\n";
      for i = 1 to n - 1 do
        Printf.bprintf b "model D%da<int> { types s%da = int; v%da = %d; } in\n"
          i i i (2 * i);
        Printf.bprintf b "model D%db<int> { types s%db = int; v%db = %d; } in\n"
          i i i ((2 * i) + 1)
      done;
      Printf.bprintf b
        "let f = tfun t where D%da<t> => fun (x : t) => D%da<t>.v0a in\n\
         f[int](0)"
        (n - 1) (n - 1))

(** [many_models n]: [n] independent concept/model pairs in scope; the
    generic function requires only the first-declared concept, so model
    lookup scans past the other [n-1]. *)
let many_models n =
  assert (n >= 1);
  buf_program (fun b ->
      for i = 0 to n - 1 do
        Printf.bprintf b "concept M%d<t> { get%d : t; } in\n" i i
      done;
      for i = 0 to n - 1 do
        Printf.bprintf b "model M%d<int> { get%d = %d; } in\n" i i i
      done;
      Buffer.add_string b
        "let f = tfun t where M0<t> => fun (x : t) => M0<t>.get0 in\nf[int](0)")

(** [wide_where n]: one generic function with [n] distinct requirements,
    all used in the body; [n] dictionaries are passed. *)
let wide_where n =
  assert (n >= 1);
  buf_program (fun b ->
      for i = 0 to n - 1 do
        Printf.bprintf b "concept W%d<t> { w%d : fn(t) -> t; } in\n" i i
      done;
      for i = 0 to n - 1 do
        Printf.bprintf b
          "model W%d<int> { w%d = fun (x : int) => x + %d; } in\n" i i i
      done;
      Buffer.add_string b "let f = tfun t where ";
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_string b ", ";
        Printf.bprintf b "W%d<t>" i
      done;
      Buffer.add_string b " => fun (x : t) => ";
      for i = 0 to n - 1 do
        Printf.bprintf b "W%d<t>.w%d(" i i
      done;
      Buffer.add_string b "x";
      for _ = 0 to n - 1 do
        Buffer.add_char b ')'
      done;
      Buffer.add_string b " in\nf[int](0)")

(** [same_type_chain n]: a generic function over [n] type parameters
    chained by same-type constraints; the body casts through the chain.
    Exercises the congruence closure with a long equality chain. *)
let same_type_chain n =
  assert (n >= 2);
  buf_program (fun b ->
      Buffer.add_string b "let f = tfun ";
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char b ' ';
        Printf.bprintf b "t%d" i
      done;
      Buffer.add_string b " where ";
      for i = 0 to n - 2 do
        if i > 0 then Buffer.add_string b ", ";
        Printf.bprintf b "t%d == t%d" i (i + 1)
      done;
      Printf.bprintf b " => fun (x : t0) => x in\nf[";
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b "int"
      done;
      Buffer.add_string b "](7) + 1")

(** [assoc_chain n]: concepts [A1..An] where [Ai]'s associated type is
    pinned (via a same-type requirement) to the projection of
    [A(i-1)] — a chain of equalities through associated types. *)
let assoc_chain n =
  assert (n >= 1);
  buf_program (fun b ->
      Buffer.add_string b "concept A0<t> { types s; zero : s; } in\n";
      for i = 1 to n - 1 do
        Printf.bprintf b
          "concept A%d<t> { types s; refines A%d<t>; same s == A%d<t>.s; } in\n"
          i (i - 1) (i - 1)
      done;
      Buffer.add_string b "model A0<int> { types s = int; zero = 0; } in\n";
      for i = 1 to n - 1 do
        Printf.bprintf b "model A%d<int> { types s = int; } in\n" i
      done;
      Printf.bprintf b
        "let f = tfun t where A%d<t>, A%d<t>.s == int => fun (x : t) => \
         A0<t>.zero + 1 in\nf[int](5)"
        (n - 1) (n - 1))

(** [let_chain n]: [n] sequential generic definitions and calls;
    baseline for whole-program typechecking cost vs program size. *)
let let_chain n =
  assert (n >= 1);
  buf_program (fun b ->
      Buffer.add_string b
        "concept S<t> { op : fn(t, t) -> t; unit_elt : t; } in\n\
         model S<int> { op = iadd; unit_elt = 0; } in\n";
      for i = 0 to n - 1 do
        Printf.bprintf b
          "let g%d = tfun t where S<t> => fun (x : t) => S<t>.op(x, x) in\n" i
      done;
      Buffer.add_string b "0";
      for i = 0 to n - 1 do
        Printf.bprintf b " + g%d[int](%d)" i i
      done)

(** [shared_prefix ?edit_at ?edit ~decls ()]: a [decls]-declaration
    spine of independent generic definitions with a one-call residual
    body.  All members of the family share every declaration except
    number [edit_at], whose bound variable is renamed to [x<edit>] — a
    content change that moves no other line and consumes no extra
    fresh names, so re-checking one member against a session warm from
    another re-checks exactly one compilation unit (B7, the
    incremental-frontend dimension). *)
let shared_prefix ?(edit_at = -1) ?(edit = 0) ~decls () =
  assert (decls >= 1);
  buf_program (fun b ->
      Buffer.add_string b
        "concept S<t> { op : fn(t, t) -> t; unit_elt : t; } in\n\
         model S<int> { op = iadd; unit_elt = 0; } in\n";
      for i = 0 to decls - 1 do
        let v = if i = edit_at then Printf.sprintf "x%d" (max 0 edit) else "x" in
        Printf.bprintf b
          "let g%d = tfun t where S<t> => fun (%s : t) => \
           S<t>.op(S<t>.op(S<t>.op(%s, S<t>.unit_elt), %s), %s) in\n"
          i v v v v
      done;
      Printf.bprintf b "g%d[int](1)" (decls - 1))

(** [instantiation_fanout ?reps n]: one generic called at [n] distinct
    ground types ([int], [list int], …, [list^(n-1) int]), [reps]
    times each, with the [Size<list t>] dictionaries built by the
    parameterized model.  This is the specializer's scaling dimension:
    full stenciling clones the generic [n] times, while the gcshape
    hybrid keeps one stencil (every [Size] dictionary has the same
    one-member layout) and shares it across the remaining [n-1]
    instantiations.  Repetitions amplify what specialization hoists —
    the dictionary chain is rebuilt at every call under dictionary
    passing but built once per stencil. *)
let instantiation_fanout ?(reps = 3) n =
  assert (n >= 1 && reps >= 1);
  buf_program (fun b ->
      Buffer.add_string b
        "concept Size<t> { size : fn(t) -> int; } in\n\
         model Size<int> { size = fun (x : int) => 1; } in\n\
         model <t> where Size<t> => Size<list t> {\n\
        \  size = fix (go : fn(list t) -> int) =>\n\
        \    fun (l : list t) =>\n\
        \      if null[t](l) then 0\n\
        \      else Size<t>.size(car[t](l)) + go(cdr[t](l));\n\
         } in\n\
         let total = tfun t where Size<t> => fun (x : t) => Size<t>.size(x) \
         in\n\
         0";
      let rec ty k = if k = 0 then "int" else "list (" ^ ty (k - 1) ^ ")" in
      for k = 0 to n - 1 do
        let arg =
          if k = 0 then "0" else Printf.sprintf "nil[%s]" (ty (k - 1))
        in
        for _ = 1 to reps do
          Printf.bprintf b " + total[%s](%s)" (ty k) arg
        done
      done)

(** [param_depth n]: equality at [list^n int] through the parameterized
    [Eq<list t>] model — resolution must construct an [n]-deep
    dictionary chain (B6). *)
let param_depth n =
  assert (n >= 1);
  buf_program (fun b ->
      Buffer.add_string b
        "concept Eq<t> { eq : fn(t, t) -> bool; } in\n\
         model Eq<int> { eq = ieq; } in\n\
         model <t> where Eq<t> => Eq<list t> {\n\
        \  eq = fix (go : fn(list t, list t) -> bool) =>\n\
        \    fun (a : list t, b : list t) =>\n\
        \      if null[t](a) then null[t](b)\n\
        \      else if null[t](b) then false\n\
        \      else Eq<t>.eq(car[t](a), car[t](b)) && go(cdr[t](a), cdr[t](b));\n\
         } in\n";
      let rec ty k = if k = 0 then "int" else "list (" ^ ty (k - 1) ^ ")" in
      let nil k =
        if k = 1 then "nil[int]" else Printf.sprintf "nil[%s]" (ty (k - 1))
      in
      Printf.bprintf b "Eq<%s>.eq(%s, %s)" (ty n) (nil n) (nil n))

(** [implicit_calls n]: [n] implicitly instantiated calls in sequence —
    measures the inference overhead against [explicit_calls n]. *)
let implicit_calls ~implicit n =
  assert (n >= 1);
  buf_program (fun b ->
      Buffer.add_string b
        "concept Num<t> { add : fn(t, t) -> t; } in\n\
         model Num<int> { add = iadd; } in\n\
         let double = tfun t where Num<t> => fun (x : t) => Num<t>.add(x, x) in\n\
         0";
      for _ = 1 to n do
        if implicit then Buffer.add_string b " + double(1)"
        else Buffer.add_string b " + double[int](1)"
      done)

(** [accumulate_workload n]: the Figure 5 accumulate applied to a list
    of length [n]; used for the dictionary-overhead experiment against
    the hand-written System F version below. *)
let accumulate_workload n =
  let rec list_src i = if i >= n then "nil[int]"
    else Printf.sprintf "cons[int](%d, %s)" i (list_src (i + 1))
  in
  Corpus.monoid_prelude ^ Corpus.accumulate_def ^ Corpus.monoid_int_add
  ^ Printf.sprintf "accumulate[int](%s)" (list_src 0)

(** The same workload written directly in System F (Figure 3 style) with
    the operations passed explicitly — the baseline for B3. *)
let accumulate_workload_systemf n =
  let rec list_src i = if i >= n then "nil[int]"
    else Printf.sprintf "cons[int](%d, %s)" i (list_src (i + 1))
  in
  Printf.sprintf
    {|let sum =
  tfun t =>
    fix (sum : fn(list t, fn(t, t) -> t, t) -> t) =>
      fun (ls : list t, add : fn(t, t) -> t, zero : t) =>
        if null[t](ls) then zero
        else add(car[t](ls), sum(cdr[t](ls), add, zero))
in
sum[int](%s, iadd, 0)|}
    (list_src 0)

(** A monomorphic, dictionary-free System F sum over the same list — the
    lower-bound baseline for B3. *)
let accumulate_workload_mono n =
  let rec list_src i = if i >= n then "nil[int]"
    else Printf.sprintf "cons[int](%d, %s)" i (list_src (i + 1))
  in
  Printf.sprintf
    {|let sum =
  fix (sum : fn(list int) -> int) =>
    fun (ls : list int) =>
      if null[int](ls) then 0 else car[int](ls) + sum(cdr[int](ls))
in
sum(%s)|}
    (list_src 0)
