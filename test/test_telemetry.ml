(* Telemetry under parallelism: the counters and histograms are the
   server's only instrumentation, so they must not drop updates when
   several domains hammer them at once. *)

open Fg_util

let test_counters_parallel () =
  let before = Telemetry.snapshot () in
  let n_domains = 4 and per_domain = 100_000 in
  let worker () =
    for _ = 1 to per_domain do
      Telemetry.record_program ();
      Telemetry.record_resolve_hit ()
    done
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let d = Telemetry.diff (Telemetry.snapshot ()) before in
  Alcotest.(check int) "no lost program increments" (n_domains * per_domain)
    d.Telemetry.programs;
  Alcotest.(check int) "no lost resolve increments" (n_domains * per_domain)
    d.Telemetry.resolve_hits

let test_histogram_basics () =
  let h = Telemetry.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Telemetry.Histogram.count h);
  Alcotest.(check int) "empty p99" 0 (Telemetry.Histogram.percentile h 99.);
  Telemetry.Histogram.observe h 7;
  Alcotest.(check int) "count" 1 (Telemetry.Histogram.count h);
  Alcotest.(check int) "sum" 7 (Telemetry.Histogram.sum h);
  (* A single sample: every percentile must report exactly it (the
     bucket bound is clamped to the observed maximum). *)
  Alcotest.(check int) "p50 of singleton" 7 (Telemetry.Histogram.percentile h 50.);
  Alcotest.(check int) "p100 of singleton" 7
    (Telemetry.Histogram.percentile h 100.);
  Telemetry.Histogram.reset h;
  Alcotest.(check int) "reset" 0 (Telemetry.Histogram.count h)

let test_histogram_accuracy () =
  let h = Telemetry.Histogram.create () in
  (* 1..1000: p50 ≈ 500, p99 ≈ 990 — log-linear buckets promise the
     estimate within 25% above the true rank value. *)
  for v = 1 to 1000 do
    Telemetry.Histogram.observe h v
  done;
  let p50 = Telemetry.Histogram.percentile h 50. in
  let p99 = Telemetry.Histogram.percentile h 99. in
  Alcotest.(check bool) "p50 in range"
    true
    (p50 >= 500 && p50 <= 625);
  Alcotest.(check bool) "p99 in range" true (p99 >= 990 && p99 <= 1000);
  Alcotest.(check int) "max tracked exactly" 1000
    (Telemetry.Histogram.max_value h);
  Alcotest.(check int) "p100 clamps to max" 1000
    (Telemetry.Histogram.percentile h 100.);
  Alcotest.(check (float 0.5)) "mean" 500.5 (Telemetry.Histogram.mean h)

let test_histogram_parallel () =
  let h = Telemetry.Histogram.create () in
  let n_domains = 4 and per_domain = 50_000 in
  let worker i () =
    for k = 1 to per_domain do
      (* distinct per-domain values so the shared sum detects tearing *)
      Telemetry.Histogram.observe h ((i * per_domain) + k)
    done
  in
  let domains = List.init n_domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  let n = n_domains * per_domain in
  Alcotest.(check int) "exact count" n (Telemetry.Histogram.count h);
  (* sum of 1..(n_domains*per_domain) plus the per-domain offsets *)
  let expected_sum = ref 0 in
  for i = 0 to n_domains - 1 do
    for k = 1 to per_domain do
      expected_sum := !expected_sum + (i * per_domain) + k
    done
  done;
  Alcotest.(check int) "exact sum" !expected_sum (Telemetry.Histogram.sum h);
  Alcotest.(check int) "exact max" n (Telemetry.Histogram.max_value h)

(* Fleet merge: two histograms whose samples landed in disjoint bucket
   ranges must combine exactly — fixed bucket boundaries make the merge
   a bucket-wise sum, not an approximation of an approximation. *)
let test_histogram_merge () =
  let a = Telemetry.Histogram.create () in
  let b = Telemetry.Histogram.create () in
  for v = 1 to 100 do
    Telemetry.Histogram.observe a v
  done;
  for v = 1_000_000 to 1_000_100 do
    Telemetry.Histogram.observe b v
  done;
  let m = Telemetry.Histogram.merge a b in
  Alcotest.(check int) "merged count" (100 + 101)
    (Telemetry.Histogram.count m);
  Alcotest.(check int) "merged sum"
    (Telemetry.Histogram.sum a + Telemetry.Histogram.sum b)
    (Telemetry.Histogram.sum m);
  Alcotest.(check int) "merged max" 1_000_100
    (Telemetry.Histogram.max_value m);
  (* The inputs are untouched... *)
  Alcotest.(check int) "left input intact" 100 (Telemetry.Histogram.count a);
  Alcotest.(check int) "right input intact" 101 (Telemetry.Histogram.count b);
  (* ...and rank statistics straddle the two populations: the low half
     comes from [a], the high percentiles from [b]. *)
  Alcotest.(check bool) "p25 from the low range" true
    (Telemetry.Histogram.percentile m 25. <= 125);
  Alcotest.(check bool) "p99 from the high range" true
    (Telemetry.Histogram.percentile m 99. >= 1_000_000);
  (* Merging with empty is identity on every statistic. *)
  let e = Telemetry.Histogram.create () in
  let me = Telemetry.Histogram.merge m e in
  Alcotest.(check int) "merge with empty: count"
    (Telemetry.Histogram.count m) (Telemetry.Histogram.count me);
  Alcotest.(check int) "merge with empty: sum" (Telemetry.Histogram.sum m)
    (Telemetry.Histogram.sum me);
  Alcotest.(check int) "merge with empty: max"
    (Telemetry.Histogram.max_value m) (Telemetry.Histogram.max_value me);
  (* Merge of two empties stays fully empty (quantiles included). *)
  let ee = Telemetry.Histogram.merge e (Telemetry.Histogram.create ()) in
  Alcotest.(check int) "empty merge count" 0 (Telemetry.Histogram.count ee);
  Alcotest.(check int) "empty merge p99" 0
    (Telemetry.Histogram.percentile ee 99.)

(* The sharded counters under the same 4-domain hammer as the
   histograms: one anonymous counter and one registry key bumped from
   every domain, with reads taken while the increments are racing. *)
let test_shardcounter_hammer () =
  let c = Shardcounter.create () in
  let reg = Shardcounter.Registry.create () in
  let n_domains = 4 and per_domain = 100_000 in
  let worker () =
    for k = 1 to per_domain do
      Shardcounter.incr c;
      Shardcounter.Registry.hit reg "hammered";
      if k mod 16 = 0 then ignore (Shardcounter.read c)
    done
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let n = n_domains * per_domain in
  Alcotest.(check int) "no lost plain increments" n (Shardcounter.read c);
  Alcotest.(check (list (pair string int)))
    "no lost registry increments"
    [ ("hammered", n) ]
    (Shardcounter.Registry.snapshot reg)

let test_histogram_json () =
  let h = Telemetry.Histogram.create () in
  Telemetry.Histogram.observe h 2_000_000 (* 2ms in ns *);
  match Telemetry.Histogram.to_json h with
  | Json.Obj fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
        [ "count"; "mean_ms"; "max_ms"; "p50_ms"; "p95_ms"; "p99_ms" ];
      Alcotest.(check (option int)) "count field" (Some 1)
        (Json.int_field "count" (Json.Obj fields))
  | _ -> Alcotest.fail "histogram json should be an object"

(* Regression: phase durations used the raw wall clock, so an NTP step
   backwards mid-phase recorded a negative duration.  The shared clock
   is now monotonized (and the accumulator clamps at zero). *)
let test_monotonic_clock () =
  let a = Telemetry.now_ns () in
  (* feeding a past timestamp returns the newest reading ever seen *)
  Alcotest.(check bool) "backwards step plateaus" true
    (Telemetry.monotonize (a - 1_000_000_000) >= a);
  Alcotest.(check bool) "stream never decreases" true
    (Telemetry.now_ns () >= a);
  let before = Telemetry.snapshot () in
  (* simulate a clock excursion inside a timed phase: push the shared
     clock forward past the phase's start, as a backwards wall step
     after t0 effectively does *)
  Telemetry.time Telemetry.Parse (fun () ->
      ignore (Telemetry.monotonize (Telemetry.now_ns () + 50_000_000)));
  let d = Telemetry.diff (Telemetry.snapshot ()) before in
  Alcotest.(check bool) "phase duration never negative" true
    (d.Telemetry.parse_ns >= 0)

let suite =
  [
    Alcotest.test_case "counters under 4 domains" `Quick test_counters_parallel;
    Alcotest.test_case "monotonic durations" `Quick test_monotonic_clock;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram accuracy" `Quick test_histogram_accuracy;
    Alcotest.test_case "histogram under 4 domains" `Quick
      test_histogram_parallel;
    Alcotest.test_case "histogram merge (disjoint ranges)" `Quick
      test_histogram_merge;
    Alcotest.test_case "sharded counters under 4 domains" `Quick
      test_shardcounter_hammer;
    Alcotest.test_case "histogram json shape" `Quick test_histogram_json;
  ]
