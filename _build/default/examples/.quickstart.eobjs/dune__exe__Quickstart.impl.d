examples/quickstart.ml: Fg_core Fg_systemf Fmt
