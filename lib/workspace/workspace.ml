(** Workspace language service (see the interface).

    Layout: one mutex serializes every operation; under it live the
    document table, the per-configuration warm sessions (all sharing
    one compilation-unit cache, exactly like a server worker), and the
    index-fragment store.  The fragment store is keyed by portable unit
    key: a declaration's index entries are recorded with offsets
    relative to the declaration's start, so when a later version of the
    document replays that unit from cache at a different byte position
    the fragment is rebased by a plain offset delta.  This is sound
    because the unit content hash keeps line/column (only byte offsets
    are zeroed): the same portable key guarantees the same line/column
    geometry, so only offsets can differ between two occurrences. *)

open Fg_util
module C = Fg_core
module Ast = Fg_core.Ast

type ws_error = { ws_code : string; ws_msg : string }
type edit = { e_start : int; e_len : int; e_text : string }
type change = Full_text of string | Edits of edit list

(* ---------------------------------------------------------------- *)
(* Position index                                                    *)

(* One indexed span, with the byte extent denormalized out of the Loc
   ([q_end] widens zero-width spans to one byte, as {!Loc.contains}
   does) and the recording sequence number for tie-breaks. *)
type ixq = {
  q_start : int;
  q_end : int;
  q_seq : int;
  q_entry : C.Check.index_entry;
}

type index = {
  ix_arr : ixq array;  (** sorted by [q_start], then [q_seq] *)
  ix_prefix_max_end : int array;
      (** [ix_prefix_max_end.(i)] = max [q_end] over [ix_arr.(0..i)] —
          lets a containment query stop scanning backwards as soon as
          no earlier span can still reach the offset *)
}

let entry_loc = function
  | C.Check.Itype (l, _) -> l
  | C.Check.Imodel (l, _, _) -> l

let index_of_entries entries =
  let arr =
    entries
    |> List.filter (fun (_, e) -> not (Loc.is_dummy (entry_loc e)))
    |> List.map (fun (seq, e) ->
           let l = entry_loc e in
           let s = l.Loc.start_pos.Loc.offset in
           {
             q_start = s;
             q_end = max l.Loc.end_pos.Loc.offset (s + 1);
             q_seq = seq;
             q_entry = e;
           })
    |> Array.of_list
  in
  Array.sort
    (fun a b ->
      match compare a.q_start b.q_start with
      | 0 -> compare a.q_seq b.q_seq
      | c -> c)
    arr;
  let pmax = Array.make (Array.length arr) 0 in
  let running = ref 0 in
  Array.iteri
    (fun i q ->
      running := max !running q.q_end;
      pmax.(i) <- !running)
    arr;
  { ix_arr = arr; ix_prefix_max_end = pmax }

(* All entries containing [offset]: binary-search the rightmost entry
   starting at or before the offset, then walk left while the prefix
   maximum says a containing span may still exist. *)
let index_query ix ~offset =
  let arr = ix.ix_arr in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    (* rightmost i with arr.(i).q_start <= offset, or -1 *)
    let lo = ref (-1) and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if arr.(mid).q_start <= offset then lo := mid else hi := mid - 1
    done;
    let last = if !lo >= 0 && arr.(!lo).q_start <= offset then !lo else -1 in
    let acc = ref [] in
    let i = ref last in
    while !i >= 0 && ix.ix_prefix_max_end.(!i) > offset do
      let q = arr.(!i) in
      if q.q_start <= offset && offset < q.q_end then acc := q :: !acc;
      decr i
    done;
    !acc
  end

(* Smallest span wins; equal spans go to the last-recorded entry. *)
let best_of = function
  | [] -> None
  | qs ->
      Some
        (List.fold_left
           (fun best q ->
             let w b = b.q_end - b.q_start in
             if
               w q < w best
               || (w q = w best && q.q_seq > best.q_seq)
             then q
             else best)
           (List.hd qs) (List.tl qs))

(* ---------------------------------------------------------------- *)
(* Documents and the workspace                                       *)

type doc = {
  d_name : string;
  mutable d_version : int;
  mutable d_text : string;
  d_cfg : C.Session.Config.t;
  mutable d_payload : string;  (** rendered run-report JSON *)
  mutable d_ast : Ast.exp;  (** recovering parse of [d_text] *)
  mutable d_index : index;
}

type t = {
  m : Mutex.t;
  fuel : int option;
  cache : C.Unit.cache;  (** shared by every session below *)
  mutable sessions : (C.Session.Config.t * C.Session.t) list;
  docs : (string, doc) Hashtbl.t;
  frags : (string, C.Check.index_entry list) Hashtbl.t;
      (** pkey -> entries with decl-relative byte offsets *)
  h_open : Telemetry.Histogram.t;
  h_change : Telemetry.Histogram.t;
  h_close : Telemetry.Histogram.t;
  h_diagnostics : Telemetry.Histogram.t;
  h_hover : Telemetry.Histogram.t;
  h_definition : Telemetry.Histogram.t;
  h_completion : Telemetry.Histogram.t;
}

let create ?fuel () =
  {
    m = Mutex.create ();
    fuel;
    cache = C.Unit.create_cache ();
    sessions = [];
    docs = Hashtbl.create 16;
    frags = Hashtbl.create 256;
    h_open = Telemetry.Histogram.create ();
    h_change = Telemetry.Histogram.create ();
    h_close = Telemetry.Histogram.create ();
    h_diagnostics = Telemetry.Histogram.create ();
    h_hover = Telemetry.Histogram.create ();
    h_definition = Telemetry.Histogram.create ();
    h_completion = Telemetry.Histogram.create ();
  }

let config_of ~prelude ~global_models ~backend =
  let module Cfg = C.Session.Config in
  let cfg =
    Cfg.default
    |> Cfg.with_resolution
         (if global_models then C.Resolution.Global else C.Resolution.Lexical)
    |> Cfg.with_backend backend
  in
  if prelude then Cfg.with_standard_prelude cfg else cfg

let session_for t cfg =
  match List.assoc_opt cfg t.sessions with
  | Some s -> s
  | None ->
      let s = C.Session.of_config ~cache:t.cache cfg in
      t.sessions <- (cfg, s) :: t.sessions;
      s

let unknown_doc name =
  {
    ws_code = "FG0807";
    ws_msg = Printf.sprintf "unknown document %S (open it first)" name;
  }

(* ---------------------------------------------------------------- *)
(* Checking a document version                                       *)

let shift_pos d (p : Loc.pos) = { p with Loc.offset = p.Loc.offset + d }

let shift_loc d (l : Loc.t) =
  if Loc.is_dummy l then l
  else
    {
      l with
      Loc.start_pos = shift_pos d l.Loc.start_pos;
      end_pos = shift_pos d l.Loc.end_pos;
    }

let shift_entry d = function
  | C.Check.Itype (l, ty) -> C.Check.Itype (shift_loc d l, ty)
  | C.Check.Imodel (l, c, args) -> C.Check.Imodel (shift_loc d l, c, args)

(* Check [doc.d_text], update payload, AST and index.  Fresh entries
   belonging to a freshly checked declaration are stored as a fragment
   under its portable key; cache-hit declarations contribute their
   stored fragment rebased to the new start offset.  Entries outside
   every declaration extent (the residual body, which is checked every
   time) pass through directly. *)
let check_doc t doc =
  let sess = session_for t doc.d_cfg in
  let ir =
    C.Session.run_indexed ~file:doc.d_name ?fuel:t.fuel sess doc.d_text
  in
  doc.d_payload <-
    Json.to_string
      (C.Jsonview.json_of_run_report ~file:doc.d_name ir.C.Session.ix_report);
  (let engine = Diag.engine () in
   let ast, _dropped =
     C.Parser.exp_of_string_recovering ~engine ~file:doc.d_name doc.d_text
   in
   doc.d_ast <- ast);
  (* Declaration extents: a declaration node spans its own syntax
     (header through the trailing "in"), never the body that follows
     it, so [start, end) of its span is exactly its unit's extent. *)
  let extents =
    ir.C.Session.ix_decls
    |> List.filter_map (fun (decl, pkey, outcome) ->
           let l = decl.Ast.loc in
           if Loc.is_dummy l then None
           else
             Some
               ( l.Loc.start_pos.Loc.offset,
                 l.Loc.end_pos.Loc.offset,
                 pkey,
                 outcome ))
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
    |> Array.of_list
  in
  let owner_of off =
    (* rightmost extent starting at or before [off], if it covers it *)
    let n = Array.length extents in
    let lo = ref (-1) and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      let s, _, _, _ = extents.(mid) in
      if s <= off then lo := mid else hi := mid - 1
    done;
    if !lo < 0 then None
    else
      let s, e, pkey, _ = extents.(!lo) in
      if s <= off && off < e then Some (s, pkey) else None
  in
  (* Partition fresh entries into per-declaration fragments + body. *)
  let by_pkey : (string, C.Check.index_entry list) Hashtbl.t =
    Hashtbl.create 16
  in
  let body = ref [] in
  List.iter
    (fun entry ->
      let l = entry_loc entry in
      if not (Loc.is_dummy l) then
        match owner_of l.Loc.start_pos.Loc.offset with
        | Some (start, pkey) when pkey <> "" ->
            Hashtbl.replace by_pkey pkey
              (shift_entry (-start) entry
              :: (try Hashtbl.find by_pkey pkey with Not_found -> []))
        | _ -> body := entry :: !body)
    ir.C.Session.ix_entries;
  Hashtbl.iter
    (fun pkey rev_entries -> Hashtbl.replace t.frags pkey (List.rev rev_entries))
    by_pkey;
  (* Assemble the document index: every declaration's fragment rebased
     to its current start, then the body entries.  Sequence numbers
     follow spine order then body, preserving recording order within
     each fragment — so the hover tie-break (last recorded wins) is
     stable across warm and cold checks. *)
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let entries = ref [] in
  Array.iter
    (fun (start, _, pkey, outcome) ->
      match outcome with
      | C.Unit.Dfailed -> ()
      | C.Unit.Dhit | C.Unit.Dchecked -> (
          match Hashtbl.find_opt t.frags pkey with
          | None -> ()
          | Some frag ->
              List.iter
                (fun e -> entries := (next (), shift_entry start e) :: !entries)
                frag))
    extents;
  List.iter
    (fun e -> entries := (next (), e) :: !entries)
    (List.rev !body);
  doc.d_index <- index_of_entries (List.rev !entries)

(* ---------------------------------------------------------------- *)
(* Lifecycle                                                         *)

let timed hist t f =
  Mutex.lock t.m;
  let t0 = Telemetry.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Histogram.observe hist (Telemetry.now_ns () - t0);
      Mutex.unlock t.m)
    f

let with_doc t name f =
  match Hashtbl.find_opt t.docs name with
  | None -> Error (unknown_doc name)
  | Some doc -> f doc

let open_doc t ~name ~version ~prelude ~global_models ~backend text =
  timed t.h_open t (fun () ->
      let cfg = config_of ~prelude ~global_models ~backend in
      let doc =
        match Hashtbl.find_opt t.docs name with
        | Some d when d.d_cfg = cfg ->
            d.d_version <- version;
            d.d_text <- text;
            d
        | _ ->
            let d =
              {
                d_name = name;
                d_version = version;
                d_text = text;
                d_cfg = cfg;
                d_payload = "";
                d_ast = Ast.unit ();
                d_index = index_of_entries [];
              }
            in
            Hashtbl.replace t.docs name d;
            d
      in
      check_doc t doc;
      Ok doc.d_payload)

let apply_edits text edits =
  List.fold_left
    (fun text { e_start; e_len; e_text } ->
      let n = String.length text in
      let s = max 0 (min e_start n) in
      let e = max s (min (s + e_len) n) in
      String.sub text 0 s ^ e_text ^ String.sub text e (n - e))
    text edits

let change_doc t ~name ~version change =
  timed t.h_change t (fun () ->
      with_doc t name (fun doc ->
          if version <= doc.d_version then
            Error
              {
                ws_code = "FG0808";
                ws_msg =
                  Printf.sprintf
                    "stale version %d for document %S (current is %d)"
                    version name doc.d_version;
              }
          else begin
            doc.d_version <- version;
            (doc.d_text <-
               (match change with
               | Full_text text -> text
               | Edits edits -> apply_edits doc.d_text edits));
            check_doc t doc;
            Ok doc.d_payload
          end))

let close_doc t ~name =
  timed t.h_close t (fun () ->
      with_doc t name (fun doc ->
          Hashtbl.remove t.docs name;
          Ok
            (Json.to_string
               (Json.Obj
                  [
                    ("file", Json.Str name);
                    ("closed", Json.Bool true);
                    ("version", Json.Int doc.d_version);
                  ]))))

let diagnostics t ~name =
  timed t.h_diagnostics t (fun () ->
      with_doc t name (fun doc -> Ok doc.d_payload))

(* ---------------------------------------------------------------- *)
(* Hover                                                             *)

let range_json (l : Loc.t) =
  let pos (p : Loc.pos) =
    Json.Obj
      [
        ("line", Json.Int p.Loc.line);
        ("col", Json.Int p.Loc.col);
        ("offset", Json.Int p.Loc.offset);
      ]
  in
  Json.Obj [ ("start", pos l.Loc.start_pos); ("end", pos l.Loc.end_pos) ]

let hover t ~name ~offset =
  timed t.h_hover t (fun () ->
      with_doc t name (fun doc ->
          let qs = index_query doc.d_index ~offset in
          let ty_best =
            best_of
              (List.filter
                 (fun q ->
                   match q.q_entry with C.Check.Itype _ -> true | _ -> false)
                 qs)
          in
          let model_best =
            best_of
              (List.filter
                 (fun q ->
                   match q.q_entry with C.Check.Imodel _ -> true | _ -> false)
                 qs)
          in
          let fields =
            [
              ("file", Json.Str name);
              ("offset", Json.Int offset);
              ("found", Json.Bool (ty_best <> None || model_best <> None));
            ]
            @ (match ty_best with
              | Some { q_entry = C.Check.Itype (l, ty); _ } ->
                  [
                    ("type", Json.Str (C.Pretty.ty_to_string ty));
                    ("range", range_json l);
                  ]
              | _ -> [])
            @
            match model_best with
            | Some { q_entry = C.Check.Imodel (l, c, args); _ } ->
                [
                  ( "model",
                    Json.Obj
                      [
                        ("concept", Json.Str c);
                        ( "args",
                          Json.List
                            (List.map
                               (fun a -> Json.Str (C.Pretty.ty_to_string a))
                               args) );
                        ("range", range_json l);
                      ] );
                ]
            | _ -> []
          in
          Ok (Json.to_string (Json.Obj fields))))

(* ---------------------------------------------------------------- *)
(* Definition                                                        *)

(* Scope-threading AST walk.  We visit every node (spans under
   recovery can be partial, so no pruning by span) carrying three
   namespaces: term binders, concept declarations, named models.  A
   reference node whose span contains the offset yields a candidate;
   the smallest candidate span wins, so an inner [Var] beats the
   enclosing declaration header that also covers the offset. *)
type def_candidate = { c_span : Loc.t; c_name : string; c_target : Loc.t }

let find_definition ast ~offset =
  let candidates = ref [] in
  let consider span name target =
    if Loc.contains span ~offset && not (Loc.is_dummy target) then
      candidates := { c_span = span; c_name = name; c_target = target }
        :: !candidates
  in
  let rec go vars concepts models (e : Ast.exp) =
    match e.Ast.desc with
    | Ast.Var x -> (
        match List.assoc_opt x vars with
        | Some target -> consider e.Ast.loc x target
        | None -> ())
    | Ast.Lit _ | Ast.Prim _ -> ()
    | Ast.App (f, args) ->
        go vars concepts models f;
        List.iter (go vars concepts models) args
    | Ast.Abs (params, body) ->
        let vars' =
          List.map (fun (x, _) -> (x, e.Ast.loc)) params @ vars
        in
        go vars' concepts models body
    | Ast.TyAbs (_, _, body) -> go vars concepts models body
    | Ast.TyApp (f, _) -> go vars concepts models f
    | Ast.Let (x, rhs, body) ->
        go vars concepts models rhs;
        go ((x, e.Ast.loc) :: vars) concepts models body
    | Ast.Tuple es -> List.iter (go vars concepts models) es
    | Ast.Nth (e', _) -> go vars concepts models e'
    | Ast.Fix (x, _, body) ->
        go ((x, e.Ast.loc) :: vars) concepts models body
    | Ast.If (c, a, b) ->
        go vars concepts models c;
        go vars concepts models a;
        go vars concepts models b
    | Ast.Member (c, _, x) ->
        (match List.assoc_opt c concepts with
        | Some target -> consider e.Ast.loc (c ^ "." ^ x) target
        | None -> ())
    | Ast.ConceptDecl (cd, body) ->
        let concepts' = (cd.Ast.c_name, e.Ast.loc) :: concepts in
        List.iter
          (fun (_, d) -> go vars concepts' models d)
          cd.Ast.c_defaults;
        go vars concepts' models body
    | Ast.ModelDecl (md, body) ->
        List.iter (fun (_, m) -> go vars concepts models m) md.Ast.m_members;
        let models' =
          match md.Ast.m_name with
          | Some n -> (n, e.Ast.loc) :: models
          | None -> models
        in
        go vars concepts models' body
    | Ast.Using (n, body) ->
        (match List.assoc_opt n models with
        | Some target -> consider e.Ast.loc n target
        | None -> ());
        go vars concepts models body
    | Ast.TypeAlias (_, _, body) -> go vars concepts models body
  in
  go [] [] [] ast;
  match !candidates with
  | [] -> None
  | c :: cs ->
      let width s = s.Loc.end_pos.Loc.offset - s.Loc.start_pos.Loc.offset in
      Some
        (List.fold_left
           (fun best c ->
             if width c.c_span < width best.c_span then c else best)
           c cs)

let definition t ~name ~offset =
  timed t.h_definition t (fun () ->
      with_doc t name (fun doc ->
          let fields =
            [ ("file", Json.Str name); ("offset", Json.Int offset) ]
            @
            match find_definition doc.d_ast ~offset with
            | None -> [ ("found", Json.Bool false) ]
            | Some c ->
                [
                  ("found", Json.Bool true);
                  ("name", Json.Str c.c_name);
                  ("range", range_json c.c_target);
                ]
          in
          Ok (Json.to_string (Json.Obj fields))))

(* ---------------------------------------------------------------- *)
(* Completion                                                        *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* The identifier prefix ending at [offset] in [text]. *)
let prefix_at text ~offset =
  let stop = min (max offset 0) (String.length text) in
  let start = ref stop in
  while !start > 0 && is_ident_char text.[!start - 1] do
    decr start
  done;
  String.sub text !start (stop - !start)

(* Collect everything nameable whose scope covers [offset]: a
   declaration's bindings are visible after its header span ends, a
   lambda/fix parameter inside the whole abstraction span. *)
let collect_completions ast ~offset =
  let items = ref [] in
  let add label kind extra = items := (label, kind, extra) :: !items in
  let after (l : Loc.t) =
    (not (Loc.is_dummy l)) && offset >= l.Loc.end_pos.Loc.offset
  in
  let inside (l : Loc.t) = Loc.contains l ~offset in
  let rec go (e : Ast.exp) =
    match e.Ast.desc with
    | Ast.Var _ | Ast.Lit _ | Ast.Prim _ | Ast.Member _ -> ()
    | Ast.App (f, args) ->
        go f;
        List.iter go args
    | Ast.Abs (params, body) ->
        if inside e.Ast.loc then
          List.iter (fun (x, _) -> add x "param" []) params;
        go body
    | Ast.TyAbs (_, _, body) -> go body
    | Ast.TyApp (f, _) -> go f
    | Ast.Let (x, rhs, body) ->
        go rhs;
        if after e.Ast.loc then add x "let" [];
        go body
    | Ast.Tuple es -> List.iter go es
    | Ast.Nth (e', _) -> go e'
    | Ast.Fix (x, _, body) ->
        if inside e.Ast.loc then add x "fix" [];
        go body
    | Ast.If (c, a, b) ->
        go c;
        go a;
        go b
    | Ast.ConceptDecl (cd, body) ->
        if after e.Ast.loc then begin
          add cd.Ast.c_name "concept" [];
          List.iter
            (fun (m, _) ->
              add m "member" [ ("concept", Json.Str cd.Ast.c_name) ])
            cd.Ast.c_members
        end;
        List.iter (fun (_, d) -> go d) cd.Ast.c_defaults;
        go body
    | Ast.ModelDecl (md, body) ->
        (match md.Ast.m_name with
        | Some n when after e.Ast.loc -> add n "model" []
        | _ -> ());
        List.iter (fun (_, m) -> go m) md.Ast.m_members;
        go body
    | Ast.Using (_, body) -> go body
    | Ast.TypeAlias (n, _, body) ->
        if after e.Ast.loc then add n "type" [];
        go body
  in
  go ast;
  List.rev !items

let completion t ~name ~offset =
  timed t.h_completion t (fun () ->
      with_doc t name (fun doc ->
          let prefix = prefix_at doc.d_text ~offset in
          let matches label =
            String.length prefix <= String.length label
            && String.sub label 0 (String.length prefix) = prefix
          in
          let seen = Hashtbl.create 16 in
          let items =
            collect_completions doc.d_ast ~offset
            |> List.filter (fun (label, kind, _) ->
                   matches label
                   &&
                   if Hashtbl.mem seen (label, kind) then false
                   else begin
                     Hashtbl.add seen (label, kind) ();
                     true
                   end)
            |> List.sort (fun (a, ka, _) (b, kb, _) ->
                   compare (a, ka) (b, kb))
            |> List.map (fun (label, kind, extra) ->
                   Json.Obj
                     ([ ("label", Json.Str label); ("kind", Json.Str kind) ]
                     @ extra))
          in
          Ok
            (Json.to_string
               (Json.Obj
                  [
                    ("file", Json.Str name);
                    ("offset", Json.Int offset);
                    ("prefix", Json.Str prefix);
                    ("items", Json.List items);
                  ]))))

(* ---------------------------------------------------------------- *)
(* Observability                                                     *)

let docs_count t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.docs in
  Mutex.unlock t.m;
  n

let stats_json t =
  Mutex.lock t.m;
  let docs = Hashtbl.length t.docs in
  Mutex.unlock t.m;
  (* sort_keys: stats payloads are byte-stable for CI diffing *)
  Json.sort_keys
  @@ Json.Obj
       [
         ("docs", Json.Int docs);
         ("open", Telemetry.Histogram.to_json t.h_open);
         ("change", Telemetry.Histogram.to_json t.h_change);
         ("close", Telemetry.Histogram.to_json t.h_close);
         ("diagnostics", Telemetry.Histogram.to_json t.h_diagnostics);
         ("hover", Telemetry.Histogram.to_json t.h_hover);
         ("definition", Telemetry.Histogram.to_json t.h_definition);
         ("completion", Telemetry.Histogram.to_json t.h_completion);
       ]

let cache_stats t = C.Unit.stats t.cache
