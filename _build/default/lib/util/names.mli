(** String maps/sets and small name utilities used across the pipeline. *)

module Smap : Map.S with type key = string
module Sset : Set.S with type elt = string

(** No string occurs twice — the paper's [distinct t̄] side condition. *)
val distinct : string list -> bool

(** First duplicate, if any (for error messages). *)
val find_duplicate : string list -> string option

(** Strip a [_N] gensym suffix: ["Monoid_18"] -> ["Monoid"]. *)
val base_name : string -> string

val is_lower_ident : string -> bool
val is_upper_ident : string -> bool
