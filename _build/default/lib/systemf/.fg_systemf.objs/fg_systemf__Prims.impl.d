lib/systemf/prims.ml: Ast Fg_util Hashtbl List
