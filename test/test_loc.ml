(* Source spans: merge normalization and the nesting invariant.

   [Loc.merge] must produce a well-formed span (earliest start to
   latest end) regardless of argument order — the recovering parser
   merges spans in whatever order synchronization visits them, and a
   backwards span would corrupt the workspace position index.  Over
   the whole corpus (plain and recovering parses, including the error
   corpus), every AST node must carry a well-formed span and every
   parent/child pair must satisfy [Loc.nests]: the child is contained
   in the parent, or starts at/after the parent's end (declaration
   headers span only their own syntax; the body continuation follows
   them). *)

open Fg_util
open Fg_core

let pos line col offset = { Loc.line; col; offset }

let span ?(file = "t") a b = Loc.make ~file ~start_pos:a ~end_pos:b

(* ------------------------------------------------------------------ *)
(* merge                                                               *)

let test_merge_normalizes () =
  let a = span (pos 1 1 0) (pos 1 5 4) in
  let b = span (pos 1 3 2) (pos 2 1 10) in
  let m = Loc.merge a b in
  Alcotest.(check int) "start" 0 m.Loc.start_pos.Loc.offset;
  Alcotest.(check int) "end" 10 m.Loc.end_pos.Loc.offset;
  (* order-independent *)
  let m' = Loc.merge b a in
  Alcotest.(check int) "start (swapped)" 0 m'.Loc.start_pos.Loc.offset;
  Alcotest.(check int) "end (swapped)" 10 m'.Loc.end_pos.Loc.offset;
  Alcotest.(check bool) "well-formed" true (Loc.is_well_formed m)

let test_merge_out_of_order_args () =
  (* The resync path can merge a later span into an earlier one; the
     result must still run start-to-end, never end-to-start. *)
  let early = span (pos 1 1 0) (pos 1 2 1) in
  let late = span (pos 3 1 20) (pos 3 9 28) in
  let m = Loc.merge late early in
  Alcotest.(check bool) "well-formed" true (Loc.is_well_formed m);
  Alcotest.(check int) "start" 0 m.Loc.start_pos.Loc.offset;
  Alcotest.(check int) "end" 28 m.Loc.end_pos.Loc.offset

let test_merge_dummy_absorbed () =
  let a = span (pos 2 1 10) (pos 2 5 14) in
  Alcotest.(check bool) "left dummy" true (Loc.merge Loc.dummy a = a);
  Alcotest.(check bool) "right dummy" true (Loc.merge a Loc.dummy = a);
  Alcotest.(check bool)
    "both dummy" true
    (Loc.is_dummy (Loc.merge Loc.dummy Loc.dummy))

let test_contains () =
  let s = span (pos 1 3 2) (pos 1 8 7) in
  Alcotest.(check bool) "start in" true (Loc.contains s ~offset:2);
  Alcotest.(check bool) "mid in" true (Loc.contains s ~offset:5);
  Alcotest.(check bool) "end out" false (Loc.contains s ~offset:7);
  Alcotest.(check bool) "before out" false (Loc.contains s ~offset:1);
  (* zero-width spans cover one byte *)
  let z = span (pos 1 3 2) (pos 1 3 2) in
  Alcotest.(check bool) "zero-width covers" true (Loc.contains z ~offset:2);
  Alcotest.(check bool) "dummy empty" false
    (Loc.contains Loc.dummy ~offset:0)

(* ------------------------------------------------------------------ *)
(* The nesting invariant over the corpus                               *)

(* Immediate subexpressions (including declaration member/default
   bodies), for walking every parent/child span pair. *)
let children (e : Ast.exp) : Ast.exp list =
  match e.Ast.desc with
  | Ast.Var _ | Ast.Lit _ | Ast.Prim _ | Ast.Member _ -> []
  | Ast.App (f, args) -> f :: args
  | Ast.Abs (_, b) | Ast.TyAbs (_, _, b) | Ast.TyApp (b, _)
  | Ast.Nth (b, _) | Ast.Fix (_, _, b) | Ast.Using (_, b)
  | Ast.TypeAlias (_, _, b) ->
      [ b ]
  | Ast.Let (_, rhs, b) -> [ rhs; b ]
  | Ast.Tuple es -> es
  | Ast.If (c, a, b) -> [ c; a; b ]
  | Ast.ConceptDecl (cd, b) -> List.map snd cd.Ast.c_defaults @ [ b ]
  | Ast.ModelDecl (md, b) -> List.map snd md.Ast.m_members @ [ b ]

let check_spans ~what ast =
  let rec go (parent : Ast.exp) =
    Alcotest.(check bool)
      (Printf.sprintf "%s: well-formed %s" what
         (Loc.to_string parent.Ast.loc))
      true
      (Loc.is_well_formed parent.Ast.loc);
    List.iter
      (fun (child : Ast.exp) ->
        if
          not
            (Loc.nests ~parent:parent.Ast.loc ~child:child.Ast.loc)
        then
          Alcotest.failf "%s: child %s escapes parent %s" what
            (Loc.to_string child.Ast.loc)
            (Loc.to_string parent.Ast.loc);
        go child)
      (children parent)
  in
  go ast

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fg")
  |> List.sort String.compare
  |> List.map (fun f -> Filename.concat dir f)

let test_corpus_nesting () =
  List.iter
    (fun path ->
      let text = read_file path in
      (* plain parse (well-formed programs only) *)
      (match Parser.exp_of_string ~file:path text with
      | ast -> check_spans ~what:(path ^ " (plain)") ast
      | exception Fg_util.Diag.Error _ -> ());
      (* recovering parse — must hold even for the error corpus *)
      let engine = Diag.engine () in
      let ast, _ = Parser.exp_of_string_recovering ~engine ~file:path text in
      check_spans ~what:(path ^ " (recovering)") ast)
    (corpus "../programs" @ corpus "../programs/errors")

let suite =
  [
    Alcotest.test_case "merge normalizes to earliest-latest" `Quick
      test_merge_normalizes;
    Alcotest.test_case "merge accepts out-of-order arguments" `Quick
      test_merge_out_of_order_args;
    Alcotest.test_case "merge absorbs dummy spans" `Quick
      test_merge_dummy_absorbed;
    Alcotest.test_case "contains covers [start, end) plus zero-width"
      `Quick test_contains;
    Alcotest.test_case "corpus spans well-formed and properly nested"
      `Quick test_corpus_nesting;
  ]
