lib/unionfind/uf.ml: Array Fg_util Hashtbl List
