lib/systemf/step.ml: Ast Diag Eval Fg_util List Loc Names Option Prims String
