test/test_fg_parser.ml: Alcotest Ast Corpus Fg_core Fg_util List Parser Pretty
