(* Paper Figure 1: four approaches to constraining a generic `square`.

   Run with:  dune exec examples/square_four_ways.exe

   The paper's Figure 1 shows square(4) in Java (subtype bounds),
   Haskell (type classes), CLU (structural type sets) and Cforall
   (by-name operation lookup).  We cannot embed four foreign compilers,
   so this example reproduces the figure's comparison with the systems
   built here (DESIGN.md documents the substitution):

   (a/FG)  concepts + models + where clauses — the paper's proposal;
   (b)     Haskell-style type classes — FG under Global resolution,
           where models behave like program-wide unique instances;
   (c)     structural matching — simulated by plain System F
           higher-order parameters (the operation is part of the
           function's structure/signature rather than a named bundle);
   (d)     by-name lookup — the degenerate one-member-concept encoding,
           where the concept plays the role of the operation name. *)

module C = Fg_core
module F = Fg_systemf

let banner s = Fmt.pr "@.=== %s ===@." s

(* (a) FG concepts: the paper's own answer. *)
let fg_concepts =
  {|
concept Number<u> { mult : fn(u, u) -> u; } in
let square = tfun t where Number<t> => fun (x : t) => Number<t>.mult(x, x) in
model Number<int> { mult = imult; } in
square[int](4)
|}

(* (b) Type classes: same program, global-instance resolution.  One
   instance per concept/type program-wide; this program has exactly one
   and is accepted — the difference only shows with overlap. *)
let overlapping =
  {|
concept Number<u> { mult : fn(u, u) -> u; } in
let square = tfun t where Number<t> => fun (x : t) => Number<t>.mult(x, x) in
let a = model Number<int> { mult = imult; } in square[int](4) in
let b = model Number<int> { mult = iadd;  } in square[int](4) in
(a, b)
|}

(* (c) Structural: System F with the operation passed explicitly — the
   constraint is the shape of the parameter list. *)
let structural =
  {|
let square = tfun t => fun (mult : fn(t, t) -> t, x : t) => mult(x, x) in
square[int](imult, 4)
|}

(* (d) By-name: a single-operation concept named after the operation;
   the "overload set" for `mult` at int is the model. *)
let by_name =
  {|
concept Mult<u> { mult : fn(u, u) -> u; } in
model Mult<int> { mult = imult; } in
let square = tfun t where Mult<t> => fun (x : t) => Mult<t>.mult(x, x) in
square[int](4)
|}

let () =
  let lexical = C.Session.create () in
  let global = C.Session.create ~resolution:C.Resolution.Global () in

  banner "(a) FG concepts (the paper's proposal)";
  let out = C.Session.run ~file:"fig1a" lexical fg_concepts in
  Fmt.pr "square(4) = %a@." C.Interp.pp_flat out.value;
  Fmt.pr "translated: %a@." F.Pretty.pp_exp out.f_exp;

  banner "(b) type classes = global-instance resolution";
  Fmt.pr "one instance: %a@." C.Interp.pp_flat
    (C.Session.run ~file:"fig1b" global fg_concepts).value;
  Fmt.pr "with overlapping models in separate scopes:@.";
  Fmt.pr "  lexical (FG)      : %a@." C.Interp.pp_flat
    (C.Session.run ~file:"fig1b2" lexical overlapping).value;
  (match C.Session.run_result ~file:"fig1b3" global overlapping with
  | Error d -> Fmt.pr "  global (Haskell)  : REJECTED — %s@." d.message
  | Ok _ -> Fmt.pr "  global (Haskell)  : unexpectedly accepted?!@.");

  banner "(c) structural matching = higher-order System F";
  let ast = F.Parser.exp_of_string ~file:"fig1c" structural in
  let ty = F.Typecheck.typecheck ast in
  let v = F.Eval.run_value ast in
  Fmt.pr "square(4) = %a : %a@." F.Eval.pp_value v F.Pretty.pp_ty ty;

  banner "(d) by-name operation lookup = one-operation concepts";
  let out = C.Session.run ~file:"fig1d" lexical by_name in
  Fmt.pr "square(4) = %a@." C.Interp.pp_flat out.value;

  Fmt.pr
    "@.All four encodings compute square(4) = 16; they differ in how the@.\
     constraint is expressed and when overlap is rejected — which is the@.\
     point of the paper's Figure 1.@."
