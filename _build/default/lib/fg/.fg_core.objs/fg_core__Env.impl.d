lib/fg/env.ml: Ast Diag Equality Fg_util Gensym List Names Pretty Resolution String
