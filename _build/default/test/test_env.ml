(* White-box tests of the environment and model resolution
   (lib/fg/env.ml): lookup order, parameterized pattern matching,
   context discharge, projection normalization, and the depth fuse. *)

open Fg_core
module Smap = Fg_util.Names.Smap

let ty = Parser.ty_of_string

(* Build an environment by checking a declaration prefix: reuse the
   checker so entries/equations are exactly what programs get.  We
   extract the env by checking `prefix 0` and capturing it through a
   probe — simpler: construct entries by hand where needed. *)

let eq_concept =
  {
    Ast.c_name = "Eq";
    c_params = [ "t" ];
    c_assoc = [];
    c_refines = [];
    c_requires = [];
    c_members = [ ("eq", ty "fn(t, t) -> bool") ];
    c_defaults = [];
    c_same = [];
    c_loc = Fg_util.Loc.dummy;
  }

let iter_concept =
  {
    Ast.c_name = "It";
    c_params = [ "i" ];
    c_assoc = [ "elt" ];
    c_refines = [];
    c_requires = [];
    c_members = [ ("curr", ty "fn(i) -> elt") ];
    c_defaults = [];
    c_same = [];
    c_loc = Fg_util.Loc.dummy;
  }

let ground_entry ?(dict = "d0") c args assoc =
  {
    Env.me_concept = c;
    me_params = [];
    me_constrs = [];
    me_args = args;
    me_dict = dict;
    me_path = [];
    me_assoc =
      List.fold_left (fun m (s, t) -> Smap.add s t m) Smap.empty assoc;
    me_proxy = false;
  }

let base_env =
  let env = Env.create () in
  let env = Env.bind_concept env eq_concept in
  Env.bind_concept env iter_concept

let test_ground_lookup_and_shadowing () =
  let e1 = ground_entry ~dict:"outer" "Eq" [ ty "int" ] [] in
  let e2 = ground_entry ~dict:"inner" "Eq" [ ty "int" ] [] in
  let env = Env.bind_model (Env.bind_model base_env e1) e2 in
  (match Env.lookup_model env "Eq" [ ty "int" ] with
  | Some { fm_entry; fm_subst = [] } ->
      Alcotest.(check string) "innermost wins" "inner" fm_entry.Env.me_dict
  | _ -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "other type misses" true
    (Env.lookup_model env "Eq" [ ty "bool" ] = None);
  Alcotest.(check bool) "other concept misses" true
    (Env.lookup_model env "It" [ ty "int" ] = None)

let param_eq_list =
  {
    Env.me_concept = "Eq";
    me_params = [ "t" ];
    me_constrs = [ Ast.CModel ("Eq", [ Ast.TVar "t" ]) ];
    me_args = [ ty "list t" ];
    me_dict = "dlist";
    me_path = [];
    me_assoc = Smap.empty;
    me_proxy = false;
  }

let test_parameterized_matching () =
  let env =
    Env.bind_model
      (Env.bind_model base_env (ground_entry "Eq" [ ty "int" ] []))
      param_eq_list
  in
  (* matches with t := int, context Eq<int> discharged *)
  (match Env.lookup_model env "Eq" [ ty "list int" ] with
  | Some { fm_entry; fm_subst = [ ("t", t) ] } ->
      Alcotest.(check string) "entry" "dlist" fm_entry.Env.me_dict;
      Alcotest.(check string) "binding" "int" (Pretty.ty_to_string t)
  | _ -> Alcotest.fail "parameterized lookup failed");
  (* nested: t := list int, context recursively discharged *)
  (match Env.lookup_model env "Eq" [ ty "list (list int)" ] with
  | Some { fm_subst = [ ("t", t) ]; _ } ->
      Alcotest.(check string) "nested binding" "list int"
        (Pretty.ty_to_string t)
  | _ -> Alcotest.fail "nested lookup failed");
  (* context NOT discharged: no Eq<bool> in scope *)
  Alcotest.(check bool) "missing context" true
    (Env.lookup_model env "Eq" [ ty "list bool" ] = None)

let test_normalize_projections () =
  let it_model =
    ground_entry "It" [ ty "list int" ] [ ("elt", ty "int") ]
  in
  let env = Env.bind_model base_env it_model in
  Alcotest.(check string) "projection resolves" "int"
    (Pretty.ty_to_string (Env.normalize env (ty "It<list int>.elt")));
  Alcotest.(check string) "inside constructors" "fn(int) -> list int"
    (Pretty.ty_to_string
       (Env.normalize env (ty "fn(It<list int>.elt) -> list It<list int>.elt")));
  (* unresolvable projections stay *)
  Alcotest.(check string) "unresolved stays" "It<bool>.elt"
    (Pretty.ty_to_string (Env.normalize env (ty "It<bool>.elt")))

let test_parameterized_assoc_normalization () =
  let it_list =
    {
      Env.me_concept = "It";
      me_params = [ "t" ];
      me_constrs = [];
      me_args = [ ty "list t" ];
      me_dict = "diter";
      me_path = [];
      me_assoc = Smap.add "elt" (Ast.TVar "t") Smap.empty;
      me_proxy = false;
    }
  in
  let env = Env.bind_model base_env it_list in
  (* one schematic model resolves the projection at every list type *)
  Alcotest.(check string) "elt of list int" "int"
    (Pretty.ty_to_string (Env.normalize env (ty "It<list int>.elt")));
  Alcotest.(check string) "elt of list (list bool)" "list bool"
    (Pretty.ty_to_string
       (Env.normalize env (ty "It<list (list bool)>.elt")));
  (* and equality sees through it *)
  Alcotest.(check bool) "ty_eq through projection" true
    (Env.ty_eq env (ty "It<list int>.elt") (ty "int"))

let test_depth_fuse () =
  (* a model whose context requires a LARGER instance of itself *)
  let diverging =
    {
      Env.me_concept = "Eq";
      me_params = [ "t" ];
      me_constrs = [ Ast.CModel ("Eq", [ ty "list t" ]) ];
      me_args = [ Ast.TVar "t" ];
      me_dict = "dbad";
      me_path = [];
      me_assoc = Smap.empty;
      me_proxy = false;
    }
  in
  let env = Env.bind_model base_env diverging in
  match
    Fg_util.Diag.protect (fun () -> Env.lookup_model env "Eq" [ ty "int" ])
  with
  | Ok _ -> Alcotest.fail "expected depth fuse"
  | Error d ->
      Alcotest.(check bool) "depth message" true
        (Astring_contains.contains ~needle:"depth" d.message)

let test_ty_repr_prefers_ground () =
  let env = Env.assume base_env (Ast.TVar "a") (ty "int") in
  let env = Env.bind_tyvars env [ "a" ] in
  Alcotest.(check string) "repr" "int"
    (Pretty.ty_to_string (Env.ty_repr env (Ast.TVar "a")));
  Alcotest.(check bool) "eq" true (Env.ty_eq env (Ast.TVar "a") (ty "int"))

let test_named_model_table () =
  let entry = ground_entry "Eq" [ ty "int" ] [] in
  let env = Env.bind_named_model base_env "m" entry in
  Alcotest.(check bool) "named recorded" true
    (Env.lookup_named_model env "m" <> None);
  Alcotest.(check bool) "not active" true
    (Env.lookup_model env "Eq" [ ty "int" ] = None);
  let env' = Env.bind_model env entry in
  Alcotest.(check bool) "active after binding" true
    (Env.lookup_model env' "Eq" [ ty "int" ] <> None)

let suite =
  [
    Alcotest.test_case "ground lookup and shadowing" `Quick
      test_ground_lookup_and_shadowing;
    Alcotest.test_case "parameterized matching" `Quick
      test_parameterized_matching;
    Alcotest.test_case "normalize projections" `Quick
      test_normalize_projections;
    Alcotest.test_case "parameterized assoc normalization" `Quick
      test_parameterized_assoc_normalization;
    Alcotest.test_case "depth fuse" `Quick test_depth_fuse;
    Alcotest.test_case "ty_repr prefers ground" `Quick
      test_ty_repr_prefers_ground;
    Alcotest.test_case "named model table" `Quick test_named_model_table;
  ]
