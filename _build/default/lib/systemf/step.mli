(** Substitution-based small-step (CBV, leftmost-outermost) semantics
    for System F — an independent third semantics, tested against the
    environment-based big-step evaluator. *)

open Ast

(** Free term variables. *)
val fv : exp -> Fg_util.Names.Sset.t

(** Capture-avoiding term substitution [subst x v e = [x := v] e]. *)
val subst : string -> exp -> exp -> exp

(** Is the term a value (literal, lambda, type abstraction, tuple of
    values, nil/cons spine, or partially applied primitive)? *)
val is_value : exp -> bool

(** Contract the leftmost-outermost redex; [None] when already a value.
    Raises on stuck terms. *)
val step : exp -> exp option

(** Reduce to a value under a fuel bound; returns the normal form and
    the number of steps taken. *)
val normalize : ?fuel:int -> exp -> exp * int

(** Convert a first-order normal form to a big-step value. *)
val value_of_normal_form : exp -> Eval.value

(** Evaluate a closed program with both semantics and require
    first-order agreement; returns (big steps, small steps). *)
val check_agreement : ?fuel:int -> exp -> int * int
