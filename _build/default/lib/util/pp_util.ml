(** Shared pretty-printing helpers built on [Fmt]. *)

let comma_sep pp = Fmt.list ~sep:Fmt.comma pp

let semi_sep pp = Fmt.list ~sep:(Fmt.any ";@ ") pp

(** [angles pp] prints [<x, y, z>]. *)
let angles pp ppf xs = Fmt.pf ppf "@[<hov 1><%a>@]" (comma_sep pp) xs

(** [parens_if b pp] wraps in parentheses when [b]. *)
let parens_if b pp ppf x =
  if b then Fmt.pf ppf "(@[%a@])" pp x else pp ppf x

(** Render with a right margin suitable for terminals and test output.
    Note: [Format] silently misbehaves when the margin exceeds its
    internal maximum, so large requests are clamped to a safe value. *)
let to_string ?(margin = 100) pp x =
  let margin = min margin 1_000_000 in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf margin;
  Fmt.pf ppf "%a" pp x;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(** One-line rendering: newlines and runs of spaces collapsed.  Useful in
    test expectations where layout is irrelevant. *)
let to_flat_string pp x =
  let s = to_string ~margin:1_000_000 pp x in
  let buf = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\n' | '\t' -> pending_space := true
      | c ->
          if !pending_space && Buffer.length buf > 0 then Buffer.add_char buf ' ';
          pending_space := false;
          Buffer.add_char buf c)
    s;
  Buffer.contents buf
