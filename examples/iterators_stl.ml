(* An STL-flavoured session: generic algorithms over iterators with
   associated types (paper Section 5), using the bundled prelude.

   Run with:  dune exec examples/iterators_stl.exe

   The prelude (Fg_core.Prelude) defines, in FG source:
     - concepts: Eq, Ord, Semigroup, Monoid, Group, Iterator (with
       associated type `elt`), OutputIterator, Container (with
       associated type `iter`);
     - models for int, bool and list int;
     - generic algorithms: accumulate, accumulate_iter, count, contains,
       copy, min_element, equal_ranges, merge, power, sum_container.

   Every algorithm below goes through the full pipeline: type checked,
   translated to System F, theorem-verified, and evaluated both directly
   and via the translation. *)

module C = Fg_core

let section title = Fmt.pr "@.--- %s ---@." title

(* One session for the whole tour: the prelude is checked once here and
   reused by every [show] below. *)
let session = C.Session.with_prelude ()

let show name body =
  let out = C.Session.run ~file:name session body in
  Fmt.pr "%-14s %-58s = %a : %a@." name body C.Interp.pp_flat out.value
    C.Pretty.pp_ty out.fg_ty

let l = C.Prelude.int_list

let () =
  Fmt.pr "=== Generic algorithms over iterators (Section 5) ===@.";

  section "Folds over Monoids";
  show "accumulate" (Printf.sprintf "accumulate[int](%s)" (l [ 1; 2; 3; 4 ]));
  show "accum_iter"
    (Printf.sprintf "accumulate_iter[list int](%s)" (l [ 10; 20; 30 ]));
  show "power" "power[int](5, 4)";

  section "Searching (Eq / Ord on the iterator's element type)";
  show "count" (Printf.sprintf "count[list int](%s, 2)" (l [ 2; 1; 2; 3; 2 ]));
  show "contains" (Printf.sprintf "contains[list int](%s, 3)" (l [ 1; 2; 3 ]));
  show "min_element"
    (Printf.sprintf "min_element[list int](cdr[int](%s), car[int](%s))"
       (l [ 5; 1; 4 ]) (l [ 5; 1; 4 ]));

  section "Range algorithms (same-type constraints at work)";
  show "equal_ranges"
    (Printf.sprintf "equal_ranges[list int, list int](%s, %s)" (l [ 1; 2 ])
       (l [ 1; 2 ]));
  show "copy"
    (Printf.sprintf "copy[list int, list int](%s, nil[int])" (l [ 7; 8; 9 ]));
  show "merge"
    (Printf.sprintf "merge[list int, list int, list int](%s, %s, nil[int])"
       (l [ 1; 4; 6 ]) (l [ 2; 3; 5 ]));

  section "Containers (associated iterator type)";
  show "sum_container"
    (Printf.sprintf "sum_container[list int](%s)" (l [ 100; 20; 3 ]));

  (* A user-defined container: reversed lists.  We model Iterator for a
     reversed view by reusing plain lists but starting from a reversed
     copy — all in FG source, no OCaml-side support needed. *)
  section "A user-defined instance at a new type";
  let body =
    {|
// A 'step-by-two' view over list int: skips every other element.
concept Sequence<s> { types item; head : fn(s) -> item; rest : fn(s) -> s; done_ : fn(s) -> bool; } in
model Sequence<list int> {
  types item = int;
  head = fun (ls : list int) => car[int](ls);
  rest = fun (ls : list int) =>
    if null[int](cdr[int](ls)) then cdr[int](ls) else cdr[int](cdr[int](ls));
  done_ = fun (ls : list int) => null[int](ls);
} in
let total =
  tfun s where Sequence<s>, Monoid<Sequence<s>.item> =>
    fix (go : fn(s) -> Sequence<s>.item) =>
      fun (xs : s) =>
        if Sequence<s>.done_(xs) then Monoid<Sequence<s>.item>.identity_elt
        else Monoid<Sequence<s>.item>.binary_op(Sequence<s>.head(xs), go(Sequence<s>.rest(xs)))
in
total[list int](|}
    ^ l [ 1; 10; 2; 20; 3 ]
    ^ ")"
  in
  let out = C.Session.run ~file:"step2" session body in
  Fmt.pr "%-14s sum of every other element of [1;10;2;20;3] = %a@." "step_by_two"
    C.Interp.pp_flat out.value
