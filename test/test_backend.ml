(* The specializing backends against the dictionary baseline.

   The load-bearing property is the oracle the session enforces for
   every non-dict run: the specialized program re-typechecks in System
   F at a type alpha-equal to the translation's, and evaluates to the
   same flat value as the direct interpreter.  These tests drive every
   corpus program and a seeded fuzz batch through all three backends
   and require byte-identical values — plus the Config surface that
   carries the backend through sessions, servers and the CLI. *)

open Fg_core
module F = Fg_systemf

let all_backends =
  [ Backend.Dict; Backend.Stencil; Backend.Hybrid; Backend.Guided ]

(* ------------------------------------------------------------------ *)
(* Backend naming *)

let test_backend_names () =
  List.iter
    (fun b ->
      Alcotest.(check bool) "of_string inverts to_string" true
        (Backend.of_string (Backend.to_string b) = Some b))
    Backend.all;
  Alcotest.(check bool) "unknown name" true (Backend.of_string "jit" = None);
  match Backend.of_string_exn "jit" with
  | exception Fg_util.Diag.Error d ->
      Alcotest.(check string) "stable code" "FG1001" d.Fg_util.Diag.code;
      Alcotest.(check string) "config phase" "configuration error"
        (Fg_util.Diag.phase_name d.Fg_util.Diag.phase)
  | _ -> Alcotest.fail "of_string_exn must raise the FG1001 diagnostic"

(* ------------------------------------------------------------------ *)
(* The Config surface *)

let test_config_api () =
  let module Cfg = Session.Config in
  Alcotest.(check bool) "default backend is dict" true
    (Cfg.default.Cfg.backend = Backend.Dict);
  Alcotest.(check bool) "default prelude is none" true
    (Cfg.default.Cfg.prelude = None);
  let cfg =
    Cfg.(
      default |> with_backend Backend.Hybrid
      |> with_resolution Resolution.Global
      |> with_escape_check false |> with_standard_prelude)
  in
  Alcotest.(check bool) "backend narrows" true
    (cfg.Cfg.backend = Backend.Hybrid);
  Alcotest.(check bool) "prelude set" true
    (cfg.Cfg.prelude = Some Prelude.full);
  (* Structural equality of identically-built configs: the server
     handler keys its warm-session table on Config.t, so this is what
     makes two equivalent requests share one session. *)
  let again =
    Cfg.(
      default |> with_backend Backend.Hybrid
      |> with_resolution Resolution.Global
      |> with_escape_check false |> with_standard_prelude)
  in
  Alcotest.(check bool) "configs compare structurally" true (cfg = again);
  let s = Session.of_config cfg in
  Alcotest.(check bool) "session keeps its config" true
    (Session.config s = cfg);
  Alcotest.(check bool) "backend accessor" true
    (Session.backend s = Backend.Hybrid)

(* ------------------------------------------------------------------ *)
(* Corpus differential: every program, all three backends *)

let session_for backend =
  Session.of_config Session.Config.(default |> with_backend backend)

let test_corpus_differential () =
  let sessions = List.map (fun b -> (b, session_for b)) all_backends in
  List.iter
    (fun (e : Corpus.entry) ->
      match e.Corpus.expected with
      | Corpus.Fails _ -> ()
      | Corpus.Value expected ->
          let outcomes =
            List.map
              (fun (b, s) -> (b, Session.run ~file:e.Corpus.name s e.Corpus.source))
              sessions
          in
          List.iter
            (fun (b, (o : Session.outcome)) ->
              Alcotest.(check string)
                (Printf.sprintf "%s under %s" e.Corpus.name
                   (Backend.to_string b))
                (Interp.flat_to_string expected)
                (Interp.flat_to_string o.Session.value);
              match (b, o.Session.spec) with
              | Backend.Dict, Some _ ->
                  Alcotest.fail "dict outcome must not carry spec"
              | Backend.Dict, None -> ()
              | _, None ->
                  Alcotest.failf "%s: specializing outcome lacks spec"
                    e.Corpus.name
              | _, Some sp ->
                  (* the session's oracle already required the
                     specialized program to typecheck alpha-equal and
                     evaluate byte-identically; assert the cost claim
                     on top: specialization never adds beta steps *)
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: spec steps %d <= translated %d"
                       e.Corpus.name sp.Session.spec_steps
                       o.Session.translated_steps)
                    true
                    (sp.Session.spec_steps <= o.Session.translated_steps))
            outcomes)
    Corpus.all

(* An explicit end-to-end re-check of the oracle's first half, outside
   the session: specialize the translation by hand and typecheck it. *)
let test_spec_typechecks_explicitly () =
  let s = session_for Backend.Dict in
  List.iter
    (fun (e : Corpus.entry) ->
      match e.Corpus.expected with
      | Corpus.Fails _ -> ()
      | Corpus.Value _ ->
          let f = Session.translate ~file:e.Corpus.name s e.Corpus.source in
          let f_ty = F.Typecheck.typecheck f in
          List.iter
            (fun mode ->
              let sp, _ = F.Specialize.specialize ~mode f in
              let sp_ty = F.Typecheck.typecheck sp in
              Alcotest.(check bool)
                (Printf.sprintf "%s: specialized type alpha-equal"
                   e.Corpus.name)
                true
                (F.Ast.alpha_equal sp_ty f_ty))
            [ F.Specialize.Stencil; F.Specialize.Hybrid ])
    Corpus.all

(* ------------------------------------------------------------------ *)
(* gcshape sharing *)

let sharing_src =
  "concept Id<t> { f : fn(t) -> t; } in\n\
   let ap = tfun t where Id<t> => fun (x : t) => Id<t>.f(x) in\n\
   model Id<int> { f = fun (x : int) => x + 1; } in\n\
   model Id<bool> { f = fun (x : bool) => x; } in\n\
   if ap[bool](true) then ap[int](1) else 0"

let spec_of b =
  match (Session.run (session_for b) sharing_src).Session.spec with
  | Some sp -> sp
  | None -> Alcotest.fail "specializing run lacks spec"

let test_hybrid_shares_shapes () =
  let st = (spec_of Backend.Stencil).Session.spec_stats in
  let hy = (spec_of Backend.Hybrid).Session.spec_stats in
  (* full stenciling clones per instantiation; the hybrid keeps one
     stencil per dictionary-layout shape and lets the same-shape call
     keep dictionary passing *)
  Alcotest.(check int) "stencil clones both" 2
    st.F.Specialize.st_stencils;
  Alcotest.(check int) "hybrid keeps one" 1 hy.F.Specialize.st_stencils;
  Alcotest.(check bool) "hybrid shares the other" true
    (hy.F.Specialize.st_shared >= 1)

(* ------------------------------------------------------------------ *)
(* Fuzz differential: a seeded batch under each specializing backend *)

let test_fuzz_differential () =
  List.iter
    (fun b ->
      let cfg =
        { Fuzz.default_config with
          Fuzz.seed = 2026; count = 60; mutants = 0; backend = b }
      in
      let r = Fuzz.run ~domains:2 cfg in
      Alcotest.(check int)
        (Printf.sprintf "no failures under %s" (Backend.to_string b))
        0
        (List.length r.Fuzz.r_failures))
    [ Backend.Stencil; Backend.Hybrid ]

let suite =
  [
    Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "config API" `Quick test_config_api;
    Alcotest.test_case "corpus differential (3 backends)" `Quick
      test_corpus_differential;
    Alcotest.test_case "specialized corpus typechecks" `Quick
      test_spec_typechecks_explicitly;
    Alcotest.test_case "hybrid shares same-shape stencils" `Quick
      test_hybrid_shares_shapes;
    Alcotest.test_case "fuzz differential (stencil, hybrid)" `Slow
      test_fuzz_differential;
  ]
