test/test_systemf_step.ml: Alcotest Ast Astring_contains Fg_core Fg_systemf Fg_util List Parser Pretty QCheck QCheck_alcotest Step
