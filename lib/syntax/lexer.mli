(** Hand-written scanner shared by the System F and FG parsers.
    Supports [//] line comments and nestable [/* ... */] block comments;
    ['<']/['>'] are always single tokens (so [C<D<int>>] lexes). *)

(** Lex the whole input eagerly to located tokens, ending in [EOF].
    Raises a located lexer diagnostic on bad input. *)
val tokenize : ?file:string -> string -> (Token.t * Fg_util.Loc.t) array

(** Like {!tokenize}, but lexer errors are reported to [engine] (and the
    offending character skipped) instead of raising, so the scan reaches
    end of input and the result always ends in [EOF]. *)
val tokenize_recovering :
  engine:Fg_util.Diag.engine ->
  ?file:string ->
  string ->
  (Token.t * Fg_util.Loc.t) array
