test/test_fg_pretty.ml: Alcotest Ast Astring_contains Check Corpus Fg_core Fg_systemf Fg_util List Parser Pretty
