lib/util/gensym.ml: List Printf
