(* Per-domain sharded atomic counters (see the interface). *)

let n_shards = 16 (* power of two: shard pick is a mask *)

type t = int Atomic.t array

let create () : t = Array.init n_shards (fun _ -> Atomic.make 0)

let shard () = (Domain.self () :> int) land (n_shards - 1)
let incr (c : t) = Atomic.incr c.(shard ())
let decr (c : t) = Atomic.decr c.(shard ())

let add (c : t) n =
  if n <> 0 then ignore (Atomic.fetch_and_add c.(shard ()) n)

let read (c : t) = Array.fold_left (fun acc s -> acc + Atomic.get s) 0 c
let reset (c : t) = Array.iter (fun s -> Atomic.set s 0) c

type map = (string * int) list

(* Merge two sorted assoc lists with a combining function; entries
   that combine to <= 0 are dropped, preserving the map invariant. *)
let rec combine f a b =
  match (a, b) with
  | [], rest | rest, [] ->
      List.filter_map
        (fun (k, n) ->
          let n = f n 0 in
          if n > 0 then Some (k, n) else None)
        rest
  | (ka, na) :: ta, (kb, nb) :: tb ->
      let c = String.compare ka kb in
      if c < 0 then
        let n = f na 0 in
        if n > 0 then (ka, n) :: combine f ta b else combine f ta b
      else if c > 0 then
        let n = f 0 nb in
        if n > 0 then (kb, n) :: combine f a tb else combine f a tb
      else
        let n = f na nb in
        if n > 0 then (ka, n) :: combine f ta tb else combine f ta tb

let merge a b = combine ( + ) a b
let diff later earlier = combine (fun l e -> l - e) later earlier
let distinct m = List.length m
let total m = List.fold_left (fun acc (_, n) -> acc + n) 0 m
let keys m = List.map fst m

module Registry = struct
  module Smap = Map.Make (String)

  type counter = t

  let new_counter = create

  type nonrec t = counter Smap.t Atomic.t

  let create () : t = Atomic.make Smap.empty

  let rec find (r : t) key =
    let current = Atomic.get r in
    match Smap.find_opt key current with
    | Some c -> c
    | None ->
        let c = new_counter () in
        if Atomic.compare_and_set r current (Smap.add key c current) then c
        else find r key (* lost the race: someone else may have added it *)

  let hit r key = incr (find r key)
  let add r key n = add (find r key) n

  let snapshot (r : t) =
    Smap.fold
      (fun key c acc ->
        let n = read c in
        if n > 0 then (key, n) :: acc else acc)
      (Atomic.get r) []
    |> List.rev (* Smap folds ascending; the reversed accumulator is sorted *)

  let reset (r : t) = Smap.iter (fun _ c -> reset c) (Atomic.get r)
end
