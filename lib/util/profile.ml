(* Persistent per-workload profiles (see the interface). *)

module Sset = Set.Make (String)

type cache = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_invalidations : int;
  c_size : int;
  c_capacity : int;
}

let cache_zero =
  {
    c_hits = 0;
    c_misses = 0;
    c_evictions = 0;
    c_invalidations = 0;
    c_size = 0;
    c_capacity = 0;
  }

type t = {
  p_programs : int;
  p_instantiations : Shardcounter.map;
  p_resolutions : Shardcounter.map;
  p_backends : Shardcounter.map;
  p_requests : Shardcounter.map;
  p_unit_cache : cache;
}

let empty =
  {
    p_programs = 0;
    p_instantiations = [];
    p_resolutions = [];
    p_backends = [];
    p_requests = [];
    p_unit_cache = cache_zero;
  }

let merge_cache a b =
  {
    c_hits = a.c_hits + b.c_hits;
    c_misses = a.c_misses + b.c_misses;
    c_evictions = a.c_evictions + b.c_evictions;
    c_invalidations = a.c_invalidations + b.c_invalidations;
    c_size = a.c_size + b.c_size;
    c_capacity = max a.c_capacity b.c_capacity;
  }

let merge a b =
  {
    p_programs = a.p_programs + b.p_programs;
    p_instantiations = Shardcounter.merge a.p_instantiations b.p_instantiations;
    p_resolutions = Shardcounter.merge a.p_resolutions b.p_resolutions;
    p_backends = Shardcounter.merge a.p_backends b.p_backends;
    p_requests = Shardcounter.merge a.p_requests b.p_requests;
    p_unit_cache = merge_cache a.p_unit_cache b.p_unit_cache;
  }

(* ---------------------------------------------------------------- *)
(* Canonical serialization                                            *)

let format_version = 1

let map_to_json (m : Shardcounter.map) =
  Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) m)

let map_of_json = function
  | Json.Obj fields ->
      List.filter_map
        (function
          | k, Json.Int n when n > 0 && k <> "" -> Some (k, n) | _ -> None)
        fields
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  | _ -> []

let cache_to_json c =
  Json.Obj
    [
      ("capacity", Json.Int c.c_capacity);
      ("evictions", Json.Int c.c_evictions);
      ("hits", Json.Int c.c_hits);
      ("invalidations", Json.Int c.c_invalidations);
      ("misses", Json.Int c.c_misses);
      ("size", Json.Int c.c_size);
    ]

let cache_of_json j =
  let f k = Option.value ~default:0 (Json.int_field k j) in
  {
    c_hits = f "hits";
    c_misses = f "misses";
    c_evictions = f "evictions";
    c_invalidations = f "invalidations";
    c_size = f "size";
    c_capacity = f "capacity";
  }

let to_json p =
  (* sort_keys keeps this canonical even if a field is added out of
     order later *)
  Json.sort_keys
  @@ Json.Obj
       [
         ("backends", map_to_json p.p_backends);
         ("fgc_profile", Json.Int format_version);
         ("instantiations", map_to_json p.p_instantiations);
         ("programs", Json.Int p.p_programs);
         ("requests", map_to_json p.p_requests);
         ("resolutions", map_to_json p.p_resolutions);
         ("unit_cache", cache_to_json p.p_unit_cache);
       ]

let of_json j =
  match j with
  | Json.Obj _ -> (
      match Json.int_field "fgc_profile" j with
      | None -> Error "not a profile: missing \"fgc_profile\" version"
      | Some v when v <> format_version ->
          Error (Printf.sprintf "unsupported profile version %d" v)
      | Some _ ->
          let m k =
            match Json.mem k j with Some sub -> map_of_json sub | None -> []
          in
          Ok
            {
              p_programs =
                Option.value ~default:0 (Json.int_field "programs" j);
              p_instantiations = m "instantiations";
              p_resolutions = m "resolutions";
              p_backends = m "backends";
              p_requests = m "requests";
              p_unit_cache =
                (match Json.mem "unit_cache" j with
                | Some sub -> cache_of_json sub
                | None -> cache_zero);
            })
  | _ -> Error "not a profile: expected a JSON object"

let to_string p = Json.to_string (to_json p) ^ "\n"

let load path =
  let contents =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg ->
      Diag.config_error ~code:"FG1003" "cannot read profile %s: %s" path msg
  in
  match Json.of_string contents with
  | Error msg ->
      Diag.config_error ~code:"FG1003" "profile %s is not JSON: %s" path msg
  | Ok j -> (
      match of_json j with
      | Ok p -> p
      | Error msg ->
          Diag.config_error ~code:"FG1003" "profile %s: %s" path msg)

let save path p =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_string p))

(* ---------------------------------------------------------------- *)
(* The guided-backend decision rule                                   *)

let hot_threshold p =
  match p.p_instantiations with
  | [] -> 0
  | m ->
      let total = Shardcounter.total m and distinct = Shardcounter.distinct m in
      max 2 ((total + distinct - 1) / distinct)

let hot p =
  let threshold = hot_threshold p in
  if threshold = 0 then fun _ -> false
  else
    let set =
      List.fold_left
        (fun acc (k, n) -> if n >= threshold then Sset.add k acc else acc)
        Sset.empty p.p_instantiations
    in
    fun key -> Sset.mem key set

(* ---------------------------------------------------------------- *)
(* Server auto-sizing                                                 *)

type sizing = { sz_unit_cache_capacity : int option; sz_workers : int option }

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let auto_size p ~default_capacity ~workers =
  let cache = p.p_unit_cache in
  let capacity =
    if cache.c_evictions <= 0 then None
    else
      let touched = cache.c_size + cache.c_evictions in
      let sized = min 65536 (max default_capacity (next_pow2 touched)) in
      if sized > default_capacity then Some sized else None
  in
  let load =
    match Shardcounter.total p.p_requests with 0 -> p.p_programs | n -> n
  in
  let w =
    if load <= 0 then None
    else
      let suggested = max 1 (min workers ((load + 63) / 64)) in
      if suggested < workers then Some suggested else None
  in
  { sz_unit_cache_capacity = capacity; sz_workers = w }

(* ---------------------------------------------------------------- *)
(* Process-global collection                                          *)

let collecting_flag = Atomic.make false
let set_collecting b = Atomic.set collecting_flag b
let collecting () = Atomic.get collecting_flag
let inst_registry = Shardcounter.Registry.create ()
let res_registry = Shardcounter.Registry.create ()

let record_instantiations m =
  List.iter (fun (k, n) -> Shardcounter.Registry.add inst_registry k n) m

let record_resolution key = Shardcounter.Registry.hit res_registry key

let collected ~programs ~unit_cache ~backends ~requests () =
  {
    p_programs = programs;
    p_instantiations = Shardcounter.Registry.snapshot inst_registry;
    p_resolutions = Shardcounter.Registry.snapshot res_registry;
    p_backends = backends;
    p_requests = requests;
    p_unit_cache = unit_cache;
  }

let reset_collected () =
  Shardcounter.Registry.reset inst_registry;
  Shardcounter.Registry.reset res_registry
