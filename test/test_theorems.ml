(* The reproduction's headline: Theorems 1 and 2 (translation preserves
   typing), checked per-program over the corpus and over randomly
   generated well-typed programs, plus the stronger semantic-agreement
   property between the direct interpreter and the translation. *)

open Fg_core

let test_theorem_on_corpus () =
  (* The full pipeline — theorem check included — over every positive
     entry at once, fanned out across domains by the session batch
     runner (which also exercises its order-stable determinism). *)
  let jobs =
    List.filter_map
      (fun (e : Corpus.entry) ->
        match e.expected with
        | Corpus.Value _ -> Some (e.name, e.source)
        | Corpus.Fails _ -> None)
      Corpus.all
  in
  let s = Session.of_config Session.Config.default in
  let results = Session.run_batch s jobs in
  Alcotest.(check int) "all positive entries ran" (List.length jobs)
    (List.length results);
  List.iter
    (fun (name, r) ->
      match r with
      | Ok (o : Session.outcome) ->
          Alcotest.(check bool) (name ^ ": theorem") true o.theorem_holds
      | Error d ->
          Alcotest.failf "theorem fails on %s: %s" name
            (Fg_util.Diag.to_string d))
    results

let test_agreement_on_corpus () =
  List.iter
    (fun (e : Corpus.entry) ->
      match e.expected with
      | Corpus.Value _ -> (
          match
            Theorems.check_agreement_result (Parser.exp_of_string e.source)
          with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "agreement fails on %s: %s" e.name
                (Fg_util.Diag.to_string d))
      | Corpus.Fails _ -> ())
    Corpus.all

let test_theorem_report_fields () =
  let e = Parser.exp_of_string Corpus.fig5_accumulate.source in
  let r = Theorems.check_translation e in
  Alcotest.(check string) "FG type int" "int" (Pretty.ty_to_string r.fg_ty);
  Alcotest.(check string) "F type int" "int"
    (Fg_systemf.Pretty.ty_to_string r.f_ty);
  Alcotest.(check bool) "types alpha-equal" true
    (Fg_systemf.Ast.alpha_equal r.f_ty r.expected_f_ty)

let test_theorem_on_prelude_algorithms () =
  (* each prelude algorithm applied at a ground instantiation, so the
     program type is closed (returning the generic function itself
     would trip the CPT concept-escape side condition) *)
  let l = Prelude.int_list in
  List.iter
    (fun body ->
      let src = Prelude.wrap body in
      match Theorems.check_translation_result (Parser.exp_of_string src) with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "theorem fails on prelude %s: %s" body
            (Fg_util.Diag.to_string d))
    [
      Printf.sprintf "accumulate[int](%s)" (l [ 1; 2 ]);
      Printf.sprintf "accumulate_iter[list int](%s)" (l [ 1 ]);
      Printf.sprintf "count[list int](%s, 1)" (l [ 1 ]);
      Printf.sprintf "contains[list int](%s, 1)" (l [ 1 ]);
      Printf.sprintf "copy[list int, list int](%s, nil[int])" (l [ 1 ]);
      Printf.sprintf "min_element[list int](%s, 9)" (l [ 1 ]);
      Printf.sprintf "equal_ranges[list int, list int](%s, %s)" (l [ 1 ])
        (l [ 1 ]);
      Printf.sprintf
        "merge[list int, list int, list int](%s, %s, nil[int])" (l [ 1 ])
        (l [ 2 ]);
      "power[int](2, 2)";
      Printf.sprintf "sum_container[list int](%s)" (l [ 1; 2 ]);
    ]

(* The centerpiece property tests: on randomly generated well-typed
   programs, (1) checking succeeds, (2) the translation re-checks in
   System F at the translated type, (3) both semantics agree. *)

let prop_translation_preserves_typing =
  QCheck.Test.make ~name:"THEOREM: translation preserves typing (random)"
    ~count:500
    QCheck.(make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let e = Gen.program_of_seed seed in
      match Theorems.check_translation_result e with
      | Ok _ -> true
      | Error d ->
          QCheck.Test.fail_reportf "seed %d: %s@.%s" seed
            (Fg_util.Diag.to_string d) (Pretty.exp_to_string e))

let prop_semantic_agreement =
  QCheck.Test.make
    ~name:"direct interpreter agrees with translation (random)" ~count:300
    QCheck.(make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let e = Gen.program_of_seed (seed + 7_000_000) in
      match Theorems.check_agreement_result e with
      | Ok _ -> true
      | Error d ->
          QCheck.Test.fail_reportf "seed %d: %s@.%s" seed
            (Fg_util.Diag.to_string d) (Pretty.exp_to_string e))

let prop_generated_programs_reparse =
  QCheck.Test.make ~name:"generated programs round-trip the printer"
    ~count:300
    QCheck.(make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let e = Gen.program_of_seed (seed + 13_000_000) in
      let src = Pretty.exp_to_string e in
      match Fg_util.Diag.protect (fun () -> Parser.exp_of_string src) with
      | Ok e2 ->
          (* reparsing must preserve the meaning: same type and value *)
          let t1 = Check.typecheck e and t2 = Check.typecheck e2 in
          Ast.ty_equal t1 t2
      | Error d ->
          QCheck.Test.fail_reportf "seed %d reparse: %s@.%s" seed
            (Fg_util.Diag.to_string d) src)

let prop_global_mode_sound =
  (* programs with a single ground type never declare overlapping
     models, so they must also typecheck in Global mode with the same
     type *)
  QCheck.Test.make ~name:"global mode agrees when no overlap" ~count:200
    QCheck.(make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let e = Gen.program_of_seed (seed + 23_000_000) in
      match
        ( Check.check_result ~resolution:Resolution.Lexical e,
          Check.check_result ~resolution:Resolution.Global e )
      with
      | Ok (t1, _), Ok (t2, _) -> Ast.ty_equal t1 t2
      | Ok _, Error _ ->
          (* only legitimate if the program truly overlaps — generated
             programs declare each (concept, ground) model once, so this
             would be a bug *)
          false
      | Error _, _ -> false)

let suite =
  [
    Alcotest.test_case "theorem on the paper corpus" `Quick
      test_theorem_on_corpus;
    Alcotest.test_case "semantic agreement on the corpus" `Quick
      test_agreement_on_corpus;
    Alcotest.test_case "theorem report fields" `Quick
      test_theorem_report_fields;
    Alcotest.test_case "theorem on prelude algorithms" `Quick
      test_theorem_on_prelude_algorithms;
    QCheck_alcotest.to_alcotest prop_translation_preserves_typing;
    QCheck_alcotest.to_alcotest prop_semantic_agreement;
    QCheck_alcotest.to_alcotest prop_generated_programs_reparse;
    QCheck_alcotest.to_alcotest prop_global_mode_sound;
  ]
