lib/util/loc.ml: Fmt
