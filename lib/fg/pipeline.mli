(** One-shot driving: source text in, everything out — parse, check,
    translate, re-check in System F, verify the theorem statement, and
    evaluate both directly and via the translation (requiring
    agreement).

    @deprecated This is a compatibility shim over {!Session}; each call
    builds a throwaway session, so the prelude cache, hash-cons table
    and resolution cache amortize nothing.  Prefer {!Session.create}
    (or {!Session.with_prelude}) plus {!Session.run}. *)

type outcome = Session.outcome = {
  source : string;
  ast : Ast.exp;
  fg_ty : Ast.ty;
  f_exp : Fg_systemf.Ast.exp;
  f_ty : Fg_systemf.Ast.ty;
  theorem_holds : bool;  (** recorded for reporting; always true here *)
  value : Interp.flat;  (** the program's value (first-order part) *)
  direct_steps : int;  (** beta steps in the direct interpreter *)
  translated_steps : int;  (** beta steps evaluating the translation *)
  backend : Backend.t;  (** always {!Backend.Dict} through this shim *)
  spec : Session.spec option;
}

(** Run the whole pipeline; raises {!Fg_util.Diag.Error} on failure. *)
val run :
  ?file:string -> ?resolution:Resolution.mode -> ?fuel:int -> string ->
  outcome

val run_result :
  ?file:string -> ?resolution:Resolution.mode -> ?fuel:int -> string ->
  (outcome, Fg_util.Diag.diagnostic) result

(** One-shot {!Session.run_full}: the whole pipeline with multi-error
    recovery, returning every diagnostic instead of raising. *)
val run_full :
  ?file:string -> ?resolution:Resolution.mode -> ?fuel:int -> string ->
  Session.run_report

(** Type check only; returns the FG type. *)
val typecheck :
  ?file:string -> ?resolution:Resolution.mode -> string -> Ast.ty

(** Translate only; returns the System F term. *)
val translate :
  ?file:string -> ?resolution:Resolution.mode -> string ->
  Fg_systemf.Ast.exp

(** Direct interpretation only (of the elaborated term). *)
val interpret : ?file:string -> ?fuel:int -> string -> Interp.value
