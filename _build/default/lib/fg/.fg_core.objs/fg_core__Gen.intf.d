lib/fg/gen.mli: Ast Random
