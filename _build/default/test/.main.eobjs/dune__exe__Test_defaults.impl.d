test/test_defaults.ml: Alcotest Ast Astring_contains Check Fg_core Fg_systemf Fg_util Interp Parser Pipeline Prelude
