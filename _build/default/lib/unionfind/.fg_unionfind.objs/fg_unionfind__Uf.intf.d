lib/unionfind/uf.mli:
