lib/fg/theorems.ml: Ast Check Diag Env Fg_systemf Fg_util Interp Pretty Types
