(** Declaration boundary scanning, shared by the REPL, the recovering
    parser and the workspace document splitter. *)

val decl_keywords : string list
(** The keywords that can open a top-level declaration. *)

val is_decl_kw : Token.t -> bool
(** Is this token one of {!decl_keywords}? *)

val is_decl_start : string -> bool
(** Does this text begin (by its first lexed token) with a declaration
    keyword?  Text that does not lex is not a declaration. *)
