(* Tests for the utility substrate: locations, diagnostics, gensym,
   name helpers, pretty-printing helpers. *)

open Fg_util

let test_loc_merge () =
  let p1 : Loc.pos = { line = 1; col = 2; offset = 1 } in
  let p2 : Loc.pos = { line = 3; col = 4; offset = 30 } in
  let a = Loc.make ~file:"f" ~start_pos:p1 ~end_pos:p1 in
  let b = Loc.make ~file:"f" ~start_pos:p2 ~end_pos:p2 in
  let m = Loc.merge a b in
  Alcotest.(check int) "start line" 1 m.start_pos.line;
  Alcotest.(check int) "end line" 3 m.end_pos.line;
  (* merging with dummy keeps the other side *)
  let m2 = Loc.merge Loc.dummy b in
  Alcotest.(check bool) "dummy merge" true (m2 = b);
  let m3 = Loc.merge a Loc.dummy in
  Alcotest.(check bool) "dummy merge right" true (m3 = a)

let test_loc_render () =
  let p1 : Loc.pos = { line = 2; col = 5; offset = 10 } in
  let p2 : Loc.pos = { line = 2; col = 9; offset = 14 } in
  let s = Loc.make ~file:"prog.fg" ~start_pos:p1 ~end_pos:p2 in
  Alcotest.(check string) "same-line span" "prog.fg:2:5-9" (Loc.to_string s);
  Alcotest.(check string) "dummy" "<unknown location>"
    (Loc.to_string Loc.dummy)

let test_diag_raise () =
  (match Diag.protect (fun () -> Diag.type_error "bad %s" "thing") with
  | Error d ->
      Alcotest.(check string) "message" "bad thing" d.message;
      Alcotest.(check bool) "phase" true (d.phase = Diag.Typecheck)
  | Ok _ -> Alcotest.fail "expected error");
  match Diag.protect (fun () -> 42) with
  | Ok n -> Alcotest.(check int) "ok passthrough" 42 n
  | Error _ -> Alcotest.fail "unexpected error"

let test_diag_phases () =
  let all =
    Diag.[ Lexer; Parser; Wf; Typecheck; Resolve; Translate; Eval; Internal ]
  in
  let names = List.map Diag.phase_name all in
  Alcotest.(check int) "distinct names" (List.length all)
    (List.length (List.sort_uniq compare names))

let test_guard () =
  (* guard passes silently when the condition holds *)
  Diag.guard true Diag.Typecheck "unused %d" 1;
  match Diag.protect (fun () -> Diag.guard false Diag.Wf "broke %s" "it") with
  | Error d ->
      Alcotest.(check string) "message" "broke it" d.message;
      Alcotest.(check bool) "phase" true (d.phase = Diag.Wf)
  | Ok () -> Alcotest.fail "expected failure"

let test_pp_helpers () =
  Alcotest.(check string) "angles" "<1, 2, 3>"
    (Pp_util.to_flat_string (Pp_util.angles Fmt.int) [ 1; 2; 3 ]);
  Alcotest.(check string) "semi_sep" "1; 2"
    (Pp_util.to_flat_string (Pp_util.semi_sep Fmt.int) [ 1; 2 ])

let test_gensym () =
  let g = Gensym.create () in
  Alcotest.(check string) "first" "x_0" (Gensym.fresh g "x");
  Alcotest.(check string) "second" "x_1" (Gensym.fresh g "x");
  Alcotest.(check string) "other base" "y_2" (Gensym.fresh g "y");
  Gensym.reset g;
  Alcotest.(check string) "after reset" "x_0" (Gensym.fresh g "x");
  let names = Gensym.fresh_many g "d" 3 in
  Alcotest.(check (list string)) "fresh_many" [ "d_1"; "d_2"; "d_3" ] names

let test_distinct () =
  Alcotest.(check bool) "empty" true (Names.distinct []);
  Alcotest.(check bool) "distinct" true (Names.distinct [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "dup" false (Names.distinct [ "a"; "b"; "a" ]);
  Alcotest.(check (option string)) "find none" None
    (Names.find_duplicate [ "a"; "b" ]);
  Alcotest.(check (option string)) "find dup" (Some "b")
    (Names.find_duplicate [ "a"; "b"; "b" ])

let test_base_name () =
  Alcotest.(check string) "strip" "Monoid" (Names.base_name "Monoid_18");
  Alcotest.(check string) "no suffix" "Monoid" (Names.base_name "Monoid");
  Alcotest.(check string) "not numeric" "a_b" (Names.base_name "a_b")

let test_ident_predicates () =
  Alcotest.(check bool) "lower" true (Names.is_lower_ident "abc_1");
  Alcotest.(check bool) "underscore start" true (Names.is_lower_ident "_x");
  Alcotest.(check bool) "upper not lower" false (Names.is_lower_ident "Abc");
  Alcotest.(check bool) "upper" true (Names.is_upper_ident "Monoid");
  Alcotest.(check bool) "lower not upper" false (Names.is_upper_ident "monoid");
  Alcotest.(check bool) "empty" false (Names.is_lower_ident "")

let test_flat_string () =
  let pp ppf () = Fmt.pf ppf "a@ b@ @[c@ d@]" in
  Alcotest.(check string) "flattened" "a b c d" (Pp_util.to_flat_string pp ());
  (* regression: vertical boxes must not be truncated (Format misbehaves
     when the margin is set to max_int; Pp_util clamps it) *)
  let ppv ppf () = Fmt.pf ppf "@[<v 2>head {@ body;@]@ }" in
  Alcotest.(check string) "vbox tail kept" "head { body; }"
    (Pp_util.to_flat_string ppv ());
  Alcotest.(check bool) "huge margin ok" true
    (String.length (Pp_util.to_string ~margin:max_int ppv ()) > 0)

let test_contains () =
  Alcotest.(check bool) "middle" true (Strutil.contains ~needle:"bc" "abcd");
  Alcotest.(check bool) "prefix" true (Strutil.contains ~needle:"ab" "abcd");
  Alcotest.(check bool) "suffix" true (Strutil.contains ~needle:"cd" "abcd");
  Alcotest.(check bool) "absent" false (Strutil.contains ~needle:"ca" "abcd");
  Alcotest.(check bool) "empty needle" true (Strutil.contains ~needle:"" "x");
  Alcotest.(check bool) "needle longer" false
    (Strutil.contains ~needle:"abcd" "abc")

let test_levenshtein () =
  Alcotest.(check int) "equal" 0 (Strutil.levenshtein "model" "model");
  Alcotest.(check int) "empty left" 5 (Strutil.levenshtein "" "model");
  Alcotest.(check int) "empty right" 5 (Strutil.levenshtein "model" "");
  Alcotest.(check int) "substitution" 1 (Strutil.levenshtein "modal" "model");
  Alcotest.(check int) "insertion" 1 (Strutil.levenshtein "mode" "model");
  Alcotest.(check int) "transposition costs two" 2
    (Strutil.levenshtein "mdoel" "model");
  (* symmetry on an arbitrary pair *)
  Alcotest.(check int) "symmetric"
    (Strutil.levenshtein "kitten" "sitting")
    (Strutil.levenshtein "sitting" "kitten")

let test_nearest () =
  let candidates = [ "Monoid"; "Iterator"; "Comparable" ] in
  Alcotest.(check (option string)) "one-letter typo" (Some "Monoid")
    (Strutil.nearest ~candidates "Monoyd");
  Alcotest.(check (option string)) "case-only mismatch" (Some "Iterator")
    (Strutil.nearest ~candidates "iterator");
  Alcotest.(check (option string)) "nothing plausible" None
    (Strutil.nearest ~candidates "Functor");
  Alcotest.(check (option string)) "empty candidates" None
    (Strutil.nearest ~candidates:[] "Monoid");
  (* short names: distance must stay below the name's length *)
  Alcotest.(check (option string)) "short name rejects far edits" None
    (Strutil.nearest ~candidates:[ "xy" ] "ab");
  Alcotest.(check (option string)) "ties go to the earliest" (Some "ax")
    (Strutil.nearest ~candidates:[ "ax"; "xb" ] "ab")

(* The fuzzing PRNG: reproducible streams, independent siblings, and
   samples that stay in range (regression: 63-bit conversion of the
   raw SplitMix64 output used to go negative). *)
let test_prng () =
  let t = Prng.make 42 in
  let a, _ = Prng.bits t in
  let b, _ = Prng.bits (Prng.make 42) in
  Alcotest.(check int64) "same seed, same stream" a b;
  let c, _ = Prng.bits (Prng.make 43) in
  Alcotest.(check bool) "different seed, different stream" true (a <> c);
  let l, r = Prng.split t in
  let bl, _ = Prng.bits l and br, _ = Prng.bits r in
  Alcotest.(check bool) "split streams differ" true (bl <> br);
  let s3, _ = Prng.bits (Prng.split_nth t 3) in
  let s3', _ = Prng.bits (Prng.split_nth t 3) in
  let s4, _ = Prng.bits (Prng.split_nth t 4) in
  Alcotest.(check int64) "split_nth deterministic" s3 s3';
  Alcotest.(check bool) "split_nth siblings differ" true (s3 <> s4);
  (* every sample must land in [0, n) — walk a long stream *)
  let rng = ref (Prng.make 7) in
  for i = 0 to 9999 do
    let n = 1 + (i mod 97) in
    let v, t' = Prng.int !rng n in
    rng := t';
    if v < 0 || v >= n then
      Alcotest.failf "Prng.int out of range: %d not in [0, %d)" v n
  done;
  let rng = ref (Prng.make 8) in
  for _ = 0 to 999 do
    let v, t' = Prng.in_range !rng (-5) 5 in
    rng := t';
    if v < -5 || v > 5 then Alcotest.failf "in_range out of range: %d" v
  done;
  let x, _ = Prng.choose (Prng.make 1) [ "only" ] in
  Alcotest.(check string) "choose singleton" "only" x;
  let w, _ = Prng.weighted (Prng.make 1) [ (0, "never"); (3, "always") ] in
  Alcotest.(check string) "zero weight never drawn" "always" w;
  let p, _ = Prng.shuffle (Prng.make 9) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "shuffle is a permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare p)

let suite =
  [
    Alcotest.test_case "loc merge" `Quick test_loc_merge;
    Alcotest.test_case "loc render" `Quick test_loc_render;
    Alcotest.test_case "diag raise/protect" `Quick test_diag_raise;
    Alcotest.test_case "diag phase names" `Quick test_diag_phases;
    Alcotest.test_case "guard" `Quick test_guard;
    Alcotest.test_case "pp helpers" `Quick test_pp_helpers;
    Alcotest.test_case "gensym" `Quick test_gensym;
    Alcotest.test_case "distinct names" `Quick test_distinct;
    Alcotest.test_case "base_name" `Quick test_base_name;
    Alcotest.test_case "ident predicates" `Quick test_ident_predicates;
    Alcotest.test_case "flat string" `Quick test_flat_string;
    Alcotest.test_case "strutil contains" `Quick test_contains;
    Alcotest.test_case "levenshtein" `Quick test_levenshtein;
    Alcotest.test_case "nearest suggestion" `Quick test_nearest;
    Alcotest.test_case "prng" `Quick test_prng;
  ]
