(** A standard library of concepts, models and generic algorithms,
    written in FG itself.

    The paper's motivation is the STL: generic algorithms specified
    against concepts (Iterator, LessThanComparable, Monoid, ...).  This
    module provides that library for our FG, as concrete-syntax
    fragments that compose by string concatenation — each fragment is a
    stack of [concept]/[model]/[let] declarations ending in [in], so
    [wrap body] produces a complete program.

    Everything here is checked by the test suite both directly (each
    algorithm has unit tests) and via the theorem harness. *)

(* ------------------------------------------------------------------ *)
(* Core algebraic concepts                                             *)

let concepts =
  {|// ----- equality and ordering -------------------------------------
concept Eq<t> {
  eq  : fn(t, t) -> bool;
  // default: inequality is the negation of equality
  neq : fn(t, t) -> bool = fun (a : t, b : t) => !Eq<t>.eq(a, b);
} in
concept Ord<t> {
  refines Eq<t>;
  less : fn(t, t) -> bool;
  // defaults: the remaining comparisons in terms of less and eq
  leq  : fn(t, t) -> bool = fun (a : t, b : t) => Ord<t>.less(a, b) || Eq<t>.eq(a, b);
  min2 : fn(t, t) -> t    = fun (a : t, b : t) => if Ord<t>.less(b, a) then b else a;
  max2 : fn(t, t) -> t    = fun (a : t, b : t) => if Ord<t>.less(a, b) then b else a;
} in
// ----- algebraic structure ---------------------------------------
concept Semigroup<t> {
  binary_op : fn(t, t) -> t;
} in
concept Monoid<t> {
  refines Semigroup<t>;
  identity_elt : t;
} in
concept Group<t> {
  refines Monoid<t>;
  inverse : fn(t) -> t;
} in
// ----- iteration (the paper's Section 5 concepts) ----------------
concept Iterator<i> {
  types elt;
  next : fn(i) -> i;
  curr : fn(i) -> elt;
  at_end : fn(i) -> bool;
} in
concept OutputIterator<o, e> {
  put : fn(o, e) -> o;
} in
// A container exposes an iterator type; the nested requirement
// (Section 6 extension) carries Iterator<iter> with it, so algorithms
// only need to state Container<c>.
concept Container<c> {
  types iter;
  require Iterator<iter>;
  begin : fn(c) -> iter;
} in
|}

(* ------------------------------------------------------------------ *)
(* Models for the base types                                           *)

let int_models =
  {|model Eq<int> { eq = ieq; } in
model Ord<int> { less = ilt; } in
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
model Group<int> { inverse = ineg; } in
|}

let bool_models =
  {|model Eq<bool> { eq = beq; } in
|}

let list_int_models =
  {|model Iterator<list int> {
  types elt = int;
  next = fun (ls : list int) => cdr[int](ls);
  curr = fun (ls : list int) => car[int](ls);
  at_end = fun (ls : list int) => null[int](ls);
} in
model OutputIterator<list int, int> {
  put = fun (out : list int, x : int) => append[int](out, cons[int](x, nil[int]));
} in
model Container<list int> {
  types iter = list int;
  begin = fun (ls : list int) => ls;
} in
|}

(* ------------------------------------------------------------------ *)
(* Parameterized models: instances at [list t] for any suitable [t]
   (the Section 6 "parameterized models" extension, analogous to
   Haskell's [instance Eq a => Eq [a]])                                 *)

let list_parameterized_models =
  {|// structural equality on lists, given equality on the elements
model <t> where Eq<t> => Eq<list t> {
  eq = fix (go : fn(list t, list t) -> bool) =>
    fun (a : list t, b : list t) =>
      if null[t](a) then null[t](b)
      else if null[t](b) then false
      else Eq<t>.eq(car[t](a), car[t](b)) && go(cdr[t](a), cdr[t](b));
} in
// lexicographic order on lists, given order on the elements
model <t> where Ord<t> => Ord<list t> {
  less = fix (go : fn(list t, list t) -> bool) =>
    fun (a : list t, b : list t) =>
      if null[t](a) then !(null[t](b))
      else if null[t](b) then false
      else if Ord<t>.less(car[t](a), car[t](b)) then true
      else if Ord<t>.less(car[t](b), car[t](a)) then false
      else go(cdr[t](a), cdr[t](b));
} in
// lists form a monoid under append with the empty list as identity
model <t> Semigroup<list t> {
  binary_op = fun (a : list t, b : list t) => append[t](a, b);
} in
model <t> Monoid<list t> {
  identity_elt = nil[t];
} in
// every list is iterable, whatever its element type
model <t> Iterator<list t> {
  types elt = t;
  next = fun (ls : list t) => cdr[t](ls);
  curr = fun (ls : list t) => car[t](ls);
  at_end = fun (ls : list t) => null[t](ls);
} in
model <t> OutputIterator<list t, t> {
  put = fun (out : list t, x : t) => append[t](out, cons[t](x, nil[t]));
} in
model <t> Container<list t> {
  types iter = list t;
  begin = fun (ls : list t) => ls;
} in
|}

(* ------------------------------------------------------------------ *)
(* Generic algorithms over the concepts                                *)

let algorithms =
  {|// accumulate: Figure 5, over any Monoid
let accumulate =
  tfun t where Monoid<t> =>
    fix (accum : fn(list t) -> t) =>
      fun (ls : list t) =>
        if null[t](ls) then Monoid<t>.identity_elt
        else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))
in
// accumulate_iter: Section 5, over any Iterator whose elements form a Monoid
let accumulate_iter =
  tfun i where Iterator<i>, Monoid<Iterator<i>.elt> =>
    fix (accum : fn(i) -> Iterator<i>.elt) =>
      fun (it : i) =>
        if Iterator<i>.at_end(it) then Monoid<Iterator<i>.elt>.identity_elt
        else Monoid<Iterator<i>.elt>.binary_op(Iterator<i>.curr(it),
                                               accum(Iterator<i>.next(it)))
in
// count: how many elements equal x
let count =
  tfun i where Iterator<i>, Eq<Iterator<i>.elt> =>
    fix (go : fn(i, Iterator<i>.elt) -> int) =>
      fun (it : i, x : Iterator<i>.elt) =>
        if Iterator<i>.at_end(it) then 0
        else if Eq<Iterator<i>.elt>.eq(Iterator<i>.curr(it), x)
        then 1 + go(Iterator<i>.next(it), x)
        else go(Iterator<i>.next(it), x)
in
// contains: is x among the elements
let contains =
  tfun i where Iterator<i>, Eq<Iterator<i>.elt> =>
    fix (go : fn(i, Iterator<i>.elt) -> bool) =>
      fun (it : i, x : Iterator<i>.elt) =>
        if Iterator<i>.at_end(it) then false
        else Eq<Iterator<i>.elt>.eq(Iterator<i>.curr(it), x)
             || go(Iterator<i>.next(it), x)
in
// copy: Section 5.2, from an iterator to an output iterator
let copy =
  tfun i o where Iterator<i>, OutputIterator<o, Iterator<i>.elt> =>
    fix (go : fn(i, o) -> o) =>
      fun (it : i, out : o) =>
        if Iterator<i>.at_end(it) then out
        else go(Iterator<i>.next(it),
                OutputIterator<o, Iterator<i>.elt>.put(out, Iterator<i>.curr(it)))
in
// min_element: smallest element of a non-empty range (Ord)
let min_element =
  tfun i where Iterator<i>, Ord<Iterator<i>.elt> =>
    fix (go : fn(i, Iterator<i>.elt) -> Iterator<i>.elt) =>
      fun (it : i, best : Iterator<i>.elt) =>
        if Iterator<i>.at_end(it) then best
        else if Ord<Iterator<i>.elt>.less(Iterator<i>.curr(it), best)
        then go(Iterator<i>.next(it), Iterator<i>.curr(it))
        else go(Iterator<i>.next(it), best)
in
// equal_ranges: element-wise equality of two ranges (same elt type)
let equal_ranges =
  tfun i1 i2 where
      Iterator<i1>, Iterator<i2>, Eq<Iterator<i1>.elt>,
      Iterator<i1>.elt == Iterator<i2>.elt =>
    fix (go : fn(i1, i2) -> bool) =>
      fun (xs : i1, ys : i2) =>
        if Iterator<i1>.at_end(xs) then Iterator<i2>.at_end(ys)
        else if Iterator<i2>.at_end(ys) then false
        else Eq<Iterator<i1>.elt>.eq(Iterator<i1>.curr(xs), Iterator<i2>.curr(ys))
             && go(Iterator<i1>.next(xs), Iterator<i2>.next(ys))
in
// merge: Section 5's motivating example for same-type constraints
let merge =
  tfun i1 i2 o where
      Iterator<i1>, Iterator<i2>,
      OutputIterator<o, Iterator<i1>.elt>,
      Ord<Iterator<i1>.elt>,
      Iterator<i1>.elt == Iterator<i2>.elt =>
    fix (go : fn(i1, i2, o) -> o) =>
      fun (xs : i1, ys : i2, out : o) =>
        if Iterator<i1>.at_end(xs) then
          (fix (drain : fn(i2, o) -> o) =>
            fun (rest : i2, acc : o) =>
              if Iterator<i2>.at_end(rest) then acc
              else drain(Iterator<i2>.next(rest),
                         OutputIterator<o, Iterator<i1>.elt>.put(acc, Iterator<i2>.curr(rest))))(ys, out)
        else if Iterator<i2>.at_end(ys) then
          (fix (drain : fn(i1, o) -> o) =>
            fun (rest : i1, acc : o) =>
              if Iterator<i1>.at_end(rest) then acc
              else drain(Iterator<i1>.next(rest),
                         OutputIterator<o, Iterator<i1>.elt>.put(acc, Iterator<i1>.curr(rest))))(xs, out)
        else if Ord<Iterator<i1>.elt>.less(Iterator<i1>.curr(xs), Iterator<i2>.curr(ys))
        then go(Iterator<i1>.next(xs), ys,
                OutputIterator<o, Iterator<i1>.elt>.put(out, Iterator<i1>.curr(xs)))
        else go(xs, Iterator<i2>.next(ys),
                OutputIterator<o, Iterator<i1>.elt>.put(out, Iterator<i2>.curr(ys)))
in
// power: x ** n via the Monoid (n >= 0); Group gives negative powers
let power =
  tfun t where Monoid<t> =>
    fix (go : fn(t, int) -> t) =>
      fun (x : t, n : int) =>
        if n == 0 then Monoid<t>.identity_elt
        else Semigroup<t>.binary_op(x, go(x, n - 1))
in
// insertion sort over any Ord — the STL flagship
let insert_sorted =
  tfun t where Ord<t> =>
    fix (go : fn(t, list t) -> list t) =>
      fun (x : t, ls : list t) =>
        if null[t](ls) then cons[t](x, nil[t])
        else if Ord<t>.leq(x, car[t](ls)) then cons[t](x, ls)
        else cons[t](car[t](ls), go(x, cdr[t](ls)))
in
let insertion_sort =
  tfun t where Ord<t> =>
    fix (go : fn(list t) -> list t) =>
      fun (ls : list t) =>
        if null[t](ls) then nil[t]
        else insert_sorted[t](car[t](ls), go(cdr[t](ls)))
in
// is the range sorted (non-decreasing)?
let is_sorted =
  tfun t where Ord<t> =>
    fix (go : fn(list t) -> bool) =>
      fun (ls : list t) =>
        if null[t](ls) then true
        else if null[t](cdr[t](ls)) then true
        else Ord<t>.leq(car[t](ls), car[t](cdr[t](ls))) && go(cdr[t](ls))
in
// reverse (accumulating)
let reverse =
  tfun t =>
    fun (ls : list t) =>
      (fix (go : fn(list t, list t) -> list t) =>
        fun (rest : list t, acc : list t) =>
          if null[t](rest) then acc
          else go(cdr[t](rest), cons[t](car[t](rest), acc)))(ls, nil[t])
in
// take / drop
let take =
  tfun t =>
    fix (go : fn(int, list t) -> list t) =>
      fun (n : int, ls : list t) =>
        if n <= 0 then nil[t]
        else if null[t](ls) then nil[t]
        else cons[t](car[t](ls), go(n - 1, cdr[t](ls)))
in
let drop =
  tfun t =>
    fix (go : fn(int, list t) -> list t) =>
      fun (n : int, ls : list t) =>
        if n <= 0 then ls
        else if null[t](ls) then nil[t]
        else go(n - 1, cdr[t](ls))
in
// higher-order: filter and map are plain System F, but compose with
// the concept-constrained algorithms
let filter =
  tfun t =>
    fix (go : fn(fn(t) -> bool, list t) -> list t) =>
      fun (p : fn(t) -> bool, ls : list t) =>
        if null[t](ls) then nil[t]
        else if p(car[t](ls)) then cons[t](car[t](ls), go(p, cdr[t](ls)))
        else go(p, cdr[t](ls))
in
let map_list =
  tfun a b =>
    fix (go : fn(fn(a) -> b, list a) -> list b) =>
      fun (f : fn(a) -> b, ls : list a) =>
        if null[a](ls) then nil[b]
        else cons[b](f(car[a](ls)), go(f, cdr[a](ls)))
in
// remove adjacent duplicates (unique on a sorted range gives set)
let unique_adjacent =
  tfun t where Eq<t> =>
    fix (go : fn(list t) -> list t) =>
      fun (ls : list t) =>
        if null[t](ls) then nil[t]
        else if null[t](cdr[t](ls)) then ls
        else if Eq<t>.eq(car[t](ls), car[t](cdr[t](ls)))
        then go(cdr[t](ls))
        else cons[t](car[t](ls), go(cdr[t](ls)))
in
// binary max over a whole range via the Ord default max2
let max_element =
  tfun i where Iterator<i>, Ord<Iterator<i>.elt> =>
    fix (go : fn(i, Iterator<i>.elt) -> Iterator<i>.elt) =>
      fun (it : i, best : Iterator<i>.elt) =>
        if Iterator<i>.at_end(it) then best
        else go(Iterator<i>.next(it), Ord<Iterator<i>.elt>.max2(best, Iterator<i>.curr(it)))
in
// sum_container: the Iterator requirement on the container's iterator
// type is implied by Container's nested requirement
let sum_container =
  tfun c where Container<c>, Monoid<Iterator<Container<c>.iter>.elt> =>
    fun (xs : c) =>
      accumulate_iter[Container<c>.iter](Container<c>.begin(xs))
in
|}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

(** Everything: concepts, base models, parameterized list models,
    algorithms. *)
let full =
  concepts ^ int_models ^ bool_models ^ list_int_models
  ^ list_parameterized_models ^ algorithms

(** [wrap body] is a complete program evaluating [body] under the full
    prelude. *)
let wrap body = full ^ body

(** [wrap_concepts body] — concepts only, no models or algorithms. *)
let wrap_concepts body = concepts ^ body

(** A literal [list int] in concrete syntax. *)
let int_list ns =
  List.fold_right
    (fun n acc -> Printf.sprintf "cons[int](%d, %s)" n acc)
    ns "nil[int]"
