test/test_fg_translate.ml: Alcotest Astring_contains Check Corpus Fg_core Fg_systemf List Parser String
