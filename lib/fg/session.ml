(** Session-based driver (see the interface).

    The load-bearing pieces:

    - {!Unit.walk} drives every declaration spine — the prelude's, each
      program's, each {!extend} — through a content-hashed unit cache:
      a declaration is checked at most once per (content, dependency
      chain, environment family, supply position) and replayed from the
      cache everywhere else, byte-identically;
    - {!Fg_util.Gensym.mark}/[restore] rewind the fresh-name supply to
      its post-prelude position before every program, so a session's
      output for a program is identical to a standalone run's and
      independent of serving order;
    - the resolution cache and congruence closure live in the shared
      environment and stay warm across programs (scope generations keep
      per-program extensions from contaminating each other);
    - {!run_batch} fans out over [Domain.spawn], one private session
      per domain (checker state — gensym, hash-cons table, caches — is
      single-domain by design). *)

open Fg_util
module F = Fg_systemf

module Config = struct
  type t = {
    backend : Backend.t;
    resolution : Resolution.mode;
    escape_check : bool;
    prelude : string option;
    unit_cache_capacity : int option;
    cache_dir : string option;
    cache_max_bytes : int option;
    profile : Profile.t option;
  }

  let default =
    {
      backend = Backend.Dict;
      resolution = Resolution.Lexical;
      escape_check = true;
      prelude = None;
      unit_cache_capacity = None;
      cache_dir = None;
      cache_max_bytes = None;
      profile = None;
    }

  let with_backend backend c = { c with backend }
  let with_resolution resolution c = { c with resolution }
  let with_escape_check escape_check c = { c with escape_check }
  let with_prelude prelude c = { c with prelude }
  let with_standard_prelude c = { c with prelude = Some Prelude.full }
  let with_unit_cache_capacity unit_cache_capacity c =
    { c with unit_cache_capacity }
  let with_cache_dir cache_dir c = { c with cache_dir }
  let with_cache_max_bytes cache_max_bytes c = { c with cache_max_bytes }
  let with_profile profile c = { c with profile }
end

type spec = {
  spec_exp : F.Ast.exp;
  spec_steps : int;
  spec_stats : F.Specialize.stats;
}

type outcome = {
  source : string;
  ast : Ast.exp;
  fg_ty : Ast.ty;
  f_exp : F.Ast.exp;
  f_ty : F.Ast.ty;
  theorem_holds : bool;
  value : Interp.flat;
  direct_steps : int;
  translated_steps : int;
  backend : Backend.t;
  spec : spec option;
}

type t = {
  cfg : Config.t;  (** creation-time configuration (prelude tracks
                       {!extend}, so batch domains and servers can
                       rebuild an equivalent session from it) *)
  env : Env.t;  (** the post-prelude environment *)
  wrap : Ast.ty * Ast.exp * F.Ast.exp -> Ast.ty * Ast.exp * F.Ast.exp;
      (** embeds a checked body into the prelude's results *)
  mark : int;  (** fresh-name supply position after the prelude *)
  globals_mark : (string * Ast.ty list) list;
      (** the Global-ablation overlap set after the prelude *)
  hc : Hashcons.t;
  cache : Unit.cache;  (** compilation-unit cache (possibly shared) *)
  spine : Unit.checked list;
      (** the units whose scope [env] reflects: prelude then every
          [extend], in declaration order — their keys seed each
          program's dependency chain *)
  created : Telemetry.snapshot;
}

(* ---------------------------------------------------------------- *)
(* Construction                                                      *)

(* Check a declaration stack on top of [env] through the unit cache,
   returning the extended environment, the composed wrapper, and the
   checked units.  The stack is parsed with a dummy [0] body; anything
   left over after the declaration spine means the text was not purely
   declarations. *)
let check_decl_stack hc cache ~spine env src ~file =
  let ast =
    Telemetry.time Telemetry.Parse (fun () ->
        Parser.exp_of_string ~file (src ^ "\n0"))
  in
  let ast = Hashcons.intern_exp hc ast in
  let w =
    Telemetry.time Telemetry.Check (fun () ->
        Unit.walk cache ~spine env ast)
  in
  (match w.Unit.w_residual.Ast.desc with
  | Ast.Lit (Ast.LInt 0) -> ()
  | _ ->
      Diag.wf_error ~loc:w.Unit.w_residual.Ast.loc
        "session prelude must be a stack of declarations (found a \
         non-declaration before the end)");
  (w.Unit.w_env, w.Unit.w_wrap, w.Unit.w_units)

let of_config ?cache (cfg : Config.t) : t =
  let env0 =
    Env.create ~resolution:cfg.Config.resolution
      ~escape_check:cfg.Config.escape_check ()
  in
  let hc = Hashcons.create () in
  let cache =
    match cache with
    | Some c -> c
    | None ->
        let c = Unit.create_cache ?capacity:cfg.Config.unit_cache_capacity () in
        (* Attach the disk tier before the prelude walk so the
           prelude's own units persist too (and replay on warm runs). *)
        (match cfg.Config.cache_dir with
        | None -> ()
        | Some dir ->
            let d =
              Diskcache.open_store ?max_bytes:cfg.Config.cache_max_bytes dir
            in
            Unit.set_stores c [ Unit.disk_store d ]);
        c
  in
  let env, wrap, spine =
    match cfg.Config.prelude with
    | None -> (env0, (fun res -> res), [])
    | Some src ->
        Telemetry.record_prelude_build ();
        check_decl_stack hc cache ~spine:[] env0 src ~file:"<prelude>"
  in
  {
    cfg;
    env;
    wrap;
    mark = Gensym.mark env.Env.gensym;
    globals_mark = !(env.Env.global_models);
    hc;
    cache;
    spine;
    created = Telemetry.snapshot ();
  }

let config t = t.cfg

(* Deprecated optional-argument shims, kept for one release. *)
let create ?(resolution = Resolution.Lexical) ?(escape_check = true) ?prelude
    ?cache ?unit_cache_capacity () : t =
  of_config ?cache
    {
      Config.default with
      Config.resolution;
      escape_check;
      prelude;
      unit_cache_capacity;
    }

let with_prelude ?resolution () =
  of_config
    (Config.with_standard_prelude
       (match resolution with
       | None -> Config.default
       | Some r -> Config.with_resolution r Config.default))

let backend t = t.cfg.Config.backend
let resolution t = t.cfg.Config.resolution
let prelude_source t = t.cfg.Config.prelude

let extend t decls =
  (* Rewind the supply first so extension points do not depend on how
     many programs the session has served. *)
  Gensym.restore t.env.Env.gensym t.mark;
  t.env.Env.global_models := t.globals_mark;
  let env', wrap', units =
    check_decl_stack t.hc t.cache ~spine:t.spine t.env decls ~file:"<decls>"
  in
  (* A redefinition shadows earlier spine units; drop cached entries
     that depended on the shadowed definitions.  (Correctness does not
     need this — a dependent's key chains through its providers, so it
     would miss anyway — but the dead entries would otherwise sit in
     the cache until evicted, and the bump makes invalidation
     observable in the stats.)  The spine itself stays protected:
     shadowed units are still live history. *)
  let provided =
    List.fold_left
      (fun s (u : Unit.checked) ->
        Names.Sset.union u.Unit.ck_info.Declgraph.i_provides s)
      Names.Sset.empty units
  in
  let seeds =
    List.filter_map
      (fun (u : Unit.checked) ->
        if
          Names.Sset.is_empty
            (Names.Sset.inter u.Unit.ck_info.Declgraph.i_provides provided)
        then None
        else Some u.Unit.ck_key)
      t.spine
  in
  let protect =
    List.map (fun (u : Unit.checked) -> u.Unit.ck_key) (t.spine @ units)
  in
  ignore (Unit.invalidate t.cache ~protect ~seeds);
  {
    t with
    cfg =
      Config.with_prelude
        (Some
           (Option.fold ~none:decls ~some:(fun p -> p ^ "\n" ^ decls)
              t.cfg.Config.prelude))
        t.cfg;
    env = env';
    wrap = (fun res -> t.wrap (wrap' res));
    mark = Gensym.mark env'.Env.gensym;
    globals_mark = !(env'.Env.global_models);
    spine = t.spine @ units;
  }

let extend_result t decls = Diag.protect (fun () -> extend t decls)

(* ---------------------------------------------------------------- *)
(* Per-program checking                                              *)

(* Reset the per-program mutable state the shared environment carries:
   the fresh-name supply and the Global ablation's overlap set go back
   to their post-prelude positions, so program N+1 sees exactly the
   state program 1 saw. *)
let rewind t =
  Gensym.restore t.env.Env.gensym t.mark;
  t.env.Env.global_models := t.globals_mark;
  Telemetry.record_program ();
  if t.cfg.Config.prelude <> None then Telemetry.record_prelude_reuse ()

let parse t ?(file = "<program>") source =
  let ast =
    Telemetry.time Telemetry.Parse (fun () ->
        Parser.exp_of_string ~file source)
  in
  Hashcons.intern_exp t.hc ast

(* Parse and check one program under the session environment, returning
   the program's own AST and the whole-program (prelude-wrapped)
   elaboration triple.  The program's declaration spine goes through
   the unit cache: re-checking an edited program re-checks only the
   units whose content or dependencies changed. *)
let check_source ?file t source =
  let ast = parse t ?file source in
  rewind t;
  let triple =
    Telemetry.time Telemetry.Check (fun () ->
        let w = Unit.walk t.cache ~spine:t.spine t.env ast in
        t.wrap (w.Unit.w_wrap (Check.check w.Unit.w_env w.Unit.w_residual)))
  in
  (ast, triple)

let elaborate ?file t source = snd (check_source ?file t source)

let typecheck ?file t source =
  let ty, _, _ = elaborate ?file t source in
  ty

let translate ?file t source =
  let _, _, f = elaborate ?file t source in
  f

let verify ?file t source =
  let triple = elaborate ?file t source in
  Telemetry.time Telemetry.Verify (fun () ->
      Theorems.report_of_elaboration triple)

let interpret ?file ?fuel t source =
  let _, elaborated, _ = elaborate ?file t source in
  Telemetry.time Telemetry.Eval (fun () -> Interp.run_value ?fuel elaborated)

(* Specializing back end: partially evaluate the translation, then
   enforce the oracle — the specialized program must re-typecheck in
   System F at a type alpha-equal to the translation's and evaluate to
   the same flat value as the direct interpreter.  Either failure is a
   stable diagnostic (FG0502 / FG0503), not a silent divergence. *)
let specialized ?fuel ?profile ~backend ~direct ~translated_steps
    (report : Theorems.report) : spec option =
  match Backend.specialize_mode backend with
  | None -> None
  | Some mode ->
      (* Guided mode stencils only the instantiations the profile
         marks hot; with no profile nothing is hot and the translation
         passes through unchanged. *)
      let hot =
        match profile with Some p -> Profile.hot p | None -> fun _ -> false
      in
      let f_spec, stats =
        Telemetry.time Telemetry.Specialize (fun () ->
            F.Specialize.specialize ~mode ~hot report.Theorems.f_exp)
      in
      Telemetry.record_stencils_created stats.F.Specialize.st_stencils;
      Telemetry.record_stencils_shared stats.F.Specialize.st_shared;
      Telemetry.record_stencil_fallbacks stats.F.Specialize.st_fallbacks;
      Telemetry.record_dicts_hoisted stats.F.Specialize.st_hoisted;
      if not (F.Specialize.changed stats) then
        (* nothing to specialize: the translation is the stencil *)
        Some
          {
            spec_exp = report.Theorems.f_exp;
            spec_steps = translated_steps;
            spec_stats = stats;
          }
      else begin
        let spec_ty =
          Telemetry.time Telemetry.Verify (fun () ->
              F.Typecheck.typecheck f_spec)
        in
        if not (F.Ast.alpha_equal spec_ty report.Theorems.f_ty) then
          Diag.translate_error ~code:"FG0502"
            "specialized program has type %s but the translation has type %s"
            (F.Pretty.ty_to_string spec_ty)
            (F.Pretty.ty_to_string report.Theorems.f_ty);
        let v_spec, spec_steps =
          Telemetry.time Telemetry.Eval (fun () -> F.Eval.run ?fuel f_spec)
        in
        let spec_flat = Interp.flatten_f v_spec in
        if not (Interp.flat_equal direct spec_flat) then
          Diag.eval_error ~code:"FG0503"
            "direct interpreter computed %s but the specialized program \
             computed %s"
            (Interp.flat_to_string direct)
            (Interp.flat_to_string spec_flat);
        Some { spec_exp = f_spec; spec_steps; spec_stats = stats }
      end

(* Back half of the full pipeline, shared by [run] and [run_full]:
   theorem check, both evaluations, agreement, and — off the Dict
   backend — specialization plus its oracle. *)
let complete ?fuel ?profile ~backend ~source ~ast triple : outcome =
  let report =
    Telemetry.time Telemetry.Verify (fun () ->
        Theorems.report_of_elaboration triple)
  in
  (* Workload profiling: census the translation's ground instantiation
     sites (any backend, dict included — profiles recorded on the
     cheap backend guide the expensive one). *)
  if Profile.collecting () then
    Profile.record_instantiations (F.Specialize.observe report.Theorems.f_exp);
  let (v_direct, direct_steps), (v_translated, translated_steps) =
    Telemetry.time Telemetry.Eval (fun () ->
        ( Interp.run_program ?fuel report.Theorems.elaborated,
          F.Eval.run ?fuel report.Theorems.f_exp ))
  in
  let direct = Interp.flatten v_direct in
  let translated = Interp.flatten_f v_translated in
  if not (Interp.flat_equal direct translated) then
    Diag.error Diag.Eval
      "direct interpreter computed %s but the translation computed %s"
      (Interp.flat_to_string direct)
      (Interp.flat_to_string translated);
  let spec =
    specialized ?fuel ?profile ~backend ~direct ~translated_steps report
  in
  {
    source;
    ast;
    fg_ty = report.Theorems.fg_ty;
    f_exp = report.Theorems.f_exp;
    f_ty = report.Theorems.f_ty;
    theorem_holds = true;
    value = direct;
    direct_steps;
    translated_steps;
    backend;
    spec;
  }

let run ?file ?fuel t source : outcome =
  let ast, triple = check_source ?file t source in
  complete ?fuel ?profile:t.cfg.Config.profile ~backend:t.cfg.Config.backend
    ~source ~ast triple

let run_result ?file ?fuel t source =
  Diag.protect (fun () -> run ?file ?fuel t source)

type run_report = {
  outcome : outcome option;
  diagnostics : Diag.diagnostic list;
}

let run_full_impl ~file ?fuel ?decl_log t source : run_report =
  let engine = Diag.engine () in
  (* Route warnings raised anywhere under this run (the environment's
     sink) into the same engine as the recovered errors. *)
  let saved = !(t.env.Env.diag) in
  t.env.Env.diag := engine;
  Fun.protect
    ~finally:(fun () -> t.env.Env.diag := saved)
    (fun () ->
      let ast, dropped =
        Telemetry.time Telemetry.Parse (fun () ->
            Parser.exp_of_string_recovering ~engine ~file source)
      in
      let ast = Hashcons.intern_exp t.hc ast in
      rewind t;
      let poisoned = Names.Sset.of_list dropped in
      let w =
        Telemetry.time Telemetry.Check (fun () ->
            Unit.walk ~recover:engine ~poisoned t.cache ~spine:t.spine t.env
              ast)
      in
      Option.iter (fun r -> r := w.Unit.w_decls) decl_log;
      let poisoned = w.Unit.w_poisoned in
      (* The residual body is checked even when declarations failed, so
         its own independent errors surface in the same invocation;
         references to poisoned bindings are suppressed as cascades. *)
      let triple =
        match
          Telemetry.time Telemetry.Check (fun () ->
              t.wrap (w.Unit.w_wrap (Check.check w.Unit.w_env w.Unit.w_residual)))
        with
        | triple -> Some triple
        | exception Diag.Error d ->
            if not (Check.is_cascade poisoned d) then Diag.report engine d;
            None
      in
      let outcome =
        match triple with
        | Some triple when not (Diag.has_errors engine) ->
            Diag.capture engine (fun () ->
                complete ?fuel ?profile:t.cfg.Config.profile
                  ~backend:t.cfg.Config.backend ~source ~ast triple)
        | _ -> None
      in
      { outcome; diagnostics = Diag.diagnostics engine })

let run_full ?(file = "<program>") ?fuel t source : run_report =
  run_full_impl ~file ?fuel t source

(* The workspace entry point: exactly [run_full] — same recovering
   parse, same walk, same diagnostics, so its report renders
   byte-identically — but it also hands back the walked declaration
   log and every position-index entry recorded while checking.
   Replayed (cache-hit) declarations record no entries; the caller
   rebases the entries it saved when their unit was first checked. *)
type indexed_run = {
  ix_report : run_report;
  ix_decls : (Ast.exp * string * Unit.decl_outcome) list;
  ix_entries : Check.index_entry list;  (** in recording order *)
}

let run_indexed ?(file = "<program>") ?fuel t source : indexed_run =
  let entries = ref [] in
  let decl_log = ref [] in
  let report =
    Check.with_index_sink
      (fun e -> entries := e :: !entries)
      (fun () -> run_full_impl ~file ?fuel ~decl_log t source)
  in
  { ix_report = report; ix_decls = !decl_log; ix_entries = List.rev !entries }

(* ---------------------------------------------------------------- *)
(* Parallel batch verification                                       *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

let run_batch ?domains ?fuel t (jobs : (string * string) list) :
    (string * (outcome, Diag.diagnostic) result) list =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let domains =
    let d = match domains with Some d -> d | None -> default_domains () in
    max 1 (min d (max 1 n))
  in
  let results = Array.make n None in
  (* Strided work split: domain d takes jobs d, d+domains, ...  Writes
     land on disjoint indices, so the array needs no lock; outcomes are
     per-program deterministic (the supply is rewound before each), so
     the assembled list is identical for every domain count. *)
  let work t_local first =
    let i = ref first in
    while !i < n do
      let name, source = jobs.(!i) in
      results.(!i) <- Some (name, run_result ~file:name ?fuel t_local source);
      i := !i + domains
    done
  in
  if domains = 1 then work t 0
  else begin
    let spawned =
      List.init (domains - 1) (fun k ->
          Domain.spawn (fun () ->
              (* Each spawned domain gets its own session and unit
                 cache: the cache's table is single-writer by design. *)
              work (of_config t.cfg) (k + 1)))
    in
    work t 0;
    List.iter Domain.join spawned
  end;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> Diag.ice "run_batch: unfilled result slot")
       results)

(* ---------------------------------------------------------------- *)
(* Observability                                                     *)

let stats t = Telemetry.diff (Telemetry.snapshot ()) t.created
let interned_types t = Hashcons.size t.hc
let unit_cache t = t.cache
let cache_stats t = Unit.stats t.cache
