(** Client side of the wire protocol (see the interface).

    The batch path is the throughput workhorse: it keeps a bounded
    window of requests pipelined on one connection, matches responses
    back to requests by id (workers may answer out of order), retries
    bounded-ly on overload, and returns responses in request order. *)

open Fg_util

type conn = { fd : Unix.file_descr; dec : Protocol.decoder }

exception Client_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Client_error m)) fmt

let connect ?max_frame (addr : Server.address) =
  let fd =
    match addr with
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with Unix.Unix_error (e, _, _) ->
           fail "cannot connect to %s: %s" path (Unix.error_message e));
        fd
    | `Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> fail "unknown host %s" host)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd (Unix.ADDR_INET (inet, port));
           Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error (e, _, _) ->
           fail "cannot connect to %s:%d: %s" host port
             (Unix.error_message e));
        fd
  in
  { fd; dec = Protocol.decoder ?max_frame () }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c req =
  Protocol.write_frame c.fd
    (Json.to_string (Protocol.request_to_json req))

(* Send raw bytes as one frame — deliberately malformed payloads for
   tests and the CI probe go through here. *)
let send_raw_frame c payload = Protocol.write_frame c.fd payload

let send_raw_bytes c s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write c.fd b !off (n - !off)
  done

let read_response c =
  let rec loop () =
    match Protocol.next_frame c.dec with
    | `Frame payload -> (
        match Json.of_string payload with
        | Error e -> fail "response frame is not valid JSON: %s" e
        | Ok j -> (
            match Protocol.response_of_json j with
            | Ok r -> r
            | Error e -> fail "bad response: %s" e))
    | `Error e -> fail "response framing error: %s" e
    | `Await ->
        if Protocol.read_chunk c.dec c.fd then loop ()
        else fail "connection closed by server"
  in
  loop ()

let request c req =
  send c req;
  let r = read_response c in
  if r.Protocol.r_id <> 0 && r.Protocol.r_id <> req.Protocol.id then
    fail "response id %d for request %d" r.Protocol.r_id req.Protocol.id;
  r

(* ---------------------------------------------------------------- *)
(* Pipelined batch                                                   *)

let default_window = 32

let batch ?(window = default_window) ?(overload_retries = 64) c
    (reqs : Protocol.request list) : Protocol.response list =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  (* Re-key requests onto ids 1..n so responses map back to slots no
     matter what ids the caller picked. *)
  let keyed =
    Array.mapi (fun i r -> { r with Protocol.id = i + 1 }) reqs
  in
  let results : Protocol.response option array = Array.make n None in
  let retries_left = Array.make n overload_retries in
  let window = max 1 window in
  let next_to_send = ref 0 in
  let to_resend = Queue.create () in
  let inflight = ref 0 in
  let received = ref 0 in
  while !received < n do
    (* Fill the window: resends first (they are oldest), then fresh. *)
    while
      !inflight < window
      && ((not (Queue.is_empty to_resend)) || !next_to_send < n)
    do
      let idx =
        if not (Queue.is_empty to_resend) then Queue.pop to_resend
        else begin
          let i = !next_to_send in
          incr next_to_send;
          i
        end
      in
      send c keyed.(idx);
      incr inflight
    done;
    let r = read_response c in
    decr inflight;
    let idx = r.Protocol.r_id - 1 in
    if idx < 0 || idx >= n then
      fail "response for unknown request id %d" r.Protocol.r_id
    else if r.Protocol.r_status = Protocol.Overload && retries_left.(idx) > 0
    then begin
      (* Bounded retry with a small pause: the queue was full, give
         the workers a moment to drain it. *)
      retries_left.(idx) <- retries_left.(idx) - 1;
      Unix.sleepf 0.002;
      Queue.push idx to_resend
    end
    else begin
      (match results.(idx) with
      | None -> incr received
      | Some _ -> fail "duplicate response for request id %d" (idx + 1));
      results.(idx) <- Some r
    end
  done;
  Array.to_list
    (Array.mapi
       (fun i -> function
         | Some r -> { r with Protocol.r_id = reqs.(i).Protocol.id }
         | None -> fail "missing response for request %d" (i + 1))
       results)

(* ---------------------------------------------------------------- *)
(* Conveniences                                                      *)

let stats c = request c (Protocol.request ~id:1 Protocol.Stats)

let shutdown c = request c (Protocol.request ~id:1 Protocol.Shutdown)

let run_file c ?timeout_ms ?(prelude = false) ?(global_models = false)
    ~file source =
  request c
    (Protocol.request ~id:1 ~file ~source ~prelude ~global_models
       ?timeout_ms Protocol.Run)
