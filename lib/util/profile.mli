(** Persistent per-workload profiles — the feedback half of telemetry.

    A profile summarizes what a workload actually did: which ground
    instantiations of generic functions were requested (and how
    often), which concept resolutions fired, how the compilation-unit
    cache behaved, and which translation backends the requests asked
    for.  [fgc run --stats --profile-out FILE] and
    [fgc serve --profile-out FILE] write one; [--profile FILE] feeds
    it back into the [guided] backend (stencil only the hot
    instantiations) and into the server's startup auto-sizing.

    The serialized form is canonical: one JSON object, every key in
    sorted order, every count map a sorted object of positive
    integers — so two runs over the same workload produce
    byte-identical files and CI can diff them.  {!merge} is the
    multi-worker / fleet operation: profiles from many processes sum
    into one.

    Collection is process-global and off by default: the driver flips
    {!set_collecting} on when a [--profile-out] destination exists,
    and the instrumented sites ({!Fg_core} resolution, the session's
    instantiation observer) record into private sharded-counter
    registries — the same mechanics as {!Coverage}, but a separate
    instance, so profile keys never pollute fuzz coverage. *)

(** Compilation-unit cache pressure, as profiled.  [c_size] and
    [c_capacity] are gauges (entries at snapshot time / configured
    bound); the rest are event counts. *)
type cache = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_invalidations : int;
  c_size : int;
  c_capacity : int;
}

val cache_zero : cache

type t = {
  p_programs : int;  (** programs that went through a driver entry point *)
  p_instantiations : Shardcounter.map;
      (** ground instantiation sites by key ["f[ty,...]"] — the same
          key the specializing backend uses, so hotness transfers *)
  p_resolutions : Shardcounter.map;
      (** successful concept resolutions by rendered constraint,
          e.g. ["Eq<list int>"] (counted once per fresh decision, like
          coverage — cache replays are not re-counted) *)
  p_backends : Shardcounter.map;  (** requests per translation backend *)
  p_requests : Shardcounter.map;
      (** server request mix by wire kind; empty for one-shot runs *)
  p_unit_cache : cache;
}

val empty : t

(** Pointwise sum (capacity merges by max — the fleet's largest
    configured cache). *)
val merge : t -> t -> t

(** {1 Canonical serialization} *)

(** The canonical JSON object: keys recursively sorted, count maps
    restricted to positive entries, and a ["fgc_profile"] format
    version.  Equal profiles render byte-identically. *)
val to_json : t -> Json.t

(** Lenient inverse of {!to_json}: unknown fields are ignored, absent
    fields default to empty/zero.  [Error] when the document is not an
    object or the ["fgc_profile"] version is missing or unsupported. *)
val of_json : Json.t -> (t, string) result

val to_string : t -> string
(** [to_string p] is the canonical rendering plus a trailing
    newline. *)

(** Read a profile file.  Raises the FG1003 configuration diagnostic
    when the file is unreadable or not a valid profile. *)
val load : string -> t

(** Write [to_string] atomically enough for CI (temp file + rename
    would be overkill: profiles are written once, after the workload
    drains). *)
val save : string -> t -> unit

(** {1 The guided-backend decision rule}

    An instantiation is {e hot} when its profiled count is at least
    the mean count over all profiled instantiations, and at least 2.
    Under a skewed (Zipf-like) workload the head clears the mean and
    gets stenciled; the long tail stays on dictionary passing. *)

val hot_threshold : t -> int
(** [max 2 (ceil (total / distinct))]; 0 when no instantiations were
    profiled (nothing is hot). *)

val hot : t -> string -> bool
(** [hot p key] — whether the instantiation key clears
    {!hot_threshold}.  O(log n) per query. *)

(** {1 Server auto-sizing} *)

type sizing = {
  sz_unit_cache_capacity : int option;
      (** [None] = keep the configured default *)
  sz_workers : int option;
}

(** Deterministic startup sizing from profiled pressure:

    - unit-cache capacity: if the profiled run evicted, grow to the
      next power of two that would have held the entries it touched
      ([c_size + c_evictions]), clamped to [[default_capacity, 65536]];
      no evictions, no change.
    - workers: one worker per 64 profiled requests (programs, for
      one-shot profiles), at least 1, never more than the configured
      [workers] — a nearly idle profile shrinks the pool so the warm
      unit caches concentrate. *)
val auto_size : t -> default_capacity:int -> workers:int -> sizing

(** {1 Process-global collection} *)

val set_collecting : bool -> unit
val collecting : unit -> bool

(** Bulk-record instantiation counts for one program (the session's
    observer reports per-program sums). *)
val record_instantiations : Shardcounter.map -> unit

(** Record one successful concept resolution by rendered constraint. *)
val record_resolution : string -> unit

(** Assemble a profile from everything recorded since the last
    {!reset_collected}, plus the caller-supplied context (program
    count, cache pressure, request/backend mix). *)
val collected :
  programs:int ->
  unit_cache:cache ->
  backends:Shardcounter.map ->
  requests:Shardcounter.map ->
  unit ->
  t

(** Zero the collection registries (tests, and serve restarting). *)
val reset_collected : unit -> unit
