lib/fg/check.ml: Ast Diag Env Fg_systemf Fg_util Hashtbl List Names Option Pretty Printf Resolution String Types
