(* fgc: the System FG command-line driver.

   Subcommands:
     check      type check a program, print its FG type
     translate  print the System F translation (optionally its type)
     run        run the full pipeline and print the value
     verify     check the translation-preserves-typing theorem
     batch      run many programs through the pipeline, in parallel
     corpus     list or run the built-in paper corpus
     eq         decide a same-type query under assumptions

   All program-driving subcommands go through a {!Fg_core.Session}:
   with [--prelude] the standard prelude is checked once per session
   (not per program), and [--stats] reports the phase timers and cache
   counters the session accumulated.  Programs are read from a file
   argument or from stdin ("-"). *)

open Cmdliner
module C = Fg_core
module F = Fg_systemf
module Diag = Fg_util.Diag
module Telemetry = Fg_util.Telemetry
module Json = Fg_util.Json
module Profile = Fg_util.Profile

let read_input = function
  | "-" ->
      let b = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel b stdin 4096
         done
       with End_of_file -> ());
      ("<stdin>", Buffer.contents b)
  | path -> (
      match open_in_bin path with
      | exception Sys_error msg -> Diag.error Diag.Parser "cannot read %s" msg
      | ic ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          (path, s))

(* ---------------------------------------------------------------- *)
(* JSON views — shared with the server so `fgc serve` payloads are
   byte-identical to one-shot output (see lib/fg/jsonview.ml). *)

let json_of_diags = C.Jsonview.json_of_diags
let json_of_outcome = C.Jsonview.json_of_outcome
let json_of_failure = C.Jsonview.json_of_failure
let print_json j = print_endline (Json.to_string j)

(* ---------------------------------------------------------------- *)
(* Common arguments                                                  *)

(* Run a command body that reports its own exit code; on a diagnostic
   print it (as JSON when asked) and exit non-zero.  With [--stats],
   the telemetry accumulated by the command — timers and cache counters
   included — goes to stderr either way. *)
let handle_code ?(json = false) ?(stats = false) f =
  let before = Telemetry.snapshot () in
  let finish code =
    if stats then
      Fmt.epr "%a@." Telemetry.pp
        (Telemetry.diff (Telemetry.snapshot ()) before);
    code
  in
  match f () with
  | code -> finish code
  | exception Diag.Error d ->
      if json then
        print_json (Json.Obj [ ("ok", Json.Bool false);
                               ("diagnostics", json_of_diags [ d ]) ])
      else Fmt.epr "%a@." Diag.pp d;
      finish 1

let handle ?json ?stats f = handle_code ?json ?stats (fun () -> f (); 0)

let expr_arg =
  let doc = "Give the program inline instead of reading a file." in
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"SRC" ~doc)

let global_flag =
  let doc =
    "Use global (Haskell-style) model resolution: overlapping models \
     anywhere in the program are rejected.  The default is the paper's \
     lexically scoped resolution."
  in
  Arg.(value & flag & info [ "global-models" ] ~doc)

let resolution_of_flag g =
  if g then C.Resolution.Global else C.Resolution.Lexical

let with_prelude_flag =
  let doc = "Check the program under the standard prelude (concepts, \
             models for int/bool/list int, and the generic algorithms), \
             cached in the session and checked only once." in
  Arg.(value & flag & info [ "p"; "prelude" ] ~doc)

let stats_flag =
  let doc = "Report phase wall times and cache counters (prelude reuse, \
             model-resolution hits, congruence rebuilds, stencil \
             counters) on stderr." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let cache_dir_arg =
  let doc =
    "Persist checked compilation units under $(docv) and reuse them \
     across invocations: a warm run replays every unchanged declaration \
     from disk instead of re-checking it, with byte-identical output.  \
     Entries only decode in the compiler build that wrote them; \
     anything else reads as a miss."
  in
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_max_bytes_arg =
  let doc =
    "Size bound for $(b,--cache-dir); past it the oldest-accessed \
     entries are evicted (default: unbounded)."
  in
  Arg.(value & opt (some int) None
       & info [ "cache-max-bytes" ] ~docv:"BYTES" ~doc)

(* Kept a raw string at the cmdliner layer: unknown names become the
   stable FG1001 configuration diagnostic (through
   [Backend.of_string_exn] inside the command body), not a cmdliner
   usage error — every command accepts and rejects the flag
   identically. *)
let backend_arg =
  let doc =
    "Translation backend: $(b,dict) (the paper's dictionary passing), \
     $(b,stencil) (specialize every ground instantiation), \
     $(b,hybrid) (share stencils between same-shape instantiations, \
     gcshape-style), or $(b,guided) (specialize only the \
     instantiations a $(b,--profile) marks hot).  The specializing \
     backends are re-checked in System F and evaluated against the \
     dictionary semantics."
  in
  Arg.(value & opt string "dict" & info [ "backend" ] ~docv:"NAME" ~doc)

(* -------------------------------------------------------------- *)
(* Profiles: --profile feeds a recorded workload back in (the guided
   backend and the server's auto-sizing consult it); --profile-out
   turns collection on and writes the canonical profile when the
   command finishes. *)

let profile_arg =
  let doc =
    "Feed a recorded workload profile back in: the $(b,guided) backend \
     stencils only the instantiations the profile marks hot, \
     everything cold keeps dictionary passing (see docs/DESIGN.md \
     S23).  Unreadable or malformed files raise FG1003."
  in
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~docv:"FILE" ~doc)

let profile_out_arg =
  let doc =
    "Record a workload profile (hot instantiations, concept \
     resolutions, unit-cache pressure) over this command and write it \
     to $(docv) as canonical sorted-key JSON — byte-stable for CI \
     diffing, mergeable with $(b,fgc profile merge)."
  in
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE" ~doc)

(* Assemble and write the one-shot profile for a finished command:
   instantiation/resolution counts from the global collection
   registries, cache pressure from the driving session (batch domains
   keep their own caches; only the calling session's counters are
   summarized), the backend mix from what this command asked for. *)
let write_profile_out path ~programs s =
  let st = C.Session.cache_stats s in
  let unit_cache =
    {
      Profile.c_hits = st.C.Unit.s_hits;
      c_misses = st.C.Unit.s_misses;
      c_evictions = st.C.Unit.s_evictions;
      c_invalidations = st.C.Unit.s_invalidations;
      c_size = st.C.Unit.s_size;
      c_capacity = st.C.Unit.s_capacity;
    }
  in
  Profile.save path
    (Profile.collected ~programs ~unit_cache
       ~backends:[ (C.Backend.to_string (C.Session.backend s), programs) ]
       ~requests:[] ())

let format_arg =
  let doc = "Output format: $(b,text) (default) or $(b,json)." in
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FMT" ~doc)

(* The session every subcommand drives: prelude cached at creation when
   requested, so per-program work excludes it.  All construction goes
   through one [Session.Config.t]. *)
let session_config ?(backend = "dict") ?cache_dir ?cache_max_bytes ?profile
    ~global ~with_prelude () =
  let module Cfg = C.Session.Config in
  let cfg =
    Cfg.default
    |> Cfg.with_resolution (resolution_of_flag global)
    |> Cfg.with_backend (C.Backend.of_string_exn backend)
    |> Cfg.with_cache_dir cache_dir
    |> Cfg.with_cache_max_bytes cache_max_bytes
    |> Cfg.with_profile profile
  in
  if with_prelude then Cfg.with_standard_prelude cfg else cfg

let make_session ?backend ?cache_dir ?cache_max_bytes ?profile ~global
    ~with_prelude () =
  C.Session.of_config
    (session_config ?backend ?cache_dir ?cache_max_bytes ?profile ~global
       ~with_prelude ())

let get_source file expr =
  match expr with Some s -> ("<expr>", s) | None -> read_input file

let file_pos_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
         ~doc:"Input program file ('-' for stdin).")

(* ---------------------------------------------------------------- *)
(* check                                                             *)

let check_cmd =
  let run file expr global with_prelude backend cache_dir cache_max_bytes
      stats =
    handle ~stats (fun () ->
        let name, src = get_source file expr in
        let s =
          make_session ~backend ?cache_dir ?cache_max_bytes ~global
            ~with_prelude ()
        in
        Fmt.pr "%a@." C.Pretty.pp_ty (C.Session.typecheck ~file:name s src))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Type check an FG program and print its type")
    Term.(const run $ file_pos_arg $ expr_arg $ global_flag
          $ with_prelude_flag $ backend_arg $ cache_dir_arg
          $ cache_max_bytes_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* translate                                                         *)

let translate_cmd =
  let run file expr global with_prelude backend cache_dir cache_max_bytes
      show_type stats =
    handle ~stats (fun () ->
        let name, src = get_source file expr in
        let s =
          make_session ~backend ?cache_dir ?cache_max_bytes ~global
            ~with_prelude ()
        in
        let f = C.Session.translate ~file:name s src in
        (* Off the Dict backend, print the partially evaluated program
           (stencils and hoisted dictionaries on the spine). *)
        let f =
          match C.Backend.specialize_mode (C.Session.backend s) with
          | None -> f
          | Some mode -> fst (F.Specialize.specialize ~mode f)
        in
        Fmt.pr "%a@." F.Pretty.pp_exp f;
        if show_type then
          Fmt.pr "// : %a@." F.Pretty.pp_ty (F.Typecheck.typecheck f))
  in
  let show_type =
    Arg.(value & flag
         & info [ "t"; "type" ] ~doc:"Also print the System F type.")
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:
         "Translate an FG program to System F (dictionary passing, or a \
          specialized backend with $(b,--backend))")
    Term.(
      const run $ file_pos_arg $ expr_arg $ global_flag $ with_prelude_flag
      $ backend_arg $ cache_dir_arg $ cache_max_bytes_arg $ show_type
      $ stats_flag)

(* ---------------------------------------------------------------- *)
(* run                                                               *)

let run_cmd =
  let run file expr global with_prelude backend cache_dir cache_max_bytes
      profile profile_out verbose format stats =
    handle_code ~json:(format = `Json) ~stats (fun () ->
        let name, src = get_source file expr in
        let profile = Option.map Profile.load profile in
        if profile_out <> None then Profile.set_collecting true;
        let s =
          make_session ~backend ?cache_dir ?cache_max_bytes ?profile ~global
            ~with_prelude ()
        in
        (* The recovering pipeline: every independent error in the
           program comes back in one invocation, plus any warnings. *)
        let report = C.Session.run_full ~file:name s src in
        let diags = report.C.Session.diagnostics in
        (match format with
        | `Json -> print_json (C.Jsonview.json_of_run_report ~file:name report)
        | `Text -> (
            List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) diags;
            match report.C.Session.outcome with
            | None -> ()
            | Some out ->
                if verbose then begin
                  Fmt.pr "type        : %a@." C.Pretty.pp_ty out.fg_ty;
                  Fmt.pr "value       : %a@." C.Interp.pp_flat out.value;
                  Fmt.pr "direct steps: %d@." out.direct_steps;
                  Fmt.pr "trans steps : %d@." out.translated_steps;
                  (match out.spec with
                  | None -> ()
                  | Some sp ->
                      Fmt.pr "spec steps  : %d (%s: %d stencils, %d shared, \
                              %d fallbacks)@."
                        sp.C.Session.spec_steps
                        (C.Backend.to_string out.backend)
                        sp.C.Session.spec_stats.F.Specialize.st_stencils
                        sp.C.Session.spec_stats.F.Specialize.st_shared
                        sp.C.Session.spec_stats.F.Specialize.st_fallbacks);
                  Fmt.pr "theorem     : %s@."
                    (if out.theorem_holds then "holds" else "VIOLATED")
                end
                else Fmt.pr "%a@." C.Interp.pp_flat out.value));
        Option.iter
          (fun path -> write_profile_out path ~programs:1 s)
          profile_out;
        match report.C.Session.outcome with Some _ -> 0 | None -> 1)
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Print the type, step counts and theorem status too.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the full pipeline: check, translate, verify the theorem, \
          evaluate both directly and via the translation, and print the \
          (agreeing) value")
    Term.(
      const run $ file_pos_arg $ expr_arg $ global_flag $ with_prelude_flag
      $ backend_arg $ cache_dir_arg $ cache_max_bytes_arg $ profile_arg
      $ profile_out_arg $ verbose $ format_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* elaborate                                                         *)

let elaborate_cmd =
  let run file expr global with_prelude stats =
    handle ~stats (fun () ->
        let name, src = get_source file expr in
        let s = make_session ~global ~with_prelude () in
        let _, elaborated, _ = C.Session.elaborate ~file:name s src in
        Fmt.pr "%a@." C.Pretty.pp_exp elaborated)
  in
  Cmd.v
    (Cmd.info "elaborate"
       ~doc:
         "Print the elaborated FG program (implicit instantiations made \
          explicit, member defaults filled in)")
    Term.(const run $ file_pos_arg $ expr_arg $ global_flag
          $ with_prelude_flag $ stats_flag)

(* ---------------------------------------------------------------- *)
(* verify                                                            *)

let verify_cmd =
  let run file expr global with_prelude format stats =
    handle ~json:(format = `Json) ~stats (fun () ->
        let name, src = get_source file expr in
        let s = make_session ~global ~with_prelude () in
        let report = C.Session.verify ~file:name s src in
        match format with
        | `Json ->
            print_json
              (Json.Obj
                 [ ("file", Json.Str name);
                   ("ok", Json.Bool true);
                   ("fg_type",
                    Json.Str (C.Pretty.ty_to_string report.fg_ty));
                   ("translated_type",
                    Json.Str (F.Pretty.ty_to_string report.expected_f_ty));
                   ("systemf_type",
                    Json.Str (F.Pretty.ty_to_string report.f_ty));
                   ("theorem", Json.Bool true) ])
        | `Text ->
            Fmt.pr "FG type          : %a@." C.Pretty.pp_ty report.fg_ty;
            Fmt.pr "translated type  : %a@." F.Pretty.pp_ty
              report.expected_f_ty;
            Fmt.pr "System F assigns : %a@." F.Pretty.pp_ty report.f_ty;
            Fmt.pr "theorem          : holds@.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check the paper's Theorems 1/2 on this program: the translation \
          type checks in System F at the translated type")
    Term.(const run $ file_pos_arg $ expr_arg $ global_flag
          $ with_prelude_flag $ format_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* batch                                                             *)

let domains_arg =
  let doc = "Number of OCaml domains to verify across (default: the \
             runtime's recommendation)." in
  Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N" ~doc)

let batch_cmd =
  let run files global with_prelude backend cache_dir cache_max_bytes
      profile profile_out domains format stats =
    handle ~json:(format = `Json) ~stats (fun () ->
        let jobs = List.map read_input files in
        let profile = Option.map Profile.load profile in
        if profile_out <> None then Profile.set_collecting true;
        let s =
          make_session ~backend ?cache_dir ?cache_max_bytes ?profile ~global
            ~with_prelude ()
        in
        let results = C.Session.run_batch ?domains s jobs in
        Option.iter
          (fun path ->
            write_profile_out path ~programs:(List.length jobs) s)
          profile_out;
        let failed = ref 0 in
        (match format with
        | `Json ->
            print_json
              (Json.List
                 (List.map
                    (fun (name, r) ->
                      match r with
                      | Ok o -> json_of_outcome ~file:name o
                      | Error d ->
                          incr failed;
                          json_of_failure ~file:name d)
                    results))
        | `Text ->
            List.iter
              (fun (name, r) ->
                match r with
                | Ok (o : C.Session.outcome) ->
                    Fmt.pr "%-40s %a@." name C.Interp.pp_flat o.value
                | Error d ->
                    incr failed;
                    Fmt.pr "%-40s ERROR %a@." name Diag.pp d)
              results;
            Fmt.pr "%d/%d ok@."
              (List.length results - !failed)
              (List.length results));
        if !failed > 0 then
          Diag.error Diag.Eval "%d of %d programs failed" !failed
            (List.length results))
  in
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE"
           ~doc:"Program files to run ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run many FG programs through the full pipeline, fanned out over \
          OCaml domains with a shared session configuration; output order \
          matches the argument order regardless of the domain count")
    Term.(const run $ files $ global_flag $ with_prelude_flag $ backend_arg
          $ cache_dir_arg $ cache_max_bytes_arg $ profile_arg
          $ profile_out_arg $ domains_arg $ format_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* corpus                                                            *)

let corpus_cmd =
  let run name_opt all backend cache_dir cache_max_bytes profile profile_out
      domains format stats =
    handle ~json:(format = `Json) ~stats (fun () ->
        let profile = Option.map Profile.load profile in
        if profile_out <> None then Profile.set_collecting true;
        match (name_opt, all) with
        | None, false ->
            List.iter
              (fun (e : C.Corpus.entry) ->
                Fmt.pr "%-30s %-18s %s@." e.name e.paper e.description)
              C.Corpus.all
        | None, true ->
            (* Run every entry, in parallel; an entry passes when its
               outcome matches its stated expectation. *)
            let s =
              make_session ~backend ?cache_dir ?cache_max_bytes ?profile
                ~global:false ~with_prelude:false ()
            in
            let jobs =
              List.map (fun (e : C.Corpus.entry) -> (e.name, e.source))
                C.Corpus.all
            in
            let results = C.Session.run_batch ?domains s jobs in
            Option.iter
              (fun path ->
                write_profile_out path ~programs:(List.length jobs) s)
              profile_out;
            let failed = ref 0 in
            let verdicts =
              List.map2
                (fun (e : C.Corpus.entry) (name, r) ->
                  let ok =
                    match (e.expected, r) with
                    | C.Corpus.Value expect, Ok (o : C.Session.outcome) ->
                        C.Interp.flat_equal o.value expect
                    | C.Corpus.Fails phase, Error (d : Diag.diagnostic) ->
                        d.phase = phase
                    | C.Corpus.Value _, Error _
                    | C.Corpus.Fails _, Ok _ -> false
                  in
                  if not ok then incr failed;
                  (name, ok, r))
                C.Corpus.all results
            in
            (match format with
            | `Json ->
                print_json
                  (Json.List
                     (List.map
                        (fun (name, ok, r) ->
                          match r with
                          | Ok o ->
                              (match json_of_outcome ~file:name o with
                              | Json.Obj fields ->
                                  Json.Obj
                                    (("expected_ok", Json.Bool ok) :: fields)
                              | j -> j)
                          | Error d ->
                              (match json_of_failure ~file:name d with
                              | Json.Obj fields ->
                                  Json.Obj
                                    (("expected_ok", Json.Bool ok) :: fields)
                              | j -> j))
                        verdicts))
            | `Text ->
                List.iter
                  (fun (name, ok, r) ->
                    let show =
                      match r with
                      | Ok (o : C.Session.outcome) ->
                          C.Interp.flat_to_string o.value
                      | Error (d : Diag.diagnostic) ->
                          "rejected: " ^ Diag.phase_name d.phase
                    in
                    Fmt.pr "%-30s %s %s@." name
                      (if ok then "ok  " else "FAIL")
                      show)
                  verdicts;
                Fmt.pr "%d/%d as expected@."
                  (List.length verdicts - !failed)
                  (List.length verdicts));
            if !failed > 0 then
              Diag.error Diag.Eval "%d corpus entries off expectation"
                !failed
        | Some name, _ -> (
            let e = C.Corpus.find name in
            Fmt.pr "// %s (%s)@.%s@.@." e.description e.paper e.source;
            let s =
              make_session ~backend ?cache_dir ?cache_max_bytes ?profile
                ~global:false ~with_prelude:false ()
            in
            let finish () =
              Option.iter
                (fun path -> write_profile_out path ~programs:1 s)
                profile_out
            in
            match e.expected with
            | C.Corpus.Value expect ->
                let out = C.Session.run ~file:e.name s e.source in
                Fmt.pr "value: %a (expected %a)@." C.Interp.pp_flat out.value
                  C.Interp.pp_flat expect;
                finish ()
            | C.Corpus.Fails phase -> (
                match C.Session.run_result ~file:e.name s e.source with
                | Error d ->
                    Fmt.pr "rejected as expected (%s): %s@."
                      (Diag.phase_name phase)
                      (Diag.to_string d);
                    finish ()
                | Ok _ -> failwith "expected failure but program succeeded")))
  in
  let entry_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"Corpus entry to show and run (omit to list).")
  in
  let all_flag =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Run every corpus entry (in parallel) and check each \
                   against its expectation.")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"List or run the built-in corpus of paper example programs")
    Term.(const run $ entry_arg $ all_flag $ backend_arg $ cache_dir_arg
          $ cache_max_bytes_arg $ profile_arg $ profile_out_arg
          $ domains_arg $ format_arg $ stats_flag)

(* ---------------------------------------------------------------- *)
(* eq: same-type queries                                             *)

let eq_cmd =
  let run assumptions query =
    handle (fun () ->
        let eq =
          List.fold_left
            (fun eq src ->
              match C.Parser.constr_of_string src with
              | C.Ast.CSame (a, b) -> C.Equality.assume eq a b
              | C.Ast.CModel _ ->
                  failwith "assumptions must be same-type constraints (a == b)")
            C.Equality.empty assumptions
        in
        match C.Parser.constr_of_string query with
        | C.Ast.CSame (a, b) ->
            Fmt.pr "%b@." (C.Equality.equal eq a b);
            Fmt.pr "repr lhs: %a@." C.Pretty.pp_ty (C.Equality.repr eq a);
            Fmt.pr "repr rhs: %a@." C.Pretty.pp_ty (C.Equality.repr eq b)
        | C.Ast.CModel _ -> failwith "query must be a same-type constraint")
  in
  let assumptions =
    Arg.(value & opt_all string []
         & info [ "a"; "assume" ] ~docv:"EQ"
             ~doc:"Assumed equality, e.g. 'C<int>.elt == int' (repeatable).")
  in
  let query =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY" ~doc:"Query equality, e.g. 'a == b'.")
  in
  Cmd.v
    (Cmd.info "eq"
       ~doc:
         "Decide a same-type query under assumptions (congruence closure), \
          printing the verdict and both representatives")
    Term.(const run $ assumptions $ query)

(* ---------------------------------------------------------------- *)
(* fuzz                                                              *)

let fuzz_cmd =
  let run seed count size mutants backend domains format save_dir stats guided
      corpus_dir profile profile_out =
    handle_code ~json:(format = `Json) ~stats (fun () ->
        let cfg =
          { C.Fuzz.seed; count; size; mutants;
            backend = C.Backend.of_string_exn backend;
            profile = Option.map Profile.load profile;
            guided = guided || corpus_dir <> None; corpus_dir }
        in
        if profile_out <> None then Profile.set_collecting true;
        let report = C.Fuzz.run ?domains cfg in
        Option.iter
          (fun path ->
            Profile.set_collecting false;
            Profile.save path
              (Profile.collected ~programs:report.C.Fuzz.r_generated
                 ~unit_cache:Profile.cache_zero
                 ~backends:
                   [ (C.Backend.to_string cfg.C.Fuzz.backend,
                      report.C.Fuzz.r_generated) ]
                 ~requests:[] ()))
          profile_out;
        let saved =
          match save_dir with
          | Some dir when report.C.Fuzz.r_failures <> [] ->
              C.Fuzz.save_failures ~dir report
          | _ -> []
        in
        (match format with
        | `Json -> print_json (C.Fuzz.report_to_json report)
        | `Text ->
            Fmt.pr "generated %d programs (seed %d, size %d), %d mutants@."
              report.C.Fuzz.r_generated seed size report.C.Fuzz.r_mutants_run;
            if report.C.Fuzz.r_coverage <> [] then
              Fmt.pr "coverage: %d decision points (%d hits)@."
                (Fg_util.Coverage.distinct report.C.Fuzz.r_coverage)
                (Fg_util.Coverage.total report.C.Fuzz.r_coverage);
            if report.C.Fuzz.r_config.C.Fuzz.guided then
              Fmt.pr
                "corpus: %d entries (%d new, %d candidates mutated from \
                 corpus)@."
                report.C.Fuzz.r_corpus_size report.C.Fuzz.r_corpus_added
                report.C.Fuzz.r_from_corpus;
            List.iter
              (fun (f : C.Fuzz.failure) ->
                Fmt.pr "FAIL #%d [%s] %s@."
                  f.C.Fuzz.f_index
                  (C.Fuzz.oracle_name f.C.Fuzz.f_oracle)
                  f.C.Fuzz.f_message;
                Fmt.pr "  shrunk (%d nodes):@." f.C.Fuzz.f_shrunk_nodes;
                String.split_on_char '\n' f.C.Fuzz.f_shrunk
                |> List.iter (fun l -> Fmt.pr "    %s@." l))
              report.C.Fuzz.r_failures;
            List.iter (fun p -> Fmt.pr "saved %s@." p) saved;
            if report.C.Fuzz.r_failures = [] then Fmt.pr "all oracles ok@."
            else
              Fmt.pr "%d oracle failure(s)@."
                (List.length report.C.Fuzz.r_failures));
        if report.C.Fuzz.r_failures = [] then 0 else 1)
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"Master seed; the whole run is a pure function of it.")
  in
  let count_arg =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let size_arg =
    Arg.(value & opt int 30
         & info [ "size" ] ~docv:"N"
             ~doc:"Size budget per generated program (AST-node scale).")
  in
  let mutants_arg =
    Arg.(value & opt int 2
         & info [ "mutants" ] ~docv:"N"
             ~doc:"Corrupted variants per program for the recovery oracle.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save-failures" ] ~docv:"DIR"
             ~doc:"Write each failure's shrunk counterexample (original \
                   attached in comments) under $(docv).")
  in
  let guided_flag =
    Arg.(value & flag
         & info [ "guided" ]
             ~doc:"Coverage-guided mode: mutate from a corpus of \
                   coverage-adding inputs instead of generating blindly, \
                   and report the decision-point coverage map.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus-dir" ] ~docv:"DIR"
             ~doc:"On-disk corpus of minimized coverage-adding inputs; \
                   entries found there seed mutation and new ones are \
                   written back. Implies $(b,--guided).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random well-typed FG programs and check them against \
          three differential oracles: theorem/semantic agreement, \
          pretty-print/parse round-trip, and error recovery on corrupted \
          variants; failures are shrunk before reporting")
    Term.(const run $ seed_arg $ count_arg $ size_arg $ mutants_arg
          $ backend_arg $ domains_arg $ format_arg $ save_arg $ stats_flag
          $ guided_flag $ corpus_arg $ profile_arg $ profile_out_arg)

(* ---------------------------------------------------------------- *)
(* serve: the compiler-service daemon                                 *)

module Server = Fg_server.Server
module Client = Fg_server.Client
module Protocol = Fg_server.Protocol

let socket_arg =
  let doc = "Unix socket path to listen on / connect to (ignored when \
             $(b,--port) is given)." in
  Arg.(value & opt string "fgc.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "TCP port to listen on / connect to instead of a Unix \
             socket (0 lets the OS pick when serving)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Host for $(b,--port)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let address_of ~socket ~port ~host =
  match port with Some p -> `Tcp (host, p) | None -> `Unix socket

(* A peer spec is "unix:PATH" or "HOST:PORT"; the spec string itself is
   the peer's ring name, so every farm member that lists the same specs
   agrees on key placement. *)
let parse_peer spec : string * Protocol.address =
  let bad () =
    Diag.config_error ~code:"FG1002"
      "bad --cache-peer %S (want unix:PATH or HOST:PORT)" spec
  in
  match String.index_opt spec ':' with
  | None -> bad ()
  | Some i when String.sub spec 0 i = "unix" ->
      let path = String.sub spec 5 (String.length spec - 5) in
      if path = "" then bad () else (spec, `Unix path)
  | Some _ -> (
      let i = String.rindex spec ':' in
      let host = String.sub spec 0 i in
      match int_of_string_opt (String.sub spec (i + 1)
                                 (String.length spec - i - 1)) with
      | Some port when host <> "" && port > 0 && port < 65536 ->
          (spec, `Tcp (host, port))
      | _ -> bad ())

let serve_cmd =
  let run socket port host workers max_queue timeout_ms max_frame fuel
      backend cache_dir cache_max_bytes cache_peers profile profile_out
      verbose =
    handle_code (fun () ->
        let address = address_of ~socket ~port ~host in
        let base = Server.default_config address in
        let cfg =
          {
            base with
            Server.workers =
              (match workers with Some w -> w | None -> base.Server.workers);
            max_queue;
            request_timeout_ms = timeout_ms;
            max_frame;
            fuel = (if fuel = 0 then None else Some fuel);
            default_backend = C.Backend.of_string_exn backend;
            cache_dir;
            cache_max_bytes;
            cache_peers = List.map parse_peer cache_peers;
            profile = Option.map Profile.load profile;
            profile_out;
            log = verbose;
          }
        in
        let t = Server.create cfg in
        (match Server.bound_address t with
        | `Unix path -> Fmt.epr "fgc serve: listening on %s@." path
        | `Tcp (h, p) -> Fmt.epr "fgc serve: listening on %s:%d@." h p);
        (* Signal handlers only flip an atomic (no locks): the accept
           loop notices and drains gracefully. *)
        let stop _ = Server.signal_stop t in
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
         with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
         with Invalid_argument _ -> ());
        Server.run t;
        0)
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains, each owning warm sessions (default: \
                   the runtime's recommendation).")
  in
  let max_queue =
    Arg.(value & opt int 128
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Bounded request-queue capacity; a full queue answers \
                   $(b,overload) instead of buffering.")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "request-timeout-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline (queue wait + service); \
                   expired requests get a structured $(b,timeout) \
                   response.  Requests may override with their own \
                   $(b,timeout_ms).")
  in
  let max_frame =
    Arg.(value & opt int Protocol.default_max_frame
         & info [ "max-frame-bytes" ] ~docv:"N"
             ~doc:"Largest accepted wire frame; bigger length prefixes \
                   are rejected without allocating.")
  in
  let fuel =
    Arg.(value & opt int 10_000_000
         & info [ "fuel" ] ~docv:"STEPS"
             ~doc:"Evaluator step bound per served run (0 = unbounded), \
                   so divergent programs cannot pin a worker.")
  in
  let cache_peers =
    Arg.(value & opt_all string []
         & info [ "cache-peer" ] ~docv:"ADDR"
             ~doc:"Another daemon whose unit store backs this one's \
                   cache: $(b,unix:PATH) or $(b,HOST:PORT), repeatable.  \
                   Workers consult peers on a local miss and populate \
                   them on fresh checks; a peer that stops answering \
                   degrades silently to local compilation.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ] ~doc:"Log lifecycle events on stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the compiler as a persistent daemon: a bounded request \
          queue fans out to worker domains with cached preludes; the \
          length-prefixed JSON protocol serves check/run/translate/\
          fuzz_one/stats/shutdown — plus cache_get/cache_put for the \
          peer cache tier — with deadlines, backpressure and \
          graceful drain (see docs/SERVER.md)")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ workers $ max_queue
          $ timeout_ms $ max_frame $ fuel $ backend_arg $ cache_dir_arg
          $ cache_max_bytes_arg $ cache_peers $ profile_arg
          $ profile_out_arg $ verbose)

(* ---------------------------------------------------------------- *)
(* client                                                            *)

let exit_of_status = function
  | Protocol.Ok_ -> 0
  | Protocol.Failed -> 1
  | Protocol.Protocol_error -> 3
  | Protocol.Timeout -> 4
  | Protocol.Overload -> 5
  | Protocol.Shutting_down -> 6

(* Expand directories into their .fg files (sorted), pass files through. *)
let expand_paths paths =
  List.concat_map
    (fun p ->
      if Sys.is_directory p then
        Sys.readdir p |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".fg")
        |> List.sort String.compare
        |> List.map (Filename.concat p)
      else [ p ])
    paths

let contains needle s = Fg_util.Strutil.contains ~needle s

(* The probe: deliberately violate the protocol three ways and check
   the daemon answers each violation correctly and stays up. *)
let run_probe address =
  let expect_status name (r : Protocol.response) status needle =
    if r.Protocol.r_status <> status then
      failwith
        (Printf.sprintf "%s: expected status %s, got %s" name
           (Protocol.status_name status)
           (Protocol.status_name r.Protocol.r_status));
    if not (contains needle r.Protocol.r_payload) then
      failwith
        (Printf.sprintf "%s: payload lacks %s: %s" name needle
           r.Protocol.r_payload)
  in
  (* 1. Valid frame, garbage JSON: connection survives. *)
  let c = Client.connect address in
  Client.send_raw_frame c "this is not json {";
  expect_status "garbage-json" (Client.read_response c)
    Protocol.Protocol_error "FG0803";
  (* ... and the same connection still serves real work. *)
  let r =
    Client.request c
      (Protocol.request ~id:7 ~file:"<probe>" ~source:"1 + 1" Protocol.Run)
  in
  expect_status "post-garbage-run" r Protocol.Ok_ "\"value\": 2";
  Client.close c;
  (* 2. Version mismatch. *)
  let c = Client.connect address in
  Client.send_raw_frame c "{\"v\": 999, \"id\": 1, \"kind\": \"run\"}";
  expect_status "version-mismatch" (Client.read_response c)
    Protocol.Protocol_error "FG0804";
  Client.close c;
  (* 3. Oversized length prefix: bounded-allocation reject + close. *)
  let c = Client.connect address in
  Client.send_raw_bytes c "\xFF\xFF\xFF\xFF";
  expect_status "oversized-frame" (Client.read_response c)
    Protocol.Protocol_error "FG0806";
  (match Client.read_response c with
  | exception Client.Client_error _ -> ()
  | _ -> failwith "oversized-frame: expected the server to close");
  Client.close c;
  Fmt.pr "probe ok: garbage JSON, version mismatch and oversized frame \
          all answered correctly@."

(* Human-readable rendering of the stats payload (behind --pretty; the
   default stays the raw JSON that scripts and CI grep).  Generic over
   the payload shape: scalars print as one line, flat objects as one
   key=value line, nested objects (requests, workspace) as a block —
   so new stats sections show up without touching this printer. *)
let print_stats_pretty payload =
  match Json.of_string payload with
  | Error _ -> print_endline payload
  | Ok (Json.Obj fields) ->
      let scalar = function
        | Json.Obj _ | Json.List _ -> None
        | Json.Float f -> Some (Fmt.str "%.3f" f)
        | v -> Some (Json.to_string v)
      in
      let flat kvs =
        String.concat " "
          (List.filter_map
             (fun (k, v) -> Option.map (fun s -> k ^ "=" ^ s) (scalar v))
             kvs)
      in
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Obj kvs
            when List.exists
                   (fun (_, v) -> match v with Json.Obj _ -> true | _ -> false)
                   kvs ->
              Fmt.pr "%s:@." k;
              List.iter
                (fun (k2, v2) ->
                  match v2 with
                  | Json.Obj kvs2 -> Fmt.pr "  %-14s %s@." k2 (flat kvs2)
                  | v2 -> Fmt.pr "  %-14s %s@." k2 (Json.to_string v2))
                kvs
          | Json.Obj kvs -> Fmt.pr "%s: %s@." k (flat kvs)
          | v -> Fmt.pr "%s: %s@." k (Json.to_string v))
        fields
  | Ok _ -> print_endline payload

let client_cmd =
  let run action files expr socket port host prelude global backend profile
      timeout_ms window seed count size mutants corpus_dir doc_version
      offset at del insert pretty =
    handle_code (fun () ->
        let address = address_of ~socket ~port ~host in
        let backend = C.Backend.of_string_exn backend in
        let profile = Option.map Profile.load profile in
        let kind_of = function
          | "run" -> Protocol.Run
          | "check" -> Protocol.Check
          | "translate" -> Protocol.Translate
          | a -> failwith ("unknown client action: " ^ a)
        in
        match action with
        | "stats" | "shutdown" ->
            let c = Client.connect address in
            Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
                let r =
                  if action = "stats" then Client.stats c
                  else Client.shutdown c
                in
                if action = "stats" && pretty then
                  print_stats_pretty r.Protocol.r_payload
                else print_endline r.Protocol.r_payload;
                exit_of_status r.Protocol.r_status)
        | "open" | "edit" | "close" | "diag" | "hover" | "def" | "complete"
          ->
            let file =
              match files with
              | [ f ] -> f
              | _ -> failwith (action ^ ": give exactly one FILE")
            in
            let c = Client.connect address in
            Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
                let r =
                  match action with
                  | "open" ->
                      let name, source = read_input file in
                      Client.doc_open c ~version:doc_version ~prelude
                        ~global_models:global ~backend ~name source
                  | "edit" -> (
                      match at with
                      | Some off ->
                          Client.doc_change c ~version:doc_version
                            ~name:file
                            (`Edits [ (off, del, insert) ])
                      | None ->
                          let name, source = read_input file in
                          Client.doc_change c ~version:doc_version ~name
                            (`Text source))
                  | "close" -> Client.doc_close c ~name:file
                  | "diag" -> Client.doc_diagnostics c ~name:file
                  | "hover" -> Client.hover c ~name:file ~offset
                  | "def" -> Client.definition c ~name:file ~offset
                  | _ -> Client.completion c ~name:file ~offset
                in
                print_endline r.Protocol.r_payload;
                exit_of_status r.Protocol.r_status)
        | "probe" ->
            run_probe address;
            0
        | "fuzz-worker" ->
            (* One round of a distributed guided soak: fuzz locally
               against the corpus dir, then merge coverage and corpus
               with the daemon and adopt whatever the fleet has that
               this worker lacks. *)
            let dir =
              match corpus_dir with
              | Some d -> d
              | None -> failwith "fuzz-worker: --corpus-dir is required"
            in
            let cfg =
              { C.Fuzz.seed; count; size; mutants; backend;
                profile = None; guided = true; corpus_dir = Some dir }
            in
            let report = C.Fuzz.run cfg in
            let have = List.map fst (C.Fuzz.corpus_load ~dir) in
            let c = Client.connect address in
            Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
                match
                  Client.fuzz_batch c ~coverage:report.C.Fuzz.r_coverage
                    ~corpus_entries:report.C.Fuzz.r_corpus_entries ~have
                with
                | None ->
                    failwith
                      "fuzz-worker: daemon rejected the fuzz_batch \
                       (pre-v4 server?)"
                | Some sync ->
                    List.iter
                      (fun (d, s) ->
                        C.Fuzz.corpus_write ~dir ~digest:d s)
                      sync.Client.fs_corpus;
                    Fmt.pr
                      "fuzz-worker: %d decision points local, %d fleet; \
                       offered %d corpus entries, adopted %d (fleet \
                       corpus %d over %d batches)@."
                      (Fg_util.Coverage.distinct report.C.Fuzz.r_coverage)
                      (Fg_util.Coverage.distinct sync.Client.fs_coverage)
                      (List.length report.C.Fuzz.r_corpus_entries)
                      (List.length sync.Client.fs_corpus)
                      sync.Client.fs_corpus_size sync.Client.fs_batches;
                    if report.C.Fuzz.r_failures = [] then 0 else 1)
        | "batch" ->
            let files = expand_paths files in
            if files = [] then failwith "batch: no .fg files to run";
            let reqs =
              List.mapi
                (fun i f ->
                  let name, source = read_input f in
                  Protocol.request ~id:(i + 1) ~file:name ~source ~prelude
                    ~global_models:global ~backend ?timeout_ms ?profile
                    Protocol.Run)
                files
            in
            let c = Client.connect address in
            Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
                let resps = Client.batch ~window c reqs in
                let worst = ref 0 in
                List.iter
                  (fun (r : Protocol.response) ->
                    print_endline r.Protocol.r_payload;
                    worst := max !worst (exit_of_status r.Protocol.r_status))
                  resps;
                !worst)
        | action ->
            let kind = kind_of action in
            let name, source =
              match (expr, files) with
              | Some s, _ -> ("<expr>", s)
              | None, [ f ] -> read_input f
              | None, [] -> read_input "-"
              | None, _ -> failwith (action ^ ": give exactly one FILE")
            in
            let c = Client.connect address in
            Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
                let r =
                  Client.request c
                    (Protocol.request ~id:1 ~file:name ~source ~prelude
                       ~global_models:global ~backend ?timeout_ms ?profile
                       kind)
                in
                print_endline r.Protocol.r_payload;
                exit_of_status r.Protocol.r_status))
  in
  let action =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ACTION"
             ~doc:"One of $(b,run), $(b,check), $(b,translate), \
                   $(b,batch), $(b,stats), $(b,shutdown), $(b,probe), \
                   $(b,fuzz-worker), or the workspace actions \
                   $(b,open), $(b,edit), $(b,close), $(b,diag), \
                   $(b,hover), $(b,def), $(b,complete) (FILE doubles \
                   as the document name).")
  in
  let files =
    Arg.(value & pos_right 0 string []
         & info [] ~docv:"FILE"
             ~doc:"Program files ('-' for stdin); $(b,batch) also \
                   accepts directories, expanded to their .fg files.")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline override sent to the server.")
  in
  let window =
    Arg.(value & opt int Client.default_window
         & info [ "window" ] ~docv:"N"
             ~doc:"Batch pipelining window (requests in flight at once).")
  in
  let w_seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"$(b,fuzz-worker): master seed of the local run.")
  in
  let w_count =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"N"
             ~doc:"$(b,fuzz-worker): programs per round.")
  in
  let w_size =
    Arg.(value & opt int 30
         & info [ "size" ] ~docv:"N"
             ~doc:"$(b,fuzz-worker): size budget per program.")
  in
  let w_mutants =
    Arg.(value & opt int 0
         & info [ "mutants" ] ~docv:"N"
             ~doc:"$(b,fuzz-worker): recovery-oracle mutants per program.")
  in
  let w_corpus =
    Arg.(value & opt (some string) None
         & info [ "corpus-dir" ] ~docv:"DIR"
             ~doc:"$(b,fuzz-worker): this worker's on-disk corpus, \
                   synced with the fleet through the daemon.")
  in
  let doc_version =
    Arg.(value & opt int 1
         & info [ "doc-version" ] ~docv:"N"
             ~doc:"$(b,open)/$(b,edit): the document version (edits \
                   must carry a strictly increasing version).")
  in
  let offset =
    Arg.(value & opt int 0
         & info [ "offset" ] ~docv:"N"
             ~doc:"$(b,hover)/$(b,def)/$(b,complete): byte offset in \
                   the document.")
  in
  let at =
    Arg.(value & opt (some int) None
         & info [ "at" ] ~docv:"N"
             ~doc:"$(b,edit): splice position (byte offset).  Without \
                   $(b,--at), the file's current contents are sent as \
                   the full new text.")
  in
  let del =
    Arg.(value & opt int 0
         & info [ "del" ] ~docv:"N"
             ~doc:"$(b,edit): bytes to delete at $(b,--at).")
  in
  let insert =
    Arg.(value & opt string ""
         & info [ "insert" ] ~docv:"TEXT"
             ~doc:"$(b,edit): text to insert at $(b,--at).")
  in
  let pretty =
    Arg.(value & flag
         & info [ "pretty" ]
             ~doc:"$(b,stats): render the payload as human-readable \
                   sections instead of raw JSON.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running $(b,fgc serve) daemon: single requests, \
          streamed batches over one connection, live stats, graceful \
          shutdown, a protocol-violation probe, and a $(b,fuzz-worker) \
          round that merges guided-fuzzing coverage and corpus with the \
          fleet.  Payloads printed for $(b,run) are byte-identical to \
          one-shot $(b,fgc run --format=json) output")
    Term.(const run $ action $ files $ expr_arg $ socket_arg $ port_arg
          $ host_arg $ with_prelude_flag $ global_flag $ backend_arg
          $ profile_arg $ timeout_ms $ window $ w_seed $ w_count $ w_size
          $ w_mutants $ w_corpus $ doc_version $ offset $ at $ del $ insert
          $ pretty)

(* ---------------------------------------------------------------- *)
(* profile: inspect and combine recorded workload profiles            *)

let profile_cmd =
  let run action files out =
    handle_code (fun () ->
        match action with
        | "merge" ->
            (* Fleet merge: counts sum pointwise, capacity by max; the
               output is canonical, so merging in any order produces
               the same bytes. *)
            let merged =
              List.fold_left
                (fun acc f -> Profile.merge acc (Profile.load f))
                Profile.empty files
            in
            (match out with
            | Some path -> Profile.save path merged
            | None -> print_string (Profile.to_string merged));
            0
        | "show" ->
            (* Round-trip through the codec: a canonical re-rendering
               of each file, and an FG1003 diagnostic for bad ones. *)
            List.iter
              (fun f -> print_string (Profile.to_string (Profile.load f)))
              files;
            0
        | a -> failwith ("unknown profile action: " ^ a))
  in
  let action =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ACTION"
             ~doc:"$(b,merge) (sum many profiles into one) or $(b,show) \
                   (re-render canonically).")
  in
  let files =
    Arg.(value & pos_right 0 string []
         & info [] ~docv:"FILE" ~doc:"Profile files (canonical JSON).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the result here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Work with recorded workload profiles: merge per-worker or \
          per-fleet profiles into one (counts sum, byte-stable output) \
          or re-render one canonically")
    Term.(const run $ action $ files $ out)

(* ---------------------------------------------------------------- *)
(* repl                                                              *)

let repl_cmd =
  let run () = handle (fun () -> Repl.main ()) in
  Cmd.v
    (Cmd.info "repl"
       ~doc:
         "Interactive session: declarations accumulate, expressions run \
          through the full pipeline")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- *)

let () =
  let doc =
    "System FG: concepts, models, where clauses, associated types and \
     same-type constraints (PLDI 2005 reproduction)"
  in
  let info = Cmd.info "fgc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd; translate_cmd; run_cmd; verify_cmd; elaborate_cmd;
            batch_cmd; corpus_cmd; fuzz_cmd; eq_cmd; serve_cmd; client_cmd;
            profile_cmd; repl_cmd;
          ]))
