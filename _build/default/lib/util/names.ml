(** String maps/sets and small name utilities used across the pipeline. *)

module Smap = Map.Make (String)
module Sset = Set.Make (String)

(** [distinct xs] is true when no string occurs twice — the side
    condition written [distinct t] in the paper's typing rules. *)
let distinct xs =
  let rec go seen = function
    | [] -> true
    | x :: rest -> (not (Sset.mem x seen)) && go (Sset.add x seen) rest
  in
  go Sset.empty xs

(** First duplicate in [xs], if any (for error messages). *)
let find_duplicate xs =
  let rec go seen = function
    | [] -> None
    | x :: rest -> if Sset.mem x seen then Some x else go (Sset.add x seen) rest
  in
  go Sset.empty xs

(** Strip a [_N] gensym suffix: ["Monoid_18"] -> ["Monoid"].  Used by
    pretty printers when rendering translated code compactly. *)
let base_name s =
  match String.rindex_opt s '_' with
  | None -> s
  | Some i ->
      let suffix = String.sub s (i + 1) (String.length s - i - 1) in
      if suffix <> "" && String.for_all (fun c -> c >= '0' && c <= '9') suffix
      then String.sub s 0 i
      else s

let is_lower_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true | _ -> false)
       s

let is_upper_ident s =
  String.length s > 0
  && (match s.[0] with 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true | _ -> false)
       s
