(* Tests for the synthetic scaling families used by the benchmarks:
   each family must produce well-typed programs at several sizes, with
   the documented values, so the benchmark numbers measure real work. *)

open Fg_core

let check_family name family sizes expected_of =
  List.iter
    (fun n ->
      let src = family n in
      match Pipeline.run_result ~file:(Printf.sprintf "%s/%d" name n) src with
      | Ok out ->
          Alcotest.(check string)
            (Printf.sprintf "%s n=%d" name n)
            (expected_of n)
            (Interp.flat_to_string out.value)
      | Error d ->
          Alcotest.failf "%s n=%d: %s" name n (Fg_util.Diag.to_string d))
    sizes

let test_refinement_chain () =
  check_family "refinement_chain" Genprog.refinement_chain [ 1; 2; 5; 10; 20 ]
    (fun _ -> "42")

let test_refinement_diamond () =
  check_family "refinement_diamond" Genprog.refinement_diamond [ 1; 2; 4; 6 ]
    (fun _ -> "1")

let test_many_models () =
  check_family "many_models" Genprog.many_models [ 1; 10; 50 ] (fun _ -> "0")

let test_wide_where () =
  check_family "wide_where" Genprog.wide_where [ 1; 5; 20 ] (fun n ->
      string_of_int (n * (n - 1) / 2))

let test_same_type_chain () =
  check_family "same_type_chain" Genprog.same_type_chain [ 2; 10; 40 ]
    (fun _ -> "8")

let test_assoc_chain () =
  check_family "assoc_chain" Genprog.assoc_chain [ 1; 4; 10 ] (fun _ -> "1")

let test_let_chain () =
  check_family "let_chain" Genprog.let_chain [ 1; 5; 25 ] (fun n ->
      (* sum of 2i for i in 0..n-1 *)
      string_of_int (n * (n - 1)))

let test_workloads_agree () =
  (* the three accumulate workloads (FG, System F higher-order,
     monomorphic F) compute the same sum *)
  let n = 25 in
  let expected = string_of_int (n * (n - 1) / 2) in
  let fg = Pipeline.run (Genprog.accumulate_workload n) in
  Alcotest.(check string) "FG workload" expected
    (Interp.flat_to_string fg.value);
  let f_ho =
    Fg_systemf.Eval.run_value
      (Fg_systemf.Parser.exp_of_string (Genprog.accumulate_workload_systemf n))
  in
  Alcotest.(check string) "F higher-order workload" expected
    (Fg_systemf.Eval.value_to_string f_ho);
  let f_mono =
    Fg_systemf.Eval.run_value
      (Fg_systemf.Parser.exp_of_string (Genprog.accumulate_workload_mono n))
  in
  Alcotest.(check string) "F monomorphic workload" expected
    (Fg_systemf.Eval.value_to_string f_mono)

let test_dict_depth_in_translation () =
  (* the refinement chain really produces deeply nested dictionary
     projections: depth n means an n-step nth chain somewhere *)
  let f = Check.translate (Parser.exp_of_string (Genprog.refinement_chain 6)) in
  let s = Fg_systemf.Pretty.exp_to_flat_string f in
  (* path of five 0-projections to reach C0's dictionary from C5's *)
  Alcotest.(check bool) "deep projection chain" true
    (Astring_contains.contains
       ~needle:"nth (nth (nth (nth (nth" s)

let suite =
  [
    Alcotest.test_case "refinement chain" `Quick test_refinement_chain;
    Alcotest.test_case "refinement diamond" `Quick test_refinement_diamond;
    Alcotest.test_case "many models" `Quick test_many_models;
    Alcotest.test_case "wide where" `Quick test_wide_where;
    Alcotest.test_case "same-type chain" `Quick test_same_type_chain;
    Alcotest.test_case "assoc chain" `Quick test_assoc_chain;
    Alcotest.test_case "let chain" `Quick test_let_chain;
    Alcotest.test_case "workloads agree" `Quick test_workloads_agree;
    Alcotest.test_case "dictionary depth visible" `Quick
      test_dict_depth_in_translation;
  ]
