test/test_genprog.ml: Alcotest Astring_contains Check Fg_core Fg_systemf Fg_util Genprog Interp List Parser Pipeline Printf
