test/test_graph.ml: Alcotest Fg_core Fg_util Graph_lib Interp List Pipeline Printf QCheck QCheck_alcotest
