test/test_implicit.ml: Alcotest Astring_contains Check Fg_core Fg_util Interp Parser Pipeline Prelude Pretty Printf
