(** SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state
    advanced by a per-stream odd increment (the "gamma"), hashed through
    a finalizer to produce each output.  Splitting derives the child's
    state and gamma from two outputs of the parent, which is what makes
    the streams independent without any shared mutable state. *)

type t = { seed : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* MurmurHash3's 64-bit finalizer (variant 13). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gamma values must be odd; weak gammas (too few bit transitions) are
   patched as in the reference implementation. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  let popcount64 x =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr c
    done;
    !c
  in
  let transitions = popcount64 (Int64.logxor z (Int64.shift_right_logical z 1)) in
  if transitions < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let make seed = { seed = mix64 (Int64.of_int seed); gamma = golden_gamma }

let next t =
  let seed = Int64.add t.seed t.gamma in
  ({ t with seed }, mix64 seed)

let bits t =
  let t, v = next t in
  (v, t)

let split t =
  let t, s = next t in
  let t, g = next t in
  (t, { seed = mix64 s; gamma = mix_gamma g })

let split_nth t i =
  if i < 0 then invalid_arg "Prng.split_nth";
  (* Derive the i-th sibling directly: hash the parent state with the
     index instead of iterating [split] i times. *)
  let s = Int64.add t.seed (Int64.mul t.gamma (Int64.of_int (2 * (i + 1)))) in
  { seed = mix64 s; gamma = mix_gamma (mix64 (Int64.logxor s t.gamma)) }

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  let t, v = next t in
  (* Masked modulo is biased for n not a power of two; the bias is
     < 2^-50 for the small bounds the fuzzer uses, and determinism
     matters more than perfect uniformity here. *)
  (* Keep 62 bits so the value fits OCaml's native int non-negatively. *)
  let v = Int64.to_int (Int64.shift_right_logical v 2) in
  (v mod n, t)

let in_range t lo hi =
  if lo > hi then invalid_arg "Prng.in_range";
  let v, t = int t (hi - lo + 1) in
  (lo + v, t)

let bool t =
  let t, v = next t in
  (Int64.logand v 1L = 1L, t)

let chance t p =
  let v, t = int t 1_000_000 in
  (float_of_int v < p *. 1e6, t)

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | xs ->
      let i, t = int t (List.length xs) in
      (List.nth xs i, t)

let weighted t xs =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 xs in
  if total <= 0 then invalid_arg "Prng.weighted: no positive weight";
  let roll, t = int t total in
  let rec pick roll = function
    | [] -> invalid_arg "Prng.weighted"
    | (w, x) :: rest ->
        let w = max 0 w in
        if roll < w then x else pick (roll - w) rest
  in
  (pick roll xs, t)

let shuffle t xs =
  let a = Array.of_list xs in
  let t = ref t in
  for i = Array.length a - 1 downto 1 do
    let j, t' = int !t (i + 1) in
    t := t';
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  (Array.to_list a, !t)
