(* Tests for the System F substrate: parser round-trips, the type
   checker (positive and negative), and the evaluator. *)

open Fg_systemf
module A = Ast

let parse = Parser.exp_of_string
let parse_ty = Parser.ty_of_string

let check_ty src expected =
  let t = Typecheck.typecheck (parse src) in
  Alcotest.(check string) src expected (Pretty.ty_to_string t)

let check_fails src fragment =
  match Fg_util.Diag.protect (fun () -> Typecheck.typecheck (parse src)) with
  | Ok t ->
      Alcotest.failf "%s: expected type error, got %s" src
        (Pretty.ty_to_string t)
  | Error d ->
      if
        fragment <> ""
        && not
             (Astring_contains.contains ~needle:fragment d.message)
      then Alcotest.failf "%s: wrong error: %s" src d.message

and check_value src expected =
  let v = Eval.run_value (parse src) in
  Alcotest.(check string) src expected (Eval.value_to_string v)

(* ---------------------------------------------------------------- *)
(* Parser                                                            *)

let test_parse_atoms () =
  List.iter
    (fun (src, rendered) ->
      let e = parse src in
      Alcotest.(check string) src rendered (Pretty.exp_to_flat_string e))
    [
      ("42", "42");
      ("true", "true");
      ("()", "()");
      ("x", "x");
      ("(1, 2, 3)", "(1, 2, 3)");
      ("tuple(1)", "tuple(1)");
      ("tuple()", "tuple()");
      ("nth (1, 2) 0", "nth (1, 2) 0");
      ("f(x)(y)", "f(x)(y)");
      ("f[int]", "f[int]");
      ("f[int, bool](1)", "f[int, bool](1)");
    ]

let test_parse_operators () =
  (* operators are sugar for primitive applications *)
  List.iter
    (fun (src, rendered) ->
      Alcotest.(check string) src rendered (Pretty.exp_to_flat_string (parse src)))
    [
      ("1 + 2", "iadd(1, 2)");
      ("1 + 2 * 3", "iadd(1, imult(2, 3))");
      ("(1 + 2) * 3", "imult(iadd(1, 2), 3)");
      ("1 - 2 - 3", "isub(isub(1, 2), 3)");
      ("1 < 2", "ilt(1, 2)");
      ("1 <= 2 && true", "band(ile(1, 2), true)");
      ("true || false && true", "bor(true, band(false, true))");
      ("-x", "ineg(x)");
      ("!true", "bnot(true)");
      ("not true", "bnot(true)");
      ("1 == 2", "ieq(1, 2)");
      ("1 != 2", "ineq(1, 2)");
      ("4 / 2 % 3", "imod(idiv(4, 2), 3)");
    ]

let test_parse_types () =
  List.iter
    (fun (src, rendered) ->
      Alcotest.(check string) src rendered
        (Fg_util.Pp_util.to_flat_string Pretty.pp_ty (parse_ty src)))
    [
      ("int", "int");
      ("list int", "list int");
      ("list (list int)", "list (list int)");
      ("fn(int, bool) -> int", "fn(int, bool) -> int");
      ("fn() -> int", "fn() -> int");
      ("int * bool", "int * bool");
      ("int * bool * unit", "int * bool * unit");
      ("tuple(int)", "tuple(int)");
      ("tuple()", "tuple()");
      ("forall a. fn(a) -> a", "forall a. fn(a) -> a");
      ("forall a b. fn(a) -> b", "forall a b. fn(a) -> b");
      ("fn(fn(int) -> bool) -> int", "fn(fn(int) -> bool) -> int");
      ("(int * bool) * unit", "(int * bool) * unit");
      ("list int * bool", "list int * bool");
    ]

let test_parse_errors () =
  List.iter
    (fun src ->
      match Fg_util.Diag.protect (fun () -> parse src) with
      | Ok _ -> Alcotest.failf "%s: expected parse error" src
      | Error d ->
          Alcotest.(check bool) "phase" true
            (d.phase = Fg_util.Diag.Parser || d.phase = Fg_util.Diag.Lexer))
    [ "let x = in x"; "fun (x) => x"; "1 +"; "("; "f(x"; "nth x"; "§" ]

let test_comments () =
  check_value "1 + // line comment\n 2" "3";
  check_value "/* block /* nested */ comment */ 7" "7"

let test_roundtrip_corpus () =
  (* pretty-printed output reparses to the same AST *)
  List.iter
    (fun src ->
      let e = parse src in
      let e2 = parse (Pretty.exp_to_string e) in
      Alcotest.(check bool) src true (A.exp_equal e e2))
    [
      "let f = fun (x : int, y : bool) => if y then x else -x in f(3, true)";
      "tfun a b => fun (x : a, y : b) => (x, y)";
      "fix (go : fn(int) -> int) => fun (n : int) => if n == 0 then 0 else go(n - 1)";
      "tuple(tuple())";
      "nth (1, (2, 3)) 1";
      "cons[int](1, nil[int])";
    ]

(* ---------------------------------------------------------------- *)
(* Type checker                                                      *)

let test_typecheck_basics () =
  check_ty "42" "int";
  check_ty "true" "bool";
  check_ty "()" "unit";
  check_ty "(1, true)" "int * bool";
  check_ty "fun (x : int) => x" "fn(int) -> int";
  check_ty "tfun a => fun (x : a) => x" "forall a. fn(a) -> a";
  check_ty "(tfun a => fun (x : a) => x)[bool]" "fn(bool) -> bool";
  check_ty "let x = 1 in x + x" "int";
  check_ty "nth (1, true) 1" "bool";
  check_ty "if true then 1 else 2" "int";
  check_ty "fix (f : fn(int) -> int) => fun (x : int) => f(x)"
    "fn(int) -> int";
  check_ty "nil[int]" "list int";
  check_ty "cons[int](1, nil[int])" "list int";
  check_ty "car[int]" "fn(list int) -> int"

let test_typecheck_polymorphism () =
  check_ty "tfun a b => fun (x : a, y : b) => (y, x)"
    "forall a b. fn(a, b) -> b * a";
  check_ty "(tfun a b => fun (x : a, y : b) => (y, x))[int, bool]"
    "fn(int, bool) -> bool * int";
  (* nested type abstraction and shadowing-free instantiation *)
  check_ty "tfun a => tfun b => fun (x : a) => x"
    "forall a. forall b. fn(a) -> a";
  (* substitution must reach under binders without capture *)
  check_ty "tfun a => (tfun b => fun (x : b, y : a) => x)[list a]"
    "forall a. fn(list a, a) -> list a"

let test_typecheck_errors () =
  check_fails "x" "unbound variable";
  check_fails "1(2)" "non-function";
  check_fails "(fun (x : int) => x)(true)" "expected int";
  check_fails "(fun (x : int) => x)(1, 2)" "1 argument";
  check_fails "if 1 then 2 else 3" "if condition";
  check_fails "if true then 1 else false" "else branch";
  check_fails "nth (1, 2) 5" "out of bounds";
  check_fails "nth 3 0" "non-tuple";
  check_fails "(fun (x : int) => x)[int]" "non-polymorphic";
  check_fails "(tfun a => fun (x : a) => x)[int, bool]" "type argument";
  check_fails "fun (x : t) => x" "unbound type variable";
  check_fails "fix (x : int) => true" "fix body";
  check_fails "tfun a a => 1" "duplicate type parameter";
  check_fails "unknown_prim_xyz" "unbound variable"

let test_alpha_equal () =
  let t1 = parse_ty "forall a. fn(a) -> a" in
  let t2 = parse_ty "forall b. fn(b) -> b" in
  let t3 = parse_ty "forall a b. fn(a) -> b" in
  let t4 = parse_ty "forall b a. fn(a) -> b" in
  Alcotest.(check bool) "alpha equal" true (A.alpha_equal t1 t2);
  Alcotest.(check bool) "binder order matters" false (A.alpha_equal t3 t4);
  Alcotest.(check bool) "free vars by name" true
    (A.alpha_equal (A.TVar "x") (A.TVar "x"));
  Alcotest.(check bool) "different free vars" false
    (A.alpha_equal (A.TVar "x") (A.TVar "y"))

let test_subst_capture () =
  (* [a := b] in (forall b. fn(a) -> b) must rename the binder *)
  let t = parse_ty "forall b. fn(a) -> b" in
  let t' = A.subst_ty_list [ ("a", A.TVar "b") ] t in
  match t' with
  | A.TForall ([ fresh ], A.TArrow ([ A.TVar arg ], A.TVar ret)) ->
      Alcotest.(check string) "argument substituted" "b" arg;
      Alcotest.(check bool) "binder renamed" true (fresh <> "b");
      Alcotest.(check string) "body uses renamed binder" fresh ret
  | _ -> Alcotest.fail "unexpected shape"

(* ---------------------------------------------------------------- *)
(* Evaluator                                                         *)

let test_eval_basics () =
  check_value "1 + 2 * 3" "7";
  check_value "(fun (x : int, y : int) => x - y)(10, 4)" "6";
  check_value "let x = 5 in x * x" "25";
  check_value "if 1 < 2 then 10 else 20" "10";
  check_value "nth (1, true, ()) 2" "()";
  check_value "car[int](cons[int](9, nil[int]))" "9";
  check_value "null[int](nil[int])" "true";
  check_value "length[bool](cons[bool](true, cons[bool](false, nil[bool])))"
    "2";
  check_value "append[int](cons[int](1, nil[int]), cons[int](2, nil[int]))"
    "[1, 2]";
  check_value "imin(3, imax(1, 2))" "2";
  check_value "7 % 3" "1";
  check_value "tuple()" "()"

let test_eval_recursion () =
  check_value
    "(fix (fact : fn(int) -> int) => fun (n : int) => if n == 0 then 1 else \
     n * fact(n - 1))(6)"
    "720";
  check_value
    "(fix (fib : fn(int) -> int) => fun (n : int) => if n < 2 then n else \
     fib(n - 1) + fib(n - 2))(12)"
    "144"

let test_eval_polymorphism () =
  check_value "(tfun a => fun (x : a) => x)[int](41) + 1" "42";
  check_value "(tfun a b => fun (x : a, y : b) => (y, x))[int, bool](1, true)"
    "(true, 1)"

let test_eval_partial_prims () =
  (* primitives may be partially applied *)
  check_value "let add1 = iadd(1) in add1(41)" "42"

let test_eval_errors () =
  let expect_runtime src fragment =
    match Fg_util.Diag.protect (fun () -> Eval.run_value (parse src)) with
    | Ok v ->
        Alcotest.failf "%s: expected runtime error, got %s" src
          (Eval.value_to_string v)
    | Error d ->
        Alcotest.(check bool)
          (src ^ ": phase") true
          (d.phase = Fg_util.Diag.Eval);
        if not (Astring_contains.contains ~needle:fragment d.message) then
          Alcotest.failf "%s: wrong message %s" src d.message
  in
  expect_runtime "car[int](nil[int])" "car of empty list";
  expect_runtime "cdr[int](nil[int])" "cdr of empty list";
  expect_runtime "1 / 0" "division by zero";
  expect_runtime "1 % 0" "modulo by zero";
  expect_runtime "fix (x : int) => x" "before initialization"

let test_eval_fuel () =
  let loop =
    "(fix (f : fn(int) -> int) => fun (x : int) => f(x))(0)"
  in
  match Fg_util.Diag.protect (fun () -> Eval.run ~fuel:1000 (parse loop)) with
  | Ok _ -> Alcotest.fail "expected fuel exhaustion"
  | Error d ->
      Alcotest.(check bool) "fuel message" true
        (Astring_contains.contains ~needle:"fuel" d.message)

let test_step_counting () =
  let _, steps = Eval.run (parse "1 + 2") in
  Alcotest.(check int) "one beta step for one prim app" 1 steps;
  let _, steps2 = Eval.run (parse "(fun (x : int) => x + x)(5)") in
  Alcotest.(check int) "two steps" 2 steps2

let test_value_equal () =
  let a = Eval.run_value (parse "(1, cons[int](2, nil[int]))") in
  let b = Eval.run_value (parse "(1, cons[int](2, nil[int]))") in
  let c = Eval.run_value (parse "(1, cons[int](3, nil[int]))") in
  Alcotest.(check bool) "equal" true (Eval.value_equal a b);
  Alcotest.(check bool) "not equal" false (Eval.value_equal a c);
  let f = Eval.run_value (parse "fun (x : int) => x") in
  Alcotest.(check bool) "functions incomparable" false (Eval.value_equal f f)

(* ---------------------------------------------------------------- *)
(* Properties                                                        *)

let prop_pretty_parse_roundtrip =
  (* generate random simple F terms via the FG generator's programs
     translated to F; their pretty-printed form must reparse equal *)
  QCheck.Test.make ~name:"translated programs round-trip through printer"
    ~count:100 QCheck.(int_bound 10_000)
    (fun seed ->
      let fg = Fg_core.Gen.program_of_seed seed in
      let f = Fg_core.Check.translate fg in
      let f2 = parse (Pretty.exp_to_string f) in
      A.exp_equal f f2)

let suite =
  [
    Alcotest.test_case "parse atoms" `Quick test_parse_atoms;
    Alcotest.test_case "parse operators" `Quick test_parse_operators;
    Alcotest.test_case "parse types" `Quick test_parse_types;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "printer/parser round-trip" `Quick test_roundtrip_corpus;
    Alcotest.test_case "typecheck basics" `Quick test_typecheck_basics;
    Alcotest.test_case "typecheck polymorphism" `Quick
      test_typecheck_polymorphism;
    Alcotest.test_case "typecheck errors" `Quick test_typecheck_errors;
    Alcotest.test_case "alpha equivalence" `Quick test_alpha_equal;
    Alcotest.test_case "capture-avoiding subst" `Quick test_subst_capture;
    Alcotest.test_case "eval basics" `Quick test_eval_basics;
    Alcotest.test_case "eval recursion" `Quick test_eval_recursion;
    Alcotest.test_case "eval polymorphism" `Quick test_eval_polymorphism;
    Alcotest.test_case "partial primitives" `Quick test_eval_partial_prims;
    Alcotest.test_case "eval errors" `Quick test_eval_errors;
    Alcotest.test_case "fuel exhaustion" `Quick test_eval_fuel;
    Alcotest.test_case "step counting" `Quick test_step_counting;
    Alcotest.test_case "value equality" `Quick test_value_equal;
    QCheck_alcotest.to_alcotest prop_pretty_parse_roundtrip;
  ]
