(** Abstract syntax of System FG — the language of paper Figure 11
    (System F + concepts, models, where clauses, associated types,
    same-type constraints, type aliases), plus base types, lists,
    tuples, [fix], [if], primitive constants, and the Section 6
    extensions (parameterized models, named models, member defaults). *)

open Fg_util
module F := Fg_systemf.Ast

type base = F.base = TInt | TBool | TUnit

type ty =
  | TBase of base
  | TVar of string
  | TArrow of ty list * ty  (** [fn(τ1, ..., τn) -> τ] *)
  | TTuple of ty list
  | TList of ty
  | TAssoc of string * ty list * string  (** [C<τ̄>.s] *)
  | TForall of string list * constr list * ty
      (** [forall t̄ where constrs. τ]; the where clause may be empty *)

and constr =
  | CModel of string * ty list  (** [C<σ̄>] — a model requirement *)
  | CSame of ty * ty  (** [σ == τ] — a same-type constraint *)

type lit = F.lit = LInt of int | LBool of bool | LUnit

type exp = { desc : desc; loc : Loc.t }

and desc =
  | Var of string
  | Lit of lit
  | Prim of string
  | App of exp * exp list
  | Abs of (string * ty) list * exp
  | TyAbs of string list * constr list * exp
      (** [tfun t̄ where constrs => e] *)
  | TyApp of exp * ty list
  | Let of string * exp * exp
  | Tuple of exp list
  | Nth of exp * int
  | Fix of string * ty * exp
  | If of exp * exp * exp
  | Member of string * ty list * string  (** [C<τ̄>.x] — model member *)
  | ConceptDecl of concept_decl * exp
  | ModelDecl of model_decl * exp
  | Using of string * exp  (** activate a named model *)
  | TypeAlias of string * ty * exp  (** [type t = τ in e] *)

and concept_decl = {
  c_name : string;
  c_params : string list;
  c_assoc : string list;  (** [types s̄;] requirements *)
  c_refines : (string * ty list) list;
  c_requires : (string * ty list) list;
      (** nested requirements [require C'<σ̄>;] on associated types
          (Section 6 extension) *)
  c_members : (string * ty) list;
  c_defaults : (string * exp) list;
      (** default member bodies (Section 6 extension) *)
  c_same : (ty * ty) list;  (** [same σ == τ;] requirements *)
  c_loc : Loc.t;
}

and model_decl = {
  m_name : string option;  (** a named model (Section 6 extension) *)
  m_params : string list;  (** parameterized-model binders; [] if ground *)
  m_constrs : constr list;  (** a parameterized model's context *)
  m_concept : string;
  m_args : ty list;
  m_assoc : (string * ty) list;  (** [types s = τ;] assignments *)
  m_members : (string * exp) list;
  m_loc : Loc.t;
}

(** {1 Smart constructors} *)

val mk : ?loc:Loc.t -> desc -> exp
val var : ?loc:Loc.t -> string -> exp
val lit : ?loc:Loc.t -> lit -> exp
val int : ?loc:Loc.t -> int -> exp
val bool : ?loc:Loc.t -> bool -> exp
val unit : ?loc:Loc.t -> unit -> exp
val prim : ?loc:Loc.t -> string -> exp
val app : ?loc:Loc.t -> exp -> exp list -> exp
val abs : ?loc:Loc.t -> (string * ty) list -> exp -> exp
val tyabs : ?loc:Loc.t -> string list -> constr list -> exp -> exp
val tyapp : ?loc:Loc.t -> exp -> ty list -> exp
val let_ : ?loc:Loc.t -> string -> exp -> exp -> exp
val tuple : ?loc:Loc.t -> exp list -> exp
val nth : ?loc:Loc.t -> exp -> int -> exp
val fix : ?loc:Loc.t -> string -> ty -> exp -> exp
val if_ : ?loc:Loc.t -> exp -> exp -> exp -> exp
val member : ?loc:Loc.t -> string -> ty list -> string -> exp
val concept_decl : ?loc:Loc.t -> concept_decl -> exp -> exp
val model_decl : ?loc:Loc.t -> model_decl -> exp -> exp
val using : ?loc:Loc.t -> string -> exp -> exp
val type_alias : ?loc:Loc.t -> string -> ty -> exp -> exp

(** {1 Type operations} *)

module Smap := Fg_util.Names.Smap
module Sset := Fg_util.Names.Sset

(** Free type variables. *)
val ftv : ty -> Sset.t

val ftv_constr : constr -> Sset.t

(** Concept names occurring in a type (in where clauses and in
    projections) — the paper's [CV], used by the CPT side condition. *)
val concept_names : ty -> Sset.t

val constr_concept_names : constr -> Sset.t

(** Capture-avoiding simultaneous type substitution. *)
val subst_ty : ty Smap.t -> ty -> ty

val subst_constr : ty Smap.t -> constr -> constr
val subst_of_list : (string * ty) list -> ty Smap.t
val subst_ty_list : (string * ty) list -> ty -> ty
val subst_constr_list : (string * ty) list -> constr -> constr

(** Syntactic equality of types, alpha for [forall]s (no same-type
    reasoning; use {!Env.ty_eq} for the full relation). *)
val ty_equal : ty -> ty -> bool

val constr_equal : constr -> constr -> bool
val ty_size : ty -> int
val constr_size : constr -> int

(** Type substitution through expressions (used by the interpreter's
    type application). *)
val subst_ty_exp : ty Smap.t -> exp -> exp

val exp_size : exp -> int

(** Structural equality of expressions ignoring locations (binders by
    name, embedded types via {!ty_equal}) — the pretty→parse round-trip
    relation used by the fuzzing and round-trip test oracles. *)
val exp_equal : exp -> exp -> bool
