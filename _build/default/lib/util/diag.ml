(** Diagnostics: located errors raised by every phase of the pipeline.

    All user-facing failures (lexing, parsing, well-formedness, type
    checking, model resolution, evaluation of stuck terms) are reported
    as a {!Error} carrying a source span, a phase tag and a rendered
    message.  Internal invariant violations use {!ice} ("internal
    compiler error") so that bugs in the implementation are
    distinguishable from bugs in the input program. *)

type phase =
  | Lexer
  | Parser
  | Wf  (** well-formedness of types, concepts and models *)
  | Typecheck
  | Resolve  (** model lookup / where-clause satisfaction *)
  | Translate
  | Eval
  | Internal

let phase_name = function
  | Lexer -> "lex error"
  | Parser -> "parse error"
  | Wf -> "ill-formed"
  | Typecheck -> "type error"
  | Resolve -> "resolution error"
  | Translate -> "translation error"
  | Eval -> "runtime error"
  | Internal -> "internal error"

type diagnostic = { phase : phase; loc : Loc.t; message : string }

exception Error of diagnostic

let pp ppf d =
  if Loc.is_dummy d.loc then
    Fmt.pf ppf "%s: %s" (phase_name d.phase) d.message
  else Fmt.pf ppf "%a: %s: %s" Loc.pp d.loc (phase_name d.phase) d.message

let to_string d = Fmt.str "%a" pp d

let error ?(loc = Loc.dummy) phase fmt =
  Fmt.kstr (fun message -> raise (Error { phase; loc; message })) fmt

let lex_error ?loc fmt = error ?loc Lexer fmt
let parse_error ?loc fmt = error ?loc Parser fmt
let wf_error ?loc fmt = error ?loc Wf fmt
let type_error ?loc fmt = error ?loc Typecheck fmt
let resolve_error ?loc fmt = error ?loc Resolve fmt
let translate_error ?loc fmt = error ?loc Translate fmt
let eval_error ?loc fmt = error ?loc Eval fmt

(** Internal invariant violation; not attributable to the input program. *)
let ice fmt = error Internal fmt

(** [guard cond phase fmt ...] raises unless [cond] holds. *)
let guard cond ?loc phase fmt =
  if cond then Fmt.kstr (fun _ -> ()) fmt else error ?loc phase fmt

(** Run [f ()] and capture any diagnostic as [Error d]. *)
let protect f = try Ok (f ()) with Error d -> Stdlib.Error d

let protect_msg f =
  match protect f with Ok v -> Ok v | Error d -> Stdlib.Error (to_string d)
