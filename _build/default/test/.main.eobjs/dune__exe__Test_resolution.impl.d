test/test_resolution.ml: Alcotest Astring_contains Corpus Fg_core Fg_util Interp List Pipeline Resolution
