(* Lexically scoped, intentionally overlapping models (paper Figure 6,
   Section 3.2) — and the Haskell contrast.

   Run with:  dune exec examples/monoid_scoping.exe

   FG's distinguishing design choice is that model declarations are
   expressions with ordinary lexical scope.  The same concept at the
   same type can have different models in different scopes: here the
   integers form a Monoid under addition-with-0 in one scope and under
   multiplication-with-1 in another, and `accumulate` instantiated in
   each scope picks up the local model — yielding `sum` and `product`
   from one generic function.

   Under Haskell-style global instances the same program is rejected:
   instance declarations "implicitly leak out of a module", so the two
   Monoid-of-int models overlap.  Our checker's Global resolution mode
   reproduces exactly that. *)

module C = Fg_core

let program =
  {|
concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
concept Monoid<t>    { refines Semigroup<t>; identity_elt : t; } in

let accumulate =
  tfun t where Monoid<t> =>
    fix (accum : fn(list t) -> t) =>
      fun (ls : list t) =>
        if null[t](ls) then Monoid<t>.identity_elt
        else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))
in

// Scope 1: integers under addition.
let sum =
  model Semigroup<int> { binary_op = iadd; } in
  model Monoid<int>    { identity_elt = 0; } in
  accumulate[int]
in

// Scope 2: integers under multiplication — overlapping with scope 1,
// legal in FG because the scopes are disjoint.
let product =
  model Semigroup<int> { binary_op = imult; } in
  model Monoid<int>    { identity_elt = 1; } in
  accumulate[int]
in

let ls = cons[int](2, cons[int](3, cons[int](4, nil[int]))) in
(sum(ls), product(ls))
|}

let () =
  Fmt.pr "=== Overlapping models in separate scopes (Figure 6) ===@.@.";

  (* One session per resolution mode; both programs below are
     self-contained, so no prelude is loaded. *)
  let lexical = C.Session.create () in
  let global = C.Session.create ~resolution:C.Resolution.Global () in

  (* FG (lexical) resolution: both models coexist. *)
  let out = C.Session.run ~file:"monoid_scoping" lexical program in
  Fmt.pr "lexical resolution (FG): %a@." C.Interp.pp_flat out.value;
  Fmt.pr "  -- sum [2;3;4] = 9, product [2;3;4] = 24@.@.";

  (* Global (Haskell-style) resolution: rejected. *)
  (match C.Session.run_result ~file:"monoid_scoping" global program with
  | Ok _ -> Fmt.pr "global resolution: unexpectedly accepted?!@."
  | Error d ->
      Fmt.pr "global resolution (Haskell-style): REJECTED@.  %s@.@."
        (Fg_util.Diag.to_string d));

  (* Shadowing: the nearest enclosing model wins. *)
  let shadowing =
    {|
concept Show<t> { render : fn(t) -> int; } in
let show = tfun t where Show<t> => fun (x : t) => Show<t>.render(x) in
model Show<int> { render = fun (x : int) => x; } in
let outer = show[int](7) in
model Show<int> { render = fun (x : int) => 0 - x; } in
let inner = show[int](7) in
(outer, inner)
|}
  in
  let out = C.Session.run ~file:"shadowing" lexical shadowing in
  Fmt.pr "model shadowing: %a@." C.Interp.pp_flat out.value;
  Fmt.pr "  -- the inner Show<int> model shadows the outer one@."
