(* A tour of the Section 6 extensions.

   Run with:  dune exec examples/extensions_tour.exe

   The paper's conclusion lists language features "important for generic
   programming" that FG omits for space; this library implements three
   of them, and this example exercises each:

   1. Parameterized models ("equivalent to parameterized instances in
      Haskell"): one declaration makes `list t` a model of Eq for EVERY
      t that models Eq — with recursive dictionary construction.
   2. Implicit instantiation (in the decidable restriction the paper
      points to): `accumulate(ls)` infers `[int]` from the argument.
   3. Defaults for concept members ("implementing a rich interface in
      terms of a few functions"): models of Ord supply `less` and get
      `leq`, `min2`, `max2` for free. *)

module C = Fg_core

let banner s = Fmt.pr "@.=== %s ===@." s

(* One session for the whole tour: the prelude is checked once here and
   reused by every [show] below. *)
let session = C.Session.with_prelude ()

let show name body =
  let out = C.Session.run ~file:name session body in
  Fmt.pr "%-52s = %a : %a@." body C.Interp.pp_flat out.value C.Pretty.pp_ty
    out.fg_ty

let l = C.Prelude.int_list

let () =
  banner "1. Parameterized models: Eq/Ord/Monoid/Iterator at list t";

  (* equality at nested list types, through one declaration *)
  show "eq_list" (Printf.sprintf "Eq<list int>.eq(%s, %s)" (l [ 1; 2 ]) (l [ 1; 2 ]));
  show "eq_nested"
    (Printf.sprintf
       "Eq<list (list int)>.eq(cons[list int](%s, nil[list int]), \
        cons[list int](%s, nil[list int]))"
       (l [ 1 ]) (l [ 2 ]));

  (* lexicographic order, lists as monoid (concatenation) *)
  show "ord_list" (Printf.sprintf "Ord<list int>.less(%s, %s)" (l [ 1; 2 ]) (l [ 1; 3 ]));
  show "concat"
    (Printf.sprintf
       "accumulate[list int](cons[list int](%s, cons[list int](%s, nil[list int])))"
       (l [ 1 ]) (l [ 2; 3 ]));

  (* the translation: a fix-bound polymorphic dictionary function *)
  let f =
    C.Check.translate
      (C.Parser.exp_of_string
         {|concept Eq<t> { eq : fn(t, t) -> bool; } in
model Eq<int> { eq = ieq; } in
model <t> where Eq<t> => Eq<list t> {
  eq = fun (a : list t, b : list t) => true;
} in
Eq<list (list int)>.eq(nil[list int], nil[list int])|})
  in
  Fmt.pr "@.translation of a nested instance (note Eq_n[...](...) chains):@.";
  Fmt.pr "%a@." Fg_systemf.Pretty.pp_exp f;

  banner "2. Implicit instantiation: type arguments are inferred";
  show "accumulate" (Printf.sprintf "accumulate(%s)" (l [ 1; 2; 3; 4 ]));
  show "merge"
    (Printf.sprintf "merge(%s, %s, nil[int])" (l [ 1; 3 ]) (l [ 2; 4 ]));
  show "count-lists"
    (Printf.sprintf
       "count(cons[list int](%s, cons[list int](%s, nil[list int])), %s)"
       (l [ 7 ]) (l [ 7 ]) (l [ 7 ]));

  banner "3. Member defaults: rich interfaces from few operations";
  (* int models Ord with just `less`; leq/min2/max2 are defaults *)
  show "leq" "Ord<int>.leq(3, 3)";
  show "min2/max2" "(Ord<int>.min2(8, 3), Ord<int>.max2(8, 3))";
  (* and so do lists, through the parameterized Ord model *)
  show "min2 lists"
    (Printf.sprintf "Ord<list int>.min2(%s, %s)" (l [ 2; 1 ]) (l [ 1; 9 ]));
  (* neq is Eq's default, overridable per model *)
  show "neq default" "Eq<int>.neq(1, 2)";

  Fmt.pr
    "@.All of the above went through the full pipeline: type checked,@.\
     translated to System F, theorem-verified, and evaluated both by the@.\
     direct interpreter and via the translation (results agreed).@."
