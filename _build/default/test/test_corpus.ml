(* The paper corpus, as executable expectations: every positive entry
   runs the full pipeline (check, translate, verify theorem, evaluate
   both ways) and must produce its documented value; every negative
   entry must fail in its documented phase. *)

open Fg_core

let run_entry (e : Corpus.entry) () =
  match e.expected with
  | Corpus.Value expect -> (
      match Pipeline.run_result ~file:e.name e.source with
      | Ok out ->
          Alcotest.(check string)
            (e.name ^ " value")
            (Interp.flat_to_string expect)
            (Interp.flat_to_string out.value);
          Alcotest.(check bool) (e.name ^ " theorem") true out.theorem_holds
      | Error d -> Alcotest.failf "%s failed: %s" e.name (Fg_util.Diag.to_string d))
  | Corpus.Fails phase -> (
      match Pipeline.run_result ~file:e.name e.source with
      | Ok out ->
          Alcotest.failf "%s unexpectedly succeeded with %s" e.name
            (Interp.flat_to_string out.value)
      | Error d ->
          if d.phase <> phase then
            Alcotest.failf "%s failed in the wrong phase: %s" e.name
              (Fg_util.Diag.to_string d))

(* A few spot checks that corpus entries assert what the paper says. *)
let test_fig6_values () =
  let out = Pipeline.run Corpus.fig6_overlap.source in
  Alcotest.(check string) "paper's (3, 2)" "(3, 2)"
    (Interp.flat_to_string out.value)

let test_fig5_type () =
  let ty = Pipeline.typecheck Corpus.fig5_accumulate.source in
  Alcotest.(check string) "program type" "int" (Pretty.ty_to_string ty)

let test_accumulate_type_generic () =
  (* the type of accumulate itself, before instantiation *)
  let src =
    Corpus.monoid_prelude ^ Corpus.accumulate_def ^ "accumulate"
  in
  let ty = Check.typecheck ~escape_check:false (Parser.exp_of_string src) in
  Alcotest.(check string) "generic type"
    "forall t where Monoid<t>. fn(list t) -> t" (Pretty.ty_to_string ty)

let test_merge_type_generic () =
  let src =
    Corpus.merge_example.source
  in
  (* just check the whole program's type *)
  let ty = Pipeline.typecheck src in
  Alcotest.(check string) "program type" "list int" (Pretty.ty_to_string ty)

let test_corpus_is_self_consistent () =
  (* names unique; every entry findable *)
  let names = List.map (fun (e : Corpus.entry) -> e.name) Corpus.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n -> ignore (Corpus.find n))
    names

let suite =
  List.map
    (fun (e : Corpus.entry) ->
      Alcotest.test_case (e.name ^ " [" ^ e.paper ^ "]") `Quick (run_entry e))
    Corpus.all
  @ [
      Alcotest.test_case "figure 6 produces (3, 2)" `Quick test_fig6_values;
      Alcotest.test_case "figure 5 program type" `Quick test_fig5_type;
      Alcotest.test_case "accumulate generic type" `Quick
        test_accumulate_type_generic;
      Alcotest.test_case "merge program type" `Quick test_merge_type_generic;
      Alcotest.test_case "corpus self-consistent" `Quick
        test_corpus_is_self_consistent;
    ]
