(** Pretty printer for System FG.  Output is valid concrete syntax and
    round-trips through {!Parser}. *)

val pp_ty : Ast.ty Fmt.t
val pp_constr : Ast.constr Fmt.t
val pp_exp : Ast.exp Fmt.t
val pp_concept_decl : Ast.concept_decl Fmt.t
val pp_model_decl : Ast.model_decl Fmt.t

val ty_to_string : Ast.ty -> string
val constr_to_string : Ast.constr -> string
val exp_to_string : Ast.exp -> string

(** One-line rendering (whitespace collapsed); for test expectations. *)
val exp_to_flat_string : Ast.exp -> string
