(* Tests for the generic graph library written in FG (lib/fg/graph_lib):
   each algorithm at the adjacency-list representation, the SAME
   algorithms at the structurally different edge-list representation,
   and a property test comparing FG `reachable` against an OCaml
   reference search on random graphs. *)

open Fg_core

let adj_ty = "list (int * list int)"
let edge_ty = "list int * list (int * int)"

let check body expected =
  match Pipeline.run_result ~file:"graph" (Graph_lib.wrap body) with
  | Ok out ->
      Alcotest.(check string) body expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" body (Fg_util.Diag.to_string d)

(* the running example: 1 -> {2,3}, 2 -> {4}, 3 -> {4}, 4 -> {} *)
let diamond = Graph_lib.adj [ (1, [ 2; 3 ]); (2, [ 4 ]); (3, [ 4 ]); (4, []) ]
let cycle = Graph_lib.adj [ (1, [ 2 ]); (2, [ 3 ]); (3, [ 1 ]) ]

let test_degree () =
  check (Printf.sprintf "degree[%s](%s, 1)" adj_ty diamond) "2";
  check (Printf.sprintf "degree[%s](%s, 4)" adj_ty diamond) "0"

let test_counts () =
  check (Printf.sprintf "num_vertices[%s](%s)" adj_ty diamond) "4";
  check (Printf.sprintf "num_edges[%s](%s)" adj_ty diamond) "4";
  check (Printf.sprintf "num_edges[%s](%s)" adj_ty cycle) "3"

let test_has_edge () =
  check (Printf.sprintf "has_edge[%s](%s, 1, 2)" adj_ty diamond) "true";
  check (Printf.sprintf "has_edge[%s](%s, 2, 1)" adj_ty diamond) "false";
  check (Printf.sprintf "has_edge[%s](%s, 1, 4)" adj_ty diamond) "false"

let test_reachable () =
  check (Printf.sprintf "reachable[%s](%s, 1, 4)" adj_ty diamond) "true";
  check (Printf.sprintf "reachable[%s](%s, 4, 1)" adj_ty diamond) "false";
  check (Printf.sprintf "reachable[%s](%s, 1, 1)" adj_ty diamond) "true";
  (* reachability through a cycle *)
  check (Printf.sprintf "reachable[%s](%s, 1, 3)" adj_ty cycle) "true";
  check (Printf.sprintf "reachable[%s](%s, 3, 2)" adj_ty cycle) "true"

let test_reachable_set () =
  check (Printf.sprintf "reachable_set[%s](%s, 1)" adj_ty diamond)
    "[1, 2, 3, 4]";
  check (Printf.sprintf "reachable_set[%s](%s, 4)" adj_ty diamond) "[4]";
  check (Printf.sprintf "reachable_set[%s](%s, 2)" adj_ty cycle) "[2, 3, 1]"

let test_is_dag () =
  check (Printf.sprintf "is_dag[%s](%s)" adj_ty diamond) "true";
  check (Printf.sprintf "is_dag[%s](%s)" adj_ty cycle) "false";
  (* self-loop *)
  check
    (Printf.sprintf "is_dag[%s](%s)" adj_ty (Graph_lib.adj [ (1, [ 1 ]) ]))
    "false";
  check (Printf.sprintf "is_dag[%s](%s)" adj_ty (Graph_lib.adj [])) "true"

let test_edge_list_representation () =
  (* the same generic algorithms at a different model of Graph *)
  let g = Graph_lib.edges [ 1; 2; 3; 4 ] [ (1, 2); (2, 3); (1, 4) ] in
  check (Printf.sprintf "num_vertices[%s](%s)" edge_ty g) "4";
  check (Printf.sprintf "num_edges[%s](%s)" edge_ty g) "3";
  check (Printf.sprintf "degree[%s](%s, 1)" edge_ty g) "2";
  check (Printf.sprintf "reachable[%s](%s, 1, 3)" edge_ty g) "true";
  check (Printf.sprintf "reachable[%s](%s, 4, 3)" edge_ty g) "false";
  check (Printf.sprintf "is_dag[%s](%s)" edge_ty g) "true"

let test_implicit_instantiation_on_graphs () =
  (* associated types are not invertible from argument types, but the
     graph parameter itself is: `degree(g, v)` infers g *)
  check (Printf.sprintf "degree(%s, 3)" diamond) "1";
  check (Printf.sprintf "num_edges(%s)" diamond) "4"

(* Reference implementation for the property test. *)
let ocaml_reachable (g : (int * int list) list) (src : int) (tgt : int) : bool
    =
  let out v = try List.assoc v g with Not_found -> [] in
  let rec go work visited =
    match work with
    | [] -> false
    | v :: rest ->
        if v = tgt then true
        else if List.mem v visited then go rest visited
        else go (rest @ out v) (v :: visited)
  in
  go [ src ] []

let prop_reachable_matches_reference =
  QCheck.Test.make ~name:"FG reachable matches OCaml reference" ~count:60
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 5)
           (pair (int_bound 4) (list_of_size (QCheck.Gen.int_bound 3) (int_bound 4))))
        (pair (int_bound 4) (int_bound 4)))
    (fun (raw, (src, tgt)) ->
      (* normalize: unique vertex ids 0..4, dedup adjacency entries *)
      let g =
        List.sort_uniq compare (List.map (fun (v, ss) -> (v, ss)) raw)
        |> List.fold_left
             (fun acc (v, ss) ->
               if List.mem_assoc v acc then acc else (v, ss) :: acc)
             []
      in
      (* every mentioned vertex must exist as a key for the FG model *)
      let mentioned =
        List.concat_map (fun (v, ss) -> v :: ss) g @ [ src; tgt ]
      in
      let g =
        List.fold_left
          (fun acc v -> if List.mem_assoc v acc then acc else (v, []) :: acc)
          g (List.sort_uniq compare mentioned)
      in
      let body =
        Printf.sprintf "reachable[%s](%s, %d, %d)" adj_ty (Graph_lib.adj g)
          src tgt
      in
      let out = Pipeline.run ~file:"prop" (Graph_lib.wrap body) in
      Interp.flat_equal out.value (Interp.FlBool (ocaml_reachable g src tgt)))

let suite =
  [
    Alcotest.test_case "degree" `Quick test_degree;
    Alcotest.test_case "vertex/edge counts" `Quick test_counts;
    Alcotest.test_case "has_edge" `Quick test_has_edge;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "reachable_set" `Quick test_reachable_set;
    Alcotest.test_case "is_dag" `Quick test_is_dag;
    Alcotest.test_case "edge-list representation" `Quick
      test_edge_list_representation;
    Alcotest.test_case "implicit instantiation" `Quick
      test_implicit_instantiation_on_graphs;
    QCheck_alcotest.to_alcotest prop_reachable_matches_reference;
  ]
