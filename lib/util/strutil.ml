(** Small string utilities shared by the driver, the REPL and tests. *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = if i + nn > nh then false else String.sub hay i nn = needle || at (i + 1) in
    at 0

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    (* One-row dynamic programme: [prev.(j)] is the distance between
       [a[0..i-1]] and [b[0..j-1]]. *)
    let prev = Array.init (lb + 1) Fun.id in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Some (Bytes.to_string b)
      else
        match (nibble s.[i], nibble s.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set b (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> None
    in
    go 0

let nearest ~candidates name =
  (* A candidate differing only in letter case is always a plausible
     typo (distance 0 here), even for one-character names where the
     length-relative cutoff below would otherwise reject everything. *)
  let lname = String.lowercase_ascii name in
  let distance c =
    if String.lowercase_ascii c = lname then 0 else levenshtein name c
  in
  let limit = min 2 (String.length name - 1) in
  let best =
    List.fold_left
      (fun best c ->
        if c = name then best
        else
          let d = distance c in
          if d > 0 && (limit <= 0 || d > limit) then best
          else
            match best with
            (* [<=] keeps the earliest candidate on equal distance. *)
            | Some (_, bd) when bd <= d -> best
            | _ -> Some (c, d))
      None candidates
  in
  Option.map fst best
