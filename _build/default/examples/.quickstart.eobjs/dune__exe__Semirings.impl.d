examples/semirings.ml: Fg_core Fmt Printf
