test/test_cli.ml: Alcotest Astring_contains Filename List Printf String Sys
