test/test_prelude.ml: Alcotest Fg_core Fg_util Interp List Pipeline Prelude Printf QCheck QCheck_alcotest Resolution
