(* Tests for the union-find substrate, including qcheck properties. *)

module Uf = Fg_unionfind.Uf

let test_basic () =
  let uf = Uf.create () in
  let a = Uf.make_set uf and b = Uf.make_set uf and c = Uf.make_set uf in
  Alcotest.(check bool) "initially distinct" false (Uf.equiv uf a b);
  Alcotest.(check int) "three classes" 3 (Uf.count_classes uf);
  ignore (Uf.union uf a b);
  Alcotest.(check bool) "a~b" true (Uf.equiv uf a b);
  Alcotest.(check bool) "a!~c" false (Uf.equiv uf a c);
  Alcotest.(check int) "two classes" 2 (Uf.count_classes uf);
  ignore (Uf.union uf b c);
  Alcotest.(check bool) "transitive" true (Uf.equiv uf a c);
  Alcotest.(check int) "one class" 1 (Uf.count_classes uf)

let test_union_idempotent () =
  let uf = Uf.create () in
  let a = Uf.make_set uf and b = Uf.make_set uf in
  let r1 = Uf.union uf a b in
  let r2 = Uf.union uf a b in
  Alcotest.(check int) "same root" r1 r2;
  Alcotest.(check int) "classes" 1 (Uf.count_classes uf)

let test_union_into () =
  let uf = Uf.create () in
  let a = Uf.make_set uf and b = Uf.make_set uf and c = Uf.make_set uf in
  (* force b's rank up so plain union would pick b *)
  ignore (Uf.union uf b c);
  let r = Uf.union_into uf ~winner:a b in
  Alcotest.(check int) "winner is representative" (Uf.find uf a) r;
  Alcotest.(check int) "a is root" a (Uf.find uf b);
  Alcotest.(check bool) "all merged" true (Uf.equiv uf a c)

let test_growth () =
  let uf = Uf.create ~capacity:1 () in
  let ids = List.init 100 (fun _ -> Uf.make_set uf) in
  Alcotest.(check int) "length" 100 (Uf.length uf);
  List.iteri (fun i id -> Alcotest.(check int) "dense ids" i id) ids;
  (* chain them all *)
  List.iter (fun id -> ignore (Uf.union uf (List.hd ids) id)) ids;
  Alcotest.(check int) "single class" 1 (Uf.count_classes uf)

let test_out_of_range () =
  let uf = Uf.create () in
  ignore (Uf.make_set uf);
  Alcotest.check_raises "find out of range"
    (Fg_util.Diag.Error
       (Fg_util.Diag.make Fg_util.Diag.Internal
          "union-find: id 5 out of range [0, 1)"))
    (fun () -> ignore (Uf.find uf 5))

let test_classes () =
  let uf = Uf.create () in
  let a = Uf.make_set uf and b = Uf.make_set uf and c = Uf.make_set uf in
  ignore (Uf.union uf a b);
  let cls = Uf.classes uf in
  Alcotest.(check int) "two classes" 2 (List.length cls);
  let sizes = List.sort compare (List.map List.length cls) in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] sizes;
  (* each class is headed by its representative *)
  List.iter
    (fun cl -> Alcotest.(check int) "head is root" (Uf.find uf (List.hd cl))
        (List.hd cl))
    cls;
  ignore c

let test_copy_independent () =
  let uf = Uf.create () in
  let a = Uf.make_set uf and b = Uf.make_set uf in
  let snapshot = Uf.copy uf in
  ignore (Uf.union uf a b);
  Alcotest.(check bool) "original merged" true (Uf.equiv uf a b);
  Alcotest.(check bool) "copy untouched" false (Uf.equiv snapshot a b)

(* Property: union-find maintains an equivalence relation consistent
   with a naive reference implementation. *)
let prop_matches_reference =
  QCheck.Test.make ~name:"uf matches naive reference" ~count:200
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun unions ->
      let uf = Uf.create () in
      let ids = Array.init 20 (fun _ -> Uf.make_set uf) in
      (* naive: representative = min element of class, recomputed *)
      let cls = Array.init 20 (fun i -> i) in
      let naive_find i =
        let rec go i = if cls.(i) = i then i else go cls.(i) in
        go i
      in
      List.iter
        (fun (x, y) ->
          ignore (Uf.union uf ids.(x) ids.(y));
          let rx = naive_find x and ry = naive_find y in
          if rx <> ry then cls.(max rx ry) <- min rx ry)
        unions;
      List.for_all
        (fun (x, y) -> Uf.equiv uf ids.(x) ids.(y) = (naive_find x = naive_find y))
        (List.concat_map
           (fun x -> List.map (fun y -> (x, y)) [ 0; 5; 10; 19 ])
           [ 0; 3; 7; 19 ]))

let prop_class_count =
  QCheck.Test.make ~name:"class count decreases by exactly merges" ~count:200
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun unions ->
      let uf = Uf.create () in
      let ids = Array.init 10 (fun _ -> Uf.make_set uf) in
      let merges =
        List.fold_left
          (fun acc (x, y) ->
            if Uf.equiv uf ids.(x) ids.(y) then begin
              ignore (Uf.union uf ids.(x) ids.(y));
              acc
            end
            else begin
              ignore (Uf.union uf ids.(x) ids.(y));
              acc + 1
            end)
          0 unions
      in
      Uf.count_classes uf = 10 - merges)

let suite =
  [
    Alcotest.test_case "basic union/find" `Quick test_basic;
    Alcotest.test_case "idempotent union" `Quick test_union_idempotent;
    Alcotest.test_case "union_into picks winner" `Quick test_union_into;
    Alcotest.test_case "dynamic growth" `Quick test_growth;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "classes listing" `Quick test_classes;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    QCheck_alcotest.to_alcotest prop_matches_reference;
    QCheck_alcotest.to_alcotest prop_class_count;
  ]
