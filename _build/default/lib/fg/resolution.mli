(** Model resolution modes — the Section 3.2 ablation.

    {!Lexical} is the paper's FG semantics: models are lexically scoped,
    shadowable, and may overlap in separate scopes (Figure 6).
    {!Global} reproduces Haskell-style instances: every model is checked
    for overlap against all models declared anywhere in the program, so
    Figure 6 is rejected — exactly the contrast the paper draws. *)

type mode = Lexical | Global

val mode_name : mode -> string
