(** Shared pretty-printing helpers built on [Fmt]. *)

val comma_sep : 'a Fmt.t -> 'a list Fmt.t
val semi_sep : 'a Fmt.t -> 'a list Fmt.t

(** [<x, y, z>]. *)
val angles : 'a Fmt.t -> 'a list Fmt.t

val parens_if : bool -> 'a Fmt.t -> 'a Fmt.t

(** Render with a terminal-friendly margin (default 100). *)
val to_string : ?margin:int -> 'a Fmt.t -> 'a -> string

(** One-line rendering: newlines and space runs collapsed. *)
val to_flat_string : 'a Fmt.t -> 'a -> string
