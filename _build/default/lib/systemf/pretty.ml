(** Pretty printer for System F.

    Output is valid concrete syntax: [Parser.exp_of_string] applied to
    the rendering of a term yields the same term back (a property the
    test suite checks by round-tripping).  Layout follows the paper's
    examples: multi-argument [fn] types, tuple types with [*], [nth]
    projections, bracketed type application. *)

open Ast
open Fg_util

(* Type precedence levels:
   0 — forall, fn (right-open)
   1 — tuple ( * )
   2 — list application
   3 — atoms *)
let rec pp_ty_prec prec ppf t =
  match t with
  | TBase TInt -> Fmt.string ppf "int"
  | TBase TBool -> Fmt.string ppf "bool"
  | TBase TUnit -> Fmt.string ppf "unit"
  | TVar a -> Fmt.string ppf a
  | TArrow (args, ret) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[fn(%a) ->@ %a@]"
            (Pp_util.comma_sep (pp_ty_prec 0))
            args (pp_ty_prec 0) ret)
        ppf ()
  (* 0/1-tuples have no infix syntax; the explicit form keeps
     dictionary types round-trippable. *)
  | TTuple ([] | [ _ ]) ->
      let ts = (match t with TTuple ts -> ts | _ -> assert false) in
      Fmt.pf ppf "tuple(%a)" (Pp_util.comma_sep (pp_ty_prec 0)) ts
  | TTuple ts ->
      Pp_util.parens_if (prec > 1)
        (fun ppf () ->
          Fmt.pf ppf "@[%a@]" (Fmt.list ~sep:(Fmt.any " *@ ") (pp_ty_prec 2)) ts)
        ppf ()
  | TList t ->
      Pp_util.parens_if (prec > 2)
        (fun ppf () -> Fmt.pf ppf "list %a" (pp_ty_prec 3) t)
        ppf ()
  | TForall (tvs, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[forall %a.@ %a@]"
            (Fmt.list ~sep:Fmt.sp Fmt.string)
            tvs (pp_ty_prec 0) body)
        ppf ()

let pp_ty ppf t = pp_ty_prec 0 ppf t

let pp_lit ppf = function
  | LInt n -> Fmt.int ppf n
  | LBool b -> Fmt.bool ppf b
  | LUnit -> Fmt.string ppf "()"

(* Expression precedence:
   0 — let / fun / tfun / fix / if (right-open)
   1 — application, type application, nth
   2 — atoms *)
let rec pp_exp_prec prec ppf e =
  match e.desc with
  | Var x -> Fmt.string ppf x
  | Prim p -> Fmt.string ppf p
  | Lit l -> pp_lit ppf l
  | Tuple ([] | [ _ ]) ->
      let es = (match e.desc with Tuple es -> es | _ -> assert false) in
      Fmt.pf ppf "tuple(@[%a@])" (Pp_util.comma_sep (pp_exp_prec 0)) es
  | Tuple es -> Fmt.pf ppf "(@[%a@])" (Pp_util.comma_sep (pp_exp_prec 0)) es
  | App (f, args) ->
      Pp_util.parens_if (prec > 1)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>%a(%a)@]" (pp_exp_prec 1) f
            (Pp_util.comma_sep (pp_exp_prec 0))
            args)
        ppf ()
  | TyApp (f, tys) ->
      Pp_util.parens_if (prec > 1)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>%a[%a]@]" (pp_exp_prec 1) f
            (Pp_util.comma_sep pp_ty) tys)
        ppf ()
  | Nth (e, k) ->
      Pp_util.parens_if (prec > 1)
        (fun ppf () -> Fmt.pf ppf "nth %a %d" (pp_exp_prec 2) e k)
        ppf ()
  | Abs (params, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>fun (@[%a@]) =>@ %a@]"
            (Pp_util.comma_sep pp_param) params (pp_exp_prec 0) body)
        ppf ()
  | TyAbs (tvs, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>tfun %a =>@ %a@]"
            (Fmt.list ~sep:Fmt.sp Fmt.string)
            tvs (pp_exp_prec 0) body)
        ppf ()
  | Let (x, rhs, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<v>@[<hov 2>let %s =@ %a in@]@ %a@]" x (pp_exp_prec 0)
            rhs (pp_exp_prec 0) body)
        ppf ()
  | Fix (x, ty, body) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<hov 2>fix (%s : %a) =>@ %a@]" x pp_ty ty
            (pp_exp_prec 0) body)
        ppf ()
  | If (c, t, f) ->
      Pp_util.parens_if (prec > 0)
        (fun ppf () ->
          Fmt.pf ppf "@[<hv>if %a@ then %a@ else %a@]" (pp_exp_prec 0) c
            (pp_exp_prec 0) t (pp_exp_prec 0) f)
        ppf ()

and pp_param ppf (x, t) = Fmt.pf ppf "%s : %a" x pp_ty t

let pp_exp ppf e = pp_exp_prec 0 ppf e

let ty_to_string t = Pp_util.to_string pp_ty t
let exp_to_string e = Pp_util.to_string pp_exp e
let exp_to_flat_string e = Pp_util.to_flat_string pp_exp e
