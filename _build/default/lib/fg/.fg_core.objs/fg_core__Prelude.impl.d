lib/fg/prelude.ml: List Printf
