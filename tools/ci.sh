#!/bin/sh
# CI entry point: build everything, run the full test battery, then a
# quick benchmark smoke (tiny quota — checks the harness runs and the
# deterministic tables print, not the numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== error corpus: diagnostic codes are stable"
# Each program under programs/errors/ pins the FG0xxx codes one
# recovering `fgc run` reports for it (warnings included); any drift
# from expected_codes.txt fails the build.
actual=$(mktemp)
trap 'rm -f "$actual"' EXIT
for f in programs/errors/*.fg; do
  codes=$(./_build/default/bin/fgc.exe run --format=json "$f" 2>/dev/null \
    | grep -o '"code": "FG[0-9]*"' \
    | sed 's/.*"\(FG[0-9]*\)"$/\1/' | tr '\n' ' ' | sed 's/ $//' || true)
  echo "$(basename "$f"): $codes" >> "$actual"
done
diff -u programs/errors/expected_codes.txt "$actual"

echo "== fuzz smoke (seed 42, 200 programs)"
# Deterministic: the same seed generates the same programs on every
# machine, so a clean run here means a clean run everywhere.
./_build/default/bin/fgc.exe fuzz --seed 42 --count 200

echo "== bench smoke (BENCH_QUOTA=0.02)"
BENCH_QUOTA=0.02 dune exec bench/main.exe
