(** Type checker for System F.

    The rules are the standard ones the paper omits ("we omit the type
    rules for System F as they are standard"), extended with the [let]
    rule the paper does give, plus tuples/[nth], [fix], [if], literals
    and primitives.  Types are compared up to alpha-equivalence.

    This checker is the verification half of the reproduction of the
    paper's Theorems 1 and 2: every term produced by the FG-to-F
    translation is re-checked here, and its type is compared against the
    translation of the FG type. *)

open Ast
open Fg_util
module Smap = Names.Smap
module Sset = Names.Sset

type env = { vars : ty Smap.t; tyvars : Sset.t }

let empty_env = { vars = Smap.empty; tyvars = Sset.empty }

let bind_var env x t = { env with vars = Smap.add x t env.vars }

let bind_tyvars env tvs =
  { env with tyvars = List.fold_left (fun s t -> Sset.add t s) env.tyvars tvs }

(** Well-formedness: every free type variable must be in scope. *)
let check_ty ?loc env t =
  let free = ftv t in
  match Sset.choose_opt (Sset.diff free env.tyvars) with
  | None -> ()
  | Some a -> Diag.type_error ?loc "unbound type variable '%s' in %s" a
                (Pretty.ty_to_string t)

let type_mismatch ?loc ~expected ~got what =
  Diag.type_error ?loc "%s: expected %s but got %s" what
    (Pretty.ty_to_string expected)
    (Pretty.ty_to_string got)

let rec typeof (env : env) (e : exp) : ty =
  let loc = e.loc in
  match e.desc with
  | Var x -> (
      match Smap.find_opt x env.vars with
      | Some t -> t
      | None -> Diag.type_error ~loc "unbound variable '%s'" x)
  | Lit (LInt _) -> TBase TInt
  | Lit (LBool _) -> TBase TBool
  | Lit LUnit -> TBase TUnit
  | Prim p -> (Prims.lookup_exn ~loc p).ty
  | App (f, args) -> (
      let tf = typeof env f in
      match tf with
      | TArrow (params, ret) ->
          if List.length params <> List.length args then
            Diag.type_error ~loc
              "function expects %d argument(s) but is applied to %d"
              (List.length params) (List.length args);
          List.iteri
            (fun i (param, arg) ->
              let ta = typeof env arg in
              if not (alpha_equal param ta) then
                type_mismatch ~loc:arg.loc ~expected:param ~got:ta
                  (Printf.sprintf "argument %d" (i + 1)))
            (List.combine params args);
          ret
      | _ ->
          Diag.type_error ~loc "applied expression has non-function type %s"
            (Pretty.ty_to_string tf))
  | Abs (params, body) ->
      let env' =
        List.fold_left
          (fun acc (x, t) ->
            check_ty ~loc env t;
            bind_var acc x t)
          env params
      in
      TArrow (List.map snd params, typeof env' body)
  | TyAbs (tvs, body) ->
      if not (Names.distinct tvs) then
        Diag.type_error ~loc "duplicate type parameter in type abstraction";
      TForall (tvs, typeof (bind_tyvars env tvs) body)
  | TyApp (f, tys) -> (
      List.iter (check_ty ~loc env) tys;
      match typeof env f with
      | TForall (tvs, body) ->
          if List.length tvs <> List.length tys then
            Diag.type_error ~loc
              "type abstraction expects %d type argument(s) but got %d"
              (List.length tvs) (List.length tys);
          subst_ty_list (List.combine tvs tys) body
      | t ->
          Diag.type_error ~loc
            "type-applied expression has non-polymorphic type %s"
            (Pretty.ty_to_string t))
  | Let (x, rhs, body) ->
      let trhs = typeof env rhs in
      typeof (bind_var env x trhs) body
  | Tuple es -> TTuple (List.map (typeof env) es)
  | Nth (e0, k) -> (
      match typeof env e0 with
      | TTuple ts when k >= 0 && k < List.length ts -> List.nth ts k
      | TTuple ts ->
          Diag.type_error ~loc "projection %d out of bounds for %d-tuple" k
            (List.length ts)
      | t ->
          Diag.type_error ~loc "nth applied to non-tuple type %s"
            (Pretty.ty_to_string t))
  | Fix (x, t, body) ->
      check_ty ~loc env t;
      let tb = typeof (bind_var env x t) body in
      if not (alpha_equal t tb) then
        type_mismatch ~loc ~expected:t ~got:tb "fix body";
      t
  | If (c, t, f) ->
      let tc = typeof env c in
      if not (alpha_equal tc (TBase TBool)) then
        type_mismatch ~loc:c.loc ~expected:(TBase TBool) ~got:tc
          "if condition";
      let tt = typeof env t and tf = typeof env f in
      if not (alpha_equal tt tf) then
        type_mismatch ~loc ~expected:tt ~got:tf "else branch";
      tt

(** Check a closed program. *)
let typecheck e = typeof empty_env e

let typecheck_result e = Diag.protect (fun () -> typecheck e)
