lib/fg/matrix_lib.mli:
