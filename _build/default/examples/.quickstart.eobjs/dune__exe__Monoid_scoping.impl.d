examples/monoid_scoping.ml: Fg_core Fg_util Fmt
