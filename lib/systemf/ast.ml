(** Abstract syntax of System F, the target of the FG translation.

    This is the calculus of paper Figure 2: the polymorphic lambda
    calculus with multi-parameter functions and type abstractions (used
    to ease the translation), tuples with [nth] projection (used as
    dictionaries), [let], and a [fix] form for the recursion the paper
    writes as [μx] in Figures 3 and 5.  Base types, lists and primitive
    operations ([iadd], [car], ...) stand in for the ambient constants
    the paper assumes. *)

open Fg_util

type base = TInt | TBool | TUnit

type ty =
  | TBase of base
  | TVar of string
  | TArrow of ty list * ty  (** [fn(t1, ..., tn) -> t] *)
  | TTuple of ty list  (** [t1 * ... * tk]; dictionaries *)
  | TList of ty
  | TForall of string list * ty  (** [forall t1 ... tn. t] *)

type lit = LInt of int | LBool of bool | LUnit

type exp = { desc : desc; loc : Loc.t }

and desc =
  | Var of string
  | Lit of lit
  | Prim of string  (** built-in constant, see {!Prims} *)
  | App of exp * exp list
  | Abs of (string * ty) list * exp
  | TyAbs of string list * exp
  | TyApp of exp * ty list
  | Let of string * exp * exp
  | Tuple of exp list
  | Nth of exp * int  (** [nth e k], 0-based projection *)
  | Fix of string * ty * exp  (** [fix (x : t) => e]; CBV recursion *)
  | If of exp * exp * exp

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)

let mk ?(loc = Loc.dummy) desc = { desc; loc }
let var ?loc x = mk ?loc (Var x)
let lit ?loc l = mk ?loc (Lit l)
let int ?loc n = lit ?loc (LInt n)
let bool ?loc b = lit ?loc (LBool b)
let unit ?loc () = lit ?loc LUnit
let prim ?loc p = mk ?loc (Prim p)
let app ?loc f args = mk ?loc (App (f, args))
let abs ?loc params body = mk ?loc (Abs (params, body))
let tyabs ?loc tvs body = mk ?loc (TyAbs (tvs, body))
let tyapp ?loc f tys = mk ?loc (TyApp (f, tys))
let let_ ?loc x rhs body = mk ?loc (Let (x, rhs, body))
let tuple ?loc es = mk ?loc (Tuple es)
let nth ?loc e k = mk ?loc (Nth (e, k))
let fix ?loc x ty body = mk ?loc (Fix (x, ty, body))
let if_ ?loc c t e = mk ?loc (If (c, t, e))

(** [nth_path e [n1; ...; nk]] builds [(nth ... (nth e n1) ... nk)] —
    the dictionary-path projections of the paper's MEM and TAPP rules. *)
let nth_path ?loc e path = List.fold_left (fun acc k -> nth ?loc acc k) e path

(* ------------------------------------------------------------------ *)
(* Type operations                                                     *)

let base_equal (a : base) (b : base) = a = b

module Sset = Names.Sset
module Smap = Names.Smap

let rec ftv = function
  | TBase _ -> Sset.empty
  | TVar t -> Sset.singleton t
  | TArrow (args, ret) ->
      List.fold_left
        (fun acc t -> Sset.union acc (ftv t))
        (ftv ret) args
  | TTuple ts ->
      List.fold_left (fun acc t -> Sset.union acc (ftv t)) Sset.empty ts
  | TList t -> ftv t
  | TForall (tvs, body) -> Sset.diff (ftv body) (Sset.of_list tvs)

(** Fresh variant of [x] avoiding [avoid]. *)
let rec freshen avoid x =
  if Sset.mem x avoid then freshen avoid (x ^ "'") else x

(** Capture-avoiding simultaneous substitution of types for type
    variables. *)
let rec subst_ty (s : ty Smap.t) (t : ty) : ty =
  match t with
  | TBase _ -> t
  | TVar a -> ( match Smap.find_opt a s with Some u -> u | None -> t)
  | TArrow (args, ret) -> TArrow (List.map (subst_ty s) args, subst_ty s ret)
  | TTuple ts -> TTuple (List.map (subst_ty s) ts)
  | TList t -> TList (subst_ty s t)
  | TForall (tvs, body) ->
      (* Drop shadowed bindings, then rename binders that would capture. *)
      let s = Smap.filter (fun a _ -> not (List.mem a tvs)) s in
      if Smap.is_empty s then TForall (tvs, body)
      else
        let range_ftv =
          Smap.fold (fun _ u acc -> Sset.union acc (ftv u)) s Sset.empty
        in
        let avoid = ref (Sset.union range_ftv (ftv body)) in
        let renaming, tvs' =
          List.fold_left_map
            (fun ren a ->
              if Sset.mem a range_ftv then begin
                let a' = freshen !avoid a in
                avoid := Sset.add a' !avoid;
                (Smap.add a (TVar a') ren, a')
              end
              else (ren, a))
            Smap.empty tvs
        in
        let body =
          if Smap.is_empty renaming then body else subst_ty renaming body
        in
        TForall (tvs', subst_ty s body)

let subst_ty_list pairs t =
  subst_ty (List.fold_left (fun m (a, u) -> Smap.add a u m) Smap.empty pairs) t

(** Alpha-equivalence of types.  The translation generates fresh binder
    names, so syntactic comparison is too strict; Theorem checking
    compares the F type of a translated term against the translated FG
    type up to alpha. *)
let alpha_equal (a : ty) (b : ty) : bool =
  (* Map each side's binders to shared canonical indices. *)
  let rec go (la : int Smap.t) (lb : int Smap.t) depth a b =
    match (a, b) with
    | TBase x, TBase y -> base_equal x y
    | TVar x, TVar y -> (
        match (Smap.find_opt x la, Smap.find_opt y lb) with
        | Some i, Some j -> i = j
        | None, None -> String.equal x y
        | _ -> false)
    | TArrow (xs, x), TArrow (ys, y) ->
        List.length xs = List.length ys
        && List.for_all2 (go la lb depth) xs ys
        && go la lb depth x y
    | TTuple xs, TTuple ys ->
        List.length xs = List.length ys
        && List.for_all2 (go la lb depth) xs ys
    | TList x, TList y -> go la lb depth x y
    | TForall (xs, x), TForall (ys, y) ->
        List.length xs = List.length ys
        &&
        let la, lb, depth =
          List.fold_left2
            (fun (la, lb, d) xv yv -> (Smap.add xv d la, Smap.add yv d lb, d + 1))
            (la, lb, depth) xs ys
        in
        go la lb depth x y
    | _ -> false
  in
  go Smap.empty Smap.empty 0 a b

let rec ty_size = function
  | TBase _ | TVar _ -> 1
  | TArrow (args, ret) ->
      1 + List.fold_left (fun acc t -> acc + ty_size t) (ty_size ret) args
  | TTuple ts -> 1 + List.fold_left (fun acc t -> acc + ty_size t) 0 ts
  | TList t -> 1 + ty_size t
  | TForall (tvs, body) -> 1 + List.length tvs + ty_size body

(* ------------------------------------------------------------------ *)
(* Expression helpers                                                  *)

let rec exp_size e =
  match e.desc with
  | Var _ | Lit _ | Prim _ -> 1
  | App (f, args) ->
      1 + List.fold_left (fun acc a -> acc + exp_size a) (exp_size f) args
  | Abs (_, body) -> 1 + exp_size body
  | TyAbs (_, body) -> 1 + exp_size body
  | TyApp (f, _) -> 1 + exp_size f
  | Let (_, rhs, body) -> 1 + exp_size rhs + exp_size body
  | Tuple es -> 1 + List.fold_left (fun acc a -> acc + exp_size a) 0 es
  | Nth (e, _) -> 1 + exp_size e
  | Fix (_, _, body) -> 1 + exp_size body
  | If (c, t, e) -> 1 + exp_size c + exp_size t + exp_size e

(** Structural equality of expressions, ignoring locations.  (Not up to
    alpha; used by tests on deterministic pipeline output.) *)
let rec exp_equal (a : exp) (b : exp) =
  match (a.desc, b.desc) with
  | Var x, Var y -> String.equal x y
  | Lit x, Lit y -> x = y
  | Prim x, Prim y -> String.equal x y
  | App (f, xs), App (g, ys) ->
      exp_equal f g && List.length xs = List.length ys
      && List.for_all2 exp_equal xs ys
  | Abs (ps, x), Abs (qs, y) ->
      List.length ps = List.length qs
      && List.for_all2
           (fun (p, t) (q, u) -> String.equal p q && alpha_equal t u)
           ps qs
      && exp_equal x y
  | TyAbs (ts, x), TyAbs (us, y) -> ts = us && exp_equal x y
  | TyApp (f, ts), TyApp (g, us) ->
      exp_equal f g && List.length ts = List.length us
      && List.for_all2 alpha_equal ts us
  | Let (x, r1, b1), Let (y, r2, b2) ->
      String.equal x y && exp_equal r1 r2 && exp_equal b1 b2
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 exp_equal xs ys
  | Nth (x, i), Nth (y, j) -> i = j && exp_equal x y
  | Fix (x, t, b1), Fix (y, u, b2) ->
      String.equal x y && alpha_equal t u && exp_equal b1 b2
  | If (c1, t1, e1), If (c2, t2, e2) ->
      exp_equal c1 c2 && exp_equal t1 t2 && exp_equal e1 e2
  | _ -> false

(** Free term variables of an expression. *)
let rec free_vars e =
  match e.desc with
  | Var x -> Sset.singleton x
  | Lit _ | Prim _ -> Sset.empty
  | App (f, args) ->
      List.fold_left
        (fun acc a -> Sset.union acc (free_vars a))
        (free_vars f) args
  | Abs (params, body) ->
      Sset.diff (free_vars body) (Sset.of_list (List.map fst params))
  | TyAbs (_, body) -> free_vars body
  | TyApp (f, _) -> free_vars f
  | Let (x, rhs, body) ->
      Sset.union (free_vars rhs) (Sset.remove x (free_vars body))
  | Tuple es ->
      List.fold_left (fun acc a -> Sset.union acc (free_vars a)) Sset.empty es
  | Nth (e0, _) -> free_vars e0
  | Fix (x, _, body) -> Sset.remove x (free_vars body)
  | If (c, t, f) ->
      Sset.union (free_vars c) (Sset.union (free_vars t) (free_vars f))

(** Capture-avoiding simultaneous substitution of expressions for term
    variables.  Binders that would capture a free variable of an image
    are renamed (the specializing backend substitutes dictionary
    atoms — spine-level names — under user-named lambdas). *)
let subst_exp (s0 : exp Smap.t) (e0 : exp) : exp =
  let range_fv s =
    Smap.fold (fun _ img acc -> Sset.union acc (free_vars img)) s Sset.empty
  in
  let rec go s e =
    if Smap.is_empty s then e
    else
      (* Refresh binder list [xs] against the live substitution: drop
         shadowed entries, rename binders that would capture an image
         variable.  Returns the adjusted substitution and binders. *)
      let binders s xs body =
        let s = Smap.filter (fun x _ -> not (List.mem x xs)) s in
        if Smap.is_empty s then (s, xs)
        else
          let rfv = range_fv s in
          let avoid =
            ref
              (Sset.union rfv
                 (Sset.union (free_vars body) (Sset.of_list xs)))
          in
          List.fold_left_map
            (fun s x ->
              if Sset.mem x rfv then begin
                let x' = freshen !avoid x in
                avoid := Sset.add x' !avoid;
                (Smap.add x (var x') s, x')
              end
              else (s, x))
            s xs
      in
      let desc =
        match e.desc with
        | Var x -> (
            match Smap.find_opt x s with
            | Some img -> img.desc
            | None -> e.desc)
        | (Lit _ | Prim _) as d -> d
        | App (f, args) -> App (go s f, List.map (go s) args)
        | Abs (params, body) ->
            let s', names = binders s (List.map fst params) body in
            let params' =
              List.map2 (fun (_, t) x -> (x, t)) params names
            in
            Abs (params', go s' body)
        | TyAbs (tvs, body) -> TyAbs (tvs, go s body)
        | TyApp (f, tys) -> TyApp (go s f, tys)
        | Let (x, rhs, body) ->
            let s', names = binders s [ x ] body in
            let x' = List.hd names in
            Let (x', go s rhs, go s' body)
        | Tuple es -> Tuple (List.map (go s) es)
        | Nth (e1, k) -> Nth (go s e1, k)
        | Fix (x, t, body) ->
            let s', names = binders s [ x ] body in
            Fix (List.hd names, t, go s' body)
        | If (c, t, f) -> If (go s c, go s t, go s f)
      in
      { e with desc }
  in
  go s0 e0

(** Substitute types for type variables throughout an expression
    (needed by type application in the substitution-based small-step
    semantics). *)
let rec subst_ty_exp (s : ty Smap.t) (e : exp) : exp =
  let sub = subst_ty s in
  let desc =
    match e.desc with
    | (Var _ | Lit _ | Prim _) as d -> d
    | App (f, args) ->
        App (subst_ty_exp s f, List.map (subst_ty_exp s) args)
    | Abs (params, body) ->
        Abs (List.map (fun (x, t) -> (x, sub t)) params, subst_ty_exp s body)
    | TyAbs (tvs, body) ->
        let s = Smap.filter (fun a _ -> not (List.mem a tvs)) s in
        TyAbs (tvs, subst_ty_exp s body)
    | TyApp (f, tys) -> TyApp (subst_ty_exp s f, List.map sub tys)
    | Let (x, rhs, body) -> Let (x, subst_ty_exp s rhs, subst_ty_exp s body)
    | Tuple es -> Tuple (List.map (subst_ty_exp s) es)
    | Nth (e, k) -> Nth (subst_ty_exp s e, k)
    | Fix (x, t, body) -> Fix (x, sub t, subst_ty_exp s body)
    | If (c, t, e) ->
        If (subst_ty_exp s c, subst_ty_exp s t, subst_ty_exp s e)
  in
  { e with desc }
