lib/fg/graph_lib.mli:
