(* Tests for implicit instantiation (Section 6 future work, implemented
   in the decidable first-order-matching restriction): type arguments
   of a generic application are inferred from the argument types; the
   elaborated program carries the explicit instantiation, so the direct
   interpreter, the translation, and the theorem checks all run on it. *)

open Fg_core

let check body expected =
  match Pipeline.run_result ~file:"implicit" (Prelude.wrap body) with
  | Ok out ->
      Alcotest.(check string) body expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" body (Fg_util.Diag.to_string d)

let check_raw src expected =
  match Pipeline.run_result ~file:"implicit" src with
  | Ok out ->
      Alcotest.(check string) src expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" src (Fg_util.Diag.to_string d)

let check_fails src fragment =
  match Pipeline.run_result ~file:"implicit" src with
  | Ok out ->
      Alcotest.failf "%s: expected failure, got %s" src
        (Interp.flat_to_string out.value)
  | Error d ->
      if not (Astring_contains.contains ~needle:fragment d.message) then
        Alcotest.failf "%s: wrong message: %s" src d.message

let l = Prelude.int_list

let test_basic () =
  check (Printf.sprintf "accumulate(%s)" (l [ 1; 2; 3 ])) "6";
  check (Printf.sprintf "contains(%s, 2)" (l [ 1; 2 ])) "true";
  check (Printf.sprintf "count(%s, 1)" (l [ 1; 1; 2 ])) "2"

let test_infer_through_constructors () =
  (* the iterator parameter is inferred from a list-typed argument *)
  check (Printf.sprintf "accumulate_iter(%s)" (l [ 4; 5 ])) "9";
  (* multiple parameters at once *)
  check
    (Printf.sprintf "merge(%s, %s, nil[int])" (l [ 1; 3 ]) (l [ 2 ]))
    "[1, 2, 3]";
  check (Printf.sprintf "equal_ranges(%s, %s)" (l [ 1 ]) (l [ 1 ])) "true"

let test_partial_signature () =
  (* only the first parameter mentions t; the second is ground *)
  check "power(7, 2)" "14"

let test_mixed_with_explicit () =
  (* explicit instantiation still works alongside *)
  check (Printf.sprintf "accumulate[int](%s) + accumulate(%s)" (l [ 1 ]) (l [ 2 ]))
    "3"

let test_higher_order_argument () =
  (* inference through a function-typed parameter *)
  check_raw
    {|let apply = tfun a b => fun (f : fn(a) -> b, x : a) => f(x) in
apply(fun (n : int) => n + 1, 41)|}
    "42"

let test_inference_conflict () =
  check_fails
    {|let pick = tfun a => fun (x : a, y : a) => x in
pick(1, true)|}
    "matched both"

let test_underdetermined () =
  check_fails
    {|let weird = tfun t => fun (x : int) => x in
weird(1)|}
    "cannot infer type argument 't'"

let test_constraints_still_checked () =
  check_fails
    {|concept Num<t> { add : fn(t, t) -> t; } in
let double = tfun t where Num<t> => fun (x : t) => Num<t>.add(x, x) in
double(true)|}
    "no model of Num<bool>"

let test_elaborated_term_is_explicit () =
  (* the elaborated output contains the inferred [int] *)
  let src = Prelude.wrap (Printf.sprintf "accumulate(%s)" (l [ 1 ])) in
  let _, elaborated, _ = Check.elaborate (Parser.exp_of_string src) in
  let rendered = Pretty.exp_to_flat_string elaborated in
  Alcotest.(check bool) "explicit instantiation present" true
    (Astring_contains.contains ~needle:"accumulate[int](" rendered)

let test_nested_generic_implicit () =
  (* a generic function calling another one implicitly: inference
     resolves against the caller's binder *)
  check_raw
    {|concept Num<t> { add : fn(t, t) -> t; } in
let double = tfun t where Num<t> => fun (x : t) => Num<t>.add(x, x) in
let quad = tfun u where Num<u> => fun (y : u) => double(double(y)) in
model Num<int> { add = iadd; } in
quad(5)|}
    "20"

let test_value_restriction_on_return_only () =
  (* a generic whose parameter types don't mention the binder at all
     cannot be inferred *)
  check_fails
    {|let mk = tfun t => fun (n : int) => nil[t] in
mk(3)|}
    "cannot infer"

let suite =
  [
    Alcotest.test_case "basic inference" `Quick test_basic;
    Alcotest.test_case "inference through constructors" `Quick
      test_infer_through_constructors;
    Alcotest.test_case "partially generic signature" `Quick
      test_partial_signature;
    Alcotest.test_case "mixed with explicit" `Quick test_mixed_with_explicit;
    Alcotest.test_case "higher-order argument" `Quick
      test_higher_order_argument;
    Alcotest.test_case "conflicting constraints" `Quick
      test_inference_conflict;
    Alcotest.test_case "underdetermined binder" `Quick test_underdetermined;
    Alcotest.test_case "where clause still checked" `Quick
      test_constraints_still_checked;
    Alcotest.test_case "elaboration inserts explicit tyapp" `Quick
      test_elaborated_term_is_explicit;
    Alcotest.test_case "generic calling generic implicitly" `Quick
      test_nested_generic_implicit;
    Alcotest.test_case "return-only binder not inferable" `Quick
      test_value_restriction_on_return_only;
  ]
