(** Client side of the [fgc serve] wire protocol: blocking
    single-request calls and a pipelined batch mode that streams many
    requests through one connection with a bounded in-flight window,
    out-of-order response matching by id, bounded overload retries,
    and request-order results. *)

type conn

exception Client_error of string

(** All failures (connect, framing, bad responses) raise
    {!Client_error} with a human-readable message. *)

val connect : ?max_frame:int -> Server.address -> conn

val close : conn -> unit

(** Send one request (no wait). *)
val send : conn -> Protocol.request -> unit

(** Send one raw payload as a frame / raw bytes on the wire — for
    tests and the CI probe that deliberately violate the protocol. *)
val send_raw_frame : conn -> string -> unit

val send_raw_bytes : conn -> string -> unit

(** Block until the next complete response frame. *)
val read_response : conn -> Protocol.response

(** Send, then read the matching response (checks the id echo). *)
val request : conn -> Protocol.request -> Protocol.response

val default_window : int

(** [batch c reqs] — pipeline every request through [c] with at most
    [window] in flight; overloaded requests are retried up to
    [overload_retries] times with a small pause.  Results come back in
    request order carrying the caller's original ids. *)
val batch :
  ?window:int -> ?overload_retries:int -> conn -> Protocol.request list ->
  Protocol.response list

val stats : conn -> Protocol.response
val shutdown : conn -> Protocol.response

val run_file :
  conn -> ?timeout_ms:int -> ?prelude:bool -> ?global_models:bool ->
  file:string -> string -> Protocol.response
