(** Typing environments for System FG.

    The paper's environment Γ has four parts (Section 4): term-variable
    type assignments, type variables in scope, concept information, and
    model information — where each model records the dictionary variable
    and the path to its dictionary within it.  With associated types
    (Section 5), Γ additionally carries type equalities and each model
    records its associated-type assignment.

    Environments are persistent; declaration forms extend them for the
    scope of their body only, which is precisely what gives FG its
    lexically scoped (and shadowable, and overlappable) models. *)

open Ast
open Fg_util
module Smap = Names.Smap
module Sset = Names.Sset

(* Model-resolution outcomes are prime fuzzing real estate: scoped
   shadowing, parameterized matching and failed lookups are where
   coherence bugs live, so each outcome is a coverage point. *)
let probe_resolve_ground = Coverage.probe "resolve.found.ground"
let probe_resolve_param = Coverage.probe "resolve.found.param"
let probe_resolve_none = Coverage.probe "resolve.none"

type model_entry = {
  me_concept : string;
  me_params : string list;
      (** binders of a parameterized model ([model <t> where ... =>
          C<pattern>]); empty for ground models and proxies *)
  me_constrs : constr list;  (** a parameterized model's own context *)
  me_args : ty list;
      (** the modeled types; patterns over [me_params] when
          parameterized *)
  me_dict : string;  (** dictionary variable in the System F output *)
  me_path : int list;  (** projection path to this model's dictionary *)
  me_assoc : ty Smap.t;
      (** this model's own associated types: name -> assigned type (a
          concrete type for declared models, possibly mentioning
          [me_params]; a fresh type variable for the proxy models
          introduced by where clauses) *)
  me_proxy : bool;  (** true for where-clause proxies *)
}

(** A successful model lookup: the entry plus, for parameterized
    models, the matching substitution for its parameters. *)
type found_model = { fm_entry : model_entry; fm_subst : (string * ty) list }

type t = {
  vars : ty Smap.t;
  tyvars : Sset.t;
  concepts : concept_decl Smap.t;
  models : model_entry list;  (** newest first; lookup order = shadowing *)
  named_models : model_entry Smap.t;
      (** named models (Section 6): declared but only active under
          [using] *)
  eq : Equality.t;
  gensym : Gensym.t;  (** shared fresh-name supply for the translation *)
  resolution : Resolution.mode;
  escape_check : bool;
      (** enforce the CPT side condition [c ∉ CV(τ)] — on by default;
          tools may disable it to inspect generic values whose types
          mention locally declared concepts *)
  global_models : (string * ty list) list ref;
      (** all models ever declared, program-wide — used only by the
          Haskell-style {!Resolution.Global} ablation's overlap check *)
  scope_gen : int;
      (** identifies this environment's (models, eq) pair: bumped by
          every extension that can change what {!lookup_model} sees, so
          the resolution cache can key results by scope *)
  gen_supply : int ref;  (** shared generation supply, never rewound *)
  resolve_cache : (int * string * ty list, found_model option) Hashtbl.t;
      (** memoized model resolution, keyed on (scope generation,
          concept, raw argument types); shared by every environment
          derived from the same {!create} — in particular by every
          program checked against one session's prelude scope *)
  diag : Diag.engine ref;
      (** warning sink, shared by every environment derived from the
          same {!create}; recovering drivers swap in their own engine
          for the duration of a run *)
  family : int;
      (** uniquely names the {!create} call this environment derives
          from.  Closures produced while checking under one family
          (declaration wrappers, cached compilation units) may capture
          environments and their shared mutable state (the gensym, the
          resolution cache), so they are only replayable under the same
          family — {!Fg_core.Unit} keys its cache on this. *)
}

let family_supply = Atomic.make 0

let create ?(resolution = Resolution.Lexical) ?(escape_check = true) () =
  {
    vars = Smap.empty;
    tyvars = Sset.empty;
    concepts = Smap.empty;
    models = [];
    named_models = Smap.empty;
    eq = Equality.empty;
    gensym = Gensym.create ();
    resolution;
    escape_check;
    global_models = ref [];
    scope_gen = 0;
    gen_supply = ref 0;
    resolve_cache = Hashtbl.create 256;
    diag = ref (Diag.engine ());
    family = Atomic.fetch_and_add family_supply 1;
  }

(* A fresh scope generation.  The supply is shared and monotone, so a
   generation uniquely names one (models, eq) pair for the lifetime of
   the cache — results recorded under one scope can never answer a
   lookup made under another (e.g. two programs declaring different
   models of the same concept each get private generations). *)
let next_gen env = { env with scope_gen = (incr env.gen_supply; !(env.gen_supply)) }

(* ------------------------------------------------------------------ *)
(* Extension                                                           *)

let bind_var env x t = { env with vars = Smap.add x t env.vars }

let bind_tyvars env tvs =
  { env with tyvars = List.fold_left (fun s t -> Sset.add t s) env.tyvars tvs }

let bind_concept env (d : concept_decl) =
  { env with concepts = Smap.add d.c_name d env.concepts }

let bind_model env me = next_gen { env with models = me :: env.models }

let bind_named_model env name me =
  (* named models are inert until [using] activates them (which goes
     through {!bind_model}), so the scope generation is unchanged *)
  { env with named_models = Smap.add name me env.named_models }

let lookup_named_model env name = Smap.find_opt name env.named_models

let assume env a b = next_gen { env with eq = Equality.assume env.eq a b }

let assume_all env pairs =
  next_gen { env with eq = Equality.assume_all env.eq pairs }

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

let lookup_var env x = Smap.find_opt x env.vars

let tyvar_in_scope env a = Sset.mem a env.tyvars

let lookup_concept env c = Smap.find_opt c env.concepts

let concept_names env = List.map fst (Smap.bindings env.concepts)
let var_names env = List.map fst (Smap.bindings env.vars)

let lookup_concept_exn ?loc env c =
  match lookup_concept env c with
  | Some d -> d
  | None ->
      let notes =
        match Strutil.nearest ~candidates:(concept_names env) c with
        | Some near -> [ Diag.suggest near ]
        | None -> []
      in
      Diag.wf_error ~code:"FG0202" ~notes ?loc "unknown concept '%s'" c

(* Resolution depth fuse: parameterized models can require instances of
   themselves at larger types, and ill-behaved sets of models could
   diverge; bound the recursion and report rather than loop. *)
let max_resolution_depth = 64

let check_depth ?loc depth what =
  if depth > max_resolution_depth then
    Diag.resolve_error ~code:"FG0405" ?loc
      "model resolution exceeded depth %d while resolving %s (diverging \
       parameterized models?)"
      max_resolution_depth what

(** Normalize a type by resolving associated-type projections through
    the models in scope.  Ground models also contribute equations to the
    congruence closure, but parameterized models are schematic — one
    declaration covers infinitely many instances — so their projections
    are resolved here, by rewriting, before any equality query. *)
let rec normalize ?loc ?(depth = 0) env (t : ty) : ty =
  check_depth ?loc depth (Pretty.ty_to_string t);
  let norm t = normalize ?loc ~depth env t in
  match t with
  | TBase _ | TVar _ -> t
  | TArrow (args, ret) -> TArrow (List.map norm args, norm ret)
  | TTuple ts -> TTuple (List.map norm ts)
  | TList t -> TList (norm t)
  | TForall _ -> t (* alpha-opaque under equality; leave as written *)
  | TAssoc (c, args, s) -> (
      let args' = List.map norm args in
      match lookup_model ?loc ~depth:(depth + 1) env c args' with
      | Some { fm_entry; fm_subst } -> (
          match Smap.find_opt s fm_entry.me_assoc with
          | Some def ->
              let def' = subst_ty_list fm_subst def in
              if ty_equal def' (TAssoc (c, args', s)) then def'
              else normalize ?loc ~depth:(depth + 1) env def'
          | None -> TAssoc (c, args', s))
      | None -> TAssoc (c, args', s))

(** Find the innermost model of [c<args>] in scope.  Ground models and
    proxies match when their arguments are equal (up to the equality
    relation); parameterized models match when their argument patterns
    match and their own requirements resolve recursively.
    Innermost-first search implements lexical shadowing (Section 3.2). *)
and lookup_model ?loc ?(depth = 0) env c args : found_model option =
  Telemetry.record_model_lookup ();
  let key = (env.scope_gen, c, args) in
  match Hashtbl.find_opt env.resolve_cache key with
  | Some r ->
      Telemetry.record_resolve_hit ();
      r
  | None ->
      Telemetry.record_resolve_miss ();
      let r = lookup_model_uncached ?loc ~depth env c args in
      (* only reached when the search terminated (the depth fuse raises
         out of here), so the recorded result is depth-independent *)
      (* Coverage at the miss site only: cache hits replay a decision
         already counted, and the fuzzer measures per-program on fresh
         sessions anyway. *)
      (match r with
      | Some fm when fm.fm_entry.me_params = [] ->
          Coverage.hit probe_resolve_ground
      | Some _ -> Coverage.hit probe_resolve_param
      | None -> Coverage.hit probe_resolve_none);
      (* Workload profiles count successful resolutions at the same
         miss-only site, so the hot list ranks fresh decisions, not
         cache replays. *)
      (if r <> None && Profile.collecting () then
         Profile.record_resolution
           (Pretty.constr_to_string (CModel (c, args))));
      Hashtbl.replace env.resolve_cache key r;
      r

and lookup_model_uncached ?loc ~depth env c args : found_model option =
  check_depth ?loc depth (Pretty.constr_to_string (CModel (c, args)));
  let args = List.map (normalize ?loc ~depth:(depth + 1) env) args in
  List.find_map
    (fun me ->
      if not (String.equal me.me_concept c) then None
      else if me.me_params = [] then
        if
          List.length me.me_args = List.length args
          && List.for_all2
               (fun a b ->
                 Equality.equal env.eq
                   (normalize ?loc ~depth:(depth + 1) env a)
                   b)
               me.me_args args
        then Some { fm_entry = me; fm_subst = [] }
        else None
      else
        match match_args ?loc ~depth env me.me_params me.me_args args with
        | None -> None
        | Some subst ->
            if
              List.for_all
                (fun constr ->
                  match subst_constr_list subst constr with
                  | CModel (c', args') ->
                      lookup_model ?loc ~depth:(depth + 1) env c' args'
                      <> None
                  | CSame (a, b) ->
                      Equality.equal env.eq
                        (normalize ?loc ~depth:(depth + 1) env a)
                        (normalize ?loc ~depth:(depth + 1) env b))
                me.me_constrs
            then Some { fm_entry = me; fm_subst = subst }
            else None)
    env.models

(* One-way matching of a parameterized model's argument patterns against
   (already normalized) actual types.  Pattern positions without pattern
   variables are compared up to the equality relation; constructor
   positions above pattern variables are matched structurally against
   the representative of the actual type. *)
and match_args ?loc ~depth env params pats args : (string * ty) list option =
  let param_set = Sset.of_list params in
  let has_param t = not (Sset.is_empty (Sset.inter (ftv t) param_set)) in
  let rec go subst pat arg =
    match pat with
    | TVar a when Sset.mem a param_set -> (
        match List.assoc_opt a subst with
        | Some bound ->
            if Equality.equal env.eq bound arg then Some subst else None
        | None -> Some ((a, arg) :: subst))
    | _ when not (has_param pat) ->
        if
          Equality.equal env.eq (normalize ?loc ~depth:(depth + 1) env pat) arg
        then Some subst
        else None
    | _ -> (
        let arg = Equality.repr env.eq arg in
        match (pat, arg) with
        | TList p, TList a -> go subst p a
        | TArrow (ps, pr), TArrow (as_, ar)
          when List.length ps = List.length as_ ->
            go_list subst (ps @ [ pr ]) (as_ @ [ ar ])
        | TTuple ps, TTuple as_ when List.length ps = List.length as_ ->
            go_list subst ps as_
        | TAssoc (pc, ps, psn), TAssoc (ac, as_, asn)
          when String.equal pc ac && String.equal psn asn
               && List.length ps = List.length as_ ->
            go_list subst ps as_
        | _ -> None)
  and go_list subst ps as_ =
    match (ps, as_) with
    | [], [] -> Some subst
    | p :: ps, a :: as_ -> (
        match go subst p a with
        | Some subst -> go_list subst ps as_
        | None -> None)
    | _ -> None
  in
  if List.length pats <> List.length args then None
  else
    match go_list [] pats args with
    | Some subst -> Some subst
    | None -> None

(** All models currently in scope for concept [c] (diagnostics). *)
let models_of_concept env c =
  List.filter (fun me -> String.equal me.me_concept c) env.models

(* List the in-scope candidates (argument patterns included) so a
   near-miss — wrong argument type, missing where-clause — is visible
   without re-reading the program. *)
let no_model_notes env c =
  match models_of_concept env c with
  | [] -> [ Diag.note "no models of %s are in scope" c ]
  | candidates ->
      [
        Diag.note "models of %s in scope: %s" c
          (String.concat ", "
             (List.map
                (fun me ->
                  Pretty.constr_to_string (CModel (me.me_concept, me.me_args)))
                candidates));
      ]

let lookup_model_exn ?loc env c args =
  match lookup_model ?loc env c args with
  | Some fm -> fm
  | None ->
      Diag.resolve_error ~code:"FG0402" ~notes:(no_model_notes env c) ?loc
        "no model of %s in scope"
        (Pretty.constr_to_string (CModel (c, args)))

(** Type equality and representatives, normalizing projections through
    parameterized models first.  These are the operations the checker
    uses everywhere. *)
let ty_eq ?loc env a b =
  ty_equal a b
  || Equality.equal env.eq (normalize ?loc env a) (normalize ?loc env b)

let ty_eq_list ?loc env xs ys =
  List.length xs = List.length ys && List.for_all2 (ty_eq ?loc env) xs ys

let ty_repr ?loc env t = Equality.repr env.eq (normalize ?loc env t)

let fresh env base = Gensym.fresh env.gensym base
