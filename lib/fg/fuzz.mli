(** Property-based fuzzing: a seeded, deterministic generator of
    well-typed-by-construction System FG programs, a greedy shrinker,
    a coverage-guided mutation mode, and a differential oracle harness
    over the paper's theorems.

    Every program is built from a {!Fg_util.Prng} stream split from a
    single integer seed — program [i] of a run is a pure function of
    [(seed, i, size)], independent of evaluation order, domain count
    and sibling programs — and exercises the whole Section 5/6 feature
    surface: refinement diamonds, associated types (including
    concept-level [same] pins), scoped and shadowing models, named
    models activated by [using], parameterized models at [list t],
    nested and multi-parameter [tfun … where] abstractions, implicit
    instantiation, member defaults and type aliases.

    Each generated program is checked against three oracles:

    - {b agreement} — {!Theorems.check_agreement} through the
      {!Session} batch machinery (Theorems 1/2 plus semantic agreement
      of the direct interpreter and the evaluated translation), fanned
      out over OCaml 5 domains;
    - {b roundtrip} — the pretty-printed source re-parses to the same
      AST ({!Ast.exp_equal}, locations ignored);
    - {b recovery} — deterministically corrupted variants must report
      diagnostics through the recovering pipeline: never crash, never
      succeed.

    {b Guided mode} ([guided = true], implied by [corpus_dir]) turns
    the run into a coverage search: each candidate — a mutation of a
    minimized corpus entry (declaration splice/drop, type-argument
    swap, model shadow/unshadow, where-clause add/drop), or a blind
    generation when the corpus is dry — is measured against the
    process-wide {!Fg_util.Coverage} map, and inputs that reach new
    decision points are minimized and admitted to the corpus.
    Measurement is strictly sequential, so the reported coverage map
    and the corpus contents are byte-identical across runs and across
    domain counts.  Corpus mutants need not be well typed: a rejection
    carrying error diagnostics is explored error space, and only
    crashes and silent rejections fail the oracle.

    Failures are minimized by a greedy shrinker (declaration deletion
    and subterm replacement, every candidate re-validated through the
    checker and the failing oracle) before being reported. *)

type config = {
  seed : int;  (** master seed; the whole run is a function of it *)
  count : int;  (** number of programs to generate *)
  size : int;  (** size budget per program (AST-node scale) *)
  mutants : int;  (** corrupted variants per program (recovery oracle) *)
  backend : Backend.t;
      (** backend for the agreement oracle's sessions: off
          {!Backend.Dict}, every generated program additionally runs
          the specializer and its typecheck/byte-identity oracle, so a
          fuzz batch doubles as a differential test of stenciling *)
  profile : Fg_util.Profile.t option;
      (** workload profile for the sessions — the [guided] backend
          stencils only the instantiations it marks hot, so a fuzz
          batch under a recorded profile differentially tests exactly
          the hot/cold split production would use *)
  guided : bool;  (** coverage-guided mutation instead of blind generation *)
  corpus_dir : string option;
      (** on-disk corpus of minimized coverage-adding inputs (entries
          are [<md5-of-source>.fg], written atomically); implies
          [guided] *)
}

val default_config : config

(** Where a candidate came from: the blind generator, or a mutation of
    a corpus entry. *)
type origin = Gen | Corpus

val origin_name : origin -> string

type program = {
  p_index : int;  (** position in the run: stream [split_nth seed i] *)
  p_origin : origin;
  p_ast : Ast.exp;
  p_source : string;  (** pretty-printed concrete syntax *)
}

(** Generate program [index] of a run — pure and deterministic. *)
val generate : config -> index:int -> program

type oracle = Agreement | Roundtrip | Recovery

val oracle_name : oracle -> string

type failure = {
  f_index : int;  (** index of the generated program *)
  f_origin : origin;
  f_oracle : oracle;
  f_message : string;
  f_source : string;  (** the offending source (the mutant, for recovery) *)
  f_shrunk : string;  (** minimized source, still failing the oracle *)
  f_shrunk_nodes : int;  (** {!Ast.exp_size} of the minimized program *)
}

type report = {
  r_config : config;
  r_generated : int;
  r_mutants_run : int;
  r_failures : failure list;  (** in program order; empty on a clean run *)
  r_coverage : Fg_util.Coverage.map;
      (** guided: union of the per-candidate coverage deltas; blind: the
          whole-run snapshot delta (measured but never guided on, and
          kept out of the JSON report) *)
  r_corpus_size : int;  (** distinct corpus entries after the run *)
  r_corpus_added : int;  (** entries this run admitted *)
  r_from_corpus : int;  (** candidates that were corpus mutations *)
  r_corpus_entries : (string * string) list;
      (** [(digest, source)] of the entries this run admitted — what a
          fuzz worker offers the fleet via [fuzz_batch] *)
}

(** Run the whole harness: generate (or, guided, mutate) [config.count]
    programs, check the three oracles (agreement fanned out over
    [domains] OCaml domains via {!Session.run_batch}), shrink any
    failures.  Output — including the guided-mode coverage map and
    corpus — is independent of [domains].  Does not raise on oracle
    failures — they come back in the report. *)
val run : ?domains:int -> config -> report

(** Greedy shrink: repeatedly apply the smallest still-failing
    one-step rewrite (declaration deletion, subterm hoisting, literal
    replacement) until a fixpoint.  [still_fails] must hold of the
    initial program.  [fuel] bounds the number of candidate
    evaluations (default 1500; corpus admission uses a much smaller
    budget). *)
val shrink : ?fuel:int -> still_fails:(Ast.exp -> bool) -> Ast.exp -> Ast.exp

(** Load an on-disk corpus: the [(digest, source)] of every [*.fg]
    entry under [dir], sorted by digest ([] if [dir] is missing). *)
val corpus_load : dir:string -> (string * string) list

(** Write one corpus entry (atomic temp-file + rename; a no-op when
    the digest is already present).  Creates [dir] if missing. *)
val corpus_write : dir:string -> digest:string -> string -> unit

(** The digest naming corpus entries: MD5 hex of the source bytes. *)
val corpus_digest : string -> string

(** The stable machine-readable shape of a run (see docs/LANGUAGE.md):
    [{"fuzz": {"seed", "count", "size", "mutants"}, "generated",
    "mutants_run", "ok", "failures": [{"index", "oracle", "message",
    "source", "shrunk", "shrunk_nodes"}]}].  Guided runs additionally
    carry ["coverage"] ([distinct]/[total]/[map]) and ["corpus"]
    ([size]/[added]/[from_corpus]) objects, ["guided": true] in the
    config, and an ["origin"] field on corpus-mutant failures. *)
val report_to_json : report -> Fg_util.Json.t

(** Write each failure's shrunk and original sources under [dir] (as
    [fuzz-<seed>-<index>-<oracle>.fg] with the original attached in a
    trailing comment); returns the paths written, in report order.
    Creates [dir] if missing. *)
val save_failures : dir:string -> report -> string list
