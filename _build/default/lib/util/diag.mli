(** Diagnostics: located errors raised by every phase of the pipeline.
    All user-facing failures are an {!Error} carrying a span, a phase
    tag and a message; internal invariant violations use {!ice}. *)

type phase =
  | Lexer
  | Parser
  | Wf  (** well-formedness of types, concepts and models *)
  | Typecheck
  | Resolve  (** model lookup / where-clause satisfaction *)
  | Translate
  | Eval
  | Internal

val phase_name : phase -> string

type diagnostic = { phase : phase; loc : Loc.t; message : string }

exception Error of diagnostic

val pp : diagnostic Fmt.t
val to_string : diagnostic -> string

(** Raise a located diagnostic with a format string. *)
val error : ?loc:Loc.t -> phase -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val lex_error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val parse_error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val wf_error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val type_error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val resolve_error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val translate_error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val eval_error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Internal invariant violation; not attributable to the program. *)
val ice : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [guard cond phase fmt ...] raises unless [cond] holds. *)
val guard : bool -> ?loc:Loc.t -> phase -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Run and capture any diagnostic as [Error]. *)
val protect : (unit -> 'a) -> ('a, diagnostic) result

val protect_msg : (unit -> 'a) -> ('a, string) result
