(* One algorithm, three algebras: semiring-generic matrix algebra.

   Run with:  dune exec examples/semirings.exe

   The library's generic mat_mul is constrained only by a Semiring
   concept.  Instantiated under three NAMED models (the Section 6
   named-models extension — `arith` and `tropical` overlap at int, so
   explicit `using` selection is exactly what is needed):

     arith     (+, ×, 0, 1)        -> ordinary linear algebra
     boolean   (∨, ∧, false, true) -> graph reachability
     tropical  (min, +, ∞, 0)      -> shortest paths

   This is the classic demonstration that generic programming is about
   algebraic structure — the paper's Monoid discussion (Section 3.1),
   taken to its natural conclusion. *)

module C = Fg_core

let banner s = Fmt.pr "@.=== %s ===@." s

(* One session over the matrix library: concepts, the three named
   semiring models and mat_mul are checked once, shared by every
   [show]. *)
let session = C.Session.create ~prelude:C.Matrix_lib.full ()

let show label body =
  let out = C.Session.run ~file:"semirings" session body in
  Fmt.pr "%-34s = %a@." label C.Interp.pp_flat out.value

let () =
  Fmt.pr "The Semiring concept and its three named models (FG source):@.%s%s@."
    C.Matrix_lib.concepts C.Matrix_lib.models;

  banner "arith: ordinary matrix algebra";
  let a = C.Matrix_lib.int_matrix [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = C.Matrix_lib.int_matrix [ [ 5; 6 ]; [ 7; 8 ] ] in
  show "A * B" (Printf.sprintf "using arith in mat_mul[int](%s, %s)" a b);
  show "A^2" (Printf.sprintf "using arith in mat_pow[int](%s, 2, 2)" a);
  show "transpose A" (Printf.sprintf "using arith in transpose[int](%s)" a);
  show "identity 3" "using arith in identity_matrix[int](3)";

  banner "boolean: the SAME mat_pow computes reachability";
  (* cycle 1 -> 2 -> 3 -> 1 *)
  let g =
    C.Matrix_lib.bool_matrix
      [
        [ false; true; false ]; [ false; false; true ]; [ true; false; false ];
      ]
  in
  show "adjacency A" (Printf.sprintf "using boolean in mat_pow[bool](%s, 3, 1)" g);
  show "A^2 (2-step paths)"
    (Printf.sprintf "using boolean in mat_pow[bool](%s, 3, 2)" g);
  show "A^3 (back to self)"
    (Printf.sprintf "using boolean in mat_pow[bool](%s, 3, 3)" g);

  banner "tropical: the SAME mat_mul computes shortest paths";
  let inf = 1000000 in
  let w =
    C.Matrix_lib.int_matrix
      [ [ 0; 3; 100 ]; [ inf; 0; 4 ]; [ inf; inf; 0 ] ]
  in
  Fmt.pr "weights: 1 -3-> 2 -4-> 3, plus a costly direct edge 1 -100-> 3@.";
  show "W (direct hops)"
    (Printf.sprintf "using tropical in mat_pow[int](%s, 3, 1)" w);
  show "W^2 (<= 2 hops: 1->3 now 7)"
    (Printf.sprintf "using tropical in mat_mul[int](%s, %s)" w w);

  Fmt.pr
    "@.`arith` and `tropical` both model Semiring<int> — overlapping@.\
     models, selected explicitly by name with `using`, which is the@.\
     named-models extension doing exactly the job the paper assigns it.@."
