(* Multi-error recovery: one invocation of the recovering pipeline
   reports every independent error (with its stable code and span),
   suppresses cascades from poisoned bindings, and collects warnings
   even when the program succeeds. *)

open Fg_core
module Diag = Fg_util.Diag

let report_of ?resolution src =
  Pipeline.run_full ~file:"rec" ?resolution src

let codes_of (r : Session.run_report) =
  List.map (fun (d : Diag.diagnostic) -> d.code) r.diagnostics

let errors_of (r : Session.run_report) =
  List.filter
    (fun (d : Diag.diagnostic) -> d.severity = Diag.Err)
    r.diagnostics

let check_codes name src expected =
  let r = report_of src in
  Alcotest.(check (list string)) name expected (codes_of r)

(* Five independent errors across four phases — lexer, parser, wf,
   typecheck, resolve — all from one run. *)
let test_multi_phase () =
  let src =
    {|concept N<t> { m : t; } in
let a = $1 in
let b = in
let c = fun (x : nope) => x in
let d = 1 + true in
N<int>.m|}
  in
  let r = report_of src in
  Alcotest.(check bool) "no outcome" true (r.Session.outcome = None);
  Alcotest.(check (list string))
    "all five, in source order"
    [ "FG0001"; "FG0101"; "FG0207"; "FG0303"; "FG0402" ]
    (codes_of r);
  (* every diagnostic carries a real span *)
  List.iter
    (fun (d : Diag.diagnostic) ->
      Alcotest.(check bool) "has span" false (Fg_util.Loc.is_dummy d.loc))
    r.Session.diagnostics

(* A failed declaration poisons its binding: uses of the binding do not
   produce follow-on garbage, so exactly one error surfaces. *)
let test_cascade_suppressed () =
  let r = report_of "let x = unknown_thing in let y = x + 1 in y" in
  Alcotest.(check int) "one error" 1 (List.length (errors_of r));
  Alcotest.(check (list string)) "the root cause" [ "FG0302" ] (codes_of r)

(* Same for parse failures: the spine after a bad declaration is kept,
   so later independent errors still surface, but uses of the dropped
   binding stay quiet. *)
let test_parse_poison () =
  let r = report_of "let b = in let c = b + true in 0" in
  Alcotest.(check (list string)) "parse error only, use of b quiet"
    [ "FG0101" ] (codes_of r)

(* The residual expression after a failed declaration is still checked. *)
let test_residual_checked () =
  check_codes "residual body errors surface" "let b = in 1 + true"
    [ "FG0101"; "FG0303" ]

(* Unbound names come with a nearest-name suggestion when plausible. *)
let test_suggestion () =
  let r = report_of "let accumulate = 1 in acumulate" in
  match errors_of r with
  | [ d ] ->
      Alcotest.(check string) "code" "FG0302" d.Diag.code;
      Alcotest.(check (list string)) "did-you-mean note"
        [ "did you mean 'accumulate'?" ]
        (List.map (fun (n : Diag.note) -> n.Diag.n_msg) d.Diag.notes)
  | ds -> Alcotest.failf "expected one error, got %d" (List.length ds)

(* Failed-resolution errors list the candidate models in scope. *)
let test_candidate_note () =
  let src =
    {|concept N<t> { m : t; } in
model N<bool> { m = true; } in
N<int>.m|}
  in
  let r = report_of src in
  match errors_of r with
  | [ d ] ->
      Alcotest.(check string) "code" "FG0402" d.Diag.code;
      Alcotest.(check bool) "candidate listed" true
        (List.exists
           (fun (n : Diag.note) ->
             Astring_contains.contains ~needle:"N<bool>" n.Diag.n_msg)
           d.Diag.notes)
  | ds -> Alcotest.failf "expected one error, got %d" (List.length ds)

(* FG0701: a ground model that exactly shadows an earlier one warns,
   and the program still runs (warnings are not errors). *)
let test_shadow_warning () =
  let src =
    {|concept N<t> { m : t; } in
model N<int> { m = 1; } in
model N<int> { m = 2; } in
N<int>.m|}
  in
  let r = report_of src in
  (match r.Session.outcome with
  | Some o -> Alcotest.(check bool) "value" true
                (Interp.flat_equal o.Session.value (Interp.FlInt 2))
  | None -> Alcotest.fail "expected success");
  Alcotest.(check (list string)) "shadow warning" [ "FG0701" ] (codes_of r);
  List.iter
    (fun (d : Diag.diagnostic) ->
      Alcotest.(check bool) "is warning" true (d.Diag.severity = Diag.Warn))
    r.Session.diagnostics

(* FG0702: a where-clause constraint whose dictionary is never used. *)
let test_unused_constraint_warning () =
  let src =
    {|concept E<t> { e : t; } in
model E<int> { e = 0; } in
(tfun t where E<t> => fun (x : t) => x)[int](5)|}
  in
  let r = report_of src in
  (match r.Session.outcome with
  | Some o -> Alcotest.(check bool) "value" true
                (Interp.flat_equal o.Session.value (Interp.FlInt 5))
  | None -> Alcotest.fail "expected success");
  Alcotest.(check (list string)) "unused-constraint warning" [ "FG0702" ]
    (codes_of r)

(* ... and a used constraint stays quiet. *)
let test_used_constraint_quiet () =
  let src =
    {|concept E<t> { e : t; } in
model E<int> { e = 7; } in
(tfun t where E<t> => E<t>.e)[int]|}
  in
  let r = report_of src in
  Alcotest.(check (list string)) "no warnings" [] (codes_of r)

(* A clean program through the recovering path matches the strict one. *)
let test_clean_program_agrees () =
  let src = "let x = 6 in x * 7" in
  let r = report_of src in
  Alcotest.(check (list string)) "no diagnostics" [] (codes_of r);
  match (r.Session.outcome, Pipeline.run_result src) with
  | Some a, Ok b ->
      Alcotest.(check bool) "same value" true
        (Interp.flat_equal a.Session.value b.Session.value)
  | _ -> Alcotest.fail "both paths should succeed"

(* Recovery terminates and reports something sensible on garbage. *)
let test_garbage_terminates () =
  let r = report_of ")))] in let ((" in
  Alcotest.(check bool) "errors reported" true
    (List.length (errors_of r) > 0);
  Alcotest.(check bool) "no outcome" true (r.Session.outcome = None)

let suite =
  [
    Alcotest.test_case "multi-phase errors" `Quick test_multi_phase;
    Alcotest.test_case "cascade suppressed" `Quick test_cascade_suppressed;
    Alcotest.test_case "parse poison" `Quick test_parse_poison;
    Alcotest.test_case "residual checked" `Quick test_residual_checked;
    Alcotest.test_case "nearest-name suggestion" `Quick test_suggestion;
    Alcotest.test_case "candidate models note" `Quick test_candidate_note;
    Alcotest.test_case "shadowed model warning" `Quick test_shadow_warning;
    Alcotest.test_case "unused constraint warning" `Quick
      test_unused_constraint_warning;
    Alcotest.test_case "used constraint quiet" `Quick
      test_used_constraint_quiet;
    Alcotest.test_case "clean program agrees" `Quick
      test_clean_program_agrees;
    Alcotest.test_case "garbage terminates" `Quick test_garbage_terminates;
  ]
