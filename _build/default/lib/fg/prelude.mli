(** A standard library written in FG itself: concepts (Eq, Ord,
    Semigroup, Monoid, Group, Iterator, OutputIterator, Container, with
    member defaults), models for the base types, parameterized models
    at [list t], and the generic algorithms the paper's STL motivation
    calls for.  Fragments are concrete-syntax declaration stacks that
    compose by concatenation. *)

val concepts : string
val int_models : string
val bool_models : string
val list_int_models : string
val list_parameterized_models : string
val algorithms : string

(** Everything above, in dependency order. *)
val full : string

(** [wrap body] is a complete program evaluating [body] under {!full}. *)
val wrap : string -> string

(** Concepts only. *)
val wrap_concepts : string -> string

(** A literal [list int] in concrete syntax. *)
val int_list : int list -> string
