(** Recursive-descent parser for System F concrete syntax.

    Grammar (precedence from loosest to tightest):
    {v
    exp  ::= "let" x "=" exp "in" exp
           | "fun" "(" x ":" ty ("," x ":" ty)* ")" ("=>"|".") exp
           | "tfun" tyvar+ ("=>"|".") exp
           | "fix" "(" x ":" ty ")" ("=>"|".") exp
           | "if" exp "then" exp "else" exp
           | binop-expression over postfix
    postfix ::= atom ( "(" exp,* ")" | "[" ty,+ "]" )*
    atom ::= INT | "true" | "false" | "()" | ident
           | "nth" atom INT | "(" exp ("," exp)* ")"
    v}

    Infix arithmetic/comparison/boolean operators are sugar for the
    primitives ([a + b] parses as [iadd(a, b)]).  Primitive names
    ([iadd], [car], ...) are reserved: an identifier matching the
    {!Prims} table always denotes the primitive. *)

open Fg_syntax
open Ast
module P = Parser_base
module T = Token

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let rec parse_ty p : ty =
  match P.peek p with
  | T.KW "forall" ->
      P.skip p;
      let tvs = parse_tyvars p in
      ignore (P.expect p T.DOT);
      TForall (tvs, parse_ty p)
  | T.KW "fn" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      let args =
        if P.eat p T.RPAREN then []
        else
          let args = P.sep_list p ~sep:T.COMMA ~elem:parse_ty in
          ignore (P.expect p T.RPAREN);
          args
      in
      ignore (P.expect p T.ARROW);
      TArrow (args, parse_ty p)
  | _ -> parse_tuple_ty p

and parse_tyvars p =
  let rec go acc =
    match P.peek p with
    | T.LIDENT a ->
        P.skip p;
        go (a :: acc)
    | _ -> List.rev acc
  in
  match P.peek p with
  | T.LIDENT _ -> go []
  | _ -> P.error p "expected type variable"

and parse_tuple_ty p : ty =
  let first = parse_list_ty p in
  if P.eat p T.STAR then
    let rec go acc =
      let t = parse_list_ty p in
      if P.eat p T.STAR then go (t :: acc) else List.rev (t :: acc)
    in
    TTuple (first :: go [])
  else first

and parse_list_ty p : ty =
  if P.at_kw p "list" then begin
    P.skip p;
    TList (parse_atom_ty p)
  end
  else parse_atom_ty p

and parse_atom_ty p : ty =
  match P.peek p with
  | T.KW "int" ->
      P.skip p;
      TBase TInt
  | T.KW "bool" ->
      P.skip p;
      TBase TBool
  | T.KW "unit" ->
      P.skip p;
      TBase TUnit
  | T.KW "list" ->
      P.skip p;
      TList (parse_atom_ty p)
  | T.KW "tuple" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      if P.eat p T.RPAREN then TTuple []
      else begin
        let ts = P.sep_list p ~sep:T.COMMA ~elem:parse_ty in
        ignore (P.expect p T.RPAREN);
        TTuple ts
      end
  | T.LIDENT a ->
      P.skip p;
      TVar a
  | T.LPAREN ->
      P.skip p;
      let t = parse_ty p in
      ignore (P.expect p T.RPAREN);
      t
  | _ -> P.error p "expected a type"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let body_separator p =
  if P.eat p T.DARROW || P.eat p T.DOT then ()
  else P.error p "expected '=>' or '.' before body"

let ident_exp ~loc x = if Prims.is_prim x then prim ~loc x else var ~loc x

(* Variables may be capitalized: the FG translation names dictionary
   variables after their concepts (e.g. [Monoid_18]). *)
let expect_var p =
  match P.peek p with
  | T.LIDENT s | T.UIDENT s ->
      P.skip p;
      s
  | _ -> P.error p "expected an identifier"


let rec parse_exp p : exp =
  let start = P.loc p in
  match P.peek p with
  | T.KW "let" ->
      P.skip p;
      let x = expect_var p in
      ignore (P.expect p T.EQ);
      let rhs = parse_exp p in
      P.expect_kw p "in";
      let body = parse_exp p in
      let_ ~loc:(Fg_util.Loc.merge start (P.prev_loc p)) x rhs body
  | T.KW "fun" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      let params = P.sep_list p ~sep:T.COMMA ~elem:parse_param in
      ignore (P.expect p T.RPAREN);
      body_separator p;
      abs ~loc:(Fg_util.Loc.merge start (P.prev_loc p)) params (parse_exp p)
  | T.KW "tfun" ->
      P.skip p;
      let tvs = parse_tyvars p in
      body_separator p;
      tyabs ~loc:(Fg_util.Loc.merge start (P.prev_loc p)) tvs (parse_exp p)
  | T.KW "fix" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      let x = expect_var p in
      ignore (P.expect p T.COLON);
      let t = parse_ty p in
      ignore (P.expect p T.RPAREN);
      body_separator p;
      fix ~loc:(Fg_util.Loc.merge start (P.prev_loc p)) x t (parse_exp p)
  | T.KW "if" ->
      P.skip p;
      let c = parse_exp p in
      P.expect_kw p "then";
      let t = parse_exp p in
      P.expect_kw p "else";
      let f = parse_exp p in
      if_ ~loc:(Fg_util.Loc.merge start (P.prev_loc p)) c t f
  | _ -> parse_or p

and parse_param p =
  let x = expect_var p in
  ignore (P.expect p T.COLON);
  let t = parse_ty p in
  (x, t)

and binop ~loc prim_name a b = app ~loc (prim ~loc prim_name) [ a; b ]

and parse_or p =
  let rec go lhs =
    if P.eat p T.BARBAR then
      let rhs = parse_and p in
      go (binop ~loc:lhs.loc "bor" lhs rhs)
    else lhs
  in
  go (parse_and p)

and parse_and p =
  let rec go lhs =
    if P.eat p T.ANDAND then
      let rhs = parse_cmp p in
      go (binop ~loc:lhs.loc "band" lhs rhs)
    else lhs
  in
  go (parse_cmp p)

and parse_cmp p =
  let lhs = parse_add p in
  let op =
    match P.peek p with
    | T.EQEQ -> Some "ieq"
    | T.NEQ -> Some "ineq"
    | T.LT -> Some "ilt"
    | T.LE -> Some "ile"
    | T.GT -> Some "igt"
    | T.GE -> Some "ige"
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some name ->
      P.skip p;
      let rhs = parse_add p in
      binop ~loc:lhs.loc name lhs rhs

and parse_add p =
  let rec go lhs =
    match P.peek p with
    | T.PLUS ->
        P.skip p;
        go (binop ~loc:lhs.loc "iadd" lhs (parse_mul p))
    | T.MINUS ->
        P.skip p;
        go (binop ~loc:lhs.loc "isub" lhs (parse_mul p))
    | _ -> lhs
  in
  go (parse_mul p)

and parse_mul p =
  let rec go lhs =
    match P.peek p with
    | T.STAR ->
        P.skip p;
        go (binop ~loc:lhs.loc "imult" lhs (parse_unary p))
    | T.SLASH ->
        P.skip p;
        go (binop ~loc:lhs.loc "idiv" lhs (parse_unary p))
    | T.PERCENT ->
        P.skip p;
        go (binop ~loc:lhs.loc "imod" lhs (parse_unary p))
    | _ -> lhs
  in
  go (parse_unary p)

and parse_unary p =
  let loc = P.loc p in
  match P.peek p with
  | T.MINUS ->
      P.skip p;
      app ~loc (prim ~loc "ineg") [ parse_unary p ]
  | T.BANG | T.KW "not" ->
      P.skip p;
      app ~loc (prim ~loc "bnot") [ parse_unary p ]
  | _ -> parse_postfix p

and parse_postfix p =
  let rec go e =
    match P.peek p with
    | T.LPAREN ->
        P.skip p;
        let args =
          if P.eat p T.RPAREN then []
          else begin
            let args = P.sep_list p ~sep:T.COMMA ~elem:parse_exp in
            ignore (P.expect p T.RPAREN);
            args
          end
        in
        go (app ~loc:e.loc e args)
    | T.LBRACKET ->
        P.skip p;
        let tys = P.sep_list p ~sep:T.COMMA ~elem:parse_ty in
        ignore (P.expect p T.RBRACKET);
        go (tyapp ~loc:e.loc e tys)
    | _ -> e
  in
  go (parse_atom p)

and parse_atom p : exp =
  let loc = P.loc p in
  match P.peek p with
  | T.INT n ->
      P.skip p;
      int ~loc n
  | T.KW "true" ->
      P.skip p;
      bool ~loc true
  | T.KW "false" ->
      P.skip p;
      bool ~loc false
  | T.KW "nth" ->
      P.skip p;
      let e = parse_atom p in
      let k = P.expect_int p in
      nth ~loc e k
  | T.KW "tuple" ->
      P.skip p;
      ignore (P.expect p T.LPAREN);
      if P.eat p T.RPAREN then tuple ~loc []
      else begin
        let es = P.sep_list p ~sep:T.COMMA ~elem:parse_exp in
        ignore (P.expect p T.RPAREN);
        tuple ~loc es
      end
  | T.LIDENT x | T.UIDENT x ->
      P.skip p;
      ident_exp ~loc x
  | T.LPAREN ->
      P.skip p;
      if P.eat p T.RPAREN then unit ~loc ()
      else begin
        let es = P.sep_list p ~sep:T.COMMA ~elem:parse_exp in
        ignore (P.expect p T.RPAREN);
        match es with [ e ] -> e | es -> tuple ~loc es
      end
  | _ -> P.error p "expected an expression"

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let exp_of_string ?file src =
  let p = P.of_string ?file src in
  let e = parse_exp p in
  P.expect_eof p;
  e

let ty_of_string ?file src =
  let p = P.of_string ?file src in
  let t = parse_ty p in
  P.expect_eof p;
  t
