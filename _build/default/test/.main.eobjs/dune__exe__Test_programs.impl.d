test/test_programs.ml: Alcotest Array Corpus Fg_core Fg_util Filename Interp List Pipeline Printf String Sys
