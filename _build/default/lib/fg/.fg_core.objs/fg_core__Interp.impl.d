lib/fg/interp.ml: Ast Diag Fg_systemf Fg_util Fmt List Names Pp_util Pretty String
