lib/util/names.ml: Map Set String
