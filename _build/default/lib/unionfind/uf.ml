(** Imperative union-find with union by rank and path compression.

    Elements are dense integer ids handed out by {!make_set}.  This is
    the core data structure behind the congruence-closure decision
    procedure for FG's same-type constraints (paper Section 5, citing
    Nelson–Oppen); it is also used on its own by the translation to pick
    equivalence-class representatives.

    All operations are amortized near-constant time (inverse Ackermann).
    The structure grows on demand; ids must come from {!make_set}. *)

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable size : int;  (** number of live elements *)
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { parent = Array.make capacity 0; rank = Array.make capacity 0; size = 0 }

let length t = t.size

let ensure_capacity t n =
  if n > Array.length t.parent then begin
    let cap = max n (2 * Array.length t.parent) in
    let parent = Array.make cap 0 in
    let rank = Array.make cap 0 in
    Array.blit t.parent 0 parent 0 t.size;
    Array.blit t.rank 0 rank 0 t.size;
    t.parent <- parent;
    t.rank <- rank
  end

(** Allocate a fresh singleton class and return its id. *)
let make_set t =
  let id = t.size in
  ensure_capacity t (id + 1);
  t.parent.(id) <- id;
  t.rank.(id) <- 0;
  t.size <- id + 1;
  id

let check t x =
  if x < 0 || x >= t.size then
    Fg_util.Diag.ice "union-find: id %d out of range [0, %d)" x t.size

(** Representative of [x]'s class, with path compression. *)
let rec find t x =
  check t x;
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let equiv t x y = find t x = find t y

(** [union t x y] merges the classes of [x] and [y]; returns the root of
    the merged class.  Union by rank keeps trees shallow. *)
let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then rx
  else if t.rank.(rx) < t.rank.(ry) then begin
    t.parent.(rx) <- ry;
    ry
  end
  else if t.rank.(rx) > t.rank.(ry) then begin
    t.parent.(ry) <- rx;
    rx
  end
  else begin
    t.parent.(ry) <- rx;
    t.rank.(rx) <- t.rank.(rx) + 1;
    rx
  end

(** [union_into t ~winner x] merges so that [winner]'s root becomes the
    representative, regardless of rank.  The FG translation needs control
    over which member of a class is the canonical representative (e.g.
    preferring a plain type variable over an associated-type projection),
    which plain rank-based union does not provide. *)
let union_into t ~winner x =
  let rw = find t winner and rx = find t x in
  if rw <> rx then begin
    t.parent.(rx) <- rw;
    if t.rank.(rw) <= t.rank.(rx) then t.rank.(rw) <- t.rank.(rx) + 1
  end;
  rw

(** All classes as lists of members, each headed by its representative.
    O(n α(n)); intended for tests and debugging output. *)
let classes t =
  let tbl = Hashtbl.create 16 in
  for x = t.size - 1 downto 0 do
    let r = find t x in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (x :: cur)
  done;
  Hashtbl.fold
    (fun r members acc -> (r :: List.filter (fun x -> x <> r) members) :: acc)
    tbl []

let count_classes t =
  let seen = Hashtbl.create 16 in
  for x = 0 to t.size - 1 do
    Hashtbl.replace seen (find t x) ()
  done;
  Hashtbl.length seen

(** Deep copy; the congruence closure snapshots its union-find when a
    scope is entered so that scoped same-type constraints can be
    discarded on exit. *)
let copy t =
  { parent = Array.copy t.parent; rank = Array.copy t.rank; size = t.size }
