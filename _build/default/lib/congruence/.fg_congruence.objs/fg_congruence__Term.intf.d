lib/congruence/term.mli: Fmt
