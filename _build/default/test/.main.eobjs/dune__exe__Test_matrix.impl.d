test/test_matrix.ml: Alcotest Astring_contains Fg_core Fg_util Interp List Matrix_lib Pipeline Prelude Printf QCheck QCheck_alcotest
