lib/fg/pipeline.mli: Ast Fg_systemf Fg_util Interp Resolution
