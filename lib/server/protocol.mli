(** The [fgc serve] wire protocol: length-prefixed JSON frames.

    {b Framing.}  A frame is a 4-byte big-endian unsigned length [n]
    followed by [n] bytes of UTF-8 JSON.  Frames longer than the
    decoder's [max_frame] are rejected {e from the prefix alone} — the
    body is never allocated — and the error is sticky: a stream whose
    framing has been lost cannot be resynchronized, so the connection
    must be closed.

    {b Requests} are JSON objects
    [{"v": 4, "id": N, "kind": K, ...}] where [K] is one of
    [check | run | translate | fuzz_one | stats | shutdown |
    cache_get | cache_put | fuzz_batch]; program kinds carry ["file"],
    ["source"] and the one-shot driver's flags (["prelude"],
    ["global_models"], and — since version 2 — an optional ["backend"]
    of [dict | stencil | hybrid], absent meaning [dict]); the cache
    kinds (since version 3) carry a hex ["key"] and, for [cache_put], a
    hex ["data"] blob — the peer tier of the compilation-unit cache;
    [fuzz_batch] (since version 4) carries a ["coverage"] map
    (key → hit-count object), a ["corpus"] object (digest → source)
    of entries the worker offers, and a ["have"] digest list — the
    fleet-wide merge point of guided fuzzing; the workspace kinds
    (since version 5: [doc_open | doc_change | doc_close |
    doc_diagnostics | hover | definition | completion]) use ["file"]
    as the document name and carry ["doc_version"] (open/change),
    ["source"] or an ["edits"] splice array (change), and a byte
    ["offset"] (hover/definition/completion); since version 6 any
    program kind may carry a ["profile"] object (a canonical
    {!Fg_util.Profile} document) consulted by the [guided] backend,
    absent meaning the server's default profile; any request may set
    ["timeout_ms"] to override the server's default deadline.  Any
    version in [min_version .. version] is accepted: version-1 frames
    decode and route exactly as before.

    {b Responses} are
    [{"v": 4, "id": N, "status": S, "payload": P}] where [S] is one of
    [ok | error | timeout | overload | shutting_down | protocol_error]
    and [P] is the result document as {e pre-rendered JSON text} — for
    [run] requests, byte-identical to what one-shot
    [fgc run --format=json] prints. *)

open Fg_util

val version : int

(** The oldest request/response version still accepted. *)
val min_version : int

val default_max_frame : int

(** Where a daemon listens and a client or cache peer connects; shared
    by {!Server}, {!Client} and the peer tier in {!Handler}. *)
type address = [ `Unix of string | `Tcp of string * int ]

(** {1 Framing} *)

(** The complete wire bytes of one frame. *)
val frame_of_string : string -> bytes

(** An incremental frame decoder.  Feed it arbitrary chunks, pull
    complete frames; it buffers at most [max_frame + chunk] bytes. *)
type decoder

val decoder : ?max_frame:int -> unit -> decoder
val feed : decoder -> bytes -> int -> int -> unit
val feed_string : decoder -> string -> unit

(** [`Frame payload] when a complete frame is buffered; [`Await] when
    more input is needed; [`Error] (sticky) when the length prefix
    exceeds [max_frame]. *)
val next_frame : decoder -> [ `Frame of string | `Await | `Error of string ]

(** {1 Blocking I/O helpers} *)

val write_frame : Unix.file_descr -> string -> unit

(** Read one chunk from [fd] into the decoder; [false] on end of
    stream (EOF or connection reset). *)
val read_chunk : decoder -> Unix.file_descr -> bool

(** {1 Requests} *)

type kind =
  | Check
  | Run
  | Translate
  | FuzzOne
  | Stats
  | Shutdown
  | CacheGet  (** v3: probe the server's disk store for a unit blob *)
  | CachePut  (** v3: offer a unit blob to the server's disk store *)
  | FuzzBatch
      (** v4: merge a fuzz worker's coverage map and corpus offers into
          the fleet state; the reply carries the merged map and the
          corpus entries the worker lacks *)
  | DocOpen  (** v5: open (and check) a versioned workspace document *)
  | DocChange
      (** v5: a new version of an open document, by full text or edits *)
  | DocClose  (** v5: forget an open document *)
  | DocDiagnostics  (** v5: the document's current diagnostics *)
  | Hover  (** v5: inferred type / resolved model at a byte offset *)
  | Definition  (** v5: defining occurrence of the name at an offset *)
  | Completion  (** v5: names completable at an offset *)

val kind_name : kind -> string
val kind_of_name : string -> kind option
val all_kinds : kind list

type request = {
  id : int;
  kind : kind;
  file : string;
  source : string;
  prelude : bool;
  global_models : bool;
  backend : Fg_core.Backend.t;
      (** added in version 2; absent on the wire means {!Fg_core.Backend.Dict} *)
  timeout_ms : int option;
  seed : int;
  size : int;
  mutants : int;
  key : string;  (** cache_get/cache_put: hex portable unit key (v3) *)
  data : string;  (** cache_put: hex unit blob (v3) *)
  coverage : Coverage.map;  (** fuzz_batch: the worker's coverage map (v4) *)
  corpus_entries : (string * string) list;
      (** fuzz_batch: [(digest, source)] corpus entries offered (v4) *)
  have : string list;
      (** fuzz_batch: digests the worker already holds (v4) *)
  doc_version : int;
      (** doc_open/doc_change: the editor's version of the document
          named by [file] (v5) *)
  offset : int;  (** hover/definition/completion: byte offset (v5) *)
  edits : (int * int * string) list;
      (** doc_change: [(start, len, text)] byte-range splices applied
          in order; an explicit [source] wins over edits (v5) *)
  profile : Profile.t option;
      (** a workload profile shipped with the request, consulted by the
          guided backend; absent means the server's default (v6) *)
}

(** Build a request with the wire defaults filled in. *)
val request :
  ?file:string -> ?source:string -> ?prelude:bool -> ?global_models:bool ->
  ?backend:Fg_core.Backend.t -> ?timeout_ms:int -> ?seed:int -> ?size:int ->
  ?mutants:int -> ?key:string -> ?data:string -> ?coverage:Coverage.map ->
  ?corpus_entries:(string * string) list -> ?have:string list ->
  ?doc_version:int -> ?offset:int -> ?edits:(int * int * string) list ->
  ?profile:Profile.t -> id:int -> kind -> request

val request_to_json : request -> Json.t

type proto_error =
  | Bad_version of int option
      (** ["v"] absent or outside [{!min_version} .. {!version}] *)
  | Bad_request of string

val request_of_json : Json.t -> (request, proto_error) result

(** {1 Responses} *)

type status =
  | Ok_
  | Failed
  | Timeout
  | Overload
  | Shutting_down
  | Protocol_error

val status_name : status -> string
val status_of_name : string -> status option

type response = { r_id : int; r_status : status; r_payload : string }

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

(** A diagnostics-shaped error payload (the same [{"file", "ok":
    false, "diagnostics"}] shape as a failed one-shot run) with one
    [Server]-phase diagnostic carrying [code]. *)
val error_payload :
  file:string -> code:string -> ('a, Format.formatter, unit, string) format4
  -> 'a
