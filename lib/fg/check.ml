(** The System FG type checker and its type-directed translation to
    System F (paper Figures 9 and 13, presented as one judgment
    [Γ ⊢ e : τ ⇒ f]).

    Checking and translation are computed together, exactly as in the
    paper: models become let-bound dictionary tuples (MDL), type
    abstractions gain a type parameter per associated type and a
    dictionary parameter per requirement (TABS), type applications are
    given the representative of each associated type and the dictionary
    of each matched model (TAPP), and member accesses become [nth]
    projection chains (MEM).  Concept declarations erase (CPT). *)

open Ast
open Fg_util
module F = Fg_systemf.Ast
module FPrims = Fg_systemf.Prims
module Smap = Names.Smap
module Sset = Names.Sset

(* Rule-firing coverage: one stable probe per judgment arm, so the
   guided fuzzer (and the fleet merging its maps) can tell which
   static-semantics paths a program exercised.  Hits are single atomic
   increments — negligible next to the work each arm already does. *)
let p_let = Coverage.probe "check.let"
let p_concept = Coverage.probe "check.concept"
let p_concept_defaults = Coverage.probe "check.concept.defaults"
let p_using = Coverage.probe "check.using"
let p_alias = Coverage.probe "check.alias"
let p_var = Coverage.probe "check.var"
let p_lit = Coverage.probe "check.lit"
let p_prim = Coverage.probe "check.prim"
let p_app = Coverage.probe "check.app.ground"
let p_app_implicit = Coverage.probe "check.app.implicit"
let p_abs = Coverage.probe "check.abs"
let p_tyabs = Coverage.probe "check.tyabs"
let p_tyabs_where = Coverage.probe "check.tyabs.where"
let p_tyapp = Coverage.probe "check.tyapp"
let p_tyapp_where = Coverage.probe "check.tyapp.where"
let p_tuple = Coverage.probe "check.tuple"
let p_nth = Coverage.probe "check.nth"
let p_fix = Coverage.probe "check.fix"
let p_if = Coverage.probe "check.if"
let p_member = Coverage.probe "check.member"
let p_infer = Coverage.probe "check.infer"
let p_model_ground = Coverage.probe "check.model.ground"
let p_model_param = Coverage.probe "check.model.param"
let p_model_named = Coverage.probe "check.model.named"
let p_model_defaults = Coverage.probe "check.model.defaults"
let p_recover_poison = Coverage.probe "recover.check.poison"

(* ------------------------------------------------------------------ *)
(* Position-index sink                                                 *)

(* The workspace language service needs "what type does the expression
   at this span have" and "which model did this constrained call
   resolve to" — information the judgment computes and then folds away.
   A domain-local sink taps it during checking: [None] (the default
   everywhere, including batch worker domains) costs one DLS read per
   node and changes nothing, so cached-unit byte-identity is
   unaffected.  Domain-local rather than global because worker domains
   check concurrently; within a domain the workspace serializes its
   checks. *)

type index_entry =
  | Itype of Loc.t * ty  (** inferred type of the expression at a span *)
  | Imodel of Loc.t * string * ty list
      (** a constraint [C<args>] resolved to a model at this span *)

let index_sink : (index_entry -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_index_sink f thunk =
  let prev = Domain.DLS.get index_sink in
  Domain.DLS.set index_sink (Some f);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set index_sink prev)
    thunk

let record_index entry =
  match Domain.DLS.get index_sink with
  | None -> ()
  | Some f -> f entry

(** Embed a System F type into FG (primitive type schemes). *)
let rec ty_of_f : F.ty -> ty = function
  | F.TBase b -> TBase b
  | F.TVar a -> TVar a
  | F.TArrow (args, ret) -> TArrow (List.map ty_of_f args, ty_of_f ret)
  | F.TTuple ts -> TTuple (List.map ty_of_f ts)
  | F.TList t -> TList (ty_of_f t)
  | F.TForall (tvs, body) -> TForall (tvs, [], ty_of_f body)

let type_mismatch ?loc ~expected ~got what =
  Diag.type_error ~code:"FG0303" ?loc "%s: expected %s but got %s" what
    (Pretty.ty_to_string expected)
    (Pretty.ty_to_string got)

let require_equal ?loc env ~expected ~got what =
  if not (Env.ty_eq ?loc env expected got) then
    type_mismatch ?loc ~expected ~got what

(* Term-variable occurrences of a System F term (binders are not
   subtracted — dictionary variables are gensym-fresh, so any occurrence
   is a use).  Drives the unused-where-clause-constraint warning. *)
let rec f_term_vars acc (f : F.exp) =
  match f.desc with
  | F.Var x -> Sset.add x acc
  | F.Lit _ | F.Prim _ -> acc
  | F.App (g, args) -> List.fold_left f_term_vars (f_term_vars acc g) args
  | F.Abs (_, b) | F.TyAbs (_, b) | F.TyApp (b, _) | F.Nth (b, _)
  | F.Fix (_, _, b) ->
      f_term_vars acc b
  | F.Let (_, a, b) -> f_term_vars (f_term_vars acc a) b
  | F.Tuple es -> List.fold_left f_term_vars acc es
  | F.If (a, b, c) -> f_term_vars (f_term_vars (f_term_vars acc a) b) c

(* ------------------------------------------------------------------ *)
(* Concept declarations (CPT)                                          *)

let check_concept_decl ?loc env (d : concept_decl) : unit =
  if d.c_params = [] then
    Diag.wf_error ?loc "concept %s must have at least one type parameter"
      d.c_name;
  (match Names.find_duplicate d.c_params with
  | Some p ->
      Diag.wf_error ~code:"FG0204" ?loc
        "duplicate type parameter '%s' in concept %s" p d.c_name
  | None -> ());
  (match Names.find_duplicate d.c_assoc with
  | Some s ->
      Diag.wf_error ~code:"FG0204" ?loc
        "duplicate associated type '%s' in concept %s" s d.c_name
  | None -> ());
  (match Names.find_duplicate (List.map fst d.c_members) with
  | Some x ->
      Diag.wf_error ~code:"FG0204" ?loc "duplicate member '%s' in concept %s"
        x d.c_name
  | None -> ());
  List.iter
    (fun p ->
      if Env.tyvar_in_scope env p then
        Diag.wf_error ~code:"FG0205" ?loc
          "type parameter '%s' of concept %s shadows a type variable in scope"
          p d.c_name)
    d.c_params;
  (* Refinement arguments are checked left to right; each refinement may
     mention the concept's parameters, its own associated types, and the
     associated types of earlier refinements. *)
  let visible =
    List.fold_left
      (fun visible (c', rargs) ->
        let decl' = Env.lookup_concept_exn ?loc env c' in
        Types.arity_check ?loc "concept" c'
          ~expected:(List.length decl'.c_params)
          ~got:(List.length rargs);
        if String.equal c' d.c_name then
          Diag.wf_error ?loc "concept %s cannot refine itself" d.c_name;
        let env_vis = Env.bind_tyvars env (d.c_params @ d.c_assoc @ visible) in
        List.iter (Types.wf_ty ?loc env_vis) rargs;
        (* Inherited associated-type names become visible. *)
        let inherited =
          let rec names c =
            let decl = Env.lookup_concept_exn ?loc env c in
            decl.c_assoc
            @ List.concat_map (fun (c'', _) -> names c'') decl.c_refines
          in
          names c'
        in
        List.fold_left
          (fun vis s -> if List.mem s vis then vis else vis @ [ s ])
          visible inherited)
      [] d.c_refines
  in
  (* Member types and same-type requirements may mention the refined
     concepts' associated types, both by bare name and as qualified
     projections (e.g. [same Iterator<i>.elt == int]).  Qualified
     projections are only well-formed under a model, so check them in a
     scratch environment with proxy models for every refinement —
     exactly what a where clause over the refinements would provide. *)
  let visible =
    (* The concept's own parameters and associated types shadow
       inherited associated-type names. *)
    List.filter
      (fun s -> not (List.mem s d.c_params || List.mem s d.c_assoc))
      visible
  in
  (* arity of nested requirements *)
  List.iter
    (fun (c', rargs) ->
      let decl' = Env.lookup_concept_exn ?loc env c' in
      Types.arity_check ?loc "concept" c'
        ~expected:(List.length decl'.c_params)
        ~got:(List.length rargs))
    d.c_requires;
  let env_members, _plan =
    Types.process_where ?loc env
      (d.c_params @ d.c_assoc @ visible)
      (List.map
         (fun (c', rargs) -> CModel (c', rargs))
         (d.c_refines @ d.c_requires))
  in
  List.iter (fun (_, ty) -> Types.wf_ty ?loc env_members ty) d.c_members;
  List.iter
    (fun (a, b) ->
      Types.wf_ty ?loc env_members a;
      Types.wf_ty ?loc env_members b)
    d.c_same;
  (* Default member bodies are checked generically, under a proxy model
     of the concept itself (as if inside [tfun t̄ where C<t̄>]); they are
     re-elaborated per model.  Bare associated-type names are not in
     scope inside default bodies — use qualified projections. *)
  List.iter
    (fun (x, _) ->
      if not (List.mem_assoc x d.c_members) then
        Diag.wf_error ~code:"FG0206" ?loc
          "default for '%s', which is not a member of %s" x d.c_name)
    d.c_defaults

(* ------------------------------------------------------------------ *)
(* The main judgment                                                   *)

(* The judgment returns three things: the FG type, an ELABORATED FG
   expression (implicit instantiations made explicit, so the direct
   interpreter can run it), and the System F translation.

   Declaration forms (concept / model / let / using / type alias) are
   factored through [check_decl], which does all of a declaration's own
   work BEFORE the body is checked and returns the extended environment
   plus a wrapper rebuilding the whole node's result from the body's.
   [check] composes the two on the spot; {!check_prefix} walks a whole
   declaration spine once and keeps the environment and composed
   wrapper around — that is what lets a {!Session} check a shared
   prelude once and reuse it for every program. *)
let rec check (env : Env.t) (e : exp) : ty * exp * F.exp =
  match check_decl env e with
  | Some (env', body, wrap) -> wrap (check env' body)
  | None -> check_exp env e

and check_decl (env : Env.t) (e : exp) :
    (Env.t * exp * (ty * exp * F.exp -> ty * exp * F.exp)) option =
  Option.map
    (fun (extend, body, wrap) -> (extend env, body, wrap))
    (check_decl_parts env e)

(* One declaration node: [Some (extend, body, wrap)] when [e] is a
   declaration with body [body], where [extend] rebuilds the extended
   environment from the one the declaration was checked under (or any
   environment of the same family binding the same dependencies — that
   is what lets {!Fg_core.Unit} replay a cached declaration without
   re-checking it) and [wrap] turns the body's checked triple into the
   declaration's.  All side conditions of the declaration itself
   (well-formedness, member checking, dictionary construction,
   fresh-name generation) happen here, eagerly, in exactly the order
   the fused judgment performed them. *)
and check_decl_parts (env : Env.t) (e : exp) :
    ((Env.t -> Env.t) * exp * (ty * exp * F.exp -> ty * exp * F.exp)) option =
  let loc = e.loc in
  match e.desc with
  | Let (x, rhs, body) ->
      Coverage.hit p_let;
      let trhs, rhs_elab, rhs' = check env rhs in
      Some
        ( (fun env -> Env.bind_var env x trhs),
          body,
          fun (tbody, body_elab, body') ->
            (tbody, let_ ~loc x rhs_elab body_elab, F.let_ ~loc x rhs' body')
        )
  | ConceptDecl (d, body) ->
      Coverage.hit p_concept;
      check_concept_decl ~loc env d;
      let env' = Env.bind_concept env d in
      (* Generic validation of default bodies: check each under a proxy
         model of the concept at its own parameters. *)
      if d.c_defaults <> [] then begin
        Coverage.hit p_concept_defaults;
        let fresh_params = List.map (fun p -> Env.fresh env' p) d.c_params in
        let env_d, _ =
          Types.process_where ~loc env' fresh_params
            [ CModel (d.c_name, List.map (fun p -> TVar p) fresh_params) ]
        in
        let subst =
          Types.instantiation_subst ~loc env_d
            (d.c_name, List.map (fun p -> TVar p) fresh_params)
        in
        List.iter
          (fun (x, default) ->
            let expected = subst_ty_list subst (List.assoc x d.c_members) in
            let got, _, _ =
              check env_d (subst_ty_exp (subst_of_list subst) default)
            in
            if not (Env.ty_eq ~loc env_d expected got) then
              type_mismatch ~loc ~expected ~got
                (Printf.sprintf "default for member '%s' of concept %s" x
                   d.c_name))
          d.c_defaults
      end;
      Some
        ( (fun env -> Env.bind_concept env d),
          body,
          fun (tbody, body_elab, body') ->
            if env.Env.escape_check && Sset.mem d.c_name (concept_names tbody)
            then
              Diag.type_error ~code:"FG0308" ~loc
                "concept %s escapes its scope in the type %s of the body"
                d.c_name
                (Pretty.ty_to_string tbody);
            (tbody, concept_decl ~loc d body_elab, body') )
  | ModelDecl (d, body) ->
      let extend, wrap = check_model_decl env ~loc d in
      Some (extend, body, wrap)
  | Using (m, body) -> (
      match Env.lookup_named_model env m with
      | None ->
          let candidates =
            List.map fst (Smap.bindings env.Env.named_models)
          in
          let notes =
            match Strutil.nearest ~candidates m with
            | Some near -> [ Diag.suggest near ]
            | None -> []
          in
          Diag.resolve_error ~code:"FG0403" ~notes ~loc
            "unknown named model '%s'" m
      | Some entry ->
          Coverage.hit p_using;
          Some
            ( (fun env -> Env.bind_model env entry),
              body,
              fun (tbody, body_elab, body') ->
                (tbody, using ~loc m body_elab, body') ))
  | TypeAlias (t, ty, body) ->
      Coverage.hit p_alias;
      Types.wf_ty ~loc env ty;
      if Env.tyvar_in_scope env t then
        Diag.wf_error ~code:"FG0205" ~loc
          "type alias '%s' shadows a type variable in scope" t;
      Some
        ( (fun env -> Env.assume (Env.bind_tyvars env [ t ]) (TVar t) ty),
          body,
          fun (tbody, body_elab, body') ->
            (* translated after the body, as the fused judgment did, so
               the fresh-name supply is consumed in the same order *)
            let f_ty = Types.translate_ty ~loc env ty in
            ( subst_ty_list [ (t, ty) ] tbody,
              type_alias ~loc t ty body_elab,
              F.subst_ty_exp (Smap.singleton t f_ty) body' ) )
  | _ -> None

and check_exp (env : Env.t) (e : exp) : ty * exp * F.exp =
  let ((ty, _, _) as r) = check_exp_desc env e in
  if not (Fg_util.Loc.is_dummy e.loc) then record_index (Itype (e.loc, ty));
  r

and check_exp_desc (env : Env.t) (e : exp) : ty * exp * F.exp =
  let loc = e.loc in
  match e.desc with
  | Var x -> (
      match Env.lookup_var env x with
      | Some t ->
          Coverage.hit p_var;
          (t, e, F.var ~loc x)
      | None ->
          let notes =
            match Strutil.nearest ~candidates:(Env.var_names env) x with
            | Some near -> [ Diag.suggest near ]
            | None -> []
          in
          Diag.type_error ~code:"FG0302" ~notes ~loc "unbound variable '%s'" x
      )
  | Lit (LInt n) ->
      Coverage.hit p_lit;
      (TBase TInt, e, F.int ~loc n)
  | Lit (LBool b) ->
      Coverage.hit p_lit;
      (TBase TBool, e, F.bool ~loc b)
  | Lit LUnit ->
      Coverage.hit p_lit;
      (TBase TUnit, e, F.unit ~loc ())
  | Prim p ->
      Coverage.hit p_prim;
      let info = FPrims.lookup_exn ~loc p in
      (ty_of_f info.ty, e, F.prim ~loc p)
  | App (f, args) -> (
      let tf, f_elab, f' = check env f in
      let checked = List.map (check env) args in
      let arg_elabs = List.map (fun (_, a, _) -> a) checked in
      let finish params ret head_elab head =
        if List.length params <> List.length args then
          Diag.type_error ~code:"FG0304" ~loc
            "function expects %d argument(s) but is applied to %d"
            (List.length params) (List.length args);
        let args' =
          List.map2
            (fun param (ta, a_elab, a') ->
              require_equal ~loc:a_elab.loc env ~expected:param ~got:ta
                "argument";
              a')
            params checked
        in
        (ret, app ~loc head_elab arg_elabs, F.app ~loc head args')
      in
      match Env.ty_repr ~loc env tf with
      | TArrow (params, ret) ->
          Coverage.hit p_app;
          finish params ret f_elab f'
      | TForall (tvs, _, TArrow (params, _)) as poly ->
          Coverage.hit p_app_implicit;
          (* Implicit instantiation (Section 6, in the decidable
             restriction): infer the type arguments by first-order
             matching of the parameter types against the argument
             types, then proceed exactly as an explicit TyApp. *)
          if List.length params <> List.length args then
            Diag.type_error ~code:"FG0304" ~loc
              "generic function expects %d argument(s) but is applied to %d"
              (List.length params) (List.length args);
          let actuals = List.map (fun (ta, _, _) -> ta) checked in
          let inferred = infer_ty_args ~loc env tvs params actuals in
          let inst_ty, inst_f = elaborate_tyapp env ~loc (poly, f') inferred in
          let inst_elab = tyapp ~loc f_elab inferred in
          (match Env.ty_repr ~loc env inst_ty with
          | TArrow (params, ret) -> finish params ret inst_elab inst_f
          | t ->
              Diag.type_error ~code:"FG0305" ~loc
                "implicitly instantiated function has non-function type %s"
                (Pretty.ty_to_string t))
      | t ->
          Diag.type_error ~code:"FG0305" ~loc
            "applied expression has non-function type %s"
            (Pretty.ty_to_string t))
  | Abs (params, body) ->
      Coverage.hit p_abs;
      (match Names.find_duplicate (List.map fst params) with
      | Some x -> Diag.type_error ~code:"FG0204" ~loc "duplicate parameter '%s'" x
      | None -> ());
      let env' =
        List.fold_left
          (fun acc (x, t) ->
            Types.wf_ty ~loc env t;
            Env.bind_var acc x t)
          env params
      in
      let tbody, body_elab, body' = check env' body in
      let params' =
        List.map (fun (x, t) -> (x, Types.translate_ty ~loc env t)) params
      in
      ( TArrow (List.map snd params, tbody),
        abs ~loc params body_elab,
        F.abs ~loc params' body' )
  | TyAbs (tvs, constrs, body) ->
      Coverage.hit p_tyabs;
      if constrs <> [] then Coverage.hit p_tyabs_where;
      let env', plan = Types.process_where ~loc env tvs constrs in
      let tbody, body_elab, body' = check env' body in
      (* Representative selection inside the body may have rewritten
         associated-type projections to their internal fresh variables
         (s'); those must not escape the abstraction, so rewrite them
         back to the projections they stand for. *)
      let tbody =
        subst_ty_list
          (List.map
             (fun (v, (c, args, s)) -> (v, TAssoc (c, args, s)))
             plan.Types.p_slots)
          tbody
      in
      (* Unused-constraint warning: a where-clause requirement whose
         dictionary is never consulted and whose concept contributes no
         associated types, refinements or requirements (those can
         satisfy the body through the type level without touching the
         dictionary) only narrows the callers for nothing. *)
      if not (Types.no_requirements plan) then begin
        let used = lazy (f_term_vars Sset.empty body') in
        List.iter
          (fun (dv, (cname, cargs), _) ->
            match Env.lookup_concept env' cname with
            | Some decl
              when decl.c_assoc = [] && decl.c_refines = []
                   && decl.c_requires = [] && decl.c_same = []
                   && not (Sset.mem dv (Lazy.force used)) ->
                Diag.warn
                  !(env.Env.diag)
                  ~code:"FG0702" ~loc Typecheck
                  "where-clause constraint %s is never used in this \
                   abstraction"
                  (Pretty.constr_to_string (CModel (cname, cargs)))
            | _ -> ())
          plan.Types.p_dicts
      end;
      let fg_ty = TForall (tvs, constrs, tbody) in
      let f_exp =
        if Types.no_requirements plan then F.tyabs ~loc tvs body'
        else
          F.tyabs ~loc
            (tvs @ List.map fst plan.Types.p_slots)
            (F.abs ~loc
               (List.map (fun (d, _, dty) -> (d, dty)) plan.Types.p_dicts)
               body')
      in
      (fg_ty, tyabs ~loc tvs constrs body_elab, f_exp)
  | TyApp (f, tys) ->
      let tf, f_elab, f' = check env f in
      let ty, f_exp = elaborate_tyapp env ~loc (Env.ty_repr ~loc env tf, f') tys in
      (ty, tyapp ~loc f_elab tys, f_exp)
  | Tuple es ->
      Coverage.hit p_tuple;
      let checked = List.map (check env) es in
      ( TTuple (List.map (fun (t, _, _) -> t) checked),
        tuple ~loc (List.map (fun (_, a, _) -> a) checked),
        F.tuple ~loc (List.map (fun (_, _, f) -> f) checked) )
  | Nth (e0, k) -> (
      let t0, e0_elab, e0' = check env e0 in
      match Env.ty_repr ~loc env t0 with
      | TTuple ts when k >= 0 && k < List.length ts ->
          Coverage.hit p_nth;
          (List.nth ts k, nth ~loc e0_elab k, F.nth ~loc e0' k)
      | TTuple ts ->
          Diag.type_error ~loc "projection %d out of bounds for %d-tuple" k
            (List.length ts)
      | t ->
          Diag.type_error ~loc "nth applied to non-tuple type %s"
            (Pretty.ty_to_string t))
  | Fix (x, t, body) ->
      Coverage.hit p_fix;
      Types.wf_ty ~loc env t;
      let tbody, body_elab, body' = check (Env.bind_var env x t) body in
      require_equal ~loc env ~expected:t ~got:tbody "fix body";
      ( t,
        fix ~loc x t body_elab,
        F.fix ~loc x (Types.translate_ty ~loc env t) body' )
  | If (c, t, f) ->
      Coverage.hit p_if;
      let tc, c_elab, c' = check env c in
      require_equal ~loc:c.loc env ~expected:(TBase TBool) ~got:tc
        "if condition";
      let tt, t_elab, t' = check env t in
      let tf, f_elab, f' = check env f in
      require_equal ~loc env ~expected:tt ~got:tf "else branch";
      (tt, if_ ~loc c_elab t_elab f_elab, F.if_ ~loc c' t' f')
  | Member (c, args, x) -> (
      ignore (Env.lookup_concept_exn ~loc env c);
      List.iter (Types.wf_ty ~loc env) args;
      match Env.lookup_model ~loc env c args with
      | None ->
          Diag.resolve_error ~code:"FG0402" ~notes:(Env.no_model_notes env c)
            ~loc "no model of %s in scope for member access"
            (Pretty.constr_to_string (CModel (c, args)))
      | Some fm -> (
          match Types.member_lookup ~loc env (c, args) x with
          | None ->
              Diag.type_error ~code:"FG0206" ~loc
                "concept %s has no member '%s'" c x
          | Some (ty, path) ->
              Coverage.hit p_member;
              record_index (Imodel (loc, c, args));
              (ty, e, F.nth_path ~loc (Types.model_dict_exp ~loc env fm) path)))
  | Let _ | ConceptDecl _ | ModelDecl _ | Using _ | TypeAlias _ ->
      (* dispatched through check_decl by [check] *)
      Diag.ice "check_exp reached a declaration form"

(* MDL: check a model declaration and translate it to a let-bound
   dictionary.  A ground model becomes a tuple (Figure 7).  A
   parameterized model — [model <t̄> where C̄ => C<pat̄> {...}], the
   parameterized-instance extension of Section 6 — becomes a polymorphic
   dictionary FUNCTION: a [fix]-bound type abstraction over the
   parameters (plus associated-type slots) and a lambda over the context
   dictionaries, so instances are built on demand at each use, and the
   model may refer to itself (e.g. equality on lists recursing through
   tails). *)
(* TAPP: instantiate a (repr'd) polymorphic type at explicit type
   arguments — checking the where clause and supplying the associated
   type slots and dictionaries of the plan. *)
and elaborate_tyapp env ~loc ((tf_repr : ty), (f' : F.exp)) (tys : ty list) :
    ty * F.exp =
  match tf_repr with
  | TForall (tvs, constrs, body) ->
      Coverage.hit p_tyapp;
      if constrs <> [] then Coverage.hit p_tyapp_where;
      if List.length tvs <> List.length tys then
        Diag.type_error ~code:"FG0304" ~loc
          "type abstraction expects %d type argument(s) but got %d"
          (List.length tvs) (List.length tys);
      List.iter (Types.wf_ty ~loc env) tys;
      (* Alpha-rename the binders so the plan can be recomputed at this
         site even when the binder names are already in scope here;
         renaming does not change the plan's layout. *)
      let fresh_tvs = List.map (fun a -> Env.fresh env a) tvs in
      let rename = List.map2 (fun a b -> (a, TVar b)) tvs fresh_tvs in
      let constrs_r = List.map (subst_constr_list rename) constrs in
      let _, plan = Types.process_where ~loc env fresh_tvs constrs_r in
      let s = List.combine fresh_tvs tys in
      let s_orig = List.combine tvs tys in
      (* Check the instantiated where clause. *)
      List.iter
        (fun constr ->
          match subst_constr_list s constr with
          | CModel (c, args) -> (
              match Env.lookup_model ~loc env c args with
              | Some _ -> record_index (Imodel (loc, c, args))
              | None ->
                  Diag.resolve_error ~code:"FG0402"
                    ~notes:(Env.no_model_notes env c) ~loc
                    "no model of %s in scope"
                    (Pretty.constr_to_string (CModel (c, args))))
          | CSame (a, b) ->
              if not (Env.ty_eq ~loc env a b) then
                Diag.type_error ~code:"FG0307" ~loc
                  "same-type constraint not satisfied: %s is not equal to %s"
                  (Pretty.ty_to_string a) (Pretty.ty_to_string b))
        constrs_r;
      let result_ty = subst_ty_list s_orig body in
      let ty_args = List.map (Types.translate_ty ~loc env) tys in
      let f_exp =
        if Types.no_requirements plan then F.tyapp ~loc f' ty_args
        else begin
          let slot_actuals = Types.plan_slot_actuals ~loc env ~subst:s plan in
          let dict_actuals = Types.plan_dict_actuals ~loc env ~subst:s plan in
          F.app ~loc (F.tyapp ~loc f' (ty_args @ slot_actuals)) dict_actuals
        end
      in
      (result_ty, f_exp)
  | t ->
      Diag.type_error ~code:"FG0305" ~loc
        "type-applied expression has non-polymorphic type %s"
        (Pretty.ty_to_string t)

(* Infer type arguments for implicit instantiation by one-way matching
   of the declared parameter types (patterns over the binders) against
   the actual argument types.  Associated-type projections over
   undetermined binders cannot be inverted, so they are skipped during
   matching and checked by the ordinary argument-type comparison after
   instantiation.  Every binder must end up determined. *)
and infer_ty_args ~loc env (tvs : string list) (params : ty list)
    (actuals : ty list) : ty list =
  Coverage.hit p_infer;
  let holes = Names.Sset.of_list tvs in
  let bindings : (string, ty) Hashtbl.t = Hashtbl.create 8 in
  let rec go pat actual =
    match pat with
    | TVar a when Names.Sset.mem a holes -> (
        match Hashtbl.find_opt bindings a with
        | Some bound ->
            if not (Env.ty_eq ~loc env bound actual) then
              Diag.type_error ~code:"FG0306" ~loc
                "cannot infer type argument '%s': matched both %s and %s" a
                (Pretty.ty_to_string bound)
                (Pretty.ty_to_string actual)
        | None -> Hashtbl.replace bindings a actual)
    | _ when Names.Sset.is_empty (Names.Sset.inter (ftv pat) holes) -> ()
    | TAssoc _ -> () (* not invertible; checked after instantiation *)
    | _ -> (
        match (pat, Env.ty_repr ~loc env actual) with
        | TList p, TList a -> go p a
        | TArrow (ps, pr), TArrow (as_, ar)
          when List.length ps = List.length as_ ->
            List.iter2 go ps as_;
            go pr ar
        | TTuple ps, TTuple as_ when List.length ps = List.length as_ ->
            List.iter2 go ps as_
        | TForall _, _ -> () (* under binders: leave to the final check *)
        | p, a ->
            Diag.type_error ~code:"FG0306" ~loc
              "cannot infer type arguments: parameter type %s does not \
               match argument type %s"
              (Pretty.ty_to_string p) (Pretty.ty_to_string a))
  in
  List.iter2 go params actuals;
  List.map
    (fun a ->
      match Hashtbl.find_opt bindings a with
      | Some t -> t
      | None ->
          Diag.type_error ~code:"FG0306" ~loc
            "cannot infer type argument '%s'; instantiate explicitly with \
             [...]"
            a)
    tvs

and check_model_decl env ~loc (d : model_decl) :
    (Env.t -> Env.t) * (ty * exp * F.exp -> ty * exp * F.exp) =
  let c = d.m_concept in
  let decl = Env.lookup_concept_exn ~loc env c in
  Types.arity_check ~loc "concept" c
    ~expected:(List.length decl.c_params)
    ~got:(List.length d.m_args);
  let parameterized = d.m_params <> [] in
  Coverage.hit (if parameterized then p_model_param else p_model_ground);
  if d.m_name <> None then Coverage.hit p_model_named;
  (* Parameter hygiene: every parameter must be determined by the
     modeled types, or resolution could never instantiate it. *)
  (match Names.find_duplicate d.m_params with
  | Some p -> Diag.wf_error ~code:"FG0204" ~loc "duplicate model parameter '%s'" p
  | None -> ());
  let args_ftv =
    List.fold_left
      (fun acc t -> Sset.union acc (ftv t))
      Sset.empty d.m_args
  in
  List.iter
    (fun p ->
      if not (Sset.mem p args_ftv) then
        Diag.wf_error ~loc
          "model parameter '%s' does not occur in the modeled type(s)" p)
    d.m_params;
  (* The model's own context: binders + proxy models, like a where
     clause.  For ground models this is a no-op. *)
  let env_m, ctx_plan = Types.process_where ~loc env d.m_params d.m_constrs in
  List.iter (Types.wf_ty ~loc env_m) d.m_args;
  (* Haskell-style ablation: models are globally unique per concept and
     argument list, wherever they are declared.  (For parameterized
     models the comparison is syntactic up to parameter renaming.) *)
  (match env.Env.resolution with
  | Resolution.Lexical -> ()
  | Resolution.Global ->
      let canon params args =
        let ren = List.mapi (fun i p -> (p, TVar (Printf.sprintf "#%d" i))) params in
        List.map (subst_ty_list ren) args
      in
      let mine = canon d.m_params d.m_args in
      if
        List.exists
          (fun (c', args') ->
            String.equal c c'
            && List.length args' = List.length mine
            && List.for_all2 ty_equal args' mine)
          !(env.Env.global_models)
      then
        Diag.resolve_error ~code:"FG0404" ~loc
          "overlapping model of %s (global-resolution mode rejects \
           overlapping models anywhere in the program)"
          (Pretty.constr_to_string (CModel (c, d.m_args)));
      env.Env.global_models := (c, mine) :: !(env.Env.global_models));
  (* Associated-type assignments: exactly the required ones. *)
  (match Names.find_duplicate (List.map fst d.m_assoc) with
  | Some s ->
      Diag.wf_error ~code:"FG0204" ~loc
        "duplicate associated type assignment '%s'" s
  | None -> ());
  List.iter
    (fun (s, ty) ->
      if not (List.mem s decl.c_assoc) then
        Diag.wf_error ~code:"FG0206" ~loc
          "concept %s has no associated type '%s'" c s;
      Types.wf_ty ~loc env_m ty)
    d.m_assoc;
  List.iter
    (fun s ->
      if not (List.mem_assoc s d.m_assoc) then
        Diag.wf_error ~code:"FG0206" ~loc
          "model of %s does not assign associated type '%s'" c s)
    decl.c_assoc;
  (* The equality context in which requirements are interpreted: the
     model's own associated-type assignments are facts. *)
  let own_equations =
    List.map (fun (s, ty) -> (TAssoc (c, d.m_args, s), ty)) d.m_assoc
  in
  let env_eq = Env.assume_all env_m own_equations in
  let dict_var = Env.fresh env c in
  let entry =
    {
      Env.me_concept = c;
      me_params = d.m_params;
      me_constrs = d.m_constrs;
      me_args = d.m_args;
      me_dict = dict_var;
      me_path = [];
      me_assoc =
        List.fold_left
          (fun m (s, ty) -> Smap.add s ty m)
          Smap.empty d.m_assoc;
      me_proxy = false;
    }
  in
  (* Refinement requirement: a model of every refined concept must be
     resolvable. *)
  let refine_entries =
    List.map
      (fun (c', rargs') ->
        match Env.lookup_model ~loc env_eq c' rargs' with
        | Some fm -> fm
        | None ->
            let shown =
              CModel (c', List.map (Env.ty_repr ~loc env_eq) rargs')
            in
            Diag.resolve_error ~loc
              "model of %s requires %s, but no model of %s is in scope"
              (Pretty.constr_to_string (CModel (c, d.m_args)))
              (Pretty.constr_to_string shown)
              (Pretty.constr_to_string shown))
      (Types.refinements ~loc env_eq (c, d.m_args)
      @ Types.requires ~loc env_eq (c, d.m_args))
  in
  (* Same-type requirements of the concept must hold. *)
  List.iter
    (fun (a, b) ->
      if not (Env.ty_eq ~loc env_eq a b) then
        Diag.type_error ~code:"FG0307" ~loc
          "model of %s violates same-type requirement: %s is not equal to %s"
          (Pretty.constr_to_string (CModel (c, d.m_args)))
          (Pretty.ty_to_string a) (Pretty.ty_to_string b))
    (Types.same_requirements ~loc env_eq (c, d.m_args));
  (* Member definitions: exactly the required ones, at the required
     types (with parameters and associated types substituted).
     Parameterized models may refer to themselves (recursive
     instances), so the entry is in scope for their member bodies. *)
  (match Names.find_duplicate (List.map fst d.m_members) with
  | Some x ->
      Diag.wf_error ~code:"FG0204" ~loc "duplicate member definition '%s'" x
  | None -> ());
  List.iter
    (fun (x, _) ->
      if not (List.mem_assoc x decl.c_members) then
        Diag.wf_error ~code:"FG0206" ~loc "concept %s has no member '%s'" c x)
    d.m_members;
  let member_subst = Types.instantiation_subst ~loc env_eq (c, d.m_args) in
  (* Missing members fall back to the concept's defaults, instantiated
     at this model's types.  Defaults may call the model's other members
     through the dictionary being defined, so their presence puts the
     model itself in scope and fix-binds the dictionary. *)
  let uses_defaults =
    List.exists
      (fun (x, _) ->
        (not (List.mem_assoc x d.m_members))
        && List.mem_assoc x decl.c_defaults)
      decl.c_members
  in
  if uses_defaults then Coverage.hit p_model_defaults;
  let env_members =
    if parameterized || uses_defaults then Env.bind_model env_eq entry
    else env_eq
  in
  let member_results =
    List.map
      (fun (x, required_ty) ->
        match
          match List.assoc_opt x d.m_members with
          | Some e -> Some e
          | None ->
              Option.map
                (subst_ty_exp (subst_of_list member_subst))
                (List.assoc_opt x decl.c_defaults)
        with
        | None ->
            Diag.wf_error ~code:"FG0206" ~loc
              "model of %s does not define member '%s'"
              (Pretty.constr_to_string (CModel (c, d.m_args)))
              x
        | Some e_member ->
            let expected = subst_ty_list member_subst required_ty in
            let got, elab_member, f_member = check env_members e_member in
            if not (Env.ty_eq ~loc:e_member.loc env_members expected got) then
              type_mismatch ~loc:e_member.loc ~expected ~got
                (Printf.sprintf "member '%s' of model of %s" x
                   (Pretty.constr_to_string (CModel (c, d.m_args))));
            (x, elab_member, f_member))
      decl.c_members
  in
  let members' = List.map (fun (_, _, f) -> f) member_results in
  (* Build the dictionary (Figure 7): refined dictionaries first, then
     the member values. *)
  let refine_dict_exps =
    List.map (fun fm -> Types.model_dict_exp ~loc env_eq fm) refine_entries
  in
  let dict_core = F.tuple ~loc (refine_dict_exps @ members') in
  let dict_rhs =
    if not parameterized then
      if uses_defaults then
        F.fix ~loc dict_var (Types.dict_type ~loc env_eq (c, d.m_args))
          dict_core
      else dict_core
    else begin
      (* Polymorphic dictionary function, fix-bound for self-reference. *)
      let slots = List.map fst ctx_plan.Types.p_slots in
      let inner_dict_ty = Types.dict_type ~loc env_eq (c, d.m_args) in
      let ctx_dict_params =
        List.map (fun (dv, _, dty) -> (dv, dty)) ctx_plan.Types.p_dicts
      in
      let poly_body =
        if Types.no_requirements ctx_plan then dict_core
        else F.abs ~loc ctx_dict_params dict_core
      in
      let poly = F.tyabs ~loc (d.m_params @ slots) poly_body in
      let poly_ty =
        F.TForall
          ( d.m_params @ slots,
            if Types.no_requirements ctx_plan then inner_dict_ty
            else F.TArrow (List.map snd ctx_dict_params, inner_dict_ty) )
      in
      F.fix ~loc dict_var poly_ty poly
    end
  in
  (* The body of the declaration is checked OUTSIDE the model's own
     parameter scope; ground models additionally publish their
     associated-type equations (parameterized ones are schematic and
     resolved by normalization instead).  A NAMED model is recorded but
     not activated — [using] activates it. *)
  (* Shadowed-model warning: an unnamed ground model whose argument
     types exactly repeat an in-scope (non-proxy) ground model of the
     same concept makes the earlier one unreachable for the rest of
     this scope.  Lexical shadowing is a feature (Section 3.2), so this
     is a warning, not an error — and the Global ablation already
     rejects the program outright. *)
  (match (env.Env.resolution, d.m_name, parameterized) with
  | Resolution.Lexical, None, false ->
      if
        List.exists
          (fun me ->
            me.Env.me_params = []
            && (not me.Env.me_proxy)
            && String.equal me.Env.me_concept c
            && List.length me.Env.me_args = List.length d.m_args
            && List.for_all2 ty_equal me.Env.me_args d.m_args)
          env.Env.models
      then
        Diag.warn
          !(env.Env.diag)
          ~code:"FG0701" ~loc Resolve
          "this model of %s shadows an earlier model of the same types"
          (Pretty.constr_to_string (CModel (c, d.m_args)))
  | _ -> ());
  let extend env =
    match d.m_name with
    | Some m -> Env.bind_named_model env m entry
    | None ->
        let base =
          if parameterized then env else Env.assume_all env own_equations
        in
        Env.bind_model base entry
  in
  ( extend,
    fun (tbody, body_elab, body') ->
      (* The model (and the meaning of its associated-type projections)
         goes out of scope here; resolve this model's projections in the
         result type so they do not escape. *)
      let tbody =
        if parameterized then tbody
        else resolve_own_projections c d.m_args d.m_assoc tbody
      in
      let d_elab =
        { d with m_members = List.map (fun (x, a, _) -> (x, a)) member_results }
      in
      ( tbody,
        model_decl ~loc d_elab body_elab,
        F.let_ ~loc dict_var dict_rhs body' ) )

(* Structurally replace this model's associated-type projections
   [c<args>.s] by their assignments, everywhere in a type. *)
and resolve_own_projections c margs massoc ty =
  let rec go t =
    match t with
    | TBase _ | TVar _ -> t
    | TArrow (args, ret) -> TArrow (List.map go args, go ret)
    | TTuple ts -> TTuple (List.map go ts)
    | TList t -> TList (go t)
    | TAssoc (c', args, s) -> (
        let args = List.map go args in
        match List.assoc_opt s massoc with
        | Some def
          when String.equal c c'
               && List.length args = List.length margs
               && List.for_all2 ty_equal args margs ->
            go def
        | _ -> TAssoc (c', args, s))
    | TForall (tvs, constrs, body) ->
        TForall (tvs, List.map (go_constr) constrs, go body)
  and go_constr = function
    | CModel (c', args) -> CModel (c', List.map go args)
    | CSame (a, b) -> CSame (go a, go b)
  in
  go ty

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

(** Check the declaration spine of [e] — every leading concept / model /
    let / using / type-alias — and stop at the first non-declaration.
    Returns the extended environment, the residual body, and the
    composed wrapper rebuilding whole-program results from body
    results.  A {!Session} runs this once over its prelude; checking a
    program against the prelude is then [wrap (check env program)]. *)
let check_prefix (env : Env.t) (e : exp) :
    Env.t * exp * (ty * exp * F.exp -> ty * exp * F.exp) =
  let rec walk env e acc =
    match check_decl env e with
    | Some (env', body, wrap) -> walk env' body (wrap :: acc)
    | None ->
        (env, e, fun res -> List.fold_left (fun res w -> w res) res acc)
  in
  walk env e []

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

(* The names a failed declaration would have bound.  An unnamed model
   binds no name, so its concept stands in: later "no model of C<...>"
   errors are almost certainly consequences of this failure. *)
let decl_poison (e : exp) : string list =
  match e.desc with
  | Let (x, _, _) -> [ x ]
  | ConceptDecl (d, _) -> [ d.c_name ]
  | ModelDecl (d, _) -> (
      match d.m_name with Some m -> [ m ] | None -> [ d.m_concept ])
  | TypeAlias (t, _, _) -> [ t ]
  | _ -> []

let decl_body (e : exp) : exp option =
  match e.desc with
  | Let (_, _, b)
  | ConceptDecl (_, b)
  | ModelDecl (_, b)
  | Using (_, b)
  | TypeAlias (_, _, b) ->
      Some b
  | _ -> None

(** Is [d] a likely consequence of an earlier failure that poisoned one
    of [poisoned]?  Diagnostic messages quote user names as ['name'],
    and failed resolutions read "no model of C<...>"; matching on those
    shapes suppresses the echo of an error already reported without a
    structured provenance channel through every raise site. *)
let is_cascade poisoned (d : Diag.diagnostic) =
  Sset.exists
    (fun n ->
      Strutil.contains ~needle:("'" ^ n ^ "'") d.Diag.message
      || Strutil.contains ~needle:("no model of " ^ n ^ "<") d.Diag.message)
    poisoned

(** Like {!check_prefix}, but a declaration that fails to check is
    reported to [engine] and skipped — its bindings are poisoned (added
    to the returned set) rather than made, and diagnostics that mention
    a poisoned name are suppressed as cascades.  [poisoned] seeds the
    set with names whose declarations were already dropped upstream
    (the recovering parser).  The composed wrapper covers only the
    declarations that checked; it rebuilds a meaningful program iff the
    engine recorded no errors. *)
let check_prefix_recovering ~engine ?(poisoned = Sset.empty) (env : Env.t)
    (e : exp) :
    Env.t * exp * (ty * exp * F.exp -> ty * exp * F.exp) * Sset.t =
  let rec walk env e acc poisoned =
    match check_decl env e with
    | Some (env', body, wrap) -> walk env' body (wrap :: acc) poisoned
    | None -> (env, e, acc, poisoned)
    | exception Diag.Error d ->
        Coverage.hit p_recover_poison;
        if not (is_cascade poisoned d) then Diag.report engine d;
        let poisoned =
          List.fold_left (fun s n -> Sset.add n s) poisoned (decl_poison e)
        in
        (* [check_decl] only raises on declaration forms, so the body is
           always there to continue with. *)
        (match decl_body e with
        | Some body -> walk env body acc poisoned
        | None -> (env, e, acc, poisoned))
  in
  let env', residual, acc, poisoned = walk env e [] poisoned in
  ( env',
    residual,
    (fun res -> List.fold_left (fun res w -> w res) res acc),
    poisoned )

(** Type check a closed FG program, returning its type, its elaborated
    form (implicit instantiations made explicit — the term the direct
    interpreter should run), and its System F translation. *)
let elaborate ?resolution ?escape_check (e : exp) : ty * exp * F.exp =
  check (Env.create ?resolution ?escape_check ()) e

(** Type check and translate a closed FG program. *)
let check_program ?resolution ?escape_check (e : exp) : ty * F.exp =
  let ty, _, f = elaborate ?resolution ?escape_check e in
  (ty, f)

(** Type check only. *)
let typecheck ?resolution ?escape_check (e : exp) : ty =
  fst (check_program ?resolution ?escape_check e)

(** Translate only. *)
let translate ?resolution ?escape_check (e : exp) : F.exp =
  snd (check_program ?resolution ?escape_check e)

let check_result ?resolution ?escape_check e =
  Diag.protect (fun () -> check_program ?resolution ?escape_check e)
