(** Client side of the [fgc serve] wire protocol: blocking
    single-request calls and a pipelined batch mode that streams many
    requests through one connection with a bounded in-flight window,
    out-of-order response matching by id, bounded overload retries,
    and request-order results. *)

type conn

exception Client_error of string

(** All failures (connect, framing, bad responses) raise
    {!Client_error} with a human-readable message. *)

(** [rcv_timeout] (seconds) bounds every blocking read on the
    connection ([SO_RCVTIMEO]), so a hung server surfaces as a
    {!Client_error} instead of a stuck caller — the peer cache tier
    connects with a short one. *)
val connect :
  ?max_frame:int -> ?rcv_timeout:float -> Protocol.address -> conn

val close : conn -> unit

(** Send one request (no wait). *)
val send : conn -> Protocol.request -> unit

(** Send one raw payload as a frame / raw bytes on the wire — for
    tests and the CI probe that deliberately violate the protocol. *)
val send_raw_frame : conn -> string -> unit

val send_raw_bytes : conn -> string -> unit

(** Block until the next complete response frame. *)
val read_response : conn -> Protocol.response

(** Send, then read the matching response (checks the id echo). *)
val request : conn -> Protocol.request -> Protocol.response

val default_window : int

(** [backoff_ms rng ~attempt] — the pause (in milliseconds) before
    overload retry number [attempt] (0-based): exponential from 2ms,
    capped at 200ms, jittered uniformly into [delay/2, delay].  Pure
    in the generator, so a seed replays the exact delay sequence. *)
val backoff_ms : Fg_util.Prng.t -> attempt:int -> int * Fg_util.Prng.t

(** [batch c reqs] — pipeline every request through [c] with at most
    [window] in flight; overloaded requests are retried up to
    [overload_retries] times with {!backoff_ms} pauses (jitter drawn
    from a generator seeded by [backoff_seed], so tests are
    deterministic).  A request's accumulated backoff never exceeds its
    own [timeout_ms], if set — past that the overload is returned
    as-is.  Results come back in request order carrying the caller's
    original ids. *)
val batch :
  ?window:int -> ?overload_retries:int -> ?backoff_seed:int -> conn ->
  Protocol.request list -> Protocol.response list

val stats : conn -> Protocol.response
val shutdown : conn -> Protocol.response

val run_file :
  conn -> ?timeout_ms:int -> ?prelude:bool -> ?global_models:bool ->
  file:string -> string -> Protocol.response

(** {1 Cache peer tier (protocol v3)}

    [key] and the returned/offered blob are raw bytes; both are
    hex-encoded on the wire.  Neither call raises on a cooperating
    server: a missing entry, a cache-less peer, or a malformed payload
    all read as [None] / [false]. *)

val cache_get : conn -> key:string -> string option
val cache_put : conn -> key:string -> data:string -> bool

(** {1 Fleet fuzzing (protocol v4)} *)

(** What one [fuzz_batch] round-trip brings back: the fleet-merged
    coverage map, the corpus entries this worker lacks, and the fleet
    counters. *)
type fuzz_sync = {
  fs_coverage : Fg_util.Coverage.map;
  fs_corpus : (string * string) list;  (** [(digest, source)] to adopt *)
  fs_batches : int;
  fs_corpus_size : int;
}

(** Merge this worker's coverage map and corpus offers into the
    daemon's fleet state; [have] lists digests already held so the
    reply only carries what is missing.  [None] on a non-[ok] status
    or an unreadable payload (e.g. a pre-v4 daemon). *)
val fuzz_batch :
  conn -> coverage:Fg_util.Coverage.map ->
  corpus_entries:(string * string) list -> have:string list ->
  fuzz_sync option

(** {1 Workspace language service (protocol v5)}

    All calls return the raw response; payloads are the service's
    rendered JSON documents (a [doc_open]/[doc_change]/
    [doc_diagnostics] payload is byte-identical to one-shot
    [fgc run --format=json] of the same text). *)

val doc_open :
  conn -> ?version:int -> ?prelude:bool -> ?global_models:bool ->
  ?backend:Fg_core.Backend.t -> name:string -> string -> Protocol.response

(** [change] is [`Text full_source] or [`Edits splices] with each
    splice [(start, len, text)] in pre-edit byte offsets. *)
val doc_change :
  conn -> version:int -> name:string ->
  [ `Text of string | `Edits of (int * int * string) list ] ->
  Protocol.response

val doc_close : conn -> name:string -> Protocol.response
val doc_diagnostics : conn -> name:string -> Protocol.response
val hover : conn -> name:string -> offset:int -> Protocol.response
val definition : conn -> name:string -> offset:int -> Protocol.response
val completion : conn -> name:string -> offset:int -> Protocol.response
