(** The System FG type checker and its type-directed translation to
    System F (paper Figures 9 and 13, presented as one judgment
    [Γ ⊢ e : τ ⇒ f]), extended with the Section 6 features:
    parameterized models, implicit instantiation, and member defaults. *)

open Ast
module F := Fg_systemf.Ast

(** Embed a System F type into FG (used for primitive type schemes). *)
val ty_of_f : F.ty -> ty

(** The main judgment on a closed program: its FG type, its ELABORATED
    form (implicit instantiations made explicit — the term the direct
    interpreter runs), and its System F translation.
    [escape_check] (default true) enforces the CPT side condition
    [c ∉ CV(τ)]; disable it only to inspect generic values whose types
    mention locally declared concepts. *)
val elaborate :
  ?resolution:Resolution.mode -> ?escape_check:bool -> exp ->
  ty * exp * F.exp

(** Type check and translate a closed FG program. *)
val check_program :
  ?resolution:Resolution.mode -> ?escape_check:bool -> exp -> ty * F.exp

(** Type check only. *)
val typecheck :
  ?resolution:Resolution.mode -> ?escape_check:bool -> exp -> ty

(** Translate only. *)
val translate :
  ?resolution:Resolution.mode -> ?escape_check:bool -> exp -> F.exp

val check_result :
  ?resolution:Resolution.mode -> ?escape_check:bool -> exp ->
  (ty * F.exp, Fg_util.Diag.diagnostic) result

(** The judgment under an explicit environment (library extension
    point; the entry points above use [Env.create]). *)
val check : Env.t -> exp -> ty * exp * F.exp

(** What the workspace position index taps during checking: the
    inferred type of every (non-dummy-span) expression, and each
    successful model resolution — at a member access or in an
    instantiated where clause — with the concept and its ground
    arguments. *)
type index_entry =
  | Itype of Fg_util.Loc.t * ty
  | Imodel of Fg_util.Loc.t * string * ty list

(** Run [thunk] with [f] installed as this domain's index sink (the
    previous sink is restored on exit).  With no sink installed —
    the default on every domain — recording is a no-op, so checking
    results and cached units are byte-identical either way. *)
val with_index_sink : (index_entry -> unit) -> (unit -> 'a) -> 'a

(** One declaration node: [Some (extend, body, wrap)] when the
    expression is a declaration form (let / concept / model / using /
    type alias) with body [body].  All of the declaration's own work —
    well-formedness, member checking, dictionary construction,
    fresh-name generation — happens eagerly in this call; [extend]
    rebuilds the extended environment from the environment the
    declaration was checked under, or from any later environment of the
    same family that binds the same dependencies (this is what lets
    {!Unit} replay a cached declaration without re-checking it), and
    [wrap] turns the body's checked triple into the declaration's.
    Raises [Diag.Error] when the declaration itself is ill-typed;
    returns [None] on non-declarations. *)
val check_decl_parts :
  Env.t ->
  exp ->
  ((Env.t -> Env.t) * exp * (ty * exp * F.exp -> ty * exp * F.exp)) option

(** The names a failed declaration would have bound (an unnamed model
    binds none, so its concept stands in) — recovery poisons these. *)
val decl_poison : exp -> string list

(** The body of a declaration form, if the expression is one. *)
val decl_body : exp -> exp option

(** Check the declaration spine of a program — every leading concept /
    model / let / using / type-alias declaration — without checking a
    body.  Returns the extended environment, the residual (first
    non-declaration) expression, and a wrapper that rebuilds the whole
    program's (type, elaborated term, translation) from the body's.
    This is the primitive behind {!Session}'s cached prelude: the
    prelude's spine is checked once, then each program is checked as
    [wrap (check env program)]. *)
val check_prefix : Env.t -> exp -> Env.t * exp * (ty * exp * F.exp -> ty * exp * F.exp)

(** Like {!check_prefix}, but a declaration that fails to check is
    reported to [engine] and skipped: its bindings are poisoned instead
    of made, and later diagnostics mentioning a poisoned name are
    suppressed as cascades.  [poisoned] seeds the set (names dropped by
    the recovering parser).  Returns the final poisoned set alongside
    the usual triple; the composed wrapper only covers the declarations
    that checked, so use its result only when the engine recorded no
    errors. *)
val check_prefix_recovering :
  engine:Fg_util.Diag.engine ->
  ?poisoned:Fg_util.Names.Sset.t ->
  Env.t ->
  exp ->
  Env.t
  * exp
  * (ty * exp * F.exp -> ty * exp * F.exp)
  * Fg_util.Names.Sset.t

(** Is this diagnostic a likely cascade of a failure that poisoned one
    of the given names?  (Matches quoted names and failed resolutions
    of poisoned concepts in the message.) *)
val is_cascade : Fg_util.Names.Sset.t -> Fg_util.Diag.diagnostic -> bool
