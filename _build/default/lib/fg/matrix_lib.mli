(** A semiring-generic linear-algebra library written in FG: a
    [Semiring] concept, three named models (arith, boolean, tropical),
    and generic algorithms (dot, vec_add, vec_scale, mat_vec, column,
    transpose, mat_mul, identity_matrix, mat_pow) — one multiplication
    computing arithmetic, reachability and shortest paths. *)

val concepts : string
val models : string
val algorithms : string

(** Prelude + concept + models + algorithms. *)
val full : string

val wrap : string -> string

(** Matrix literal at an element type from rows of cell syntax. *)
val matrix_src : string -> string list list -> string

val int_matrix : int list list -> string
val bool_matrix : bool list list -> string
