(* The standalone .fg program files under programs/: each must be in
   sync with the corpus (same source) and must run to the value stated
   in its header comment.  Regenerate with
   `dune exec tools/gen_programs.exe` after changing the corpus. *)

open Fg_core

let programs_dir = "../programs"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_files_in_sync () =
  List.iter
    (fun (e : Corpus.entry) ->
      match e.expected with
      | Corpus.Value v ->
          let path = Filename.concat programs_dir (e.name ^ ".fg") in
          if not (Sys.file_exists path) then
            Alcotest.failf
              "missing %s — run `dune exec tools/gen_programs.exe`" path;
          let expected =
            Printf.sprintf "// %s (%s)\n// expected value: %s\n%s\n"
              e.description e.paper (Interp.flat_to_string v) e.source
          in
          Alcotest.(check string) (e.name ^ ".fg in sync") expected
            (read_file path)
      | Corpus.Fails _ -> ())
    Corpus.all

let test_files_run () =
  Sys.readdir programs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fg")
  |> List.iter (fun f ->
         let path = Filename.concat programs_dir f in
         let src = read_file path in
         (* the stated expectation is in the second header line *)
         let expected =
           match String.split_on_char '\n' src with
           | _ :: second :: _ ->
               let prefix = "// expected value: " in
               if String.length second > String.length prefix then
                 String.sub second (String.length prefix)
                   (String.length second - String.length prefix)
               else Alcotest.failf "%s: malformed header" f
           | _ -> Alcotest.failf "%s: malformed header" f
         in
         match Pipeline.run_result ~file:f src with
         | Ok out ->
             Alcotest.(check string) f expected
               (Interp.flat_to_string out.value)
         | Error d -> Alcotest.failf "%s: %s" f (Fg_util.Diag.to_string d))

let test_file_count () =
  let n =
    Sys.readdir programs_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fg")
    |> List.length
  in
  Alcotest.(check int) "one file per positive corpus entry"
    (List.length Corpus.positive)
    n

let suite =
  [
    Alcotest.test_case "files in sync with corpus" `Quick test_files_in_sync;
    Alcotest.test_case "files run to stated values" `Quick test_files_run;
    Alcotest.test_case "file count" `Quick test_file_count;
  ]
