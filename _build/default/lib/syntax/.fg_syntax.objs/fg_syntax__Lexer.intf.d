lib/syntax/lexer.mli: Fg_util Token
