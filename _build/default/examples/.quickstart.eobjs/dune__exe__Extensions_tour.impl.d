examples/extensions_tour.ml: Fg_core Fg_systemf Fmt Printf
