(** First-order terms over uninterpreted function symbols.

    Clients of the congruence closure encode their objects as terms.  A
    symbol is a plain string; arity is implicit in the argument list,
    and the same symbol name at two different arities denotes two
    different function symbols. *)

type t = { sym : string; args : t list }

val make : string -> t list -> t
val const : string -> t

val equal : t -> t -> bool

(** Node count. *)
val size : t -> int

val depth : t -> int

(** Total order: by size, then structure — the default representative
    preference (smallest term wins, deterministically). *)
val compare : t -> t -> int

val pp : t Fmt.t
val to_string : t -> string
