(** Substitution-based small-step (CBV, leftmost-outermost) semantics
    for System F.

    The big-step evaluator ({!Eval}) is environment-based with
    backpatched [fix]; this module gives the textbook substitution
    semantics instead, so the two can be tested against each other — a
    third, independent check on the translation's output (alongside the
    FG direct interpreter).

    Values are the expected term forms: literals, lambdas, type
    abstractions, tuples of values, [nil]/[cons]-spines, and partially
    applied primitives.  One {!step} contracts the leftmost-outermost
    redex; {!normalize} iterates under a fuel bound. *)

open Ast
open Fg_util
module Smap = Names.Smap
module Sset = Names.Sset

(* ---------------------------------------------------------------- *)
(* Term substitution (capture-avoiding)                               *)

let rec fv (e : exp) : Sset.t =
  match e.desc with
  | Var x -> Sset.singleton x
  | Lit _ | Prim _ -> Sset.empty
  | App (f, args) ->
      List.fold_left (fun acc a -> Sset.union acc (fv a)) (fv f) args
  | Abs (params, body) ->
      Sset.diff (fv body) (Sset.of_list (List.map fst params))
  | TyAbs (_, body) -> fv body
  | TyApp (f, _) -> fv f
  | Let (x, rhs, body) -> Sset.union (fv rhs) (Sset.remove x (fv body))
  | Tuple es ->
      List.fold_left (fun acc a -> Sset.union acc (fv a)) Sset.empty es
  | Nth (e0, _) -> fv e0
  | Fix (x, _, body) -> Sset.remove x (fv body)
  | If (c, t, f) -> Sset.union (fv c) (Sset.union (fv t) (fv f))

let rec rename_if_needed avoid x =
  if Sset.mem x avoid then rename_if_needed avoid (x ^ "'") else x

(** [subst x v e] — capture-avoiding substitution of [v] for [x]. *)
let rec subst (x : string) (v : exp) (e : exp) : exp =
  let sub = subst x v in
  let fv_v = fv v in
  let desc =
    match e.desc with
    | Var y -> if String.equal x y then v.desc else e.desc
    | (Lit _ | Prim _) as d -> d
    | App (f, args) -> App (sub f, List.map sub args)
    | Abs (params, body) ->
        if List.exists (fun (y, _) -> String.equal x y) params then e.desc
        else begin
          (* rename any binder that would capture a free var of v *)
          let body, params =
            List.fold_left
              (fun (body, acc) (y, t) ->
                if Sset.mem y fv_v then begin
                  let y' =
                    rename_if_needed (Sset.union fv_v (fv body)) y
                  in
                  (subst y (var y') body, acc @ [ (y', t) ])
                end
                else (body, acc @ [ (y, t) ]))
              (body, []) params
          in
          Abs (params, sub body)
        end
    | TyAbs (tvs, body) -> TyAbs (tvs, sub body)
    | TyApp (f, tys) -> TyApp (sub f, tys)
    | Let (y, rhs, body) ->
        if String.equal x y then Let (y, sub rhs, body)
        else if Sset.mem y fv_v then begin
          let y' = rename_if_needed (Sset.union fv_v (fv body)) y in
          Let (y', sub rhs, sub (subst y (var y') body))
        end
        else Let (y, sub rhs, sub body)
    | Tuple es -> Tuple (List.map sub es)
    | Nth (e0, k) -> Nth (sub e0, k)
    | Fix (y, t, body) ->
        if String.equal x y then e.desc
        else if Sset.mem y fv_v then begin
          let y' = rename_if_needed (Sset.union fv_v (fv body)) y in
          Fix (y', t, sub (subst y (var y') body))
        end
        else Fix (y, t, sub body)
    | If (c, t, f) -> If (sub c, sub t, sub f)
  in
  { e with desc }

(* ---------------------------------------------------------------- *)
(* Values                                                             *)

(* A primitive application spine: App(...(App(Prim p, a1), ...), ak)
   flattened to (p, [a1; ...; ak]). *)
let rec prim_spine (e : exp) : (string * exp list) option =
  match e.desc with
  | Prim p -> Some (p, [])
  | TyApp (f, _) -> prim_spine f
  | App (f, args) -> (
      match prim_spine f with
      | Some (p, collected) -> Some (p, collected @ args)
      | None -> None)
  | _ -> None

let rec is_value (e : exp) : bool =
  match e.desc with
  | Lit _ | Abs _ | TyAbs _ -> true
  | Prim _ -> true
  | Tuple es -> List.for_all is_value es
  | TyApp ({ desc = Prim _; _ }, _) -> true (* nil[t], cons[t], ... *)
  | App _ -> (
      (* constructor spines and partial primitive applications *)
      match prim_spine e with
      | Some (p, args) when List.for_all is_value args -> (
          match Prims.lookup p with
          | Some info ->
              if p = "cons" then List.length args <= info.arity
              else List.length args < info.arity
          | None -> false)
      | _ -> false)
  | _ -> false

(* Lists as terms: read a cons/nil spine into OCaml list of values. *)
let rec read_list (e : exp) : exp list option =
  match e.desc with
  | TyApp ({ desc = Prim "nil"; _ }, _) -> Some []
  | _ -> (
      match prim_spine e with
      | Some ("cons", [ hd; tl ]) ->
          Option.map (fun rest -> hd :: rest) (read_list tl)
      | _ -> None)

(* Rebuild a term list at element type t. *)
let rec build_list ~loc t = function
  | [] -> tyapp ~loc (prim ~loc "nil") [ t ]
  | hd :: tl ->
      app ~loc (tyapp ~loc (prim ~loc "cons") [ t ]) [ hd; build_list ~loc t tl ]

(* The element type of a list-typed spine, recovered from its nil. *)
let rec list_elt_ty (e : exp) : ty option =
  match e.desc with
  | TyApp ({ desc = Prim "nil"; _ }, [ t ]) -> Some t
  | _ -> (
      match prim_spine e with
      | Some ("cons", [ _; tl ]) -> list_elt_ty tl
      | _ -> None)

(* ---------------------------------------------------------------- *)
(* Delta rules on terms                                               *)

let delta ?loc (p : string) (args : exp list) : exp =
  let int_of e =
    match e.desc with
    | Lit (LInt n) -> n
    | _ -> Diag.eval_error ?loc "step: primitive '%s' expects an int" p
  in
  let bool_of e =
    match e.desc with
    | Lit (LBool b) -> b
    | _ -> Diag.eval_error ?loc "step: primitive '%s' expects a bool" p
  in
  let i n = int ?loc n and b v = bool ?loc v in
  match (p, args) with
  | "iadd", [ x; y ] -> i (int_of x + int_of y)
  | "isub", [ x; y ] -> i (int_of x - int_of y)
  | "imult", [ x; y ] -> i (int_of x * int_of y)
  | "idiv", [ x; y ] ->
      if int_of y = 0 then Diag.eval_error ?loc "division by zero"
      else i (int_of x / int_of y)
  | "imod", [ x; y ] ->
      if int_of y = 0 then Diag.eval_error ?loc "modulo by zero"
      else i (int_of x mod int_of y)
  | "ineg", [ x ] -> i (-int_of x)
  | "imin", [ x; y ] -> i (min (int_of x) (int_of y))
  | "imax", [ x; y ] -> i (max (int_of x) (int_of y))
  | "ilt", [ x; y ] -> b (int_of x < int_of y)
  | "ile", [ x; y ] -> b (int_of x <= int_of y)
  | "igt", [ x; y ] -> b (int_of x > int_of y)
  | "ige", [ x; y ] -> b (int_of x >= int_of y)
  | "ieq", [ x; y ] -> b (int_of x = int_of y)
  | "ineq", [ x; y ] -> b (int_of x <> int_of y)
  | "band", [ x; y ] -> b (bool_of x && bool_of y)
  | "bor", [ x; y ] -> b (bool_of x || bool_of y)
  | "bnot", [ x ] -> b (not (bool_of x))
  | "beq", [ x; y ] -> b (bool_of x = bool_of y)
  | "car", [ ls ] -> (
      match read_list ls with
      | Some (hd :: _) -> hd
      | Some [] -> Diag.eval_error ?loc "car of empty list"
      | None -> Diag.eval_error ?loc "step: car of non-list")
  | "cdr", [ ls ] -> (
      match (read_list ls, list_elt_ty ls) with
      | Some (_ :: tl), Some t -> build_list ~loc:Loc.dummy t tl
      | Some [], _ -> Diag.eval_error ?loc "cdr of empty list"
      | _ -> Diag.eval_error ?loc "step: cdr of non-list")
  | "null", [ ls ] -> (
      match read_list ls with
      | Some [] -> b true
      | Some _ -> b false
      | None -> Diag.eval_error ?loc "step: null of non-list")
  | "length", [ ls ] -> (
      match read_list ls with
      | Some xs -> i (List.length xs)
      | None -> Diag.eval_error ?loc "step: length of non-list")
  | "append", [ xs; ys ] -> (
      match (read_list xs, read_list ys, list_elt_ty xs, list_elt_ty ys) with
      | Some a, Some c, t1, t2 -> (
          match (t1, t2) with
          | Some t, _ | None, Some t -> build_list ~loc:Loc.dummy t (a @ c)
          | None, None -> Diag.eval_error ?loc "step: append of non-lists")
      | _ -> Diag.eval_error ?loc "step: append of non-lists")
  | _ -> Diag.eval_error ?loc "step: no delta rule for '%s'" p

(* ---------------------------------------------------------------- *)
(* One step                                                           *)

let rec step (e : exp) : exp option =
  let loc = e.loc in
  if is_value e then None
  else
    match e.desc with
    | Var x -> Diag.eval_error ~loc "step: free variable '%s'" x
    | Lit _ | Prim _ | Abs _ | TyAbs _ -> None
    | App (f, args) -> (
        match step f with
        | Some f' -> Some (app ~loc f' args)
        | None -> (
            (* step the leftmost non-value argument *)
            match step_first args with
            | Some args' -> Some (app ~loc f args')
            | None -> (
                match f.desc with
                | Abs (params, body) ->
                    if List.length params <> List.length args then
                      Diag.eval_error ~loc "step: arity mismatch"
                    else
                      Some
                        (List.fold_left2
                           (fun acc (x, _) v -> subst x v acc)
                           body params args)
                | _ -> (
                    match prim_spine e with
                    | Some (p, all_args) -> (
                        match Prims.lookup p with
                        | Some info when List.length all_args = info.arity ->
                            Some (delta ~loc p all_args)
                        | _ ->
                            Diag.eval_error ~loc
                              "step: application of non-function")
                    | None ->
                        Diag.eval_error ~loc
                          "step: application of non-function"))))
    | TyApp (f, tys) -> (
        match step f with
        | Some f' -> Some (tyapp ~loc f' tys)
        | None -> (
            match f.desc with
            | TyAbs (tvs, body) ->
                if List.length tvs <> List.length tys then
                  Diag.eval_error ~loc "step: type arity mismatch"
                else
                  Some
                    (subst_ty_exp
                       (List.fold_left2
                          (fun m a t -> Smap.add a t m)
                          Smap.empty tvs tys)
                       body)
            | _ -> Diag.eval_error ~loc "step: type application of non-Λ"))
    | Let (x, rhs, body) -> (
        match step rhs with
        | Some rhs' -> Some (let_ ~loc x rhs' body)
        | None -> Some (subst x rhs body))
    | Tuple es -> (
        match step_first es with
        | Some es' -> Some (tuple ~loc es')
        | None -> None)
    | Nth (e0, k) -> (
        match step e0 with
        | Some e0' -> Some (nth ~loc e0' k)
        | None -> (
            match e0.desc with
            | Tuple vs when k >= 0 && k < List.length vs ->
                Some (List.nth vs k)
            | _ -> Diag.eval_error ~loc "step: nth of non-tuple"))
    | Fix (x, t, body) ->
        (* unfold: fix x. e  →  [x := fix x. e] e *)
        Some (subst x (fix ~loc x t body) body)
    | If (c, t, f) -> (
        match step c with
        | Some c' -> Some (if_ ~loc c' t f)
        | None -> (
            match c.desc with
            | Lit (LBool true) -> Some t
            | Lit (LBool false) -> Some f
            | _ -> Diag.eval_error ~loc "step: if on non-bool"))

and step_first (es : exp list) : exp list option =
  match es with
  | [] -> None
  | e :: rest -> (
      match step e with
      | Some e' -> Some (e' :: rest)
      | None -> Option.map (fun rest' -> e :: rest') (step_first rest))

(* ---------------------------------------------------------------- *)
(* Multi-step                                                         *)

(** Reduce to a value; returns the normal form and the number of steps
    taken.  Raises on stuck terms or fuel exhaustion. *)
let normalize ?(fuel = 1_000_000) (e : exp) : exp * int =
  let rec go e n fuel =
    if fuel <= 0 then
      Diag.eval_error ~loc:e.loc "small-step fuel exhausted after %d steps" n
    else
      match step e with
      | None ->
          if is_value e then (e, n)
          else Diag.eval_error ~loc:e.loc "small-step: stuck term"
      | Some e' -> go e' (n + 1) (fuel - 1)
  in
  go e 0 fuel

(** Convert a first-order normal form to a big-step {!Eval.value} for
    comparison; function-like values become closures only structurally
    comparable as "some function", so they are mapped to a canonical
    dummy primitive value. *)
let rec value_of_normal_form (e : exp) : Eval.value =
  match e.desc with
  | Lit (LInt n) -> Eval.VInt n
  | Lit (LBool b) -> Eval.VBool b
  | Lit LUnit -> Eval.VUnit
  | Tuple es -> Eval.VTuple (List.map value_of_normal_form es)
  | _ -> (
      match read_list e with
      | Some vs -> Eval.VList (List.map value_of_normal_form vs)
      | None ->
          if is_value e then Eval.VPrim ("<fun>", 1, [])
          else
            Diag.eval_error ~loc:e.loc
              "value_of_normal_form: not a normal form")

(** Big-step/small-step agreement on a closed program: evaluate both
    ways and compare first-order structure.  Returns the two step
    counts. *)
let check_agreement ?fuel (e : exp) : int * int =
  let v_big, steps_big = Eval.run ?fuel e in
  let nf, steps_small = normalize ?fuel e in
  let v_small = value_of_normal_form nf in
  let rec flat_eq (a : Eval.value) (b : Eval.value) =
    match (a, b) with
    | Eval.VInt x, Eval.VInt y -> x = y
    | Eval.VBool x, Eval.VBool y -> x = y
    | Eval.VUnit, Eval.VUnit -> true
    | Eval.VTuple xs, Eval.VTuple ys | Eval.VList xs, Eval.VList ys ->
        List.length xs = List.length ys && List.for_all2 flat_eq xs ys
    | (Eval.VClos _ | Eval.VTyClos _ | Eval.VPrim _),
      (Eval.VClos _ | Eval.VTyClos _ | Eval.VPrim _) ->
        true (* both functions: structurally incomparable, accept *)
    | _ -> false
  in
  if not (flat_eq v_big v_small) then
    Diag.eval_error ~loc:e.loc
      "big-step (%s) and small-step (%s) disagree"
      (Eval.value_to_string v_big)
      (Eval.value_to_string v_small);
  (steps_big, steps_small)
