lib/fg/pretty.mli: Ast Fmt
