(** Declaration-granular compilation units (see the interface).

    Each declaration of a spine becomes a unit addressed by a content
    hash chained through its dependencies:

      pkey = H(decl content ‖ dep pkeys ‖ gensym position ‖
               resolution mode ‖ escape-check flag)
      key  = H(env family ‖ pkey)

    The portable key (pkey) addresses the persistent tiers — disk
    store and cache peers — which outlive any process; the memory map
    additionally scopes it by the process-local environment family.

    The content hash covers the declaration node verbatim — locations
    included, so a cached unit can only ever be replayed for text at
    the same position of the same file, which is exactly the re-check
    and shared-prefix scenarios and keeps every diagnostic and
    elaborated location byte-identical.  [Marshal.No_sharing] keeps the
    bytes independent of hash-consing.  The gensym position makes the
    fresh names a unit consumed part of its address, the dependency
    keys cover (transitively) everything the checker could observe in
    scope, and the family confines hits to environments descending from
    one [Env.create] — cached closures capture environments and their
    shared supplies, so replaying them under a foreign family would not
    be byte-identical.

    A cache hit replays a unit instead of re-checking it: the recorded
    environment delta is re-applied, the fresh-name supply fast-forwards
    to the recorded end position, the Global ablation's overlap delta is
    re-pushed, and the unit's recorded warnings are re-reported (once —
    this is what keeps FG0701/FG0702 exactly-once per program).  Failed
    declarations are never cached; after the first failure in a walk the
    cache is bypassed entirely, so error programs behave exactly as a
    cold recovering check. *)

open Fg_util
module F = Fg_systemf
module Sset = Names.Sset

type triple = Ast.ty * Ast.exp * F.Ast.exp

type checked = {
  ck_key : string;
  ck_pkey : string;
  ck_deps : string list;
  ck_info : Declgraph.info;
  ck_extend : Env.t -> Env.t;
  ck_wrap : triple -> triple;
  ck_gensym_end : int;
  ck_globals_delta : (string * Ast.ty list) list;
  ck_warnings : Diag.diagnostic list;
}

(* ---------------------------------------------------------------- *)
(* Persistent tiers                                                  *)

type store = {
  st_name : string;
  st_get : string -> string option;
  st_put : string -> string -> unit;
}

(* ---------------------------------------------------------------- *)
(* The bounded cache                                                  *)

type entry = { e_unit : checked; mutable e_tick : int }

type cache = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable stores : store list;
      (** persistent tiers behind the memory map, consulted in order
          (disk first, then peers); empty by default *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  invalidations : int Atomic.t;
  size : int Atomic.t;
      (** mirrors [Hashtbl.length tbl]; atomic so other domains (the
          server's stats endpoint) can read a consistent value while
          the owning domain mutates the table *)
}

let default_capacity = 512

let create_cache ?(capacity = default_capacity) () =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 64;
    tick = 0;
    stores = [];
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    invalidations = Atomic.make 0;
    size = Atomic.make 0;
  }

type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_invalidations : int;
  s_size : int;
  s_capacity : int;
}

let stats c =
  {
    s_hits = Atomic.get c.hits;
    s_misses = Atomic.get c.misses;
    s_evictions = Atomic.get c.evictions;
    s_invalidations = Atomic.get c.invalidations;
    s_size = Atomic.get c.size;
    s_capacity = c.capacity;
  }

let tick c =
  c.tick <- c.tick + 1;
  c.tick

let set_stores c stores = c.stores <- stores

(* The memory tier alone; the tiered [find] below decides whether a
   memory miss is a real miss (nothing deeper either) or a hit served
   from a deeper tier. *)
let find_mem c key =
  match Hashtbl.find_opt c.tbl key with
  | Some e ->
      e.e_tick <- tick c;
      Some e.e_unit
  | None -> None

let record_hit c =
  Atomic.incr c.hits;
  Telemetry.record_unit_hit ()

(* A miss means the checker actually ran: [unit_misses] is the "unit
   re-checks" number the cache-smoke CI asserts to be zero on a warm
   store, so it is bumped only when every tier came up empty. *)
let record_miss c =
  Atomic.incr c.misses;
  Telemetry.record_unit_miss ()

let remove c key =
  if Hashtbl.mem c.tbl key then begin
    Hashtbl.remove c.tbl key;
    ignore (Atomic.fetch_and_add c.size (-1))
  end

(* Evict the least recently used entry — a linear scan, fine at the
   default capacity and only reached when the cache is full. *)
let evict_one c =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, t) when t <= e.e_tick -> ()
      | _ -> victim := Some (key, e.e_tick))
    c.tbl;
  match !victim with
  | None -> ()
  | Some (key, _) ->
      remove c key;
      Atomic.incr c.evictions;
      Telemetry.record_unit_eviction ()

let insert_mem c (u : checked) =
  if not (Hashtbl.mem c.tbl u.ck_key) then begin
    while Atomic.get c.size >= c.capacity do
      evict_one c
    done;
    Hashtbl.replace c.tbl u.ck_key { e_unit = u; e_tick = tick c };
    ignore (Atomic.fetch_and_add c.size 1)
  end

(* ---------------------------------------------------------------- *)
(* Marshalling units through persistent tiers                         *)

(* [Marshal.Closures] persists the replay closures by code pointer +
   code digest: bytes written by any other compiler build refuse to
   unmarshal (Failure), which is one of the guards below.  Encoding can
   also fail — a closure could in principle capture an unmarshalable
   value — and a unit that cannot be persisted is simply not persisted. *)
let encode (u : checked) =
  try Some (Marshal.to_string u [ Marshal.Closures ]) with _ -> None

(* Decoding guards every failure mode a persisted blob has: truncation
   and wire-format drift (Failure from [Marshal]), foreign-build
   closures (code digest mismatch), and a blob that unmarshals but was
   stored under the wrong address (the embedded pkey disagrees).  All
   of them count as corrupt and read as a miss — never a crash. *)
let decode ~pkey blob : checked option =
  match (Marshal.from_string blob 0 : checked) with
  | u when String.equal u.ck_pkey pkey -> Some u
  | _ | (exception _) ->
      Telemetry.record_corrupt_entry ();
      None

let store_put st pkey blob = try st.st_put pkey blob with _ -> ()

(* Insert a freshly checked unit: memory, then write-through to every
   persistent tier (content-addressed by the portable key). *)
let insert c (u : checked) =
  insert_mem c u;
  if c.stores <> [] && u.ck_pkey <> "" then
    match encode u with
    | None -> ()
    | Some blob -> List.iter (fun st -> store_put st u.ck_pkey blob) c.stores

(* memory → disk → peer.  A deeper hit is written back into the tiers
   that missed (so the next cold process finds it locally) and promoted
   into the memory map under the current family-scoped key. *)
let find c ~key ~pkey ~dep_keys =
  match find_mem c key with
  | Some u ->
      record_hit c;
      Some u
  | None ->
      let rec go missed = function
        | [] ->
            record_miss c;
            None
        | st :: rest -> (
            match (try st.st_get pkey with _ -> None) with
            | None -> go (st :: missed) rest
            | Some blob -> (
                match decode ~pkey blob with
                | None -> go (st :: missed) rest
                | Some u ->
                    let u = { u with ck_key = key; ck_pkey = pkey;
                              ck_deps = dep_keys } in
                    List.iter (fun st' -> store_put st' pkey blob) missed;
                    insert_mem c u;
                    record_hit c;
                    Some u))
      in
      go [] c.stores

module KSet = Set.Make (String)

let invalidate c ~protect ~seeds =
  match seeds with
  | [] -> 0
  | _ ->
      let protect = KSet.of_list protect in
      let invalid = ref (KSet.of_list seeds) in
      let changed = ref true in
      while !changed do
        changed := false;
        Hashtbl.iter
          (fun key e ->
            if
              (not (KSet.mem key !invalid))
              && List.exists (fun d -> KSet.mem d !invalid) e.e_unit.ck_deps
            then begin
              invalid := KSet.add key !invalid;
              changed := true
            end)
          c.tbl
      done;
      let dropped = ref 0 in
      KSet.iter
        (fun key ->
          if (not (KSet.mem key protect)) && Hashtbl.mem c.tbl key then begin
            remove c key;
            incr dropped
          end)
        !invalid;
      (* count the shadowed units themselves as bumped, so a
         redefinition is observable even when nothing depended on it *)
      let n = !dropped + List.length seeds in
      ignore (Atomic.fetch_and_add c.invalidations n);
      Telemetry.record_unit_invalidations n;
      n

(* ---------------------------------------------------------------- *)
(* Keys                                                               *)

(* Byte offsets in spans are written by the lexer and read nowhere —
   every diagnostic and JSON rendering uses line/col only — so they are
   normalized out of the content hash.  Without this, editing one
   declaration would shift the offsets (but not the lines) of every
   later same-line-count declaration and spuriously invalidate it. *)
let zero_pos (p : Loc.pos) = { p with Loc.offset = 0 }

let zero_span (s : Loc.span) =
  {
    s with
    Loc.start_pos = zero_pos s.Loc.start_pos;
    end_pos = zero_pos s.Loc.end_pos;
  }

let rec strip_offsets (e : Ast.exp) : Ast.exp =
  let open Ast in
  let desc =
    match e.desc with
    | (Var _ | Lit _ | Prim _ | Member _) as d -> d
    | App (f, args) -> App (strip_offsets f, List.map strip_offsets args)
    | Abs (params, body) -> Abs (params, strip_offsets body)
    | TyAbs (tvs, constrs, body) -> TyAbs (tvs, constrs, strip_offsets body)
    | TyApp (f, tys) -> TyApp (strip_offsets f, tys)
    | Let (x, rhs, body) -> Let (x, strip_offsets rhs, strip_offsets body)
    | Tuple es -> Tuple (List.map strip_offsets es)
    | Nth (e0, i) -> Nth (strip_offsets e0, i)
    | Fix (x, t, body) -> Fix (x, t, strip_offsets body)
    | If (c, t, f) -> If (strip_offsets c, strip_offsets t, strip_offsets f)
    | ConceptDecl (d, body) ->
        ConceptDecl
          ( {
              d with
              c_defaults =
                List.map (fun (n, e) -> (n, strip_offsets e)) d.c_defaults;
            },
            strip_offsets body )
    | ModelDecl (d, body) ->
        ModelDecl
          ( {
              d with
              m_members =
                List.map (fun (n, e) -> (n, strip_offsets e)) d.m_members;
            },
            strip_offsets body )
    | Using (m, body) -> Using (m, strip_offsets body)
    | TypeAlias (t, ty, body) -> TypeAlias (t, ty, strip_offsets body)
  in
  { desc; loc = zero_span e.loc }

let content_hash (e : Ast.exp) : string =
  let dummy_body = Ast.unit ~loc:Loc.dummy () in
  let header =
    match e.Ast.desc with
    | Ast.Let (x, rhs, _) -> { e with Ast.desc = Ast.Let (x, rhs, dummy_body) }
    | Ast.ConceptDecl (d, _) ->
        { e with Ast.desc = Ast.ConceptDecl (d, dummy_body) }
    | Ast.ModelDecl (d, _) ->
        { e with Ast.desc = Ast.ModelDecl (d, dummy_body) }
    | Ast.Using (m, _) -> { e with Ast.desc = Ast.Using (m, dummy_body) }
    | Ast.TypeAlias (t, ty, _) ->
        { e with Ast.desc = Ast.TypeAlias (t, ty, dummy_body) }
    | _ -> e
  in
  Digest.string (Marshal.to_string (strip_offsets header) [ Marshal.No_sharing ])

(* The portable key is everything the checker can observe except the
   environment family: families are allocated from a per-process
   counter, so they can never agree across processes.  Persistent tiers
   are addressed by the portable key; the memory map scopes it by
   family (cached closures may share supplies with their environment,
   so in-memory replay stays confined to environments descending from
   one [Env.create], exactly as before). *)
let pkey_of ~(env : Env.t) ~gensym_start ~content ~dep_pkeys =
  Digest.string
    (String.concat "\x00"
       (Resolution.mode_name env.Env.resolution
        :: string_of_bool env.Env.escape_check
        :: string_of_int gensym_start :: content :: dep_pkeys))

let key_of ~(env : Env.t) ~pkey =
  Digest.string (string_of_int env.Env.family ^ "\x00" ^ pkey)

(* ---------------------------------------------------------------- *)
(* The disk tier as a store                                          *)

let disk_store (d : Diskcache.t) =
  { st_name = "disk"; st_get = Diskcache.get d; st_put = Diskcache.put d }

(* ---------------------------------------------------------------- *)
(* The walk                                                           *)

type decl_outcome = Dhit | Dchecked | Dfailed

(* [w_units] only holds successful units (a failed declaration produces
   none, and after a failure later units bypass the cache), so it
   cannot be paired back with the program's declarations.  [w_decls]
   can: one entry per spine declaration of the walked program, in
   order, with the pkey it was addressed by ("" once recovery has
   failed) and what happened to it.  The workspace uses this to rebase
   its position index over replayed declarations. *)
type walk_result = {
  w_env : Env.t;
  w_residual : Ast.exp;
  w_wrap : triple -> triple;
  w_units : checked list;
  w_decls : (Ast.exp * string * decl_outcome) list;
  w_poisoned : Sset.t;
}

let split_spine (e : Ast.exp) : Ast.exp list * Ast.exp =
  let rec go acc e =
    match Check.decl_body e with
    | Some body when Declgraph.is_decl e -> go (e :: acc) body
    | _ -> (List.rev acc, e)
  in
  go [] e

(* Entries pushed onto the Global overlap set during one unit's check:
   model declarations prepend, so the delta is the new prefix. *)
let globals_delta ~before after =
  let n = List.length after - List.length before in
  let rec take n l =
    if n <= 0 then [] else match l with [] -> [] | x :: tl -> x :: take (n - 1) tl
  in
  take n after

let walk ?recover ?(poisoned = Sset.empty) cache ~(spine : checked list) env0
    ast : walk_result =
  let decls, residual = split_spine ast in
  let n_spine = List.length spine in
  let infos =
    Array.of_list
      (List.map (fun u -> u.ck_info) spine
      @ List.map Declgraph.info_of_decl decls)
  in
  let global = env0.Env.resolution = Resolution.Global in
  let deps = Declgraph.build ~global infos in
  let keys = Array.make (Array.length infos) "" in
  let pkeys = Array.make (Array.length infos) "" in
  List.iteri
    (fun i u ->
      keys.(i) <- u.ck_key;
      pkeys.(i) <- u.ck_pkey)
    spine;
  let env = ref env0 in
  let wraps = ref [] in
  let units = ref [] in
  let dlog = ref [] in
  let poisoned = ref poisoned in
  let failed = ref false in
  let commit (u : checked) =
    env := u.ck_extend !env;
    Gensym.restore !env.Env.gensym u.ck_gensym_end;
    if u.ck_globals_delta <> [] then
      !env.Env.global_models :=
        u.ck_globals_delta @ !(!env.Env.global_models);
    wraps := u.ck_wrap :: !wraps;
    units := u :: !units
  in
  List.iteri
    (fun i decl ->
      let k = n_spine + i in
      let gensym_start = Gensym.mark !env.Env.gensym in
      let pkey =
        if !failed then ""
        else
          pkey_of ~env:!env ~gensym_start ~content:(content_hash decl)
            ~dep_pkeys:(List.map (fun j -> pkeys.(j)) deps.(k))
      in
      let key = if !failed then "" else key_of ~env:!env ~pkey in
      keys.(k) <- key;
      pkeys.(k) <- pkey;
      match
        if !failed then None
        else
          find cache ~key ~pkey
            ~dep_keys:(List.map (fun j -> keys.(j)) deps.(k))
      with
      | Some u ->
          (* replay: re-extend the environment, fast-forward the
             fresh-name supply, re-report the recorded warnings once *)
          let sink = !(!env.Env.diag) in
          commit u;
          dlog := (decl, pkey, Dhit) :: !dlog;
          List.iter (fun d -> Diag.report sink d) u.ck_warnings
      | None -> (
          let diag_cell = !env.Env.diag in
          let outer = !diag_cell in
          let capture = Diag.engine () in
          diag_cell := capture;
          let finish () =
            diag_cell := outer;
            let warnings = Diag.diagnostics capture in
            List.iter (fun d -> Diag.report outer d) warnings;
            warnings
          in
          match Check.check_decl_parts !env decl with
          | exception Diag.Error d -> (
              ignore (finish ());
              match recover with
              | None -> raise (Diag.Error d)
              | Some engine ->
                  if not (Check.is_cascade !poisoned d) then
                    Diag.report engine d;
                  poisoned :=
                    List.fold_left
                      (fun s n -> Sset.add n s)
                      !poisoned (Check.decl_poison decl);
                  dlog := (decl, pkey, Dfailed) :: !dlog;
                  failed := true)
          | None ->
              ignore (finish ());
              Diag.ice "Unit.walk: split_spine produced a non-declaration"
          | Some (extend, _body, wrap) ->
              let globals_before = !(!env.Env.global_models) in
              let env' = extend !env in
              let warnings = finish () in
              let u =
                {
                  ck_key = key;
                  ck_pkey = pkey;
                  ck_deps = List.map (fun j -> keys.(j)) deps.(k);
                  ck_info = infos.(k);
                  ck_extend = extend;
                  ck_wrap = wrap;
                  ck_gensym_end = Gensym.mark env'.Env.gensym;
                  ck_globals_delta =
                    globals_delta ~before:globals_before
                      !(env'.Env.global_models);
                  ck_warnings = warnings;
                }
              in
              if not !failed then insert cache u;
              env := env';
              wraps := u.ck_wrap :: !wraps;
              dlog := (decl, pkey, Dchecked) :: !dlog;
              units := u :: !units))
    decls;
  let acc = !wraps in
  {
    w_env = !env;
    w_residual = residual;
    w_wrap = (fun res -> List.fold_left (fun res w -> w res) res acc);
    w_units = List.rev !units;
    w_decls = List.rev !dlog;
    w_poisoned = !poisoned;
  }
