(** Specializing backend: partial evaluation of the dictionary-passing
    translation.

    [specialize] walks the top-level [let] spine of a translated
    program and, for every ground instantiation of a generic binding
    ([f\[tys\](dicts)] where the types are closed and the dictionary
    arguments are spine-level values), clones the binding with the type
    arguments substituted and the dictionary parameters replaced by the
    resolved model witnesses — a stencil, in the Go generics sense.
    Call sites are rewritten to refer to the stencil directly, deleting
    the [TyApp] and dictionary-application beta steps; dictionary
    projections through statically known tuples reduce to the member
    witnesses.  The original polymorphic bindings are kept (top-level
    [let]s cost no evaluation steps), so any call the specializer
    cannot or chooses not to stencil falls back to dictionary passing
    unchanged.

    [Hybrid] mode adds gcshape-style sharing: instantiations whose
    instantiated dictionary parameter types have the same layout
    (same tuple structure and member arities — element types of lists
    and function parameters erased, as in Go's gcshape stenciling)
    share one stencil.  The first instantiation of each (binding,
    shape) class is stenciled; later same-shape instantiations keep
    their dictionary-passing call, so each class pays code size once.

    The output is observationally equivalent to the input: same System
    F type (checked by the session oracle), same value, never more
    beta steps on any executed path modulo the constant cost of
    hoisted dictionary construction.

    [Guided] mode is profile-guided stenciling: it behaves like
    [Stencil] but consults a hotness predicate (derived from a
    {!Fg_util.Profile}) keyed by {!instantiation_key}, and only
    stencils instantiations the predicate approves; cold
    instantiations keep dictionary passing untouched (counted as
    fallbacks).  With an empty profile it is a no-op and the output is
    the dictionary program verbatim. *)

type mode = Stencil | Hybrid | Guided

type stats = {
  st_stencils : int;  (** specialized clones created *)
  st_shared : int;
      (** call sites left on dictionary passing because their shape
          class already owns a stencil (hybrid sharing) *)
  st_fallbacks : int;
      (** ground generic calls left on dictionary passing for other
          reasons (budget, non-static dictionary arguments, shape the
          specializer does not recognize, cold under a guided
          profile) *)
  st_hoisted : int;  (** dictionary expressions hoisted to the spine *)
  st_rewritten : int;  (** call sites redirected to stencils *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

(** Did specialization change the program at all?  (If not, callers
    can reuse the dictionary backend's evaluation verbatim.) *)
val changed : stats -> bool

(** [specialize ~mode ?hot e] — returns the specialized program and
    counters.  Total: never raises on well-typed input; any
    unrecognized shape falls back to the dictionary-passing original.
    [hot] is only consulted in [Guided] mode (default: nothing is
    hot). *)
val specialize : mode:mode -> ?hot:(string -> bool) -> Ast.exp -> Ast.exp * stats

(** [instantiation_key f tys] — the profile key of a ground
    instantiation site, ["f[ty,...]"] with the types rendered by the
    System F pretty-printer.  {!observe} emits these keys and [Guided]
    mode queries its [hot] predicate with them, so profiles recorded
    on any backend transfer to guided specialization. *)
val instantiation_key : string -> Ast.ty list -> string

(** Census of ground instantiation sites: every call position that
    {!specialize} would consider a stencil candidate (unshadowed
    spine generic defined earlier, matching type-abstraction arity,
    ground type arguments), counted per {!instantiation_key} — a pure
    walk, no rewriting.  The driver records this per program when
    profile collection is on, on every backend including [dict]. *)
val observe : Ast.exp -> (string * int) list
