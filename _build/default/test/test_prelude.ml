(* Tests for the FG-level standard library: every algorithm exercised
   on concrete data, through the full pipeline (so each run also
   re-verifies the theorem and the interpreter/translation agreement). *)

open Fg_core

let l = Prelude.int_list

let check body expected =
  match Pipeline.run_result ~file:"prelude" (Prelude.wrap body) with
  | Ok out ->
      Alcotest.(check string) body expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" body (Fg_util.Diag.to_string d)

let test_accumulate () =
  check (Printf.sprintf "accumulate[int](%s)" (l [ 1; 2; 3; 4 ])) "10";
  check (Printf.sprintf "accumulate[int](%s)" (l [])) "0";
  check (Printf.sprintf "accumulate[int](%s)" (l [ 42 ])) "42"

let test_accumulate_iter () =
  check (Printf.sprintf "accumulate_iter[list int](%s)" (l [ 5; 6 ])) "11";
  check (Printf.sprintf "accumulate_iter[list int](%s)" (l [])) "0"

let test_count () =
  check (Printf.sprintf "count[list int](%s, 2)" (l [ 2; 1; 2; 3; 2 ])) "3";
  check (Printf.sprintf "count[list int](%s, 9)" (l [ 1; 2 ])) "0";
  check (Printf.sprintf "count[list int](%s, 1)" (l [])) "0"

let test_contains () =
  check (Printf.sprintf "contains[list int](%s, 3)" (l [ 1; 2; 3 ])) "true";
  check (Printf.sprintf "contains[list int](%s, 4)" (l [ 1; 2; 3 ])) "false";
  check (Printf.sprintf "contains[list int](%s, 1)" (l [])) "false"

let test_copy () =
  check
    (Printf.sprintf "copy[list int, list int](%s, nil[int])" (l [ 4; 5 ]))
    "[4, 5]";
  check (Printf.sprintf "copy[list int, list int](%s, nil[int])" (l [])) "[]";
  (* copy appends to a non-empty output range *)
  check
    (Printf.sprintf "copy[list int, list int](%s, %s)" (l [ 3 ]) (l [ 1; 2 ]))
    "[1, 2, 3]"

let test_min_element () =
  check
    (Printf.sprintf "min_element[list int](cdr[int](%s), car[int](%s))"
       (l [ 3; 1; 2 ]) (l [ 3; 1; 2 ]))
    "1";
  check
    (Printf.sprintf "min_element[list int](cdr[int](%s), car[int](%s))"
       (l [ 7 ]) (l [ 7 ]))
    "7"

let test_equal_ranges () =
  check
    (Printf.sprintf "equal_ranges[list int, list int](%s, %s)" (l [ 1; 2 ])
       (l [ 1; 2 ]))
    "true";
  check
    (Printf.sprintf "equal_ranges[list int, list int](%s, %s)" (l [ 1; 2 ])
       (l [ 1; 3 ]))
    "false";
  check
    (Printf.sprintf "equal_ranges[list int, list int](%s, %s)" (l [ 1 ])
       (l [ 1; 2 ]))
    "false";
  check
    (Printf.sprintf "equal_ranges[list int, list int](%s, %s)" (l []) (l []))
    "true"

let test_merge () =
  check
    (Printf.sprintf "merge[list int, list int, list int](%s, %s, nil[int])"
       (l [ 1; 3; 5 ]) (l [ 2; 4; 6 ]))
    "[1, 2, 3, 4, 5, 6]";
  check
    (Printf.sprintf "merge[list int, list int, list int](%s, %s, nil[int])"
       (l []) (l [ 1 ]))
    "[1]";
  check
    (Printf.sprintf "merge[list int, list int, list int](%s, %s, nil[int])"
       (l [ 1; 1 ]) (l [ 1 ]))
    "[1, 1, 1]"

let test_power () =
  (* under the additive monoid, power is repeated addition *)
  check "power[int](5, 3)" "15";
  check "power[int](5, 0)" "0"

let test_sum_container () =
  check (Printf.sprintf "sum_container[list int](%s)" (l [ 7; 8; 9 ])) "24"

let test_multiplicative_override () =
  (* locally override the monoid: product instead of sum *)
  check
    ({|model Semigroup<int> { binary_op = imult; } in
model Monoid<int> { identity_elt = 1; } in
accumulate[int](|}
    ^ l [ 2; 3; 4 ] ^ ")")
    "24"

let test_group_member_via_refinement () =
  check "Group<int>.inverse(Monoid<int>.identity_elt + 5)" "-5";
  (* Group refines Monoid refines Semigroup: all members reachable *)
  check "Group<int>.binary_op(Group<int>.identity_elt, 3)" "3"

let test_insertion_sort () =
  check (Printf.sprintf "insertion_sort(%s)" (l [ 3; 1; 2 ])) "[1, 2, 3]";
  check (Printf.sprintf "insertion_sort(%s)" (l [])) "[]";
  check (Printf.sprintf "insertion_sort(%s)" (l [ 5 ])) "[5]";
  check (Printf.sprintf "insertion_sort(%s)" (l [ 2; 2; 1; 2 ])) "[1, 2, 2, 2]";
  (* lexicographic sort of lists of lists, via the parameterized Ord *)
  check
    (Printf.sprintf
       "insertion_sort[list int](cons[list int](%s, cons[list int](%s, \
        cons[list int](%s, nil[list int]))))"
       (l [ 2 ]) (l [ 1; 5 ]) (l [ 1 ]))
    "[[1], [1, 5], [2]]"

let test_is_sorted () =
  check (Printf.sprintf "is_sorted(%s)" (l [ 1; 2; 2; 3 ])) "true";
  check (Printf.sprintf "is_sorted(%s)" (l [ 2; 1 ])) "false";
  check (Printf.sprintf "is_sorted(%s)" (l [])) "true";
  (* sorting establishes sortedness *)
  check (Printf.sprintf "is_sorted(insertion_sort(%s))" (l [ 9; 1; 4; 4; 0 ]))
    "true"

let test_reverse_take_drop () =
  check (Printf.sprintf "reverse(%s)" (l [ 1; 2; 3 ])) "[3, 2, 1]";
  check (Printf.sprintf "reverse(%s)" (l [])) "[]";
  check (Printf.sprintf "take(2, %s)" (l [ 1; 2; 3 ])) "[1, 2]";
  check (Printf.sprintf "take(9, %s)" (l [ 1 ])) "[1]";
  check (Printf.sprintf "take(0, %s)" (l [ 1 ])) "[]";
  check (Printf.sprintf "drop(2, %s)" (l [ 1; 2; 3 ])) "[3]";
  check (Printf.sprintf "drop(0, %s)" (l [ 1 ])) "[1]";
  check (Printf.sprintf "drop(9, %s)" (l [ 1 ])) "[]";
  check
    (Printf.sprintf "append[int](take(1, %s), drop(1, %s))" (l [ 7; 8 ])
       (l [ 7; 8 ]))
    "[7, 8]"

let test_filter_map () =
  check (Printf.sprintf "filter(fun (x : int) => x > 1, %s)" (l [ 1; 2; 3 ]))
    "[2, 3]";
  check (Printf.sprintf "filter(fun (x : int) => false, %s)" (l [ 1 ])) "[]";
  check (Printf.sprintf "map_list(fun (x : int) => x * 10, %s)" (l [ 1; 2 ]))
    "[10, 20]";
  check
    (Printf.sprintf "map_list[int, bool](fun (x : int) => x == 2, %s)"
       (l [ 1; 2 ]))
    "[false, true]"

let test_unique_adjacent () =
  check (Printf.sprintf "unique_adjacent(%s)" (l [ 1; 1; 2; 2; 2; 3 ]))
    "[1, 2, 3]";
  check (Printf.sprintf "unique_adjacent(%s)" (l [])) "[]";
  (* sort + unique = set *)
  check
    (Printf.sprintf "unique_adjacent(insertion_sort(%s))" (l [ 3; 1; 3; 1 ]))
    "[1, 3]"

let test_max_element () =
  check (Printf.sprintf "max_element(%s, 0)" (l [ 3; 9; 2 ])) "9";
  check (Printf.sprintf "max_element(%s, 100)" (l [ 3; 9; 2 ])) "100"

let test_prelude_typechecks_in_global_mode () =
  (* the prelude declares each model exactly once: Global mode accepts *)
  match
    Pipeline.run_result ~resolution:Resolution.Global
      (Prelude.wrap "accumulate[int](nil[int])")
  with
  | Ok out ->
      Alcotest.(check string) "global ok" "0" (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "global mode: %s" (Fg_util.Diag.to_string d)

let prop_sort_matches_ocaml =
  QCheck.Test.make ~name:"insertion_sort matches List.sort" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_bound 8) (int_bound 50))
    (fun xs ->
      let body = Printf.sprintf "insertion_sort(%s)" (Prelude.int_list xs) in
      let out = Pipeline.run ~file:"prop" (Prelude.wrap body) in
      Interp.flat_equal out.value
        (Interp.FlList
           (List.map (fun n -> Interp.FlInt n) (List.sort compare xs))))

let prop_merge_matches_ocaml =
  QCheck.Test.make ~name:"merge matches List.merge on sorted inputs" ~count:40
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 6) (int_bound 20))
        (list_of_size (QCheck.Gen.int_bound 6) (int_bound 20)))
    (fun (xs, ys) ->
      let xs = List.sort compare xs and ys = List.sort compare ys in
      let body =
        Printf.sprintf "merge(%s, %s, nil[int])" (Prelude.int_list xs)
          (Prelude.int_list ys)
      in
      let out = Pipeline.run ~file:"prop" (Prelude.wrap body) in
      Interp.flat_equal out.value
        (Interp.FlList
           (List.map (fun n -> Interp.FlInt n)
              (List.merge compare xs ys))))

let suite =
  [
    Alcotest.test_case "accumulate" `Quick test_accumulate;
    Alcotest.test_case "accumulate_iter" `Quick test_accumulate_iter;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "min_element" `Quick test_min_element;
    Alcotest.test_case "equal_ranges" `Quick test_equal_ranges;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "power" `Quick test_power;
    Alcotest.test_case "sum_container" `Quick test_sum_container;
    Alcotest.test_case "local monoid override" `Quick
      test_multiplicative_override;
    Alcotest.test_case "Group member via refinement" `Quick
      test_group_member_via_refinement;
    Alcotest.test_case "insertion_sort" `Quick test_insertion_sort;
    Alcotest.test_case "is_sorted" `Quick test_is_sorted;
    Alcotest.test_case "reverse/take/drop" `Quick test_reverse_take_drop;
    Alcotest.test_case "filter/map" `Quick test_filter_map;
    Alcotest.test_case "unique_adjacent" `Quick test_unique_adjacent;
    Alcotest.test_case "max_element" `Quick test_max_element;
    Alcotest.test_case "prelude in global mode" `Quick
      test_prelude_typechecks_in_global_mode;
    QCheck_alcotest.to_alcotest prop_sort_matches_ocaml;
    QCheck_alcotest.to_alcotest prop_merge_matches_ocaml;
  ]
