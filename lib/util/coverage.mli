(** Process-wide decision-point coverage map.

    The coverage-guided fuzzer ({!Fg_core.Fuzz}) needs to know, cheaply
    and from any domain, which checker/resolution/recovery decision
    points a program exercised.  This module is the instrument: a
    registry of named probes, each backed by per-domain sharded
    counters ([Atomic.t] per shard, merged on read — the same
    contention-avoidance trick as {!Telemetry}), so the hot path is one
    atomic increment with no locks and no allocation.

    Probe keys are stable strings ("check.app.implicit",
    "resolve.found.ground", "diag.FG0402", ...) so coverage maps are
    comparable across processes and serializable onto the wire — the
    fleet-merge protocol and the on-disk corpus both depend on two
    builds agreeing about what a key means.

    Reads ([snapshot]) are racy with respect to concurrent increments,
    which is fine for monitoring; the fuzzer's determinism comes from
    only measuring in a sequential phase (see fuzz.ml). *)

type probe
(** A registered decision point.  Cheap to hit, never unregistered. *)

val probe : string -> probe
(** [probe key] registers (or finds) the probe named [key].
    Thread-safe; both racers get the same probe.  Intended for
    module-initialization time: [let p = Coverage.probe "check.var"]. *)

val hit : probe -> unit
(** Record one firing of the decision point.  Lock-free. *)

val hit_key : string -> unit
(** [hit_key key] is [hit (probe key)] — for dynamically built keys
    (e.g. ["diag." ^ code]).  Pays a registry lookup; prefer a static
    {!probe} where the key is a literal. *)

type map = (string * int) list
(** A coverage map: association list sorted by key, every count
    positive.  All functions below maintain that invariant. *)

val snapshot : unit -> map
(** Merge every probe's shards into a map.  Zero-count probes are
    dropped, so an empty process snapshots to []. *)

val diff : map -> map -> map
(** [diff later earlier]: the coverage added between two snapshots —
    keys whose count grew, with the growth as the count. *)

val merge : map -> map -> map
(** Pointwise sum; the fleet-merge operation. *)

val distinct : map -> int
(** Number of distinct decision points hit (the guided fuzzer's
    novelty metric). *)

val total : map -> int
(** Sum of all counts. *)

val keys : map -> string list
(** The sorted key set. *)

val to_text : map -> string
(** Stable serialization: one ["key\tcount\n"] line per entry, sorted
    by key.  Byte-identical for equal maps; round-trips with
    {!of_text}. *)

val of_text : string -> map
(** Inverse of {!to_text}.  Unparseable lines are ignored; the result
    is re-sorted and re-merged, so any text input yields a valid map. *)

val to_json : map -> Json.t
(** [{"key": count, ...}] with keys in sorted order. *)

val of_json : Json.t -> map
(** Inverse of {!to_json}; non-object / non-int fields are ignored. *)

val reset : unit -> unit
(** Zero every registered probe (registration survives).  Test-only:
    concurrent hits during a reset may land on either side. *)
