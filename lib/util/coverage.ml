(* Decision-point coverage map (see the interface).

   The sharded-counter mechanics live in Shardcounter — this module is
   the process-wide probe registry plus the coverage-map codecs layered
   on top of the shared merge algebra. *)

type probe = Shardcounter.t

let registry = Shardcounter.Registry.create ()
let probe key = Shardcounter.Registry.find registry key
let hit = Shardcounter.incr
let hit_key key = Shardcounter.Registry.hit registry key

type map = Shardcounter.map

let snapshot () = Shardcounter.Registry.snapshot registry
let merge = Shardcounter.merge
let diff = Shardcounter.diff
let distinct = Shardcounter.distinct
let total = Shardcounter.total
let keys = Shardcounter.keys

let to_text m =
  let b = Buffer.create (16 * List.length m) in
  List.iter
    (fun (k, n) ->
      Buffer.add_string b k;
      Buffer.add_char b '\t';
      Buffer.add_string b (string_of_int n);
      Buffer.add_char b '\n')
    m;
  Buffer.contents b

let of_text s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '\t' with
         | None -> None
         | Some i -> (
             let key = String.sub line 0 i in
             let count =
               String.sub line (i + 1) (String.length line - i - 1)
             in
             match int_of_string_opt count with
             | Some n when n > 0 && key <> "" -> Some (key, n)
             | _ -> None))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.fold_left
       (fun acc (k, n) ->
         match acc with
         | (k', n') :: rest when k' = k -> (k', n' + n) :: rest
         | _ -> (k, n) :: acc)
       []
  |> List.rev

let to_json m = Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) m)

let of_json = function
  | Json.Obj fields ->
      List.filter_map
        (function
          | k, Json.Int n when n > 0 && k <> "" -> Some (k, n) | _ -> None)
        fields
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  | _ -> []

let reset () = Shardcounter.Registry.reset registry
