test/test_unionfind.ml: Alcotest Array Fg_unionfind Fg_util List QCheck QCheck_alcotest
