(** Big-step call-by-value evaluator for System F, with backpatched
    [fix] and a fuel bound (each beta step spends one unit, so the
    returned step count doubles as a cost measure for the
    dictionary-overhead experiment). *)

open Ast
module Smap := Fg_util.Names.Smap

type value =
  | VInt of int
  | VBool of bool
  | VUnit
  | VTuple of value list
  | VList of value list
  | VClos of env * (string * ty) list * exp
  | VTyClos of env * string list * exp
  | VPrim of string * int * value list
      (** primitive, remaining arity, reversed collected arguments *)

and env = value option ref Smap.t

val default_fuel : int

val value_kind : value -> string
val pp_value : value Fmt.t
val value_to_string : value -> string

(** Structural equality on first-order values; functions compare
    [false]. *)
val value_equal : value -> value -> bool

(** Evaluate a closed program; returns the value and beta-step count. *)
val run : ?fuel:int -> exp -> value * int

val run_value : ?fuel:int -> exp -> value
val run_result : ?fuel:int -> exp -> (value * int, Fg_util.Diag.diagnostic) result
