(* Wire-protocol unit tests: the framing decoder against adversarial
   input (byte-at-a-time delivery, oversized prefixes, garbage), and
   the request/response JSON codecs including version mismatch. *)

open Fg_server

let drain dec =
  let rec go acc =
    match Protocol.next_frame dec with
    | `Frame p -> go (p :: acc)
    | `Await -> `Frames (List.rev acc)
    | `Error e -> `Error (List.rev acc, e)
  in
  go []

let test_byte_at_a_time () =
  let payload = "{\"v\":1,\"id\":7,\"kind\":\"stats\"}" in
  let wire = Bytes.to_string (Protocol.frame_of_string payload) in
  let dec = Protocol.decoder () in
  String.iteri
    (fun i c ->
      Protocol.feed_string dec (String.make 1 c);
      if i < String.length wire - 1 then
        match Protocol.next_frame dec with
        | `Await -> ()
        | `Frame _ -> Alcotest.fail "frame completed early"
        | `Error e -> Alcotest.failf "decoder error mid-frame: %s" e)
    wire;
  match drain dec with
  | `Frames [ p ] -> Alcotest.(check string) "payload" payload p
  | `Frames ps -> Alcotest.failf "expected 1 frame, got %d" (List.length ps)
  | `Error (_, e) -> Alcotest.failf "decoder error: %s" e

let test_two_frames_one_chunk () =
  let a = "first" and b = "second frame" in
  let wire =
    Bytes.to_string (Protocol.frame_of_string a)
    ^ Bytes.to_string (Protocol.frame_of_string b)
  in
  let dec = Protocol.decoder () in
  Protocol.feed_string dec wire;
  match drain dec with
  | `Frames [ pa; pb ] ->
      Alcotest.(check string) "first" a pa;
      Alcotest.(check string) "second" b pb
  | `Frames ps -> Alcotest.failf "expected 2 frames, got %d" (List.length ps)
  | `Error (_, e) -> Alcotest.failf "decoder error: %s" e

let test_oversized_prefix () =
  (* A huge length prefix must be rejected from the 4 prefix bytes
     alone — before any body arrives — and the error must be sticky. *)
  let dec = Protocol.decoder ~max_frame:1024 () in
  Protocol.feed_string dec "\xFF\xFF\xFF\xFF";
  (match Protocol.next_frame dec with
  | `Error _ -> ()
  | `Await -> Alcotest.fail "oversized prefix not rejected"
  | `Frame _ -> Alcotest.fail "oversized prefix produced a frame");
  (* sticky: even a subsequent well-formed frame is refused *)
  Protocol.feed_string dec (Bytes.to_string (Protocol.frame_of_string "ok"));
  match Protocol.next_frame dec with
  | `Error _ -> ()
  | _ -> Alcotest.fail "decoder error was not sticky"

let test_oversized_exact_boundary () =
  let dec = Protocol.decoder ~max_frame:8 () in
  (* 8 bytes: allowed *)
  Protocol.feed_string dec (Bytes.to_string (Protocol.frame_of_string "12345678"));
  (match Protocol.next_frame dec with
  | `Frame p -> Alcotest.(check string) "boundary frame" "12345678" p
  | _ -> Alcotest.fail "max_frame-sized frame should decode");
  (* 9 bytes: rejected *)
  Protocol.feed_string dec (Bytes.to_string (Protocol.frame_of_string "123456789"));
  match Protocol.next_frame dec with
  | `Error _ -> ()
  | _ -> Alcotest.fail "max_frame+1 frame should be rejected"

let test_garbage_bytes () =
  (* Garbage decodes as "some frame" or an oversized reject depending
     on what the first 4 bytes spell — either way the decoder must not
     crash, and whatever frames emerge are just strings for the JSON
     layer to refuse. *)
  let dec = Protocol.decoder ~max_frame:1024 () in
  Protocol.feed_string dec "\x00\x00\x00\x03abc";
  (match drain dec with
  | `Frames [ "abc" ] -> ()
  | _ -> Alcotest.fail "tiny binary frame should decode");
  let dec2 = Protocol.decoder ~max_frame:1024 () in
  Protocol.feed_string dec2 "GARBAGE NOT A FRAME AT ALL";
  (* 'G','A','R','B' = 0x47415242 bytes → way past max_frame *)
  match Protocol.next_frame dec2 with
  | `Error _ -> ()
  | `Await -> Alcotest.fail "ASCII garbage length should exceed max_frame"
  | `Frame _ -> Alcotest.fail "garbage produced a frame"

let test_empty_frame () =
  let dec = Protocol.decoder () in
  Protocol.feed_string dec "\x00\x00\x00\x00";
  match drain dec with
  | `Frames [ "" ] -> ()
  | _ -> Alcotest.fail "zero-length frame should yield the empty payload"

let roundtrip_request req =
  match Protocol.request_of_json (Protocol.request_to_json req) with
  | Ok r -> r
  | Error _ -> Alcotest.fail "request did not round-trip"

let test_request_roundtrip () =
  let req =
    Protocol.request ~file:"x.fg" ~source:"let a = 1;" ~prelude:false
      ~global_models:true ~timeout_ms:250 ~id:42 Protocol.Run
  in
  let r = roundtrip_request req in
  Alcotest.(check int) "id" 42 r.Protocol.id;
  Alcotest.(check string) "file" "x.fg" r.Protocol.file;
  Alcotest.(check string) "source" "let a = 1;" r.Protocol.source;
  Alcotest.(check bool) "prelude" false r.Protocol.prelude;
  Alcotest.(check bool) "global_models" true r.Protocol.global_models;
  Alcotest.(check (option int)) "timeout" (Some 250) r.Protocol.timeout_ms;
  List.iter
    (fun k ->
      let r = roundtrip_request (Protocol.request ~source:"x" ~id:1 k) in
      Alcotest.(check string) "kind survives" (Protocol.kind_name k)
        (Protocol.kind_name r.Protocol.kind))
    Protocol.all_kinds

let parse_request s =
  match Fg_util.Json.of_string s with
  | Ok j -> Protocol.request_of_json j
  | Error e -> Alcotest.failf "test payload is invalid JSON: %s" e

(* The v3 cache kinds: key/data survive the wire, a key is mandatory,
   and no source is required. *)
let test_cache_request_roundtrip () =
  let put =
    roundtrip_request
      (Protocol.request ~id:9 ~key:"00ff17" ~data:"deadbeef"
         Protocol.CachePut)
  in
  Alcotest.(check string) "put kind" "cache_put"
    (Protocol.kind_name put.Protocol.kind);
  Alcotest.(check string) "put key" "00ff17" put.Protocol.key;
  Alcotest.(check string) "put data" "deadbeef" put.Protocol.data;
  let get =
    roundtrip_request (Protocol.request ~id:3 ~key:"00ff17" Protocol.CacheGet)
  in
  Alcotest.(check string) "get key" "00ff17" get.Protocol.key;
  Alcotest.(check string) "get carries no data" "" get.Protocol.data;
  (match parse_request "{\"v\":3,\"id\":1,\"kind\":\"cache_get\"}" with
  | Error (Protocol.Bad_request _) -> ()
  | _ -> Alcotest.fail "cache_get without a key must be rejected");
  match
    parse_request "{\"v\":3,\"id\":1,\"kind\":\"cache_put\",\"key\":\"aa\"}"
  with
  | Ok r -> Alcotest.(check string) "put data defaults empty" "" r.Protocol.data
  | Error _ -> Alcotest.fail "cache_put needs no source"

(* The v4 fuzz_batch kind: coverage map, corpus offers and the have
   list all survive the wire; all three default empty, and a v1 frame
   naming the kind still decodes. *)
let test_fuzz_batch_roundtrip () =
  let coverage = [ ("check.app.ground", 41); ("diag.FG0302", 2) ] in
  let corpus_entries = [ ("d41d8cd9", "iadd(1, 2)"); ("ffee", "1") ] in
  let have = [ "aabb"; "ccdd" ] in
  let r =
    roundtrip_request
      (Protocol.request ~id:5 ~coverage ~corpus_entries ~have
         Protocol.FuzzBatch)
  in
  Alcotest.(check string) "kind" "fuzz_batch"
    (Protocol.kind_name r.Protocol.kind);
  Alcotest.(check (list (pair string int))) "coverage" coverage
    r.Protocol.coverage;
  Alcotest.(check (list (pair string string))) "corpus entries"
    corpus_entries r.Protocol.corpus_entries;
  Alcotest.(check (list string)) "have" have r.Protocol.have;
  (match parse_request "{\"v\":4,\"id\":1,\"kind\":\"fuzz_batch\"}" with
  | Ok r ->
      Alcotest.(check (list (pair string int))) "coverage defaults empty" []
        r.Protocol.coverage;
      Alcotest.(check (list string)) "have defaults empty" []
        r.Protocol.have
  | Error _ -> Alcotest.fail "fuzz_batch needs no source/key");
  match parse_request "{\"v\":1,\"id\":1,\"kind\":\"fuzz_batch\"}" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "old-version frames naming fuzz_batch decode"

let test_request_version_mismatch () =
  (match parse_request "{\"v\":999,\"id\":1,\"kind\":\"stats\"}" with
  | Error (Protocol.Bad_version (Some 999)) -> ()
  | _ -> Alcotest.fail "future version must be Bad_version");
  (match parse_request "{\"id\":1,\"kind\":\"stats\"}" with
  | Error (Protocol.Bad_version None) -> ()
  | _ -> Alcotest.fail "missing version must be Bad_version");
  (* the version check comes first, before any shape validation *)
  (match parse_request "{\"v\":999}" with
  | Error (Protocol.Bad_version (Some 999)) -> ()
  | _ -> Alcotest.fail "version precedes shape errors");
  (* versions below the floor are refused too *)
  match parse_request "{\"v\":0,\"id\":1,\"kind\":\"stats\"}" with
  | Error (Protocol.Bad_version (Some 0)) -> ()
  | _ -> Alcotest.fail "sub-min_version must be Bad_version"

(* Version-1 frames predate the optional "backend" field; they must
   keep decoding — defaulting to the dictionary backend — and keep
   routing through a handler to the same result as a v2 frame. *)
let test_v1_frame_decodes_and_routes () =
  Alcotest.(check int) "wire version is 6" 6 Protocol.version;
  Alcotest.(check int) "v1 still accepted" 1 Protocol.min_version;
  let v1 = "{\"v\":1,\"id\":7,\"kind\":\"run\",\"source\":\"1 + 1\"}" in
  match parse_request v1 with
  | Error _ -> Alcotest.fail "v1 frame no longer decodes"
  | Ok req ->
      Alcotest.(check int) "id" 7 req.Protocol.id;
      Alcotest.(check string) "defaults to dict" "dict"
        (Fg_core.Backend.to_string req.Protocol.backend);
      let handler = Handler.create () in
      let status, payload = Handler.handle_safe handler req in
      Alcotest.(check string) "status" "ok" (Protocol.status_name status);
      (match Fg_util.Json.of_string payload with
      | Ok j ->
          Alcotest.(check (option int)) "value" (Some 2)
            (match Fg_util.Json.mem "value" j with
            | Some (Fg_util.Json.Int n) -> Some n
            | _ -> None);
          (* a v1 (hence dict) payload must not grow backend fields *)
          Alcotest.(check (option string)) "no backend field" None
            (Fg_util.Json.str_field "backend" j)
      | Error e -> Alcotest.failf "run payload is not JSON: %s" e)

let test_request_backend_field () =
  (* explicit backend survives the codec round-trip *)
  let req =
    Protocol.request ~source:"1" ~backend:Fg_core.Backend.Hybrid ~id:3
      Protocol.Run
  in
  let r = roundtrip_request req in
  Alcotest.(check string) "hybrid survives" "hybrid"
    (Fg_core.Backend.to_string r.Protocol.backend);
  (* dict is the wire default, so it is never emitted *)
  let j = Protocol.request_to_json (Protocol.request ~source:"1" ~id:4 Protocol.Run) in
  Alcotest.(check (option string)) "dict not on the wire" None
    (Fg_util.Json.str_field "backend" j);
  (* a named backend parses *)
  (match
     parse_request
       "{\"v\":2,\"id\":1,\"kind\":\"run\",\"source\":\"1\",\
        \"backend\":\"stencil\"}"
   with
  | Ok r ->
      Alcotest.(check string) "stencil parses" "stencil"
        (Fg_core.Backend.to_string r.Protocol.backend)
  | Error _ -> Alcotest.fail "stencil backend rejected");
  (* an unknown backend is a stable Bad_request, not an exception *)
  match
    parse_request
      "{\"v\":2,\"id\":1,\"kind\":\"run\",\"source\":\"1\",\
       \"backend\":\"jit\"}"
  with
  | Error (Protocol.Bad_request msg) ->
      Alcotest.(check bool) "names the backend" true
        (Astring_contains.contains ~needle:"jit" msg)
  | _ -> Alcotest.fail "unknown backend must be Bad_request"

(* The v6 profile field: a canonical profile object survives the codec
   round-trip, absence stays absent (and off the wire), and a malformed
   one is a stable Bad_request. *)
let test_request_profile_field () =
  let p =
    {
      Fg_util.Profile.empty with
      Fg_util.Profile.p_programs = 3;
      p_instantiations = [ ("max[int]", 9); ("min[int]", 1) ];
    }
  in
  let req =
    Protocol.request ~source:"1" ~backend:Fg_core.Backend.Guided ~profile:p
      ~id:5 Protocol.Run
  in
  let r = roundtrip_request req in
  (match r.Protocol.profile with
  | Some q ->
      Alcotest.(check bool) "profile round-trips" true (q = p);
      Alcotest.(check string) "guided survives alongside it" "guided"
        (Fg_core.Backend.to_string r.Protocol.backend)
  | None -> Alcotest.fail "profile dropped by the codec");
  (* absent profile stays absent and off the wire *)
  let bare = Protocol.request ~source:"1" ~id:6 Protocol.Run in
  Alcotest.(check bool) "absent stays absent" true
    ((roundtrip_request bare).Protocol.profile = None);
  (match Protocol.request_to_json bare with
  | j ->
      Alcotest.(check bool) "no profile field emitted" true
        (Fg_util.Json.mem "profile" j = None));
  (* malformed profile objects are Bad_request, not exceptions *)
  match
    parse_request
      "{\"v\":6,\"id\":1,\"kind\":\"run\",\"source\":\"1\",\
       \"profile\":{\"programs\":1}}"
  with
  | Error (Protocol.Bad_request msg) ->
      Alcotest.(check bool) "names the profile" true
        (Astring_contains.contains ~needle:"profile" msg)
  | _ -> Alcotest.fail "malformed profile must be Bad_request"

let test_request_bad_shapes () =
  let bad s =
    match parse_request s with
    | Error (Protocol.Bad_request _) -> ()
    | Error (Protocol.Bad_version _) -> Alcotest.failf "%s: not a version issue" s
    | Ok _ -> Alcotest.failf "accepted bad request: %s" s
  in
  bad "{\"v\":1}";
  bad "{\"v\":1,\"id\":1,\"kind\":\"frobnicate\"}";
  bad "{\"v\":1,\"kind\":\"stats\"}";
  (* program kinds need a source *)
  bad "{\"v\":1,\"id\":1,\"kind\":\"run\"}";
  bad "{\"v\":1,\"id\":1,\"kind\":\"check\",\"file\":\"x.fg\"}"

let test_response_roundtrip () =
  List.iter
    (fun st ->
      let resp =
        Protocol.{ r_id = 9; r_status = st; r_payload = "{\"ok\":true}\n" }
      in
      match Protocol.response_of_json (Protocol.response_to_json resp) with
      | Ok r ->
          Alcotest.(check int) "id" 9 r.Protocol.r_id;
          Alcotest.(check string) "status"
            (Protocol.status_name st)
            (Protocol.status_name r.Protocol.r_status);
          (* the payload is carried as opaque pre-rendered text:
             byte-exact through the wire, trailing newline included *)
          Alcotest.(check string) "payload bytes" "{\"ok\":true}\n"
            r.Protocol.r_payload
      | Error e -> Alcotest.failf "response round-trip failed: %s" e)
    Protocol.
      [ Ok_; Failed; Timeout; Overload; Shutting_down; Protocol_error ]

let test_error_payload_shape () =
  let p =
    Protocol.error_payload ~file:"<conn>" ~code:"FG0803" "bad frame: %s" "x"
  in
  match Fg_util.Json.of_string p with
  | Ok j ->
      Alcotest.(check (option bool)) "ok:false" (Some false)
        (Fg_util.Json.bool_field "ok" j);
      Alcotest.(check (option string)) "file" (Some "<conn>")
        (Fg_util.Json.str_field "file" j);
      (match Fg_util.Json.mem "diagnostics" j with
      | Some (Fg_util.Json.List [ d ]) ->
          Alcotest.(check (option string)) "code" (Some "FG0803")
            (Fg_util.Json.str_field "code" d)
      | _ -> Alcotest.fail "expected one diagnostic")
  | Error e -> Alcotest.failf "error payload is not valid JSON: %s" e

let suite =
  [
    Alcotest.test_case "decoder: one byte at a time" `Quick test_byte_at_a_time;
    Alcotest.test_case "decoder: two frames in one chunk" `Quick
      test_two_frames_one_chunk;
    Alcotest.test_case "decoder: oversized prefix" `Quick test_oversized_prefix;
    Alcotest.test_case "decoder: max_frame boundary" `Quick
      test_oversized_exact_boundary;
    Alcotest.test_case "decoder: garbage bytes" `Quick test_garbage_bytes;
    Alcotest.test_case "decoder: empty frame" `Quick test_empty_frame;
    Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "request version mismatch" `Quick
      test_request_version_mismatch;
    Alcotest.test_case "request bad shapes" `Quick test_request_bad_shapes;
    Alcotest.test_case "cache request round-trip" `Quick
      test_cache_request_roundtrip;
    Alcotest.test_case "fuzz_batch request round-trip" `Quick
      test_fuzz_batch_roundtrip;
    Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "error payload shape" `Quick test_error_payload_shape;
    Alcotest.test_case "v1 frame decodes and routes" `Quick
      test_v1_frame_decodes_and_routes;
    Alcotest.test_case "request backend field" `Quick
      test_request_backend_field;
    Alcotest.test_case "request profile field (v6)" `Quick
      test_request_profile_field;
  ]
