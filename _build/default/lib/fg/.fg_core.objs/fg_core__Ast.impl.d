lib/fg/ast.ml: Fg_systemf Fg_util List Loc Names String
