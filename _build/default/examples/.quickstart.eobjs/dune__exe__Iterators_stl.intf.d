examples/iterators_stl.mli:
