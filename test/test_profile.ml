(* Workload profiles: the canonical codec, the fleet merge, the
   guided-backend hot rule, server auto-sizing, and the end-to-end
   record-then-replay loop (a profile collected on the dict backend
   drives guided specialization whose output the session oracle pins
   to the dictionary semantics). *)

open Fg_util
module C = Fg_core

let sample =
  {
    Profile.p_programs = 12;
    p_instantiations =
      [ ("max[int]", 9); ("min[int]", 1); ("sum[list int]", 4) ];
    p_resolutions = [ ("Eq<int>", 7); ("Ord<int>", 3) ];
    p_backends = [ ("dict", 10); ("guided", 2) ];
    p_requests = [ ("run", 11); ("stats", 1) ];
    p_unit_cache =
      {
        Profile.c_hits = 100;
        c_misses = 40;
        c_evictions = 8;
        c_invalidations = 2;
        c_size = 512;
        c_capacity = 512;
      };
  }

(* ------------------------------------------------------------------ *)
(* Canonical codec *)

let test_roundtrip () =
  match Profile.of_json (Profile.to_json sample) with
  | Error e -> Alcotest.fail ("of_json failed: " ^ e)
  | Ok p ->
      Alcotest.(check bool) "round-trips structurally" true (p = sample);
      Alcotest.(check string) "round-trips byte-identically"
        (Profile.to_string sample) (Profile.to_string p)

let test_canonical_bytes () =
  (* The same profile with its maps presented in a different order must
     render to the same bytes — CI diffs depend on it. *)
  let shuffled =
    {
      sample with
      Profile.p_instantiations =
        [ ("sum[list int]", 4); ("max[int]", 9); ("min[int]", 1) ];
      p_resolutions = [ ("Ord<int>", 3); ("Eq<int>", 7) ];
    }
  in
  Alcotest.(check string) "key order is canonical"
    (Profile.to_string sample) (Profile.to_string shuffled);
  (* Keys inside the rendered object appear sorted. *)
  let s = Profile.to_string sample in
  let pos key =
    let needle = "\"" ^ key ^ "\"" in
    let n = String.length needle and len = String.length s in
    let rec go i =
      if i + n > len then None
      else if String.sub s i n = needle then Some i
      else go (i + 1)
    in
    go 0
  in
  let le a b =
    match (pos a, pos b) with
    | Some i, Some j -> i < j
    | _ -> false
  in
  Alcotest.(check bool) "backends before instantiations" true
    (le "backends" "instantiations");
  Alcotest.(check bool) "fgc_profile version tag present" true
    (pos "fgc_profile" <> None)

let test_of_json_rejects () =
  (match Profile.of_json (Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object accepted");
  match Profile.of_json (Json.Obj [ ("programs", Json.Int 1) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fgc_profile version accepted"

let test_load_fg1003 () =
  let check_raises path =
    match Profile.load path with
    | exception Diag.Error d ->
        Alcotest.(check string) "stable code" "FG1003" d.Diag.code
    | _ -> Alcotest.fail "expected FG1003"
  in
  check_raises "/nonexistent/profile.json";
  let tmp = Filename.temp_file "fgc_profile" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out tmp in
      output_string oc "{ not json";
      close_out oc;
      check_raises tmp;
      (* and save/load closes the loop *)
      Profile.save tmp sample;
      Alcotest.(check bool) "save/load round-trip" true
        (Profile.load tmp = sample))

(* ------------------------------------------------------------------ *)
(* Merge *)

let test_merge () =
  let m = Profile.merge sample sample in
  Alcotest.(check int) "programs sum" 24 m.Profile.p_programs;
  Alcotest.(check (option int)) "instantiations sum" (Some 18)
    (List.assoc_opt "max[int]" m.Profile.p_instantiations);
  Alcotest.(check int) "cache hits sum" 200
    m.Profile.p_unit_cache.Profile.c_hits;
  Alcotest.(check int) "capacity merges by max" 512
    m.Profile.p_unit_cache.Profile.c_capacity;
  (* empty is the identity, on both sides *)
  Alcotest.(check bool) "left identity" true
    (Profile.merge Profile.empty sample = sample);
  Alcotest.(check bool) "right identity" true
    (Profile.merge sample Profile.empty = sample)

(* ------------------------------------------------------------------ *)
(* The hot rule *)

let test_hot_rule () =
  (* total 14 over 3 distinct: threshold = ceil(14/3) = 5 — the Zipf
     head (9) clears it, the tail (4, 1) stays cold. *)
  Alcotest.(check int) "threshold is mean-clearing" 5
    (Profile.hot_threshold sample);
  let hot = Profile.hot sample in
  Alcotest.(check bool) "head is hot" true (hot "max[int]");
  Alcotest.(check bool) "tail is cold" false (hot "sum[list int]");
  Alcotest.(check bool) "singleton is cold" false (hot "min[int]");
  Alcotest.(check bool) "unknown key is cold" false (hot "other[bool]");
  (* No instantiations profiled: nothing is hot, threshold 0. *)
  Alcotest.(check int) "empty threshold" 0
    (Profile.hot_threshold Profile.empty);
  Alcotest.(check bool) "empty: nothing hot" false
    (Profile.hot Profile.empty "max[int]");
  (* A flat (unskewed) profile at count >= 2 makes everything hot:
     threshold = max 2 (mean) = mean. *)
  let flat =
    { Profile.empty with
      Profile.p_instantiations = [ ("a[int]", 3); ("b[int]", 3) ] }
  in
  Alcotest.(check bool) "flat profile: all hot" true
    (Profile.hot flat "a[int]" && Profile.hot flat "b[int]")

(* ------------------------------------------------------------------ *)
(* Auto-sizing *)

let test_auto_size () =
  (* Evictions under pressure: grow to the next power of two covering
     size + evictions (512 + 8 -> 1024 when the default is 512). *)
  let s = Profile.auto_size sample ~default_capacity:512 ~workers:8 in
  Alcotest.(check (option int)) "capacity grows past eviction thrash"
    (Some 1024) s.Profile.sz_unit_cache_capacity;
  (* 12 profiled requests over 8 workers: one worker per 64 requests
     shrinks the pool to 1. *)
  Alcotest.(check (option int)) "idle profile shrinks workers" (Some 1)
    s.Profile.sz_workers;
  (* No evictions: capacity stays configured. *)
  let calm =
    { sample with
      Profile.p_unit_cache =
        { sample.Profile.p_unit_cache with Profile.c_evictions = 0 };
      p_requests = [ ("run", 1000) ] }
  in
  let s2 = Profile.auto_size calm ~default_capacity:512 ~workers:8 in
  Alcotest.(check (option int)) "no evictions, no resize" None
    s2.Profile.sz_unit_cache_capacity;
  (* 1000 requests want ceil(1000/64) = 16 workers but never exceed
     the configured count. *)
  Alcotest.(check (option int)) "workers never grow past configured" None
    s2.Profile.sz_workers;
  (* The empty profile changes nothing. *)
  let s3 = Profile.auto_size Profile.empty ~default_capacity:512 ~workers:4 in
  Alcotest.(check (option int)) "empty: capacity kept" None
    s3.Profile.sz_unit_cache_capacity

(* ------------------------------------------------------------------ *)
(* Record on dict, replay guided: the whole feedback loop in-process *)

let value_programs =
  List.filter_map
    (fun (e : C.Corpus.entry) ->
      match e.C.Corpus.expected with
      | C.Corpus.Value _ -> Some (e.C.Corpus.name, e.C.Corpus.source)
      | C.Corpus.Fails _ -> None)
    C.Corpus.all

let session_of backend profile =
  let module Cfg = C.Session.Config in
  C.Session.of_config
    (Cfg.default |> Cfg.with_backend backend |> Cfg.with_profile profile)

let test_guided_replay () =
  (* Phase 1: run the whole corpus on dict with collection on. *)
  Profile.reset_collected ();
  Profile.set_collecting true;
  let dict = session_of C.Backend.Dict None in
  let dict_outcomes =
    List.map
      (fun (name, src) -> (name, C.Session.run ~file:name dict src))
      value_programs
  in
  Profile.set_collecting false;
  let p =
    Profile.collected
      ~programs:(List.length value_programs)
      ~unit_cache:Profile.cache_zero ~backends:[] ~requests:[] ()
  in
  Alcotest.(check bool) "census saw instantiations" true
    (p.Profile.p_instantiations <> []);
  Alcotest.(check bool) "resolutions were recorded" true
    (p.Profile.p_resolutions <> []);
  (* Phase 2: replay guided under the recorded profile.  The session
     oracle (FG0502/FG0503) re-checks every specialized program; here
     we additionally pin the observable outcome to the dict run. *)
  let guided = session_of C.Backend.Guided (Some p) in
  let stencils = ref 0 and fallbacks = ref 0 in
  List.iter
    (fun (name, src) ->
      let out = C.Session.run ~file:name guided src in
      let d : C.Session.outcome = List.assoc name dict_outcomes in
      Alcotest.(check bool)
        (name ^ ": guided value = dict value")
        true
        (C.Interp.flat_equal out.C.Session.value d.C.Session.value);
      Alcotest.(check bool) (name ^ ": theorem holds") true
        out.C.Session.theorem_holds;
      match out.C.Session.spec with
      | None -> Alcotest.fail (name ^ ": guided outcome lacks spec")
      | Some sp ->
          stencils :=
            !stencils
            + sp.C.Session.spec_stats.Fg_systemf.Specialize.st_stencils;
          fallbacks :=
            !fallbacks
            + sp.C.Session.spec_stats.Fg_systemf.Specialize.st_fallbacks)
    value_programs;
  (* The profile is skewed enough that guided both specialized some
     head and left some tail on dictionary passing. *)
  Alcotest.(check bool) "guided stenciled the hot head" true (!stencils > 0)

let test_guided_no_profile_degenerates () =
  let bare = session_of C.Backend.Guided None in
  List.iter
    (fun (name, src) ->
      let out = C.Session.run ~file:name bare src in
      (match out.C.Session.spec with
      | None -> Alcotest.fail (name ^ ": guided outcome lacks spec")
      | Some sp ->
          Alcotest.(check int)
            (name ^ ": no stencils without a profile")
            0 sp.C.Session.spec_stats.Fg_systemf.Specialize.st_stencils);
      Alcotest.(check bool) (name ^ ": theorem holds") true
        out.C.Session.theorem_holds)
    value_programs

let suite =
  [
    Alcotest.test_case "canonical round-trip" `Quick test_roundtrip;
    Alcotest.test_case "canonical bytes" `Quick test_canonical_bytes;
    Alcotest.test_case "of_json rejects bad shapes" `Quick
      test_of_json_rejects;
    Alcotest.test_case "load: FG1003 and save round-trip" `Quick
      test_load_fg1003;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "hot rule" `Quick test_hot_rule;
    Alcotest.test_case "auto-sizing" `Quick test_auto_size;
    Alcotest.test_case "record on dict, replay guided" `Quick
      test_guided_replay;
    Alcotest.test_case "guided without a profile = dict" `Quick
      test_guided_no_profile_degenerates;
  ]
