(* The session driver: a cached prelude must be observationally
   invisible — programs served by a session are identical to standalone
   pipeline runs — while the caches (prelude, hash-consed types, model
   resolution) actually amortize, batches are deterministic across
   domain counts, and extension leaves the original session intact. *)

open Fg_core

let l = Prelude.int_list

(* Translations from a session and from a one-shot pipeline differ only
   in source locations (a session program starts at line 1; a wrapped
   one sits below the prelude text), so compare their printed forms. *)
let f_exp_str (f : Fg_systemf.Ast.exp) = Fg_systemf.Pretty.exp_to_string f

let check_outcome_equal what (a : Session.outcome) (b : Session.outcome) =
  Alcotest.(check string)
    (what ^ ": type") (Pretty.ty_to_string a.fg_ty)
    (Pretty.ty_to_string b.fg_ty);
  Alcotest.(check string)
    (what ^ ": translation") (f_exp_str a.f_exp) (f_exp_str b.f_exp);
  Alcotest.(check bool)
    (what ^ ": value") true
    (Interp.flat_equal a.value b.value);
  Alcotest.(check int) (what ^ ": direct steps") a.direct_steps b.direct_steps;
  Alcotest.(check int)
    (what ^ ": translated steps") a.translated_steps b.translated_steps

(* ------------------------------------------------------------------ *)
(* Session-reuse equivalence                                           *)

let test_session_matches_pipeline () =
  let s = Session.of_config Session.Config.(default |> with_standard_prelude) in
  List.iter
    (fun body ->
      let from_session = Session.run ~file:"t" s body in
      let fresh = Pipeline.run ~file:"t" (Prelude.wrap body) in
      check_outcome_equal body from_session fresh)
    [
      Printf.sprintf "accumulate[int](%s)" (l [ 1; 2; 3 ]);
      Printf.sprintf "count[list int](%s, 2)" (l [ 2; 1; 2 ]);
      "power[int](3, 3)";
      Printf.sprintf "sum_container[list int](%s)" (l [ 10; 20 ]);
    ]

let test_repeat_runs_identical () =
  (* The second run hits the warm caches; its output must not change,
     and the resolution cache must actually be exercised. *)
  let s = Session.of_config Session.Config.(default |> with_standard_prelude) in
  let body = Printf.sprintf "accumulate[int](%s)" (l [ 4; 5; 6 ]) in
  let o1 = Session.run ~file:"t" s body in
  let before = Fg_util.Telemetry.snapshot () in
  let o2 = Session.run ~file:"t" s body in
  let d =
    Fg_util.Telemetry.diff (Fg_util.Telemetry.snapshot ()) before
  in
  check_outcome_equal "second run" o1 o2;
  Alcotest.(check bool)
    "second run reused the prelude" true
    (d.prelude_reuses = 1 && d.prelude_builds = 0);
  Alcotest.(check bool)
    "second run hit the resolution cache" true (d.resolve_hits > 0)

let test_session_error_then_recover () =
  (* A failing program must not poison the session for the next one. *)
  let s = Session.of_config Session.Config.(default |> with_standard_prelude) in
  (match Session.run_result ~file:"bad" s "unbound_variable_q" with
  | Error d -> Alcotest.(check bool) "typecheck error" true
                 (d.phase = Fg_util.Diag.Typecheck)
  | Ok _ -> Alcotest.fail "expected an error");
  let o = Session.run ~file:"good" s "power[int](2, 5)" in
  Alcotest.(check bool) "recovers" true (o.value = Interp.FlInt 10)

(* ------------------------------------------------------------------ *)
(* Cache invalidation: overlapping model names across programs         *)

let test_overlapping_models_across_programs () =
  (* Both programs declare Monoid<int> models — with different
     operations — on top of the same session-cached concepts.  The
     resolution cache is keyed by scope generation, so program 2 must
     see ITS model, not program 1's cached resolution. *)
  let s =
    Session.of_config Session.Config.(default |> with_prelude (Some (Corpus.monoid_prelude ^ Corpus.accumulate_def)))
  in
  let sum_prog =
    Printf.sprintf
      "model Semigroup<int> { binary_op = iadd; } in\n\
       model Monoid<int> { identity_elt = 0; } in\n\
       accumulate[int](%s)" (l [ 2; 3; 4 ])
  in
  let product_prog =
    Printf.sprintf
      "model Semigroup<int> { binary_op = imult; } in\n\
       model Monoid<int> { identity_elt = 1; } in\n\
       accumulate[int](%s)" (l [ 2; 3; 4 ])
  in
  let o_sum = Session.run ~file:"sum" s sum_prog in
  let o_prod = Session.run ~file:"product" s product_prog in
  Alcotest.(check bool) "sum = 9" true (o_sum.value = Interp.FlInt 9);
  Alcotest.(check bool) "product = 24" true (o_prod.value = Interp.FlInt 24);
  (* and again in the other order, from the warm cache *)
  let o_prod2 = Session.run ~file:"product" s product_prog in
  let o_sum2 = Session.run ~file:"sum" s sum_prog in
  check_outcome_equal "sum after product" o_sum o_sum2;
  check_outcome_equal "product after sum" o_prod o_prod2

let test_local_model_does_not_leak () =
  (* Program 1 declares a model for a prelude concept; program 2 uses
     the concept WITHOUT declaring the model and must be rejected. *)
  let s = Session.of_config Session.Config.(default |> with_prelude (Some Corpus.monoid_prelude)) in
  let with_model =
    "model Semigroup<int> { binary_op = iadd; } in\n\
     model Monoid<int> { identity_elt = 0; } in\n\
     Monoid<int>.identity_elt"
  in
  let without_model = "Monoid<int>.identity_elt" in
  let o = Session.run ~file:"with" s with_model in
  Alcotest.(check bool) "model program runs" true (o.value = Interp.FlInt 0);
  match Session.run_result ~file:"without" s without_model with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "program 1's model leaked into program 2"

(* ------------------------------------------------------------------ *)
(* Extension                                                           *)

let test_extend () =
  let base = Session.of_config Session.Config.(default |> with_standard_prelude) in
  let extended =
    Session.extend base "let triple = fun (x : int) => x + x + x in"
  in
  let o = Session.run ~file:"t" extended "triple(14)" in
  Alcotest.(check bool) "extended scope" true (o.value = Interp.FlInt 42);
  (* the original session must not see the extension *)
  (match Session.run_result ~file:"t" base "triple(14)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "extend mutated the base session");
  (* and the prelude is still live below the extension *)
  let o2 =
    Session.run ~file:"t" extended
      (Printf.sprintf "triple(accumulate[int](%s))" (l [ 1; 2 ]))
  in
  Alcotest.(check bool) "prelude + extension" true (o2.value = Interp.FlInt 9)

let test_extend_rejects_bad_decls () =
  let s = Session.of_config Session.Config.(default |> with_standard_prelude) in
  (match Session.extend_result s "let broken = undefined_name in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected extension to fail");
  (* the failed extension must leave the session usable *)
  let o = Session.run ~file:"t" s "power[int](2, 3)" in
  Alcotest.(check bool) "session survives" true (o.value = Interp.FlInt 6)

(* ------------------------------------------------------------------ *)
(* Batch determinism                                                   *)

let batch_jobs =
  List.init 12 (fun i ->
      ( Printf.sprintf "job%02d" i,
        if i mod 5 = 4 then "this_is_unbound"
        else if i mod 3 = 2 then
          Printf.sprintf "count[list int](%s, %d)" (l [ i; i; 1 ]) i
        else Printf.sprintf "accumulate[int](%s)" (l [ i; i + 1 ]) ))

let run_jobs domains =
  let s = Session.of_config Session.Config.(default |> with_standard_prelude) in
  Session.run_batch ~domains s batch_jobs

let check_batches_equal a b =
  List.iter2
    (fun (n1, r1) (n2, r2) ->
      Alcotest.(check string) "job order" n1 n2;
      match (r1, r2) with
      | Ok o1, Ok o2 -> check_outcome_equal n1 o1 o2
      | Error d1, Error d2 ->
          Alcotest.(check string) (n1 ^ ": same diagnostic")
            (Fg_util.Diag.to_string d1) (Fg_util.Diag.to_string d2)
      | _ -> Alcotest.failf "%s: verdict differs between batches" n1)
    a b

let test_batch_deterministic () =
  let b1 = run_jobs 1 in
  let b2 = run_jobs 2 in
  let bn = run_jobs (Session.default_domains ()) in
  Alcotest.(check int) "all jobs" (List.length batch_jobs) (List.length b1);
  check_batches_equal b1 b2;
  check_batches_equal b1 bn;
  (* and the batch agrees with serving the jobs one by one *)
  let s = Session.of_config Session.Config.(default |> with_standard_prelude) in
  List.iter2
    (fun (name, src) (n, r) ->
      Alcotest.(check string) "order" name n;
      match (Session.run_result ~file:name s src, r) with
      | Ok o1, Ok o2 -> check_outcome_equal name o1 o2
      | Error _, Error _ -> ()
      | _ -> Alcotest.failf "%s: batch vs single verdict differs" name)
    batch_jobs b1

let test_batch_more_domains_than_jobs () =
  let s = Session.of_config Session.Config.(default |> with_standard_prelude) in
  let jobs = [ ("only", "power[int](2, 4)") ] in
  match Session.run_batch ~domains:8 s jobs with
  | [ ("only", Ok o) ] ->
      Alcotest.(check bool) "value" true (o.value = Interp.FlInt 8)
  | _ -> Alcotest.fail "unexpected batch shape"

let prop_batch_matches_single_on_generated =
  QCheck.Test.make ~name:"batch over generated programs = single runs"
    ~count:30
    QCheck.(make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      (* a small batch of printed generated programs, fanned out over 2
         domains, must match per-program session runs *)
      let jobs =
        List.init 4 (fun i ->
            ( Printf.sprintf "g%d" i,
              Pretty.exp_to_string (Gen.program_of_seed (seed + (i * 101))) ))
      in
      let s = Session.of_config Session.Config.default in
      let batched = Session.run_batch ~domains:2 s jobs in
      List.for_all2
        (fun (name, src) (_, r) ->
          match (Session.run_result ~file:name s src, r) with
          | Ok a, Ok b ->
              Interp.flat_equal a.Session.value b.Session.value
              && f_exp_str a.Session.f_exp = f_exp_str b.Session.f_exp
          | Error _, Error _ -> true
          | _ -> false)
        jobs batched)

(* ------------------------------------------------------------------ *)
(* Incremental re-checking: the unit cache must be invisible            *)

(* The full (type, elaborated term, translation, diagnostics, value)
   quintuple of a run, printed — the strongest observable a program
   has.  A warm session must reproduce a cold session's quintuple
   byte-for-byte. *)
let quintuple s file src =
  let report = Session.run_full ~file s src in
  let elaborated =
    match Fg_util.Diag.protect (fun () -> Session.elaborate ~file s src) with
    | Ok (ty, elab, f) ->
        Pretty.ty_to_string ty ^ "\n" ^ Pretty.exp_to_string elab ^ "\n"
        ^ f_exp_str f
    | Error d -> "error: " ^ Fg_util.Diag.to_string d
  in
  Fg_util.Json.to_string (Jsonview.json_of_run_report ~file report)
  ^ "\n" ^ elaborated

let test_incremental_mutation_equals_cold () =
  (* Check a shared-prefix program, then mutate declaration k and
     re-check incrementally: every prefix unit replays from cache, and
     the result must equal a cold check of the mutated program. *)
  let decls = 6 in
  let base = Genprog.shared_prefix ~decls () in
  for k = 0 to decls - 1 do
    let mutated = Genprog.shared_prefix ~edit_at:k ~edit:3 ~decls () in
    let warm = Session.of_config Session.Config.default in
    ignore (quintuple warm "t" base);
    let before = Session.cache_stats warm in
    let got = quintuple warm "t" mutated in
    let after = Session.cache_stats warm in
    let cold = Session.of_config Session.Config.default in
    let want = quintuple cold "t" mutated in
    Alcotest.(check string)
      (Printf.sprintf "mutate decl %d: quintuple" k)
      want got;
    (* [quintuple] checks the program twice (run_full + elaborate), but
       both parse paths give declarations identical spans — so the same
       unit keys — and the second pass replays the unit the first just
       inserted: exactly one miss for the edited declaration; everything
       else — 2 framing decls + the other [decls - 1] definitions —
       hits. *)
    Alcotest.(check int)
      (Printf.sprintf "mutate decl %d: misses" k)
      1
      (after.Unit.s_misses - before.Unit.s_misses);
    Alcotest.(check bool)
      (Printf.sprintf "mutate decl %d: prefix hit" k)
      true
      (after.Unit.s_hits - before.Unit.s_hits >= 2 * (decls + 1))
  done

let prop_warm_session_equals_cold =
  QCheck.Test.make ~name:"generated programs: warm session = cold session"
    ~count:40
    QCheck.(make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      (* one session serves three generated programs in a row; each
         response must be byte-identical to a fresh session's *)
      let warm = Session.of_config Session.Config.default in
      List.for_all
        (fun i ->
          let file = Printf.sprintf "g%d" i in
          let src =
            Pretty.exp_to_string (Gen.program_of_seed (seed + (i * 131)))
          in
          let from_warm = quintuple warm file src in
          let from_cold = quintuple (Session.of_config Session.Config.default) file src in
          from_warm = from_cold)
        [ 0; 1; 2 ])

let count_code code report =
  List.length
    (List.filter
       (fun (d : Fg_util.Diag.diagnostic) -> d.code = code)
       report.Session.diagnostics)

let test_warnings_replayed_once () =
  (* FG0701/FG0702 are emitted while checking a declaration; when the
     declaration is served from cache they must be REPLAYED — present
     exactly once, not zero times and not twice. *)
  let src =
    "concept N<t> { m : t; } in\n\
     model N<int> { m = 1; } in\n\
     model N<int> { m = 2; } in\n\
     let f = tfun t where N<t> => fun (x : int) => x in\n\
     f[int](N<int>.m)"
  in
  let s = Session.of_config Session.Config.default in
  let cold = Session.run_full ~file:"w" s src in
  let warm = Session.run_full ~file:"w" s src in
  List.iter
    (fun code ->
      Alcotest.(check int) (code ^ " cold") 1 (count_code code cold);
      Alcotest.(check int) (code ^ " replayed once") 1 (count_code code warm))
    [ "FG0701"; "FG0702" ];
  Alcotest.(check string) "identical reports"
    (Fg_util.Json.to_string (Jsonview.json_of_run_report ~file:"w" cold))
    (Fg_util.Json.to_string (Jsonview.json_of_run_report ~file:"w" warm))

let test_repl_redefinition_invalidates () =
  (* The REPL path: extend with x, extend again redefining x.  The new
     session sees the new binding, the old session keeps the old one,
     and the redefinition bumps the invalidation counter. *)
  let base = Session.of_config Session.Config.default in
  let s1 = Session.extend base "let x = 1 in" in
  let o1 = Session.run ~file:"r" s1 "x + 0" in
  Alcotest.(check bool) "x = 1" true (o1.value = Interp.FlInt 1);
  let before = Session.cache_stats s1 in
  let s2 = Session.extend s1 "let x = 2 in" in
  let after = Session.cache_stats s2 in
  Alcotest.(check bool) "redefinition recorded" true
    (after.Unit.s_invalidations > before.Unit.s_invalidations);
  let o2 = Session.run ~file:"r" s2 "x + 0" in
  Alcotest.(check bool) "x = 2" true (o2.value = Interp.FlInt 2);
  let o1' = Session.run ~file:"r" s1 "x + 0" in
  Alcotest.(check bool) "old session still 1" true
    (o1'.value = Interp.FlInt 1)

let test_unit_cache_eviction () =
  (* A deliberately tiny cache must stay within its bound and evict. *)
  let s = Session.of_config Session.Config.(default |> with_unit_cache_capacity (Some 2)) in
  ignore (Session.run ~file:"t" s (Genprog.shared_prefix ~decls:6 ()));
  let st = Session.cache_stats s in
  Alcotest.(check bool) "evicted" true (st.Unit.s_evictions > 0);
  Alcotest.(check bool) "bounded" true (st.Unit.s_size <= 2);
  (* and eviction never compromises results *)
  let cold = quintuple (Session.of_config Session.Config.default) "t" (Genprog.shared_prefix ~decls:6 ()) in
  let small = quintuple s "t" (Genprog.shared_prefix ~decls:6 ()) in
  Alcotest.(check string) "tiny cache same output" cold small

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let test_stats_and_interning () =
  let s = Session.of_config Session.Config.(default |> with_standard_prelude) in
  ignore (Session.run ~file:"t" s "power[int](2, 6)");
  ignore (Session.run ~file:"t" s "power[int](2, 6)");
  let st = Session.stats s in
  Alcotest.(check bool) "check time measured" true (st.check_ns > 0);
  Alcotest.(check bool) "programs counted" true (st.programs >= 2);
  Alcotest.(check bool) "prelude reused" true (st.prelude_reuses >= 2);
  Alcotest.(check bool) "lookups recorded" true (st.model_lookups > 0);
  Alcotest.(check bool) "cache hits recorded" true (st.resolve_hits > 0);
  Alcotest.(check bool) "types interned" true (Session.interned_types s > 0)

let test_prelude_must_be_declarations () =
  match
    Fg_util.Diag.protect (fun () ->
        Session.of_config Session.Config.(default |> with_prelude (Some "1 + 1 in")))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-declaration prelude accepted"

let suite =
  [
    Alcotest.test_case "session run = pipeline run" `Quick
      test_session_matches_pipeline;
    Alcotest.test_case "repeat runs identical, caches hit" `Quick
      test_repeat_runs_identical;
    Alcotest.test_case "error then recover" `Quick
      test_session_error_then_recover;
    Alcotest.test_case "overlapping models across programs" `Quick
      test_overlapping_models_across_programs;
    Alcotest.test_case "local models do not leak" `Quick
      test_local_model_does_not_leak;
    Alcotest.test_case "extend adds scope, base untouched" `Quick test_extend;
    Alcotest.test_case "extend rejects bad declarations" `Quick
      test_extend_rejects_bad_decls;
    Alcotest.test_case "batch deterministic across domain counts" `Quick
      test_batch_deterministic;
    Alcotest.test_case "batch with more domains than jobs" `Quick
      test_batch_more_domains_than_jobs;
    QCheck_alcotest.to_alcotest prop_batch_matches_single_on_generated;
    Alcotest.test_case "incremental mutation = cold check" `Quick
      test_incremental_mutation_equals_cold;
    QCheck_alcotest.to_alcotest prop_warm_session_equals_cold;
    Alcotest.test_case "warnings replayed exactly once" `Quick
      test_warnings_replayed_once;
    Alcotest.test_case "REPL redefinition invalidates" `Quick
      test_repl_redefinition_invalidates;
    Alcotest.test_case "tiny unit cache evicts, stays correct" `Quick
      test_unit_cache_eviction;
    Alcotest.test_case "stats and interning observable" `Quick
      test_stats_and_interning;
    Alcotest.test_case "prelude must be declarations" `Quick
      test_prelude_must_be_declarations;
  ]
