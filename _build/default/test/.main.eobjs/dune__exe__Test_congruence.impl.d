test/test_congruence.ml: Alcotest Array Fg_congruence Fg_util List QCheck QCheck_alcotest String
