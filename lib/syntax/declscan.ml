(** Declaration boundary scanning, shared by every consumer that needs
    to ask "does a declaration start here?" — the REPL's input
    classifier, the recovering parser's resynchronization, and the
    workspace document splitter.  One keyword list, one classification
    rule. *)

let decl_keywords = [ "concept"; "model"; "let"; "type"; "using" ]

let is_decl_kw tok =
  match tok with
  | Token.KW k -> List.mem k decl_keywords
  | _ -> false

(* Classify by the first lexed token rather than a string prefix: this
   accepts 'using', tab-indented declarations and 'model<...>' variants
   uniformly, and never misfires on identifiers like 'letter'.  Text
   that does not even lex is not a declaration — the expression path
   will report its error. *)
let is_decl_start line =
  match Fg_util.Diag.protect (fun () -> Lexer.tokenize line) with
  | Error _ -> false
  | Ok toks -> Array.length toks > 0 && is_decl_kw (fst toks.(0))
