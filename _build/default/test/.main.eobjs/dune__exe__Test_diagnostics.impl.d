test/test_diagnostics.ml: Alcotest Fg_core Fg_util Pipeline Resolution
