(** A minimal JSON tree, printer and reader.  The printer backs the
    driver's machine-readable output ([fgc --format=json], [--stats]);
    the reader backs the [fgc serve] wire protocol, whose frames are
    JSON documents that must survive an exact round-trip (strings
    containing newlines, tabs and other control characters included:
    the printer escapes everything below U+0020 and the reader decodes
    every escape the printer can emit, plus the rest of RFC 8259). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace beyond single
    spaces); strings are escaped per RFC 8259. *)
val to_string : t -> string

val pp : t Fmt.t

(** Recursively sort every object's fields by key (stable, so
    duplicate keys keep their relative order).  Applied to stats and
    profile output so equal payloads render byte-identically for CI
    diffing; deliberately {e not} applied to run reports, whose field
    order is pinned by goldens. *)
val sort_keys : t -> t

(** Parse one JSON document; the whole input must be consumed (trailing
    whitespace allowed).  Nesting is bounded (255 levels) so malformed
    wire frames cannot exhaust the stack; numbers that fit an OCaml
    [int] parse as [Int], everything else as [Float]; [\uXXXX] escapes
    (surrogate pairs included) decode to UTF-8.  Errors report the byte
    offset. *)
val of_string : string -> (t, string) result

(** {1 Accessors} — [None] when the value is not an [Obj], the key is
    absent, or the field has a different shape. *)

val mem : string -> t -> t option
val str_field : string -> t -> string option
val int_field : string -> t -> int option
val bool_field : string -> t -> bool option
