lib/fg/parser.mli: Ast
