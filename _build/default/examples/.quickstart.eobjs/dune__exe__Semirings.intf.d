examples/semirings.mli:
