(** Request execution against warm sessions (see the interface).

    One handler lives inside one worker domain and owns one session per
    distinct {!Fg_core.Session.Config.t} it has served — the config a
    request denotes (prelude × resolution mode × backend) {e is} the
    cache key, so adding a session-shaping request field never needs a
    new ad-hoc tuple here.  Each session is created lazily on the first
    request that needs it and kept warm from then on, so the prelude is
    parsed and checked once per worker rather than once per request. *)

open Fg_util
module C = Fg_core

type t = {
  fuel : int option;
  cache : C.Unit.cache;
      (** one compilation-unit cache shared by every session this
          worker owns: bounded memory and unified counters across all
          served configurations *)
  mutable sessions : (C.Session.Config.t * C.Session.t) list;
}

let create ?fuel () = { fuel; cache = C.Unit.create_cache (); sessions = [] }

let config_of ~prelude ~global_models ~backend =
  let module Cfg = C.Session.Config in
  let cfg =
    Cfg.default
    |> Cfg.with_resolution
         (if global_models then C.Resolution.Global else C.Resolution.Lexical)
    |> Cfg.with_backend backend
  in
  if prelude then Cfg.with_standard_prelude cfg else cfg

let session_for t cfg =
  match List.assoc_opt cfg t.sessions with
  | Some s -> s
  | None ->
      let s = C.Session.of_config ~cache:t.cache cfg in
      t.sessions <- (cfg, s) :: t.sessions;
      s

let cache_stats t = C.Unit.stats t.cache

let warm t =
  ignore
    (session_for t
       (config_of ~prelude:true ~global_models:false
          ~backend:C.Backend.Dict))

(* The check/translate payloads mirror the run payload's envelope
   ({"file", "ok", ..., "diagnostics"}) so clients can switch on the
   same fields for every kind. *)

let check_payload s ~file source =
  match Diag.protect (fun () -> C.Session.typecheck ~file s source) with
  | Ok ty ->
      Json.Obj
        [ ("file", Json.Str file); ("ok", Json.Bool true);
          ("type", Json.Str (C.Pretty.ty_to_string ty));
          ("diagnostics", Json.List []) ]
  | Error d -> C.Jsonview.json_of_failure ~file d

let translate_payload s ~file source =
  match Diag.protect (fun () -> C.Session.translate ~file s source) with
  | Ok f ->
      Json.Obj
        [ ("file", Json.Str file); ("ok", Json.Bool true);
          ("systemf", Json.Str (Fg_systemf.Pretty.exp_to_string f));
          ("diagnostics", Json.List []) ]
  | Error d -> C.Jsonview.json_of_failure ~file d

(* Execute one program-shaped request; Stats and Shutdown are control
   requests the pool answers itself and must not reach here. *)
let handle t (req : Protocol.request) : Protocol.status * string =
  let file = req.file in
  match req.kind with
  | Protocol.Stats | Protocol.Shutdown ->
      Diag.ice "control request %s reached a worker handler"
        (Protocol.kind_name req.kind)
  | Protocol.FuzzOne ->
      let cfg =
        { C.Fuzz.seed = req.seed; count = 1; size = max 1 req.size;
          mutants = max 0 req.mutants; backend = req.backend }
      in
      let report = C.Fuzz.run ~domains:1 cfg in
      let status =
        if report.C.Fuzz.r_failures = [] then Protocol.Ok_
        else Protocol.Failed
      in
      (status, Json.to_string (C.Fuzz.report_to_json report))
  | Protocol.Check | Protocol.Run | Protocol.Translate -> (
      let s =
        session_for t
          (config_of ~prelude:req.prelude ~global_models:req.global_models
             ~backend:req.backend)
      in
      match req.kind with
      | Protocol.Check ->
          let payload = check_payload s ~file req.source in
          let ok = Json.bool_field "ok" payload = Some true in
          ((if ok then Protocol.Ok_ else Protocol.Failed),
           Json.to_string payload)
      | Protocol.Translate ->
          let payload = translate_payload s ~file req.source in
          let ok = Json.bool_field "ok" payload = Some true in
          ((if ok then Protocol.Ok_ else Protocol.Failed),
           Json.to_string payload)
      | _ ->
          (* Run: the recovering full pipeline, rendered by the same
             code path as one-shot `fgc run --format=json`. *)
          let report =
            C.Session.run_full ~file ?fuel:t.fuel s req.source
          in
          let payload = C.Jsonview.json_of_run_report ~file report in
          let status =
            match report.C.Session.outcome with
            | Some _ -> Protocol.Ok_
            | None -> Protocol.Failed
          in
          (status, Json.to_string payload))

(* Defensive wrapper: a worker must survive anything a request throws,
   including non-diagnostic exceptions from deep inside the pipeline. *)
let handle_safe t req =
  match handle t req with
  | result -> result
  | exception Diag.Error d ->
      (Protocol.Failed,
       Json.to_string (C.Jsonview.json_of_failure ~file:req.Protocol.file d))
  | exception exn ->
      ( Protocol.Failed,
        Protocol.error_payload ~file:req.Protocol.file ~code:"FG0901"
          "uncaught exception while serving request: %s"
          (Printexc.to_string exn) )
