(** Global driver instrumentation (see the interface).

    Every counter is a {!Shardcounter.t}: increments from parallel
    batch domains land on per-domain shards (one uncontended atomic
    add, no shared cache line) and are merged on read.  Wall time is
    accumulated in integer nanoseconds so the time accumulators share
    the same representation as the counters (no atomic floats
    needed). *)

(* ---------------------------------------------------------------- *)
(* Latency histograms                                                 *)

module Histogram = struct
  (* Log-linear buckets (HdrHistogram-style, coarse): values 0-3 get
     their own bucket; every octave above that is split into 4 linear
     sub-buckets, so any recorded value is reconstructed to within 25%.
     Everything is an [Atomic.t int], so domains record concurrently
     without tearing; reads (percentiles, sums) are racy snapshots,
     which is fine for monitoring.  [sum]/[max_v] keep exact totals. *)

  let n_buckets = 248 (* 4 + 4 sub-buckets * 61 octaves *)

  type t = {
    buckets : int Atomic.t array;
    count : int Atomic.t;
    sum : int Atomic.t;
    max_v : int Atomic.t;
  }

  let create () =
    {
      buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      sum = Atomic.make 0;
      max_v = Atomic.make 0;
    }

  (* Position of the most significant set bit of [v >= 4]. *)
  let msb v =
    let rec go v m = if v <= 1 then m else go (v lsr 1) (m + 1) in
    go v 0

  let bucket_index v =
    if v < 4 then v
    else
      let m = msb v in
      let sub = (v lsr (m - 2)) land 3 in
      (4 * (m - 1)) + sub

  (* The largest value a bucket can hold — what percentile queries
     report, so estimates err on the conservative (larger) side. *)
  let bucket_bound idx =
    if idx < 4 then idx
    else
      let m = (idx / 4) + 1 in
      let sub = idx mod 4 in
      ((4 + sub + 1) lsl (m - 2)) - 1

  let observe t v =
    let v = max 0 v in
    Atomic.incr t.buckets.(bucket_index v);
    Atomic.incr t.count;
    ignore (Atomic.fetch_and_add t.sum v);
    (* CAS loop: keep the maximum ever observed. *)
    let rec bump () =
      let cur = Atomic.get t.max_v in
      if v > cur && not (Atomic.compare_and_set t.max_v cur v) then bump ()
    in
    bump ()

  let count t = Atomic.get t.count
  let sum t = Atomic.get t.sum
  let max_value t = Atomic.get t.max_v

  let mean t =
    let n = count t in
    if n = 0 then 0. else float_of_int (sum t) /. float_of_int n

  let percentile t p =
    let n = count t in
    if n = 0 then 0
    else
      let rank =
        max 1 (int_of_float (ceil (p /. 100. *. float_of_int n)))
      in
      let rec walk idx cum =
        if idx >= n_buckets then max_value t
        else
          let cum = cum + Atomic.get t.buckets.(idx) in
          if cum >= rank then min (bucket_bound idx) (max_value t)
          else walk (idx + 1) cum
      in
      walk 0 0

  let reset t =
    Array.iter (fun b -> Atomic.set b 0) t.buckets;
    Atomic.set t.count 0;
    Atomic.set t.sum 0;
    Atomic.set t.max_v 0

  (* Bucket-wise sum into a fresh histogram — the same snapshot/merge
     shape as the sharded counters: each side is read racily, the
     result is a consistent standalone value.  Bucket boundaries are a
     compile-time constant, so merging is exact (no re-bucketing). *)
  let merge a b =
    let t = create () in
    for i = 0 to n_buckets - 1 do
      Atomic.set t.buckets.(i)
        (Atomic.get a.buckets.(i) + Atomic.get b.buckets.(i))
    done;
    Atomic.set t.count (count a + count b);
    Atomic.set t.sum (sum a + sum b);
    Atomic.set t.max_v (max (max_value a) (max_value b));
    t

  (* Rendered in milliseconds on the assumption that observations are
     nanoseconds — which is what every histogram in the tree records.
     Keys are emitted in sorted order (stats output is byte-stable). *)
  let to_json t =
    let ms ns = float_of_int ns /. 1e6 in
    Json.Obj
      [
        ("count", Json.Int (count t));
        ("max_ms", Json.Float (ms (max_value t)));
        ("mean_ms", Json.Float (mean t /. 1e6));
        ("p50_ms", Json.Float (ms (percentile t 50.)));
        ("p95_ms", Json.Float (ms (percentile t 95.)));
        ("p99_ms", Json.Float (ms (percentile t 99.)));
      ]
end

type phase = Parse | Check | Specialize | Verify | Eval

let phase_label = function
  | Parse -> "parse"
  | Check -> "check"
  | Specialize -> "specialize"
  | Verify -> "verify"
  | Eval -> "eval"

(* ---------------------------------------------------------------- *)
(* The counters                                                      *)

let parse_ns = Shardcounter.create ()
let check_ns = Shardcounter.create ()
let specialize_ns = Shardcounter.create ()
let verify_ns = Shardcounter.create ()
let eval_ns = Shardcounter.create ()
let cc_rebuilds = Shardcounter.create ()
let model_lookups = Shardcounter.create ()
let resolve_hits = Shardcounter.create ()
let resolve_misses = Shardcounter.create ()
let prelude_builds = Shardcounter.create ()
let prelude_reuses = Shardcounter.create ()
let programs = Shardcounter.create ()
let fuzz_generated = Shardcounter.create ()
let fuzz_discarded = Shardcounter.create ()
let fuzz_shrunk = Shardcounter.create ()
let unit_hits = Shardcounter.create ()
let unit_misses = Shardcounter.create ()
let unit_evictions = Shardcounter.create ()
let unit_invalidations = Shardcounter.create ()
let stencils_created = Shardcounter.create ()
let stencils_shared = Shardcounter.create ()
let stencil_fallbacks = Shardcounter.create ()
let dicts_hoisted = Shardcounter.create ()
let disk_hits = Shardcounter.create ()
let disk_misses = Shardcounter.create ()
let disk_evictions = Shardcounter.create ()
let corrupt_entries = Shardcounter.create ()
let peer_hits = Shardcounter.create ()
let peer_misses = Shardcounter.create ()
let peer_failures = Shardcounter.create ()

let all =
  [
    parse_ns; check_ns; specialize_ns; verify_ns; eval_ns; cc_rebuilds;
    model_lookups; resolve_hits; resolve_misses; prelude_builds;
    prelude_reuses; programs; fuzz_generated; fuzz_discarded; fuzz_shrunk;
    unit_hits; unit_misses; unit_evictions; unit_invalidations;
    stencils_created; stencils_shared; stencil_fallbacks; dicts_hoisted;
    disk_hits; disk_misses; disk_evictions; corrupt_entries; peer_hits;
    peer_misses; peer_failures;
  ]

let bump c = Shardcounter.incr c
let record_cc_rebuild () = bump cc_rebuilds
let record_model_lookup () = bump model_lookups
let record_resolve_hit () = bump resolve_hits
let record_resolve_miss () = bump resolve_misses
let record_prelude_build () = bump prelude_builds
let record_prelude_reuse () = bump prelude_reuses
let record_program () = bump programs
let record_fuzz_generated () = bump fuzz_generated
let record_fuzz_discarded () = bump fuzz_discarded
let record_fuzz_shrunk () = bump fuzz_shrunk
let record_unit_hit () = bump unit_hits
let record_unit_miss () = bump unit_misses
let record_unit_eviction () = bump unit_evictions
let record_disk_hit () = bump disk_hits
let record_disk_miss () = bump disk_misses
let record_disk_eviction () = bump disk_evictions
let record_corrupt_entry () = bump corrupt_entries
let record_peer_hit () = bump peer_hits
let record_peer_miss () = bump peer_misses
let record_peer_failure () = bump peer_failures

let add c n = if n > 0 then Shardcounter.add c n
let record_unit_invalidations n = add unit_invalidations n
let record_stencils_created n = add stencils_created n
let record_stencils_shared n = add stencils_shared n
let record_stencil_fallbacks n = add stencil_fallbacks n
let record_dicts_hoisted n = add dicts_hoisted n

let phase_counter = function
  | Parse -> parse_ns
  | Check -> check_ns
  | Specialize -> specialize_ns
  | Verify -> verify_ns
  | Eval -> eval_ns

(* The wall clock is the only time source available here, and it can
   step backwards (NTP).  [monotonize] pins every reading to the
   maximum ever observed — a CAS loop, so concurrent domains agree on
   one non-decreasing stream — which turns a backwards step into a
   brief plateau instead of a negative duration. *)
let last_ns = Atomic.make 0

let monotonize ns =
  let rec go () =
    let seen = Atomic.get last_ns in
    if ns <= seen then seen
    else if Atomic.compare_and_set last_ns seen ns then ns
    else go ()
  in
  go ()

let raw_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let now_ns () = monotonize (raw_ns ())

let time phase f =
  let counter = phase_counter phase in
  let t0 = now_ns () in
  let record () = Shardcounter.add counter (max 0 (now_ns () - t0)) in
  match f () with
  | v ->
      record ();
      v
  | exception e ->
      record ();
      raise e

(* ---------------------------------------------------------------- *)
(* Snapshots                                                         *)

type snapshot = {
  parse_ns : int;
  check_ns : int;
  specialize_ns : int;
  verify_ns : int;
  eval_ns : int;
  cc_rebuilds : int;
  model_lookups : int;
  resolve_hits : int;
  resolve_misses : int;
  prelude_builds : int;
  prelude_reuses : int;
  programs : int;
  fuzz_generated : int;
  fuzz_discarded : int;
  fuzz_shrunk : int;
  unit_hits : int;
  unit_misses : int;
  unit_evictions : int;
  unit_invalidations : int;
  stencils_created : int;
  stencils_shared : int;
  stencil_fallbacks : int;
  dicts_hoisted : int;
  disk_hits : int;
  disk_misses : int;
  disk_evictions : int;
  corrupt_entries : int;
  peer_hits : int;
  peer_misses : int;
  peer_failures : int;
}

let snapshot () =
  {
    parse_ns = Shardcounter.read parse_ns;
    check_ns = Shardcounter.read check_ns;
    specialize_ns = Shardcounter.read specialize_ns;
    verify_ns = Shardcounter.read verify_ns;
    eval_ns = Shardcounter.read eval_ns;
    cc_rebuilds = Shardcounter.read cc_rebuilds;
    model_lookups = Shardcounter.read model_lookups;
    resolve_hits = Shardcounter.read resolve_hits;
    resolve_misses = Shardcounter.read resolve_misses;
    prelude_builds = Shardcounter.read prelude_builds;
    prelude_reuses = Shardcounter.read prelude_reuses;
    programs = Shardcounter.read programs;
    fuzz_generated = Shardcounter.read fuzz_generated;
    fuzz_discarded = Shardcounter.read fuzz_discarded;
    fuzz_shrunk = Shardcounter.read fuzz_shrunk;
    unit_hits = Shardcounter.read unit_hits;
    unit_misses = Shardcounter.read unit_misses;
    unit_evictions = Shardcounter.read unit_evictions;
    unit_invalidations = Shardcounter.read unit_invalidations;
    stencils_created = Shardcounter.read stencils_created;
    stencils_shared = Shardcounter.read stencils_shared;
    stencil_fallbacks = Shardcounter.read stencil_fallbacks;
    dicts_hoisted = Shardcounter.read dicts_hoisted;
    disk_hits = Shardcounter.read disk_hits;
    disk_misses = Shardcounter.read disk_misses;
    disk_evictions = Shardcounter.read disk_evictions;
    corrupt_entries = Shardcounter.read corrupt_entries;
    peer_hits = Shardcounter.read peer_hits;
    peer_misses = Shardcounter.read peer_misses;
    peer_failures = Shardcounter.read peer_failures;
  }

let diff (b : snapshot) (a : snapshot) =
  {
    parse_ns = b.parse_ns - a.parse_ns;
    check_ns = b.check_ns - a.check_ns;
    specialize_ns = b.specialize_ns - a.specialize_ns;
    verify_ns = b.verify_ns - a.verify_ns;
    eval_ns = b.eval_ns - a.eval_ns;
    cc_rebuilds = b.cc_rebuilds - a.cc_rebuilds;
    model_lookups = b.model_lookups - a.model_lookups;
    resolve_hits = b.resolve_hits - a.resolve_hits;
    resolve_misses = b.resolve_misses - a.resolve_misses;
    prelude_builds = b.prelude_builds - a.prelude_builds;
    prelude_reuses = b.prelude_reuses - a.prelude_reuses;
    programs = b.programs - a.programs;
    fuzz_generated = b.fuzz_generated - a.fuzz_generated;
    fuzz_discarded = b.fuzz_discarded - a.fuzz_discarded;
    fuzz_shrunk = b.fuzz_shrunk - a.fuzz_shrunk;
    unit_hits = b.unit_hits - a.unit_hits;
    unit_misses = b.unit_misses - a.unit_misses;
    unit_evictions = b.unit_evictions - a.unit_evictions;
    unit_invalidations = b.unit_invalidations - a.unit_invalidations;
    stencils_created = b.stencils_created - a.stencils_created;
    stencils_shared = b.stencils_shared - a.stencils_shared;
    stencil_fallbacks = b.stencil_fallbacks - a.stencil_fallbacks;
    dicts_hoisted = b.dicts_hoisted - a.dicts_hoisted;
    disk_hits = b.disk_hits - a.disk_hits;
    disk_misses = b.disk_misses - a.disk_misses;
    disk_evictions = b.disk_evictions - a.disk_evictions;
    corrupt_entries = b.corrupt_entries - a.corrupt_entries;
    peer_hits = b.peer_hits - a.peer_hits;
    peer_misses = b.peer_misses - a.peer_misses;
    peer_failures = b.peer_failures - a.peer_failures;
  }

let reset () = List.iter Shardcounter.reset all

let ms ns = float_of_int ns /. 1e6

let pp ppf (s : snapshot) =
  Fmt.pf ppf "@[<v>phase wall time:@,";
  Fmt.pf ppf "  parse          : %10.3f ms@," (ms s.parse_ns);
  Fmt.pf ppf "  check          : %10.3f ms@," (ms s.check_ns);
  if s.specialize_ns > 0 then
    Fmt.pf ppf "  specialize     : %10.3f ms@," (ms s.specialize_ns);
  Fmt.pf ppf "  verify         : %10.3f ms@," (ms s.verify_ns);
  Fmt.pf ppf "  eval           : %10.3f ms@," (ms s.eval_ns);
  Fmt.pf ppf "counters:@,";
  Fmt.pf ppf "  programs       : %10d@," s.programs;
  Fmt.pf ppf "  prelude builds : %10d@," s.prelude_builds;
  Fmt.pf ppf "  prelude reuses : %10d@," s.prelude_reuses;
  Fmt.pf ppf "  cc rebuilds    : %10d@," s.cc_rebuilds;
  Fmt.pf ppf "  model lookups  : %10d@," s.model_lookups;
  Fmt.pf ppf "  resolve hits   : %10d@," s.resolve_hits;
  Fmt.pf ppf "  resolve misses : %10d@," s.resolve_misses;
  Fmt.pf ppf "unit cache:@,";
  Fmt.pf ppf "  hits           : %10d@," s.unit_hits;
  Fmt.pf ppf "  misses         : %10d@," s.unit_misses;
  Fmt.pf ppf "  evictions      : %10d@," s.unit_evictions;
  Fmt.pf ppf "  invalidations  : %10d" s.unit_invalidations;
  if s.disk_hits + s.disk_misses + s.disk_evictions + s.corrupt_entries > 0
  then begin
    Fmt.pf ppf "@,disk cache:@,";
    Fmt.pf ppf "  hits           : %10d@," s.disk_hits;
    Fmt.pf ppf "  misses         : %10d@," s.disk_misses;
    Fmt.pf ppf "  evictions      : %10d@," s.disk_evictions;
    Fmt.pf ppf "  corrupt        : %10d" s.corrupt_entries
  end;
  if s.peer_hits + s.peer_misses + s.peer_failures > 0 then begin
    Fmt.pf ppf "@,peer cache:@,";
    Fmt.pf ppf "  hits           : %10d@," s.peer_hits;
    Fmt.pf ppf "  misses         : %10d@," s.peer_misses;
    Fmt.pf ppf "  failures       : %10d" s.peer_failures
  end;
  if s.fuzz_generated + s.fuzz_discarded + s.fuzz_shrunk > 0 then begin
    Fmt.pf ppf "@,fuzzing:@,";
    Fmt.pf ppf "  generated      : %10d@," s.fuzz_generated;
    Fmt.pf ppf "  discarded      : %10d@," s.fuzz_discarded;
    Fmt.pf ppf "  shrink steps   : %10d" s.fuzz_shrunk
  end;
  if
    s.stencils_created + s.stencils_shared + s.stencil_fallbacks
    + s.dicts_hoisted
    > 0
  then begin
    Fmt.pf ppf "@,specializer:@,";
    Fmt.pf ppf "  stencils       : %10d@," s.stencils_created;
    Fmt.pf ppf "  shape shared   : %10d@," s.stencils_shared;
    Fmt.pf ppf "  fallbacks      : %10d@," s.stencil_fallbacks;
    Fmt.pf ppf "  dicts hoisted  : %10d" s.dicts_hoisted
  end;
  Fmt.pf ppf "@]"

let to_json (s : snapshot) =
  (* sort_keys: stats payloads are byte-stable for CI diffing *)
  Json.sort_keys
  @@ Json.Obj
       [
      ("parse_ns", Json.Int s.parse_ns);
      ("check_ns", Json.Int s.check_ns);
      ("specialize_ns", Json.Int s.specialize_ns);
      ("verify_ns", Json.Int s.verify_ns);
      ("eval_ns", Json.Int s.eval_ns);
      ("cc_rebuilds", Json.Int s.cc_rebuilds);
      ("model_lookups", Json.Int s.model_lookups);
      ("resolve_hits", Json.Int s.resolve_hits);
      ("resolve_misses", Json.Int s.resolve_misses);
      ("prelude_builds", Json.Int s.prelude_builds);
      ("prelude_reuses", Json.Int s.prelude_reuses);
      ("programs", Json.Int s.programs);
      ("fuzz_generated", Json.Int s.fuzz_generated);
      ("fuzz_discarded", Json.Int s.fuzz_discarded);
      ("fuzz_shrunk", Json.Int s.fuzz_shrunk);
      ("unit_hits", Json.Int s.unit_hits);
      ("unit_misses", Json.Int s.unit_misses);
      ("unit_evictions", Json.Int s.unit_evictions);
      ("unit_invalidations", Json.Int s.unit_invalidations);
      ("stencils_created", Json.Int s.stencils_created);
      ("stencils_shared", Json.Int s.stencils_shared);
      ("stencil_fallbacks", Json.Int s.stencil_fallbacks);
      ("dicts_hoisted", Json.Int s.dicts_hoisted);
      ("disk_hits", Json.Int s.disk_hits);
      ("disk_misses", Json.Int s.disk_misses);
      ("disk_evictions", Json.Int s.disk_evictions);
      ("corrupt_entries", Json.Int s.corrupt_entries);
      ("peer_hits", Json.Int s.peer_hits);
      ("peer_misses", Json.Int s.peer_misses);
      ("peer_failures", Json.Int s.peer_failures);
    ]
