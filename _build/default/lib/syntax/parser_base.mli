(** Token-stream cursor shared by the two recursive-descent parsers:
    peeking, expectation and error-reporting helpers. *)

type t

val of_tokens : (Token.t * Fg_util.Loc.t) array -> t
val of_string : ?file:string -> string -> t

val peek : t -> Token.t
val peek2 : t -> Token.t

(** [peek_nth p 0 = peek p]. *)
val peek_nth : t -> int -> Token.t

(** Location of the current token. *)
val loc : t -> Fg_util.Loc.t

(** Span of the most recently consumed token. *)
val prev_loc : t -> Fg_util.Loc.t

val advance : t -> Token.t * Fg_util.Loc.t
val skip : t -> unit

(** Raise a parse error at the current token, reporting what was found. *)
val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val expect : t -> Token.t -> Fg_util.Loc.t

(** Consume [tok] if present; report whether it was. *)
val eat : t -> Token.t -> bool

val expect_kw : t -> string -> unit
val at_kw : t -> string -> bool
val expect_lident : t -> string
val expect_uident : t -> string
val expect_int : t -> int

(** [sep_list p ~sep ~elem] parses [elem (sep elem)*]. *)
val sep_list : t -> sep:Token.t -> elem:(t -> 'a) -> 'a list

(** Fail unless the whole input was consumed. *)
val expect_eof : t -> unit
