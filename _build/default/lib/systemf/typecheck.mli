(** Type checker for System F — the standard rules the paper omits,
    plus [let], tuples/[nth], [fix], [if], literals and primitives.
    Types compare up to alpha.  This checker is the verification half of
    the reproduction of Theorems 1 and 2: every translated term is
    re-checked here. *)

open Ast
module Smap := Fg_util.Names.Smap

type env = { vars : ty Smap.t; tyvars : Fg_util.Names.Sset.t }

val empty_env : env
val bind_var : env -> string -> ty -> env
val bind_tyvars : env -> string list -> env

(** Well-formedness: every free type variable must be in scope. *)
val check_ty : ?loc:Fg_util.Loc.t -> env -> ty -> unit

(** The typing judgment. *)
val typeof : env -> exp -> ty

(** Check a closed program. *)
val typecheck : exp -> ty

val typecheck_result : exp -> (ty, Fg_util.Diag.diagnostic) result
