(* Load generator for the fgc serve daemon.

   Starts a daemon in-process on a private unix socket, streams the
   whole programs/ corpus through ONE batch connection until the
   request target is reached, and checks every response byte-for-byte
   against the one-shot `fgc run --format=json` output for its file.
   Then it times the one-shot binary on a sample of the same corpus
   and reports the throughput ratio — the daemon must beat one-shot by
   at least 5x (it amortizes process startup and the prelude across
   requests; one-shot pays both per program).

   Run:  dune exec bench/loadgen.exe            (10,000 requests)
         LOADGEN_REQUESTS=300 dune exec bench/loadgen.exe   (CI smoke)

   Exits nonzero on any byte mismatch, failed request, or a speedup
   below the 5x bar. *)

open Fg_server

let requests_target =
  match Sys.getenv_opt "LOADGEN_REQUESTS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 10_000)
  | None -> 10_000

let one_shot_sample =
  match Sys.getenv_opt "LOADGEN_ONESHOT_SAMPLE" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 20)
  | None -> 20

let programs_dir =
  if Sys.file_exists "programs" then "programs"
  else if Sys.file_exists "../programs" then "../programs"
  else failwith "loadgen: cannot find the programs/ corpus from the cwd"

let fgc_exe =
  let candidates =
    [ "_build/default/bin/fgc.exe"; "../bin/fgc.exe"; "bin/fgc.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "loadgen: cannot find fgc.exe (build the project first)"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus =
  Sys.readdir programs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fg")
  |> List.sort String.compare
  |> List.map (fun f ->
         let path = Filename.concat programs_dir f in
         (path, read_file path))

let one_shot_json path =
  let out_file = Filename.temp_file "loadgen" ".json" in
  let cmd =
    Printf.sprintf "%s run -p --format=json %s > %s 2>/dev/null"
      (Filename.quote fgc_exe) (Filename.quote path)
      (Filename.quote out_file)
  in
  ignore (Sys.command cmd);
  let out = read_file out_file in
  Sys.remove out_file;
  out

let () =
  if corpus = [] then failwith "loadgen: empty corpus";
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fgc_loadgen_%d.sock" (Unix.getpid ()))
  in
  let cfg = Server.default_config (`Unix socket) in
  let srv = Server.create cfg in
  let th = Thread.create Server.run srv in
  let failures = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown srv;
      Thread.join th;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      (* Expected bytes per corpus file, captured once from one-shot. *)
      let expected =
        List.map (fun (path, _) -> (path, one_shot_json path)) corpus
      in
      let n_files = List.length corpus in
      let files = Array.of_list corpus in
      let reqs =
        List.init requests_target (fun i ->
            let path, source = files.(i mod n_files) in
            Protocol.request ~id:(i + 1) ~file:path ~source ~prelude:true
              Protocol.Run)
      in
      Printf.printf "loadgen: %d requests over %d corpus files, %d workers\n%!"
        requests_target n_files cfg.Server.workers;
      let c = Client.connect (`Unix socket) in
      let t0 = Unix.gettimeofday () in
      let resps = Client.batch c reqs in
      let daemon_s = Unix.gettimeofday () -. t0 in
      (* Every response byte-identical to its file's one-shot output
         (the served payload is the one-shot stdout minus the trailing
         newline print_endline adds). *)
      List.iteri
        (fun i (r : Protocol.response) ->
          let path, _ = files.(i mod n_files) in
          let want = List.assoc path expected in
          if r.Protocol.r_payload ^ "\n" <> want then begin
            incr failures;
            if !failures <= 3 then
              Printf.eprintf "loadgen: MISMATCH on request %d (%s)\n%!"
                r.Protocol.r_id path
          end)
        resps;
      if List.length resps <> requests_target then begin
        incr failures;
        Printf.eprintf "loadgen: %d responses for %d requests\n%!"
          (List.length resps) requests_target
      end;
      (* Server-side latency distribution. *)
      (match
         Fg_util.Json.of_string (Client.stats c).Protocol.r_payload
       with
      | Ok j -> (
          match Fg_util.Json.mem "latency" j with
          | Some lat ->
              let f k =
                match Fg_util.Json.mem k lat with
                | Some (Fg_util.Json.Float x) -> x
                | Some (Fg_util.Json.Int x) -> float_of_int x
                | _ -> nan
              in
              Printf.printf
                "daemon  : %.2fs total, %.0f req/s, latency p50=%.2fms \
                 p95=%.2fms p99=%.2fms\n%!"
                daemon_s
                (float_of_int requests_target /. daemon_s)
                (f "p50_ms") (f "p95_ms") (f "p99_ms")
          | None -> ())
      | Error e -> Printf.eprintf "loadgen: stats not JSON: %s\n%!" e);
      Client.close c;
      (* One-shot baseline: a fresh process (and a fresh prelude) per
         program, which is exactly what the daemon amortizes away. *)
      let sample = min one_shot_sample requests_target in
      let t0 = Unix.gettimeofday () in
      for i = 0 to sample - 1 do
        let path, _ = files.(i mod n_files) in
        ignore (one_shot_json path)
      done;
      let oneshot_s = Unix.gettimeofday () -. t0 in
      let oneshot_rate = float_of_int sample /. oneshot_s in
      let daemon_rate = float_of_int requests_target /. daemon_s in
      let speedup = daemon_rate /. oneshot_rate in
      Printf.printf
        "one-shot: %.2fs for %d runs, %.0f req/s\nspeedup : %.1fx\n%!"
        oneshot_s sample oneshot_rate speedup;
      if speedup < 5.0 then begin
        incr failures;
        Printf.eprintf "loadgen: speedup %.1fx is below the 5x bar\n%!"
          speedup
      end);
  if !failures > 0 then begin
    Printf.eprintf "loadgen: FAILED (%d problem(s))\n%!" !failures;
    exit 1
  end;
  print_endline "loadgen: all responses byte-identical, speedup bar met"
