(* A generic graph library in FG — the heritage example.

   Run with:  dune exec examples/graphs.exe

   The paper's authors arrived at concepts through generic graph
   libraries (their study [14] ports the Boost Graph Library to four
   languages).  This example closes the loop: a Graph concept with an
   associated vertex type, written in FG, with generic algorithms that
   run unchanged over two structurally different representations. *)

module C = Fg_core

let banner s = Fmt.pr "@.=== %s ===@." s

(* One session over the graph library: its concepts, models and
   algorithms are checked once and shared by every [show]. *)
let session = C.Session.create ~prelude:C.Graph_lib.full ()

let show body =
  let out = C.Session.run ~file:"graphs" session body in
  Fmt.pr "%-46s = %a@."
    (if String.length body > 46 then String.sub body 0 46 else body)
    C.Interp.pp_flat out.value

let adj_ty = "list (int * list int)"
let edge_ty = "list int * list (int * int)"

let () =
  Fmt.pr "The Graph concept (FG source):@.%s@." C.Graph_lib.concepts;

  banner "a diamond DAG: 1 -> {2,3} -> 4 (adjacency lists)";
  let g = C.Graph_lib.adj [ (1, [ 2; 3 ]); (2, [ 4 ]); (3, [ 4 ]); (4, []) ] in
  show (Printf.sprintf "num_vertices[%s](%s)" adj_ty g);
  show (Printf.sprintf "num_edges[%s](%s)" adj_ty g);
  show (Printf.sprintf "degree[%s](%s, 1)" adj_ty g);
  show (Printf.sprintf "has_edge[%s](%s, 1, 4)" adj_ty g);
  show (Printf.sprintf "reachable[%s](%s, 1, 4)" adj_ty g);
  show (Printf.sprintf "reachable[%s](%s, 4, 1)" adj_ty g);
  show (Printf.sprintf "reachable_set[%s](%s, 1)" adj_ty g);
  show (Printf.sprintf "is_dag[%s](%s)" adj_ty g);

  banner "a 3-cycle: 1 -> 2 -> 3 -> 1";
  let c = C.Graph_lib.adj [ (1, [ 2 ]); (2, [ 3 ]); (3, [ 1 ]) ] in
  show (Printf.sprintf "reachable[%s](%s, 3, 2)" adj_ty c);
  show (Printf.sprintf "is_dag[%s](%s)" adj_ty c);

  banner "the SAME algorithms over an edge-list representation";
  let e = C.Graph_lib.edges [ 1; 2; 3; 4 ] [ (1, 2); (2, 3); (1, 4) ] in
  show (Printf.sprintf "num_edges[%s](%s)" edge_ty e);
  show (Printf.sprintf "reachable[%s](%s, 1, 3)" edge_ty e);
  show (Printf.sprintf "is_dag[%s](%s)" edge_ty e);

  banner "implicit instantiation works here too";
  show (Printf.sprintf "degree(%s, 1)" g);
  show (Printf.sprintf "num_edges(%s)" e);

  Fmt.pr
    "@.Every call above is a generic algorithm constrained only by@.\
     Graph<g> (and Eq on the associated vertex type), instantiated at@.\
     two unrelated representations — the genericity story the paper's@.\
     introduction tells, running end to end.@."
