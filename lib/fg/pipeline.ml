(** One-shot driving, kept as a thin compatibility layer over
    {!Session}: each call builds a fresh session with no prelude, so
    nothing is amortized.  New code should create a {!Session.t} and
    reuse it. *)

type outcome = Session.outcome = {
  source : string;
  ast : Ast.exp;
  fg_ty : Ast.ty;
  f_exp : Fg_systemf.Ast.exp;
  f_ty : Fg_systemf.Ast.ty;
  theorem_holds : bool;
  value : Interp.flat;
  direct_steps : int;
  translated_steps : int;
  backend : Backend.t;
  spec : Session.spec option;
}

let run ?file ?resolution ?fuel (source : string) : outcome =
  Session.run ?file ?fuel (Session.create ?resolution ()) source

let run_result ?file ?resolution ?fuel source =
  Fg_util.Diag.protect (fun () -> run ?file ?resolution ?fuel source)

let run_full ?file ?resolution ?fuel source : Session.run_report =
  Session.run_full ?file ?fuel (Session.create ?resolution ()) source

let typecheck ?file ?resolution source : Ast.ty =
  Session.typecheck ?file (Session.create ?resolution ()) source

let translate ?file ?resolution source : Fg_systemf.Ast.exp =
  Session.translate ?file (Session.create ?resolution ()) source

let interpret ?file ?fuel source : Interp.value =
  Session.interpret ?file ?fuel (Session.create ()) source
