lib/syntax/token.ml: Fmt List
