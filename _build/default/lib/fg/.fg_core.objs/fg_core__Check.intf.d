lib/fg/check.mli: Ast Env Fg_systemf Fg_util Resolution
