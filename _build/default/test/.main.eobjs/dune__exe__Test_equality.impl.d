test/test_equality.ml: Alcotest Ast Equality Fg_core Fg_util List Parser Pretty Printf QCheck QCheck_alcotest
