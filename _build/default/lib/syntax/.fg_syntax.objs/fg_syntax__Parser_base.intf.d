lib/syntax/parser_base.mli: Fg_util Format Token
