examples/square_four_ways.mli:
