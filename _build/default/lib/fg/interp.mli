(** Direct big-step interpreter for System FG — the second semantics,
    used differentially against the dictionary-passing translation.

    Model declarations build runtime dictionaries; type application
    substitutes the (closed) actual types and resolves the instantiated
    requirements against the application site's model environment, the
    runtime mirror of FG's lexically scoped model lookup.  Parameterized
    models are matched structurally and instantiated lazily (knot-tied,
    so instances may recurse). *)

open Ast
module Smap := Fg_util.Names.Smap

type value =
  | VInt of int
  | VBool of bool
  | VUnit
  | VTuple of value list
  | VList of value list
  | VClos of renv * (string * ty) list * exp
  | VTyClos of renv * string list * constr list * exp
  | VPrim of string * int * value list

and renv = {
  venv : value option ref Smap.t;
  models : rmodel list;
  named : rmodel Smap.t;  (** named models, activated by [using] *)
  concepts : concept_decl Smap.t;
}

and rmodel = {
  r_concept : string;
  r_params : string list;
  r_constrs : constr list;
  r_args : ty list;
  r_assoc : (string * ty) list;
  r_impl : rimpl;
}

and rimpl =
  | RReady of (string * value) list
  | RDeferred of renv * (string * exp) list

val value_kind : value -> string
val pp_value : value Fmt.t
val value_to_string : value -> string

(** {1 Flat first-order values}

    The common ground for differential tests between this interpreter
    and System F evaluation of the translation. *)

type flat =
  | FlInt of int
  | FlBool of bool
  | FlUnit
  | FlTuple of flat list
  | FlList of flat list
  | FlFun  (** any function-like value; compares equal to itself *)

val flatten : value -> flat
val flatten_f : Fg_systemf.Eval.value -> flat
val pp_flat : flat Fmt.t
val flat_to_string : flat -> string
val flat_equal : flat -> flat -> bool

(** {1 Evaluation} *)

val default_fuel : int

(** Evaluate a closed, well-typed (elaborated) program; returns the
    value and the number of beta steps spent. *)
val run_program : ?fuel:int -> exp -> value * int

val run_value : ?fuel:int -> exp -> value

val run_result :
  ?fuel:int -> exp -> (value * int, Fg_util.Diag.diagnostic) result
