(** A small generic graph library written in FG — the paper's own
    heritage (the authors' generic-programming work began with graph
    libraries; see their comparative study [14] and the Boost Graph
    Library).  Everything here is FG source: a [Graph] concept with an
    associated [vertex] type, a model for adjacency lists, and generic
    algorithms (degree, edge counting, membership, reachability,
    topological properties) that work for {e any} model of [Graph]
    whose vertices are comparable.

    The algorithms only use the concept's interface, so the test suite
    also instantiates them at a second, structurally different graph
    representation (an edge list) to demonstrate genericity. *)

(* ------------------------------------------------------------------ *)
(* Concepts                                                            *)

let concepts =
  {|// A directed graph: an associated vertex type, a way to enumerate
// vertices, and the out-neighbourhood of a vertex.
concept Graph<g> {
  types vertex;
  vertices  : fn(g) -> list vertex;
  out_edges : fn(g, vertex) -> list vertex;
} in
|}

(* ------------------------------------------------------------------ *)
(* Models                                                              *)

(** Adjacency-list representation: a list of (vertex, successors). *)
let adjacency_model =
  {|model Graph<list (int * list int)> {
  types vertex = int;
  vertices = fix (go : fn(list (int * list int)) -> list int) =>
    fun (g : list (int * list int)) =>
      if null[int * list int](g) then nil[int]
      else cons[int](nth (car[int * list int](g)) 0, go(cdr[int * list int](g)));
  out_edges = fix (go : fn(list (int * list int), int) -> list int) =>
    fun (g : list (int * list int), v : int) =>
      if null[int * list int](g) then nil[int]
      else if nth (car[int * list int](g)) 0 == v
      then nth (car[int * list int](g)) 1
      else go(cdr[int * list int](g), v);
} in
|}

(** Edge-list representation: a list of (source, target) pairs plus an
    explicit vertex list, i.e. [list int * list (int * int)]. *)
let edge_list_model =
  {|model Graph<list int * list (int * int)> {
  types vertex = int;
  vertices = fun (g : list int * list (int * int)) => nth g 0;
  out_edges = fun (g : list int * list (int * int), v : int) =>
    (fix (go : fn(list (int * int)) -> list int) =>
      fun (es : list (int * int)) =>
        if null[int * int](es) then nil[int]
        else if nth (car[int * int](es)) 0 == v
        then cons[int](nth (car[int * int](es)) 1, go(cdr[int * int](es)))
        else go(cdr[int * int](es)))(nth g 1);
} in
|}

(* ------------------------------------------------------------------ *)
(* Generic algorithms                                                  *)

let algorithms =
  {|// membership in a vertex list (local helper over Eq)
let g_mem =
  tfun v where Eq<v> =>
    fix (go : fn(list v, v) -> bool) =>
      fun (xs : list v, x : v) =>
        if null[v](xs) then false
        else Eq<v>.eq(car[v](xs), x) || go(cdr[v](xs), x)
in
// out-degree of a vertex
let degree =
  tfun g where Graph<g> =>
    fun (gr : g, v : Graph<g>.vertex) =>
      length[Graph<g>.vertex](Graph<g>.out_edges(gr, v))
in
// number of vertices / edges
let num_vertices =
  tfun g where Graph<g> =>
    fun (gr : g) => length[Graph<g>.vertex](Graph<g>.vertices(gr))
in
let num_edges =
  tfun g where Graph<g> =>
    fun (gr : g) =>
      (fix (go : fn(list Graph<g>.vertex) -> int) =>
        fun (vs : list Graph<g>.vertex) =>
          if null[Graph<g>.vertex](vs) then 0
          else degree[g](gr, car[Graph<g>.vertex](vs))
               + go(cdr[Graph<g>.vertex](vs)))(Graph<g>.vertices(gr))
in
// is there an edge u -> v?
let has_edge =
  tfun g where Graph<g>, Eq<Graph<g>.vertex> =>
    fun (gr : g, u : Graph<g>.vertex, v : Graph<g>.vertex) =>
      g_mem[Graph<g>.vertex](Graph<g>.out_edges(gr, u), v)
in
// reachability: can we walk from source to target?  Worklist search
// with an explicit visited list; terminates because visited grows.
let reachable =
  tfun g where Graph<g>, Eq<Graph<g>.vertex> =>
    fun (gr : g, source : Graph<g>.vertex, target : Graph<g>.vertex) =>
      (fix (search : fn(list Graph<g>.vertex, list Graph<g>.vertex) -> bool) =>
        fun (work : list Graph<g>.vertex, visited : list Graph<g>.vertex) =>
          if null[Graph<g>.vertex](work) then false
          else
            let v = car[Graph<g>.vertex](work) in
            let rest = cdr[Graph<g>.vertex](work) in
            if Eq<Graph<g>.vertex>.eq(v, target) then true
            else if g_mem[Graph<g>.vertex](visited, v) then search(rest, visited)
            else search(append[Graph<g>.vertex](rest, Graph<g>.out_edges(gr, v)),
                        cons[Graph<g>.vertex](v, visited)))
      (cons[Graph<g>.vertex](source, nil[Graph<g>.vertex]), nil[Graph<g>.vertex])
in
// all vertices reachable from a source (in discovery order)
let reachable_set =
  tfun g where Graph<g>, Eq<Graph<g>.vertex> =>
    fun (gr : g, source : Graph<g>.vertex) =>
      (fix (search : fn(list Graph<g>.vertex, list Graph<g>.vertex) -> list Graph<g>.vertex) =>
        fun (work : list Graph<g>.vertex, visited : list Graph<g>.vertex) =>
          if null[Graph<g>.vertex](work) then visited
          else
            let v = car[Graph<g>.vertex](work) in
            let rest = cdr[Graph<g>.vertex](work) in
            if g_mem[Graph<g>.vertex](visited, v) then search(rest, visited)
            else search(append[Graph<g>.vertex](rest, Graph<g>.out_edges(gr, v)),
                        append[Graph<g>.vertex](visited, cons[Graph<g>.vertex](v, nil[Graph<g>.vertex]))))
      (cons[Graph<g>.vertex](source, nil[Graph<g>.vertex]), nil[Graph<g>.vertex])
in
// a vertex lies on a cycle iff it can reach itself through an edge
let on_cycle =
  tfun g where Graph<g>, Eq<Graph<g>.vertex> =>
    fun (gr : g, v : Graph<g>.vertex) =>
      (fix (any_reach : fn(list Graph<g>.vertex) -> bool) =>
        fun (succs : list Graph<g>.vertex) =>
          if null[Graph<g>.vertex](succs) then false
          else reachable[g](gr, car[Graph<g>.vertex](succs), v)
               || any_reach(cdr[Graph<g>.vertex](succs)))
      (Graph<g>.out_edges(gr, v))
in
// acyclic iff no vertex lies on a cycle
let is_dag =
  tfun g where Graph<g>, Eq<Graph<g>.vertex> =>
    fun (gr : g) =>
      (fix (go : fn(list Graph<g>.vertex) -> bool) =>
        fun (vs : list Graph<g>.vertex) =>
          if null[Graph<g>.vertex](vs) then true
          else !on_cycle[g](gr, car[Graph<g>.vertex](vs))
               && go(cdr[Graph<g>.vertex](vs)))
      (Graph<g>.vertices(gr))
in
|}

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

(** Concepts + both models + algorithms, on top of the standard prelude
    (for [Eq]). *)
let full =
  Prelude.concepts ^ Prelude.int_models ^ Prelude.bool_models
  ^ Prelude.list_int_models ^ Prelude.list_parameterized_models ^ concepts
  ^ adjacency_model ^ edge_list_model ^ algorithms

(** [wrap body] — a complete program over the graph library. *)
let wrap body = full ^ body

(** Adjacency-list literal: [adj [(1, [2; 3]); ...]] in concrete
    syntax, typed [list (int * list int)]. *)
let adj (g : (int * int list) list) : string =
  let vertex (v, succs) =
    Printf.sprintf "(%d, %s)" v (Prelude.int_list succs)
  in
  List.fold_right
    (fun entry acc ->
      Printf.sprintf "cons[int * list int](%s, %s)" (vertex entry) acc)
    g "nil[int * list int]"

(** Edge-list literal: vertex list + (source, target) pairs, typed
    [list int * list (int * int)]. *)
let edges (vs : int list) (es : (int * int) list) : string =
  let pair (a, b) = Printf.sprintf "(%d, %d)" a b in
  let elist =
    List.fold_right
      (fun e acc -> Printf.sprintf "cons[int * int](%s, %s)" (pair e) acc)
      es "nil[int * int]"
  in
  Printf.sprintf "(%s, %s)" (Prelude.int_list vs) elist
