(* The fuzzing subsystem: generator determinism, a live oracle pass, the
   shrinker, the report shape, and replay of the committed minimized
   counterexamples under programs/fuzz_regressions/. *)

open Fg_core
module Json = Fg_util.Json

let regressions_dir = "../programs/fuzz_regressions"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every committed counterexample must (now) pass the full pipeline,
   produce the value stated in its header, and round-trip through the
   printer — replaying the shrunk artifact of each fixed bug. *)
let test_regressions () =
  let files =
    Sys.readdir regressions_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fg")
    |> List.sort compare
  in
  Alcotest.(check bool) "regression corpus is non-empty" true (files <> []);
  let sess = Session.of_config Session.Config.default in
  List.iter
    (fun f ->
      let src = read_file (Filename.concat regressions_dir f) in
      let expected =
        String.split_on_char '\n' src
        |> List.find_map (fun l ->
               let prefix = "// expected value: " in
               if String.length l > String.length prefix
                  && String.sub l 0 (String.length prefix) = prefix
               then
                 Some
                   (String.sub l (String.length prefix)
                      (String.length l - String.length prefix))
               else None)
      in
      let expected =
        match expected with
        | Some v -> v
        | None -> Alcotest.failf "%s: missing '// expected value:' header" f
      in
      let out = Session.run ~file:f sess src in
      Alcotest.(check string) (f ^ " value") expected
        (Interp.flat_to_string out.Session.value);
      let ast = Parser.exp_of_string ~file:f src in
      let reparsed = Parser.exp_of_string (Pretty.exp_to_string ast) in
      Alcotest.(check bool) (f ^ " round-trips") true
        (Ast.exp_equal ast reparsed))
    files

(* Generation is a pure function of (seed, index): same inputs, same
   program; different seeds, different programs. *)
let test_generate_deterministic () =
  let cfg = { Fuzz.default_config with seed = 11; size = 40 } in
  for i = 0 to 9 do
    let a = Fuzz.generate cfg ~index:i in
    let b = Fuzz.generate cfg ~index:i in
    Alcotest.(check string)
      (Printf.sprintf "program %d reproducible" i)
      a.Fuzz.p_source b.Fuzz.p_source
  done;
  let a = Fuzz.generate cfg ~index:0 in
  let b = Fuzz.generate { cfg with seed = 12 } ~index:0 in
  Alcotest.(check bool) "different seeds differ" true
    (a.Fuzz.p_source <> b.Fuzz.p_source)

(* A small live pass: every generated program satisfies all three
   oracles, and the run is reproducible end to end. *)
let test_run_clean () =
  let cfg = { Fuzz.default_config with Fuzz.seed = 5; count = 15; size = 25; mutants = 2 } in
  let r = Fuzz.run ~domains:2 cfg in
  Alcotest.(check int) "generated" 15 r.Fuzz.r_generated;
  Alcotest.(check int) "mutants run" 30 r.Fuzz.r_mutants_run;
  (match r.Fuzz.r_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "oracle %s failed on #%d: %s\n%s"
        (Fuzz.oracle_name f.Fuzz.f_oracle)
        f.Fuzz.f_index f.Fuzz.f_message f.Fuzz.f_source);
  let r' = Fuzz.run ~domains:1 cfg in
  Alcotest.(check string) "report independent of domain count"
    (Json.to_string (Fuzz.report_to_json r))
    (Json.to_string (Fuzz.report_to_json r'))

(* The greedy shrinker reaches the smallest subterm that still
   satisfies the failure predicate. *)
let test_shrink () =
  let ast = Parser.exp_of_string "iadd(imult(2, 3), iadd(10, 20))" in
  let mentions_imult e =
    Fg_util.Strutil.contains ~needle:"imult(" (Pretty.exp_to_string e)
  in
  let shrunk = Fuzz.shrink ~still_fails:mentions_imult ast in
  Alcotest.(check string) "shrinks to the imult call" "imult(2, 3)"
    (Pretty.exp_to_flat_string shrunk);
  (* A predicate nothing smaller satisfies leaves the program alone. *)
  let whole e = Ast.exp_equal e ast in
  let same = Fuzz.shrink ~still_fails:whole ast in
  Alcotest.(check bool) "fixpoint when nothing smaller fails" true
    (Ast.exp_equal same ast)

(* Shrinking a mutant with a declaration stack deletes the unrelated
   declarations. *)
let test_shrink_deletes_decls () =
  let src =
    "concept FzA<t> { m : fn(t) -> t; } in\n\
     model FzA<int> { m = fun (x : int) => x; } in\n\
     let h = 5 in\n\
     iadd(h, imult(2, 3))"
  in
  let ast = Parser.exp_of_string src in
  let mentions_imult e =
    Fg_util.Strutil.contains ~needle:"imult(" (Pretty.exp_to_string e)
  in
  let shrunk = Fuzz.shrink ~still_fails:mentions_imult ast in
  Alcotest.(check string) "declarations deleted" "imult(2, 3)"
    (Pretty.exp_to_flat_string shrunk)

(* The stable report shape documented in docs/LANGUAGE.md. *)
let test_report_json_shape () =
  let cfg = { Fuzz.default_config with Fuzz.seed = 3; count = 2; size = 15; mutants = 1 } in
  let r = Fuzz.run ~domains:1 cfg in
  match Fuzz.report_to_json r with
  | Json.Obj fields ->
      Alcotest.(check (list string))
        "top-level keys"
        [ "fuzz"; "generated"; "mutants_run"; "ok"; "failures" ]
        (List.map fst fields);
      (match List.assoc "fuzz" fields with
      | Json.Obj cfg_fields ->
          Alcotest.(check (list string))
            "config keys"
            [ "seed"; "count"; "size"; "mutants" ]
            (List.map fst cfg_fields)
      | _ -> Alcotest.fail "fuzz field is not an object");
      (match List.assoc "ok" fields with
      | Json.Bool b ->
          Alcotest.(check bool) "ok mirrors failures" b
            (r.Fuzz.r_failures = [])
      | _ -> Alcotest.fail "ok field is not a bool")
  | _ -> Alcotest.fail "report is not an object"

(* Corrupted programs must be rejected through the recovering pipeline:
   exercised via a run with mutants enabled above, plus the direct
   guarantee that save_failures writes replayable artifacts. *)
let test_save_failures_layout () =
  let r =
    {
      Fuzz.r_config = { Fuzz.default_config with Fuzz.seed = 9; count = 1; size = 10; mutants = 0 };
      r_generated = 1;
      r_mutants_run = 0;
      r_failures =
        [
          {
            Fuzz.f_index = 0;
            f_origin = Fuzz.Gen;
            f_oracle = Fuzz.Agreement;
            f_message = "synthetic";
            f_source = "iadd(1, 2)";
            f_shrunk = "1";
            f_shrunk_nodes = 1;
          };
        ];
      r_coverage = [];
      r_corpus_size = 0;
      r_corpus_added = 0;
      r_from_corpus = 0;
      r_corpus_entries = [];
    }
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fg-fuzz-test" in
  let paths = Fuzz.save_failures ~dir r in
  Alcotest.(check int) "one artifact" 1 (List.length paths);
  let path = List.hd paths in
  Alcotest.(check string) "artifact name" "fuzz-9-0-agreement.fg"
    (Filename.basename path);
  let contents = read_file path in
  Alcotest.(check bool) "artifact embeds the original" true
    (Fg_util.Strutil.contains ~needle:"// iadd(1, 2)" contents);
  Sys.remove path

(* Shrinking a corpus-mutated input must not lose the artifact layout:
   same naming scheme, original still embedded, and the origin recorded
   in the header so a replayed failure says where the input came from. *)
let test_save_failures_corpus_origin () =
  let r =
    {
      Fuzz.r_config =
        { Fuzz.default_config with Fuzz.seed = 4; count = 1; guided = true };
      r_generated = 1;
      r_mutants_run = 0;
      r_failures =
        [
          {
            Fuzz.f_index = 3;
            f_origin = Fuzz.Corpus;
            f_oracle = Fuzz.Recovery;
            f_message = "synthetic corpus-mutant failure";
            f_source = "iadd(1, 2)";
            f_shrunk = "1";
            f_shrunk_nodes = 1;
          };
        ];
      r_coverage = [];
      r_corpus_size = 1;
      r_corpus_added = 0;
      r_from_corpus = 1;
      r_corpus_entries = [];
    }
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fg-fuzz-test" in
  let paths = Fuzz.save_failures ~dir r in
  Alcotest.(check int) "one artifact" 1 (List.length paths);
  let path = List.hd paths in
  Alcotest.(check string) "artifact name keeps the scheme"
    "fuzz-4-3-recovery.fg" (Filename.basename path);
  let contents = read_file path in
  Alcotest.(check bool) "header records the corpus origin" true
    (Fg_util.Strutil.contains ~needle:"origin: corpus" contents);
  Alcotest.(check bool) "artifact embeds the original" true
    (Fg_util.Strutil.contains ~needle:"// iadd(1, 2)" contents);
  (* ... and the JSON report carries the origin field for the same
     failure (generated-origin failures stay field-free, pinned by
     test_report_json_shape's golden). *)
  Alcotest.(check bool) "report JSON carries the origin" true
    (Fg_util.Strutil.contains ~needle:{|"origin": "corpus"|}
       (Json.to_string (Fuzz.report_to_json r)));
  Sys.remove path

(* ---------------------------------------------------------------- *)
(* Guided mode                                                       *)

module Coverage = Fg_util.Coverage

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let fresh_dir tag =
  let d = Filename.concat (Filename.get_temp_dir_name ()) tag in
  rm_rf d;
  d

(* Guided runs are byte-deterministic: same seed into fresh corpus
   dirs under different domain counts must produce an identical
   coverage map (to_text), an identical report JSON, and on-disk
   corpora that agree entry for entry — Phase A measurement is
   sequential, and the parallel oracle phase never feeds the map. *)
let test_guided_deterministic () =
  let d1 = fresh_dir "fg-guided-det-1" and d2 = fresh_dir "fg-guided-det-2" in
  let cfg dir =
    { Fuzz.default_config with Fuzz.seed = 21; count = 40; size = 25;
      mutants = 1; guided = true; corpus_dir = Some dir }
  in
  let r1 = Fuzz.run ~domains:1 (cfg d1) in
  let r2 = Fuzz.run ~domains:4 (cfg d2) in
  Alcotest.(check string) "coverage map byte-identical across -j"
    (Coverage.to_text r1.Fuzz.r_coverage)
    (Coverage.to_text r2.Fuzz.r_coverage);
  Alcotest.(check string) "report JSON byte-identical across -j"
    (Json.to_string (Fuzz.report_to_json r1))
    (Json.to_string (Fuzz.report_to_json r2));
  Alcotest.(check bool) "the run guided at all" true
    (r1.Fuzz.r_from_corpus > 0 && r1.Fuzz.r_corpus_added > 0);
  let e1 = Fuzz.corpus_load ~dir:d1 and e2 = Fuzz.corpus_load ~dir:d2 in
  Alcotest.(check bool) "corpus is non-empty" true (e1 <> []);
  Alcotest.(check bool) "corpora byte-identical across -j" true (e1 = e2);
  Alcotest.(check int) "corpus size reported" (List.length e1)
    r1.Fuzz.r_corpus_size;
  rm_rf d1;
  rm_rf d2

(* Cold reproduction: starting from an {e empty} corpus, a bounded
   guided run re-reaches every checker/resolution decision point that
   the pinned regression corpus exercises — the guided search doesn't
   depend on a warm corpus to find the interesting parts of the
   checker. *)
let test_guided_cold_repro () =
  let scfg = Session.Config.default in
  let target =
    Sys.readdir regressions_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fg")
    |> List.concat_map (fun f ->
           let src = read_file (Filename.concat regressions_dir f) in
           let before = Coverage.snapshot () in
           let sess = Session.of_config scfg in
           ignore (Session.run ~file:f sess src);
           Coverage.keys (Coverage.diff (Coverage.snapshot ()) before))
    |> List.filter (fun k ->
           String.starts_with ~prefix:"check." k
           || String.starts_with ~prefix:"resolve." k)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "regressions exercise decision points" true
    (target <> []);
  let dir = fresh_dir "fg-guided-cold" in
  let cfg =
    { Fuzz.default_config with Fuzz.seed = 2; count = 150; size = 30;
      mutants = 0; guided = true; corpus_dir = Some dir }
  in
  let r = Fuzz.run ~domains:2 cfg in
  let covered = Coverage.keys r.Fuzz.r_coverage in
  let missing = List.filter (fun k -> not (List.mem k covered)) target in
  Alcotest.(check (list string))
    "every regression decision point re-found from cold" [] missing;
  rm_rf dir

let suite =
  [
    Alcotest.test_case "regression corpus replays" `Quick test_regressions;
    Alcotest.test_case "generation is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "small run passes all oracles" `Quick test_run_clean;
    Alcotest.test_case "shrinker finds minimal subterm" `Quick test_shrink;
    Alcotest.test_case "shrinker deletes declarations" `Quick
      test_shrink_deletes_decls;
    Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
    Alcotest.test_case "failure artifact layout" `Quick
      test_save_failures_layout;
    Alcotest.test_case "corpus-origin artifact layout" `Quick
      test_save_failures_corpus_origin;
    Alcotest.test_case "guided run is deterministic" `Quick
      test_guided_deterministic;
    Alcotest.test_case "guided cold reproduction" `Quick
      test_guided_cold_repro;
  ]
