lib/fg/types.ml: Ast Diag Env Fg_systemf Fg_util List Names Pretty String
