(** The paper's example programs as a named corpus, shared by the test
    suite, the examples, EXPERIMENTS.md and the benchmark harness.
    Positive entries carry their expected value; negative entries the
    phase in which checking must fail. *)

type expectation =
  | Value of Interp.flat  (** pipeline succeeds with this value *)
  | Fails of Fg_util.Diag.phase  (** checking fails in this phase *)

type entry = {
  name : string;
  paper : string;  (** which figure/section this comes from *)
  description : string;
  source : string;
  expected : expectation;
}

(** {1 Reusable source fragments} *)

val monoid_prelude : string
val monoid_int_add : string
val accumulate_def : string
val iterator_concept : string
val iterator_list_int_model : string
val output_iterator_concept : string
val output_iterator_list_int_model : string
val less_than_comparable : string

(** {1 Individual entries} *)

val fig1_square : entry
val fig1_square_higher_order : entry
val fig3_sum : entry
val fig5_accumulate : entry
val fig6_overlap : entry
val model_shadowing : entry
val iterator_accumulate : entry
val copy_example : entry
val merge_example : entry
val refine_at_assoc : entry
val type_alias : entry
val type_alias_list : entry
val diamond_refinement : entry
val generic_calls_generic : entry
val same_type_vars : entry
val multi_param_concept : entry
val concept_same_requirement : entry
val param_eq_list : entry
val param_model_in_generic : entry
val param_monoid_list : entry
val named_models : entry
val nested_requirement : entry

(** {1 The corpus} *)

val positive : entry list
val negative : entry list
val all : entry list
val find : string -> entry
