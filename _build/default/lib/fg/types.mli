(** Type-level machinery of System FG: well-formedness, where-clause
    processing, member/dictionary layout, and translation of FG types
    to System F types (the paper's [ba]/[b]/[bw]/[bm] functions and the
    [Γ ⊢ τ ⇒ τ'] judgment of Figures 8 and 12). *)

open Ast
module F := Fg_systemf.Ast

(** The (purely syntactic) plan of a where clause: type abstraction and
    type application must agree on the number and order of the extra
    type parameters (one per associated type, with diamond dedup) and
    dictionary parameters (one per top-level requirement). *)
type plan = {
  p_slots : (string * (string * ty list * string)) list;
      (** fresh type-parameter name -> the projection [C<τ̄>.s] it
          stands for, in binder order *)
  p_dicts : (string * (string * ty list) * F.ty) list;
      (** dictionary variable -> requirement and its dictionary type *)
}

val no_requirements : plan -> bool

val arity_check :
  ?loc:Fg_util.Loc.t -> string -> string -> expected:int -> got:int -> unit

(** [ba(c, τ̄)]: every associated-type name visible in the concept (own
    and transitively refined), mapped to its qualified projection. *)
val assoc_scope :
  ?loc:Fg_util.Loc.t -> Env.t -> string * ty list -> (string * ty) list

(** The substitution applied to a concept's member types on
    instantiation: parameters to arguments, associated names to
    qualified projections. *)
val instantiation_subst :
  ?loc:Fg_util.Loc.t -> Env.t -> string * ty list -> (string * ty) list

(** Direct refinements of [c<args>], instantiated. *)
val refinements :
  ?loc:Fg_util.Loc.t -> Env.t -> string * ty list -> (string * ty list) list

(** Nested requirements [require C'<σ̄>;], instantiated (Section 6). *)
val requires :
  ?loc:Fg_util.Loc.t -> Env.t -> string * ty list -> (string * ty list) list

(** The concept's same-type requirements, instantiated. *)
val same_requirements :
  ?loc:Fg_util.Loc.t -> Env.t -> string * ty list -> (ty * ty) list

(** [b(c, τ̄, n̄, Γ)]: find a member in the concept or (depth-first) in
    what it refines; returns its instantiated type and the projection
    path into the dictionary (Figure 7 layout: refined dictionaries
    first, then own members in declaration order). *)
val member_lookup :
  ?loc:Fg_util.Loc.t -> Env.t -> string * ty list -> string ->
  (ty * int list) option

(** All reachable members with types and paths; own members shadow. *)
val all_members :
  ?loc:Fg_util.Loc.t -> Env.t -> string * ty list ->
  (string * ty * int list) list

(** Well-formedness of types (Figures 8/12), including the TYASC rule:
    an associated-type projection needs a model in scope. *)
val wf_ty : ?loc:Fg_util.Loc.t -> Env.t -> ty -> unit

(** [bw]/[bm]: process a where clause in order — well-formedness,
    proxy models (with refinement closure and diamond dedup), fresh
    associated-type parameters with their equations, the concepts' own
    same-type requirements, and each requirement's dictionary type. *)
val process_where :
  ?loc:Fg_util.Loc.t -> Env.t -> string list -> constr list -> Env.t * plan

(** The dictionary type δ for a model of [c<args>] (Figure 7 layout). *)
val dict_type : ?loc:Fg_util.Loc.t -> Env.t -> string * ty list -> F.ty

(** [Γ ⊢ τ ⇒ τ']: representative first, then structural; [forall]s gain
    associated-type and dictionary parameters per their where clause. *)
val translate_ty : ?loc:Fg_util.Loc.t -> Env.t -> ty -> F.ty

(** The extra System F type arguments for an instantiation: the
    representative of each slot's projection under the substitution. *)
val plan_slot_actuals :
  ?loc:Fg_util.Loc.t -> Env.t -> subst:(string * ty) list -> plan ->
  F.ty list

(** The System F dictionary expression for a resolved model: the
    dictionary variable (projected by its path) for ground models; for
    parameterized models, the polymorphic dictionary function applied at
    the matched types and to the recursively-built context
    dictionaries. *)
val model_dict_exp : ?loc:Fg_util.Loc.t -> Env.t -> Env.found_model -> F.exp

(** Dictionary arguments for an instantiation: one resolved-model
    dictionary expression per top-level requirement. *)
val plan_dict_actuals :
  ?loc:Fg_util.Loc.t -> Env.t -> subst:(string * ty) list -> plan ->
  F.exp list
