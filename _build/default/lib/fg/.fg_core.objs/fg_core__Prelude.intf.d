lib/fg/prelude.mli:
