lib/fg/env.mli: Ast Equality Fg_util Resolution
