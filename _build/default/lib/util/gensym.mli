(** Fresh-name generation: an explicit, deterministic supply.

    The translation introduces dictionary variables ([Monoid_18]) and
    associated-type parameters ([elt_4]); an explicit supply keeps
    independent pipeline runs reproducible. *)

type t

val create : unit -> t
val reset : t -> unit

(** [fresh g base] returns ["base_N"] for the next counter value. *)
val fresh : t -> string -> string

(** [fresh_many g base k] returns [k] distinct names sharing [base]. *)
val fresh_many : t -> string -> int -> string list
