(** Diagnostics: located errors and warnings for every pipeline phase.
    All user-facing failures are a {!diagnostic} carrying a stable
    [FG0xxx] code, a severity, a span, a phase tag, a message and
    attached notes.  Abort paths raise {!Error}; recovering drivers
    accumulate diagnostics into an {!engine}.  Internal invariant
    violations use {!ice}. *)

type phase =
  | Lexer
  | Parser
  | Wf  (** well-formedness of types, concepts and models *)
  | Typecheck
  | Resolve  (** model lookup / where-clause satisfaction *)
  | Translate
  | Eval
  | Server  (** the [fgc serve] daemon: timeouts, overload, protocol *)
  | Config  (** driver configuration: flags, backend names, capacities *)
  | Internal

val phase_name : phase -> string

(** The generic fallback code of a phase (specific failure shapes carry
    their own code; see docs/LANGUAGE.md for the registry). *)
val default_code : phase -> string

type severity = Err | Warn

val severity_name : severity -> string

(** A note attached to a diagnostic: a hint, a candidate list, a
    nearest-name suggestion.  [n_loc] is {!Loc.dummy} when the note has
    no useful span of its own. *)
type note = { n_loc : Loc.t; n_msg : string }

type diagnostic = {
  code : string;  (** stable [FG0xxx] code *)
  severity : severity;
  phase : phase;
  loc : Loc.t;
  message : string;
  notes : note list;
}

exception Error of diagnostic

(** Build a note from a format string. *)
val note : ?loc:Loc.t -> ('a, Format.formatter, unit, note) format4 -> 'a

(** A "did you mean '...'?" note. *)
val suggest : string -> note

val pp : diagnostic Fmt.t
val to_string : diagnostic -> string

(** JSON rendering: [{"code", "severity", "phase", "message", "span",
    "notes"}] where spans of synthesized nodes ({!Loc.is_dummy}) are
    [null]. *)
val to_json : diagnostic -> Json.t

val json_of_span : Loc.t -> Json.t

(** Build a diagnostic without raising. *)
val make :
  ?code:string ->
  ?notes:note list ->
  ?loc:Loc.t ->
  ?severity:severity ->
  phase ->
  string ->
  diagnostic

(** Raise a located diagnostic with a format string. *)
val error :
  ?code:string ->
  ?notes:note list ->
  ?loc:Loc.t ->
  phase ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a

val lex_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val parse_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val wf_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val type_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val resolve_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val translate_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val eval_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val server_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val config_error :
  ?code:string -> ?notes:note list -> ?loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Internal invariant violation; not attributable to the program. *)
val ice : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [guard cond phase fmt ...] raises unless [cond] holds. *)
val guard : bool -> ?loc:Loc.t -> phase -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Run and capture any diagnostic as [Error]. *)
val protect : (unit -> 'a) -> ('a, diagnostic) result

val protect_msg : (unit -> 'a) -> ('a, string) result

(** An accumulating sink of diagnostics.  Mutable and single-threaded:
    each session (and each domain of a batch) owns its own engine. *)
type engine

val engine : unit -> engine

(** Record a diagnostic and keep going. *)
val report : engine -> diagnostic -> unit

(** Record a warning built from a format string. *)
val warn :
  engine ->
  ?code:string ->
  ?notes:note list ->
  ?loc:Loc.t ->
  phase ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a

(** Accumulated diagnostics, in report order. *)
val diagnostics : engine -> diagnostic list

val error_count : engine -> int
val warning_count : engine -> int
val has_errors : engine -> bool

(** Run [f ()]; a raised diagnostic is reported to the engine and the
    result becomes [None]. *)
val capture : engine -> (unit -> 'a) -> 'a option
