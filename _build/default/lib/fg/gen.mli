(** Random generation of well-typed FG programs for property-based
    theorem checking.

    Every generated program is well-typed by construction and exercises
    concept hierarchies with refinement (including diamonds), one- and
    two-parameter concepts, associated types, members with defaults,
    models at up to two ground types (including [list int]), where
    clauses with same-type pins, member access through refinement, and
    (on a third of programs) implicit instantiation. *)

(** Deterministic in the given state. *)
val gen_program : Random.State.t -> Ast.exp

(** Generate from an integer seed. *)
val program_of_seed : int -> Ast.exp
