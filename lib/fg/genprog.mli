(** Deterministic synthetic program families for the benchmark harness,
    one per scaling dimension of DESIGN.md's experiment index (B1–B6).
    All functions return complete programs in concrete syntax. *)

(** Refinement chain of depth [n]; the deepest concept's generic
    function touches the shallowest member (longest dictionary path). *)
val refinement_chain : int -> string

(** Diamond lattice of depth [n] (two concepts per level, each refining
    both of the previous level), every concept with an associated type. *)
val refinement_diamond : int -> string

(** [n] independent concept/model pairs; lookup scans past [n-1]. *)
val many_models : int -> string

(** One generic function with [n] requirements, all used. *)
val wide_where : int -> string

(** [n] type parameters chained by same-type constraints. *)
val same_type_chain : int -> string

(** Associated types pinned along a refinement chain of length [n]. *)
val assoc_chain : int -> string

(** [n] sequential generic definitions and calls. *)
val let_chain : int -> string

(** Shared-prefix family for the incremental frontend: [decls]
    independent generic definitions and a one-call body.  Members
    differ only in declaration [edit_at] (default none), whose bound
    variable is renamed by [edit] — re-checking one member against a
    session warm from another re-checks exactly one declaration. *)
val shared_prefix : ?edit_at:int -> ?edit:int -> decls:int -> unit -> string

(** Equality at [list^n int] through the parameterized [Eq<list t>]
    model: resolution builds an [n]-deep dictionary chain. *)
val param_depth : int -> string

(** One generic called at [n] distinct ground types ([int] through
    [list^(n-1) int]), [reps] times each (default 3) — the
    specializer's scaling dimension: full stenciling clones the
    generic per instantiation; the gcshape hybrid keeps one stencil
    for the whole same-layout family. *)
val instantiation_fanout : ?reps:int -> int -> string

(** [n] calls to a generic function, implicitly or explicitly
    instantiated — the inference-overhead comparison. *)
val implicit_calls : implicit:bool -> int -> string

(** Figure 5's accumulate over a list of length [n] (FG). *)
val accumulate_workload : int -> string

(** The same workload in System F with explicit operation arguments
    (Figure 3 style). *)
val accumulate_workload_systemf : int -> string

(** The same workload as monomorphic, dictionary-free System F. *)
val accumulate_workload_mono : int -> string
