lib/congruence/closure.ml: Array Fg_unionfind Fg_util Hashtbl List Option Term
