test/test_corpus.ml: Alcotest Check Corpus Fg_core Fg_util Interp List Parser Pipeline Pretty
