(* The fuzzing subsystem: generator determinism, a live oracle pass, the
   shrinker, the report shape, and replay of the committed minimized
   counterexamples under programs/fuzz_regressions/. *)

open Fg_core
module Json = Fg_util.Json

let regressions_dir = "../programs/fuzz_regressions"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every committed counterexample must (now) pass the full pipeline,
   produce the value stated in its header, and round-trip through the
   printer — replaying the shrunk artifact of each fixed bug. *)
let test_regressions () =
  let files =
    Sys.readdir regressions_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fg")
    |> List.sort compare
  in
  Alcotest.(check bool) "regression corpus is non-empty" true (files <> []);
  let sess = Session.of_config Session.Config.default in
  List.iter
    (fun f ->
      let src = read_file (Filename.concat regressions_dir f) in
      let expected =
        String.split_on_char '\n' src
        |> List.find_map (fun l ->
               let prefix = "// expected value: " in
               if String.length l > String.length prefix
                  && String.sub l 0 (String.length prefix) = prefix
               then
                 Some
                   (String.sub l (String.length prefix)
                      (String.length l - String.length prefix))
               else None)
      in
      let expected =
        match expected with
        | Some v -> v
        | None -> Alcotest.failf "%s: missing '// expected value:' header" f
      in
      let out = Session.run ~file:f sess src in
      Alcotest.(check string) (f ^ " value") expected
        (Interp.flat_to_string out.Session.value);
      let ast = Parser.exp_of_string ~file:f src in
      let reparsed = Parser.exp_of_string (Pretty.exp_to_string ast) in
      Alcotest.(check bool) (f ^ " round-trips") true
        (Ast.exp_equal ast reparsed))
    files

(* Generation is a pure function of (seed, index): same inputs, same
   program; different seeds, different programs. *)
let test_generate_deterministic () =
  let cfg = { Fuzz.default_config with seed = 11; size = 40 } in
  for i = 0 to 9 do
    let a = Fuzz.generate cfg ~index:i in
    let b = Fuzz.generate cfg ~index:i in
    Alcotest.(check string)
      (Printf.sprintf "program %d reproducible" i)
      a.Fuzz.p_source b.Fuzz.p_source
  done;
  let a = Fuzz.generate cfg ~index:0 in
  let b = Fuzz.generate { cfg with seed = 12 } ~index:0 in
  Alcotest.(check bool) "different seeds differ" true
    (a.Fuzz.p_source <> b.Fuzz.p_source)

(* A small live pass: every generated program satisfies all three
   oracles, and the run is reproducible end to end. *)
let test_run_clean () =
  let cfg = { Fuzz.default_config with Fuzz.seed = 5; count = 15; size = 25; mutants = 2 } in
  let r = Fuzz.run ~domains:2 cfg in
  Alcotest.(check int) "generated" 15 r.Fuzz.r_generated;
  Alcotest.(check int) "mutants run" 30 r.Fuzz.r_mutants_run;
  (match r.Fuzz.r_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "oracle %s failed on #%d: %s\n%s"
        (Fuzz.oracle_name f.Fuzz.f_oracle)
        f.Fuzz.f_index f.Fuzz.f_message f.Fuzz.f_source);
  let r' = Fuzz.run ~domains:1 cfg in
  Alcotest.(check string) "report independent of domain count"
    (Json.to_string (Fuzz.report_to_json r))
    (Json.to_string (Fuzz.report_to_json r'))

(* The greedy shrinker reaches the smallest subterm that still
   satisfies the failure predicate. *)
let test_shrink () =
  let ast = Parser.exp_of_string "iadd(imult(2, 3), iadd(10, 20))" in
  let mentions_imult e =
    Fg_util.Strutil.contains ~needle:"imult(" (Pretty.exp_to_string e)
  in
  let shrunk = Fuzz.shrink ~still_fails:mentions_imult ast in
  Alcotest.(check string) "shrinks to the imult call" "imult(2, 3)"
    (Pretty.exp_to_flat_string shrunk);
  (* A predicate nothing smaller satisfies leaves the program alone. *)
  let whole e = Ast.exp_equal e ast in
  let same = Fuzz.shrink ~still_fails:whole ast in
  Alcotest.(check bool) "fixpoint when nothing smaller fails" true
    (Ast.exp_equal same ast)

(* Shrinking a mutant with a declaration stack deletes the unrelated
   declarations. *)
let test_shrink_deletes_decls () =
  let src =
    "concept FzA<t> { m : fn(t) -> t; } in\n\
     model FzA<int> { m = fun (x : int) => x; } in\n\
     let h = 5 in\n\
     iadd(h, imult(2, 3))"
  in
  let ast = Parser.exp_of_string src in
  let mentions_imult e =
    Fg_util.Strutil.contains ~needle:"imult(" (Pretty.exp_to_string e)
  in
  let shrunk = Fuzz.shrink ~still_fails:mentions_imult ast in
  Alcotest.(check string) "declarations deleted" "imult(2, 3)"
    (Pretty.exp_to_flat_string shrunk)

(* The stable report shape documented in docs/LANGUAGE.md. *)
let test_report_json_shape () =
  let cfg = { Fuzz.default_config with Fuzz.seed = 3; count = 2; size = 15; mutants = 1 } in
  let r = Fuzz.run ~domains:1 cfg in
  match Fuzz.report_to_json r with
  | Json.Obj fields ->
      Alcotest.(check (list string))
        "top-level keys"
        [ "fuzz"; "generated"; "mutants_run"; "ok"; "failures" ]
        (List.map fst fields);
      (match List.assoc "fuzz" fields with
      | Json.Obj cfg_fields ->
          Alcotest.(check (list string))
            "config keys"
            [ "seed"; "count"; "size"; "mutants" ]
            (List.map fst cfg_fields)
      | _ -> Alcotest.fail "fuzz field is not an object");
      (match List.assoc "ok" fields with
      | Json.Bool b ->
          Alcotest.(check bool) "ok mirrors failures" b
            (r.Fuzz.r_failures = [])
      | _ -> Alcotest.fail "ok field is not a bool")
  | _ -> Alcotest.fail "report is not an object"

(* Corrupted programs must be rejected through the recovering pipeline:
   exercised via a run with mutants enabled above, plus the direct
   guarantee that save_failures writes replayable artifacts. *)
let test_save_failures_layout () =
  let r =
    {
      Fuzz.r_config = { Fuzz.default_config with Fuzz.seed = 9; count = 1; size = 10; mutants = 0 };
      r_generated = 1;
      r_mutants_run = 0;
      r_failures =
        [
          {
            Fuzz.f_index = 0;
            f_oracle = Fuzz.Agreement;
            f_message = "synthetic";
            f_source = "iadd(1, 2)";
            f_shrunk = "1";
            f_shrunk_nodes = 1;
          };
        ];
    }
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fg-fuzz-test" in
  let paths = Fuzz.save_failures ~dir r in
  Alcotest.(check int) "one artifact" 1 (List.length paths);
  let path = List.hd paths in
  Alcotest.(check string) "artifact name" "fuzz-9-0-agreement.fg"
    (Filename.basename path);
  let contents = read_file path in
  Alcotest.(check bool) "artifact embeds the original" true
    (Fg_util.Strutil.contains ~needle:"// iadd(1, 2)" contents);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "regression corpus replays" `Quick test_regressions;
    Alcotest.test_case "generation is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "small run passes all oracles" `Quick test_run_clean;
    Alcotest.test_case "shrinker finds minimal subterm" `Quick test_shrink;
    Alcotest.test_case "shrinker deletes declarations" `Quick
      test_shrink_deletes_decls;
    Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
    Alcotest.test_case "failure artifact layout" `Quick
      test_save_failures_layout;
  ]
