(** Declaration-granular compilation units.

    {!Session} (and through it the server and the REPL) used to re-check
    a program's whole declaration spine on every request past the cached
    prelude.  This module splits any program into its declaration spine
    and checks each declaration at most once per content: a unit is
    addressed by a digest of the declaration itself chained through the
    keys of the units it depends on (a Merkle-style key, so one hash
    comparison covers the whole transitive history), together with the
    resolution mode, the escape-check flag, the environment family, and
    the fresh-name supply position.  Checking a spine against a warm
    cache replays recorded environment deltas and warnings instead of
    re-running the checker, and is byte-identical to a cold check —
    types, elaborated terms, System F translations, diagnostics, and
    evaluation results all come out exactly the same.

    Caches are owned by a single domain (each server worker and each
    batch domain builds its own); the counters are atomics so another
    domain may read {!stats} concurrently. *)

open Ast
module F := Fg_systemf.Ast
module Sset := Fg_util.Names.Sset

type triple = ty * exp * F.exp

(** One checked declaration: its cache key, the keys it depends on, its
    {!Declgraph} facts, and everything needed to replay it — the
    environment delta, the translation wrapper, the fresh-name supply
    position after checking, the Global-mode overlap-set delta, and the
    warnings it emitted (replayed verbatim on a hit, so warnings appear
    exactly once per program). *)
type checked = {
  ck_key : string;  (** memory-tier key: the family-scoped {!ck_pkey} *)
  ck_pkey : string;
      (** portable key — family-free, so it addresses the persistent
          tiers (disk store, cache peers), which outlive any process *)
  ck_deps : string list;
  ck_info : Declgraph.info;
  ck_extend : Env.t -> Env.t;
  ck_wrap : triple -> triple;
  ck_gensym_end : int;
  ck_globals_delta : (string * ty list) list;
  ck_warnings : Fg_util.Diag.diagnostic list;
}

(** A bounded LRU map from unit key to checked unit. *)
type cache

val default_capacity : int

val create_cache : ?capacity:int -> unit -> cache

(** A persistent tier behind the memory map.  Keys are portable unit
    keys; values are opaque marshalled-unit blobs.  Lookups go memory →
    stores in list order; a deeper hit is written back into the tiers
    that missed, a fresh check is written through to every tier, and a
    store that throws is treated as a miss (peer failures degrade
    silently to local compilation).  Blobs only decode in the compiler
    build that produced them — a mismatched or corrupt blob counts as a
    corrupt entry and reads as a miss. *)
type store = {
  st_name : string;
  st_get : string -> string option;
  st_put : string -> string -> unit;
}

(** Attach the persistent tiers consulted after the memory map. *)
val set_stores : cache -> store list -> unit

(** The on-disk store ({!Diskcache}) as a tier. *)
val disk_store : Diskcache.t -> store

type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_invalidations : int;
  s_size : int;
  s_capacity : int;
}

(** Counter snapshot; safe to call from any domain. *)
val stats : cache -> stats

(** [invalidate cache ~protect ~seeds] removes the entries named by
    [seeds] and everything transitively depending on them, except keys
    in [protect] (a session's live spine).  Returns the number of
    invalidations recorded: entries dropped plus the seeds themselves
    (a redefinition is observable even when nothing cached depended on
    it). *)
val invalidate : cache -> protect:string list -> seeds:string list -> int

(** Split a program into its leading declarations and residual body. *)
val split_spine : exp -> exp list * exp

(** What happened to one declaration during a walk: replayed from the
    cache, freshly checked, or failed (recovery only). *)
type decl_outcome = Dhit | Dchecked | Dfailed

type walk_result = {
  w_env : Env.t;  (** environment after the whole spine *)
  w_residual : exp;  (** first non-declaration expression *)
  w_wrap : triple -> triple;
      (** rebuilds the program's triple from the residual's, exactly as
          {!Check.check_prefix} composes declaration wrappers *)
  w_units : checked list;  (** this walk's units, in spine order *)
  w_decls : (exp * string * decl_outcome) list;
      (** one entry per walked declaration, in order: the declaration
          node, the pkey it was addressed by ("" once recovery has
          failed), and its outcome.  Unlike [w_units] this pairs back
          with the program's declarations even under recovery. *)
  w_poisoned : Sset.t;  (** recovery: names whose declarations failed *)
}

(** [walk cache ~spine env ast] checks [ast]'s declaration spine
    through [cache].  [spine] holds the already-checked units the
    session's history put in scope of [env] (their keys seed the
    dependency chain; their declarations are NOT re-walked).  Without
    [?recover], the first failing declaration raises [Diag.Error], as
    {!Check.check_prefix} would.  With [?recover:engine], failures are
    reported to [engine] (cascade-suppressed via [?poisoned], as
    {!Check.check_prefix_recovering}) and — because a skipped
    declaration leaves every later unit's scope unknowable — all
    subsequent units bypass the cache entirely, reproducing the cold
    recovering walk byte-for-byte.  Only successfully checked units are
    ever cached. *)
val walk :
  ?recover:Fg_util.Diag.engine ->
  ?poisoned:Sset.t ->
  cache ->
  spine:checked list ->
  Env.t ->
  exp ->
  walk_result
