test/test_named_models.ml: Alcotest Astring_contains Fg_core Fg_util Interp Pipeline Resolution
