lib/fg/ast.mli: Fg_systemf Fg_util Loc
