(** Tokens shared by the System F and System FG concrete syntaxes.

    Both languages are lexed by the same scanner ({!Lexer}); the parsers
    differ only in which keywords and forms they accept.  Keywords are a
    closed set checked at lex time, so an identifier can never collide
    with one. *)

type t =
  | INT of int
  | LIDENT of string  (** lowercase identifier: variables, type variables *)
  | UIDENT of string  (** uppercase identifier: concept names *)
  | KW of string  (** keyword, one of {!keywords} *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LT
  | GT
  | COMMA
  | SEMI
  | COLON
  | DOT
  | EQ  (** [=] *)
  | EQEQ  (** [==] *)
  | NEQ  (** [!=] *)
  | ARROW  (** [->] *)
  | DARROW  (** [=>] *)
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | LE
  | GE
  | ANDAND
  | BARBAR
  | BANG
  | EOF

(** Keywords of both languages.  The FG-only ones ([concept], [model],
    [refines], [types], [same], [where]) are simply never accepted by the
    System F parser. *)
let keywords =
  [
    "let"; "in"; "fun"; "tfun"; "fix"; "if"; "then"; "else"; "true"; "false";
    "int"; "bool"; "unit"; "list"; "fn"; "forall"; "where"; "concept";
    "model"; "refines"; "require"; "types"; "type"; "same"; "nth"; "not"; "tuple";
    "using";
  ]

let is_keyword s = List.mem s keywords

let pp ppf = function
  | INT n -> Fmt.pf ppf "integer literal %d" n
  | LIDENT s -> Fmt.pf ppf "identifier '%s'" s
  | UIDENT s -> Fmt.pf ppf "identifier '%s'" s
  | KW s -> Fmt.pf ppf "keyword '%s'" s
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LT -> Fmt.string ppf "'<'"
  | GT -> Fmt.string ppf "'>'"
  | COMMA -> Fmt.string ppf "','"
  | SEMI -> Fmt.string ppf "';'"
  | COLON -> Fmt.string ppf "':'"
  | DOT -> Fmt.string ppf "'.'"
  | EQ -> Fmt.string ppf "'='"
  | EQEQ -> Fmt.string ppf "'=='"
  | NEQ -> Fmt.string ppf "'!='"
  | ARROW -> Fmt.string ppf "'->'"
  | DARROW -> Fmt.string ppf "'=>'"
  | STAR -> Fmt.string ppf "'*'"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | SLASH -> Fmt.string ppf "'/'"
  | PERCENT -> Fmt.string ppf "'%%'"
  | LE -> Fmt.string ppf "'<='"
  | GE -> Fmt.string ppf "'>='"
  | ANDAND -> Fmt.string ppf "'&&'"
  | BARBAR -> Fmt.string ppf "'||'"
  | BANG -> Fmt.string ppf "'!'"
  | EOF -> Fmt.string ppf "end of input"

let to_string t = Fmt.str "%a" pp t

let equal (a : t) (b : t) = a = b
