lib/fg/parser.ml: Ast Fg_syntax Fg_systemf Fg_util List Parser_base Token
