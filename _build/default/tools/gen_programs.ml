(* Regenerate programs/*.fg from the corpus (run from the repo root):
     dune exec tools/gen_programs.exe
   The test suite checks that the files are in sync with the corpus. *)

open Fg_core

let () =
  List.iter
    (fun (e : Corpus.entry) ->
      match e.expected with
      | Corpus.Value v ->
          let oc = open_out (Printf.sprintf "programs/%s.fg" e.name) in
          Printf.fprintf oc "// %s (%s)\n// expected value: %s\n%s\n"
            e.description e.paper (Interp.flat_to_string v) e.source;
          close_out oc
      | Corpus.Fails _ -> ())
    Corpus.all;
  Printf.printf "regenerated programs/*.fg (%d files)\n"
    (List.length Corpus.positive)
