#!/bin/sh
# CI entry point: build everything, run the full test battery, then a
# quick benchmark smoke (tiny quota — checks the harness runs and the
# deterministic tables print, not the numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== bench smoke (BENCH_QUOTA=0.02)"
BENCH_QUOTA=0.02 dune exec bench/main.exe
