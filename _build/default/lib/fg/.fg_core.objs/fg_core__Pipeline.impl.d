lib/fg/pipeline.ml: Ast Check Diag Fg_systemf Fg_util Interp Parser Theorems
