(** Hash-consed FG types: a per-session interning table mapping every
    structurally distinct type to one canonical physical node.

    Checking a program touches the same types over and over (the
    prelude's concepts mention [int], [list t] and friends thousands of
    times), and the checker compares them with {!Ast.ty_equal}, whose
    first move is a pointer test.  Interning the AST once after parsing
    makes that pointer test hit for every repeated type, turning the
    common case of equality from a structural walk into one comparison.

    Tables are not thread-safe; each {!Session} (and so each batch
    domain) owns its own. *)

type t

val create : unit -> t

(** Canonical node for the type: [intern tbl a == intern tbl b] iff
    [a] and [b] are structurally equal (binders compared by name, not
    up to alpha — conservative, so the pointer fast path never lies). *)
val intern : t -> Ast.ty -> Ast.ty

val intern_constr : t -> Ast.constr -> Ast.constr

(** Rebuild an expression with every embedded type interned (parameter
    annotations, type arguments, declarations); the expression spine
    itself is fresh, only types are shared. *)
val intern_exp : t -> Ast.exp -> Ast.exp

(** Number of distinct interned types (stats/tests). *)
val size : t -> int
