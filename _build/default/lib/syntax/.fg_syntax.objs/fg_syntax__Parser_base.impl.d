lib/syntax/parser_base.ml: Array Diag Fg_util Fmt Lexer List Loc Token
