(** One-stop driver: source text in, everything out.

    Bundles the full reproduction pipeline — parse, type check,
    translate, re-check the translation in System F, verify the theorem
    statement, and evaluate both directly and via the translation — into
    a single call.  The CLI, the examples and much of the test suite go
    through this module. *)

open Fg_util
module F = Fg_systemf

type outcome = {
  source : string;
  ast : Ast.exp;
  fg_ty : Ast.ty;  (** the program's FG type *)
  f_exp : F.Ast.exp;  (** its System F translation *)
  f_ty : F.Ast.ty;  (** the System F type of the translation *)
  theorem_holds : bool;
      (** [τ'] alpha-equal to the translation of [τ] — always true when
          this record exists, since a mismatch raises; recorded for
          reporting *)
  value : Interp.flat;  (** the program's value (first-order part) *)
  direct_steps : int;  (** beta steps taken by the direct interpreter *)
  translated_steps : int;  (** beta steps taken evaluating the translation *)
}

(** Run the whole pipeline on FG source text.  Raises {!Diag.Error} with
    a located message on any failure. *)
let run ?file ?resolution ?fuel (source : string) : outcome =
  let ast = Parser.exp_of_string ?file source in
  let report = Theorems.check_translation ?resolution ast in
  let v_direct, direct_steps = Interp.run_program ?fuel report.elaborated in
  let v_translated, translated_steps = F.Eval.run ?fuel report.f_exp in
  let direct = Interp.flatten v_direct in
  let translated = Interp.flatten_f v_translated in
  if not (Interp.flat_equal direct translated) then
    Diag.error Diag.Eval
      "direct interpreter computed %s but the translation computed %s"
      (Interp.flat_to_string direct)
      (Interp.flat_to_string translated);
  {
    source;
    ast;
    fg_ty = report.fg_ty;
    f_exp = report.f_exp;
    f_ty = report.f_ty;
    theorem_holds = true;
    value = direct;
    direct_steps;
    translated_steps;
  }

let run_result ?file ?resolution ?fuel source =
  Diag.protect (fun () -> run ?file ?resolution ?fuel source)

(** Type check only (no evaluation); returns the FG type. *)
let typecheck ?file ?resolution source : Ast.ty =
  Check.typecheck ?resolution (Parser.exp_of_string ?file source)

(** Translate only; returns the System F term. *)
let translate ?file ?resolution source : F.Ast.exp =
  Check.translate ?resolution (Parser.exp_of_string ?file source)

(** Evaluate via the direct interpreter only (on the elaborated term,
    so implicit instantiations work). *)
let interpret ?file ?fuel source : Interp.value =
  let ast = Parser.exp_of_string ?file source in
  let _, elaborated, _ = Check.elaborate ast in
  Interp.run_value ?fuel elaborated
