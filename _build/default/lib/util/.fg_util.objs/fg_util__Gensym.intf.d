lib/util/gensym.mli:
