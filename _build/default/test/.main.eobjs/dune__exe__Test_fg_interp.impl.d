test/test_fg_interp.ml: Alcotest Astring_contains Check Corpus Fg_core Fg_systemf Fg_util Interp Parser
