(* Specializing backend: stenciling + gcshape-style sharing over the
   dictionary-passing translation.

   The translated program is a spine of top-level [let]s (prelude
   declarations, then program declarations) around a residual body.
   We rewrite every spine right-hand side and the body, and insert new
   spine bindings — stencils and hoisted dictionaries — immediately
   before the entry under which they were discovered.  The original
   polymorphic bindings are never removed: top-level [let]s cost no
   beta steps, and keeping them makes every fallback (budget overrun,
   non-static dictionary, hybrid sharing) a no-op rather than an
   error.

   Soundness invariants:
   - only *ground* instantiations are stenciled (no free type
     variables in the type arguments), so substitution is closed;
   - dictionary arguments are only inlined when *static*: every free
     variable is a spine binding defined strictly earlier, or a
     binding we generated ourselves.  Non-atomic static dictionaries
     are hoisted to fresh spine lets (shared by rendering), so
     inlining never duplicates construction steps;
   - spine names that are shadowed (defined more than once on the
     spine) take no part in specialization — neither as stencil
     sources nor as static atoms — which keeps name resolution
     position-independent;
   - self-recursion is detected by an in-progress key map and closed
     with [fix], typed by instantiating the original fix annotation;
     polymorphic recursion is bounded by a global stencil budget and a
     chain-depth cap, beyond which calls fall back to dictionary
     passing. *)

open Fg_util
module A = Ast
module Smap = Names.Smap
module Sset = Names.Sset

type mode = Stencil | Hybrid | Guided

type stats = {
  st_stencils : int;
  st_shared : int;
  st_fallbacks : int;
  st_hoisted : int;
  st_rewritten : int;
}

let zero_stats =
  {
    st_stencils = 0;
    st_shared = 0;
    st_fallbacks = 0;
    st_hoisted = 0;
    st_rewritten = 0;
  }

let add_stats a b =
  {
    st_stencils = a.st_stencils + b.st_stencils;
    st_shared = a.st_shared + b.st_shared;
    st_fallbacks = a.st_fallbacks + b.st_fallbacks;
    st_hoisted = a.st_hoisted + b.st_hoisted;
    st_rewritten = a.st_rewritten + b.st_rewritten;
  }

let changed s = s.st_rewritten > 0 || s.st_hoisted > 0 || s.st_stencils > 0

(* Keep stenciling bounded on adversarial (fuzzed) programs: at most
   this many clones per program, and at most this many full stencils
   in flight at once (polymorphic recursion depth). *)
let max_stencils = 256
let max_depth = 24

(* gcshape of a type: what the hybrid backend considers "the same
   layout".  Base types keep their identity (value members differ),
   lists erase their element (one pointer shape, as in Go's gcshape
   stenciling), functions erase everything but arity (closures are
   code+environment pointers). *)
let rec shape_ty (t : A.ty) : string =
  match t with
  | A.TBase A.TInt -> "i"
  | A.TBase A.TBool -> "b"
  | A.TBase A.TUnit -> "u"
  | A.TVar _ -> "v"
  | A.TList _ -> "L"
  | A.TArrow (args, _) -> "F" ^ string_of_int (List.length args)
  | A.TTuple ts -> "(" ^ String.concat "" (List.map shape_ty ts) ^ ")"
  | A.TForall (_, t) -> "A" ^ shape_ty t

(* Every name that occurs anywhere in the program, bound or free —
   the avoid-set for generated stencil/hoist names. *)
let rec all_names acc (e : A.exp) =
  match e.desc with
  | A.Var x -> Sset.add x acc
  | A.Lit _ | A.Prim _ -> acc
  | A.App (f, args) -> List.fold_left all_names (all_names acc f) args
  | A.Abs (ps, b) ->
      all_names (List.fold_left (fun a (x, _) -> Sset.add x a) acc ps) b
  | A.TyAbs (_, b) -> all_names acc b
  | A.TyApp (f, _) -> all_names acc f
  | A.Let (x, r, b) -> all_names (all_names (Sset.add x acc) r) b
  | A.Tuple es -> List.fold_left all_names acc es
  | A.Nth (e0, _) -> all_names acc e0
  | A.Fix (x, _, b) -> all_names (Sset.add x acc) b
  | A.If (c, t, f) -> all_names (all_names (all_names acc c) t) f

type def = { d_rhs : A.exp; d_index : int }

(* A spine binding peeled down to its generic core. *)
type peeled = {
  p_fix : (string * A.ty) option;  (* fix binder and annotation *)
  p_tvs : string list;
  p_gbody : A.exp;  (* under the type abstraction *)
}

let peel (rhs : A.exp) : peeled option =
  match rhs.desc with
  | A.TyAbs (tvs, gbody) -> Some { p_fix = None; p_tvs = tvs; p_gbody = gbody }
  | A.Fix (fn, fty, { desc = A.TyAbs (tvs, gbody); _ }) ->
      Some { p_fix = Some (fn, fty); p_tvs = tvs; p_gbody = gbody }
  | _ -> None

type st = {
  mode : mode;
  hot : string -> bool;  (* Guided only: is this instantiation key hot? *)
  senv : (string, def) Hashtbl.t;  (* uniquely-named spine defs *)
  gen_bodies : (string, A.exp) Hashtbl.t;  (* generated name -> rhs *)
  memo : (string, string) Hashtbl.t;  (* stencil key -> stencil name *)
  shapes : (string, string) Hashtbl.t;  (* shape key -> owning stencil key *)
  hoists : (string, string) Hashtbl.t;  (* rendered dict -> hoist name *)
  pending : (int, (string * A.exp) list ref) Hashtbl.t;
      (* spine position -> generated bindings, newest first *)
  mutable in_progress : (string * string) list;  (* (key, name), innermost first *)
  mutable rec_marks : Sset.t;  (* stencils observed self-recursive *)
  mutable names : Sset.t;
  mutable counter : int;
  mutable budget : int;
  mutable stencils : int;
  mutable shared : int;
  mutable fallbacks : int;
  mutable hoisted : int;
  mutable rewritten : int;
}

let fresh st base =
  let rec go () =
    st.counter <- st.counter + 1;
    let n = base ^ string_of_int st.counter in
    if Sset.mem n st.names then go ()
    else begin
      st.names <- Sset.add n st.names;
      n
    end
  in
  go ()

let pend st pos binding =
  let r =
    match Hashtbl.find_opt st.pending pos with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add st.pending pos r;
        r
  in
  r := binding :: !r

let is_atom (e : A.exp) =
  match e.desc with A.Var _ | A.Prim _ | A.Lit _ -> true | _ -> false

let ground tys = List.for_all (fun t -> Sset.is_empty (A.ftv t)) tys

(* Static at spine position [pos]: every free variable is an earlier
   spine binding or one we generated (generated names are fresh, so
   they can never be locally shadowed). *)
let static_at st ~pos ~bound e =
  Sset.for_all
    (fun x ->
      (not (Sset.mem x bound))
      && (match Hashtbl.find_opt st.senv x with
         | Some d -> d.d_index < pos
         | None -> Hashtbl.mem st.gen_bodies x))
    (A.free_vars e)

let ty_key t = Pretty.ty_to_string t
let exp_key e = Pretty.exp_to_string e

(* The profile key of an instantiation site — shared by the observer
   census, the guided hot check, and the type-only stencil memo. *)
let instantiation_key f tys =
  Printf.sprintf "%s[%s]" f (String.concat "," (List.map ty_key tys))

(* Replace a non-atomic static dictionary argument by a fresh spine
   binding, shared across call sites by rendering. *)
let atomize st ~pos base (arg : A.exp) : A.exp =
  if is_atom arg then arg
  else
    let key = exp_key arg in
    match Hashtbl.find_opt st.hoists key with
    | Some n -> A.var n
    | None ->
        let n = fresh st (base ^ "__d") in
        Hashtbl.replace st.hoists key n;
        Hashtbl.replace st.gen_bodies n arg;
        pend st pos (n, arg);
        st.hoisted <- st.hoisted + 1;
        A.var n

(* Reduce a projection through a statically known dictionary tuple to
   its member witness, when the member is an atom that still resolves
   at the use site. *)
let project st ~bound (e0 : A.exp) k : A.exp option =
  match e0.desc with
  | A.Var x when not (Sset.mem x bound) -> (
      let rhs =
        match Hashtbl.find_opt st.senv x with
        | Some d -> Some d.d_rhs
        | None -> Hashtbl.find_opt st.gen_bodies x
      in
      match rhs with
      | Some { desc = A.Tuple es; _ } when k >= 0 && k < List.length es -> (
          let m = List.nth es k in
          match m.desc with
          | A.Prim _ | A.Lit _ -> Some m
          | A.Var y
            when (not (Sset.mem y bound))
                 && (Hashtbl.mem st.senv y || Hashtbl.mem st.gen_bodies y) ->
              Some m
          | _ -> None)
      | _ -> None)
  | _ -> None

let rec rw st ~pos ~bound (e : A.exp) : A.exp =
  match e.desc with
  | A.Var _ | A.Lit _ | A.Prim _ -> e
  | A.App (({ desc = A.TyApp (fh, tys); _ } as fnode), args) -> (
      let args' = List.map (rw st ~pos ~bound) args in
      match try_call st ~pos ~bound ~loc:e.loc fh tys (Some args') with
      | Some e' -> e'
      | None ->
          let fh' = rw st ~pos ~bound fh in
          {
            e with
            desc = A.App ({ fnode with desc = A.TyApp (fh', tys) }, args');
          })
  | A.TyApp (fh, tys) -> (
      match try_call st ~pos ~bound ~loc:e.loc fh tys None with
      | Some e' -> e'
      | None -> { e with desc = A.TyApp (rw st ~pos ~bound fh, tys) })
  | A.App (f, args) ->
      {
        e with
        desc = A.App (rw st ~pos ~bound f, List.map (rw st ~pos ~bound) args);
      }
  | A.Abs (ps, b) ->
      let bound' = List.fold_left (fun a (x, _) -> Sset.add x a) bound ps in
      { e with desc = A.Abs (ps, rw st ~pos ~bound:bound' b) }
  | A.TyAbs (tvs, b) -> { e with desc = A.TyAbs (tvs, rw st ~pos ~bound b) }
  | A.Let (x, r, b) ->
      {
        e with
        desc =
          A.Let
            (x, rw st ~pos ~bound r, rw st ~pos ~bound:(Sset.add x bound) b);
      }
  | A.Tuple es -> { e with desc = A.Tuple (List.map (rw st ~pos ~bound) es) }
  | A.Nth (e0, k) -> (
      let e0' = rw st ~pos ~bound e0 in
      match project st ~bound e0' k with
      | Some atom -> atom
      | None -> { e with desc = A.Nth (e0', k) })
  | A.Fix (x, t, b) ->
      { e with desc = A.Fix (x, t, rw st ~pos ~bound:(Sset.add x bound) b) }
  | A.If (c, t, f) ->
      {
        e with
        desc =
          A.If (rw st ~pos ~bound c, rw st ~pos ~bound t, rw st ~pos ~bound f);
      }

(* A candidate call: [f[tys]] or [f[tys](dargs)] where [f] is an
   unshadowed spine generic and the type arguments are ground. *)
and try_call st ~pos ~bound ~loc fh tys dargs : A.exp option =
  match fh.desc with
  | A.Var f when not (Sset.mem f bound) -> (
      match Hashtbl.find_opt st.senv f with
      | Some d when d.d_index < pos -> (
          match peel d.d_rhs with
          | Some p when List.length p.p_tvs = List.length tys && ground tys ->
              if st.mode = Guided && not (st.hot (instantiation_key f tys))
              then begin
                (* cold under the profile: leave the dictionary call
                   untouched (checked before atomize, so cold calls
                   hoist nothing either) *)
                st.fallbacks <- st.fallbacks + 1;
                None
              end
              else specialize_call st ~pos ~bound ~loc f p tys dargs
          | _ -> None)
      | _ -> None)
  | _ -> None

and specialize_call st ~pos ~bound ~loc f p tys dargs : A.exp option =
  let sub =
    List.fold_left2 (fun m v t -> Smap.add v t m) Smap.empty p.p_tvs tys
  in
  (* Full consumption: the generic's body is a dictionary group (every
     parameter dictionary-typed) and every argument is static. *)
  let full =
    match (p.p_gbody.desc, dargs) with
    | A.Abs (dps, inner), Some args
      when List.length dps = List.length args
           && List.for_all
                (fun (_, t) -> match t with A.TTuple _ -> true | _ -> false)
                dps
           && List.for_all (static_at st ~pos ~bound) args ->
        Some (dps, inner, args)
    | _ -> None
  in
  match full with
  | Some (dps, inner, args) ->
      full_stencil st ~pos ~loc f p sub tys dps inner args
  | None -> (
      match (p.p_fix, dargs) with
      | None, None -> type_only st ~pos ~loc f p sub tys
      | None, Some args -> (
          match type_only st ~pos ~loc f p sub tys with
          | Some v -> Some (A.app ~loc v args)
          | None -> None)
      | Some _, _ ->
          st.fallbacks <- st.fallbacks + 1;
          None)

(* Clone [f] with types and dictionaries consumed.  The stencil's key
   includes the atomized dictionary arguments, so two call sites share
   a stencil exactly when they agree on types and witnesses. *)
and full_stencil st ~pos ~loc f p sub tys dps inner args : A.exp option =
  let atoms = List.map (atomize st ~pos f) args in
  let key =
    Printf.sprintf "%s[%s](%s)" f
      (String.concat "," (List.map ty_key tys))
      (String.concat "," (List.map exp_key atoms))
  in
  match List.assoc_opt key st.in_progress with
  | Some name ->
      (* self-recursive instantiation: refer to the stencil being
         built; it will be closed with [fix] *)
      st.rec_marks <- Sset.add name st.rec_marks;
      st.rewritten <- st.rewritten + 1;
      Some (A.var ~loc name)
  | None -> (
      match Hashtbl.find_opt st.memo key with
      | Some name ->
          st.rewritten <- st.rewritten + 1;
          Some (A.var ~loc name)
      | None ->
          let shape_key =
            f ^ "|"
            ^ String.concat ""
                (List.map (fun (_, t) -> shape_ty (A.subst_ty sub t)) dps)
          in
          let shared_out =
            st.mode = Hybrid
            && (match Hashtbl.find_opt st.shapes shape_key with
               | Some owner -> owner <> key
               | None -> false)
          in
          if shared_out then begin
            (* this shape class already owns a stencil: keep dictionary
               passing (with the dictionary hoisted), sharing the
               owner's code path the way gcshape instantiations share
               one compiled body *)
            st.shared <- st.shared + 1;
            Some (A.app ~loc (A.tyapp (A.var f) tys) atoms)
          end
          else
            (* Recursion prerequisites: if the fix binder occurs free
               in the body, it must be the spine name itself and the
               annotation must instantiate to a stencil type. *)
            let fix_ok, sc_ty =
              match p.p_fix with
              | None -> (true, None)
              | Some (fn, fty) ->
                  if not (Sset.mem fn (A.free_vars inner)) then (true, None)
                  else if fn <> f then (false, None)
                  else (
                    match fty with
                    | A.TForall (ftvs, A.TArrow (dtys, rty))
                      when List.length ftvs = List.length tys
                           && List.length dtys = List.length dps ->
                        let s =
                          List.fold_left2
                            (fun m v t -> Smap.add v t m)
                            Smap.empty ftvs tys
                        in
                        (true, Some (A.subst_ty s rty))
                    | _ -> (false, None))
            in
            if
              (not fix_ok) || st.budget <= 0
              || List.length st.in_progress >= max_depth
            then begin
              st.fallbacks <- st.fallbacks + 1;
              None
            end
            else begin
              st.budget <- st.budget - 1;
              st.stencils <- st.stencils + 1;
              if st.mode = Hybrid then Hashtbl.replace st.shapes shape_key key;
              let name = fresh st (f ^ "__s") in
              let body0 = A.subst_ty_exp sub inner in
              let smap =
                List.fold_left2
                  (fun m (x, _) a -> Smap.add x a m)
                  Smap.empty dps atoms
              in
              let body1 = A.subst_exp smap body0 in
              st.in_progress <- (key, name) :: st.in_progress;
              let body2 = rw st ~pos ~bound:Sset.empty body1 in
              st.in_progress <- List.tl st.in_progress;
              let rhs =
                if Sset.mem name st.rec_marks then
                  match sc_ty with
                  | Some t -> A.fix name t body2
                  | None -> body2 (* unreachable: fix_ok guarded above *)
                else body2
              in
              Hashtbl.replace st.gen_bodies name rhs;
              pend st pos (name, rhs);
              Hashtbl.replace st.memo key name;
              st.rewritten <- st.rewritten + 1;
              Some (A.var ~loc name)
            end)

(* Clone [f] with only the type arguments consumed (no dictionary
   group, or dictionaries that are not static).  Only for plain
   [TyAbs] bindings: a fix-bound generic's recursive [f[tys]] calls
   would dangle in a type-consumed clone. *)
and type_only st ~pos ~loc f p sub tys : A.exp option =
  match p.p_fix with
  | Some _ ->
      st.fallbacks <- st.fallbacks + 1;
      None
  | None -> (
      let key = instantiation_key f tys in
      match Hashtbl.find_opt st.memo key with
      | Some name ->
          st.rewritten <- st.rewritten + 1;
          Some (A.var ~loc name)
      | None ->
          let shape_key =
            f ^ "|ty|" ^ String.concat "" (List.map shape_ty tys)
          in
          let shared_out =
            st.mode = Hybrid
            && (match Hashtbl.find_opt st.shapes shape_key with
               | Some owner -> owner <> key
               | None -> false)
          in
          if shared_out then begin
            st.shared <- st.shared + 1;
            None
          end
          else if st.budget <= 0 then begin
            st.fallbacks <- st.fallbacks + 1;
            None
          end
          else begin
            st.budget <- st.budget - 1;
            st.stencils <- st.stencils + 1;
            if st.mode = Hybrid then Hashtbl.replace st.shapes shape_key key;
            let name = fresh st (f ^ "__s") in
            let body0 = A.subst_ty_exp sub p.p_gbody in
            let body1 = rw st ~pos ~bound:Sset.empty body0 in
            Hashtbl.replace st.gen_bodies name body1;
            pend st pos (name, body1);
            Hashtbl.replace st.memo key name;
            st.rewritten <- st.rewritten + 1;
            Some (A.var ~loc name)
          end)

let rec spine acc (e : A.exp) =
  match e.desc with
  | A.Let (x, r, b) -> spine ((x, r, e.loc) :: acc) b
  | _ -> (List.rev acc, e)

(* Register uniquely-named spine defs; shadowed names sit out. *)
let spine_env entries =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (x, _, _) ->
      Hashtbl.replace counts x
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts x)))
    entries;
  let senv = Hashtbl.create 64 in
  List.iteri
    (fun i (x, r, _) ->
      if Hashtbl.find counts x = 1 then
        Hashtbl.replace senv x { d_rhs = r; d_index = i })
    entries;
  senv

let specialize ~mode ?(hot = fun _ -> false) (prog : A.exp) : A.exp * stats =
  let entries, body = spine [] prog in
  if entries = [] then (prog, zero_stats)
  else begin
    let st =
      {
        mode;
        hot;
        senv = spine_env entries;
        gen_bodies = Hashtbl.create 64;
        memo = Hashtbl.create 64;
        shapes = Hashtbl.create 64;
        hoists = Hashtbl.create 64;
        pending = Hashtbl.create 16;
        in_progress = [];
        rec_marks = Sset.empty;
        names = all_names Sset.empty prog;
        counter = 0;
        budget = max_stencils;
        stencils = 0;
        shared = 0;
        fallbacks = 0;
        hoisted = 0;
        rewritten = 0;
      }
    in
    let entries' =
      List.mapi
        (fun i (x, r, loc) -> (i, x, rw st ~pos:i ~bound:Sset.empty r, loc))
        entries
    in
    let n = List.length entries in
    let body' = rw st ~pos:n ~bound:Sset.empty body in
    let wrap_pending pos acc =
      match Hashtbl.find_opt st.pending pos with
      | None -> acc
      | Some r ->
          (* [!r] is newest first; wrapping left-to-right puts the
             newest binding innermost, so dependencies (older
             bindings) end up outermost *)
          List.fold_left (fun acc (x, rhs) -> A.let_ x rhs acc) acc !r
    in
    let result =
      List.fold_right
        (fun (i, x, rhs, loc) acc -> wrap_pending i (A.let_ ~loc x rhs acc))
        entries'
        (wrap_pending n body')
    in
    ( result,
      {
        st_stencils = st.stencils;
        st_shared = st.shared;
        st_fallbacks = st.fallbacks;
        st_hoisted = st.hoisted;
        st_rewritten = st.rewritten;
      } )
  end

(* ---------------------------------------------------------------- *)
(* Instantiation census                                               *)

(* Count every call position [specialize] would consider a stencil
   candidate, without rewriting anything.  Spine registration and the
   candidacy conditions are shared with [try_call], so the keys a
   profile accumulates are exactly the keys the guided hot check will
   be asked about. *)
let observe (prog : A.exp) : (string * int) list =
  let entries, body = spine [] prog in
  if entries = [] then []
  else begin
    let senv = spine_env entries in
    let counts = Hashtbl.create 64 in
    let candidate ~pos ~bound (fh : A.exp) tys =
      match fh.desc with
      | A.Var f when not (Sset.mem f bound) -> (
          match Hashtbl.find_opt senv f with
          | Some d when d.d_index < pos -> (
              match peel d.d_rhs with
              | Some p
                when List.length p.p_tvs = List.length tys && ground tys ->
                  Some f
              | _ -> None)
          | _ -> None)
      | _ -> None
    in
    let rec walk ~pos ~bound (e : A.exp) =
      match e.desc with
      | A.Var _ | A.Lit _ | A.Prim _ -> ()
      | A.TyApp (fh, tys) -> (
          match candidate ~pos ~bound fh tys with
          | Some f ->
              let key = instantiation_key f tys in
              Hashtbl.replace counts key
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          | None -> walk ~pos ~bound fh)
      | A.App (f, args) ->
          walk ~pos ~bound f;
          List.iter (walk ~pos ~bound) args
      | A.Abs (ps, b) ->
          let bound' =
            List.fold_left (fun a (x, _) -> Sset.add x a) bound ps
          in
          walk ~pos ~bound:bound' b
      | A.TyAbs (_, b) -> walk ~pos ~bound b
      | A.Let (x, r, b) ->
          walk ~pos ~bound r;
          walk ~pos ~bound:(Sset.add x bound) b
      | A.Tuple es -> List.iter (walk ~pos ~bound) es
      | A.Nth (e0, _) -> walk ~pos ~bound e0
      | A.Fix (x, _, b) -> walk ~pos ~bound:(Sset.add x bound) b
      | A.If (c, t, f) ->
          walk ~pos ~bound c;
          walk ~pos ~bound t;
          walk ~pos ~bound f
    in
    List.iteri (fun i (_, r, _) -> walk ~pos:i ~bound:Sset.empty r) entries;
    walk ~pos:(List.length entries) ~bound:Sset.empty body;
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  end
