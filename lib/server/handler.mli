(** Request execution against warm sessions.  One handler lives inside
    one worker domain and lazily creates (then keeps warm) a session
    per distinct {!Fg_core.Session.Config.t} a request denotes
    (prelude × resolution mode × backend), so a worker pays the
    prelude check once, not once per request.

    [run] payloads are rendered by {!Fg_core.Jsonview.json_of_run_report}
    — the same code path as one-shot [fgc run --format=json] — so a
    served response is byte-identical to a one-shot run. *)

type t

(** [fuel] bounds both evaluators of every served [run] request, so a
    divergent program cannot pin a worker forever (it reports the
    FG0601 fuel diagnostic instead).

    [disk] attaches the daemon's shared on-disk unit store behind this
    worker's memory cache; [peers] additionally attaches the cache
    peer tier — each [(name, address)] is another daemon whose disk
    store is consulted over the wire ([cache_get]) and populated on
    fresh checks ([cache_put]).  Keys route to peers on a
    consistent-hash ring keyed by peer name, so every member of a farm
    agrees on placement; a peer that fails is benched for a few
    seconds and retried, and every peer failure degrades silently to
    local compilation.

    [unit_cache_capacity] bounds this worker's compilation-unit cache
    (absent = {!Fg_core.Unit.default_capacity}); the server supplies
    it when profile-driven auto-sizing picked a different bound.
    [profile] is the server's default workload profile, consulted by
    [guided]-backend sessions whose request ships no profile of its
    own. *)
val create :
  ?fuel:int -> ?disk:Fg_core.Diskcache.t ->
  ?peers:(string * Protocol.address) list -> ?unit_cache_capacity:int ->
  ?profile:Fg_util.Profile.t -> unit -> t

(** Eagerly build the standard-prelude session (workers call this at
    startup so the first request doesn't pay the prelude check). *)
val warm : t -> unit

(** Counters of this worker's compilation-unit cache (shared by all of
    its sessions); safe to read from any domain. *)
val cache_stats : t -> Fg_core.Unit.stats

(** Execute one program-shaped request ([check | run | translate |
    fuzz_one]); control requests ([stats | shutdown]) are answered by
    the pool and must not reach a handler.  Never raises: diagnostics
    and unexpected exceptions come back as [Failed] with a
    diagnostics-shaped payload. *)
val handle_safe : t -> Protocol.request -> Protocol.status * string
