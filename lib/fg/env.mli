(** Typing environments for System FG — the paper's four-part Γ
    (term-variable types, type variables, concepts, models) extended
    with type equalities (Section 5) — plus model resolution, including
    the parameterized-model extension. *)

open Ast
module Smap := Fg_util.Names.Smap

type model_entry = {
  me_concept : string;
  me_params : string list;
      (** binders of a parameterized model; empty for ground models *)
  me_constrs : constr list;  (** a parameterized model's context *)
  me_args : ty list;  (** modeled types; patterns when parameterized *)
  me_dict : string;  (** dictionary variable in the System F output *)
  me_path : int list;  (** projection path to this model's dictionary *)
  me_assoc : ty Smap.t;  (** associated-type assignments *)
  me_proxy : bool;  (** true for where-clause proxies *)
}

(** A successful lookup: the entry plus, for parameterized models, the
    matching substitution for its parameters. *)
type found_model = { fm_entry : model_entry; fm_subst : (string * ty) list }

type t = {
  vars : ty Smap.t;
  tyvars : Fg_util.Names.Sset.t;
  concepts : concept_decl Smap.t;
  models : model_entry list;  (** newest first; lookup order = shadowing *)
  named_models : model_entry Smap.t;
      (** named models (Section 6): declared but only active under
          [using] *)
  eq : Equality.t;
  gensym : Fg_util.Gensym.t;
  resolution : Resolution.mode;
  escape_check : bool;
      (** enforce the CPT side condition [c ∉ CV(τ)]; on by default *)
  global_models : (string * ty list) list ref;
      (** every model ever declared — the Global ablation's overlap set *)
  scope_gen : int;
      (** names this environment's (models, eq) pair; bumped by every
          extension that can change what {!lookup_model} sees *)
  gen_supply : int ref;  (** shared, monotone generation supply *)
  resolve_cache : (int * string * ty list, found_model option) Hashtbl.t;
      (** memoized model resolution keyed on (scope generation,
          concept, argument types); shared by all environments derived
          from one {!create} *)
  diag : Fg_util.Diag.engine ref;
      (** warning sink shared by all environments derived from one
          {!create}; recovering drivers swap in their own engine for
          the duration of a run *)
  family : int;
      (** uniquely names the {!create} call this environment derives
          from; cached compilation units capture environments and are
          only replayable under the same family *)
}

val create : ?resolution:Resolution.mode -> ?escape_check:bool -> unit -> t

(** {1 Extension} *)

val bind_var : t -> string -> ty -> t
val bind_tyvars : t -> string list -> t
val bind_concept : t -> concept_decl -> t
val bind_model : t -> model_entry -> t
val bind_named_model : t -> string -> model_entry -> t
val lookup_named_model : t -> string -> model_entry option

(** Extend the equality context (persistent). *)
val assume : t -> ty -> ty -> t

val assume_all : t -> (ty * ty) list -> t

(** {1 Lookup} *)

val lookup_var : t -> string -> ty option
val tyvar_in_scope : t -> string -> bool
val lookup_concept : t -> string -> concept_decl option
val lookup_concept_exn : ?loc:Fg_util.Loc.t -> t -> string -> concept_decl

(** Names in scope, for nearest-name suggestions. *)
val concept_names : t -> string list

val var_names : t -> string list

(** Normalize a type by resolving associated-type projections through
    the models in scope (parameterized models are schematic, so their
    projections are resolved here by rewriting rather than by equations
    in the congruence closure).  Depth-fused. *)
val normalize : ?loc:Fg_util.Loc.t -> ?depth:int -> t -> ty -> ty

(** Find the innermost model of [c<args>]: ground models and proxies
    match up to the equality relation; parameterized models match by
    one-way pattern matching with their context discharged recursively.
    Innermost-first search implements lexical shadowing. *)
val lookup_model :
  ?loc:Fg_util.Loc.t -> ?depth:int -> t -> string -> ty list ->
  found_model option

val lookup_model_exn :
  ?loc:Fg_util.Loc.t -> t -> string -> ty list -> found_model

(** All models in scope for a concept (diagnostics). *)
val models_of_concept : t -> string -> model_entry list

(** Candidate-model notes for a failed resolution of concept [c]. *)
val no_model_notes : t -> string -> Fg_util.Diag.note list

(** Type equality / representatives after {!normalize} — the operations
    the checker uses everywhere. *)
val ty_eq : ?loc:Fg_util.Loc.t -> t -> ty -> ty -> bool

val ty_eq_list : ?loc:Fg_util.Loc.t -> t -> ty list -> ty list -> bool
val ty_repr : ?loc:Fg_util.Loc.t -> t -> ty -> ty

(** Fresh name from the environment's shared supply. *)
val fresh : t -> string -> string
