(** Diagnostics: located errors and warnings produced by every phase of
    the pipeline.

    A {!diagnostic} carries a stable error code ([FG0xxx]), a severity,
    a source span, a phase tag, a rendered message and zero or more
    attached notes (hints, candidate lists, suggestions).  Phases that
    cannot recover raise {!Error}; recovering drivers accumulate
    diagnostics into an {!engine} and keep going, so a single
    invocation can report many independent errors.  Internal invariant
    violations use {!ice} ("internal compiler error") so that bugs in
    the implementation are distinguishable from bugs in the input
    program. *)

type phase =
  | Lexer
  | Parser
  | Wf  (** well-formedness of types, concepts and models *)
  | Typecheck
  | Resolve  (** model lookup / where-clause satisfaction *)
  | Translate
  | Eval
  | Server  (** the [fgc serve] daemon: timeouts, overload, protocol *)
  | Config  (** driver configuration: flags, backend names, capacities *)
  | Internal

let phase_name = function
  | Lexer -> "lex error"
  | Parser -> "parse error"
  | Wf -> "ill-formed"
  | Typecheck -> "type error"
  | Resolve -> "resolution error"
  | Translate -> "translation error"
  | Eval -> "runtime error"
  | Server -> "server error"
  | Config -> "configuration error"
  | Internal -> "internal error"

(* Every phase has a generic fallback code; specific failure shapes get
   their own code at the raise site.  The registry lives in
   docs/LANGUAGE.md ("Diagnostics") and programs/errors/ pins the codes
   in CI — pick a fresh number rather than repurposing an old one. *)
let default_code = function
  | Lexer -> "FG0001"
  | Parser -> "FG0101"
  | Wf -> "FG0201"
  | Typecheck -> "FG0301"
  | Resolve -> "FG0401"
  | Translate -> "FG0501"
  | Eval -> "FG0601"
  | Server -> "FG0801"
  | Config -> "FG1001"
  | Internal -> "FG0901"

type severity = Err | Warn

let severity_name = function Err -> "error" | Warn -> "warning"

type note = { n_loc : Loc.t; n_msg : string }

type diagnostic = {
  code : string;  (** stable [FG0xxx] code *)
  severity : severity;
  phase : phase;
  loc : Loc.t;
  message : string;
  notes : note list;
}

exception Error of diagnostic

let note ?(loc = Loc.dummy) fmt =
  Fmt.kstr (fun n_msg -> { n_loc = loc; n_msg }) fmt

let suggest name = note "did you mean '%s'?" name

(* Warnings render as "warning[FG0xxx]"; errors keep the phase label
   ("type error[FG0xxx]") which is more informative than a bare
   "error". *)
let label d =
  match d.severity with Err -> phase_name d.phase | Warn -> "warning"

let pp_note ppf n =
  if Loc.is_dummy n.n_loc then Fmt.pf ppf "@\n  note: %s" n.n_msg
  else Fmt.pf ppf "@\n  note (%a): %s" Loc.pp n.n_loc n.n_msg

let pp ppf d =
  (* Dummy spans come from synthesized nodes; printing "<none>:1:1"
     would point nowhere, so the location is suppressed. *)
  if Loc.is_dummy d.loc then
    Fmt.pf ppf "%s[%s]: %s" (label d) d.code d.message
  else Fmt.pf ppf "%a: %s[%s]: %s" Loc.pp d.loc (label d) d.code d.message;
  List.iter (pp_note ppf) d.notes

let to_string d = Fmt.str "%a" pp d

let json_of_pos (p : Loc.pos) =
  Json.Obj [ ("line", Json.Int p.line); ("col", Json.Int p.col) ]

let json_of_span (s : Loc.t) =
  if Loc.is_dummy s then Json.Null
  else
    Json.Obj
      [
        ("file", Json.Str s.file);
        ("start", json_of_pos s.start_pos);
        ("end", json_of_pos s.end_pos);
      ]

let to_json d =
  Json.Obj
    [
      ("code", Json.Str d.code);
      ("severity", Json.Str (severity_name d.severity));
      ("phase", Json.Str (phase_name d.phase));
      ("message", Json.Str d.message);
      ("span", json_of_span d.loc);
      ( "notes",
        Json.List
          (List.map
             (fun n ->
               Json.Obj
                 [
                   ("message", Json.Str n.n_msg); ("span", json_of_span n.n_loc);
                 ])
             d.notes) );
    ]

let make ?code ?(notes = []) ?(loc = Loc.dummy) ?(severity = Err) phase message
    =
  let code = match code with Some c -> c | None -> default_code phase in
  (* Every diagnostic construction is a coverage point: the guided
     fuzzer hunts for inputs that reach codes it has not seen. *)
  Coverage.hit_key ("diag." ^ code);
  { code; severity; phase; loc; message; notes }

let error ?code ?notes ?loc phase fmt =
  Fmt.kstr
    (fun message -> raise (Error (make ?code ?notes ?loc phase message)))
    fmt

let lex_error ?code ?notes ?loc fmt = error ?code ?notes ?loc Lexer fmt
let parse_error ?code ?notes ?loc fmt = error ?code ?notes ?loc Parser fmt
let wf_error ?code ?notes ?loc fmt = error ?code ?notes ?loc Wf fmt
let type_error ?code ?notes ?loc fmt = error ?code ?notes ?loc Typecheck fmt
let resolve_error ?code ?notes ?loc fmt = error ?code ?notes ?loc Resolve fmt

let translate_error ?code ?notes ?loc fmt =
  error ?code ?notes ?loc Translate fmt

let eval_error ?code ?notes ?loc fmt = error ?code ?notes ?loc Eval fmt
let server_error ?code ?notes ?loc fmt = error ?code ?notes ?loc Server fmt
let config_error ?code ?notes ?loc fmt = error ?code ?notes ?loc Config fmt

(** Internal invariant violation; not attributable to the input program. *)
let ice fmt = error Internal fmt

(** [guard cond phase fmt ...] raises unless [cond] holds. *)
let guard cond ?loc phase fmt =
  if cond then Fmt.kstr (fun _ -> ()) fmt else error ?loc phase fmt

(** Run [f ()] and capture any diagnostic as [Error d]. *)
let protect f = try Ok (f ()) with Error d -> Stdlib.Error d

let protect_msg f =
  match protect f with Ok v -> Ok v | Error d -> Stdlib.Error (to_string d)

(* ------------------------------------------------------------------ *)
(* Accumulating engine                                                 *)

type engine = {
  mutable rev_diags : diagnostic list;
  mutable errors : int;
  mutable warnings : int;
}

let engine () = { rev_diags = []; errors = 0; warnings = 0 }

let report eng d =
  eng.rev_diags <- d :: eng.rev_diags;
  match d.severity with
  | Err -> eng.errors <- eng.errors + 1
  | Warn -> eng.warnings <- eng.warnings + 1

let warn eng ?code ?notes ?loc phase fmt =
  Fmt.kstr
    (fun message ->
      report eng (make ?code ?notes ?loc ~severity:Warn phase message))
    fmt

let diagnostics eng = List.rev eng.rev_diags
let error_count eng = eng.errors
let warning_count eng = eng.warnings
let has_errors eng = eng.errors > 0

(** Run [f ()]; a raised diagnostic is reported to [eng] and the result
    becomes [None]. *)
let capture eng f =
  try Some (f ()) with Error d -> report eng d; None
