(* Decision-point coverage map (see the interface).

   Layout: a probe is a small array of shard counters; a hit increments
   the shard picked by the current domain's id, so parallel batch
   domains touch different cache lines almost always.  The registry is
   an immutable string map swapped in with a CAS loop — registration is
   rare (module init plus first sight of each diagnostic code), hits
   are the hot path and never touch the registry. *)

module Smap = Map.Make (String)

let n_shards = 16 (* power of two: shard pick is a mask *)

type probe = { key : string; shards : int Atomic.t array }

let make_probe key =
  { key; shards = Array.init n_shards (fun _ -> Atomic.make 0) }

let registry : probe Smap.t Atomic.t = Atomic.make Smap.empty

let rec probe key =
  let current = Atomic.get registry in
  match Smap.find_opt key current with
  | Some p -> p
  | None ->
      let p = make_probe key in
      if Atomic.compare_and_set registry current (Smap.add key p current)
      then p
      else probe key (* lost the race: someone else may have added it *)

let hit p =
  let shard = (Domain.self () :> int) land (n_shards - 1) in
  Atomic.incr p.shards.(shard)

let hit_key key = hit (probe key)

type map = (string * int) list

let probe_count p =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 p.shards

let snapshot () =
  Smap.fold
    (fun key p acc ->
      let n = probe_count p in
      if n > 0 then (key, n) :: acc else acc)
    (Atomic.get registry) []
  |> List.rev (* Smap folds ascending; the reversed accumulator is sorted *)

(* Merge two sorted assoc lists with a combining function; entries
   that combine to <= 0 are dropped, preserving the map invariant. *)
let rec combine f a b =
  match (a, b) with
  | [], rest | rest, [] ->
      List.filter_map
        (fun (k, n) ->
          let n = f n 0 in
          if n > 0 then Some (k, n) else None)
        rest
  | (ka, na) :: ta, (kb, nb) :: tb ->
      let c = String.compare ka kb in
      if c < 0 then
        let n = f na 0 in
        if n > 0 then (ka, n) :: combine f ta b else combine f ta b
      else if c > 0 then
        let n = f 0 nb in
        if n > 0 then (kb, n) :: combine f a tb else combine f a tb
      else
        let n = f na nb in
        if n > 0 then (ka, n) :: combine f ta tb else combine f ta tb

let merge a b = combine ( + ) a b
let diff later earlier = combine (fun l e -> l - e) later earlier
let distinct m = List.length m
let total m = List.fold_left (fun acc (_, n) -> acc + n) 0 m
let keys m = List.map fst m

let to_text m =
  let b = Buffer.create (16 * List.length m) in
  List.iter
    (fun (k, n) ->
      Buffer.add_string b k;
      Buffer.add_char b '\t';
      Buffer.add_string b (string_of_int n);
      Buffer.add_char b '\n')
    m;
  Buffer.contents b

let of_text s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '\t' with
         | None -> None
         | Some i -> (
             let key = String.sub line 0 i in
             let count =
               String.sub line (i + 1) (String.length line - i - 1)
             in
             match int_of_string_opt count with
             | Some n when n > 0 && key <> "" -> Some (key, n)
             | _ -> None))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.fold_left
       (fun acc (k, n) ->
         match acc with
         | (k', n') :: rest when k' = k -> (k', n' + n) :: rest
         | _ -> (k, n) :: acc)
       []
  |> List.rev

let to_json m = Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) m)

let of_json = function
  | Json.Obj fields ->
      List.filter_map
        (function
          | k, Json.Int n when n > 0 && k <> "" -> Some (k, n) | _ -> None)
        fields
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  | _ -> []

let reset () =
  Smap.iter
    (fun _ p -> Array.iter (fun c -> Atomic.set c 0) p.shards)
    (Atomic.get registry)
