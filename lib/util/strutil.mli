(** Small string utilities shared by the driver, the REPL and tests. *)

(** [contains ~needle hay] is true iff [needle] occurs in [hay] as a
    contiguous substring.  The empty needle is contained in every
    string. *)
val contains : needle:string -> string -> bool

(** Levenshtein edit distance (insert / delete / substitute, unit
    costs). *)
val levenshtein : string -> string -> int

(** [hex_encode s] — lowercase hexadecimal rendering of [s]'s bytes
    (the wire encoding of binary cache blobs). *)
val hex_encode : string -> string

(** [hex_decode s] — the bytes [s] encodes, or [None] when [s] is not
    even-length hexadecimal.  Inverse of {!hex_encode}. *)
val hex_decode : string -> string option

(** [nearest ~candidates name] is the candidate closest to [name] in
    edit distance, provided the distance is small relative to the
    length of [name] (at most 2, and strictly less than the length);
    [None] when nothing is plausibly a typo for [name] (in particular
    when [candidates] is empty).  A candidate equal to [name] up to
    ASCII letter case is always plausible and preferred over any
    genuine edit.  Ties go to the earliest candidate. *)
val nearest : candidates:string list -> string -> string option
