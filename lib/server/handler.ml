(** Request execution against warm sessions (see the interface).

    One handler lives inside one worker domain and owns up to four
    sessions — one per (prelude, resolution-mode) combination — each
    created lazily on the first request that needs it and kept warm
    from then on, so the prelude is parsed and checked once per worker
    rather than once per request. *)

open Fg_util
module C = Fg_core

type t = {
  fuel : int option;
  cache : C.Unit.cache;
      (** one compilation-unit cache shared by every session this
          worker owns: bounded memory and unified counters across the
          (prelude, resolution-mode) combinations *)
  mutable sessions : ((bool * bool) * C.Session.t) list;
}

let create ?fuel () = { fuel; cache = C.Unit.create_cache (); sessions = [] }

let session_for t ~prelude ~global_models =
  let key = (prelude, global_models) in
  match List.assoc_opt key t.sessions with
  | Some s -> s
  | None ->
      let resolution =
        if global_models then C.Resolution.Global else C.Resolution.Lexical
      in
      let s =
        if prelude then
          C.Session.create ~resolution ~prelude:C.Prelude.full ~cache:t.cache
            ()
        else C.Session.create ~resolution ~cache:t.cache ()
      in
      t.sessions <- (key, s) :: t.sessions;
      s

let cache_stats t = C.Unit.stats t.cache

let warm t = ignore (session_for t ~prelude:true ~global_models:false)

(* The check/translate payloads mirror the run payload's envelope
   ({"file", "ok", ..., "diagnostics"}) so clients can switch on the
   same fields for every kind. *)

let check_payload s ~file source =
  match Diag.protect (fun () -> C.Session.typecheck ~file s source) with
  | Ok ty ->
      Json.Obj
        [ ("file", Json.Str file); ("ok", Json.Bool true);
          ("type", Json.Str (C.Pretty.ty_to_string ty));
          ("diagnostics", Json.List []) ]
  | Error d -> C.Jsonview.json_of_failure ~file d

let translate_payload s ~file source =
  match Diag.protect (fun () -> C.Session.translate ~file s source) with
  | Ok f ->
      Json.Obj
        [ ("file", Json.Str file); ("ok", Json.Bool true);
          ("systemf", Json.Str (Fg_systemf.Pretty.exp_to_string f));
          ("diagnostics", Json.List []) ]
  | Error d -> C.Jsonview.json_of_failure ~file d

(* Execute one program-shaped request; Stats and Shutdown are control
   requests the pool answers itself and must not reach here. *)
let handle t (req : Protocol.request) : Protocol.status * string =
  let file = req.file in
  match req.kind with
  | Protocol.Stats | Protocol.Shutdown ->
      Diag.ice "control request %s reached a worker handler"
        (Protocol.kind_name req.kind)
  | Protocol.FuzzOne ->
      let cfg =
        { C.Fuzz.seed = req.seed; count = 1; size = max 1 req.size;
          mutants = max 0 req.mutants }
      in
      let report = C.Fuzz.run ~domains:1 cfg in
      let status =
        if report.C.Fuzz.r_failures = [] then Protocol.Ok_
        else Protocol.Failed
      in
      (status, Json.to_string (C.Fuzz.report_to_json report))
  | Protocol.Check | Protocol.Run | Protocol.Translate -> (
      let s =
        session_for t ~prelude:req.prelude ~global_models:req.global_models
      in
      match req.kind with
      | Protocol.Check ->
          let payload = check_payload s ~file req.source in
          let ok = Json.bool_field "ok" payload = Some true in
          ((if ok then Protocol.Ok_ else Protocol.Failed),
           Json.to_string payload)
      | Protocol.Translate ->
          let payload = translate_payload s ~file req.source in
          let ok = Json.bool_field "ok" payload = Some true in
          ((if ok then Protocol.Ok_ else Protocol.Failed),
           Json.to_string payload)
      | _ ->
          (* Run: the recovering full pipeline, rendered by the same
             code path as one-shot `fgc run --format=json`. *)
          let report =
            C.Session.run_full ~file ?fuel:t.fuel s req.source
          in
          let payload = C.Jsonview.json_of_run_report ~file report in
          let status =
            match report.C.Session.outcome with
            | Some _ -> Protocol.Ok_
            | None -> Protocol.Failed
          in
          (status, Json.to_string payload))

(* Defensive wrapper: a worker must survive anything a request throws,
   including non-diagnostic exceptions from deep inside the pipeline. *)
let handle_safe t req =
  match handle t req with
  | result -> result
  | exception Diag.Error d ->
      (Protocol.Failed,
       Json.to_string (C.Jsonview.json_of_failure ~file:req.Protocol.file d))
  | exception exn ->
      ( Protocol.Failed,
        Protocol.error_payload ~file:req.Protocol.file ~code:"FG0901"
          "uncaught exception while serving request: %s"
          (Printexc.to_string exn) )
