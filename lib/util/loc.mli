(** Source locations and spans.  Tokens and AST nodes carry spans so
    diagnostics point back into the source; programmatically built
    programs use {!dummy}. *)

type pos = {
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  offset : int;  (** 0-based byte offset *)
}

type span = { file : string; start_pos : pos; end_pos : pos }
type t = span

val start_pos_of_file : pos
val dummy : t
val is_dummy : t -> bool
val make : file:string -> start_pos:pos -> end_pos:pos -> t

val cmp_pos : pos -> pos -> int
(** Position order: by byte offset, then line, then column. *)

(** Earlier start to later end of the two; a dummy side is ignored.
    The result is always well-formed when both sides are. *)
val merge : t -> t -> t

val is_well_formed : t -> bool
(** start <= end (dummy spans are trivially well-formed). *)

val contains : t -> offset:int -> bool
(** Byte offset inside the span (zero-width spans cover one byte);
    dummy spans contain nothing. *)

val nests : parent:t -> child:t -> bool
(** Child contained in parent, or starting at/after the parent's end
    (declaration headers span only their own syntax; the body
    continuation follows them). *)

val pp_pos : pos Fmt.t
val pp : t Fmt.t
val to_string : t -> string
