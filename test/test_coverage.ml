(* The coverage instrument under parallelism and serialization: probes
   are the guided fuzzer's only view of the checker, so they must not
   drop hits across domains, and the map serializations must round-trip
   byte-identically — the fleet merge and the on-disk corpus both
   depend on two processes agreeing about a map. *)

open Fg_util

(* Registration is idempotent: both racers get the same probe, and
   hits through either land on the same counter. *)
let test_probe_registration () =
  let p1 = Coverage.probe "test.reg.same" in
  let p2 = Coverage.probe "test.reg.same" in
  let before = Coverage.snapshot () in
  Coverage.hit p1;
  Coverage.hit p2;
  Coverage.hit_key "test.reg.same";
  let d = Coverage.diff (Coverage.snapshot ()) before in
  Alcotest.(check (list (pair string int)))
    "three hits on one key"
    [ ("test.reg.same", 3) ]
    (List.filter (fun (k, _) -> k = "test.reg.same") d)

(* Four domains hammering two probes (one static, one dynamically
   keyed, registered mid-flight from every domain): exact counts. *)
let test_shard_merge_parallel () =
  let p = Coverage.probe "test.par.static" in
  let before = Coverage.snapshot () in
  let n_domains = 4 and per_domain = 100_000 in
  let worker () =
    for _ = 1 to per_domain do
      Coverage.hit p;
      Coverage.hit_key "test.par.dynamic"
    done
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let d = Coverage.diff (Coverage.snapshot ()) before in
  Alcotest.(check int) "no lost static hits" (n_domains * per_domain)
    (List.assoc "test.par.static" d);
  Alcotest.(check int) "no lost dynamic hits" (n_domains * per_domain)
    (List.assoc "test.par.dynamic" d)

let test_merge_diff_algebra () =
  let a = [ ("a", 1); ("b", 2) ] and b = [ ("b", 3); ("c", 4) ] in
  Alcotest.(check (list (pair string int)))
    "merge is a pointwise sum"
    [ ("a", 1); ("b", 5); ("c", 4) ]
    (Coverage.merge a b);
  Alcotest.(check (list (pair string int)))
    "diff keeps only growth"
    [ ("c", 4) ]
    (Coverage.diff (Coverage.merge a b) (Coverage.merge a [ ("b", 3) ]));
  Alcotest.(check int) "distinct" 3 (Coverage.distinct (Coverage.merge a b));
  Alcotest.(check int) "total" 10 (Coverage.total (Coverage.merge a b));
  Alcotest.(check (list string)) "keys sorted" [ "a"; "b"; "c" ]
    (Coverage.keys (Coverage.merge b a))

(* The wire/disk stability contract: text and JSON forms round-trip,
   equal maps serialize byte-identically, and hostile text input still
   yields a valid (sorted, positive) map. *)
let test_serialization_roundtrip () =
  let m = [ ("check.app.ground", 41); ("diag.FG0302", 2); ("z.last", 1) ] in
  Alcotest.(check (list (pair string int)))
    "text round-trip" m
    (Coverage.of_text (Coverage.to_text m));
  Alcotest.(check string) "text form is stable"
    "check.app.ground\t41\ndiag.FG0302\t2\nz.last\t1\n" (Coverage.to_text m);
  Alcotest.(check (list (pair string int)))
    "json round-trip" m
    (Coverage.of_json (Coverage.to_json m));
  Alcotest.(check (list (pair string int)))
    "unsorted duplicated text is normalized"
    [ ("a", 3); ("b", 1) ]
    (Coverage.of_text "b\t1\na\t1\nnot a line\na\t2\nneg\t-4\n")

let suite =
  [
    Alcotest.test_case "probe registration" `Quick test_probe_registration;
    Alcotest.test_case "shard merge under 4 domains" `Quick
      test_shard_merge_parallel;
    Alcotest.test_case "merge/diff algebra" `Quick test_merge_diff_algebra;
    Alcotest.test_case "serialization round-trips" `Quick
      test_serialization_roundtrip;
  ]
