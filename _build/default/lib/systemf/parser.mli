(** Recursive-descent parser for System F concrete syntax.  Infix
    operators are sugar for the primitives ([a + b] parses as
    [iadd(a, b)]); primitive names are reserved identifiers. *)

val exp_of_string : ?file:string -> string -> Ast.exp
val ty_of_string : ?file:string -> string -> Ast.ty
