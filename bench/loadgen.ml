(* Load generator for the fgc serve daemon.

   Starts a daemon in-process on a private unix socket, streams the
   whole programs/ corpus through ONE batch connection until the
   request target is reached, and checks every response byte-for-byte
   against the one-shot `fgc run --format=json` output for its file.
   Then it times the one-shot binary on a sample of the same corpus
   and reports the throughput ratio — the daemon must beat one-shot by
   at least 5x (it amortizes process startup and the prelude across
   requests; one-shot pays both per program).

   Run:  dune exec bench/loadgen.exe            (10,000 requests)
         LOADGEN_REQUESTS=300 dune exec bench/loadgen.exe   (CI smoke)

   Exits nonzero on any byte mismatch, failed request, or a speedup
   below the 5x bar.

   LOADGEN_MODE=zipf instead runs the profile-guided experiment: a
   Zipf-skewed stream over a synthetic working set larger than the
   default per-worker unit cache, served three times — once to record
   a workload profile, once with the default config (the tail thrashes
   the cache), once with the recorded profile feeding startup
   auto-sizing.  The profiled run must beat the default run. *)

open Fg_server

let requests_target =
  match Sys.getenv_opt "LOADGEN_REQUESTS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 10_000)
  | None -> 10_000

let one_shot_sample =
  match Sys.getenv_opt "LOADGEN_ONESHOT_SAMPLE" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 20)
  | None -> 20

let programs_dir =
  if Sys.file_exists "programs" then "programs"
  else if Sys.file_exists "../programs" then "../programs"
  else failwith "loadgen: cannot find the programs/ corpus from the cwd"

let fgc_exe =
  let candidates =
    [ "_build/default/bin/fgc.exe"; "../bin/fgc.exe"; "bin/fgc.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "loadgen: cannot find fgc.exe (build the project first)"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus =
  Sys.readdir programs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fg")
  |> List.sort String.compare
  |> List.map (fun f ->
         let path = Filename.concat programs_dir f in
         (path, read_file path))

let one_shot_json path =
  let out_file = Filename.temp_file "loadgen" ".json" in
  let cmd =
    Printf.sprintf "%s run -p --format=json %s > %s 2>/dev/null"
      (Filename.quote fgc_exe) (Filename.quote path)
      (Filename.quote out_file)
  in
  ignore (Sys.command cmd);
  let out = read_file out_file in
  Sys.remove out_file;
  out

(* ------------------------------------------------------------------ *)
(* Zipf mode: profile-guided serve vs. the default configuration.     *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try max 1 (int_of_string s) with _ -> default)
  | None -> default

let zipf_distinct = env_int "LOADGEN_ZIPF_DISTINCT" 640
let zipf_requests = env_int "LOADGEN_ZIPF_REQUESTS" 4000
let zipf_workers = env_int "LOADGEN_ZIPF_WORKERS" 2
let zipf_depth = env_int "LOADGEN_ZIPF_DEPTH" 20

(* Shared concept/model units (identical across every variant, so the
   cache holds them once) plus a variant-unique declaration that
   resolves equality at [list^depth int] through the parameterized
   model: checking that declaration builds a [depth]-deep dictionary
   chain, unifying types of size O(depth) at every level — an O(n²)
   type-level cost against an O(n) source.  A unit-cache miss re-pays
   the whole resolution; a hit skips it.  Distinct [i] means a distinct
   declaration name, hence a distinct compilation unit. *)
let zipf_source i =
  let rec ty k = if k = 0 then "int" else "list (" ^ ty (k - 1) ^ ")" in
  let nil k =
    if k = 1 then "nil[int]" else Printf.sprintf "nil[%s]" (ty (k - 1))
  in
  let t = ty zipf_depth and n = nil zipf_depth in
  Printf.sprintf
    "concept Eq2<t> { eq : fn(t, t) -> bool; } in\n\
     model Eq2<int> { eq = ieq; } in\n\
     model <t> where Eq2<t> => Eq2<list t> {\n\
    \  eq = fix (go : fn(list t, list t) -> bool) =>\n\
    \    fun (a : list t, b : list t) =>\n\
    \      if null[t](a) then null[t](b)\n\
    \      else if null[t](b) then false\n\
    \      else Eq2<t>.eq(car[t](a), car[t](b)) && go(cdr[t](a), cdr[t](b));\n\
     } in\n\
     let veq_%d = fun (a : %s, b : %s) => Eq2<%s>.eq(a, b) in\n\
     veq_%d(%s, %s)"
    i t t t i n n

(* A deterministic Zipf-skewed request stream with a scan underneath:
   60%% of requests draw from Zipf(s=1) over the working set (the hot
   head an LRU keeps resident on its own), the other 40%% sweep the
   whole set cyclically — the batch-traffic component that cycles cold
   units through a too-small cache and is exactly what profiled
   eviction pressure detects.  Seeded PRNG so every phase (and every
   CI run) serves the byte-identical stream. *)
let zipf_stream () =
  let n = zipf_distinct in
  let sources = Array.init n zipf_source in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. float_of_int (r + 1));
    cdf.(r) <- !acc
  done;
  let st = Random.State.make [| 0x5eed; zipf_distinct; zipf_requests |] in
  let pick_zipf () =
    let u = Random.State.float st !acc in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then go (mid + 1) hi else go lo mid
    in
    go 0 (n - 1)
  in
  let sweep = ref 0 in
  let pick () =
    if Random.State.float st 1.0 < 0.6 then pick_zipf ()
    else begin
      let r = !sweep in
      sweep := (r + 1) mod n;
      r
    end
  in
  List.init zipf_requests (fun i ->
      let r = pick () in
      Protocol.request ~id:(i + 1)
        ~file:(Printf.sprintf "zipf_%d.fg" r)
        ~source:sources.(r) ~prelude:false Protocol.Run)

(* Serve the stream through a fresh in-process daemon; returns the
   batch wall time and the number of non-Ok responses. *)
let zipf_serve ~label ?profile ?profile_out reqs =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fgc_loadgen_%s_%d.sock" label (Unix.getpid ()))
  in
  let cfg =
    {
      (Server.default_config (`Unix socket)) with
      Server.workers = zipf_workers;
      profile;
      profile_out;
    }
  in
  let srv = Server.create cfg in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown srv;
      Thread.join th;
      Fg_util.Profile.set_collecting false;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      let c = Client.connect (`Unix socket) in
      let t0 = Unix.gettimeofday () in
      let resps = Client.batch c reqs in
      let dt = Unix.gettimeofday () -. t0 in
      (match
         Fg_util.Json.of_string (Client.stats c).Protocol.r_payload
       with
      | Ok j -> (
          match Fg_util.Json.mem "unit_cache" j with
          | Some uc ->
              let f k =
                match
                  Option.bind (Fg_util.Json.mem "totals" uc)
                    (Fg_util.Json.int_field k)
                with
                | Some n -> n
                | None -> -1
              in
              let capacity =
                match Fg_util.Json.mem "workers" uc with
                | Some (Fg_util.Json.List (w :: _)) -> (
                    match Fg_util.Json.int_field "capacity" w with
                    | Some n -> n
                    | None -> -1)
                | _ -> -1
              in
              Printf.printf
                "%-8s: unit cache hits=%d misses=%d evictions=%d capacity=%d\n%!"
                label (f "hits") (f "misses") (f "evictions") capacity
          | None -> ())
      | Error _ -> ());
      Client.close c;
      let bad =
        List.length (List.filter (fun r -> r.Protocol.r_status <> Protocol.Ok_) resps)
        + (List.length reqs - List.length resps)
      in
      Printf.printf "%-8s: %.2fs, %.0f req/s%s\n%!" label dt
        (float_of_int (List.length reqs) /. dt)
        (if bad = 0 then "" else Printf.sprintf ", %d BAD responses" bad);
      (dt, bad))

let zipf_main () =
  let module Profile = Fg_util.Profile in
  Printf.printf
    "loadgen(zipf): %d requests over %d distinct programs, %d workers, \
     unit-cache default %d\n%!"
    zipf_requests zipf_distinct zipf_workers Fg_core.Unit.default_capacity;
  let reqs = zipf_stream () in
  let failures = ref 0 in
  let profile_path = Filename.temp_file "fgc_loadgen_profile" ".json" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists profile_path then Sys.remove profile_path)
    (fun () ->
      (* Phase 1 (untimed): record the workload profile. *)
      let _, bad1 = zipf_serve ~label:"record" ~profile_out:profile_path reqs in
      failures := !failures + bad1;
      let p = Profile.load profile_path in
      let sizing =
        Profile.auto_size p
          ~default_capacity:Fg_core.Unit.default_capacity
          ~workers:zipf_workers
      in
      Printf.printf
        "profile : %d programs, %d distinct instantiations, cache \
         evictions=%d -> capacity %s\n%!"
        p.Profile.p_programs
        (List.length p.Profile.p_instantiations)
        p.Profile.p_unit_cache.Profile.c_evictions
        (match sizing.Profile.sz_unit_cache_capacity with
        | Some c -> string_of_int c
        | None -> "unchanged");
      if p.Profile.p_unit_cache.Profile.c_evictions = 0 then begin
        incr failures;
        Printf.eprintf
          "loadgen(zipf): the working set never thrashed the default \
           cache — the experiment is vacuous\n%!"
      end;
      (* Phase 2: the default configuration pays the tail thrash. *)
      let t_default, bad2 = zipf_serve ~label:"default" reqs in
      failures := !failures + bad2;
      (* Phase 3: the profile feeds startup auto-sizing. *)
      let t_guided, bad3 = zipf_serve ~label:"profiled" ~profile:p reqs in
      failures := !failures + bad3;
      let speedup = t_default /. t_guided in
      Printf.printf "speedup : %.2fx (profiled over default)\n%!" speedup;
      if speedup <= 1.0 then begin
        incr failures;
        Printf.eprintf
          "loadgen(zipf): profile-guided serve (%.2fs) did not beat the \
           default config (%.2fs)\n%!"
          t_guided t_default
      end);
  if !failures > 0 then begin
    Printf.eprintf "loadgen(zipf): FAILED (%d problem(s))\n%!" !failures;
    exit 1
  end;
  print_endline "loadgen(zipf): profile-guided serve beat the default config"

let corpus_main () =
  if corpus = [] then failwith "loadgen: empty corpus";
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fgc_loadgen_%d.sock" (Unix.getpid ()))
  in
  let cfg = Server.default_config (`Unix socket) in
  let srv = Server.create cfg in
  let th = Thread.create Server.run srv in
  let failures = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown srv;
      Thread.join th;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      (* Expected bytes per corpus file, captured once from one-shot. *)
      let expected =
        List.map (fun (path, _) -> (path, one_shot_json path)) corpus
      in
      let n_files = List.length corpus in
      let files = Array.of_list corpus in
      let reqs =
        List.init requests_target (fun i ->
            let path, source = files.(i mod n_files) in
            Protocol.request ~id:(i + 1) ~file:path ~source ~prelude:true
              Protocol.Run)
      in
      Printf.printf "loadgen: %d requests over %d corpus files, %d workers\n%!"
        requests_target n_files cfg.Server.workers;
      let c = Client.connect (`Unix socket) in
      let t0 = Unix.gettimeofday () in
      let resps = Client.batch c reqs in
      let daemon_s = Unix.gettimeofday () -. t0 in
      (* Every response byte-identical to its file's one-shot output
         (the served payload is the one-shot stdout minus the trailing
         newline print_endline adds). *)
      List.iteri
        (fun i (r : Protocol.response) ->
          let path, _ = files.(i mod n_files) in
          let want = List.assoc path expected in
          if r.Protocol.r_payload ^ "\n" <> want then begin
            incr failures;
            if !failures <= 3 then
              Printf.eprintf "loadgen: MISMATCH on request %d (%s)\n%!"
                r.Protocol.r_id path
          end)
        resps;
      if List.length resps <> requests_target then begin
        incr failures;
        Printf.eprintf "loadgen: %d responses for %d requests\n%!"
          (List.length resps) requests_target
      end;
      (* Server-side latency distribution. *)
      (match
         Fg_util.Json.of_string (Client.stats c).Protocol.r_payload
       with
      | Ok j -> (
          match Fg_util.Json.mem "latency" j with
          | Some lat ->
              let f k =
                match Fg_util.Json.mem k lat with
                | Some (Fg_util.Json.Float x) -> x
                | Some (Fg_util.Json.Int x) -> float_of_int x
                | _ -> nan
              in
              Printf.printf
                "daemon  : %.2fs total, %.0f req/s, latency p50=%.2fms \
                 p95=%.2fms p99=%.2fms\n%!"
                daemon_s
                (float_of_int requests_target /. daemon_s)
                (f "p50_ms") (f "p95_ms") (f "p99_ms")
          | None -> ())
      | Error e -> Printf.eprintf "loadgen: stats not JSON: %s\n%!" e);
      Client.close c;
      (* One-shot baseline: a fresh process (and a fresh prelude) per
         program, which is exactly what the daemon amortizes away. *)
      let sample = min one_shot_sample requests_target in
      let t0 = Unix.gettimeofday () in
      for i = 0 to sample - 1 do
        let path, _ = files.(i mod n_files) in
        ignore (one_shot_json path)
      done;
      let oneshot_s = Unix.gettimeofday () -. t0 in
      let oneshot_rate = float_of_int sample /. oneshot_s in
      let daemon_rate = float_of_int requests_target /. daemon_s in
      let speedup = daemon_rate /. oneshot_rate in
      Printf.printf
        "one-shot: %.2fs for %d runs, %.0f req/s\nspeedup : %.1fx\n%!"
        oneshot_s sample oneshot_rate speedup;
      if speedup < 5.0 then begin
        incr failures;
        Printf.eprintf "loadgen: speedup %.1fx is below the 5x bar\n%!"
          speedup
      end);
  if !failures > 0 then begin
    Printf.eprintf "loadgen: FAILED (%d problem(s))\n%!" !failures;
    exit 1
  end;
  print_endline "loadgen: all responses byte-identical, speedup bar met"

let () =
  match Sys.getenv_opt "LOADGEN_MODE" with
  | Some "zipf" -> zipf_main ()
  | _ -> corpus_main ()
