lib/systemf/parser.ml: Ast Fg_syntax Fg_util List Parser_base Prims Token
