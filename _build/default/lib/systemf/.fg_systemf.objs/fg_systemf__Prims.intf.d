lib/systemf/prims.mli: Ast Fg_util
