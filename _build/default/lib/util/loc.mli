(** Source locations and spans.  Tokens and AST nodes carry spans so
    diagnostics point back into the source; programmatically built
    programs use {!dummy}. *)

type pos = {
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  offset : int;  (** 0-based byte offset *)
}

type span = { file : string; start_pos : pos; end_pos : pos }
type t = span

val start_pos_of_file : pos
val dummy : t
val is_dummy : t -> bool
val make : file:string -> start_pos:pos -> end_pos:pos -> t

(** Start of the first to end of the second; a dummy side is ignored. *)
val merge : t -> t -> t

val pp_pos : pos Fmt.t
val pp : t Fmt.t
val to_string : t -> string
