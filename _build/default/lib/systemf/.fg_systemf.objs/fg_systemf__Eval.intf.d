lib/systemf/eval.mli: Ast Fg_util Fmt
