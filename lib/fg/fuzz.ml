(** Property-based fuzzing: generator, shrinker and oracle harness.

    Programs are well typed {e by construction}: the generator only
    combines forms it can type locally (members are instantiated at
    types whose models are in scope, generics are applied at types
    satisfying their whole where clause, recursion is structurally
    guarded), so any program one of the oracles rejects is a compiler
    bug, not a generator artifact.  Everything is derived from
    {!Fg_util.Prng} streams split per program index, so a run is a pure
    function of its configuration. *)

open Fg_util

type config = {
  seed : int;
  count : int;
  size : int;
  mutants : int;
  backend : Backend.t;
  profile : Fg_util.Profile.t option;
  guided : bool;
  corpus_dir : string option;
}

let default_config =
  {
    seed = 0;
    count = 100;
    size = 30;
    mutants = 2;
    backend = Backend.Dict;
    profile = None;
    guided = false;
    corpus_dir = None;
  }

(* Where a candidate came from: the blind generator, or a mutation of a
   corpus entry.  Corpus mutants are not well typed by construction, so
   the oracles judge them by outcome class instead of by acceptance. *)
type origin = Gen | Corpus

let origin_name = function Gen -> "generated" | Corpus -> "corpus"

type program = {
  p_index : int;
  p_origin : origin;
  p_ast : Ast.exp;
  p_source : string;
}

(* ------------------------------------------------------------------ *)
(* A mutable handle over a pure PRNG stream, so generation code reads
   sequentially instead of threading states. *)

type rng = { mutable st : Prng.t }

let rng_of ~seed ~index = { st = Prng.split_nth (Prng.make seed) index }

let rint r n =
  let v, st = Prng.int r.st n in
  r.st <- st;
  v

let rchance r p =
  let v, st = Prng.chance r.st p in
  r.st <- st;
  v

let rchoose r xs =
  let v, st = Prng.choose r.st xs in
  r.st <- st;
  v

let rweighted r xs =
  let v, st = Prng.weighted r.st xs in
  r.st <- st;
  v

(* ------------------------------------------------------------------ *)
(* The generator's world: what has been declared so far. *)

(* Member shapes over the concept's type parameter [t] (and its
   associated type, for [MAssocVal]). *)
type mshape =
  | MVal  (* m : int *)
  | MSelf  (* m : t *)
  | MEndo  (* m : fn(t) -> t *)
  | MBin  (* m : fn(t, t) -> t *)
  | MObs  (* m : fn(t) -> int *)
  | MRel  (* m : fn(t, t) -> bool *)
  | MAssocVal  (* m : s, the concept's associated type *)

type cinfo = {
  ci_name : string;
  ci_ancestors : string list;  (* transitive refinement ancestors *)
  ci_assoc : string option;
  ci_assoc_val : Ast.ty;  (* every model assigns the assoc this type *)
  ci_members : (string * mshape) list;
  ci_defaulted : string list;  (* members with a concept-level default *)
}

type gform =
  | GSingle  (* tfun u where C̄<u> => fun (x : u) => ... : u *)
  | GSame  (* tfun a b where C<a>, a == b => fun (x:a, y:b) => ... : a *)
  | GNested  (* tfun a where C1<a> => tfun b where C2<b> => ... : a *)
  | GAssocPin  (* tfun w where C<w>, C<w>.s == int => fun (k:int) => ... *)

type ginfo = {
  g_name : string;
  g_form : gform;
  g_closure : string list;  (* direct where-clause concepts, first binder *)
  g_insts : Ast.ty list;  (* ground types usable for the first binder *)
  g_insts2 : Ast.ty list;  (* second binder (GNested only) *)
}

type ctx = {
  rng : rng;
  mutable concepts : cinfo list;  (* in declaration order *)
  mutable modeled : (string * Ast.ty) list;  (* (concept, ground arg) *)
  mutable generics : ginfo list;
  mutable conv : bool;  (* FzCv<int,bool> / FzCv<bool,int> in scope *)
  mutable fresh : int;
}

let tint = Ast.TBase Ast.TInt
let tbool = Ast.TBase Ast.TBool
let fn args ret = Ast.TArrow (args, ret)
let tlist t = Ast.TList t
let papp name args = Ast.app (Ast.prim name) args
let papp_t name tys args = Ast.app (Ast.tyapp (Ast.prim name) tys) args
let enil t = Ast.tyapp (Ast.prim "nil") [ t ]
let econs t hd tl = papp_t "cons" [ t ] [ hd; tl ]

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec replace_nth xs i x =
  match xs with
  | [] -> []
  | _ :: rest when i = 0 -> x :: rest
  | y :: rest -> y :: replace_nth rest (i - 1) x

let shape_ty shape ~self ~assoc_val =
  match shape with
  | MVal -> tint
  | MSelf -> self
  | MEndo -> fn [ self ] self
  | MBin -> fn [ self; self ] self
  | MObs -> fn [ self ] tint
  | MRel -> fn [ self; self ] tbool
  | MAssocVal -> assoc_val

let rec ground_value r (ty : Ast.ty) : Ast.exp =
  match ty with
  | Ast.TBase Ast.TInt -> Ast.int (rint r 100)
  | Ast.TBase Ast.TBool -> Ast.bool (rint r 2 = 0)
  | Ast.TBase Ast.TUnit -> Ast.unit ()
  | Ast.TList t ->
      if rchance r 0.5 then enil t else econs t (ground_value r t) (enil t)
  | Ast.TTuple ts -> Ast.tuple (List.map (ground_value r) ts)
  | Ast.TArrow (args, ret) ->
      let params = List.mapi (fun i a -> (Printf.sprintf "fzc%d" i, a)) args in
      Ast.abs params (ground_value r ret)
  | Ast.TVar _ | Ast.TAssoc _ | Ast.TForall _ ->
      invalid_arg "Fuzz.ground_value: not a ground type"

let concept_named ctx name = List.find (fun c -> c.ci_name = name) ctx.concepts

let modeled_at ctx name =
  List.filter_map (fun (c, s) -> if c = name then Some s else None) ctx.modeled

(* Every (owner, ground argument, member, instantiated member type)
   reachable right now. *)
let ground_members ctx =
  List.concat_map
    (fun (cname, s) ->
      let c = concept_named ctx cname in
      List.map
        (fun (m, sh) ->
          (cname, s, m, shape_ty sh ~self:s ~assoc_val:c.ci_assoc_val))
        c.ci_members)
    ctx.modeled

(* ------------------------------------------------------------------ *)
(* Expression generator.  [vars] are term variables in scope, [tvars]
   maps each type-variable binder to the concepts whose members may be
   projected at it (its where-clause closure plus refinement
   ancestors).  Always returns a well-typed expression of type [ty]. *)

let rec gen ctx ~vars ~tvars ~budget (ty : Ast.ty) : Ast.exp =
  let r = ctx.rng in
  let sub n = max 0 ((budget / n) - 1) in
  let g t b = gen ctx ~vars ~tvars ~budget:b t in
  let vars_of t = List.filter (fun (_, vt) -> Ast.ty_equal vt t) vars in
  let var_cands t =
    List.map (fun (x, _) -> (3, fun () -> Ast.var x)) (vars_of t)
  in
  let member_value_cands t =
    ground_members ctx
    |> List.filter (fun (_, _, _, mt) -> Ast.ty_equal mt t)
    |> take 4
    |> List.map (fun (c, s, m, _) -> (2, fun () -> Ast.member c [ s ] m))
  in
  (* Calls of members whose instantiated type is an arrow returning
     [t]: C<σ>.m(ē). *)
  let member_app_cands t =
    if budget < 4 then []
    else
      ground_members ctx
      |> List.filter_map (fun (c, s, m, mt) ->
             match mt with
             | Ast.TArrow (args, ret)
               when Ast.ty_equal ret t && List.length args <= 2 ->
                 Some
                   ( 2,
                     fun () ->
                       Ast.app
                         (Ast.member c [ s ] m)
                         (List.map (fun a -> g a (sub 2)) args) )
             | _ -> None)
      |> take 4
  in
  (* Calls of in-scope let-bound functions returning [t]. *)
  let applied_var_cands t =
    let generatable a =
      match a with
      | Ast.TVar u -> vars_of (Ast.TVar u) <> []
      | Ast.TAssoc _ | Ast.TForall _ -> false
      | _ -> true
    in
    if budget < 4 then []
    else
      vars
      |> List.filter_map (fun (x, vt) ->
             match vt with
             | Ast.TArrow (args, ret)
               when Ast.ty_equal ret t
                    && List.length args <= 3
                    && List.for_all generatable args ->
                 Some
                   ( 2,
                     fun () ->
                       Ast.app (Ast.var x)
                         (List.map (fun a -> g a (sub 2)) args) )
             | _ -> None)
      |> take 4
  in
  (* Instantiations of declared generics at a ground result type. *)
  let generic_call_cands t =
    if budget < 4 then []
    else
      ctx.generics
      |> List.filter_map (fun gi ->
             let at = List.exists (Ast.ty_equal t) gi.g_insts in
             match gi.g_form with
             | GSingle when at ->
                 Some
                   ( 2,
                     fun () ->
                       let arg = g t (sub 2) in
                       (* Implicit instantiation: let the checker infer
                          the type argument from the value argument. *)
                       if rchance r 0.35 then Ast.app (Ast.var gi.g_name) [ arg ]
                       else
                         Ast.app (Ast.tyapp (Ast.var gi.g_name) [ t ]) [ arg ]
                   )
             | GSame when at ->
                 Some
                   ( 1,
                     fun () ->
                       Ast.app
                         (Ast.tyapp (Ast.var gi.g_name) [ t; t ])
                         [ g t (sub 3); g t (sub 3) ] )
             | GNested when at && gi.g_insts2 <> [] ->
                 Some
                   ( 1,
                     fun () ->
                       let s2 = rchoose r gi.g_insts2 in
                       Ast.app
                         (Ast.tyapp
                            (Ast.tyapp (Ast.var gi.g_name) [ t ])
                            [ s2 ])
                         [ g t (sub 3); g s2 (sub 3) ] )
             | GAssocPin when Ast.ty_equal t tint && gi.g_insts <> [] ->
                 Some
                   ( 2,
                     fun () ->
                       let s = rchoose r gi.g_insts in
                       Ast.app
                         (Ast.tyapp (Ast.var gi.g_name) [ s ])
                         [ g tint (sub 2) ] )
             | _ -> None)
  in
  (* Projections available at an abstract type variable [u]: members of
     the binder's closure concepts whose types stay assoc-free. *)
  let tyvar_owner_members u =
    match List.assoc_opt u tvars with
    | None -> []
    | Some owners ->
        List.concat_map
          (fun cname ->
            let c = concept_named ctx cname in
            List.filter_map
              (fun (m, sh) ->
                match sh with MAssocVal -> None | _ -> Some (cname, m, sh))
              c.ci_members)
          owners
  in
  let if_cand t =
    if budget < 6 then []
    else [ (2, fun () -> Ast.if_ (g tbool (sub 3)) (g t (sub 3)) (g t (sub 3))) ]
  in
  let let_cand t =
    if budget < 6 then []
    else
      [
        ( 2,
          fun () ->
            let n = ctx.fresh in
            ctx.fresh <- n + 1;
            let x = Printf.sprintf "fzv%d" n in
            let bt = rchoose r [ tint; tbool; tlist tint ] in
            let bound = g bt (sub 3) in
            let body =
              gen ctx ~vars:((x, bt) :: vars) ~tvars ~budget:(sub 2) t
            in
            Ast.let_ x bound body );
      ]
  in
  let cands =
    match ty with
    | Ast.TBase Ast.TInt ->
        let base =
          ((4, fun () -> Ast.int (rint r 100)) :: var_cands ty)
          @ member_value_cands ty
        in
        let compound =
          if budget < 4 then []
          else
            [
              ( 6,
                fun () ->
                  let op =
                    rchoose r [ "iadd"; "isub"; "imult"; "imin"; "imax" ]
                  in
                  papp op [ g tint (sub 2); g tint (sub 2) ] );
              (1, fun () -> papp_t "length" [ tint ] [ g (tlist tint) (sub 2) ]);
              ( 1,
                fun () ->
                  Ast.nth (Ast.tuple [ g tint (sub 3); g tbool (sub 3) ]) 0 );
              ( 1,
                fun () ->
                  (* car is only ever applied to a cons cell. *)
                  papp_t "car" [ tint ]
                    [ econs tint (g tint (sub 3)) (g (tlist tint) (sub 3)) ]
              );
            ]
            @ (if ctx.conv then
                 [
                   ( 1,
                     fun () ->
                       Ast.app
                         (Ast.member "FzCv" [ tbool; tint ] "fzcv")
                         [ g tbool (sub 2) ] );
                 ]
               else [])
            @ List.concat_map
                (fun (u, _) ->
                  match vars_of (Ast.TVar u) with
                  | [] -> []
                  | (x, _) :: _ ->
                      tyvar_owner_members u
                      |> List.filter_map (fun (c, m, sh) ->
                             match sh with
                             | MVal ->
                                 Some
                                   ( 1,
                                     fun () -> Ast.member c [ Ast.TVar u ] m )
                             | MObs ->
                                 Some
                                   ( 2,
                                     fun () ->
                                       Ast.app
                                         (Ast.member c [ Ast.TVar u ] m)
                                         [ Ast.var x ] )
                             | _ -> None))
                tvars
            @ if_cand ty @ let_cand ty
        in
        base @ compound @ member_app_cands ty @ applied_var_cands ty
        @ generic_call_cands ty
    | Ast.TBase Ast.TBool ->
        let base =
          ((3, fun () -> Ast.bool (rint r 2 = 0)) :: var_cands ty)
          @ member_value_cands ty
        in
        let compound =
          if budget < 4 then []
          else
            [
              ( 4,
                fun () ->
                  let op =
                    rchoose r [ "ilt"; "ile"; "igt"; "ige"; "ieq"; "ineq" ]
                  in
                  papp op [ g tint (sub 2); g tint (sub 2) ] );
              ( 2,
                fun () ->
                  let op = rchoose r [ "band"; "bor"; "beq" ] in
                  papp op [ g tbool (sub 2); g tbool (sub 2) ] );
              (1, fun () -> papp "bnot" [ g tbool (sub 2) ]);
              (1, fun () -> papp_t "null" [ tint ] [ g (tlist tint) (sub 2) ]);
            ]
            @ (if ctx.conv then
                 [
                   ( 1,
                     fun () ->
                       Ast.app
                         (Ast.member "FzCv" [ tint; tbool ] "fzcv")
                         [ g tint (sub 2) ] );
                 ]
               else [])
            @ List.concat_map
                (fun (u, _) ->
                  match vars_of (Ast.TVar u) with
                  | [] -> []
                  | (x, _) :: _ ->
                      tyvar_owner_members u
                      |> List.filter_map (fun (c, m, sh) ->
                             match sh with
                             | MRel ->
                                 Some
                                   ( 1,
                                     fun () ->
                                       Ast.app
                                         (Ast.member c [ Ast.TVar u ] m)
                                         [ Ast.var x; Ast.var x ] )
                             | _ -> None))
                tvars
            @ if_cand ty @ let_cand ty
        in
        base @ compound @ member_app_cands ty @ applied_var_cands ty
        @ generic_call_cands ty
    | Ast.TBase Ast.TUnit -> (2, fun () -> Ast.unit ()) :: var_cands ty
    | Ast.TList elt ->
        let base =
          ((2, fun () -> enil elt) :: var_cands ty) @ member_value_cands ty
        in
        let compound =
          if budget < 4 then []
          else
            [
              (4, fun () -> econs elt (g elt (sub 3)) (g ty (sub 2)));
              (2, fun () -> papp_t "append" [ elt ] [ g ty (sub 2); g ty (sub 2) ]);
              ( 1,
                fun () ->
                  (* cdr is only ever applied to a cons cell. *)
                  papp_t "cdr" [ elt ]
                    [ econs elt (g elt (sub 3)) (g ty (sub 3)) ] );
            ]
            @ if_cand ty @ let_cand ty
        in
        base @ compound @ member_app_cands ty @ applied_var_cands ty
        @ generic_call_cands ty
    | Ast.TTuple ts ->
        let n = max 1 (List.length ts) in
        ((3, fun () -> Ast.tuple (List.map (fun t -> g t (sub n)) ts))
        :: var_cands ty)
        @ if_cand ty
    | Ast.TArrow (args, ret) ->
        let prim_consts =
          if Ast.ty_equal ty (fn [ tint; tint ] tint) then
            [ (2, fun () -> Ast.prim (rchoose r [ "iadd"; "imult"; "imin" ])) ]
          else if Ast.ty_equal ty (fn [ tint ] tint) then
            [ (1, fun () -> Ast.prim "ineg") ]
          else if Ast.ty_equal ty (fn [ tint; tint ] tbool) then
            [ (1, fun () -> Ast.prim (rchoose r [ "ieq"; "ile" ])) ]
          else []
        in
        let eta =
          ( 3,
            fun () ->
              let params =
                List.map
                  (fun a ->
                    let n = ctx.fresh in
                    ctx.fresh <- n + 1;
                    (Printf.sprintf "fzx%d" n, a))
                  args
              in
              let body =
                gen ctx ~vars:(params @ vars) ~tvars ~budget:(sub 1) ret
              in
              Ast.abs params body )
        in
        (eta :: var_cands ty) @ member_value_cands ty @ prim_consts
    | Ast.TVar u ->
        let base =
          match vars_of ty with
          | [] -> invalid_arg ("Fuzz.gen: no variable of abstract type " ^ u)
          | vs -> List.map (fun (x, _) -> (4, fun () -> Ast.var x)) vs
        in
        let proj =
          if budget < 4 then []
          else
            tyvar_owner_members u
            |> List.filter_map (fun (c, m, sh) ->
                   match sh with
                   | MSelf -> Some (1, fun () -> Ast.member c [ ty ] m)
                   | MEndo ->
                       Some
                         ( 3,
                           fun () ->
                             Ast.app (Ast.member c [ ty ] m) [ g ty (sub 2) ]
                         )
                   | MBin ->
                       Some
                         ( 2,
                           fun () ->
                             Ast.app
                               (Ast.member c [ ty ] m)
                               [ g ty (sub 3); g ty (sub 3) ] )
                   | _ -> None)
        in
        let gcalls =
          if budget < 4 then []
          else
            match List.assoc_opt u tvars with
            | None -> []
            | Some owners ->
                ctx.generics
                |> List.filter_map (fun gi ->
                       match gi.g_form with
                       | GSingle
                         when List.for_all
                                (fun c -> List.mem c owners)
                                gi.g_closure ->
                           (* Generic calls generic at the abstract
                              binder: the callee's where clause is
                              entailed by ours. *)
                           Some
                             ( 2,
                               fun () ->
                                 Ast.app
                                   (Ast.tyapp (Ast.var gi.g_name) [ ty ])
                                   [ g ty (sub 2) ] )
                       | _ -> None)
        in
        base @ proj @ gcalls @ if_cand ty @ let_cand ty
    | Ast.TAssoc _ | Ast.TForall _ ->
        invalid_arg "Fuzz.gen: unsupported target type"
  in
  (rweighted r cands) ()

(* ------------------------------------------------------------------ *)
(* Declaration generation. *)

let concept_letter i = String.make 1 (Char.chr (Char.code 'A' + i))

let default_body = function
  | MEndo -> Some (Ast.abs [ ("x", Ast.TVar "t") ] (Ast.var "x"))
  | MBin ->
      Some (Ast.abs [ ("x", Ast.TVar "t"); ("y", Ast.TVar "t") ] (Ast.var "x"))
  | MVal -> Some (Ast.int 1)
  | _ -> None

let gen_concept ctx i =
  let r = ctx.rng in
  let letter = concept_letter i in
  let name = "Fz" ^ letter in
  let refines =
    ctx.concepts
    |> List.filter (fun c -> String.length c.ci_name = 3 (* FzX only *))
    |> List.filter (fun _ -> rchance r 0.45)
    |> take 2
    |> List.map (fun c -> c.ci_name)
  in
  let ancestors =
    List.sort_uniq compare
      (refines
      @ List.concat_map (fun a -> (concept_named ctx a).ci_ancestors) refines)
  in
  let assoc =
    if rchance r 0.35 then Some ("fzs" ^ String.lowercase_ascii letter)
    else None
  in
  let assoc_val =
    match assoc with
    | None -> tint
    | Some _ -> rchoose r [ tint; tint; tbool; tlist tint ]
  in
  let pin =
    let pinnable =
      List.filter (fun a -> (concept_named ctx a).ci_assoc <> None) ancestors
    in
    if pinnable <> [] && rchance r 0.4 then Some (rchoose r pinnable) else None
  in
  let nmembers = 1 + rint r 3 in
  let members =
    List.init nmembers (fun k ->
        let sh =
          rweighted r
            [ (3, MEndo); (2, MBin); (2, MVal); (2, MSelf); (1, MObs); (1, MRel) ]
        in
        (Printf.sprintf "fz%s_m%d" (String.lowercase_ascii letter) k, sh))
    @ (match assoc with
      | Some _ -> [ ("fz" ^ String.lowercase_ascii letter ^ "_a", MAssocVal) ]
      | None -> [])
  in
  let defaults =
    List.filter_map
      (fun (m, sh) ->
        if rchance r 0.3 then
          Option.map (fun b -> (m, b)) (default_body sh)
        else None)
      members
  in
  let assoc_as_ty = match assoc with Some s -> Ast.TVar s | None -> Ast.TVar "t" in
  let decl : Ast.concept_decl =
    {
      c_name = name;
      c_params = [ "t" ];
      c_assoc = Option.to_list assoc;
      c_refines = List.map (fun a -> (a, [ Ast.TVar "t" ])) refines;
      c_requires = [];
      c_members =
        List.map
          (fun (m, sh) ->
            (m, shape_ty sh ~self:(Ast.TVar "t") ~assoc_val:assoc_as_ty))
          members;
      c_defaults = defaults;
      c_same =
        (match pin with
        | None -> []
        | Some anc ->
            let a = concept_named ctx anc in
            [
              ( Ast.TAssoc (anc, [ Ast.TVar "t" ], Option.get a.ci_assoc),
                a.ci_assoc_val );
            ]);
      c_loc = Loc.dummy;
    }
  in
  ctx.concepts <-
    ctx.concepts
    @ [
        {
          ci_name = name;
          ci_ancestors = ancestors;
          ci_assoc = assoc;
          ci_assoc_val = assoc_val;
          ci_members = members;
          ci_defaulted = List.map fst defaults;
        };
      ];
  fun body -> Ast.concept_decl decl body

let model_member_body ctx (sh : mshape) (s : Ast.ty) (av : Ast.ty) : Ast.exp =
  let r = ctx.rng in
  match (sh, s) with
  | MVal, _ -> Ast.int (rint r 50)
  | MSelf, _ -> ground_value r s
  | MAssocVal, _ -> ground_value r av
  | MEndo, Ast.TBase Ast.TInt ->
      rchoose r
        [
          Ast.prim "ineg";
          Ast.abs [ ("x", tint) ] (Ast.var "x");
          Ast.abs [ ("x", tint) ] (papp "iadd" [ Ast.var "x"; Ast.int (rint r 9) ]);
        ]
  | MEndo, _ -> Ast.abs [ ("x", s) ] (Ast.var "x")
  | MBin, Ast.TBase Ast.TInt ->
      rchoose r
        [
          Ast.prim "iadd";
          Ast.prim "imult";
          Ast.prim "imin";
          Ast.abs [ ("x", tint); ("y", tint) ] (Ast.var "y");
        ]
  | MBin, Ast.TBase Ast.TBool ->
      rchoose r [ Ast.prim "band"; Ast.prim "bor" ]
  | MBin, _ -> Ast.abs [ ("x", s); ("y", s) ] (Ast.var "x")
  | MObs, Ast.TBase Ast.TInt ->
      Ast.abs [ ("x", tint) ] (papp "iadd" [ Ast.var "x"; Ast.int (rint r 9) ])
  | MObs, Ast.TBase Ast.TBool ->
      Ast.abs [ ("x", tbool) ] (Ast.if_ (Ast.var "x") (Ast.int 1) (Ast.int 0))
  | MObs, Ast.TList t ->
      Ast.abs [ ("x", s) ] (papp_t "length" [ t ] [ Ast.var "x" ])
  | MObs, _ -> Ast.abs [ ("x", s) ] (Ast.int (rint r 9))
  | MRel, Ast.TBase Ast.TInt -> rchoose r [ Ast.prim "ieq"; Ast.prim "ile" ]
  | MRel, Ast.TBase Ast.TBool -> Ast.prim "beq"
  | MRel, Ast.TList t ->
      Ast.abs
        [ ("x", s); ("y", s) ]
        (papp "ieq"
           [
             papp_t "length" [ t ] [ Ast.var "x" ];
             papp_t "length" [ t ] [ Ast.var "y" ];
           ])
  | MRel, _ -> Ast.abs [ ("x", s); ("y", s) ] (Ast.bool true)

let model_decl_for ctx ?name ~skip_defaults (c : cinfo) (s : Ast.ty) :
    Ast.model_decl =
  let r = ctx.rng in
  let members =
    List.filter_map
      (fun (m, sh) ->
        if skip_defaults && List.mem m c.ci_defaulted && rchance r 0.5 then None
        else Some (m, model_member_body ctx sh s c.ci_assoc_val))
      c.ci_members
  in
  {
    m_name = name;
    m_params = [];
    m_constrs = [];
    m_concept = c.ci_name;
    m_args = [ s ];
    m_assoc =
      (match c.ci_assoc with
      | Some sn -> [ (sn, c.ci_assoc_val) ]
      | None -> []);
    m_members = members;
    m_loc = Loc.dummy;
  }

(* The FzEq skeleton: a parameterized model lifting equality from [t]
   to [list t], registered at int, list int and list (list int). *)
let fzeq_wrappers ctx =
  let tv = Ast.TVar "t" in
  let decl : Ast.concept_decl =
    {
      c_name = "FzEq";
      c_params = [ "t" ];
      c_assoc = [];
      c_refines = [];
      c_requires = [];
      c_members = [ ("fzeql", fn [ tv; tv ] tbool) ];
      c_defaults = [];
      c_same = [];
      c_loc = Loc.dummy;
    }
  in
  let int_model : Ast.model_decl =
    {
      m_name = None;
      m_params = [];
      m_constrs = [];
      m_concept = "FzEq";
      m_args = [ tint ];
      m_assoc = [];
      m_members = [ ("fzeql", Ast.prim "ieq") ];
      m_loc = Loc.dummy;
    }
  in
  let eq_body =
    let car x = papp_t "car" [ tv ] [ Ast.var x ] in
    let cdr x = papp_t "cdr" [ tv ] [ Ast.var x ] in
    let null x = papp_t "null" [ tv ] [ Ast.var x ] in
    Ast.fix "fzgo"
      (fn [ tlist tv; tlist tv ] tbool)
      (Ast.abs
         [ ("a", tlist tv); ("b", tlist tv) ]
         (Ast.if_ (null "a") (null "b")
            (Ast.if_ (null "b") (Ast.bool false)
               (papp "band"
                  [
                    Ast.app (Ast.member "FzEq" [ tv ] "fzeql") [ car "a"; car "b" ];
                    Ast.app (Ast.var "fzgo") [ cdr "a"; cdr "b" ];
                  ]))))
  in
  let list_model : Ast.model_decl =
    {
      m_name = None;
      m_params = [ "t" ];
      m_constrs = [ Ast.CModel ("FzEq", [ tv ]) ];
      m_concept = "FzEq";
      m_args = [ tlist tv ];
      m_assoc = [];
      m_members = [ ("fzeql", eq_body) ];
      m_loc = Loc.dummy;
    }
  in
  ctx.concepts <-
    ctx.concepts
    @ [
        {
          ci_name = "FzEq";
          ci_ancestors = [];
          ci_assoc = None;
          ci_assoc_val = tint;
          ci_members = [ ("fzeql", MRel) ];
          ci_defaulted = [];
        };
      ];
  ctx.modeled <-
    ctx.modeled
    @ [
        ("FzEq", tint); ("FzEq", tlist tint); ("FzEq", tlist (tlist tint));
      ];
  [
    (fun body -> Ast.concept_decl decl body);
    (fun body -> Ast.model_decl int_model body);
    (fun body -> Ast.model_decl list_model body);
  ]

(* The FzCv skeleton: a two-parameter concept with converting models in
   both directions. *)
let fzcv_wrappers ctx =
  let decl : Ast.concept_decl =
    {
      c_name = "FzCv";
      c_params = [ "a"; "b" ];
      c_assoc = [];
      c_refines = [];
      c_requires = [];
      c_members = [ ("fzcv", fn [ Ast.TVar "a" ] (Ast.TVar "b")) ];
      c_defaults = [];
      c_same = [];
      c_loc = Loc.dummy;
    }
  in
  let m args body : Ast.model_decl =
    {
      m_name = None;
      m_params = [];
      m_constrs = [];
      m_concept = "FzCv";
      m_args = args;
      m_assoc = [];
      m_members = [ ("fzcv", body) ];
      m_loc = Loc.dummy;
    }
  in
  let int_to_bool =
    Ast.abs [ ("n", tint) ] (papp "igt" [ Ast.var "n"; Ast.int 0 ])
  in
  let bool_to_int =
    Ast.abs [ ("p", tbool) ] (Ast.if_ (Ast.var "p") (Ast.int 1) (Ast.int 0))
  in
  ctx.conv <- true;
  [
    (fun body -> Ast.concept_decl decl body);
    (fun body -> Ast.model_decl (m [ tint; tbool ] int_to_bool) body);
    (fun body -> Ast.model_decl (m [ tbool; tint ] bool_to_int) body);
  ]

(* fzsum: a structurally terminating fix over lists. *)
let fzsum_wrapper () =
  let body =
    Ast.fix "fzgo"
      (fn [ tlist tint ] tint)
      (Ast.abs
         [ ("xs", tlist tint) ]
         (Ast.if_
            (papp_t "null" [ tint ] [ Ast.var "xs" ])
            (Ast.int 0)
            (papp "iadd"
               [
                 papp_t "car" [ tint ] [ Ast.var "xs" ];
                 Ast.app (Ast.var "fzgo") [ papp_t "cdr" [ tint ] [ Ast.var "xs" ] ];
               ])))
  in
  fun b -> Ast.let_ "fzsum" body b

let owners_of ctx closure =
  List.sort_uniq compare
    (closure
    @ List.concat_map (fun c -> (concept_named ctx c).ci_ancestors) closure)

let gen_generic ctx ~gvars ~size j =
  let r = ctx.rng in
  let name = Printf.sprintf "fzg%d" j in
  let with_models =
    List.filter (fun c -> modeled_at ctx c.ci_name <> []) ctx.concepts
  in
  if with_models = [] then None
  else
    let form = rweighted r [ (4, GSingle); (2, GSame); (2, GNested) ] in
    match form with
    | GSingle ->
        let c1 = rchoose r with_models in
        let closure =
          if rchance r 0.3 && List.length with_models > 1 then
            let c2 = rchoose r with_models in
            if c2.ci_name = c1.ci_name then [ c1.ci_name ]
            else [ c1.ci_name; c2.ci_name ]
          else [ c1.ci_name ]
        in
        let insts =
          modeled_at ctx (List.hd closure)
          |> List.filter (fun s ->
                 List.for_all
                   (fun c -> List.exists (Ast.ty_equal s) (modeled_at ctx c))
                   closure)
        in
        let closure, insts =
          if insts = [] then begin
            Telemetry.record_fuzz_discarded ();
            ([ c1.ci_name ], modeled_at ctx c1.ci_name)
          end
          else (closure, insts)
        in
        let owners = owners_of ctx closure in
        let body =
          gen ctx
            ~vars:(("x", Ast.TVar "u") :: gvars)
            ~tvars:[ ("u", owners) ]
            ~budget:(size / 2) (Ast.TVar "u")
        in
        let e =
          Ast.tyabs [ "u" ]
            (List.map (fun c -> Ast.CModel (c, [ Ast.TVar "u" ])) closure)
            (Ast.abs [ ("x", Ast.TVar "u") ] body)
        in
        Some
          ( (fun b -> Ast.let_ name e b),
            { g_name = name; g_form = GSingle; g_closure = closure;
              g_insts = insts; g_insts2 = [] } )
    | GSame ->
        let c = rchoose r with_models in
        let bin =
          List.find_opt (fun (_, sh) -> sh = MBin) c.ci_members
        in
        let body =
          match bin with
          | Some (m, _) ->
              Ast.app
                (Ast.member c.ci_name [ Ast.TVar "a" ] m)
                [ Ast.var "x"; Ast.var "y" ]
          | None -> Ast.var "x"
        in
        let e =
          Ast.tyabs [ "a"; "b" ]
            [
              Ast.CModel (c.ci_name, [ Ast.TVar "a" ]);
              Ast.CSame (Ast.TVar "a", Ast.TVar "b");
            ]
            (Ast.abs [ ("x", Ast.TVar "a"); ("y", Ast.TVar "b") ] body)
        in
        Some
          ( (fun b -> Ast.let_ name e b),
            { g_name = name; g_form = GSame; g_closure = [ c.ci_name ];
              g_insts = modeled_at ctx c.ci_name; g_insts2 = [] } )
    | GNested ->
        let c1 = rchoose r with_models in
        let c2 = rchoose r with_models in
        let body =
          gen ctx
            ~vars:(("x", Ast.TVar "a") :: ("y", Ast.TVar "b") :: gvars)
            ~tvars:
              [ ("a", owners_of ctx [ c1.ci_name ]);
                ("b", owners_of ctx [ c2.ci_name ]) ]
            ~budget:(size / 2) (Ast.TVar "a")
        in
        let e =
          Ast.tyabs [ "a" ]
            [ Ast.CModel (c1.ci_name, [ Ast.TVar "a" ]) ]
            (Ast.tyabs [ "b" ]
               [ Ast.CModel (c2.ci_name, [ Ast.TVar "b" ]) ]
               (Ast.abs [ ("x", Ast.TVar "a"); ("y", Ast.TVar "b") ] body))
        in
        Some
          ( (fun b -> Ast.let_ name e b),
            { g_name = name; g_form = GNested; g_closure = [ c1.ci_name ];
              g_insts = modeled_at ctx c1.ci_name;
              g_insts2 = modeled_at ctx c2.ci_name } )
    | GAssocPin -> None

(* The assoc-pin generic: usable at any model whose associated type is
   pinned (by assignment) to int. *)
let gen_assoc_pin ctx =
  let cands =
    List.filter
      (fun c ->
        c.ci_assoc <> None
        && Ast.ty_equal c.ci_assoc_val tint
        && List.exists (fun (_, sh) -> sh = MAssocVal) c.ci_members
        && modeled_at ctx c.ci_name <> [])
      ctx.concepts
  in
  match cands with
  | [] ->
      Telemetry.record_fuzz_discarded ();
      None
  | c :: _ ->
      let am, _ = List.find (fun (_, sh) -> sh = MAssocVal) c.ci_members in
      let w = Ast.TVar "w" in
      let e =
        Ast.tyabs [ "w" ]
          [
            Ast.CModel (c.ci_name, [ w ]);
            Ast.CSame (Ast.TAssoc (c.ci_name, [ w ], Option.get c.ci_assoc), tint);
          ]
          (Ast.abs
             [ ("k", tint) ]
             (papp "iadd" [ Ast.member c.ci_name [ w ] am; Ast.var "k" ]))
      in
      Some
        ( (fun b -> Ast.let_ "fzp" e b),
          { g_name = "fzp"; g_form = GAssocPin; g_closure = [ c.ci_name ];
            g_insts = modeled_at ctx c.ci_name; g_insts2 = [] } )

let generate cfg ~index =
  let rng = rng_of ~seed:cfg.seed ~index in
  let ctx =
    { rng; concepts = []; modeled = []; generics = []; conv = false; fresh = 0 }
  in
  let r = rng in
  let wrappers = ref [] in
  let push w = wrappers := !wrappers @ [ w ] in
  let gvars = ref [] in
  (* Concepts. *)
  let nconcepts = 1 + rint r 4 in
  for i = 0 to nconcepts - 1 do
    push (gen_concept ctx i)
  done;
  (* Ground models, in concept order so refinement requirements are
     always in scope: int everywhere, bool / list int sometimes. *)
  let own = List.filter (fun c -> c.ci_name <> "FzEq") ctx.concepts in
  List.iter
    (fun c ->
      push (fun b -> Ast.model_decl (model_decl_for ctx ~skip_defaults:true c tint) b);
      ctx.modeled <- ctx.modeled @ [ (c.ci_name, tint) ])
    own;
  List.iter
    (fun (s, p) ->
      List.iter
        (fun c ->
          if
            rchance r p
            && List.for_all
                 (fun a -> List.exists (Ast.ty_equal s) (modeled_at ctx a))
                 c.ci_ancestors
          then begin
            push (fun b ->
                Ast.model_decl (model_decl_for ctx ~skip_defaults:true c s) b);
            ctx.modeled <- ctx.modeled @ [ (c.ci_name, s) ]
          end)
        own)
    [ (tbool, 0.3); (tlist tint, 0.15) ];
  (* A named model activated by [using]. *)
  if rchance r 0.2 then begin
    let cands =
      List.filter
        (fun c ->
          c.ci_ancestors = []
          && not (List.exists (Ast.ty_equal tbool) (modeled_at ctx c.ci_name)))
        own
    in
    match cands with
    | [] -> Telemetry.record_fuzz_discarded ()
    | _ ->
        let c = rchoose r cands in
        let decl = model_decl_for ctx ~name:"fznm" ~skip_defaults:false c tbool in
        push (fun b -> Ast.model_decl decl (Ast.using "fznm" b));
        ctx.modeled <- ctx.modeled @ [ (c.ci_name, tbool) ]
  end;
  (* Canned skeletons. *)
  if rchance r 0.3 then List.iter push (fzeq_wrappers ctx);
  if rchance r 0.25 then List.iter push (fzcv_wrappers ctx);
  if rchance r 0.3 then begin
    push (fzsum_wrapper ());
    gvars := ("fzsum", fn [ tlist tint ] tint) :: !gvars
  end;
  if rchance r 0.3 then begin
    push (fun b ->
        Ast.type_alias "fzal" tint
          (Ast.let_ "fzha"
             (Ast.abs [ ("x", Ast.TVar "fzal") ]
                (papp "iadd" [ Ast.var "x"; Ast.int 7 ]))
             b));
    gvars := ("fzha", fn [ tint ] tint) :: !gvars
  end;
  (* Ground helper bindings. *)
  let nhelpers = rint r 3 in
  for i = 0 to nhelpers - 1 do
    let t =
      rweighted r
        [ (3, tint); (2, tbool); (2, tlist tint); (1, fn [ tint ] tint) ]
    in
    let e = gen ctx ~vars:!gvars ~tvars:[] ~budget:(cfg.size / 3) t in
    push (fun b -> Ast.let_ (Printf.sprintf "fzh%d" i) e b);
    gvars := (Printf.sprintf "fzh%d" i, t) :: !gvars
  done;
  (* Generics. *)
  if rchance r 0.5 then begin
    match gen_assoc_pin ctx with
    | None -> ()
    | Some (w, gi) ->
        push w;
        ctx.generics <- ctx.generics @ [ gi ]
  end;
  let ngenerics = 1 + if rchance r 0.5 then 1 else 0 in
  for j = 0 to ngenerics - 1 do
    match gen_generic ctx ~gvars:!gvars ~size:cfg.size j with
    | None -> Telemetry.record_fuzz_discarded ()
    | Some (w, gi) ->
        push w;
        ctx.generics <- ctx.generics @ [ gi ]
  done;
  (* A shadowing redeclaration: same concept, same argument, same assoc
     assignment, fresh member bodies.  Resolution must pick it. *)
  if rchance r 0.15 then begin
    match List.filter (fun c -> c.ci_name <> "FzEq" && c.ci_name <> "FzCv") own with
    | [] -> ()
    | cs ->
        let c = rchoose r cs in
        push (fun b ->
            Ast.model_decl (model_decl_for ctx ~skip_defaults:false c tint) b)
  end;
  (* The residual body. *)
  let final_ty =
    rweighted r
      [ (4, tint); (2, tbool); (1, Ast.TTuple [ tint; tbool ]); (1, tlist tint) ]
  in
  let body = gen ctx ~vars:!gvars ~tvars:[] ~budget:cfg.size final_ty in
  let ast0 = List.fold_right (fun w acc -> w acc) !wrappers body in
  Telemetry.record_fuzz_generated ();
  let source = Pretty.exp_to_string ast0 in
  (* Normalize through the parser so [p_ast] is in the parser's image;
     if the printer emits something unparseable the round-trip oracle
     reports it on the raw AST. *)
  let ast = try Parser.exp_of_string source with _ -> ast0 in
  { p_index = index; p_origin = Gen; p_ast = ast; p_source = source }

(* ------------------------------------------------------------------ *)
(* Shrinker. *)

let one_step (e : Ast.exp) : Ast.exp list =
  let rec steps e =
    let mk d = { e with Ast.desc = d } in
    let kids =
      match e.Ast.desc with
      | Ast.ConceptDecl (_, b)
      | Ast.ModelDecl (_, b)
      | Ast.Using (_, b)
      | Ast.TypeAlias (_, _, b) ->
          [ b ]
      | Ast.Let (_, e1, b) -> [ b; e1 ]
      | Ast.App (f, args) -> f :: args
      | Ast.TyApp (f, _) -> [ f ]
      | Ast.Abs (_, b) | Ast.TyAbs (_, _, b) | Ast.Fix (_, _, b) -> [ b ]
      | Ast.Tuple es -> es
      | Ast.Nth (e1, _) -> [ e1 ]
      | Ast.If (c, a, b) -> [ a; b; c ]
      | Ast.Var _ | Ast.Lit _ | Ast.Prim _ | Ast.Member _ -> []
    in
    let here = kids @ [ Ast.int 0; Ast.bool false ] in
    let deeper =
      match e.Ast.desc with
      | Ast.Var _ | Ast.Lit _ | Ast.Prim _ | Ast.Member _ -> []
      | Ast.App (f, args) ->
          List.map (fun f' -> mk (Ast.App (f', args))) (steps f)
          @ List.concat
              (List.mapi
                 (fun i a ->
                   List.map
                     (fun a' -> mk (Ast.App (f, replace_nth args i a')))
                     (steps a))
                 args)
      | Ast.TyApp (f, tys) ->
          List.map (fun f' -> mk (Ast.TyApp (f', tys))) (steps f)
      | Ast.Abs (ps, b) -> List.map (fun b' -> mk (Ast.Abs (ps, b'))) (steps b)
      | Ast.TyAbs (ts, cs, b) ->
          List.map (fun b' -> mk (Ast.TyAbs (ts, cs, b'))) (steps b)
      | Ast.Let (x, e1, b) ->
          List.map (fun e1' -> mk (Ast.Let (x, e1', b))) (steps e1)
          @ List.map (fun b' -> mk (Ast.Let (x, e1, b'))) (steps b)
      | Ast.Tuple es ->
          List.concat
            (List.mapi
               (fun i a ->
                 List.map
                   (fun a' -> mk (Ast.Tuple (replace_nth es i a')))
                   (steps a))
               es)
      | Ast.Nth (e1, k) -> List.map (fun e1' -> mk (Ast.Nth (e1', k))) (steps e1)
      | Ast.Fix (x, t, b) ->
          List.map (fun b' -> mk (Ast.Fix (x, t, b'))) (steps b)
      | Ast.If (c, a, b) ->
          List.map (fun c' -> mk (Ast.If (c', a, b))) (steps c)
          @ List.map (fun a' -> mk (Ast.If (c, a', b))) (steps a)
          @ List.map (fun b' -> mk (Ast.If (c, a, b'))) (steps b)
      | Ast.ConceptDecl (d, b) ->
          List.map (fun b' -> mk (Ast.ConceptDecl (d, b'))) (steps b)
          @ List.concat
              (List.mapi
                 (fun i (m, me) ->
                   List.map
                     (fun me' ->
                       mk
                         (Ast.ConceptDecl
                            ( { d with
                                Ast.c_defaults =
                                  replace_nth d.Ast.c_defaults i (m, me') },
                              b )))
                     (steps me))
                 d.Ast.c_defaults)
      | Ast.ModelDecl (d, b) ->
          List.map (fun b' -> mk (Ast.ModelDecl (d, b'))) (steps b)
          @ List.concat
              (List.mapi
                 (fun i (m, me) ->
                   List.map
                     (fun me' ->
                       mk
                         (Ast.ModelDecl
                            ( { d with
                                Ast.m_members =
                                  replace_nth d.Ast.m_members i (m, me') },
                              b )))
                     (steps me))
                 d.Ast.m_members)
      | Ast.Using (n, b) -> List.map (fun b' -> mk (Ast.Using (n, b'))) (steps b)
      | Ast.TypeAlias (n, t, b) ->
          List.map (fun b' -> mk (Ast.TypeAlias (n, t, b'))) (steps b)
    in
    here @ deeper
  in
  steps e

let shrink ?(fuel = 1500) ~still_fails e0 =
  let evals = ref fuel in
  let rec go cur =
    if !evals <= 0 then cur
    else
      let sz = Ast.exp_size cur in
      let cands =
        one_step cur
        |> List.filter (fun c -> Ast.exp_size c < sz)
        |> List.stable_sort (fun a b ->
               compare (Ast.exp_size a) (Ast.exp_size b))
      in
      let rec try_ = function
        | [] -> cur
        | c :: rest ->
            if !evals <= 0 then cur
            else begin
              decr evals;
              if (try still_fails c with _ -> false) then begin
                Telemetry.record_fuzz_shrunk ();
                go c
              end
              else try_ rest
            end
      in
      try_ cands
  in
  go e0

(* Greedy line deletion, for failures that only exist as text (lexer
   mutants that no AST represents). *)
let shrink_text ~still_fails src =
  let join lines = String.concat "\n" lines in
  let rec go lines rounds =
    if rounds <= 0 then lines
    else
      let n = List.length lines in
      let rec try_ i =
        if i >= n || n <= 1 then None
        else
          let cand = List.filteri (fun j _ -> j <> i) lines in
          if try still_fails (join cand) with _ -> false then Some cand
          else try_ (i + 1)
      in
      match try_ 0 with
      | Some cand ->
          Telemetry.record_fuzz_shrunk ();
          go cand (rounds - 1)
      | None -> lines
  in
  join (go (String.split_on_char '\n' src) 60)

(* ------------------------------------------------------------------ *)
(* Oracles. *)

type oracle = Agreement | Roundtrip | Recovery

let oracle_name = function
  | Agreement -> "agreement"
  | Roundtrip -> "roundtrip"
  | Recovery -> "recovery"

type failure = {
  f_index : int;
  f_origin : origin;
  f_oracle : oracle;
  f_message : string;
  f_source : string;
  f_shrunk : string;
  f_shrunk_nodes : int;
}

type report = {
  r_config : config;
  r_generated : int;
  r_mutants_run : int;
  r_failures : failure list;
  r_coverage : Coverage.map;  (** [] off guided mode *)
  r_corpus_size : int;
  r_corpus_added : int;
  r_from_corpus : int;  (** candidates mutated from corpus entries *)
  r_corpus_entries : (string * string) list;
      (** (digest, source) of entries this run admitted — what a fuzz
          worker offers the fleet *)
}

let shrink_fuel = 300_000

let roundtrip_fails ast =
  let src = Pretty.exp_to_string ast in
  match Parser.exp_of_string src with
  | exception _ -> true
  | ast' -> not (Ast.exp_equal ast ast')

let roundtrip_failure (p : program) : failure list =
  if not (roundtrip_fails p.p_ast) then []
  else begin
    let msg =
      match Parser.exp_of_string p.p_source with
      | exception Diag.Error d ->
          Printf.sprintf "pretty-printed source no longer parses: %s %s"
            d.Diag.code d.Diag.message
      | exception e ->
          Printf.sprintf "pretty-printed source no longer parses: %s"
            (Printexc.to_string e)
      | _ -> "pretty -> parse changed the program (up to locations)"
    in
    let shr = shrink ~still_fails:roundtrip_fails p.p_ast in
    [
      {
        f_index = p.p_index;
        f_origin = p.p_origin;
        f_oracle = Roundtrip;
        f_message = msg;
        f_source = p.p_source;
        f_shrunk = Pretty.exp_to_string shr;
        f_shrunk_nodes = Ast.exp_size shr;
      };
    ]
  end

let typechecks ast =
  match Check.typecheck ast with _ -> true | exception _ -> false

let agreement_fails ast =
  match Theorems.check_agreement_result ~fuel:shrink_fuel ast with
  | Ok _ -> false
  | Error _ -> true

let agreement_failure (p : program) res : failure list =
  match res with
  | Ok _ -> []
  | Error (d : Diag.diagnostic) ->
      let msg =
        Printf.sprintf "%s [%s] %s" d.Diag.code
          (Diag.phase_name d.Diag.phase)
          d.Diag.message
      in
      let pred =
        match d.Diag.phase with
        | Diag.Translate | Diag.Eval ->
            (* Keep the interesting shape: candidates must still
               typecheck and still break the theorem/agreement check,
               not merely be ill typed. *)
            fun a -> typechecks a && agreement_fails a
        | _ -> agreement_fails
      in
      let shr = shrink ~still_fails:pred p.p_ast in
      [
        {
          f_index = p.p_index;
          f_origin = p.p_origin;
          f_oracle = Agreement;
          f_message = msg;
          f_source = p.p_source;
          f_shrunk = Pretty.exp_to_string shr;
          f_shrunk_nodes = Ast.exp_size shr;
        };
      ]

(* Recovery oracle: a corrupted program must be rejected with at least
   one error diagnostic, without crashing and without succeeding. *)
let recovery_bad sess src =
  match Session.run_full ~fuel:shrink_fuel sess src with
  | exception e -> Some ("recovering pipeline crashed: " ^ Printexc.to_string e)
  | { Session.outcome = Some _; _ } ->
      Some "corrupted program was accepted by the recovering pipeline"
  | { Session.outcome = None; diagnostics } ->
      if List.exists (fun d -> d.Diag.severity = Diag.Err) diagnostics then None
      else Some "corrupted program produced no error diagnostics"

type mutant_kind = KBadChar | KTrailJunk | KUndefVar | KBadConcept

let rec wrap_residual f (e : Ast.exp) =
  match e.Ast.desc with
  | Ast.ConceptDecl (d, b) -> Ast.concept_decl d (wrap_residual f b)
  | Ast.ModelDecl (d, b) -> Ast.model_decl d (wrap_residual f b)
  | Ast.Using (n, b) -> Ast.using n (wrap_residual f b)
  | Ast.TypeAlias (n, t, b) -> Ast.type_alias n t (wrap_residual f b)
  | Ast.Let (x, e1, b) -> Ast.let_ x e1 (wrap_residual f b)
  | _ -> f e

let mutant_of r kind (p : program) : string * Ast.exp option =
  match kind with
  | KBadChar ->
      let len = String.length p.p_source in
      let pos = if len = 0 then 0 else rint r len in
      ( String.sub p.p_source 0 pos ^ "@"
        ^ String.sub p.p_source pos (len - pos),
        None )
  | KTrailJunk -> (p.p_source ^ "\n)", None)
  | KUndefVar ->
      let ast =
        wrap_residual
          (fun e -> Ast.app (Ast.var "fz_undefined_var") [ e ])
          p.p_ast
      in
      (Pretty.exp_to_string ast, Some ast)
  | KBadConcept ->
      let ast =
        wrap_residual
          (fun _ -> Ast.member "FzNoSuchConcept" [ tint ] "fzzz")
          p.p_ast
      in
      (Pretty.exp_to_string ast, Some ast)

let recovery_failures cfg sess mutants_run (p : program) : failure list =
  let r = rng_of ~seed:cfg.seed ~index:(cfg.count + p.p_index) in
  List.concat
    (List.init cfg.mutants (fun _ ->
         let kind =
           rchoose r [ KBadChar; KTrailJunk; KUndefVar; KBadConcept ]
         in
         let src, ast = mutant_of r kind p in
         incr mutants_run;
         match recovery_bad sess src with
         | None -> []
         | Some msg ->
             let shrunk_src, shrunk_nodes =
               match ast with
               | Some a ->
                   let pred c =
                     recovery_bad sess (Pretty.exp_to_string c) <> None
                   in
                   let shr = shrink ~still_fails:pred a in
                   (Pretty.exp_to_string shr, Ast.exp_size shr)
               | None ->
                   let pred s = recovery_bad sess s <> None in
                   let shr = shrink_text ~still_fails:pred src in
                   let nodes =
                     match Parser.exp_of_string shr with
                     | exception _ -> 0
                     | a -> Ast.exp_size a
                   in
                   (shr, nodes)
             in
             [
               {
                 f_index = p.p_index;
                 f_origin = p.p_origin;
                 f_oracle = Recovery;
                 f_message = msg;
                 f_source = src;
                 f_shrunk = shrunk_src;
                 f_shrunk_nodes = shrunk_nodes;
               };
             ]))

let run_blind ?domains (cfg : config) =
  let before = Coverage.snapshot () in
  let programs = List.init cfg.count (fun i -> generate cfg ~index:i) in
  let scfg =
    Session.Config.(
      default |> with_backend cfg.backend |> with_profile cfg.profile)
  in
  let sess = Session.of_config scfg in
  let jobs =
    List.map
      (fun p -> (Printf.sprintf "fuzz-%d-%d" cfg.seed p.p_index, p.p_source))
      programs
  in
  let batch = Session.run_batch ?domains sess jobs in
  let rsess = Session.of_config scfg in
  let mutants_run = ref 0 in
  let failures =
    List.concat
      (List.map2
         (fun p (_, res) ->
           roundtrip_failure p @ agreement_failure p res
           @ recovery_failures cfg rsess mutants_run p)
         programs batch)
  in
  {
    r_config = cfg;
    r_generated = List.length programs;
    r_mutants_run = !mutants_run;
    r_failures = failures;
    (* Blind runs measure a whole-run delta (for coverage comparisons —
       see tools/ci.sh) but never guide on it; it is surfaced in text
       output only, so the pinned JSON report shape is unchanged. *)
    r_coverage = Coverage.diff (Coverage.snapshot ()) before;
    r_corpus_size = 0;
    r_corpus_added = 0;
    r_from_corpus = 0;
    r_corpus_entries = [];
  }

(* ------------------------------------------------------------------ *)
(* Corpus mutators.

   Small syntactic edits over a parsed corpus entry: decl splice/drop,
   type-argument swap, model shadow/unshadow, where-clause add/drop.
   Mutants need not stay well typed — ill-typed mutants explore the
   diagnostic and recovery space, and the measurement step classifies
   each outcome instead of assuming acceptance. *)

(* Body and rebuilder of a declaration-spine node. *)
let decl_parts (e : Ast.exp) : (Ast.exp * (Ast.exp -> Ast.exp)) option =
  match e.Ast.desc with
  | Ast.ConceptDecl (d, b) -> Some (b, fun b' -> Ast.concept_decl d b')
  | Ast.ModelDecl (d, b) -> Some (b, fun b' -> Ast.model_decl d b')
  | Ast.Using (n, b) -> Some (b, fun b' -> Ast.using n b')
  | Ast.TypeAlias (n, t, b) -> Some (b, fun b' -> Ast.type_alias n t b')
  | Ast.Let (x, e1, b) -> Some (b, fun b' -> Ast.let_ x e1 b')
  | _ -> None

let spine_length e =
  let rec go e n =
    match decl_parts e with Some (b, _) -> go b (n + 1) | None -> n
  in
  go e 0

(* Rebuild [e] with every node mapped by [f] (children first handled by
   the caller's recursion; [f] itself applies to one level). *)
let map_children f (e : Ast.exp) : Ast.exp =
  let mk d = { e with Ast.desc = d } in
  match e.Ast.desc with
  | Ast.Var _ | Ast.Lit _ | Ast.Prim _ | Ast.Member _ -> e
  | Ast.App (g, args) -> mk (Ast.App (f g, List.map f args))
  | Ast.TyApp (g, tys) -> mk (Ast.TyApp (f g, tys))
  | Ast.Abs (ps, b) -> mk (Ast.Abs (ps, f b))
  | Ast.TyAbs (ts, cs, b) -> mk (Ast.TyAbs (ts, cs, f b))
  | Ast.Let (x, e1, b) -> mk (Ast.Let (x, f e1, f b))
  | Ast.Tuple es -> mk (Ast.Tuple (List.map f es))
  | Ast.Nth (e1, k) -> mk (Ast.Nth (f e1, k))
  | Ast.Fix (x, t, b) -> mk (Ast.Fix (x, t, f b))
  | Ast.If (c, a, b) -> mk (Ast.If (f c, f a, f b))
  | Ast.ConceptDecl (d, b) ->
      mk
        (Ast.ConceptDecl
           ( { d with
               Ast.c_defaults =
                 List.map (fun (m, e) -> (m, f e)) d.Ast.c_defaults },
             f b ))
  | Ast.ModelDecl (d, b) ->
      mk
        (Ast.ModelDecl
           ( { d with
               Ast.m_members =
                 List.map (fun (m, e) -> (m, f e)) d.Ast.m_members },
             f b ))
  | Ast.Using (n, b) -> mk (Ast.Using (n, f b))
  | Ast.TypeAlias (n, t, b) -> mk (Ast.TypeAlias (n, t, f b))

let rec iter_exp f (e : Ast.exp) =
  f e;
  ignore
    (map_children
       (fun c ->
         iter_exp f c;
         c)
       e)

(* Drop the [k]-th declaration on the spine (its body floats up). *)
let mut_decl_drop r ast =
  let n = spine_length ast in
  if n = 0 then None
  else
    let k = rint r n in
    let rec go e k =
      match decl_parts e with
      | Some (b, rebuild) -> if k = 0 then b else rebuild (go b (k - 1))
      | None -> e
    in
    Some (go ast k)

(* Splice a random declaration from a donor entry's spine onto the
   front of the target. *)
let mut_decl_splice r ~donor ast =
  let n = spine_length donor in
  if n = 0 then None
  else
    let k = rint r n in
    let rec nth_rebuild e k =
      match decl_parts e with
      | Some (b, rebuild) -> if k = 0 then Some rebuild else nth_rebuild b (k - 1)
      | None -> None
    in
    Option.map (fun rebuild -> rebuild ast) (nth_rebuild donor k)

(* Swap one type argument of the [k]-th TyApp site for a random ground
   type. *)
let mut_tyarg_swap r ast =
  let sites = ref 0 in
  iter_exp
    (fun e ->
      match e.Ast.desc with
      | Ast.TyApp (_, tys) when tys <> [] -> incr sites
      | _ -> ())
    ast;
  if !sites = 0 then None
  else begin
    let target = rint r !sites in
    let ground = rchoose r [ tint; tbool; tlist tint ] in
    let seen = ref 0 in
    let rec go e =
      let e =
        match e.Ast.desc with
        | Ast.TyApp (g, tys) when tys <> [] ->
            let i = !seen in
            incr seen;
            if i = target then
              let j = rint r (List.length tys) in
              { e with Ast.desc = Ast.TyApp (g, replace_nth tys j ground) }
            else e
        | _ -> e
      in
      map_children go e
    in
    Some (go ast)
  end

(* Shadow (duplicate in place) or unshadow (drop) a model declaration
   on the spine — the lexical-scoping stress the paper cares about. *)
let mut_model_shadow r ast =
  let models = ref 0 in
  let rec count e =
    (match e.Ast.desc with Ast.ModelDecl _ -> incr models | _ -> ());
    match decl_parts e with Some (b, _) -> count b | None -> ()
  in
  count ast;
  if !models = 0 then None
  else begin
    let target = rint r !models in
    let shadow = rchance r 0.5 in
    let seen = ref 0 in
    let rec go e =
      match e.Ast.desc with
      | Ast.ModelDecl (d, b) ->
          let i = !seen in
          incr seen;
          if i = target then
            if shadow then Ast.model_decl d (Ast.model_decl d b)
            else b
          else Ast.model_decl d (go b)
      | _ -> (
          match decl_parts e with
          | Some (b, rebuild) -> rebuild (go b)
          | None -> e)
    in
    Some (go ast)
  end

(* Add or drop a where-clause constraint on the [k]-th TyAbs node. *)
let mut_where_edit r ast =
  let sites = ref 0 in
  iter_exp
    (fun e -> match e.Ast.desc with Ast.TyAbs _ -> incr sites | _ -> ())
    ast;
  if !sites = 0 then None
  else begin
    (* Concept names visible anywhere in the entry, for added models. *)
    let concepts = ref [] in
    iter_exp
      (fun e ->
        match e.Ast.desc with
        | Ast.ConceptDecl (d, _) -> concepts := d.Ast.c_name :: !concepts
        | Ast.Member (c, _, _) -> concepts := c :: !concepts
        | Ast.TyAbs (_, cs, _) ->
            List.iter
              (function
                | Ast.CModel (c, _) -> concepts := c :: !concepts
                | Ast.CSame _ -> ())
              cs
        | _ -> ())
      ast;
    let target = rint r !sites in
    let seen = ref 0 in
    let changed = ref false in
    let rec go e =
      let e =
        match e.Ast.desc with
        | Ast.TyAbs (ts, cs, b) ->
            let i = !seen in
            incr seen;
            if i <> target then e
            else if cs <> [] && rchance r 0.5 then begin
              (* drop a random constraint *)
              let j = rint r (List.length cs) in
              changed := true;
              { e with
                Ast.desc =
                  Ast.TyAbs (ts, List.filteri (fun k _ -> k <> j) cs, b) }
            end
            else if ts <> [] && !concepts <> [] then begin
              let c = rchoose r !concepts in
              let tv = rchoose r ts in
              changed := true;
              { e with
                Ast.desc =
                  Ast.TyAbs (ts, cs @ [ Ast.CModel (c, [ Ast.TVar tv ]) ], b)
              }
            end
            else e
        | _ -> e
      in
      map_children go e
    in
    let ast' = go ast in
    if !changed then Some ast' else None
  end

(* One mutation attempt: pick a mutator by weight and fall through the
   others if it does not apply to this entry. *)
let mutate r ~donor ast =
  let order =
    rweighted r
      [
        (3, [ `Splice; `TyArg; `Shadow; `Where; `Drop ]);
        (3, [ `TyArg; `Where; `Splice; `Drop; `Shadow ]);
        (2, [ `Shadow; `Splice; `TyArg; `Drop; `Where ]);
        (2, [ `Where; `TyArg; `Shadow; `Splice; `Drop ]);
        (1, [ `Drop; `Splice; `Where; `TyArg; `Shadow ]);
      ]
  in
  let apply = function
    | `Drop -> mut_decl_drop r ast
    | `Splice -> mut_decl_splice r ~donor ast
    | `TyArg -> mut_tyarg_swap r ast
    | `Shadow -> mut_model_shadow r ast
    | `Where -> mut_where_edit r ast
  in
  List.fold_left
    (fun acc m -> match acc with Some _ -> acc | None -> apply m)
    None order

(* ------------------------------------------------------------------ *)
(* On-disk corpus (diskcache conventions: entries named by content
   digest, written to a temp file then atomically renamed, so parallel
   workers and crashes never leave a torn entry). *)

let rec mkdirs d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdirs (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let corpus_digest source = Digest.to_hex (Digest.string source)

let corpus_write ~dir ~digest source =
  mkdirs dir;
  let path = Filename.concat dir (digest ^ ".fg") in
  if not (Sys.file_exists path) then begin
    match Filename.temp_file ~temp_dir:dir ".corpus-" ".tmp" with
    | exception Sys_error _ -> ()
    | tmp -> (
        match open_out_bin tmp with
        | exception Sys_error _ -> ()
        | oc ->
            output_string oc source;
            close_out oc;
            (try Sys.rename tmp path
             with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())))
  end

let corpus_load ~dir =
  match Sys.is_directory dir with
  | exception Sys_error _ -> []
  | false -> []
  | true ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".fg")
      |> List.sort String.compare
      |> List.filter_map (fun f ->
             match open_in_bin (Filename.concat dir f) with
             | exception Sys_error _ -> None
             | ic ->
                 let n = in_channel_length ic in
                 let s = really_input_string ic n in
                 close_in ic;
                 Some (Filename.remove_extension f, s))

(* ------------------------------------------------------------------ *)
(* Coverage-guided mode.

   Phase A is strictly sequential: each candidate (mutated from the
   corpus, or generated when the corpus is dry) runs through a fresh
   session bracketed by coverage snapshots, so its delta is exact, the
   corpus-admission decisions are a pure function of (seed, corpus),
   and the reported coverage map — the union of the per-candidate
   deltas — is byte-identical whatever [?domains] is.  Phase B then
   fans the oracles out over domains exactly like blind mode; nothing
   it does feeds back into the map or the corpus. *)

(* How a candidate's recovering run classified. *)
type measured =
  | MWellTyped
  | MRejected  (* at least one error diagnostic: explored error space *)
  | MCrash of string
  | MSilent  (* rejected without a single error diagnostic *)

let measure scfg src =
  let before = Coverage.snapshot () in
  let m =
    let sess = Session.of_config scfg in
    match Session.run_full ~fuel:shrink_fuel sess src with
    | exception e -> MCrash (Printexc.to_string e)
    | { Session.outcome = Some _; _ } -> MWellTyped
    | { Session.outcome = None; diagnostics } ->
        if List.exists (fun d -> d.Diag.severity = Diag.Err) diagnostics then
          MRejected
        else MSilent
  in
  (m, Coverage.diff (Coverage.snapshot ()) before)

(* A candidate whose recovering run crashed or got silently dropped is
   a recovery-oracle failure whatever its origin. *)
let guided_bad scfg src =
  let sess = Session.of_config scfg in
  match Session.run_full ~fuel:shrink_fuel sess src with
  | exception _ -> true
  | { Session.outcome = None; diagnostics } ->
      not (List.exists (fun d -> d.Diag.severity = Diag.Err) diagnostics)
  | _ -> false

let guided_failure scfg (p : program) msg =
  let pred c = guided_bad scfg (Pretty.exp_to_string c) in
  let shr = try shrink ~still_fails:pred p.p_ast with _ -> p.p_ast in
  {
    f_index = p.p_index;
    f_origin = p.p_origin;
    f_oracle = Recovery;
    f_message = msg;
    f_source = p.p_source;
    f_shrunk = Pretty.exp_to_string shr;
    f_shrunk_nodes = Ast.exp_size shr;
  }

(* Shrink budget for corpus admission: novelty is usually preserved by
   much smaller programs, but we cannot afford blind-shrinker fuel on
   every interesting input. *)
let corpus_shrink_fuel = 96

let run_guided ?domains (cfg : config) =
  let scfg =
    Session.Config.(
      default |> with_backend cfg.backend |> with_profile cfg.profile)
  in
  (* In-memory corpus: only entries that re-parse can seed mutations;
     everything is tracked by digest so fleet merges are idempotent. *)
  let initial =
    match cfg.corpus_dir with Some d -> corpus_load ~dir:d | None -> []
  in
  let corpus = ref [] in
  let known = Hashtbl.create 64 in
  List.iter
    (fun (digest, src) ->
      if not (Hashtbl.mem known digest) then begin
        Hashtbl.replace known digest ();
        match Parser.exp_of_string src with
        | exception _ -> ()
        | ast -> corpus := (digest, src, ast) :: !corpus
      end)
    initial;
  corpus := List.rev !corpus;
  let fresh = ref [] in
  let acc = ref [] in
  let from_corpus = ref 0 in
  let candidates = ref [] in
  for i = 0 to cfg.count - 1 do
    let r = rng_of ~seed:cfg.seed ~index:i in
    let mutated =
      if !corpus <> [] && rchance r 0.75 then begin
        let _, _, base = rchoose r !corpus in
        let _, _, donor = rchoose r !corpus in
        match mutate r ~donor base with
        | None -> None
        | Some ast0 ->
            let source = Pretty.exp_to_string ast0 in
            let ast = try Parser.exp_of_string source with _ -> ast0 in
            Some { p_index = i; p_origin = Corpus; p_ast = ast; p_source = source }
      end
      else None
    in
    let p =
      match mutated with
      | Some p ->
          incr from_corpus;
          p
      | None -> generate cfg ~index:i
    in
    let m, delta = measure scfg p.p_source in
    let novel =
      List.filter (fun k -> not (List.mem_assoc k !acc)) (Coverage.keys delta)
    in
    acc := Coverage.merge !acc delta;
    if novel <> [] then begin
      (* Minimize while the novel decision points stay covered, then
         admit to the corpus (and persist, when a directory is given). *)
      let covers src =
        let _, d = measure scfg src in
        let ks = Coverage.keys d in
        List.for_all (fun k -> List.mem k ks) novel
      in
      let small =
        try
          shrink ~fuel:corpus_shrink_fuel
            ~still_fails:(fun c -> covers (Pretty.exp_to_string c))
            p.p_ast
        with _ -> p.p_ast
      in
      let small_src = Pretty.exp_to_string small in
      let src = if covers small_src then small_src else p.p_source in
      let digest = corpus_digest src in
      if not (Hashtbl.mem known digest) then begin
        Hashtbl.replace known digest ();
        (match Parser.exp_of_string src with
        | exception _ -> ()
        | ast -> corpus := !corpus @ [ (digest, src, ast) ]);
        fresh := (digest, src) :: !fresh;
        match cfg.corpus_dir with
        | Some d -> corpus_write ~dir:d ~digest src
        | None -> ()
      end
    end;
    candidates := (p, m) :: !candidates
  done;
  let programs = List.rev !candidates in
  (* Phase B: oracles, fanned out like blind mode.  Only candidates the
     recovering pipeline accepted run the agreement batch. *)
  let well_typed =
    List.filter (fun (_, m) -> match m with MWellTyped -> true | _ -> false)
      programs
  in
  let jobs =
    List.map
      (fun (p, _) ->
        (Printf.sprintf "fuzz-%d-%d" cfg.seed p.p_index, p.p_source))
      well_typed
  in
  let batch = Session.run_batch ?domains (Session.of_config scfg) jobs in
  let agree = Hashtbl.create 32 in
  List.iter2
    (fun (p, _) (_, res) -> Hashtbl.replace agree p.p_index res)
    well_typed batch;
  let rsess = Session.of_config scfg in
  let mutants_run = ref 0 in
  let failures =
    List.concat
      (List.map
         (fun (p, m) ->
           let classed =
             match m with
             | MCrash msg ->
                 [ guided_failure scfg p ("recovering pipeline crashed: " ^ msg) ]
             | MSilent ->
                 [
                   guided_failure scfg p
                     "rejected program produced no error diagnostics";
                 ]
             | MWellTyped | MRejected -> []
           in
           let oracles =
             match m with
             | MWellTyped ->
                 roundtrip_failure p
                 @ agreement_failure p (Hashtbl.find agree p.p_index)
             | _ -> []
           in
           classed @ oracles @ recovery_failures cfg rsess mutants_run p)
         programs)
  in
  {
    r_config = cfg;
    r_generated = List.length programs;
    r_mutants_run = !mutants_run;
    r_failures = failures;
    r_coverage = !acc;
    r_corpus_size = Hashtbl.length known;
    r_corpus_added = List.length !fresh;
    r_from_corpus = !from_corpus;
    r_corpus_entries = List.rev !fresh;
  }

let run ?domains cfg =
  if cfg.guided || cfg.corpus_dir <> None then
    run_guided ?domains { cfg with guided = true }
  else run_blind ?domains cfg

(* ------------------------------------------------------------------ *)
(* Reporting. *)

let failure_to_json f =
  Json.Obj
    ([ ("index", Json.Int f.f_index);
       ("oracle", Json.Str (oracle_name f.f_oracle)) ]
    (* origin appears only for corpus mutants, keeping the pinned
       blind-mode failure shape unchanged *)
    @ (match f.f_origin with
      | Gen -> []
      | Corpus -> [ ("origin", Json.Str (origin_name f.f_origin)) ])
    @ [
        ("message", Json.Str f.f_message);
        ("source", Json.Str f.f_source);
        ("shrunk", Json.Str f.f_shrunk);
        ("shrunk_nodes", Json.Int f.f_shrunk_nodes);
      ])

let report_to_json r =
  Json.Obj
    ([
      ( "fuzz",
        Json.Obj
          ([
             ("seed", Json.Int r.r_config.seed);
             ("count", Json.Int r.r_config.count);
             ("size", Json.Int r.r_config.size);
             ("mutants", Json.Int r.r_config.mutants);
           ]
          (* backend appears only off Dict (and guided only when on),
             keeping the pinned dictionary-backend JSON shape
             unchanged *)
          @ (match r.r_config.backend with
            | Backend.Dict -> []
            | b -> [ ("backend", Json.Str (Backend.to_string b)) ])
          @ if r.r_config.guided then [ ("guided", Json.Bool true) ] else []) );
      ("generated", Json.Int r.r_generated);
      ("mutants_run", Json.Int r.r_mutants_run);
    ]
    (* coverage/corpus objects appear only in guided mode, keeping the
       pinned blind-mode report shape unchanged *)
    @ (if r.r_config.guided then
         [
           ( "coverage",
             Json.Obj
               [
                 ("distinct", Json.Int (Coverage.distinct r.r_coverage));
                 ("total", Json.Int (Coverage.total r.r_coverage));
                 ("map", Coverage.to_json r.r_coverage);
               ] );
           ( "corpus",
             Json.Obj
               [
                 ("size", Json.Int r.r_corpus_size);
                 ("added", Json.Int r.r_corpus_added);
                 ("from_corpus", Json.Int r.r_from_corpus);
               ] );
         ]
       else [])
    @ [
        ("ok", Json.Bool (r.r_failures = []));
        ("failures", Json.List (List.map failure_to_json r.r_failures));
      ])

let save_failures ~dir r =
  mkdirs dir;
  let counts = Hashtbl.create 8 in
  List.map
    (fun f ->
      let stem =
        Printf.sprintf "fuzz-%d-%d-%s" r.r_config.seed f.f_index
          (oracle_name f.f_oracle)
      in
      let n =
        match Hashtbl.find_opt counts stem with None -> 0 | Some n -> n
      in
      Hashtbl.replace counts stem (n + 1);
      let name = if n = 0 then stem else Printf.sprintf "%s-%d" stem n in
      let path = Filename.concat dir (name ^ ".fg") in
      let oc = open_out path in
      let line fmt = Printf.fprintf oc fmt in
      line "// fuzz counterexample (oracle: %s)\n" (oracle_name f.f_oracle);
      line "// seed %d, program %d, origin: %s\n" r.r_config.seed f.f_index
        (origin_name f.f_origin);
      List.iter
        (fun l -> line "// %s\n" l)
        (String.split_on_char '\n' f.f_message);
      line "%s\n" f.f_shrunk;
      line "\n// original:\n";
      List.iter
        (fun l -> line "// %s\n" l)
        (String.split_on_char '\n' f.f_source);
      close_out oc;
      path)
    r.r_failures
