(* Tests for the FG parser and pretty printer: concrete syntax of
   concepts, models, where clauses, associated types, same-type
   constraints — and the delicate '.' disambiguation in type-level
   where clauses. *)

open Fg_core
module A = Ast

let parse = Parser.exp_of_string
let parse_ty = Parser.ty_of_string
let parse_constr = Parser.constr_of_string

let flat_exp src = Pretty.exp_to_flat_string (parse src)
let flat_ty src = Fg_util.Pp_util.to_flat_string Pretty.pp_ty (parse_ty src)

let test_member_access () =
  match (parse "Monoid<int>.binary_op").desc with
  | A.Member ("Monoid", [ A.TBase A.TInt ], "binary_op") -> ()
  | _ -> Alcotest.fail "member access shape"

let test_member_multi_arg () =
  match (parse "OutputIterator<list int, int>.put").desc with
  | A.Member ("OutputIterator", [ A.TList (A.TBase A.TInt); A.TBase A.TInt ], "put")
    -> ()
  | _ -> Alcotest.fail "multi-arg member access"

let test_assoc_type () =
  match parse_ty "Iterator<i>.elt" with
  | A.TAssoc ("Iterator", [ A.TVar "i" ], "elt") -> ()
  | _ -> Alcotest.fail "assoc type shape"

let test_tfun_where () =
  match (parse "tfun t where Monoid<t> => fun (x : t) => x").desc with
  | A.TyAbs ([ "t" ], [ A.CModel ("Monoid", [ A.TVar "t" ]) ], _) -> ()
  | _ -> Alcotest.fail "tfun where shape"

let test_tfun_no_where () =
  match (parse "tfun t u => 1").desc with
  | A.TyAbs ([ "t"; "u" ], [], _) -> ()
  | _ -> Alcotest.fail "tfun without where"

let test_same_type_constraint () =
  match parse_constr "Iterator<i1>.elt == Iterator<i2>.elt" with
  | A.CSame
      ( A.TAssoc ("Iterator", [ A.TVar "i1" ], "elt"),
        A.TAssoc ("Iterator", [ A.TVar "i2" ], "elt") ) ->
      ()
  | _ -> Alcotest.fail "same-type constraint shape"

let test_constr_model () =
  match parse_constr "Monoid<list int>" with
  | A.CModel ("Monoid", [ A.TList (A.TBase A.TInt) ]) -> ()
  | _ -> Alcotest.fail "model constraint shape"

let test_forall_dot_disambiguation () =
  (* the terminator "." vs the projection "." — three tokens of
     lookahead decide (see Parser's module comment) *)
  (* 1. requirement then body type *)
  (match parse_ty "forall t where Monoid<t>. t" with
  | A.TForall ([ "t" ], [ A.CModel ("Monoid", _) ], A.TVar "t") -> ()
  | _ -> Alcotest.fail "simple terminator");
  (* 2. same-type constraint headed by a projection *)
  (match parse_ty "forall t where Iterator<t>.elt == int. t" with
  | A.TForall ([ "t" ], [ A.CSame (A.TAssoc _, A.TBase A.TInt) ], A.TVar "t")
    ->
      ()
  | _ -> Alcotest.fail "projection-headed CSame");
  (* 3. requirement, then body that is itself a projection *)
  (match parse_ty "forall t where Iterator<t>. Iterator<t>.elt" with
  | A.TForall ([ "t" ], [ A.CModel ("Iterator", _) ], A.TAssoc _) -> ()
  | _ -> Alcotest.fail "projection body");
  (* 4. requirement then bare-variable body (the ambiguous-looking one:
     parses as terminator + TVar) *)
  match parse_ty "forall t where Iterator<t>. elt" with
  | A.TForall ([ "t" ], [ A.CModel ("Iterator", _) ], A.TVar "elt") -> ()
  | _ -> Alcotest.fail "bare variable body"

let test_concept_decl () =
  let src =
    {|concept Iterator<i> {
        types elt;
        next : fn(i) -> i;
        curr : fn(i) -> elt;
      } in 0|}
  in
  match (parse src).desc with
  | A.ConceptDecl (d, _) ->
      Alcotest.(check string) "name" "Iterator" d.c_name;
      Alcotest.(check (list string)) "params" [ "i" ] d.c_params;
      Alcotest.(check (list string)) "assoc" [ "elt" ] d.c_assoc;
      Alcotest.(check (list string)) "members" [ "next"; "curr" ]
        (List.map fst d.c_members)
  | _ -> Alcotest.fail "concept decl shape"

let test_concept_refines_same () =
  let src =
    {|concept IntIter<i> {
        refines Iterator<i>, Eq<i>;
        same Iterator<i>.elt == int;
      } in 0|}
  in
  match (parse src).desc with
  | A.ConceptDecl (d, _) ->
      Alcotest.(check (list string)) "refines" [ "Iterator"; "Eq" ]
        (List.map fst d.c_refines);
      Alcotest.(check int) "same count" 1 (List.length d.c_same)
  | _ -> Alcotest.fail "refines/same shape"

let test_model_decl () =
  let src =
    {|model Iterator<list int> {
        types elt = int;
        next = fun (ls : list int) => cdr[int](ls);
      } in 0|}
  in
  match (parse src).desc with
  | A.ModelDecl (d, _) ->
      Alcotest.(check string) "concept" "Iterator" d.m_concept;
      Alcotest.(check int) "one assoc" 1 (List.length d.m_assoc);
      Alcotest.(check (list string)) "members" [ "next" ]
        (List.map fst d.m_members)
  | _ -> Alcotest.fail "model decl shape"

let test_empty_model () =
  match (parse "model Ring<int> { } in 0").desc with
  | A.ModelDecl (d, _) ->
      Alcotest.(check int) "no assoc" 0 (List.length d.m_assoc);
      Alcotest.(check int) "no members" 0 (List.length d.m_members)
  | _ -> Alcotest.fail "empty model"

let test_type_alias () =
  match (parse "type t = list int in 0").desc with
  | A.TypeAlias ("t", A.TList (A.TBase A.TInt), _) -> ()
  | _ -> Alcotest.fail "type alias shape"

let test_forall_in_member_type () =
  (* polymorphic members are allowed by the grammar *)
  let src = "concept C<t> { poly : forall a. fn(a, t) -> a; } in 0" in
  match (parse src).desc with
  | A.ConceptDecl (d, _) -> (
      match List.assoc "poly" d.c_members with
      | A.TForall ([ "a" ], [], _) -> ()
      | _ -> Alcotest.fail "member type shape")
  | _ -> Alcotest.fail "concept shape"

let test_nested_angle_brackets () =
  (* C<D<int>.elt> — '>' tokens never combine *)
  match parse_ty "Outer<Inner<int>.elt>.out" with
  | A.TAssoc ("Outer", [ A.TAssoc ("Inner", [ A.TBase A.TInt ], "elt") ], "out")
    ->
      ()
  | _ -> Alcotest.fail "nested angles"

let test_comparison_vs_angles () =
  (* '<' as comparison in expressions still works *)
  Alcotest.(check string) "comparison" "ilt(a, b)" (flat_exp "a < b");
  (* and '>' likewise *)
  Alcotest.(check string) "greater" "igt(x, 2)" (flat_exp "x > 2")

let test_pretty_roundtrip () =
  List.iter
    (fun src ->
      let e = parse src in
      let printed = Pretty.exp_to_string e in
      let e2 = parse printed in
      if not (A.ty_equal (A.TVar "x") (A.TVar "x")) then ();
      Alcotest.(check string) src
        (Pretty.exp_to_flat_string e)
        (Pretty.exp_to_flat_string e2))
    [
      Corpus.fig5_accumulate.source;
      Corpus.fig6_overlap.source;
      Corpus.merge_example.source;
      Corpus.diamond_refinement.source;
      Corpus.refine_at_assoc.source;
      "type t = int in fun (x : t) => x";
      "tfun a b where a == b => fun (x : a) => x";
    ]

let test_ty_roundtrip () =
  List.iter
    (fun src -> Alcotest.(check string) src (flat_ty src) (flat_ty (flat_ty src |> fun s -> s)))
    [
      "forall t where Monoid<t>. fn(t) -> t";
      "forall i1 i2 where Iterator<i1>, Iterator<i2>, Iterator<i1>.elt == Iterator<i2>.elt. fn(i1, i2) -> bool";
      "Iterator<list int>.elt";
      "fn(Iterator<i>.elt) -> bool";
      "tuple(int) * tuple()";
    ]

let test_parse_errors () =
  List.iter
    (fun src ->
      match Fg_util.Diag.protect (fun () -> parse src) with
      | Ok _ -> Alcotest.failf "%s: expected parse error" src
      | Error d ->
          Alcotest.(check bool) "phase" true
            (d.phase = Fg_util.Diag.Parser || d.phase = Fg_util.Diag.Lexer))
    [
      "concept c<t> { } in 0" (* lowercase concept name *);
      "concept C<> { } in 0" (* no params *);
      "model C<int> { x : int; } in 0" (* ':' in model *);
      "concept C<t> { x = 1; } in 0" (* '=' in concept *);
      "tfun => 1" (* no binders *);
      "Monoid<int>" (* member access without member *);
      "type T = int in 0" (* uppercase alias *);
    ]

let test_keywords_reserved () =
  (* keywords cannot be identifiers *)
  List.iter
    (fun src ->
      match Fg_util.Diag.protect (fun () -> parse src) with
      | Ok _ -> Alcotest.failf "%s: expected parse error" src
      | Error _ -> ())
    [ "let let = 1 in 0"; "fun (in : int) => 0"; "let concept = 1 in 0" ]

let test_extension_syntax_shapes () =
  (* named model *)
  (match (parse "model m = Eq<int> { eq = ieq; } in 0").desc with
  | A.ModelDecl ({ m_name = Some "m"; m_params = []; _ }, _) -> ()
  | _ -> Alcotest.fail "named model shape");
  (* parameterized model without context *)
  (match (parse "model <t> Eq<list t> { eq = ieq; } in 0").desc with
  | A.ModelDecl ({ m_name = None; m_params = [ "t" ]; m_constrs = []; _ }, _)
    -> ()
  | _ -> Alcotest.fail "parameterized shape");
  (* parameterized model with context *)
  (match
     (parse "model <t> where Eq<t> => Eq<list t> { eq = ieq; } in 0").desc
   with
  | A.ModelDecl
      ( { m_params = [ "t" ]; m_constrs = [ A.CModel ("Eq", [ A.TVar "t" ]) ]; _ },
        _ ) ->
      ()
  | _ -> Alcotest.fail "context shape");
  (* named AND parameterized *)
  (match
     (parse "model m = <t> Eq<list t> { eq = ieq; } in 0").desc
   with
  | A.ModelDecl ({ m_name = Some "m"; m_params = [ "t" ]; _ }, _) -> ()
  | _ -> Alcotest.fail "named parameterized shape");
  (* using *)
  (match (parse "using m in 1 + 1").desc with
  | A.Using ("m", _) -> ()
  | _ -> Alcotest.fail "using shape");
  (* require item *)
  (match (parse "concept C<c> { types i; require It<i>; } in 0").desc with
  | A.ConceptDecl ({ c_requires = [ ("It", [ A.TVar "i" ]) ]; _ }, _) -> ()
  | _ -> Alcotest.fail "require shape");
  (* default member *)
  match
    (parse "concept C<t> { v : t; w : t = C<t>.v; } in 0").desc
  with
  | A.ConceptDecl ({ c_defaults = [ ("w", _) ]; c_members; _ }, _) ->
      Alcotest.(check (list string)) "members" [ "v"; "w" ]
        (List.map fst c_members)
  | _ -> Alcotest.fail "default shape"

let test_extension_syntax_errors () =
  List.iter
    (fun src ->
      match Fg_util.Diag.protect (fun () -> parse src) with
      | Ok _ -> Alcotest.failf "%s: expected parse error" src
      | Error _ -> ())
    [
      "model <t> where Eq<t> Eq<list t> { } in 0" (* missing => *);
      "model <> Eq<int> { } in 0" (* empty params *);
      "using M in 0" (* uppercase name *);
      "using m 0" (* missing in *);
      "concept C<t> { require it<t>; } in 0" (* lowercase concept *);
    ]

let test_locations () =
  let e = parse "let x = 1 in\n  x + y" in
  match e.desc with
  | A.Let (_, _, body) -> (
      match body.desc with
      | A.App (_, [ _; y ]) ->
          Alcotest.(check int) "y line" 2 y.loc.start_pos.line;
          Alcotest.(check int) "y col" 7 y.loc.start_pos.col
      | _ -> Alcotest.fail "body shape")
  | _ -> Alcotest.fail "let shape"

let suite =
  [
    Alcotest.test_case "member access" `Quick test_member_access;
    Alcotest.test_case "multi-arg member access" `Quick test_member_multi_arg;
    Alcotest.test_case "associated type" `Quick test_assoc_type;
    Alcotest.test_case "tfun with where" `Quick test_tfun_where;
    Alcotest.test_case "tfun without where" `Quick test_tfun_no_where;
    Alcotest.test_case "same-type constraint" `Quick test_same_type_constraint;
    Alcotest.test_case "model constraint" `Quick test_constr_model;
    Alcotest.test_case "forall '.' disambiguation" `Quick
      test_forall_dot_disambiguation;
    Alcotest.test_case "concept declaration" `Quick test_concept_decl;
    Alcotest.test_case "refines and same items" `Quick
      test_concept_refines_same;
    Alcotest.test_case "model declaration" `Quick test_model_decl;
    Alcotest.test_case "empty model" `Quick test_empty_model;
    Alcotest.test_case "type alias" `Quick test_type_alias;
    Alcotest.test_case "polymorphic member type" `Quick
      test_forall_in_member_type;
    Alcotest.test_case "nested angle brackets" `Quick
      test_nested_angle_brackets;
    Alcotest.test_case "comparison vs angles" `Quick test_comparison_vs_angles;
    Alcotest.test_case "printer/parser round-trip" `Quick test_pretty_roundtrip;
    Alcotest.test_case "type printer round-trip" `Quick test_ty_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "keywords reserved" `Quick test_keywords_reserved;
    Alcotest.test_case "extension syntax shapes" `Quick
      test_extension_syntax_shapes;
    Alcotest.test_case "extension syntax errors" `Quick
      test_extension_syntax_errors;
    Alcotest.test_case "source locations" `Quick test_locations;
  ]
