lib/fg/corpus.ml: Fg_util Interp List String
