test/test_fg_check.ml: Alcotest Astring_contains Check Corpus Fg_core Fg_util Interp Parser Pipeline Pretty
