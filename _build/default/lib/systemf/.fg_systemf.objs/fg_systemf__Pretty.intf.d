lib/systemf/pretty.mli: Ast Fmt
