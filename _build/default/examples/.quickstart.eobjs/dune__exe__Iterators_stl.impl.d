examples/iterators_stl.ml: Fg_core Fmt Printf
