(** A semiring-generic linear-algebra library written in FG.

    The paper's authors came to concepts from the Matrix Template
    Library; this module closes that loop the same way {!Graph_lib}
    closes the BGL loop.  A single generic matrix multiplication,
    constrained only by a [Semiring] concept, computes

    - ordinary arithmetic products over (+, ×, 0, 1),
    - graph reachability over the boolean semiring (∨, ∧, false, true),
    - shortest paths over the tropical semiring (min, +, ∞, 0),

    which is the textbook demonstration that generic programming is
    about {e algebraic structure}, not container plumbing.

    Vectors are [list t]; matrices are [list (list t)] (row-major).
    All code below is FG source. *)

(* ------------------------------------------------------------------ *)
(* Concept                                                             *)

let concepts =
  {|// A semiring: two monoid structures sharing a carrier, with the
// usual distributivity (not expressible in FG's type system; stated
// in documentation like the paper's Monoid axioms in Section 3.1).
concept Semiring<t> {
  sr_add  : fn(t, t) -> t;
  sr_mul  : fn(t, t) -> t;
  sr_zero : t;
  sr_one  : t;
} in
|}

(* ------------------------------------------------------------------ *)
(* Models: three semirings                                             *)

let models =
  {|// ordinary integer arithmetic
model arith = Semiring<int> {
  sr_add = iadd; sr_mul = imult; sr_zero = 0; sr_one = 1;
} in
// the boolean (reachability) semiring
model boolean = Semiring<bool> {
  sr_add = bor; sr_mul = band; sr_zero = false; sr_one = true;
} in
// the tropical (min, +) semiring; 1000000 stands in for infinity
model tropical = Semiring<int> {
  sr_add = imin;
  sr_mul = fun (a : int, b : int) =>
    if a >= 1000000 || b >= 1000000 then 1000000 else a + b;
  sr_zero = 1000000;
  sr_one = 0;
} in
|}

(* ------------------------------------------------------------------ *)
(* Generic algorithms                                                  *)

let algorithms =
  {|// dot product of two vectors
let dot =
  tfun t where Semiring<t> =>
    fix (go : fn(list t, list t) -> t) =>
      fun (xs : list t, ys : list t) =>
        if null[t](xs) then Semiring<t>.sr_zero
        else if null[t](ys) then Semiring<t>.sr_zero
        else Semiring<t>.sr_add(
               Semiring<t>.sr_mul(car[t](xs), car[t](ys)),
               go(cdr[t](xs), cdr[t](ys)))
in
// scale a vector
let vec_scale =
  tfun t where Semiring<t> =>
    fix (go : fn(t, list t) -> list t) =>
      fun (k : t, xs : list t) =>
        if null[t](xs) then nil[t]
        else cons[t](Semiring<t>.sr_mul(k, car[t](xs)), go(k, cdr[t](xs)))
in
// pointwise vector sum
let vec_add =
  tfun t where Semiring<t> =>
    fix (go : fn(list t, list t) -> list t) =>
      fun (xs : list t, ys : list t) =>
        if null[t](xs) then ys
        else if null[t](ys) then xs
        else cons[t](Semiring<t>.sr_add(car[t](xs), car[t](ys)),
                     go(cdr[t](xs), cdr[t](ys)))
in
// matrix * vector
let mat_vec =
  tfun t where Semiring<t> =>
    fix (go : fn(list (list t), list t) -> list t) =>
      fun (m : list (list t), v : list t) =>
        if null[list t](m) then nil[t]
        else cons[t](dot[t](car[list t](m), v), go(cdr[list t](m), v))
in
// the k-th column of a matrix
let column =
  tfun t where Semiring<t> =>
    fix (go : fn(list (list t), int) -> list t) =>
      fun (m : list (list t), k : int) =>
        if null[list t](m) then nil[t]
        else
          cons[t](
            (fix (pick : fn(list t, int) -> t) =>
              fun (row : list t, i : int) =>
                if null[t](row) then Semiring<t>.sr_zero
                else if i == 0 then car[t](row)
                else pick(cdr[t](row), i - 1))(car[list t](m), k),
            go(cdr[list t](m), k))
in
// transpose
let transpose =
  tfun t where Semiring<t> =>
    fun (m : list (list t)) =>
      if null[list t](m) then nil[list t]
      else
        (fix (go : fn(int) -> list (list t)) =>
          fun (k : int) =>
            if k >= length[t](car[list t](m)) then nil[list t]
            else cons[list t](column[t](m, k), go(k + 1)))(0)
in
// matrix * matrix
let mat_mul =
  tfun t where Semiring<t> =>
    fun (a : list (list t), b : list (list t)) =>
      let bt = transpose[t](b) in
      (fix (rows : fn(list (list t)) -> list (list t)) =>
        fun (m : list (list t)) =>
          if null[list t](m) then nil[list t]
          else cons[list t](mat_vec[t](bt, car[list t](m)), rows(cdr[list t](m))))(a)
in
// n x n identity over the semiring (one on the diagonal, zero off it)
let identity_matrix =
  tfun t where Semiring<t> =>
    fun (n : int) =>
      (fix (rows : fn(int) -> list (list t)) =>
        fun (i : int) =>
          if i >= n then nil[list t]
          else
            cons[list t](
              (fix (cells : fn(int) -> list t) =>
                fun (j : int) =>
                  if j >= n then nil[t]
                  else cons[t](if i == j then Semiring<t>.sr_one
                               else Semiring<t>.sr_zero,
                               cells(j + 1)))(0),
              rows(i + 1)))(0)
in
// matrix power: closure steps for reachability / path lengths
let mat_pow =
  tfun t where Semiring<t> =>
    fix (go : fn(list (list t), int, int) -> list (list t)) =>
      fun (m : list (list t), n : int, k : int) =>
        if k <= 0 then identity_matrix[t](n)
        else mat_mul[t](m, go(m, n, k - 1))
in
|}

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

(** Prelude + Semiring + the three named models + algorithms. *)
let full =
  Prelude.concepts ^ Prelude.int_models ^ Prelude.bool_models
  ^ Prelude.list_int_models ^ Prelude.list_parameterized_models ^ concepts
  ^ models ^ algorithms

let wrap body = full ^ body

(** Matrix literal at element type [t] from rows of concrete syntax. *)
let matrix_src (elt_ty : string) (rows : string list list) : string =
  let row cells =
    List.fold_right
      (fun c acc -> Printf.sprintf "cons[%s](%s, %s)" elt_ty c acc)
      cells
      (Printf.sprintf "nil[%s]" elt_ty)
  in
  List.fold_right
    (fun r acc ->
      Printf.sprintf "cons[list %s](%s, %s)" elt_ty (row r) acc)
    rows
    (Printf.sprintf "nil[list %s]" elt_ty)

let int_matrix (rows : int list list) : string =
  matrix_src "int" (List.map (List.map string_of_int) rows)

let bool_matrix (rows : bool list list) : string =
  matrix_src "bool" (List.map (List.map string_of_bool) rows)
