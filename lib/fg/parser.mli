(** Recursive-descent parser for System FG concrete syntax (see the
    grammar in the implementation header and README).  All entry points
    raise located {!Fg_util.Diag.Error} values on failure. *)

val exp_of_string : ?file:string -> string -> Ast.exp

(** Recovering entry point: lex and parse with error recovery, reporting
    every diagnostic to [engine] instead of raising.  After a syntax
    error the parser synchronizes at the next top-level declaration
    keyword ([concept]/[model]/[let]/[type]/[using]) and keeps going, so
    one pass reports several independent syntax errors.  Returns the
    expression assembled from the declarations that did parse (a unit
    placeholder stands in for an unparseable residual body), plus the
    names bound by the declarations that were dropped — the checker
    poisons those to suppress cascading errors. *)
val exp_of_string_recovering :
  engine:Fg_util.Diag.engine ->
  ?file:string ->
  string ->
  Ast.exp * string list
val ty_of_string : ?file:string -> string -> Ast.ty
val constr_of_string : ?file:string -> string -> Ast.constr
