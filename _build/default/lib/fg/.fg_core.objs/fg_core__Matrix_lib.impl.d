lib/fg/matrix_lib.ml: List Prelude Printf
