lib/fg/equality.mli: Ast
