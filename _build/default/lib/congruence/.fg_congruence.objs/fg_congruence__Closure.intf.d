lib/congruence/closure.mli: Term
