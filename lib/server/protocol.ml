(** The fgc wire protocol (see the interface): length-prefixed JSON
    frames, versioned requests, stable response statuses.

    A frame is a 4-byte big-endian unsigned length followed by that
    many bytes of UTF-8 JSON.  The decoder is incremental — feed it
    whatever the socket produced, pull zero or more complete frames —
    and never allocates a body before the declared length has passed
    the [max_frame] bound, so a hostile prefix cannot force a huge
    allocation. *)

open Fg_util

(* Version 2 added the optional request field ["backend"] (absent means
   the dictionary backend).  Version 3 added the [cache_get]/[cache_put]
   request kinds with their ["key"]/["data"] fields (the peer tier of
   the compilation-unit cache).  Version 4 added the [fuzz_batch] kind
   with its ["coverage"]/["corpus"]/["have"] fields (fleet-wide merge of
   guided-fuzzing coverage maps and corpora).  Version 5 added the
   workspace language-service kinds — [doc_open] / [doc_change] /
   [doc_close] / [doc_diagnostics] / [hover] / [definition] /
   [completion] — with their ["doc_version"] / ["edits"] / ["offset"]
   fields ([file] doubles as the document name).  Version 6 added the
   optional request field ["profile"] (a workload profile consulted by
   the guided backend; absent means the server's default profile, if
   any).  Frames from older clients are still accepted — every earlier
   field kept its meaning — so [min_version] stays at 1; only versions
   outside [min_version .. version] are refused. *)
let version = 6
let min_version = 1
let default_max_frame = 4 * 1024 * 1024

(* Where a daemon listens and a client or cache peer connects; shared
   by {!Server}, {!Client} and the peer tier in {!Handler}. *)
type address = [ `Unix of string | `Tcp of string * int ]

(* ---------------------------------------------------------------- *)
(* Framing                                                           *)

let frame_of_string payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.blit_string payload 0 b 4 n;
  b

type decoder = {
  max_frame : int;
  pending : Buffer.t;  (** raw bytes not yet consumed by a frame *)
  mutable dead : string option;  (** sticky framing error *)
}

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; pending = Buffer.create 4096; dead = None }

let feed d s off len =
  if d.dead = None then Buffer.add_subbytes d.pending s off len

let feed_string d s =
  if d.dead = None then Buffer.add_string d.pending s

(* Drop the first [n] consumed bytes of the pending buffer. *)
let consume d n =
  let rest = Buffer.sub d.pending n (Buffer.length d.pending - n) in
  Buffer.clear d.pending;
  Buffer.add_string d.pending rest

let next_frame d =
  match d.dead with
  | Some msg -> `Error msg
  | None ->
      let have = Buffer.length d.pending in
      if have < 4 then `Await
      else
        let byte i = Char.code (Buffer.nth d.pending i) in
        let n =
          (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
        in
        if n > d.max_frame then begin
          let msg =
            Printf.sprintf
              "frame length %d exceeds the %d-byte limit" n d.max_frame
          in
          d.dead <- Some msg;
          `Error msg
        end
        else if have < 4 + n then `Await
        else begin
          let payload = Buffer.sub d.pending 4 n in
          consume d (4 + n);
          `Frame payload
        end

(* ---------------------------------------------------------------- *)
(* Blocking I/O helpers                                              *)

let really_write fd b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let write_frame fd payload = really_write fd (frame_of_string payload)

let read_chunk d fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> false
  | n ->
      feed d buf 0 n;
      true
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false

(* ---------------------------------------------------------------- *)
(* Requests                                                          *)

type kind =
  | Check
  | Run
  | Translate
  | FuzzOne
  | Stats
  | Shutdown
  | CacheGet
  | CachePut
  | FuzzBatch
  | DocOpen
  | DocChange
  | DocClose
  | DocDiagnostics
  | Hover
  | Definition
  | Completion

let kind_name = function
  | Check -> "check"
  | Run -> "run"
  | Translate -> "translate"
  | FuzzOne -> "fuzz_one"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | CacheGet -> "cache_get"
  | CachePut -> "cache_put"
  | FuzzBatch -> "fuzz_batch"
  | DocOpen -> "doc_open"
  | DocChange -> "doc_change"
  | DocClose -> "doc_close"
  | DocDiagnostics -> "doc_diagnostics"
  | Hover -> "hover"
  | Definition -> "definition"
  | Completion -> "completion"

let kind_of_name = function
  | "check" -> Some Check
  | "run" -> Some Run
  | "translate" -> Some Translate
  | "fuzz_one" -> Some FuzzOne
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | "cache_get" -> Some CacheGet
  | "cache_put" -> Some CachePut
  | "fuzz_batch" -> Some FuzzBatch
  | "doc_open" -> Some DocOpen
  | "doc_change" -> Some DocChange
  | "doc_close" -> Some DocClose
  | "doc_diagnostics" -> Some DocDiagnostics
  | "hover" -> Some Hover
  | "definition" -> Some Definition
  | "completion" -> Some Completion
  | _ -> None

let all_kinds =
  [ Check; Run; Translate; FuzzOne; Stats; Shutdown; CacheGet; CachePut;
    FuzzBatch; DocOpen; DocChange; DocClose; DocDiagnostics; Hover;
    Definition; Completion ]

type request = {
  id : int;
  kind : kind;
  file : string;
  source : string;
  prelude : bool;
  global_models : bool;
  backend : Fg_core.Backend.t;  (** v2; absent on the wire means Dict *)
  timeout_ms : int option;  (** overrides the server default deadline *)
  seed : int;  (** fuzz_one *)
  size : int;  (** fuzz_one *)
  mutants : int;  (** fuzz_one *)
  key : string;  (** cache_get/cache_put: hex portable unit key (v3) *)
  data : string;  (** cache_put: hex unit blob (v3) *)
  coverage : Coverage.map;  (** fuzz_batch: the worker's coverage map (v4) *)
  corpus_entries : (string * string) list;
      (** fuzz_batch: [(digest, source)] corpus entries offered (v4) *)
  have : string list;
      (** fuzz_batch: digests the worker already holds, so the server
          sends back only what is missing (v4) *)
  doc_version : int;
      (** doc_open/doc_change: the editor's version of the document
          named by [file] (v5) *)
  offset : int;  (** hover/definition/completion: byte offset (v5) *)
  edits : (int * int * string) list;
      (** doc_change: [(start, len, text)] byte-range splices applied
          in order; an explicit [source] wins over edits (v5) *)
  profile : Profile.t option;
      (** a workload profile shipped with the request, consulted by the
          guided backend; absent means the server's default (v6) *)
}

let request ?(file = "<request>") ?(source = "") ?(prelude = false)
    ?(global_models = false) ?(backend = Fg_core.Backend.Dict) ?timeout_ms
    ?(seed = 0) ?(size = 30) ?(mutants = 0) ?(key = "") ?(data = "")
    ?(coverage = []) ?(corpus_entries = []) ?(have = []) ?(doc_version = 0)
    ?(offset = 0) ?(edits = []) ?profile ~id kind =
  { id; kind; file; source; prelude; global_models; backend; timeout_ms;
    seed; size; mutants; key; data; coverage; corpus_entries; have;
    doc_version; offset; edits; profile }

let request_to_json r =
  Json.Obj
    ([ ("v", Json.Int version);
       ("id", Json.Int r.id);
       ("kind", Json.Str (kind_name r.kind)) ]
    @ (if r.file = "<request>" then [] else [ ("file", Json.Str r.file) ])
    @ (if r.source = "" then [] else [ ("source", Json.Str r.source) ])
    @ (if r.prelude then [ ("prelude", Json.Bool true) ] else [])
    @ (if r.global_models then [ ("global_models", Json.Bool true) ] else [])
    @ (match r.backend with
      | Fg_core.Backend.Dict -> []
      | b ->
          [ ("backend", Json.Str (Fg_core.Backend.to_string b)) ])
    @ (match r.timeout_ms with
      | Some t -> [ ("timeout_ms", Json.Int t) ]
      | None -> [])
    @ (match r.profile with
      | Some p -> [ ("profile", Profile.to_json p) ]
      | None -> [])
    @ (if r.kind = FuzzOne then
         [ ("seed", Json.Int r.seed); ("size", Json.Int r.size);
           ("mutants", Json.Int r.mutants) ]
       else [])
    @
    match r.kind with
    | CacheGet -> [ ("key", Json.Str r.key) ]
    | CachePut -> [ ("key", Json.Str r.key); ("data", Json.Str r.data) ]
    | FuzzBatch ->
        [ ("coverage", Coverage.to_json r.coverage);
          ("corpus",
           Json.Obj (List.map (fun (d, s) -> (d, Json.Str s)) r.corpus_entries));
          ("have", Json.List (List.map (fun d -> Json.Str d) r.have)) ]
    | DocOpen | DocChange ->
        [ ("doc_version", Json.Int r.doc_version) ]
        @ (match r.edits with
          | [] -> []
          | es ->
              [ ( "edits",
                  Json.List
                    (List.map
                       (fun (s, l, txt) ->
                         Json.Obj
                           [ ("start", Json.Int s); ("len", Json.Int l);
                             ("text", Json.Str txt) ])
                       es) ) ])
    | Hover | Definition | Completion -> [ ("offset", Json.Int r.offset) ]
    | _ -> [])

type proto_error =
  | Bad_version of int option
      (** absent or outside [min_version .. version] *)
  | Bad_request of string  (** shape violation; the message says what *)

let request_of_json j =
  match Json.int_field "v" j with
  | None -> Error (Bad_version None)
  | Some v when v < min_version || v > version ->
      Error (Bad_version (Some v))
  | Some _ -> (
      match Json.str_field "kind" j with
      | None -> Error (Bad_request "missing request field 'kind'")
      | Some kname -> (
          match kind_of_name kname with
          | None ->
              Error (Bad_request (Printf.sprintf "unknown kind %S" kname))
          | Some kind -> (
              match Json.int_field "id" j with
              | None -> Error (Bad_request "missing request field 'id'")
              | Some id ->
              let str k d = Option.value ~default:d (Json.str_field k j) in
              let bool k = Json.bool_field k j = Some true in
              let needs_source =
                match kind with
                | Check | Run | Translate | DocOpen -> true
                | FuzzOne | Stats | Shutdown | CacheGet | CachePut
                | FuzzBatch | DocChange | DocClose | DocDiagnostics | Hover
                | Definition | Completion ->
                    false
              in
              let needs_key =
                match kind with CacheGet | CachePut -> true | _ -> false
              in
              let needs_offset =
                match kind with
                | Hover | Definition | Completion -> true
                | _ -> false
              in
              let edits =
                match Json.mem "edits" j with
                | Some (Json.List l) ->
                    List.filter_map
                      (fun ej ->
                        match
                          ( Json.int_field "start" ej,
                            Json.int_field "len" ej,
                            Json.str_field "text" ej )
                        with
                        | Some s, Some len, Some txt -> Some (s, len, txt)
                        | _ -> None)
                      l
                | _ -> []
              in
              let backend =
                match Json.str_field "backend" j with
                | None -> Ok Fg_core.Backend.Dict
                | Some s -> (
                    match Fg_core.Backend.of_string s with
                    | Some b -> Ok b
                    | None ->
                        Error
                          (Bad_request
                             (Printf.sprintf "unknown backend %S" s)))
              in
              let profile =
                match Json.mem "profile" j with
                | None -> Ok None
                | Some pj -> (
                    match Profile.of_json pj with
                    | Ok p -> Ok (Some p)
                    | Error msg ->
                        Error
                          (Bad_request
                             (Printf.sprintf "malformed profile: %s" msg)))
              in
              match (backend, profile) with
              | Error e, _ | _, Error e -> Error e
              | Ok backend, Ok profile ->
              if needs_source && Json.str_field "source" j = None then
                Error
                  (Bad_request
                     (Printf.sprintf "kind %S requires a 'source' field"
                        kname))
              else if needs_key && Json.str_field "key" j = None then
                Error
                  (Bad_request
                     (Printf.sprintf "kind %S requires a 'key' field" kname))
              else if needs_offset && Json.int_field "offset" j = None then
                Error
                  (Bad_request
                     (Printf.sprintf "kind %S requires an 'offset' field"
                        kname))
              else if
                kind = DocChange
                && Json.str_field "source" j = None
                && edits = []
              then
                Error
                  (Bad_request
                     "kind \"doc_change\" requires a 'source' field or a \
                      non-empty 'edits' array")
              else
                Ok
                  {
                    id;
                    kind;
                    file = str "file" "<request>";
                    source = str "source" "";
                    prelude = bool "prelude";
                    global_models = bool "global_models";
                    backend;
                    timeout_ms = Json.int_field "timeout_ms" j;
                    seed =
                      Option.value ~default:0 (Json.int_field "seed" j);
                    size =
                      Option.value ~default:30 (Json.int_field "size" j);
                    mutants =
                      Option.value ~default:0 (Json.int_field "mutants" j);
                    key = str "key" "";
                    data = str "data" "";
                    coverage =
                      (match Json.mem "coverage" j with
                      | Some cj -> Coverage.of_json cj
                      | None -> []);
                    corpus_entries =
                      (match Json.mem "corpus" j with
                      | Some (Json.Obj kvs) ->
                          List.filter_map
                            (function
                              | d, Json.Str s -> Some (d, s) | _ -> None)
                            kvs
                      | _ -> []);
                    have =
                      (match Json.mem "have" j with
                      | Some (Json.List l) ->
                          List.filter_map
                            (function Json.Str s -> Some s | _ -> None)
                            l
                      | _ -> []);
                    doc_version =
                      Option.value ~default:0
                        (Json.int_field "doc_version" j);
                    offset =
                      Option.value ~default:0 (Json.int_field "offset" j);
                    edits;
                    profile;
                  })))

(* ---------------------------------------------------------------- *)
(* Responses                                                         *)

type status =
  | Ok_  (** the request ran; the payload is its result *)
  | Failed  (** the request ran and the payload reports diagnostics *)
  | Timeout  (** the deadline passed before a result was ready *)
  | Overload  (** the bounded queue was full; retry later *)
  | Shutting_down  (** the daemon is draining; no new work accepted *)
  | Protocol_error  (** the frame or request itself was malformed *)

let status_name = function
  | Ok_ -> "ok"
  | Failed -> "error"
  | Timeout -> "timeout"
  | Overload -> "overload"
  | Shutting_down -> "shutting_down"
  | Protocol_error -> "protocol_error"

let status_of_name = function
  | "ok" -> Some Ok_
  | "error" -> Some Failed
  | "timeout" -> Some Timeout
  | "overload" -> Some Overload
  | "shutting_down" -> Some Shutting_down
  | "protocol_error" -> Some Protocol_error
  | _ -> None

type response = {
  r_id : int;  (** echoes the request id; 0 for frame-level errors *)
  r_status : status;
  r_payload : string;
      (** the result document, pre-rendered JSON text — embedding the
          rendering (rather than the tree) is what makes served [run]
          payloads byte-identical to one-shot [fgc run] output *)
}

let response_to_json r =
  Json.Obj
    [
      ("v", Json.Int version);
      ("id", Json.Int r.r_id);
      ("status", Json.Str (status_name r.r_status));
      ("payload", Json.Str r.r_payload);
    ]

let response_of_json j =
  match
    ( Json.int_field "v" j,
      Json.int_field "id" j,
      Json.str_field "status" j,
      Json.str_field "payload" j )
  with
  | Some v, _, _, _ when v < min_version || v > version ->
      Error
        (Printf.sprintf "response version %d (want %d..%d)" v min_version
           version)
  | Some _, Some r_id, Some sname, Some r_payload -> (
      match status_of_name sname with
      | Some r_status -> Ok { r_id; r_status; r_payload }
      | None -> Error (Printf.sprintf "unknown response status %S" sname))
  | _ -> Error "response missing one of v/id/status/payload"

(* A diagnostics-shaped error payload (same JSON shape as a failed
   one-shot run), used for timeout / overload / protocol responses. *)
let error_payload ~file ~code fmt =
  Fmt.kstr
    (fun message ->
      Json.to_string
        (Fg_core.Jsonview.json_of_failure ~file
           (Diag.make ~code Diag.Server message)))
    fmt
