test/test_types.ml: Alcotest Ast Astring_contains Env Fg_core Fg_systemf Fg_util List Parser Pretty Types
