(* Tests for concept member defaults (Section 6: "defaults for concept
   members provide a mechanism for implementing a rich interface in
   terms of a few functions").  A default body may call the model's
   other members — including other defaults — through the dictionary
   being defined, which the translation fix-binds. *)

open Fg_core

let check src expected =
  match Pipeline.run_result ~file:"defaults" src with
  | Ok out ->
      Alcotest.(check string) src expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" src (Fg_util.Diag.to_string d)

let check_fails src phase fragment =
  match Pipeline.run_result ~file:"defaults" src with
  | Ok out ->
      Alcotest.failf "%s: expected failure, got %s" src
        (Interp.flat_to_string out.value)
  | Error d ->
      if d.phase <> phase then
        Alcotest.failf "%s: wrong phase %s" src (Fg_util.Diag.to_string d);
      if not (Astring_contains.contains ~needle:fragment d.message) then
        Alcotest.failf "%s: wrong message %s" src d.message

let eq_with_default =
  {|concept Eq<t> {
  eq  : fn(t, t) -> bool;
  neq : fn(t, t) -> bool = fun (a : t, b : t) => !Eq<t>.eq(a, b);
} in
|}

let test_default_filled () =
  check (eq_with_default ^ "model Eq<int> { eq = ieq; } in Eq<int>.neq(1, 2)")
    "true";
  check (eq_with_default ^ "model Eq<int> { eq = ieq; } in Eq<int>.neq(1, 1)")
    "false"

let test_default_overridden () =
  check
    (eq_with_default
   ^ {|model Eq<int> { eq = ieq; neq = fun (a : int, b : int) => false; } in
Eq<int>.neq(1, 2)|})
    "false"

let test_default_chain () =
  (* a default calling another default, across a refinement *)
  check
    (eq_with_default
   ^ {|concept Ord<t> {
  refines Eq<t>;
  less : fn(t, t) -> bool;
  leq  : fn(t, t) -> bool = fun (a : t, b : t) => Ord<t>.less(a, b) || Eq<t>.eq(a, b);
  gtr  : fn(t, t) -> bool = fun (a : t, b : t) => !Ord<t>.leq(a, b);
} in
model Eq<int> { eq = ieq; } in
model Ord<int> { less = ilt; } in
(Ord<int>.leq(2, 2), Ord<int>.gtr(3, 2), Ord<int>.gtr(2, 3))|})
    "(true, true, false)"

let test_default_in_generic () =
  (* defaults are reachable through where-clause proxies too *)
  check
    (eq_with_default
   ^ {|let distinct = tfun t where Eq<t> => fun (x : t, y : t) => Eq<t>.neq(x, y) in
model Eq<int> { eq = ieq; } in
(distinct[int](1, 2), distinct[int](3, 3))|})
    "(true, false)"

let test_default_in_parameterized_model () =
  (* the parameterized Eq<list t> model also gets neq for free *)
  check
    (eq_with_default
   ^ {|model Eq<int> { eq = ieq; } in
model <t> where Eq<t> => Eq<list t> {
  eq = fix (go : fn(list t, list t) -> bool) =>
    fun (a : list t, b : list t) =>
      if null[t](a) then null[t](b)
      else if null[t](b) then false
      else Eq<t>.eq(car[t](a), car[t](b)) && go(cdr[t](a), cdr[t](b));
} in
Eq<list int>.neq(cons[int](1, nil[int]), nil[int])|})
    "true"

let test_prelude_defaults () =
  let p body = Prelude.wrap body in
  check (p "Eq<int>.neq(1, 2)") "true";
  check (p "Ord<int>.leq(2, 2)") "true";
  check (p "Ord<int>.min2(4, 2)") "2";
  check (p "Ord<int>.max2(4, 2)") "4";
  (* defaults through the parameterized list models *)
  check
    (p "Ord<list int>.min2(cons[int](2, nil[int]), cons[int](1, nil[int]))")
    "[1]"

let test_default_wrong_type_rejected () =
  check_fails
    {|concept C<t> {
  v : t;
  w : t = true;
} in
model C<int> { v = 1; } in C<int>.w|}
    Fg_util.Diag.Typecheck "default for member 'w'"

let test_default_for_nonmember_rejected () =
  (* not expressible in concrete syntax (a default item always declares
     its member), so build the ill-formed declaration directly *)
  let d =
    {
      Ast.c_name = "C";
      c_params = [ "t" ];
      c_assoc = [];
      c_refines = [];
      c_requires = [];
      c_members = [ ("v", Ast.TVar "t") ];
      c_defaults = [ ("ghost", Ast.int 1) ];
      c_same = [];
      c_loc = Fg_util.Loc.dummy;
    }
  in
  let prog = Ast.concept_decl d (Ast.int 0) in
  match Check.check_result prog with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error d ->
      Alcotest.(check bool) "message" true
        (Astring_contains.contains ~needle:"not a member" d.message)

let test_missing_without_default_still_fails () =
  check_fails
    {|concept C<t> { v : t; w : t = C<t>.v; } in
model C<int> { w = 3; } in 0|}
    Fg_util.Diag.Wf "does not define member 'v'"

let test_translation_fix_bound () =
  let src = eq_with_default ^ "model Eq<int> { eq = ieq; } in Eq<int>.neq(0, 0)" in
  let f = Check.translate (Parser.exp_of_string src) in
  let s = Fg_systemf.Pretty.exp_to_flat_string f in
  Alcotest.(check bool) "dictionary is fix-bound" true
    (Astring_contains.contains ~needle:"fix (Eq_" s)

let suite =
  [
    Alcotest.test_case "default filled in" `Quick test_default_filled;
    Alcotest.test_case "default overridden" `Quick test_default_overridden;
    Alcotest.test_case "default chain through refinement" `Quick
      test_default_chain;
    Alcotest.test_case "default via proxy in generic" `Quick
      test_default_in_generic;
    Alcotest.test_case "default in parameterized model" `Quick
      test_default_in_parameterized_model;
    Alcotest.test_case "prelude defaults" `Quick test_prelude_defaults;
    Alcotest.test_case "ill-typed default rejected" `Quick
      test_default_wrong_type_rejected;
    Alcotest.test_case "default for non-member rejected" `Quick
      test_default_for_nonmember_rejected;
    Alcotest.test_case "missing member without default" `Quick
      test_missing_without_default_still_fails;
    Alcotest.test_case "translation fix-binds the dictionary" `Quick
      test_translation_fix_bound;
  ]
