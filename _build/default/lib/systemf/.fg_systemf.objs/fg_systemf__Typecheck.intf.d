lib/systemf/typecheck.mli: Ast Fg_util
