(** Executable counterparts of the paper's metatheory: Theorems 1 and 2
    ("the translation preserves typing"), checked per program — the
    translation is independently re-checked by the System F checker and
    its type compared (up to alpha) against the translation of the FG
    type.  {!check_agreement} additionally requires the direct
    interpreter and the evaluated translation to agree on the program's
    first-order value — stronger than anything the paper claims, and a
    differential oracle for both implementations. *)

type report = {
  fg_ty : Ast.ty;  (** τ: the FG type of the program *)
  elaborated : Ast.exp;
      (** the program with implicit instantiations made explicit *)
  f_exp : Fg_systemf.Ast.exp;  (** f: the translation *)
  f_ty : Fg_systemf.Ast.ty;  (** τ': the System F type of f *)
  expected_f_ty : Fg_systemf.Ast.ty;  (** the translation of τ *)
}

(** Check Theorem 1/2 on one closed program; raises a diagnostic on
    ill-typedness, a failed re-check, or a type mismatch. *)
val check_translation : ?resolution:Resolution.mode -> Ast.exp -> report

(** The same verification on an elaboration produced elsewhere (e.g. by
    a {!Session} with a cached prelude): the [(τ, elaborated, f)]
    triple from {!Check.check}/{!Check.elaborate}. *)
val report_of_elaboration : Ast.ty * Ast.exp * Fg_systemf.Ast.exp -> report

val check_translation_result :
  ?resolution:Resolution.mode -> Ast.exp ->
  (report, Fg_util.Diag.diagnostic) result

type agreement = {
  direct : Interp.flat;  (** value from the direct FG interpreter *)
  translated : Interp.flat;  (** value from evaluating the translation *)
}

(** Theorem check plus semantic agreement between the two semantics. *)
val check_agreement :
  ?resolution:Resolution.mode -> ?fuel:int -> Ast.exp -> agreement

val check_agreement_result :
  ?resolution:Resolution.mode -> ?fuel:int -> Ast.exp ->
  (agreement, Fg_util.Diag.diagnostic) result
