lib/systemf/pretty.ml: Ast Fg_util Fmt Pp_util
