lib/fg/graph_lib.ml: List Prelude Printf
