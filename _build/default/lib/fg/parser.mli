(** Recursive-descent parser for System FG concrete syntax (see the
    grammar in the implementation header and README).  All entry points
    raise located {!Fg_util.Diag.Error} values on failure. *)

val exp_of_string : ?file:string -> string -> Ast.exp
val ty_of_string : ?file:string -> string -> Ast.ty
val constr_of_string : ?file:string -> string -> Ast.constr
