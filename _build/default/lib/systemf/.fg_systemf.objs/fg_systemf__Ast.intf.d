lib/systemf/ast.mli: Fg_util Loc
