bin/repl.ml: Buffer Fg_core Fg_systemf Fg_util Fmt In_channel List String
