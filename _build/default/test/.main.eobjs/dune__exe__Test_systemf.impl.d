test/test_systemf.ml: Alcotest Ast Astring_contains Eval Fg_core Fg_systemf Fg_util List Parser Pretty QCheck QCheck_alcotest Typecheck
