(** Client side of the wire protocol (see the interface).

    The batch path is the throughput workhorse: it keeps a bounded
    window of requests pipelined on one connection, matches responses
    back to requests by id (workers may answer out of order), retries
    bounded-ly on overload, and returns responses in request order. *)

open Fg_util

type conn = { fd : Unix.file_descr; dec : Protocol.decoder }

exception Client_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Client_error m)) fmt

let connect ?max_frame ?rcv_timeout (addr : Protocol.address) =
  let fd =
    match addr with
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with Unix.Unix_error (e, _, _) ->
           fail "cannot connect to %s: %s" path (Unix.error_message e));
        fd
    | `Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> fail "unknown host %s" host)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd (Unix.ADDR_INET (inet, port));
           Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error (e, _, _) ->
           fail "cannot connect to %s:%d: %s" host port
             (Unix.error_message e));
        fd
  in
  (* A bounded receive wait turns a hung peer into a Unix error the
     caller can degrade on, instead of a stuck worker. *)
  (match rcv_timeout with
  | None -> ()
  | Some s -> (
      try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
      with Unix.Unix_error _ | Invalid_argument _ -> ()));
  { fd; dec = Protocol.decoder ?max_frame () }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c req =
  Protocol.write_frame c.fd
    (Json.to_string (Protocol.request_to_json req))

(* Send raw bytes as one frame — deliberately malformed payloads for
   tests and the CI probe go through here. *)
let send_raw_frame c payload = Protocol.write_frame c.fd payload

let send_raw_bytes c s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write c.fd b !off (n - !off)
  done

let read_response c =
  let rec loop () =
    match Protocol.next_frame c.dec with
    | `Frame payload -> (
        match Json.of_string payload with
        | Error e -> fail "response frame is not valid JSON: %s" e
        | Ok j -> (
            match Protocol.response_of_json j with
            | Ok r -> r
            | Error e -> fail "bad response: %s" e))
    | `Error e -> fail "response framing error: %s" e
    | `Await ->
        if Protocol.read_chunk c.dec c.fd then loop ()
        else fail "connection closed by server"
  in
  loop ()

let request c req =
  send c req;
  let r = read_response c in
  if r.Protocol.r_id <> 0 && r.Protocol.r_id <> req.Protocol.id then
    fail "response id %d for request %d" r.Protocol.r_id req.Protocol.id;
  r

(* ---------------------------------------------------------------- *)
(* Pipelined batch                                                   *)

let default_window = 32

(* Overload backoff: exponential from 2ms, capped, with uniform jitter
   in [delay/2, delay] so synchronized clients spread out instead of
   re-stampeding the queue in lockstep.  Pure in the generator, so
   tests can replay a seed and assert the exact delay sequence. *)
let backoff_base_ms = 2
let backoff_cap_ms = 200

let backoff_ms rng ~attempt =
  let d =
    min backoff_cap_ms (backoff_base_ms * (1 lsl min (max 0 attempt) 7))
  in
  Prng.in_range rng (max 1 (d / 2)) d

let batch ?(window = default_window) ?(overload_retries = 64)
    ?(backoff_seed = 0) c (reqs : Protocol.request list) :
    Protocol.response list =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  (* Re-key requests onto ids 1..n so responses map back to slots no
     matter what ids the caller picked. *)
  let keyed =
    Array.mapi (fun i r -> { r with Protocol.id = i + 1 }) reqs
  in
  let results : Protocol.response option array = Array.make n None in
  let retries_left = Array.make n overload_retries in
  let attempts = Array.make n 0 in
  let slept_ms = Array.make n 0 in
  let rng = ref (Prng.make backoff_seed) in
  let window = max 1 window in
  let next_to_send = ref 0 in
  let to_resend = Queue.create () in
  let inflight = ref 0 in
  let received = ref 0 in
  while !received < n do
    (* Fill the window: resends first (they are oldest), then fresh. *)
    while
      !inflight < window
      && ((not (Queue.is_empty to_resend)) || !next_to_send < n)
    do
      let idx =
        if not (Queue.is_empty to_resend) then Queue.pop to_resend
        else begin
          let i = !next_to_send in
          incr next_to_send;
          i
        end
      in
      send c keyed.(idx);
      incr inflight
    done;
    let r = read_response c in
    decr inflight;
    let idx = r.Protocol.r_id - 1 in
    if idx < 0 || idx >= n then
      fail "response for unknown request id %d" r.Protocol.r_id
    else if
      r.Protocol.r_status = Protocol.Overload
      && retries_left.(idx) > 0
      &&
      (* The queue was full: back off before resending, unless the
         accumulated pauses would outlive the request's own deadline —
         past that point the retry could only come back [Timeout], so
         surface the overload instead. *)
      let d, rng' = backoff_ms !rng ~attempt:attempts.(idx) in
      rng := rng';
      let budget =
        match keyed.(idx).Protocol.timeout_ms with
        | Some t -> t
        | None -> max_int
      in
      slept_ms.(idx) + d <= budget
      && begin
           retries_left.(idx) <- retries_left.(idx) - 1;
           attempts.(idx) <- attempts.(idx) + 1;
           slept_ms.(idx) <- slept_ms.(idx) + d;
           Unix.sleepf (float_of_int d /. 1000.);
           true
         end
    then Queue.push idx to_resend
    else begin
      (match results.(idx) with
      | None -> incr received
      | Some _ -> fail "duplicate response for request id %d" (idx + 1));
      results.(idx) <- Some r
    end
  done;
  Array.to_list
    (Array.mapi
       (fun i -> function
         | Some r -> { r with Protocol.r_id = reqs.(i).Protocol.id }
         | None -> fail "missing response for request %d" (i + 1))
       results)

(* ---------------------------------------------------------------- *)
(* Conveniences                                                      *)

let stats c = request c (Protocol.request ~id:1 Protocol.Stats)

let shutdown c = request c (Protocol.request ~id:1 Protocol.Shutdown)

let run_file c ?timeout_ms ?(prelude = false) ?(global_models = false)
    ~file source =
  request c
    (Protocol.request ~id:1 ~file ~source ~prelude ~global_models
       ?timeout_ms Protocol.Run)

(* ---------------------------------------------------------------- *)
(* Cache peer tier (v3)                                              *)

(* Keys and blobs are raw bytes in the compiler and hex on the wire.
   Both calls answer the tier contract: anything unexpected — not-ok
   status, malformed payload, undecodable hex — is simply a miss or a
   dropped put, never an error for the caller. *)

let cache_get c ~key =
  let r =
    request c
      (Protocol.request ~id:1 ~key:(Strutil.hex_encode key)
         Protocol.CacheGet)
  in
  if r.Protocol.r_status <> Protocol.Ok_ then None
  else
    match Json.of_string r.Protocol.r_payload with
    | Error _ -> None
    | Ok j ->
        if Json.bool_field "found" j = Some true then
          Option.bind (Json.str_field "data" j) Strutil.hex_decode
        else None

let cache_put c ~key ~data =
  let r =
    request c
      (Protocol.request ~id:1 ~key:(Strutil.hex_encode key)
         ~data:(Strutil.hex_encode data) Protocol.CachePut)
  in
  r.Protocol.r_status = Protocol.Ok_

(* ---------------------------------------------------------------- *)
(* Fleet fuzzing (v4)                                                *)

type fuzz_sync = {
  fs_coverage : Coverage.map;
  fs_corpus : (string * string) list;
  fs_batches : int;
  fs_corpus_size : int;
}

let fuzz_batch c ~coverage ~corpus_entries ~have =
  let r =
    request c
      (Protocol.request ~id:1 ~coverage ~corpus_entries ~have
         Protocol.FuzzBatch)
  in
  if r.Protocol.r_status <> Protocol.Ok_ then None
  else
    match Json.of_string r.Protocol.r_payload with
    | Error _ -> None
    | Ok j ->
        let fs_coverage =
          match Json.mem "coverage" j with
          | Some cj -> Coverage.of_json cj
          | None -> []
        in
        let fs_corpus =
          match Json.mem "corpus" j with
          | Some (Json.Obj kvs) ->
              List.filter_map
                (function d, Json.Str s -> Some (d, s) | _ -> None)
                kvs
          | _ -> []
        in
        let fleet k =
          match Json.mem "fleet" j with
          | Some fj -> Option.value ~default:0 (Json.int_field k fj)
          | None -> 0
        in
        Some
          {
            fs_coverage;
            fs_corpus;
            fs_batches = fleet "batches";
            fs_corpus_size = fleet "corpus_size";
          }

(* ---------------------------------------------------------------- *)
(* Workspace language service (v5)                                   *)

let doc_open c ?(version = 1) ?(prelude = false) ?(global_models = false)
    ?(backend = Fg_core.Backend.Dict) ~name source =
  request c
    (Protocol.request ~id:1 ~file:name ~source ~prelude ~global_models
       ~backend ~doc_version:version Protocol.DocOpen)

let doc_change c ~version ~name change =
  let source, edits =
    match change with
    | `Text source -> (Some source, [])
    | `Edits edits -> (None, edits)
  in
  request c
    (Protocol.request ~id:1 ~file:name ?source ~edits ~doc_version:version
       Protocol.DocChange)

let doc_close c ~name =
  request c (Protocol.request ~id:1 ~file:name Protocol.DocClose)

let doc_diagnostics c ~name =
  request c (Protocol.request ~id:1 ~file:name Protocol.DocDiagnostics)

let hover c ~name ~offset =
  request c (Protocol.request ~id:1 ~file:name ~offset Protocol.Hover)

let definition c ~name ~offset =
  request c (Protocol.request ~id:1 ~file:name ~offset Protocol.Definition)

let completion c ~name ~offset =
  request c (Protocol.request ~id:1 ~file:name ~offset Protocol.Completion)
