(* Tests for the FG type checker: typing judgments, scoping rules,
   where-clause satisfaction, model checking, and error behaviour. *)

open Fg_core

let typecheck ?resolution src =
  (* escape_check off: these tests inspect the types of generic values,
     which mention concepts declared in the same program — the checker's
     default (paper CPT side condition) would reject that at the
     top-level scope boundary; see test_concept_escape in the corpus. *)
  Check.typecheck ?resolution ~escape_check:false (Parser.exp_of_string src)

let check_ty src expected =
  Alcotest.(check string) src expected (Pretty.ty_to_string (typecheck src))

let check_fails ?resolution src phase fragment =
  match Fg_util.Diag.protect (fun () -> typecheck ?resolution src) with
  | Ok t ->
      Alcotest.failf "%s: expected failure, got type %s" src
        (Pretty.ty_to_string t)
  | Error d ->
      if d.phase <> phase then
        Alcotest.failf "%s: expected %s but failed with %s" src
          (Fg_util.Diag.phase_name phase)
          (Fg_util.Diag.to_string d);
      if not (Astring_contains.contains ~needle:fragment d.message) then
        Alcotest.failf "%s: wrong message: %s" src d.message

let monoid = Corpus.monoid_prelude

(* ---------------------------------------------------------------- *)
(* Positive typing                                                   *)

let test_plain_systemf_fragment () =
  (* FG conservatively extends System F *)
  check_ty "fun (x : int) => x + 1" "fn(int) -> int";
  check_ty "tfun a => fun (x : a) => x" "forall a. fn(a) -> a";
  check_ty "(tfun a => fun (x : a) => x)[list bool]"
    "fn(list bool) -> list bool"

let test_generic_function_type () =
  check_ty
    (monoid ^ "tfun t where Monoid<t> => fun (x : t) => Semigroup<t>.binary_op(x, x)")
    "forall t where Monoid<t>. fn(t) -> t"

let test_member_access_type () =
  check_ty (monoid ^ "model Semigroup<int> { binary_op = iadd; } in Semigroup<int>.binary_op")
    "fn(int, int) -> int";
  (* inherited member through refinement *)
  check_ty
    (monoid
   ^ {|model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
Monoid<int>.binary_op|})
    "fn(int, int) -> int"

let test_instantiation_type () =
  check_ty
    (monoid
   ^ {|let f = tfun t where Monoid<t> => fun (x : t) => x in
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
f[int]|})
    "fn(int) -> int"

let test_assoc_in_result_type () =
  (* the result type mentions the associated type; at a ground
     instantiation, leaving the model's scope resolves it *)
  check_ty
    (Corpus.iterator_concept ^ Corpus.iterator_list_int_model
   ^ "fun (it : list int) => Iterator<list int>.curr(it)")
    "fn(list int) -> int"

let test_assoc_opaque_inside () =
  check_ty
    (Corpus.iterator_concept
   ^ "tfun i where Iterator<i> => fun (it : i) => Iterator<i>.curr(it)")
    "forall i where Iterator<i>. fn(i) -> Iterator<i>.elt"

let test_same_type_cast () =
  check_ty "tfun a b where a == b => fun (x : a) => x"
    "forall a b where a == b. fn(a) -> a";
  (* and using the cast at b's type: the body may treat x as b *)
  check_ty "tfun a b where a == b => fun (x : a, f : fn(b) -> int) => f(x)"
    "forall a b where a == b. fn(a, fn(b) -> int) -> int"

let test_alias_equality () =
  check_ty "type t = int in fun (x : t) => x + 1" "fn(int) -> int";
  check_ty "type t = list int in fun (x : t) => car[int](x)"
    "fn(list int) -> int";
  (* alias of an alias *)
  check_ty "type t = int in type u = t in fun (x : u) => x + 1"
    "fn(int) -> int"

let test_alias_result_substituted () =
  (* the alias must not appear in the reported type outside its scope *)
  check_ty "type t = int in fun (x : t) => x" "fn(int) -> int"

let test_concept_shadowing () =
  (* an inner concept shadows an outer one of the same name *)
  check_ty
    {|concept C<t> { v : t; } in
model C<int> { v = 1; } in
let outer = C<int>.v in
concept C<t> { w : fn(t) -> t; } in
model C<int> { w = fun (x : int) => x; } in
(outer, C<int>.w(2))|}
    "int * int"

let test_multi_param_where () =
  check_ty
    {|concept Convert<a, b> { convert : fn(a) -> b; } in
tfun a b where Convert<a, b> => fun (x : a) => Convert<a, b>.convert(x)|}
    "forall a b where Convert<a, b>. fn(a) -> b"

let test_polymorphic_member () =
  (* a concept member may itself be polymorphic *)
  check_ty
    {|concept Pick<t> { pick : forall a. fn(a, a, t) -> a; } in
model Pick<bool> { pick = tfun a => fun (x : a, y : a, b : bool) => if b then x else y; } in
Pick<bool>.pick[int](1, 2, true)|}
    "int"

let test_model_member_uses_earlier_models () =
  (* a model body may use models already in scope *)
  check_ty
    (monoid
   ^ {|model Semigroup<int> { binary_op = iadd; } in
model Semigroup<list int> {
  binary_op = fun (a : list int, b : list int) => append[int](a, b);
} in
model Monoid<list int> { identity_elt = nil[int]; } in
Monoid<list int>.identity_elt|})
    "list int"

(* ---------------------------------------------------------------- *)
(* Negative typing                                                   *)

let test_where_unsatisfied () =
  check_fails
    (monoid ^ "(tfun t where Monoid<t> => fun (x : t) => x)[int]")
    Fg_util.Diag.Resolve "no model of Monoid<int>"

let test_same_type_unsatisfied () =
  check_fails "(tfun a b where a == b => fun (x : a) => x)[int, bool]"
    Fg_util.Diag.Typecheck "same-type constraint not satisfied"

let test_member_without_model () =
  check_fails (monoid ^ "Semigroup<int>.binary_op") Fg_util.Diag.Resolve
    "no model of Semigroup<int>"

let test_unknown_concept () =
  check_fails "tfun t where Nope<t> => 1" Fg_util.Diag.Wf "unknown concept";
  check_fails "model Nope<int> { } in 0" Fg_util.Diag.Wf "unknown concept";
  check_fails "Nope<int>.x" Fg_util.Diag.Wf "unknown concept"

let test_concept_arity () =
  check_fails
    {|concept Convert<a, b> { convert : fn(a) -> b; } in
tfun t where Convert<t> => 1|}
    Fg_util.Diag.Wf "expects 2 type argument";
  check_fails
    (monoid ^ "model Semigroup<int, bool> { binary_op = iadd; } in 0")
    Fg_util.Diag.Wf "expects 1 type argument"

let test_duplicate_model_members () =
  check_fails
    (monoid
   ^ "model Semigroup<int> { binary_op = iadd; binary_op = imult; } in 0")
    Fg_util.Diag.Wf "duplicate member definition"

let test_assoc_extra_assignment () =
  check_fails
    (monoid ^ "model Semigroup<int> { types bogus = int; binary_op = iadd; } in 0")
    Fg_util.Diag.Wf "no associated type"

let test_same_requirement_violated () =
  check_fails
    (Corpus.iterator_concept
   ^ {|concept IntIterator<i> { refines Iterator<i>; same Iterator<i>.elt == int; } in
model Iterator<list bool> {
  types elt = bool;
  next = fun (ls : list bool) => cdr[bool](ls);
  curr = fun (ls : list bool) => car[bool](ls);
  at_end = fun (ls : list bool) => null[bool](ls);
} in
model IntIterator<list bool> { } in 0|})
    Fg_util.Diag.Typecheck "same-type requirement"

let test_tyvar_shadowing_rejected () =
  check_fails "tfun t => tfun t => 1" Fg_util.Diag.Wf "shadows";
  check_fails "tfun t => type t = int in 1" Fg_util.Diag.Wf "shadows"

let test_argument_mismatch () =
  check_fails "(fun (x : int) => x)(true)" Fg_util.Diag.Typecheck
    "expected int but got bool"

let test_fix_annotation_checked () =
  check_fails "fix (f : fn(int) -> int) => 3" Fg_util.Diag.Typecheck
    "fix body"

let test_concept_param_escape () =
  (* member type mentioning an unbound variable *)
  check_fails "concept C<t> { bad : fn(u) -> t; } in 0" Fg_util.Diag.Wf
    "unbound type variable 'u'"

let test_refinement_cycle_rejected () =
  (* direct self-refinement is caught; mutual recursion is impossible
     because a concept can only refine earlier (lexically visible)
     concepts *)
  check_fails "concept C<t> { refines C<t>; } in 0" Fg_util.Diag.Wf
    "unknown concept"

(* ---------------------------------------------------------------- *)
(* Scoping fine points                                               *)

let test_model_scope_bounded () =
  check_fails
    (monoid
   ^ {|let g = model Semigroup<int> { binary_op = iadd; } in 1 in
Semigroup<int>.binary_op|})
    Fg_util.Diag.Resolve "no model of Semigroup<int>"

let test_inner_model_wins () =
  (* shadowing: typechecks, and translation binds the inner dict *)
  let src =
    monoid
    ^ {|model Semigroup<int> { binary_op = iadd; } in
model Semigroup<int> { binary_op = imult; } in
Semigroup<int>.binary_op(2, 3)|}
  in
  let out = Pipeline.run src in
  Alcotest.(check string) "inner model used" "6"
    (Interp.flat_to_string out.value)

let test_proxy_models_inside_generic () =
  (* inside the generic, the where clause acts as a model declaration:
     member access on the type parameter typechecks *)
  check_ty
    (monoid ^ "tfun t where Monoid<t> => Monoid<t>.identity_elt")
    "forall t where Monoid<t>. t"

let test_refined_proxy_inside_generic () =
  (* requiring Monoid also provides Semigroup (refinement proxy) *)
  check_ty
    (monoid ^ "tfun t where Monoid<t> => Semigroup<t>.binary_op")
    "forall t where Monoid<t>. fn(t, t) -> t"

let suite =
  [
    Alcotest.test_case "System F fragment" `Quick test_plain_systemf_fragment;
    Alcotest.test_case "generic function type" `Quick
      test_generic_function_type;
    Alcotest.test_case "member access types" `Quick test_member_access_type;
    Alcotest.test_case "instantiation type" `Quick test_instantiation_type;
    Alcotest.test_case "assoc in result type resolves" `Quick
      test_assoc_in_result_type;
    Alcotest.test_case "assoc opaque inside generic" `Quick
      test_assoc_opaque_inside;
    Alcotest.test_case "same-type cast" `Quick test_same_type_cast;
    Alcotest.test_case "type alias equality" `Quick test_alias_equality;
    Alcotest.test_case "alias substituted on exit" `Quick
      test_alias_result_substituted;
    Alcotest.test_case "concept shadowing" `Quick test_concept_shadowing;
    Alcotest.test_case "multi-parameter where" `Quick test_multi_param_where;
    Alcotest.test_case "polymorphic member" `Quick test_polymorphic_member;
    Alcotest.test_case "model bodies use earlier models" `Quick
      test_model_member_uses_earlier_models;
    Alcotest.test_case "unsatisfied requirement" `Quick test_where_unsatisfied;
    Alcotest.test_case "unsatisfied same-type" `Quick
      test_same_type_unsatisfied;
    Alcotest.test_case "member needs model" `Quick test_member_without_model;
    Alcotest.test_case "unknown concept" `Quick test_unknown_concept;
    Alcotest.test_case "concept arity" `Quick test_concept_arity;
    Alcotest.test_case "duplicate model member" `Quick
      test_duplicate_model_members;
    Alcotest.test_case "bogus assoc assignment" `Quick
      test_assoc_extra_assignment;
    Alcotest.test_case "same requirement violated" `Quick
      test_same_requirement_violated;
    Alcotest.test_case "tyvar shadowing rejected" `Quick
      test_tyvar_shadowing_rejected;
    Alcotest.test_case "argument mismatch" `Quick test_argument_mismatch;
    Alcotest.test_case "fix annotation" `Quick test_fix_annotation_checked;
    Alcotest.test_case "unbound var in member type" `Quick
      test_concept_param_escape;
    Alcotest.test_case "self refinement" `Quick test_refinement_cycle_rejected;
    Alcotest.test_case "model scope is bounded" `Quick test_model_scope_bounded;
    Alcotest.test_case "inner model shadows" `Quick test_inner_model_wins;
    Alcotest.test_case "proxy models in generics" `Quick
      test_proxy_models_inside_generic;
    Alcotest.test_case "refinement proxies in generics" `Quick
      test_refined_proxy_inside_generic;
  ]
