(* The JSON reader/printer pair: values must survive a round-trip —
   in particular diagnostics whose messages carry newlines, tabs and
   other control characters, since the server wire protocol embeds
   rendered diagnostics in JSON string fields. *)

open Fg_util

let rec json_equal (a : Json.t) (b : Json.t) =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> x = y
  | Json.Str x, Json.Str y -> String.equal x y
  | Json.List xs, Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
           xs ys
  | _ -> false

let check_roundtrip name v =
  match Json.of_string (Json.to_string v) with
  | Ok v' ->
      Alcotest.(check bool) (name ^ " round-trips") true (json_equal v v')
  | Error e -> Alcotest.failf "%s: parse failed: %s" name e

let test_roundtrip_values () =
  check_roundtrip "null" Json.Null;
  check_roundtrip "true" (Json.Bool true);
  check_roundtrip "int" (Json.Int 42);
  check_roundtrip "negative int" (Json.Int (-7));
  check_roundtrip "min_int" (Json.Int min_int);
  check_roundtrip "max_int" (Json.Int max_int);
  check_roundtrip "float" (Json.Float 1.5);
  check_roundtrip "small float" (Json.Float (-0.125));
  check_roundtrip "string" (Json.Str "hello");
  check_roundtrip "empty list" (Json.List []);
  check_roundtrip "empty obj" (Json.Obj []);
  check_roundtrip "nested"
    (Json.Obj
       [ ("a", Json.List [ Json.Int 1; Json.Null; Json.Str "x" ]);
         ("b", Json.Obj [ ("c", Json.Bool false) ]) ])

let test_roundtrip_control_chars () =
  (* Every byte below U+0020 plus the quote and backslash must escape
     and unescape exactly. *)
  let b = Buffer.create 64 in
  for c = 0 to 0x1F do
    Buffer.add_char b (Char.chr c)
  done;
  Buffer.add_string b "\"\\ plain tail";
  let s = Buffer.contents b in
  check_roundtrip "all control chars" (Json.Str s);
  check_roundtrip "newline/tab mix" (Json.Str "line1\nline2\ttab\r\n")

let test_roundtrip_diagnostic () =
  (* A diagnostic whose message and notes carry every awkward
     character the renderer can produce. *)
  let d =
    Diag.make ~code:"FG0303"
      ~notes:
        [ Diag.note "candidate models:\n  model A\n  model B";
          Diag.suggest "contains" ]
      Diag.Typecheck
      "expected int but got\n\tbool \x01\x1F (multi-line\r\nmessage)"
  in
  let rendered = Json.to_string (Diag.to_json d) in
  match Json.of_string rendered with
  | Error e -> Alcotest.failf "diagnostic did not re-parse: %s" e
  | Ok j ->
      Alcotest.(check bool) "tree equal" true (json_equal (Diag.to_json d) j);
      Alcotest.(check (option string)) "message survives"
        (Some "expected int but got\n\tbool \x01\x1F (multi-line\r\nmessage)")
        (Json.str_field "message" j)

let test_unicode_escapes () =
  (match Json.of_string "\"\\u0041\\u00e9\\u20ac\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "bmp escapes" "A\xC3\xA9\xE2\x82\xAC" s
  | _ -> Alcotest.fail "bmp escapes failed");
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "surrogate pair" "\xF0\x9F\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair failed");
  match Json.of_string "\"\\ud83d oops\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unpaired surrogate accepted"

let expect_error name s =
  match Json.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: accepted %S" name s

let test_parse_errors () =
  expect_error "empty" "";
  expect_error "truncated list" "[1, 2";
  expect_error "trailing comma" "{\"a\": 1,}";
  expect_error "trailing garbage" "1 x";
  expect_error "two documents" "{} {}";
  expect_error "bare word" "flase";
  expect_error "unterminated string" "\"abc";
  expect_error "raw control char in string" "\"a\x01b\"";
  expect_error "lone minus" "-";
  expect_error "bad escape" "\"\\q\"";
  (* Nesting is bounded, so a pathological frame cannot blow the
     stack. *)
  expect_error "deep nesting" (String.concat "" (List.init 1000 (fun _ -> "[")));
  match Json.of_string (String.make 100 '[' ^ String.make 100 ']') with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "100 levels should parse: %s" e

let test_accessors () =
  let j =
    Json.Obj
      [ ("s", Json.Str "x"); ("n", Json.Int 3); ("b", Json.Bool true);
        ("f", Json.Float 2.0) ]
  in
  Alcotest.(check (option string)) "str" (Some "x") (Json.str_field "s" j);
  Alcotest.(check (option int)) "int" (Some 3) (Json.int_field "n" j);
  Alcotest.(check (option int)) "int-of-float" (Some 2) (Json.int_field "f" j);
  Alcotest.(check (option bool)) "bool" (Some true) (Json.bool_field "b" j);
  Alcotest.(check (option string)) "missing" None (Json.str_field "zz" j);
  Alcotest.(check (option string)) "wrong shape" None (Json.str_field "n" j)

let test_whitespace_and_numbers () =
  (match Json.of_string "  { \"a\" : [ 1 , 2.5 , -3e2 ] }  " with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float f1; Json.Float f2 ]) ])
    ->
      Alcotest.(check (float 0.0)) "2.5" 2.5 f1;
      Alcotest.(check (float 0.0)) "-3e2" (-300.) f2
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Json.of_string "12345678901234567890123456789" with
  | Ok (Json.Float _) -> ()
  | _ -> Alcotest.fail "big number should fall back to float"

let suite =
  [
    Alcotest.test_case "roundtrip values" `Quick test_roundtrip_values;
    Alcotest.test_case "roundtrip control chars" `Quick
      test_roundtrip_control_chars;
    Alcotest.test_case "roundtrip diagnostic" `Quick test_roundtrip_diagnostic;
    Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "whitespace and numbers" `Quick
      test_whitespace_and_numbers;
  ]
