lib/fg/genprog.ml: Buffer Corpus Printf
