lib/util/pp_util.ml: Buffer Fmt Format String
