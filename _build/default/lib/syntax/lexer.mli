(** Hand-written scanner shared by the System F and FG parsers.
    Supports [//] line comments and nestable [/* ... */] block comments;
    ['<']/['>'] are always single tokens (so [C<D<int>>] lexes). *)

(** Lex the whole input eagerly to located tokens, ending in [EOF].
    Raises a located lexer diagnostic on bad input. *)
val tokenize : ?file:string -> string -> (Token.t * Fg_util.Loc.t) array
