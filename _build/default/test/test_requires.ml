(* Tests for nested requirements (Section 6: "concepts often include
   requirements on associated types", e.g. a container's associated
   iterator must model Iterator).  A `require C<σ̄>;` item behaves like
   a refinement for proxy models and dictionary layout, but contributes
   no member names. *)

open Fg_core

let check src expected =
  match Pipeline.run_result ~file:"requires" src with
  | Ok out ->
      Alcotest.(check string) src expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" src (Fg_util.Diag.to_string d)

let check_fails src phase fragment =
  match Pipeline.run_result ~file:"requires" src with
  | Ok out ->
      Alcotest.failf "%s: expected failure, got %s" src
        (Interp.flat_to_string out.value)
  | Error d ->
      if d.phase <> phase then
        Alcotest.failf "%s: wrong phase %s" src (Fg_util.Diag.to_string d);
      if not (Astring_contains.contains ~needle:fragment d.message) then
        Alcotest.failf "%s: wrong message %s" src d.message

let container_stack =
  {|concept Iterator<i> {
  types elt;
  next : fn(i) -> i; curr : fn(i) -> elt; at_end : fn(i) -> bool;
} in
concept Container<c> {
  types iter;
  require Iterator<iter>;
  begin : fn(c) -> iter;
} in
model Iterator<list int> {
  types elt = int;
  next = fun (ls : list int) => cdr[int](ls);
  curr = fun (ls : list int) => car[int](ls);
  at_end = fun (ls : list int) => null[int](ls);
} in
model Container<list int> {
  types iter = list int;
  begin = fun (ls : list int) => ls;
} in
|}

let test_requirement_implied () =
  (* the where clause states ONLY Container<c>; the body may still use
     Iterator on the container's iterator type *)
  check
    (container_stack
   ^ {|let first =
  tfun c where Container<c> =>
    fun (xs : c) => Iterator<Container<c>.iter>.curr(Container<c>.begin(xs))
in
first[list int](cons[int](9, cons[int](1, nil[int])))|})
    "9"

let test_requires_in_generic_loop () =
  check
    (container_stack
   ^ {|let len =
  tfun c where Container<c> =>
    fun (xs : c) =>
      (fix (go : fn(Container<c>.iter) -> int) =>
        fun (it : Container<c>.iter) =>
          if Iterator<Container<c>.iter>.at_end(it) then 0
          else 1 + go(Iterator<Container<c>.iter>.next(it)))
      (Container<c>.begin(xs))
in
len[list int](cons[int](1, cons[int](2, cons[int](3, nil[int]))))|})
    "3"

let test_model_needs_required_instance () =
  (* declaring a Container model without an Iterator model in scope *)
  check_fails
    {|concept Iterator<i> { types elt; curr : fn(i) -> elt; } in
concept Container<c> { types iter; require Iterator<iter>; begin : fn(c) -> iter; } in
model Container<list int> {
  types iter = list int;
  begin = fun (ls : list int) => ls;
} in 0|}
    Fg_util.Diag.Resolve "requires Iterator<list int>"

let test_no_member_leak () =
  (* Container does NOT expose Iterator's members as its own *)
  check_fails
    (container_stack ^ "Container<list int>.curr(nil[int])")
    Fg_util.Diag.Typecheck "no member 'curr'"

let test_dictionary_layout () =
  (* the Container dictionary embeds the Iterator dictionary first:
     (iter_dict, begin); member access to `begin` projects index 1 *)
  let f =
    Check.translate
      (Parser.exp_of_string
         (container_stack ^ "Container<list int>.begin(nil[int])"))
  in
  let s = Fg_systemf.Pretty.exp_to_flat_string f in
  Alcotest.(check bool) "begin at index 1" true
    (Astring_contains.contains ~needle:" 1(nil[int])" s)

let test_prelude_sum_container () =
  (* the prelude's sum_container now states only Container + Monoid *)
  check
    (Prelude.wrap
       (Printf.sprintf "sum_container(%s)" (Prelude.int_list [ 5; 6; 7 ])))
    "18";
  (* and works at every list type through the parameterized models *)
  check
    (Prelude.wrap
       (Printf.sprintf
          "sum_container[list (list int)](cons[list int](%s, cons[list int](%s, nil[list int])))"
          (Prelude.int_list [ 1 ])
          (Prelude.int_list [ 2; 3 ])))
    "[1, 2, 3]"

let test_require_with_same_type_pin () =
  (* a nested requirement combined with a same-type requirement *)
  check
    (container_stack
   ^ {|concept IntContainer<c> {
  refines Container<c>;
  same Iterator<Container<c>.iter>.elt == int;
} in
model IntContainer<list int> { } in
let total =
  tfun c where IntContainer<c> =>
    fun (xs : c) =>
      (fix (go : fn(Container<c>.iter) -> int) =>
        fun (it : Container<c>.iter) =>
          if Iterator<Container<c>.iter>.at_end(it) then 0
          else Iterator<Container<c>.iter>.curr(it) + go(Iterator<Container<c>.iter>.next(it)))
      (Container<c>.begin(xs))
in
total[list int](cons[int](10, cons[int](20, nil[int])))|})
    "30"

let suite =
  [
    Alcotest.test_case "requirement implied by concept" `Quick
      test_requirement_implied;
    Alcotest.test_case "iteration through the required instance" `Quick
      test_requires_in_generic_loop;
    Alcotest.test_case "model needs the required instance" `Quick
      test_model_needs_required_instance;
    Alcotest.test_case "no member-name leak" `Quick test_no_member_leak;
    Alcotest.test_case "dictionary layout" `Quick test_dictionary_layout;
    Alcotest.test_case "prelude sum_container simplified" `Quick
      test_prelude_sum_container;
    Alcotest.test_case "require + same-type pin" `Quick
      test_require_with_same_type_pin;
  ]
