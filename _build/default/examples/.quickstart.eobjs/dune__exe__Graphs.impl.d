examples/graphs.ml: Fg_core Fmt Printf String
