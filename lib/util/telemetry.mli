(** Lightweight, domain-safe instrumentation for the compiler driver.

    A global set of atomic counters and per-phase wall-time
    accumulators, cheap enough to leave always-on: the library's hot
    paths ({!Fg_core.Equality} closure rebuilds, model resolution in
    {!Fg_core.Env}, the session resolution cache) bump counters, the
    driver ({!Fg_core.Session}) wraps each pipeline phase in {!time}.
    Counters are process-global and monotone; clients take {!snapshot}s
    and {!diff} them to attribute work to a region (a program, a batch,
    a bench run).  All updates go through [Atomic], so parallel batch
    domains can record into the same counters without tearing. *)

(** Concurrent latency histograms: log-linear buckets (4 linear
    sub-buckets per power-of-two octave), so any recorded value is
    reconstructed to within 25%.  All state is [Atomic], so multiple
    domains can {!Histogram.observe} into one histogram without locks;
    reads are racy snapshots, which is what monitoring wants.  The
    server records request latencies (in nanoseconds) here and reports
    p50/p95/p99 through the [stats] endpoint. *)
module Histogram : sig
  type t

  val create : unit -> t

  (** Record one non-negative sample (negatives clamp to 0). *)
  val observe : t -> int -> unit

  val count : t -> int
  val sum : t -> int
  val max_value : t -> int
  val mean : t -> float

  (** [percentile t p] for [p] in [0,100] — the upper bound of the
      bucket holding the rank-[⌈p/100·count⌉] sample (conservative,
      clamped to the exact maximum); 0 when empty. *)
  val percentile : t -> float -> int

  val reset : t -> unit

  (** [merge a b] — a fresh histogram holding both sides' samples
      (bucket-wise sum; exact, since bucket boundaries are fixed).
      Reads each side racily, like every snapshot in this module; the
      multi-worker / fleet merge operation. *)
  val merge : t -> t -> t

  (** [{"count", "max_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}]
      (keys sorted) — samples are assumed to be nanoseconds. *)
  val to_json : t -> Json.t
end

(** The driver phases that are individually timed. *)
type phase =
  | Parse  (** FG source to AST *)
  | Check  (** type checking + elaboration + translation *)
  | Specialize  (** stenciling / shape-sharing partial evaluation *)
  | Verify  (** System F re-check and theorem comparison *)
  | Eval  (** both evaluations (direct and translated) *)

val phase_label : phase -> string

(** {1 Time source}

    The only clock available is the wall clock, which NTP can step
    backwards; every duration in the tree is computed from
    {!now_ns}, which never decreases. *)

(** [monotonize ns] — [ns] pinned to the largest value any caller has
    ever passed (process-global, domain-safe).  A backwards wall-clock
    step becomes a plateau, never a negative delta. *)
val monotonize : int -> int

(** Monotone non-decreasing nanosecond timestamps ([monotonize] over
    the wall clock).  Deltas between two calls are always ≥ 0. *)
val now_ns : unit -> int

(** Time a phase: runs the thunk, adds the elapsed wall time to the
    phase's accumulator (also on exceptions), and returns the result. *)
val time : phase -> (unit -> 'a) -> 'a

(** {1 Counter bump points} *)

val record_cc_rebuild : unit -> unit
(** A congruence closure was (re)built from its assumption list. *)

val record_model_lookup : unit -> unit
(** [Env.lookup_model] was asked to resolve a concept requirement. *)

val record_resolve_hit : unit -> unit
(** The memoized model-resolution cache answered a lookup. *)

val record_resolve_miss : unit -> unit
(** The memoized model-resolution cache had to compute a lookup. *)

val record_prelude_build : unit -> unit
(** A session parsed and checked a prelude from scratch. *)

val record_prelude_reuse : unit -> unit
(** A program was checked against an already-built session prelude. *)

val record_program : unit -> unit
(** One program went through a driver entry point. *)

val record_fuzz_generated : unit -> unit
(** The fuzzer produced one candidate program. *)

val record_fuzz_discarded : unit -> unit
(** The fuzzer rejected a candidate mid-generation (rejection
    sampling; the slot was re-rolled). *)

val record_fuzz_shrunk : unit -> unit
(** The shrinker committed one successful shrink step. *)

val record_unit_hit : unit -> unit
(** A compilation-unit cache served a declaration from cache. *)

val record_unit_miss : unit -> unit
(** A compilation-unit cache had to check a declaration. *)

val record_unit_eviction : unit -> unit
(** A bounded compilation-unit cache evicted its least recently used
    entry to make room. *)

val record_unit_invalidations : int -> unit
(** [n] compilation units were invalidated by a redefinition (the
    shadowed units plus their cached dependents). *)

val record_stencils_created : int -> unit
(** The specializing backend created [n] stencils (specialized
    clones of generic bindings). *)

val record_stencils_shared : int -> unit
(** [n] call sites were served by an existing same-shape stencil
    class (hybrid gcshape sharing) instead of a new clone. *)

val record_stencil_fallbacks : int -> unit
(** [n] ground generic calls stayed on dictionary passing (budget
    exhausted, non-static dictionaries, unrecognized shape). *)

val record_dicts_hoisted : int -> unit
(** [n] dictionary expressions were hoisted to top-level bindings by
    the specializing backend. *)

val record_disk_hit : unit -> unit
(** The on-disk unit store served a lookup. *)

val record_disk_miss : unit -> unit
(** The on-disk unit store was consulted and had no (valid) entry. *)

val record_disk_eviction : unit -> unit
(** The on-disk store's size-bounded GC removed one entry. *)

val record_corrupt_entry : unit -> unit
(** A persisted entry failed validation (truncated, corrupt, or from a
    different store format / compiler build) and was treated as a
    miss. *)

val record_peer_hit : unit -> unit
(** A cache peer served a unit over the wire. *)

val record_peer_miss : unit -> unit
(** A cache peer was asked and did not have the unit. *)

val record_peer_failure : unit -> unit
(** A cache-peer request failed (connect, I/O, timeout); the lookup
    degraded silently to local compilation. *)

(** {1 Snapshots} *)

type snapshot = {
  parse_ns : int;  (** accumulated wall time per phase, nanoseconds *)
  check_ns : int;
  specialize_ns : int;
  verify_ns : int;
  eval_ns : int;
  cc_rebuilds : int;
  model_lookups : int;
  resolve_hits : int;
  resolve_misses : int;
  prelude_builds : int;
  prelude_reuses : int;
  programs : int;
  fuzz_generated : int;
  fuzz_discarded : int;
  fuzz_shrunk : int;
  unit_hits : int;
  unit_misses : int;
  unit_evictions : int;
  unit_invalidations : int;
  stencils_created : int;
  stencils_shared : int;
  stencil_fallbacks : int;
  dicts_hoisted : int;
  disk_hits : int;
  disk_misses : int;
  disk_evictions : int;
  corrupt_entries : int;
  peer_hits : int;
  peer_misses : int;
  peer_failures : int;
}

val snapshot : unit -> snapshot

(** [diff later earlier] — the work done between two snapshots. *)
val diff : snapshot -> snapshot -> snapshot

(** Reset every counter to zero (tests and benchmarks). *)
val reset : unit -> unit

val pp : snapshot Fmt.t

(** The snapshot as a flat JSON object (stable key names, keys in
    sorted order so equal snapshots render byte-identically). *)
val to_json : snapshot -> Json.t
