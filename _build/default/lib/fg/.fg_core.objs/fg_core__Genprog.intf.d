lib/fg/genprog.mli:
