(** JSON views of driver results — the single source of truth for the
    machine-readable result shape shared by [fgc run --format=json],
    [fgc batch --format=json] and the [fgc serve] wire protocol (whose
    [run] payload must be byte-identical to a one-shot run). *)

open Fg_util

val json_of_diags : Diag.diagnostic list -> Json.t

(** A flattened runtime value: ints, bools, unit ([null]), lists,
    tuples (as [{"tuple": [...]}]) and functions (as ["<fun>"]). *)
val json_of_flat : Interp.flat -> Json.t

(** A successful full-pipeline outcome: [{"file", "ok": true, "type",
    "value", "value_str", "theorem", "direct_steps",
    "translated_steps"}]. *)
val json_of_outcome : file:string -> Session.outcome -> Json.t

(** A single-diagnostic failure: [{"file", "ok": false,
    "diagnostics"}]. *)
val json_of_failure : file:string -> Diag.diagnostic -> Json.t

(** Exactly what [fgc run --format=json] prints: the outcome fields (or
    [{"file", "ok": false}]) with the report's full diagnostics array
    appended. *)
val json_of_run_report : file:string -> Session.run_report -> Json.t
