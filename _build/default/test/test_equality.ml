(* Tests for FG type equality: the congruence over same-type
   assumptions (paper Section 5.1) and representative selection
   (Section 5.2). *)

open Fg_core
module A = Ast

let ty = Parser.ty_of_string

let eq_of assumptions =
  List.fold_left
    (fun eq (a, b) -> Equality.assume eq (ty a) (ty b))
    Equality.empty assumptions

let check_equal eq a b expected =
  Alcotest.(check bool)
    (Printf.sprintf "%s = %s" a b)
    expected
    (Equality.equal eq (ty a) (ty b))

let check_repr eq a expected =
  Alcotest.(check string)
    (Printf.sprintf "repr %s" a)
    expected
    (Pretty.ty_to_string (Equality.repr eq (ty a)))

let test_syntactic () =
  let eq = Equality.empty in
  check_equal eq "int" "int" true;
  check_equal eq "int" "bool" false;
  check_equal eq "list int" "list int" true;
  check_equal eq "fn(int) -> bool" "fn(int) -> bool" true;
  check_equal eq "fn(int) -> bool" "fn(bool) -> bool" false;
  check_equal eq "a" "a" true;
  check_equal eq "a" "b" false;
  check_equal eq "C<a>.s" "C<a>.s" true;
  check_equal eq "C<a>.s" "C<b>.s" false;
  check_equal eq "C<a>.s" "C<a>.t" false;
  check_equal eq "C<a>.s" "D<a>.s" false

let test_assumed () =
  let eq = eq_of [ ("a", "int") ] in
  check_equal eq "a" "int" true;
  check_equal eq "int" "a" true;
  check_equal eq "a" "bool" false;
  (* congruence lifts through constructors *)
  check_equal eq "list a" "list int" true;
  check_equal eq "fn(a, a) -> a" "fn(int, int) -> int" true;
  check_equal eq "a * bool" "int * bool" true;
  check_equal eq "C<a>.s" "C<int>.s" true

let test_transitive () =
  let eq = eq_of [ ("a", "b"); ("b", "c"); ("c", "int") ] in
  check_equal eq "a" "int" true;
  check_equal eq "a" "c" true;
  check_equal eq "list (list a)" "list (list int)" true

let test_projection_chains () =
  (* the iterator situation: elt projections pinned by models *)
  let eq =
    eq_of
      [
        ("Iterator<list int>.elt", "int");
        ("Iterator<i1>.elt", "Iterator<i2>.elt");
      ]
  in
  check_equal eq "Iterator<list int>.elt" "int" true;
  check_equal eq "Iterator<i1>.elt" "Iterator<i2>.elt" true;
  check_equal eq "fn(Iterator<i1>.elt) -> bool" "fn(Iterator<i2>.elt) -> bool"
    true;
  check_equal eq "Iterator<i1>.elt" "int" false

let test_congruence_through_args () =
  (* i1 = i2 must make Iterator<i1>.elt = Iterator<i2>.elt by
     congruence, without an explicit assumption *)
  let eq = eq_of [ ("i1", "i2") ] in
  check_equal eq "Iterator<i1>.elt" "Iterator<i2>.elt" true

let test_repr_prefers_ground () =
  let eq = eq_of [ ("a", "int") ] in
  check_repr eq "a" "int";
  check_repr eq "list a" "list int";
  check_repr eq "fn(a) -> a" "fn(int) -> int"

let test_repr_prefers_earliest_var () =
  (* paper Section 5.2: elt1 is chosen as the representative of the
     class {elt1, elt2}; our rule is earliest-interned variable *)
  let eq = eq_of [ ("elt1", "C<i1>.s"); ("elt2", "C<i2>.s"); ("elt1", "elt2") ] in
  check_repr eq "elt2" "elt1";
  check_repr eq "C<i2>.s" "elt1";
  check_repr eq "C<i1>.s" "elt1"

let test_repr_var_over_projection () =
  let eq = eq_of [ ("e", "C<i>.s") ] in
  check_repr eq "C<i>.s" "e"

let test_forall_alpha_opaque () =
  (* foralls compare up to alpha; equalities do not propagate inside
     (documented limitation) *)
  let eq = Equality.empty in
  check_equal eq "forall a. fn(a) -> a" "forall b. fn(b) -> b" true;
  check_equal eq "forall a. fn(a) -> a" "forall a b. fn(a) -> a" false;
  let eq2 = eq_of [ ("t", "int") ] in
  check_equal eq2 "forall a. fn(a) -> t" "forall a. fn(a) -> int" false

let test_forall_with_constraints () =
  let eq = Equality.empty in
  check_equal eq "forall t where Monoid<t>. t" "forall u where Monoid<u>. u"
    true;
  check_equal eq "forall t where Monoid<t>. t" "forall t where Eq<t>. t" false;
  check_equal eq "forall t where Monoid<t>. t" "forall t. t" false

let test_persistence () =
  (* assume returns a NEW context; the original is unchanged *)
  let eq0 = Equality.empty in
  let eq1 = Equality.assume eq0 (ty "a") (ty "int") in
  check_equal eq1 "a" "int" true;
  check_equal eq0 "a" "int" false;
  (* extending further *)
  let eq2 = Equality.assume eq1 (ty "b") (ty "a") in
  check_equal eq2 "b" "int" true;
  check_equal eq1 "b" "int" false

let test_assumptions_listing () =
  let eq = eq_of [ ("a", "int"); ("b", "bool") ] in
  Alcotest.(check int) "two assumptions" 2
    (List.length (Equality.assumptions eq))

let test_tuple_arity () =
  let eq = Equality.empty in
  check_equal eq "tuple(int)" "int" false;
  check_equal eq "tuple()" "unit" false;
  check_equal eq "int * bool" "int * bool" true

let test_class_count () =
  let eq = eq_of [ ("a", "b"); ("c", "d") ] in
  (* interned: a b c d -> 2 classes *)
  Alcotest.(check int) "classes" 2 (Equality.class_count eq)

(* Properties: equality is an equivalence relation and a congruence. *)

let small_ty_gen : A.ty QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 1 then
        oneofl
          [ A.TBase A.TInt; A.TBase A.TBool; A.TVar "a"; A.TVar "b";
            A.TVar "c" ]
      else
        frequency
          [
            (3, oneofl [ A.TBase A.TInt; A.TVar "a"; A.TVar "b" ]);
            (2, map (fun t -> A.TList t) (self (n / 2)));
            (1, map2 (fun x y -> A.TArrow ([ x ], y)) (self (n / 2)) (self (n / 2)));
            (1, map (fun t -> A.TAssoc ("C", [ t ], "s")) (self (n / 2)));
          ])

let ty_arb = QCheck.make ~print:Pretty.ty_to_string small_ty_gen

let eqs_arb =
  QCheck.(list_of_size (QCheck.Gen.int_bound 4) (pair ty_arb ty_arb))

let build eqs = List.fold_left (fun e (a, b) -> Equality.assume e a b) Equality.empty eqs

let prop_reflexive =
  QCheck.Test.make ~name:"equality is reflexive" ~count:200
    QCheck.(pair eqs_arb ty_arb)
    (fun (eqs, t) -> Equality.equal (build eqs) t t)

let prop_symmetric =
  QCheck.Test.make ~name:"equality is symmetric" ~count:200
    QCheck.(pair eqs_arb (pair ty_arb ty_arb))
    (fun (eqs, (a, b)) ->
      let eq = build eqs in
      Equality.equal eq a b = Equality.equal eq b a)

let prop_assumed_holds =
  QCheck.Test.make ~name:"every assumption holds" ~count:200 eqs_arb
    (fun eqs ->
      let eq = build eqs in
      List.for_all (fun (a, b) -> Equality.equal eq a b) eqs)

let prop_congruence_list =
  QCheck.Test.make ~name:"a = b implies list a = list b" ~count:200
    QCheck.(pair eqs_arb (pair ty_arb ty_arb))
    (fun (eqs, (a, b)) ->
      let eq = build eqs in
      (not (Equality.equal eq a b))
      || Equality.equal eq (A.TList a) (A.TList b))

let prop_repr_idempotent =
  QCheck.Test.make ~name:"repr is idempotent" ~count:200
    QCheck.(pair eqs_arb ty_arb)
    (fun (eqs, t) ->
      let eq = build eqs in
      match
        Fg_util.Diag.protect (fun () ->
            let r = Equality.repr eq t in
            (r, Equality.repr eq r))
      with
      | Ok (r1, r2) -> A.ty_equal r1 r2
      | Error _ -> QCheck.assume_fail () (* cyclic assumption set *))

let suite =
  [
    Alcotest.test_case "syntactic equality" `Quick test_syntactic;
    Alcotest.test_case "assumed equality" `Quick test_assumed;
    Alcotest.test_case "transitivity" `Quick test_transitive;
    Alcotest.test_case "projection chains" `Quick test_projection_chains;
    Alcotest.test_case "congruence through args" `Quick
      test_congruence_through_args;
    Alcotest.test_case "repr prefers ground" `Quick test_repr_prefers_ground;
    Alcotest.test_case "repr prefers earliest variable (elt1)" `Quick
      test_repr_prefers_earliest_var;
    Alcotest.test_case "repr: variable over projection" `Quick
      test_repr_var_over_projection;
    Alcotest.test_case "foralls are alpha-opaque" `Quick
      test_forall_alpha_opaque;
    Alcotest.test_case "foralls with constraints" `Quick
      test_forall_with_constraints;
    Alcotest.test_case "persistence" `Quick test_persistence;
    Alcotest.test_case "assumptions listing" `Quick test_assumptions_listing;
    Alcotest.test_case "tuple arities distinct" `Quick test_tuple_arity;
    Alcotest.test_case "class count" `Quick test_class_count;
    QCheck_alcotest.to_alcotest prop_reflexive;
    QCheck_alcotest.to_alcotest prop_symmetric;
    QCheck_alcotest.to_alcotest prop_assumed_holds;
    QCheck_alcotest.to_alcotest prop_congruence_list;
    QCheck_alcotest.to_alcotest prop_repr_idempotent;
  ]
