bin/fgc.ml: Arg Buffer Cmd Cmdliner Fg_core Fg_systemf Fg_util Fmt List Repl Term
