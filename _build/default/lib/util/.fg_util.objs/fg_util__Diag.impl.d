lib/util/diag.ml: Fmt Loc Stdlib
