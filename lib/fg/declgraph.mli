(** Dependency analysis over declaration spines.

    A program (or prelude, or REPL history) is a spine of declarations
    followed by a body.  {!Unit} treats each declaration as a
    compilation unit; this module computes, for each unit, which
    earlier units its checking can observe — the inputs to the unit's
    content-hash chain.  The analysis is purely syntactic and
    deliberately over-approximate (extra edges only reduce cache reuse;
    a missing edge would be unsound), covering name references, binder
    shadowing, the transitive concept-interest closure that model
    resolution can consult, and — under the Global resolution ablation —
    the order-dependent overlap check across all model declarations. *)

open Ast
module Sset := Fg_util.Names.Sset

(** What one declaration contributes and consumes. *)
type info = {
  i_provides : Sset.t;
      (** names the declaration binds for the rest of the spine *)
  i_refs : Sset.t;
      (** every identifier occurring in the declaration (referenced or
          bound — shadowing is observable) *)
  i_concepts : Sset.t;  (** concept names mentioned *)
  i_model_of : Sset.t;
      (** concepts whose model scope this declaration extends directly
          (an unnamed model declaration; [using] is resolved during
          {!build}) *)
  i_named : (string * string) list;
      (** named models declared: name, concept *)
  i_using : string option;  (** named model activated by [using] *)
  i_declares_model : bool;
      (** any model declaration, named or not — these couple under the
          Global ablation's program-wide overlap check *)
}

(** Facts about one declaration node (the body is not examined — it is
    the rest of the spine).  Total: non-declarations yield empty info. *)
val info_of_decl : exp -> info

(** Is this expression a declaration form? *)
val is_decl : exp -> bool

(** [build ~global infos] — dependency edges for each unit of a spine,
    given the units' facts in spine order.  [deps.(k)] lists the
    indices [j < k] whose checked results unit [k]'s checking can
    observe, in ascending order.  [global] enables the Global
    ablation's all-models coupling. *)
val build : global:bool -> info array -> int list array
