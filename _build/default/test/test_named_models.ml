(* Tests for named models (Section 6, after Kahl & Scheffczyk's named
   instances): `model m = C<τ̄> {...}` declares without activating;
   `using m in e` activates lexically.  Named models give explicit
   control over overlap — the managed alternative to Figure 6's scoped
   shadowing. *)

open Fg_core

let check src expected =
  match Pipeline.run_result ~file:"named" src with
  | Ok out ->
      Alcotest.(check string) src expected (Interp.flat_to_string out.value)
  | Error d -> Alcotest.failf "%s: %s" src (Fg_util.Diag.to_string d)

let check_fails src phase fragment =
  match Pipeline.run_result ~file:"named" src with
  | Ok out ->
      Alcotest.failf "%s: expected failure, got %s" src
        (Interp.flat_to_string out.value)
  | Error d ->
      if d.phase <> phase then
        Alcotest.failf "%s: wrong phase %s" src (Fg_util.Diag.to_string d);
      if not (Astring_contains.contains ~needle:fragment d.message) then
        Alcotest.failf "%s: wrong message %s" src d.message

let monoid2 =
  {|concept Monoid2<t> { op : fn(t, t) -> t; unit_elt : t; } in
let fold =
  tfun t where Monoid2<t> =>
    fix (go : fn(list t) -> t) =>
      fun (ls : list t) =>
        if null[t](ls) then Monoid2<t>.unit_elt
        else Monoid2<t>.op(car[t](ls), go(cdr[t](ls)))
in
model additive = Monoid2<int> { op = iadd; unit_elt = 0; } in
model multiplicative = Monoid2<int> { op = imult; unit_elt = 1; } in
let ls = cons[int](2, cons[int](3, cons[int](4, nil[int]))) in
|}

let test_select_by_name () =
  check
    (monoid2
   ^ {|(using additive in fold[int](ls), using multiplicative in fold[int](ls))|})
    "(9, 24)"

let test_inactive_until_using () =
  check_fails
    {|concept C<t> { v : t; } in
model m = C<int> { v = 1; } in
C<int>.v|}
    Fg_util.Diag.Resolve "no model of C<int>"

let test_unknown_name () =
  check_fails {|using ghost in 0|} Fg_util.Diag.Resolve
    "unknown named model 'ghost'";
  (* at member access too *)
  check_fails
    {|concept C<t> { v : t; } in
using ghost in C<int>.v|}
    Fg_util.Diag.Resolve "unknown named model"

let test_using_scope_bounded () =
  check_fails
    (monoid2
   ^ {|let s = using additive in fold[int](ls) in
fold[int](ls)|})
    Fg_util.Diag.Resolve "no model of Monoid2<int>"

let test_using_shadows () =
  (* an active anonymous model is shadowed by a later `using` *)
  check
    (monoid2
   ^ {|model Monoid2<int> { op = iadd; unit_elt = 0; } in
(fold[int](ls), using multiplicative in fold[int](ls))|})
    "(9, 24)"

let test_named_parameterized () =
  (* a named PARAMETERIZED model: one name covers all list types *)
  check
    {|concept Sz<t> { size : fn(t) -> int; } in
model listsize = <e> Sz<list e> {
  size = fun (ls : list e) => length[e](ls);
} in
using listsize in
(Sz<list int>.size(cons[int](7, nil[int])),
 Sz<list bool>.size(nil[bool]))|}
    "(1, 0)"

let test_named_with_defaults () =
  check
    {|concept Eq2<t> {
  eq  : fn(t, t) -> bool;
  neq : fn(t, t) -> bool = fun (a : t, b : t) => !Eq2<t>.eq(a, b);
} in
model inteq = Eq2<int> { eq = ieq; } in
using inteq in Eq2<int>.neq(1, 2)|}
    "true"

let test_nested_usings () =
  check
    (monoid2
   ^ {|using additive in
let s = fold[int](ls) in
using multiplicative in
// innermost using wins
(s, fold[int](ls))|})
    "(9, 24)"

let test_global_mode_registers_named () =
  (* named models still count for global-mode overlap *)
  let src =
    {|concept C<t> { v : t; } in
model a = C<int> { v = 1; } in
model C<int> { v = 2; } in 0|}
  in
  match
    Pipeline.run_result ~resolution:Resolution.Global ~file:"named" src
  with
  | Ok _ -> Alcotest.fail "expected global-mode overlap"
  | Error d ->
      Alcotest.(check bool) "overlap" true
        (Astring_contains.contains ~needle:"overlapping" d.message)

let suite =
  [
    Alcotest.test_case "select by name" `Quick test_select_by_name;
    Alcotest.test_case "inactive until using" `Quick test_inactive_until_using;
    Alcotest.test_case "unknown name" `Quick test_unknown_name;
    Alcotest.test_case "using scope bounded" `Quick test_using_scope_bounded;
    Alcotest.test_case "using shadows anonymous" `Quick test_using_shadows;
    Alcotest.test_case "named parameterized model" `Quick
      test_named_parameterized;
    Alcotest.test_case "named model with defaults" `Quick
      test_named_with_defaults;
    Alcotest.test_case "nested usings" `Quick test_nested_usings;
    Alcotest.test_case "global mode registers named" `Quick
      test_global_mode_registers_named;
  ]
